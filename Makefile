# Tier-1 verification targets. `make ci` is the gate every change must
# pass: vet, the full test suite under the race detector, a one-shot
# smoke of the derivation benchmarks (exercising the streaming engine end
# to end), an end-to-end serving smoke of cmd/mrslserve over HTTP, and a
# one-shot publish of the concurrent-serving benchmark into
# BENCH_engine.json.

GO ?= go

.PHONY: ci vet test race metrics-lint bench-smoke serve-smoke chaos-smoke bench-serve bench-planner bench-watch bench-check bench-baseline bench-publish fuzz-smoke build

ci: vet race metrics-lint bench-smoke serve-smoke chaos-smoke bench-serve bench-check

# Assert every EngineStats counter is exported on GET /metrics and named
# in README.md's metric table, so the docs and the exposition surface
# cannot drift from the struct.
metrics-lint:
	sh scripts/metrics-lint.sh

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench-smoke:
	$(GO) test -run=NONE -bench=Derive -benchtime=1x .

# Build mrslserve, boot it on a random port, POST one derivation over
# HTTP, and check the streamed NDJSON and the stats endpoint.
serve-smoke:
	sh scripts/serve-smoke.sh

# Fault-injection soak under the race detector: concurrent derive,
# query, observe, and snapshot traffic on one engine while injected
# faults force panics in every worker pool, cache eviction storms, and
# scheduling delays. Asserts the process survives, every non-degraded
# answer stays bit-identical to a fault-free oracle, and every degraded
# [lo, hi] interval contains the oracle mass. -count=1 defeats the test
# cache so the soak actually runs every time.
chaos-smoke:
	$(GO) test -race -count=1 -run 'TestChaosSoak' .
	$(GO) test -race -count=1 -run 'TestPanicBecomesTypedError|TestPrefetchPanicKeepsStreamExact|TestSinkPanicBecomesEmitError' ./internal/derive

# Publish the concurrent serving benchmark (1/4/16 overlapping streams on
# one engine) as go-test JSON events, so serving throughput is tracked
# run over run. The benchmark warms the engine caches before its timer
# starts, so 5 steady-state iterations give a stable, run-to-run
# comparable figure (the seed published a single cold iteration, which
# measured warmup, not serving).
bench-serve:
	$(GO) test -run=NONE -bench=BenchmarkEngineConcurrent -benchtime=5x -json . > BENCH_engine.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_engine.json | head -3

# Publish the query benchmarks — planning (classification, selectivity
# ordering, memoized dissociation intervals) plus the per-statement SPJ
# paths (safe hierarchical join, dissociated exists) — so query serving
# latency is tracked run over run. The adaptive pair runs full
# evaluations (chains included) on the adversarial workloads, so it gets
# a smaller iteration count appended to the same log.
bench-planner:
	$(GO) test -run=NONE -bench='BenchmarkQueryPlanner|BenchmarkQuerySafeJoin|BenchmarkQueryDissociated' -benchtime=1000x -json . > BENCH_planner.json
	$(GO) test -run=NONE -bench='BenchmarkQueryAdaptive|BenchmarkQueryAdversarial' -benchtime=100x -json . >> BENCH_planner.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_planner.json | head -8

# Fail ci when serving throughput or planning latency regresses >30%
# against the committed baselines (BENCH_baseline.json /
# BENCH_planner_baseline.json; refresh them deliberately with
# `make bench-baseline` when a PR legitimately moves the needle).
bench-check: bench-serve bench-planner
	sh scripts/bench-check.sh BENCH_baseline.json BENCH_engine.json 30
	sh scripts/planner-check.sh BENCH_planner_baseline.json BENCH_planner.json 30

bench-baseline: bench-serve bench-planner
	cp BENCH_engine.json BENCH_baseline.json
	cp BENCH_planner.json BENCH_planner_baseline.json

# Publish the subscription-delivery load generator: many watchers on one
# live dataset while observation deltas stream in, the workload behind
# the mrsl_watch_notify_seconds histogram.
bench-watch:
	$(GO) test -run=NONE -bench=BenchmarkWatchFanout -benchmem -benchtime=100x -json . > BENCH_watch.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_watch.json | head -3

# Publish the wider perf trajectory — derivation, lattice matching,
# Gibbs, and selective-query benchmarks with allocation counts —
# alongside the serving figures, so BENCH_derive.json tracks the hot
# paths across PRs (BenchmarkQuerySelective pits Engine.Query's pruning
# against derive-then-filter on the same workload).
bench-publish: bench-serve bench-watch
	$(GO) test -run=NONE -bench 'Derive|Match|Gibbs|Query' -benchmem -benchtime=100x -json . ./internal/core ./internal/gibbs > BENCH_derive.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_derive.json | head -14

# Short fuzzing pass over the four external input parsers (CSV
# relations, BN topology DSL, query predicate syntax, /observe bodies).
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzReadCSV -fuzztime=10s ./internal/relation
	$(GO) test -run=NONE -fuzz=FuzzParse -fuzztime=10s ./internal/bn
	$(GO) test -run=NONE -fuzz=FuzzParseQuery -fuzztime=10s ./internal/query
	$(GO) test -run=NONE -fuzz=FuzzParseObserve -fuzztime=10s ./cmd/mrslserve
