# Tier-1 verification targets. `make ci` is the gate every change must
# pass: vet, the full test suite under the race detector, and a one-shot
# smoke of the derivation benchmarks (exercising the streaming engine end
# to end).

GO ?= go

.PHONY: ci vet test race bench-smoke fuzz-smoke build

ci: vet race bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench-smoke:
	$(GO) test -run=NONE -bench=Derive -benchtime=1x .

# Short fuzzing pass over the two external input parsers.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzReadCSV -fuzztime=10s ./internal/relation
	$(GO) test -run=NONE -fuzz=FuzzParse -fuzztime=10s ./internal/bn
