# Tier-1 verification targets. `make ci` is the gate every change must
# pass: vet, the full test suite under the race detector, a one-shot
# smoke of the derivation benchmarks (exercising the streaming engine end
# to end), an end-to-end serving smoke of cmd/mrslserve over HTTP, and a
# one-shot publish of the concurrent-serving benchmark into
# BENCH_engine.json.

GO ?= go

.PHONY: ci vet test race bench-smoke serve-smoke bench-serve fuzz-smoke build

ci: vet race bench-smoke serve-smoke bench-serve

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench-smoke:
	$(GO) test -run=NONE -bench=Derive -benchtime=1x .

# Build mrslserve, boot it on a random port, POST one derivation over
# HTTP, and check the streamed NDJSON and the stats endpoint.
serve-smoke:
	sh scripts/serve-smoke.sh

# Publish the concurrent serving benchmark (1/4/16 overlapping streams on
# one engine) as go-test JSON events, so serving throughput is tracked
# run over run.
bench-serve:
	$(GO) test -run=NONE -bench=BenchmarkEngineConcurrent -benchtime=1x -json . > BENCH_engine.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_engine.json | head -3

# Short fuzzing pass over the two external input parsers.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzReadCSV -fuzztime=10s ./internal/relation
	$(GO) test -run=NONE -fuzz=FuzzParse -fuzztime=10s ./internal/bn
