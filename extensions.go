package repro

import (
	"repro/internal/gibbs"
	"repro/internal/lazy"
	"repro/internal/pdb"
	"repro/internal/relation"
)

// This file exposes the reproduction's extension surfaces through the root
// package: structured queries with lazy query-targeted inference (the
// paper's future-work Section VIII), Gibbs convergence diagnostics, PK-FK
// joins, and continuous-attribute discretization (both from the paper's
// preliminaries).

// Structured-query types re-exported from the pdb package.
type (
	// Cond is one equality condition attr = value.
	Cond = pdb.Cond
	// ConjQuery is a conjunction of equality conditions.
	ConjQuery = pdb.ConjQuery
	// LazyDB answers structured queries over an incomplete relation,
	// inferring probability values only where a query requires them.
	LazyDB = lazy.DB
	// LazyStats counts the inference work a LazyDB performed and avoided.
	LazyStats = lazy.Stats
	// GibbsDiagnostics reports chain-convergence evidence (split R-hat,
	// effective sample size).
	GibbsDiagnostics = gibbs.Diagnostics
	// JoinSpec configures a primary-foreign key join.
	JoinSpec = relation.JoinSpec
	// BucketStrategy selects equal-width or equal-frequency bucketing.
	BucketStrategy = relation.BucketStrategy
	// RawTable is string-typed tabular input prior to discretization.
	RawTable = relation.RawTable
)

// Bucketing strategies for DiscretizeTable.
const (
	EqualWidth     = relation.EqualWidth
	EqualFrequency = relation.EqualFrequency
)

// NewLazyDB wraps a learned model and an incomplete relation into a lazily
// derived probabilistic database: queries classify tuples by their known
// values and infer distributions only for genuinely open tuples, memoizing
// the results ("partial materialization").
func NewLazyDB(m *Model, rel *Relation, opt GibbsOptions) (*LazyDB, error) {
	return lazy.New(m, rel, lazy.Config{
		Method:  opt.Method,
		Samples: opt.Samples,
		BurnIn:  opt.BurnIn,
		Seed:    opt.Seed,
	})
}

// Diagnose runs several independent Gibbs chains for tuple t and reports
// split R-hat and effective sample size, the "standard techniques" the
// paper defers burn-in estimation to.
func Diagnose(m *Model, t Tuple, opt GibbsOptions, chains, samplesPerChain int) (*GibbsDiagnostics, error) {
	s, err := gibbs.New(m, opt.config())
	if err != nil {
		return nil, err
	}
	return s.Diagnose(t, chains, samplesPerChain)
}

// AutoTuneGibbs doubles the per-chain sample budget until the chains for t
// converge (split R-hat below threshold), returning the recommended
// burn-in and per-tuple sample count.
func AutoTuneGibbs(m *Model, t Tuple, opt GibbsOptions, threshold float64, minSamples, maxSamples int) (burnIn, samples int, diag *GibbsDiagnostics, err error) {
	s, err := gibbs.New(m, opt.config())
	if err != nil {
		return 0, 0, nil, err
	}
	return s.AutoTune(t, threshold, minSamples, maxSamples)
}

// Join computes the primary-foreign key join of two relations so that
// cross-relation correlations become learnable, as the paper sketches in
// Section I-B. Dangling or missing foreign keys yield missing right-side
// values — inference targets like any other missing data.
func Join(left, right *Relation, spec JoinSpec) (*Relation, error) {
	return relation.Join(left, right, spec)
}

// DiscretizeTable converts a raw string table into a relation, bucketing
// numeric columns into the given number of sub-ranges (Section II's
// treatment of continuous attributes).
func DiscretizeTable(raw RawTable, buckets int, strategy BucketStrategy) (*Relation, error) {
	rel, _, err := relation.DiscretizeTable(raw, buckets, strategy)
	return rel, err
}
