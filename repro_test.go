package repro

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/relation"
)

func matchmakingModel(t *testing.T) (*Model, *Relation) {
	t.Helper()
	rel := relation.Matchmaking()
	m, err := Learn(rel, LearnOptions{SupportThreshold: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	return m, rel
}

func TestLearnFacade(t *testing.T) {
	m, rel := matchmakingModel(t)
	if m.Schema.NumAttrs() != rel.Schema.NumAttrs() {
		t.Error("schema mismatch")
	}
	// Only the 8 complete tuples are learned from.
	if m.Stats.TrainingSize != 8 {
		t.Errorf("training size = %d, want 8", m.Stats.TrainingSize)
	}
	onlyIncomplete := NewRelation(rel.Schema)
	if err := onlyIncomplete.Append(Tuple{0, Missing, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := Learn(onlyIncomplete, LearnOptions{SupportThreshold: 0.01}); err == nil {
		t.Error("relation without complete tuples should fail")
	}
}

func TestInferSingleFacade(t *testing.T) {
	m, _ := matchmakingModel(t)
	t1 := Tuple{Missing, 0, 0, 1}
	for _, method := range []Method{AllAveraged(), AllWeighted(), BestAveraged(), BestWeighted()} {
		d, err := InferSingle(m, t1, 0, method)
		if err != nil {
			t.Fatal(err)
		}
		if len(d) != 3 || !d.IsNormalized(1e-9) || !d.IsPositive() {
			t.Errorf("method %v: invalid estimate %v", method, d)
		}
	}
}

func TestInferJointFacade(t *testing.T) {
	m, _ := matchmakingModel(t)
	t12 := Tuple{1, 2, Missing, Missing} // the paper's t12: 30, MS, ?, ?
	j, err := InferJoint(m, t12, GibbsOptions{Samples: 1500, BurnIn: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if j.Size() != 4 { // inc (2) x nw (2)
		t.Fatalf("joint size = %d, want 4", j.Size())
	}
	if !j.P.IsNormalized(1e-9) || !j.P.IsPositive() {
		t.Errorf("invalid joint %v", j.P)
	}
}

func TestInferJointDefaults(t *testing.T) {
	m, _ := matchmakingModel(t)
	// Zero options: defaults kick in (2000 samples, best-averaged).
	j, err := InferJoint(m, Tuple{Missing, Missing, 0, 0}, GibbsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if j.Size() != 9 {
		t.Errorf("joint size = %d, want 9", j.Size())
	}
}

func TestInferWorkloadFacade(t *testing.T) {
	m, rel := matchmakingModel(t)
	_, ri := rel.Split()
	var workload []Tuple
	workload = append(workload, ri.Tuples...)
	tuples, joints, err := InferWorkload(m, workload, GibbsOptions{Samples: 300, BurnIn: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != len(joints) {
		t.Fatal("misaligned results")
	}
	if len(tuples) != 9 { // the 9 distinct incomplete tuples of Fig. 1
		t.Errorf("distinct tuples = %d, want 9", len(tuples))
	}
	for i := range joints {
		if !joints[i].P.IsNormalized(1e-9) {
			t.Errorf("tuple %v: joint not normalized", tuples[i])
		}
	}
}

// TestDeriveEndToEnd runs the paper's full pipeline on the Fig. 1 relation
// and checks the output database structure.
func TestDeriveEndToEnd(t *testing.T) {
	m, rel := matchmakingModel(t)
	db, err := Derive(m, rel, DeriveOptions{
		Gibbs: GibbsOptions{Samples: 400, BurnIn: 40, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Certain) != 8 {
		t.Errorf("certain tuples = %d, want 8", len(db.Certain))
	}
	if len(db.Blocks) != 9 {
		t.Errorf("blocks = %d, want 9", len(db.Blocks))
	}
	for _, b := range db.Blocks {
		if math.Abs(b.ProbSum()-1) > 1e-6 {
			t.Errorf("block for %v sums to %v", b.Base, b.ProbSum())
		}
		missing := b.Base.MissingAttrs()
		for _, alt := range b.Alts {
			if !alt.Tuple.IsComplete() {
				t.Errorf("incomplete alternative %v", alt.Tuple)
			}
			for a, v := range b.Base {
				if v != Missing && alt.Tuple[a] != v {
					t.Errorf("alternative %v changed known value of %v", alt.Tuple, b.Base)
				}
			}
		}
		_ = missing
	}
}

func TestDeriveMaxAlternatives(t *testing.T) {
	m, rel := matchmakingModel(t)
	db, err := Derive(m, rel, DeriveOptions{
		Gibbs:           GibbsOptions{Samples: 300, BurnIn: 30, Seed: 9},
		MaxAlternatives: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range db.Blocks {
		if len(b.Alts) > 2 {
			t.Errorf("block for %v has %d alternatives", b.Base, len(b.Alts))
		}
		if math.Abs(b.ProbSum()-1) > 1e-6 {
			t.Errorf("capped block not renormalized: %v", b.ProbSum())
		}
	}
}

func TestModelSaveLoadFacade(t *testing.T) {
	m, _ := matchmakingModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != m.Size() {
		t.Errorf("size %d != %d", back.Size(), m.Size())
	}
}

func TestCSVFacade(t *testing.T) {
	rel, err := ReadCSV(strings.NewReader("a,b\nx,1\ny,?\n"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rel); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "y,?") {
		t.Errorf("roundtrip lost missing marker:\n%s", buf.String())
	}
}

func TestNewSchemaFacade(t *testing.T) {
	s, err := NewSchema([]Attribute{{Name: "x", Domain: []string{"a", "b"}}})
	if err != nil || s.NumAttrs() != 1 {
		t.Errorf("NewSchema: %v, %v", s, err)
	}
	if _, err := NewSchema(nil); err == nil {
		t.Error("empty schema should fail")
	}
}

func TestDeriveParallelWorkers(t *testing.T) {
	m, rel := matchmakingModel(t)
	db, err := Derive(m, rel, DeriveOptions{
		Gibbs:   GibbsOptions{Samples: 300, BurnIn: 30, Seed: 11},
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Certain) != 8 || len(db.Blocks) != 9 {
		t.Fatalf("parallel derive: %d certain, %d blocks", len(db.Certain), len(db.Blocks))
	}
	for _, b := range db.Blocks {
		if math.Abs(b.ProbSum()-1) > 1e-6 {
			t.Errorf("block for %v sums to %v", b.Base, b.ProbSum())
		}
	}
}
