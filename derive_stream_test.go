package repro

import (
	"math/rand"
	"testing"

	"repro/internal/bn"
	"repro/internal/pdb"
	"repro/internal/relation"
)

// collectStream materializes a DeriveStream by hand, exactly as the
// Derive collector does.
func collectStream(t *testing.T, m *Model, rel *Relation, opt DeriveOptions) *Database {
	t.Helper()
	db := pdb.NewDatabase(rel.Schema)
	err := DeriveStream(m, rel, opt, func(it DeriveItem) error {
		if it.Certain() {
			return db.AddCertain(it.Tuple)
		}
		return db.AddBlock(it.Block)
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func requireSameDatabase(t *testing.T, want, got *Database, label string) {
	t.Helper()
	if len(want.Certain) != len(got.Certain) || len(want.Blocks) != len(got.Blocks) {
		t.Fatalf("%s: shape differs: %d/%d certain, %d/%d blocks",
			label, len(want.Certain), len(got.Certain), len(want.Blocks), len(got.Blocks))
	}
	for i := range want.Certain {
		if want.Certain[i].Key() != got.Certain[i].Key() {
			t.Fatalf("%s: certain tuple %d differs", label, i)
		}
	}
	for i := range want.Blocks {
		wb, gb := want.Blocks[i], got.Blocks[i]
		if wb.Base.Key() != gb.Base.Key() || len(wb.Alts) != len(gb.Alts) {
			t.Fatalf("%s: block %d shape differs", label, i)
		}
		for k := range wb.Alts {
			if wb.Alts[k].Prob != gb.Alts[k].Prob ||
				wb.Alts[k].Tuple.Key() != gb.Alts[k].Tuple.Key() {
				t.Fatalf("%s: block %d alt %d differs: %v vs %v",
					label, i, k, wb.Alts[k], gb.Alts[k])
			}
		}
	}
}

// TestDeriveStreamEquivalenceMatchmaking: on the quickstart matchmaking
// relation, the collected stream with a parallel voting pool is
// bit-identical to the sequential Derive result at the same seed.
func TestDeriveStreamEquivalenceMatchmaking(t *testing.T) {
	m, rel := matchmakingModel(t)
	opt := DeriveOptions{
		Method: BestAveraged(),
		Gibbs:  GibbsOptions{Samples: 300, BurnIn: 30, Seed: 11},
	}
	sequential, err := Derive(m, rel, opt)
	if err != nil {
		t.Fatal(err)
	}
	par := opt
	par.VoteWorkers = 8
	requireSameDatabase(t, sequential, collectStream(t, m, rel, par), "matchmaking")
}

// TestDeriveStreamEquivalenceLarge: same equivalence on a generated
// 1000-tuple relation mixing complete tuples with duplicated single- and
// multi-missing damage patterns.
func TestDeriveStreamEquivalenceLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	top, err := bn.ByID("BN10")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := bn.Instantiate(top, rng)
	if err != nil {
		t.Fatal(err)
	}
	train := inst.SampleRelation(rng, 4000)
	m, err := Learn(train, LearnOptions{SupportThreshold: 0.005})
	if err != nil {
		t.Fatal(err)
	}

	nAttrs := top.NumAttrs()
	patterns := make([]Tuple, 10)
	for i := range patterns {
		tu := inst.Sample(rng)
		k := 1 + rng.Intn(2)
		for _, a := range rng.Perm(nAttrs)[:k] {
			tu[a] = relation.Missing
		}
		patterns[i] = tu
	}
	rel := NewRelation(top.Schema())
	for i := 0; i < 1000; i++ {
		var tu Tuple
		if rng.Float64() < 0.4 {
			tu = inst.Sample(rng)
		} else {
			tu = patterns[rng.Intn(len(patterns))].Clone()
		}
		if err := rel.Append(tu); err != nil {
			t.Fatal(err)
		}
	}

	opt := DeriveOptions{
		Method:          BestAveraged(),
		Gibbs:           GibbsOptions{Samples: 200, BurnIn: 20, Seed: 9},
		MaxAlternatives: 6,
	}
	sequential, err := Derive(m, rel, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(sequential.Certain)+len(sequential.Blocks) != 1000 {
		t.Fatalf("derived %d certain + %d blocks, want 1000 total",
			len(sequential.Certain), len(sequential.Blocks))
	}
	par := opt
	par.VoteWorkers = 8
	requireSameDatabase(t, sequential, collectStream(t, m, rel, par), "1k relation")
}
