package repro

import (
	"context"

	"repro/internal/derive"
	"repro/internal/query"
)

// This file exposes the engine-native probabilistic query subsystem
// (internal/query) through the root package: compiled conjunctive
// queries over a model's schema, evaluated extensionally on top of an
// Engine's shared caches with bound-based pruning and early termination.
// Answers are bit-identical to deriving the full probabilistic database
// through the same engine and evaluating naively, yet selective queries
// derive only a fraction of the tuples; see EngineStats' Query* counters
// for the achieved pruning.

// Query types re-exported from the query package.
type (
	// QueryOp is a query operator: QueryCount, QueryExists, QueryTopK, or
	// QueryGroupBy.
	QueryOp = query.Op
	// QueryCmp is a predicate comparison (QueryEq, QueryNe, QueryLt,
	// QueryLe, QueryGt, QueryGe). Ordered comparisons compare domain
	// positions, which is meaningful for domains listed in semantic order
	// (discretized numeric buckets are).
	QueryCmp = query.Cmp
	// QueryPred is one predicate: Attr Cmp Value, Value a domain code.
	QueryPred = query.Pred
	// QuerySpec is the uncompiled form of a query, as CLI flags and HTTP
	// parameters express it.
	QuerySpec = query.Spec
	// CompiledQuery is a validated, compiled query over one schema.
	CompiledQuery = query.Query
	// QueryResult is the answer of one evaluation, including the pruning
	// counters achieved.
	QueryResult = query.Result
	// QueryRow is one TopK result row.
	QueryRow = query.Row
	// QueryGroup is one GroupBy histogram bucket.
	QueryGroup = query.Group
	// QueryCounters partition one evaluation's scanned tuples by the
	// inference each cost.
	QueryCounters = query.Counters
	// QueryPlanInfo summarizes the compiled plan an evaluation executed:
	// selectivity-ordered predicates, per-tier tuple counts, and whether
	// dissociation bounds were in play. Attached to QueryResult.Plan.
	QueryPlanInfo = query.PlanInfo
	// QueryPlanTiming is the explain-analyze block on QueryPlanInfo.Timing:
	// measured planning, wall, and per-tier resolution durations for one
	// evaluation. Attached only when QuerySpec.Analyze was set (or the
	// evaluation context carried a Trace); timing never changes answers.
	QueryPlanTiming = query.PlanTiming
	// QueryTierTiming is one measured tier of a QueryPlanTiming: how many
	// tuples resolved through it and the total duration they took.
	QueryTierTiming = query.TierTiming
	// QueryAdaptiveInfo is the adaptive-execution block on
	// QueryPlanInfo.Adaptive: shared envelope-cache traffic, the cost
	// model's enumeration decisions, and the executor's re-plan rounds.
	// Nil when the evaluation ran with QuerySpec.Static.
	QueryAdaptiveInfo = query.AdaptiveInfo
	// QueryProgressFunc observes a TopK or GroupBy evaluation in flight;
	// see Engine.QueryStream.
	QueryProgressFunc = query.ProgressFunc
	// BoundInterval is a sound [Lo, Hi] probability interval from the
	// engine's dissociation bound engine.
	BoundInterval = derive.Interval
)

// Query operators.
const (
	QueryCount   = query.Count
	QueryExists  = query.Exists
	QueryTopK    = query.TopK
	QueryGroupBy = query.GroupBy
)

// Predicate comparisons.
const (
	QueryEq = query.Eq
	QueryNe = query.Ne
	QueryLt = query.Lt
	QueryLe = query.Le
	QueryGt = query.Gt
	QueryGe = query.Ge
)

// ParseQueryOp converts a wire name ("count", "exists", "topk",
// "groupby") into a QueryOp.
func ParseQueryOp(s string) (QueryOp, error) { return query.ParseOp(s) }

// ParseQueryWhere parses the textual conjunction syntax shared by the
// mrslquery CLI and the mrslserve /query endpoint — comma-separated
// conditions "attr=value", "attr!=value", "attr<value", "attr<=value",
// "attr>value", "attr>=value" — against the schema.
func ParseQueryWhere(s *Schema, where string) ([]QueryPred, error) {
	return query.ParseWhere(s, where)
}

// CompileQuery validates spec against the schema (normally a model's) and
// compiles it for evaluation. Count, Exists, and TopK require at least
// one predicate; GroupBy requires a group attribute and accepts zero
// predicates (the unfiltered histogram).
func CompileQuery(s *Schema, spec QuerySpec) (*CompiledQuery, error) {
	return query.Compile(s, spec)
}

// Query evaluates a compiled query over rel through the plan/executor
// pipeline on the engine's shared caches: the planner orders predicate
// evaluation by estimated selectivity and classifies every tuple into a
// resolution tier (attaching sound dissociation bound intervals to
// multi-missing tuples — see Engine.BoundCPD), and the executor consumes
// the tiers in increasing cost order — tuples decided by evidence cost
// nothing, single-missing tuples are decided from the shared local-CPD
// cache without expanding a block, multi-missing tuples whose interval
// clears or refutes the threshold (or cannot reach TopK's rank k) are
// decided without sampling, and only the remainder is scheduled for full
// derivation. On a chains-mode engine (DeriveOptions.Workers > 1) the
// answer is bit-identical to deriving rel completely through this engine
// and evaluating the stream naively, for every worker count; with the
// tuple-DAG sampler (Workers <= 1) multi-missing estimates are
// workload-dependent by construction — the same caveat derivation itself
// carries — so query-time single-tuple estimates can differ from a full
// derivation's (and bounds stay disabled). The compiled plan summary is
// attached to QueryResult.Plan. Canceling ctx aborts the evaluation.
func (e *Engine) Query(ctx context.Context, rel *Relation, q *CompiledQuery) (*QueryResult, error) {
	return query.Eval(ctx, e.eng, rel, q)
}

// QueryPools is Query with per-request worker pool sizes for the
// prefetched derivation worklist (sizes affect scheduling only, never
// the answer).
func (e *Engine) QueryPools(ctx context.Context, rel *Relation, q *CompiledQuery, pools Pools) (*QueryResult, error) {
	return query.EvalPools(ctx, e.eng, rel, q, pools)
}

// QueryStream is QueryPools with a progress observer: for TopK and
// GroupBy evaluations, progress is called after each resolved uncertain
// tuple with the live, partially filled result, so serving paths can
// stream partial rows and group histograms as blocks resolve. Read the
// result synchronously inside the callback and do not retain it; a
// progress error aborts the evaluation. Other operators fold scalars and
// report nothing incremental.
func (e *Engine) QueryStream(ctx context.Context, rel *Relation, q *CompiledQuery, pools Pools, progress QueryProgressFunc) (*QueryResult, error) {
	return query.EvalPoolsProgress(ctx, e.eng, rel, q, pools, progress)
}

// PlanQuery compiles the evaluation plan of q over rel on this engine
// without executing it: the selectivity-ordered predicates, the
// per-tier tuple counts, and (for bound-capable operators) the
// dissociation intervals' tier assignment. Planning can pay for
// envelope votes on a cold cache, so it honors ctx like Query does.
// Useful for explain tooling and planner benchmarks; Engine.Query runs
// the same planner internally and attaches the summary to
// QueryResult.Plan.
func (e *Engine) PlanQuery(ctx context.Context, rel *Relation, q *CompiledQuery) (*QueryPlanInfo, error) {
	return query.Plan(ctx, e.eng, rel, q)
}

// Intensional SPJ types re-exported from the query package.
type (
	// QuerySPJInput is one named input relation of a multi-relation query.
	QuerySPJInput = query.SPJInput
	// QuerySPJJoin is one PK-FK equi-join condition in an SPJ chain.
	QuerySPJJoin = query.SPJJoin
	// QuerySPJSpec is the uncompiled multi-relation query: the
	// single-relation QuerySpec plus inputs, join chain, and optional
	// projection (distinct-answer mode, count/topk only).
	QuerySPJSpec = query.SPJSpec
	// CompiledSPJ is a compiled SPJ query: the joined, model-aligned
	// relation with per-row lineage, the compiled query over it, and the
	// safety verdict.
	CompiledSPJ = query.SPJ
	// SPJStatement is a parsed SQL-ish statement (see ParseSPJ); Bind
	// resolves its relation names against concrete inputs.
	SPJStatement = query.SPJText
	// QueryJoinPlanInfo is the join/safety section of a plan summary:
	// join order, conditions, projection, and the safety verdict.
	QueryJoinPlanInfo = query.JoinPlanInfo
)

// ParseSPJ parses the SQL-ish statement surface of intensional queries:
//
//	[select <cols>|*] from <rel> [join <rel> on <left>=<right>]... [where <conds>]
//
// Keywords are case-insensitive; the where tail uses the ParseQueryWhere
// conjunction syntax. The operator and its parameters stay outside the
// statement (CLI flags, HTTP parameters). Bind the result to concrete
// input relations with SPJStatement.Bind, then compile with CompileSPJ.
func ParseSPJ(s string) (*SPJStatement, error) { return query.ParseSPJ(s) }

// CompileSPJ validates and compiles a multi-relation query against the
// model schema: inputs are cloned and re-encoded into model domains, the
// PK-FK join chain is folded with per-row lineage, the joined relation is
// aligned to the model schema, and the safety analyzer classifies the
// plan. Safe (hierarchical) plans evaluate extensionally with exact
// answers; unsafe plans stay exact for linear operators and surface
// dissociation bounds for exists (see Engine.QuerySPJ).
func CompileSPJ(s *Schema, spec QuerySPJSpec) (*CompiledSPJ, error) {
	return query.CompileSPJ(s, spec)
}

// QuerySPJ evaluates a compiled SPJ query on this engine. Safe plans and
// linear operators (count, topk, groupby) answer bit-identically to
// joining the inputs and deriving every tuple through this engine. For
// unsafe exists plans the answer is the dissociated existence mass — a
// sound upper bound on the intensional probability — flagged on
// QueryResult.Dissociated with a sound [lo, hi] interval on
// QueryResult.Bounds; a thresholded exists whose interval clears or
// refutes the threshold is decided without any derivation. Projected
// (distinct-answer) queries return one row per distinct projected value.
func (e *Engine) QuerySPJ(ctx context.Context, spj *CompiledSPJ) (*QueryResult, error) {
	return query.EvalSPJ(ctx, e.eng, spj, derive.Pools{}, nil)
}

// QuerySPJStream is QuerySPJ with per-request pools and a progress
// observer (unprojected TopK/GroupBy only, like Engine.QueryStream).
func (e *Engine) QuerySPJStream(ctx context.Context, spj *CompiledSPJ, pools Pools, progress QueryProgressFunc) (*QueryResult, error) {
	return query.EvalSPJ(ctx, e.eng, spj, pools, progress)
}

// PlanSPJ compiles the evaluation plan of an SPJ query without executing
// it: the single-relation plan over the joined relation plus the join
// order, conditions, projection, and safety verdict — the -explain
// primitive for SQL statements.
func (e *Engine) PlanSPJ(ctx context.Context, spj *CompiledSPJ) (*QueryPlanInfo, error) {
	return query.PlanSPJ(ctx, e.eng, spj)
}

// BoundCPD computes a sound dissociation-style probability interval for
// a multi-missing tuple: the probability that every missing attribute
// completes into its satisfying set (sat[a] per value code, nil =
// unconstrained) is bracketed by [Lo, Hi] relative to the very block
// this engine's derivation would produce. Built from per-attribute
// conditional-CPD envelopes memoized in the engine's shared CPD cache;
// degrades to the vacuous [0, 1] on DAG-mode or alternative-capped
// engines. This is the primitive behind the query planner's
// multi-missing pruning.
func (e *Engine) BoundCPD(t Tuple, sat [][]bool) (BoundInterval, error) {
	return e.eng.BoundCPD(t, sat)
}
