// Command mrslinfer applies a saved MRSL model to a CSV relation with
// missing values and prints the derived probabilistic database: one block
// of probability-annotated completions per incomplete tuple, in the style
// of the paper's Fig. 1 call-out.
//
// Usage:
//
//	mrslinfer -model model.json -in data.csv [-samples 2000] [-burnin 100]
//	          [-method best-averaged] [-top 0] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
)

func main() {
	var (
		modelPath = flag.String("model", "", "model JSON from mrsllearn (required)")
		in        = flag.String("in", "", "input CSV relation (required)")
		samples   = flag.Int("samples", 2000, "Gibbs samples per tuple (multi-missing tuples)")
		burnin    = flag.Int("burnin", 100, "Gibbs burn-in sweeps")
		method    = flag.String("method", "best-averaged", "voting method: all-averaged, all-weighted, best-averaged, best-weighted")
		top       = flag.Int("top", 0, "keep only the top-K completions per block (0 = all)")
		seed      = flag.Int64("seed", 1, "sampler seed")
	)
	flag.Parse()
	if *modelPath == "" || *in == "" {
		fmt.Fprintln(os.Stderr, "mrslinfer: -model and -in are required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*modelPath, *in, *samples, *burnin, *method, *top, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "mrslinfer: %v\n", err)
		os.Exit(1)
	}
}

func parseMethod(s string) (repro.Method, error) {
	switch s {
	case "all-averaged":
		return repro.AllAveraged(), nil
	case "all-weighted":
		return repro.AllWeighted(), nil
	case "best-averaged":
		return repro.BestAveraged(), nil
	case "best-weighted":
		return repro.BestWeighted(), nil
	}
	return repro.Method{}, fmt.Errorf("unknown method %q", s)
}

func run(modelPath, in string, samples, burnin int, methodName string, top int, seed int64) error {
	method, err := parseMethod(methodName)
	if err != nil {
		return err
	}
	mf, err := os.Open(modelPath)
	if err != nil {
		return err
	}
	defer mf.Close()
	model, err := repro.LoadModel(mf)
	if err != nil {
		return err
	}
	df, err := os.Open(in)
	if err != nil {
		return err
	}
	defer df.Close()
	// Parse against the model's schema: inference-time data rarely
	// exercises every domain value, and re-inferring domains would
	// misalign value codes with the model.
	rel, err := repro.ReadCSVInSchema(df, model.Schema)
	if err != nil {
		return err
	}

	db, err := repro.Derive(model, rel, repro.DeriveOptions{
		Gibbs:           repro.GibbsOptions{Samples: samples, BurnIn: burnin, Method: method, Seed: seed},
		Method:          method,
		MaxAlternatives: top,
	})
	if err != nil {
		return err
	}

	s := model.Schema
	header := strings.Join(s.SortedAttrNames(), ",")
	fmt.Printf("# derived probabilistic database: %d certain tuples, %d blocks\n",
		len(db.Certain), len(db.Blocks))
	fmt.Printf("# %s,prob\n", header)
	for _, t := range db.Certain {
		fmt.Printf("%s,1\n", renderTuple(s, t))
	}
	for bi, b := range db.Blocks {
		fmt.Printf("# block %d for %s\n", bi+1, b.Base.Format(s))
		for _, alt := range b.Alts {
			fmt.Printf("%s,%.4f\n", renderTuple(s, alt.Tuple), alt.Prob)
		}
	}
	return nil
}

func renderTuple(s *repro.Schema, t repro.Tuple) string {
	parts := make([]string, len(t))
	for i, v := range t {
		if v == repro.Missing {
			parts[i] = "?"
		} else {
			parts[i] = s.Attrs[i].Domain[v]
		}
	}
	return strings.Join(parts, ",")
}
