package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro"
)

const inferCSV = `age,inc
20,50K
20,50K
20,50K
30,100K
30,100K
30,100K
?,50K
30,?
?,?
`

func setup(t *testing.T) (modelPath, dataPath string) {
	t.Helper()
	dir := t.TempDir()
	dataPath = filepath.Join(dir, "data.csv")
	if err := os.WriteFile(dataPath, []byte(inferCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := repro.ReadCSV(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	m, err := repro.Learn(rel, repro.LearnOptions{SupportThreshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	modelPath = filepath.Join(dir, "model.json")
	mf, err := os.Create(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(mf); err != nil {
		t.Fatal(err)
	}
	mf.Close()
	return modelPath, dataPath
}

func TestParseMethod(t *testing.T) {
	for _, name := range []string{"all-averaged", "all-weighted", "best-averaged", "best-weighted"} {
		if _, err := parseMethod(name); err != nil {
			t.Errorf("parseMethod(%q): %v", name, err)
		}
	}
	if _, err := parseMethod("bogus"); err == nil {
		t.Error("bogus method should fail")
	}
}

func TestRunInferEndToEnd(t *testing.T) {
	model, data := setup(t)
	if err := run(model, data, 300, 30, "best-averaged", 0, 1); err != nil {
		t.Fatal(err)
	}
	// Top-K capping works too.
	if err := run(model, data, 300, 30, "all-averaged", 2, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunInferErrors(t *testing.T) {
	model, data := setup(t)
	if err := run(model, data, 100, 10, "bogus", 0, 1); err == nil {
		t.Error("bad method should fail")
	}
	if err := run(filepath.Join(t.TempDir(), "no.json"), data, 100, 10, "best-averaged", 0, 1); err == nil {
		t.Error("missing model should fail")
	}
	if err := run(model, filepath.Join(t.TempDir(), "no.csv"), 100, 10, "best-averaged", 0, 1); err == nil {
		t.Error("missing data should fail")
	}
	// Schema mismatch: a CSV with a different column count.
	other := filepath.Join(t.TempDir(), "other.csv")
	if err := os.WriteFile(other, []byte("x\n1\n2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(model, other, 100, 10, "best-averaged", 0, 1); err == nil {
		t.Error("schema mismatch should fail")
	}
}
