// Command mrslbench regenerates the tables and figures of "Deriving
// Probabilistic Databases with Inference Ensembles" (ICDE 2011) from the
// reproduction's experimental framework.
//
// Usage:
//
//	mrslbench -exp table1|fig4a|fig4b|fig4c|table2|fig5|fig6|fig7|
//	               fig8a|fig8b|fig8c|fig9|fig10|fig11|
//	               ablation-indep|ablation-schemes|ablation-parallel|
//	               ablation-derive|all
//	          [-scale quick|paper] [-seed N] [-networks BN8,BN9]
//	          [-csv] [-quiet] [-list]
//
// The quick scale (default) finishes in seconds to minutes and preserves
// each figure's qualitative shape; the paper scale uses the published
// parameters (100k training tuples, 3 instances x 3 splits) and can run
// for hours, as the original experiments did. -csv emits plot-ready CSV;
// -list prints the experiment ids.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiment"
)

// allExperiments lists every runnable experiment id in presentation order.
var allExperiments = []string{
	"table1", "fig7", "fig4a", "fig4b", "fig4c", "table2",
	"fig5", "fig6", "fig8a", "fig8b", "fig8c", "fig9", "fig10",
	"fig11", "ablation-indep", "ablation-schemes", "ablation-parallel",
	"ablation-derive",
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (table1, fig4a..fig11, ablation-indep, all)")
		scale    = flag.String("scale", "quick", "parameter scale: quick or paper")
		seed     = flag.Int64("seed", 0, "override experiment seed (0 keeps the scale's default)")
		networks = flag.String("networks", "", "comma-separated network ids overriding each experiment's default set")
		quiet    = flag.Bool("quiet", false, "suppress progress lines")
		asCSV    = flag.Bool("csv", false, "emit results as CSV instead of aligned tables")
		list     = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()
	if *list {
		for _, id := range allExperiments {
			fmt.Println(id)
		}
		return
	}

	var opt experiment.Options
	switch *scale {
	case "quick":
		opt = experiment.Quick()
	case "paper":
		opt = experiment.Paper()
	default:
		fmt.Fprintf(os.Stderr, "mrslbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *seed != 0 {
		opt.Seed = *seed
	}
	if !*quiet {
		opt.Progress = os.Stderr
	}
	var nets []string
	if *networks != "" {
		nets = strings.Split(*networks, ",")
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = allExperiments
	}
	for _, id := range ids {
		if err := runFormat(id, opt, nets, *asCSV); err != nil {
			fmt.Fprintf(os.Stderr, "mrslbench: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}

// runFormat executes one experiment and prints it as a table or CSV.
func runFormat(id string, opt experiment.Options, nets []string, asCSV bool) error {
	tab, err := resolve(id, opt, nets)
	if err != nil {
		return err
	}
	if asCSV {
		return tab.WriteCSV(os.Stdout)
	}
	fmt.Println(tab.Render())
	return nil
}

// run executes one experiment and prints the aligned table (test hook).
func run(id string, opt experiment.Options, nets []string) error {
	return runFormat(id, opt, nets, false)
}

func resolve(id string, opt experiment.Options, nets []string) (*experiment.Table, error) {
	var (
		tab *experiment.Table
		err error
	)
	switch id {
	case "table1":
		tab = experiment.RunTable1()
	case "fig7":
		tab, err = experiment.RunFig7(nets)
	case "fig4a":
		_, tab, err = experiment.RunFig4a(opt, nets)
	case "fig4b":
		_, tab, err = experiment.RunFig4b(opt, nets)
	case "fig4c":
		_, tab, err = experiment.RunFig4c(opt, nets)
	case "table2":
		_, tab, err = experiment.RunTable2(opt, nets)
	case "fig5":
		_, tab, err = experiment.RunFig5(opt, nets)
	case "fig6":
		_, tab, err = experiment.RunFig6(opt, nets)
	case "fig8a":
		_, tab, err = experiment.RunFig8(opt, pick(nets, []string{"BN18", "BN19", "BN20"}), "depth")
	case "fig8b":
		_, tab, err = experiment.RunFig8(opt, pick(nets, []string{"BN8", "BN9", "BN17", "BN18"}), "attrs")
	case "fig8c":
		_, tab, err = experiment.RunFig8(opt, pick(nets, []string{"BN13", "BN14", "BN15", "BN16"}), "card")
	case "fig9":
		_, tab, err = experiment.RunFig9(opt, nets, nil)
	case "fig10":
		_, tab, err = experiment.RunFig10(opt, nets, 0)
	case "fig11":
		_, tab, err = experiment.RunFig11(opt, nets)
	case "ablation-indep":
		_, tab, err = experiment.RunAblationIndependent(opt, nets)
	case "ablation-schemes":
		_, tab, err = experiment.RunAblationSchemes(opt, nets)
	case "ablation-parallel":
		_, tab, err = experiment.RunAblationParallel(opt, nets, nil)
	case "ablation-derive":
		_, tab, err = experiment.RunAblationDerive(opt, nets, nil)
	default:
		return nil, fmt.Errorf("unknown experiment %q", id)
	}
	if err != nil {
		return nil, err
	}
	return tab, nil
}

// pick returns override if non-empty, else def.
func pick(override, def []string) []string {
	if len(override) > 0 {
		return override
	}
	return def
}
