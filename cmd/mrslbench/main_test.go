package main

import (
	"testing"

	"repro/internal/experiment"
)

// tinyOpt shrinks every knob so each runner finishes in well under a
// second.
func tinyOpt() experiment.Options {
	o := experiment.Quick()
	o.TrainSize = 600
	o.TrainSizes = []int{300}
	o.Supports = []float64{0.02}
	o.TestCount = 20
	o.GibbsSamples = 40
	o.GibbsSampleCounts = []int{40}
	o.GibbsBurnIn = 10
	o.WorkloadSizes = []int{15}
	return o
}

func TestRunEveryExperiment(t *testing.T) {
	nets := []string{"BN8"}
	ids := []string{"table1", "fig7", "fig4a", "fig4b", "fig4c", "table2",
		"fig5", "fig6", "fig9", "fig10", "fig11", "ablation-indep",
		"ablation-schemes", "ablation-parallel"}
	for _, id := range ids {
		if err := run(id, tinyOpt(), nets); err != nil {
			t.Errorf("%s: %v", id, err)
		}
	}
	// The fig8 variants pin their own default network lists.
	for _, id := range []string{"fig8a", "fig8b", "fig8c"} {
		if err := run(id, tinyOpt(), []string{"BN8", "BN9"}); err != nil {
			t.Errorf("%s: %v", id, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("fig99", tinyOpt(), nil); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestPick(t *testing.T) {
	if got := pick(nil, []string{"a"}); len(got) != 1 || got[0] != "a" {
		t.Errorf("pick default = %v", got)
	}
	if got := pick([]string{"x"}, []string{"a"}); len(got) != 1 || got[0] != "x" {
		t.Errorf("pick override = %v", got)
	}
}

func TestAllExperimentsResolvable(t *testing.T) {
	// Every listed id must be known to resolve (errors other than
	// "unknown experiment" are fine at zero scale; unknown ids are not).
	for _, id := range allExperiments {
		_, err := resolve(id, experiment.Options{}, nil)
		if err != nil && err.Error() == `unknown experiment "`+id+`"` {
			t.Errorf("%s listed but not resolvable", id)
		}
	}
}
