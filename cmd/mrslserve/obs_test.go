package main

// Serving-side observability tests: the /metrics exposition surface
// (structural Prometheus-text invariants, also scraped concurrently with
// in-flight streams under `make race`), explain-analyze and trace
// records on /query, and request-ID propagation.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro"
)

// promFamily is one parsed metric family from the text exposition.
type promFamily struct {
	buckets []float64 // cumulative bucket counts in le order (+Inf last)
	sum     float64
	count   float64
	hasSum  bool
	value   float64 // last plain sample (gauges)
	samples int
}

// parsePromText parses Prometheus text exposition output, keyed by metric
// name + label set, failing the test on malformed lines.
func parsePromText(t *testing.T, text string) map[string]*promFamily {
	t.Helper()
	fams := map[string]*promFamily{}
	get := func(key string) *promFamily {
		f, ok := fams[key]
		if !ok {
			f = &promFamily{}
			fams[key] = f
		}
		return f
	}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("metrics line without value: %q", line)
		}
		name, valStr := line[:i], line[i+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("metrics line %q: bad value: %v", line, err)
		}
		base, labels := name, ""
		if j := strings.IndexByte(name, '{'); j >= 0 {
			base, labels = name[:j], strings.TrimSuffix(name[j+1:], "}")
		}
		// Re-key the series on its identifying labels, le excluded, so
		// one histogram's buckets stay together per label set.
		var rest []string
		for _, pair := range strings.Split(labels, ",") {
			if pair != "" && !strings.HasPrefix(pair, "le=") {
				rest = append(rest, pair)
			}
		}
		key := func(b string) string {
			if len(rest) == 0 {
				return b
			}
			return b + "{" + strings.Join(rest, ",") + "}"
		}
		switch {
		case strings.HasSuffix(base, "_bucket"):
			f := get(key(strings.TrimSuffix(base, "_bucket")))
			f.buckets = append(f.buckets, val)
		case strings.HasSuffix(base, "_sum"):
			f := get(key(strings.TrimSuffix(base, "_sum")))
			f.sum, f.hasSum = val, true
		case strings.HasSuffix(base, "_count"):
			get(key(strings.TrimSuffix(base, "_count"))).count = val
		default:
			f := get(name) // full name with labels: gauges are label-distinct
			f.value = val
			f.samples++
		}
	}
	return fams
}

// checkPromInvariants asserts the structural histogram contract on every
// parsed family: buckets are cumulative (monotone non-decreasing), the
// +Inf bucket equals _count, and a non-empty histogram has a
// non-negative _sum.
func checkPromInvariants(t *testing.T, fams map[string]*promFamily) {
	t.Helper()
	for name, f := range fams {
		if len(f.buckets) == 0 {
			continue // plain gauge
		}
		for i := 1; i < len(f.buckets); i++ {
			if f.buckets[i] < f.buckets[i-1] {
				t.Errorf("%s: bucket %d (%v) < bucket %d (%v): not cumulative",
					name, i, f.buckets[i], i-1, f.buckets[i-1])
			}
		}
		if inf := f.buckets[len(f.buckets)-1]; inf != f.count {
			t.Errorf("%s: +Inf bucket %v != _count %v", name, inf, f.count)
		}
		if !f.hasSum {
			t.Errorf("%s: histogram without _sum", name)
		}
		if f.count > 0 && f.sum < 0 {
			t.Errorf("%s: _sum %v < 0 with %v observations", name, f.sum, f.count)
		}
	}
}

func scrapeMetrics(t *testing.T, ts *httptest.Server) (string, map[string]*promFamily) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("GET /metrics Content-Type = %q, want text/plain", ct)
	}
	fams := parsePromText(t, string(body))
	checkPromInvariants(t, fams)
	return string(body), fams
}

// TestServeMetricsEndpoint drives one derivation and one traced
// explain-analyze query through the server, then scrapes /metrics and
// checks the exposition: the per-endpoint request histograms counted the
// traffic, every EngineStats counter is exported as an mrsl_engine_*
// gauge, the admission counters and build info are present, and the
// whole output satisfies the Prometheus histogram invariants.
func TestServeMetricsEndpoint(t *testing.T) {
	model, _, csvBody := matchmakingFixture(t)
	ts := startServer(t, model)

	postDerive(t, ts, csvBody, "")
	attr := model.Schema.Attrs[0]
	params := "op=count&where=" + url.QueryEscape(attr.Name+"="+attr.Domain[0])
	resp, err := http.Post(ts.URL+"/query?"+params, "text/csv", bytes.NewReader(csvBody))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	text, fams := scrapeMetrics(t, ts)

	for _, path := range []string{"/derive", "/query"} {
		key := fmt.Sprintf(`mrsl_http_request_seconds{path="%s"}`, path)
		f := fams[key]
		if f == nil || f.count < 1 {
			t.Errorf("request histogram for %s not counted (%v)", path, f)
		}
	}
	for _, name := range repro.EngineStatsMetricNames("mrsl_engine_") {
		if !strings.Contains(text, name+" ") {
			t.Errorf("EngineStats counter %s missing from /metrics", name)
		}
	}
	// A derivation definitely resolved blocks: the stage histograms must
	// have observations, not just registrations.
	for _, name := range []string{"mrsl_derive_vote_seconds", "mrsl_query_exec_seconds"} {
		if f := fams[name]; f == nil || f.count < 1 {
			t.Errorf("stage histogram %s has no observations (%v)", name, f)
		}
	}
	for _, name := range []string{
		"mrsl_server_requests", "mrsl_server_accepted", "mrsl_server_failed",
		"mrsl_server_rejected", "mrsl_server_shed", "mrsl_server_panics",
		"mrsl_http_inflight", "mrsl_server_draining",
	} {
		if _, ok := fams[name]; !ok {
			t.Errorf("server gauge %s missing from /metrics", name)
		}
	}
	if fams["mrsl_server_requests"].value < 2 {
		t.Errorf("mrsl_server_requests = %v, want >= 2", fams["mrsl_server_requests"].value)
	}
	var buildInfo bool
	for key, f := range fams {
		if strings.HasPrefix(key, "mrsl_build_info{") && f.value == 1 {
			buildInfo = true
		}
	}
	if !buildInfo {
		t.Error("mrsl_build_info gauge missing or not 1")
	}
}

// TestServeMetricsConcurrentScrape scrapes /metrics repeatedly while
// derive streams are in flight: every scrape must parse and satisfy the
// histogram invariants even as racing writers observe into the shared
// buckets (`make race` runs this under the race detector).
func TestServeMetricsConcurrentScrape(t *testing.T) {
	model, _, csvBody := matchmakingFixture(t)
	ts := startServer(t, model)

	const streams, iters = 3, 4
	var wg sync.WaitGroup
	for w := 0; w < streams; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				resp, err := http.Post(ts.URL+"/derive?trace=1", "text/csv", bytes.NewReader(csvBody))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		scrapeMetrics(t, ts)
		select {
		case <-done:
			scrapeMetrics(t, ts) // one quiescent scrape after the load
			return
		default:
		}
	}
}

// TestServeExplainAnalyzeAndTrace posts the same query three ways and
// checks the observability contract: explain=analyze attaches the
// measured timing section to the summary's plan, trace=1 appends a
// {"kind":"trace"} record with spans, and a plain query carries neither
// — while the answer stays bit-identical across all three.
func TestServeExplainAnalyzeAndTrace(t *testing.T) {
	model, _, csvBody := matchmakingFixture(t)
	ts := startServer(t, model)

	attr := model.Schema.Attrs[0]
	base := "op=count&where=" + url.QueryEscape(attr.Name+"="+attr.Domain[0])

	post := func(params string) []map[string]any {
		t.Helper()
		resp, err := http.Post(ts.URL+"/query?"+params, "text/csv", bytes.NewReader(csvBody))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /query?%s: status %d: %s", params, resp.StatusCode, out)
		}
		var recs []map[string]any
		for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
			var r map[string]any
			if err := json.Unmarshal([]byte(line), &r); err != nil {
				t.Fatalf("bad NDJSON line %q: %v", line, err)
			}
			recs = append(recs, r)
		}
		return recs
	}
	find := func(recs []map[string]any, kind string) map[string]any {
		for _, r := range recs {
			if r["kind"] == kind {
				return r
			}
		}
		return nil
	}

	plain := post(base)
	analyzed := post(base + "&explain=analyze")
	traced := post(base + "&trace=1")

	// Bit-identical answers regardless of observability options.
	want := find(plain, "count")["expected"].(float64)
	for name, recs := range map[string][]map[string]any{"analyze": analyzed, "trace": traced} {
		if got := find(recs, "count")["expected"].(float64); got != want {
			t.Errorf("%s: expected count %v, want bit-identical %v", name, got, want)
		}
	}

	// Plain: no timing, no trace record.
	if pl := find(plain, "summary")["plan"].(map[string]any); pl["timing"] != nil {
		t.Errorf("plain query summary carries timing: %v", pl)
	}
	if find(plain, "trace") != nil {
		t.Error("plain query emitted a trace record")
	}

	// explain=analyze: summary plan gains the measured timing block.
	timing, ok := find(analyzed, "summary")["plan"].(map[string]any)["timing"].(map[string]any)
	if !ok {
		t.Fatal("explain=analyze summary has no plan.timing")
	}
	if wall := timing["wall_ms"].(float64); wall <= 0 {
		t.Errorf("timing.wall_ms = %v, want > 0", wall)
	}
	if tiers := timing["tiers"].([]any); len(tiers) == 0 {
		t.Error("timing.tiers empty on an inference workload")
	}

	// trace=1: timing plus a trailing trace record with named spans.
	tr := find(traced, "trace")
	if tr == nil {
		t.Fatal("trace=1 emitted no trace record")
	}
	if tr["request_id"] == "" {
		t.Error("trace record without request_id")
	}
	names := map[string]bool{}
	for _, s := range tr["spans"].([]any) {
		names[s.(map[string]any)["name"].(string)] = true
	}
	for _, want := range []string{"query.plan", "query.wall"} {
		if !names[want] {
			t.Errorf("trace spans missing %q: %v", want, names)
		}
	}
}

// TestServeRequestID checks request identity: an inbound X-Request-ID is
// echoed on the response and stamped into the summary record, and a
// request without one gets a generated ID.
func TestServeRequestID(t *testing.T) {
	model, _, csvBody := matchmakingFixture(t)
	ts := startServer(t, model)

	attr := model.Schema.Attrs[0]
	target := ts.URL + "/query?op=count&where=" + url.QueryEscape(attr.Name+"="+attr.Domain[0])

	req, err := http.NewRequest("POST", target, bytes.NewReader(csvBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/csv")
	req.Header.Set("X-Request-ID", "req-abc-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "req-abc-123" {
		t.Errorf("X-Request-ID echo = %q, want req-abc-123", got)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	var summary map[string]any
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &summary); err != nil {
		t.Fatal(err)
	}
	if summary["request_id"] != "req-abc-123" {
		t.Errorf("summary request_id = %v, want req-abc-123", summary["request_id"])
	}

	// No inbound ID: one is generated and echoed.
	resp2, err := http.Post(target, "text/csv", bytes.NewReader(csvBody))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.Header.Get("X-Request-ID") == "" {
		t.Error("no X-Request-ID generated for an anonymous request")
	}
}
