// Command mrslserve serves streaming derivations and probabilistic
// queries over HTTP from one long-lived repro.Engine: the model is loaded
// once, and every request shares the engine's evidence-keyed caches, so
// repeated damage patterns across requests are inferred exactly once for
// the life of the process.
//
// Usage:
//
//	mrslserve -model model.json [-addr :8080] [-workers 8] [-samples 800]
//	          [-cache-entries 65536] [-max-inflight 0]
//
// The engine's memoization caches (vote blocks, multi-missing joints,
// local CPDs) are bounded to -cache-entries entries each with CLOCK
// eviction, so the server runs in fixed memory under unbounded damage
// pattern diversity; with -workers > 1 (chains mode) eviction never
// changes responses, it only costs recomputation. With -max-inflight > 0
// at most that many derivation/query requests run concurrently; excess
// requests are rejected immediately with 429 and a Retry-After header
// instead of queuing without bound. Client disconnects cancel in-flight
// work: both endpoints evaluate under the request's context.
//
// Endpoints:
//
//	POST /derive   body: CSV relation over the model's schema ("?" marks
//	               missing values). Streams the derived database back as
//	               NDJSON — a schema record, then one record per input
//	               tuple in input order (certain values, or a block of
//	               alternatives with probabilities) — flushing each line,
//	               so clients read blocks as they are inferred. Query
//	               parameters voteworkers and gibbsworkers override the
//	               request's pool sizes (never the result).
//	POST /query    body: CSV relation over the model's schema. Query
//	               parameters: op (count, exists, topk, groupby), where
//	               (conjunctive conditions "attr=value,attr>=value,..."),
//	               groupby (histogram attribute), k, minprob, plus the
//	               same pool overrides as /derive. Streams NDJSON: a
//	               query record, then result records, then a summary
//	               record with the chosen plan (selectivity-ordered
//	               predicates, resolution-tier counts) and the
//	               evaluation's pruning/bound counters. count and exists
//	               emit one result record; topk and groupby stream
//	               incrementally as blocks resolve — in-flight snapshots
//	               are marked "partial":true (topk re-emits the current
//	               rows when they move, groupby emits only the buckets
//	               that changed) and the settled results follow with
//	               "final":true. Answers are bit-identical to deriving
//	               the posted relation through /derive and evaluating
//	               the stream naively, but selective queries infer only
//	               the tuples the bounds leave undecided — multi-missing
//	               tuples whose dissociation interval already decides
//	               the threshold are never sampled.
//	GET  /stats    engine cache counters, hit rates, query pruning and
//	               bound totals, admission counters, uptime, requests.
//	GET  /healthz  liveness probe.
//
// With -addr host:0 the kernel picks a free port; the chosen address is
// printed as "mrslserve: listening on <addr>" so scripts can scrape it.
package main

import (
	"cmp"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"repro"
)

func main() {
	var (
		modelPath = flag.String("model", "", "model JSON from mrsllearn (required)")
		addr      = flag.String("addr", ":8080", "listen address (host:0 picks a free port)")
		samples   = flag.Int("samples", 800, "Gibbs samples per distinct multi-missing tuple")
		burnin    = flag.Int("burnin", 100, "Gibbs burn-in sweeps")
		seed      = flag.Int64("seed", 1, "sampler seed")
		workers   = flag.Int("workers", 8, "default Gibbs chain pool size per request (>1 selects per-block chains)")
		voters    = flag.Int("voteworkers", 0, "default voting pool size per request (0 = GOMAXPROCS)")
		maxAlts   = flag.Int("maxalts", 0, "cap block alternatives (0 keeps all)")
		cacheEnts = flag.Int("cache-entries", 1<<16, "bound each engine cache to this many entries, CLOCK-evicted (0 = unbounded vote/joint caches, default-capped CPD memo); eviction never changes results in chains mode")
		inflight  = flag.Int("max-inflight", 0, "maximum concurrent derivation/query requests; excess requests get 429 with Retry-After (0 = unlimited)")
	)
	flag.Parse()
	if *modelPath == "" {
		fmt.Fprintln(os.Stderr, "mrslserve: -model is required")
		flag.Usage()
		os.Exit(2)
	}
	mf, err := os.Open(*modelPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrslserve: %v\n", err)
		os.Exit(1)
	}
	model, err := repro.LoadModel(mf)
	mf.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrslserve: %v\n", err)
		os.Exit(1)
	}
	opt := repro.DeriveOptions{
		Method:          repro.BestAveraged(),
		MaxAlternatives: *maxAlts,
		Workers:         *workers,
		VoteWorkers:     *voters,
		CacheEntries:    *cacheEnts,
		Gibbs: repro.GibbsOptions{
			Samples: *samples, BurnIn: *burnin, Seed: *seed, Method: repro.BestAveraged(),
		},
	}
	srv, err := newServer(model, opt, *inflight)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrslserve: %v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrslserve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("mrslserve: listening on %s\n", ln.Addr())
	if err := http.Serve(ln, srv); err != nil {
		fmt.Fprintf(os.Stderr, "mrslserve: %v\n", err)
		os.Exit(1)
	}
}

// server routes HTTP traffic onto one shared derivation engine.
type server struct {
	model *repro.Model
	eng   *repro.Engine
	mux   *http.ServeMux
	start time.Time

	// slots is the admission semaphore (nil = unlimited): a request must
	// take a slot before running inference and returns it when done.
	slots chan struct{}

	requests atomic.Int64 // derivation/query requests accepted
	failed   atomic.Int64 // accepted requests that ended in an error
	rejected atomic.Int64 // requests turned away at admission (429)
}

func newServer(model *repro.Model, opt repro.DeriveOptions, maxInflight int) (*server, error) {
	eng, err := repro.NewEngine(model, opt)
	if err != nil {
		return nil, err
	}
	s := &server{model: model, eng: eng, mux: http.NewServeMux(), start: time.Now()}
	if maxInflight > 0 {
		s.slots = make(chan struct{}, maxInflight)
	}
	s.mux.HandleFunc("POST /derive", s.admit(s.handleDerive))
	s.mux.HandleFunc("POST /query", s.admit(s.handleQuery))
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s, nil
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// admit wraps an inference handler with admission control: when the
// engine is saturated the request is rejected immediately with 429 and a
// Retry-After hint, never queued without bound.
func (s *server) admit(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.slots != nil {
			select {
			case s.slots <- struct{}{}:
				defer func() { <-s.slots }()
			default:
				s.rejected.Add(1)
				w.Header().Set("Retry-After", "1")
				http.Error(w, "engine saturated: too many in-flight requests", http.StatusTooManyRequests)
				return
			}
		}
		s.requests.Add(1)
		h(w, r)
	}
}

// handleDerive parses the posted CSV against the model schema and streams
// the derived database back as NDJSON, one line per item as it is
// inferred. The stream runs under the request context, so a client
// disconnect cancels in-flight derivation work.
func (s *server) handleDerive(w http.ResponseWriter, r *http.Request) {
	rel, err := repro.ReadCSVInSchema(r.Body, s.model.Schema)
	if err != nil {
		s.failed.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	pools, err := poolsFromQuery(r)
	if err != nil {
		s.failed.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	sink := repro.NewJSONLSink(newFlushWriter(w), s.model.Schema)
	if err := s.eng.DeriveToContext(r.Context(), rel, pools, sink); err != nil {
		s.failed.Add(1)
		var mismatch *repro.SchemaMismatchError
		if errors.As(err, &mismatch) {
			// ReadCSVInSchema makes this unreachable in practice, but the
			// engine's own validation still deserves a 4xx, not a 5xx.
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// The NDJSON stream may already be under way; append a terminal
		// error record instead of a status code the client can no longer
		// see.
		json.NewEncoder(w).Encode(map[string]string{"kind": "error", "error": err.Error()})
		return
	}
}

// handleQuery compiles the query expressed in the URL parameters,
// evaluates it over the posted CSV on the engine's caches, and streams
// the answer as NDJSON: a query record, one record per result, and a
// summary record with the chosen plan and the pruning counters.
// Evaluation runs under the request context.
//
// Count and exists fold scalars, so their evaluation completes before
// the first byte is written (and failures carry real status codes).
// TopK and groupby stream incrementally: as blocks resolve, the current
// rows (and the group buckets that changed) are flushed as records
// marked "partial":true, and the settled results follow with
// "final":true before the summary — so a client watching a long
// evaluation sees the answer take shape instead of waiting for the
// buffer.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	rel, err := repro.ReadCSVInSchema(r.Body, s.model.Schema)
	if err != nil {
		s.failed.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	pools, err := poolsFromQuery(r)
	if err != nil {
		s.failed.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	q, err := queryFromRequest(s.model.Schema, r)
	if err != nil {
		s.failed.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if q.Op() == repro.QueryTopK || q.Op() == repro.QueryGroupBy {
		s.streamQuery(w, r, rel, q, pools)
		return
	}
	res, err := s.eng.QueryPools(r.Context(), rel, q, pools)
	if err != nil {
		s.failed.Add(1)
		// Unlike /derive, nothing has been streamed yet, so the failure
		// can carry a real status code.
		var mismatch *repro.SchemaMismatchError
		if errors.As(err, &mismatch) {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	ew := &errWriter{w: newFlushWriter(w)}
	enc := json.NewEncoder(ew)
	enc.Encode(map[string]any{"kind": "query", "op": q.Op().String(), "query": q.String()})
	switch q.Op() {
	case repro.QueryCount:
		if q.MinProb() > 0 {
			enc.Encode(map[string]any{"kind": "count", "count": res.Count, "minprob": q.MinProb()})
		} else {
			enc.Encode(map[string]any{"kind": "count", "expected": res.Expected})
		}
	case repro.QueryExists:
		enc.Encode(map[string]any{
			"kind": "exists", "exists": res.Exists, "p": res.Prob, "early_stop": res.EarlyStop,
		})
	}
	s.writeSummary(enc, res)
	if ew.err != nil {
		// The client went away mid-stream: the response is truncated, so
		// the request did not succeed.
		s.failed.Add(1)
	}
}

// streamQuery runs a topk or groupby evaluation with incremental NDJSON
// output: partial records as blocks resolve, final records once the
// evaluation settles, then the summary. The stream is already under way
// when inference runs, so evaluation errors append a terminal error
// record instead of a status code; a disconnected client aborts the
// evaluation through the progress callback.
func (s *server) streamQuery(w http.ResponseWriter, r *http.Request,
	rel *repro.Relation, q *repro.CompiledQuery, pools repro.Pools) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	ew := &errWriter{w: newFlushWriter(w)}
	enc := json.NewEncoder(ew)
	enc.Encode(map[string]any{"kind": "query", "op": q.Op().String(), "query": q.String()})

	var (
		lastRows   []repro.QueryRow
		lastGroups []repro.QueryGroup
	)
	progress := func(res *repro.QueryResult) error {
		switch q.Op() {
		case repro.QueryTopK:
			if slicesEqualRows(res.Rows, lastRows) {
				break
			}
			lastRows = append(lastRows[:0], res.Rows...)
			for rank, row := range res.Rows {
				enc.Encode(map[string]any{
					"kind": "row", "partial": true, "rank": rank, "index": row.Index,
					"values": s.labels(row.Tuple), "p": row.Prob, "certain": row.Certain,
				})
			}
		case repro.QueryGroupBy:
			for i, g := range res.Groups {
				if i < len(lastGroups) && g == lastGroups[i] {
					continue
				}
				enc.Encode(map[string]any{
					"kind": "group", "partial": true, "value": g.Label,
					"expected": g.Expected, "variance": g.Variance,
				})
			}
			lastGroups = append(lastGroups[:0], res.Groups...)
		}
		return ew.err
	}
	res, err := s.eng.QueryStream(r.Context(), rel, q, pools, progress)
	if err != nil {
		s.failed.Add(1)
		enc.Encode(map[string]string{"kind": "error", "error": err.Error()})
		return
	}
	switch q.Op() {
	case repro.QueryTopK:
		for rank, row := range res.Rows {
			enc.Encode(map[string]any{
				"kind": "row", "final": true, "rank": rank, "index": row.Index,
				"values": s.labels(row.Tuple), "p": row.Prob, "certain": row.Certain,
			})
		}
	case repro.QueryGroupBy:
		for _, g := range res.Groups {
			enc.Encode(map[string]any{
				"kind": "group", "final": true, "value": g.Label,
				"expected": g.Expected, "variance": g.Variance,
			})
		}
	}
	s.writeSummary(enc, res)
	if ew.err != nil {
		s.failed.Add(1)
	}
}

// slicesEqualRows reports whether two row snapshots are identical, so
// the streamer only re-emits partial rows that actually moved.
func slicesEqualRows(a, b []repro.QueryRow) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Prob != b[i].Prob || a[i].Index != b[i].Index || a[i].Certain != b[i].Certain ||
			!a[i].Tuple.Equal(b[i].Tuple) {
			return false
		}
	}
	return true
}

// writeSummary emits the terminal summary record: pruning counters,
// bound usage, and the chosen plan.
func (s *server) writeSummary(enc *json.Encoder, res *repro.QueryResult) {
	c := res.Counters
	summary := map[string]any{
		"kind": "summary", "scanned": c.Scanned, "pruned": c.Pruned,
		"bounded": c.Bounded, "derived": c.Derived,
		"bound_refuted": c.BoundRefutes, "bound_width": c.BoundWidth,
	}
	if p := res.Plan; p != nil {
		summary["plan"] = map[string]any{
			"pred_order":  p.PredOrder,
			"selectivity": p.Selectivity,
			"tiers": map[string]int{
				"refuted": p.Refuted, "certain": p.Certain, "single_missing": p.SingleMissing,
				"bounded": p.Bounded, "derive": p.Derive,
			},
			"bounds_used": p.BoundsUsed,
		}
	}
	enc.Encode(summary)
}

// errWriter records the first write error and drops everything after it,
// so a disconnected client stops the stream instead of being encoded to
// in vain.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, err
}

// labels renders a complete tuple's value codes as domain labels.
func (s *server) labels(t repro.Tuple) []string {
	out := make([]string, len(t))
	for a, v := range t {
		out[a] = s.model.Schema.Attrs[a].Domain[v]
	}
	return out
}

// queryFromRequest builds a compiled query from the request's URL
// parameters.
func queryFromRequest(schema *repro.Schema, r *http.Request) (*repro.CompiledQuery, error) {
	vals := r.URL.Query()
	op, err := repro.ParseQueryOp(cmp.Or(vals.Get("op"), "count"))
	if err != nil {
		return nil, err
	}
	spec := repro.QuerySpec{
		Op:      op,
		Where:   vals.Get("where"),
		GroupBy: vals.Get("groupby"),
	}
	if v := vals.Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			// k >= 1 keeps served topk results (and server memory) bounded;
			// the unbounded k <= 0 form stays a library/CLI affordance.
			return nil, fmt.Errorf("query parameter k must be a positive integer, got %q", v)
		}
		spec.K = n
	} else if op == repro.QueryTopK {
		spec.K = 10
	}
	if v := vals.Get("minprob"); v != "" {
		p, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, fmt.Errorf("query parameter minprob must be a number, got %q", v)
		}
		spec.MinProb = p
	}
	return repro.CompileQuery(schema, spec)
}

// statsResponse is the /stats payload: the engine's cache counters plus
// serving-level bookkeeping.
type statsResponse struct {
	Engine         repro.EngineStats `json:"engine"`
	VoteHitRate    float64           `json:"vote_hit_rate"`
	GibbsHitRate   float64           `json:"gibbs_hit_rate"`
	CPDHitRate     float64           `json:"cpd_hit_rate"`
	BoundHitRate   float64           `json:"bound_hit_rate"`
	Evictions      int64             `json:"evictions"`
	BoundTightness float64           `json:"query_bound_tightness"`
	BoundRefutes   int64             `json:"bound_refutes"`
	Requests       int64             `json:"requests"`
	Failed         int64             `json:"failed"`
	Rejected       int64             `json:"rejected"`
	UptimeSeconds  float64           `json:"uptime_seconds"`
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.eng.Stats()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(statsResponse{
		Engine:         st,
		VoteHitRate:    st.VoteHitRate(),
		GibbsHitRate:   st.GibbsHitRate(),
		CPDHitRate:     st.CPDHitRate(),
		BoundHitRate:   st.BoundHitRate(),
		Evictions:      st.Evictions + st.CPDEvictions,
		BoundTightness: st.QueryBoundTightness(),
		BoundRefutes:   st.BoundRefutes,
		Requests:       s.requests.Load(),
		Failed:         s.failed.Load(),
		Rejected:       s.rejected.Load(),
		UptimeSeconds:  time.Since(s.start).Seconds(),
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	io.WriteString(w, "{\"status\":\"ok\"}\n")
}

// poolsFromQuery reads optional per-request pool overrides; pool sizes
// affect scheduling only, never the derived stream.
func poolsFromQuery(r *http.Request) (repro.Pools, error) {
	var p repro.Pools
	q := r.URL.Query()
	for _, f := range []struct {
		name string
		dst  *int
	}{{"voteworkers", &p.VoteWorkers}, {"gibbsworkers", &p.GibbsWorkers}} {
		v := q.Get(f.name)
		if v == "" {
			continue
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return p, fmt.Errorf("query parameter %s must be a non-negative integer, got %q", f.name, v)
		}
		*f.dst = n
	}
	return p, nil
}

// flushWriter flushes the HTTP response after every write, so each NDJSON
// line reaches the client as soon as its block is inferred.
type flushWriter struct {
	w     io.Writer
	flush func()
}

func newFlushWriter(w http.ResponseWriter) *flushWriter {
	fw := &flushWriter{w: w, flush: func() {}}
	if f, ok := w.(http.Flusher); ok {
		fw.flush = f.Flush
	}
	return fw
}

func (f *flushWriter) Write(p []byte) (int, error) {
	n, err := f.w.Write(p)
	f.flush()
	return n, err
}
