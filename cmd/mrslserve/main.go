// Command mrslserve serves streaming derivations and probabilistic
// queries over HTTP from one long-lived repro.Engine: the model is loaded
// once, and every request shares the engine's evidence-keyed caches, so
// repeated damage patterns across requests are inferred exactly once for
// the life of the process.
//
// Usage:
//
//	mrslserve -model model.json [-addr :8080] [-workers 8] [-samples 800]
//	          [-cache-entries 65536] [-max-inflight 0] [-default-timeout 0]
//	          [-read-header-timeout 5s] [-idle-timeout 2m] [-drain-timeout 10s]
//	          [-shed-after-misses 0]
//
// Fail-soft serving. With -default-timeout (or a per-request timeout_ms=
// parameter on /derive and /query) every inference request runs under a
// deadline budget: when it nears exhaustion, queries answer the remaining
// expensive tuples from their sound dissociation intervals — records
// flagged "degraded":true with [lo, hi] brackets — and derive streams end
// with a terminal "truncated" record; the lines already emitted are
// exact. SIGTERM/SIGINT drains gracefully: /healthz flips to 503
// draining, new inference requests shed with 503 + Retry-After, watch
// subscriptions receive their "end" record, and in-flight requests get
// -drain-timeout to finish. With -shed-after-misses N, N consecutive
// deadline misses also shed new requests until a request completes within
// budget again. Handler panics are converted to error responses (counted
// in /stats server_panics); engine-side pool panics become typed request
// errors (engine PanicsRecovered) — either way the process keeps serving.
//
// The engine's memoization caches (vote blocks, multi-missing joints,
// local CPDs) are bounded to -cache-entries entries each with CLOCK
// eviction, so the server runs in fixed memory under unbounded damage
// pattern diversity; with -workers > 1 (chains mode) eviction never
// changes responses, it only costs recomputation. With -max-inflight > 0
// at most that many derivation/query requests run concurrently; excess
// requests are rejected immediately with 429 and a Retry-After header
// instead of queuing without bound. Client disconnects cancel in-flight
// work: both endpoints evaluate under the request's context.
//
// Endpoints:
//
//	POST /derive   body: CSV relation over the model's schema ("?" marks
//	               missing values). Streams the derived database back as
//	               NDJSON — a schema record, then one record per input
//	               tuple in input order (certain values, or a block of
//	               alternatives with probabilities) — flushing each line,
//	               so clients read blocks as they are inferred. Query
//	               parameters voteworkers and gibbsworkers override the
//	               request's pool sizes (never the result). With
//	               dataset=<id> the body is ignored and the registered
//	               dataset's conditioned database is derived instead:
//	               observed tuples emit their Bayesian posterior blocks,
//	               the rest resolve exactly as a batch derivation would.
//	POST /query    body: CSV relation over the model's schema. Query
//	               parameters: op (count, exists, topk, groupby), where
//	               (conjunctive conditions "attr=value,attr>=value,..."),
//	               groupby (histogram attribute), k, minprob, plus the
//	               same pool overrides as /derive. Streams NDJSON: a
//	               query record, then result records, then a summary
//	               record with the chosen plan (selectivity-ordered
//	               predicates, resolution-tier counts) and the
//	               evaluation's pruning/bound counters. count and exists
//	               emit one result record; topk and groupby stream
//	               incrementally as blocks resolve — in-flight snapshots
//	               are marked "partial":true (topk re-emits the current
//	               rows when they move, groupby emits only the buckets
//	               that changed) and the settled results follow with
//	               "final":true. Answers are bit-identical to deriving
//	               the posted relation through /derive and evaluating
//	               the stream naively, but selective queries infer only
//	               the tuples the bounds leave undecided — multi-missing
//	               tuples whose dissociation interval already decides
//	               the threshold are never sampled. With dataset=<id>
//	               the body is ignored and the query evaluates over the
//	               dataset's conditioned snapshot; adding watch=1 turns
//	               it into a subscription: the connection stays open and
//	               after every /observe delta only the result records
//	               the delta actually changed are re-emitted, marked
//	               "partial":true and stamped with the dataset version,
//	               until the client disconnects or the dataset is
//	               dropped (which appends an "end" record).
//
//	               With sql=<statement> (URL parameter, or an "sql"
//	               field of a multipart/form-data body) the query is
//	               intensional: the SQL-ish statement "[select cols|*]
//	               from R [join S on a=b]... [where conds]" names its
//	               input relations, each resolved from a multipart file
//	               field with the relation's name (a CSV under its own
//	               header) or, failing that, from a parameter
//	               <name>=<dataset id> naming a registered dataset.
//	               The op/k/minprob parameters apply unchanged (the
//	               statement's where tail replaces the where parameter),
//	               keepkeys=1 keeps join-key columns. The join chain is
//	               folded with per-row lineage and analyzed for safety:
//	               safe (hierarchical) plans answer exactly; unsafe
//	               plans stay exact for linear operators, while exists
//	               reports the dissociated mass with its sound [lo, hi]
//	               interval and the summary carries the join order and
//	               verdict. sql is incompatible with dataset=/watch=1.
//	POST /datasets register the posted CSV relation as a live dataset;
//	               returns {"kind":"dataset","id":...} whose id the
//	               dataset= parameters and /observe address. With
//	               schema=own the CSV keeps its own header and domains
//	               and registers as a join-input dataset: usable only
//	               as a named input of sql= queries, not observable or
//	               derivable. DELETE
//	               /datasets/{id} drops it, ending its watch streams.
//	POST /observe  apply evidence deltas to a registered dataset. Body:
//	               {"dataset":"ds1","observations":[{"index":7,
//	               "attr":"income","value":"50K"}]} with attributes and
//	               values as schema labels. Deltas apply in order;
//	               conditioning is exact Bayesian filtering of the
//	               tuple's block, and the engine invalidates exactly the
//	               superseded conditioned entry — nothing else. A
//	               conflicting or zero-remaining-mass delta stops the
//	               batch with 409 and reports how many applied.
//	GET  /stats    engine cache counters, hit rates, query pruning and
//	               bound totals, live-evidence counters (observations,
//	               invalidated entries, watchers, datasets), admission
//	               counters (requests = accepted + rejected), uptime,
//	               build revision.
//	GET  /metrics  Prometheus text exposition: every engine stats counter
//	               (mrsl_engine_*), per-endpoint request latency
//	               histograms (mrsl_http_request_seconds{path=...}),
//	               engine stage histograms (vote, Gibbs chains, bounds,
//	               prefetch waits, sink emission), query plan/exec
//	               histograms, server admission counters and in-flight/
//	               draining gauges, and a mrsl_build_info gauge. Scraping
//	               runs no inference and bypasses admission control.
//	GET  /healthz  liveness probe.
//
// Observability. Every response carries an X-Request-ID header (honored
// from the request when present, generated otherwise), and each request
// is logged as one structured log/slog line with method, path, status,
// duration, and request id. On /query, explain=analyze enables
// explain-analyze: the summary's plan block gains a timing section with
// measured planning, wall, and per-tier resolution durations (tuples +
// duration_ms per tier); trace=1 additionally appends a {"kind":"trace"}
// NDJSON record carrying the request's engine/executor spans. Neither
// changes answers. -pprof addr mounts net/http/pprof on a separate
// listener; -version prints the build revision and exits.
//
// With -addr host:0 the kernel picks a free port; the chosen address is
// printed as "mrslserve: listening on <addr>" so scripts can scrape it.
package main

import (
	"cmp"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro"
	"repro/internal/obs"
)

func main() {
	var (
		modelPath = flag.String("model", "", "model JSON from mrsllearn (required)")
		addr      = flag.String("addr", ":8080", "listen address (host:0 picks a free port)")
		samples   = flag.Int("samples", 800, "Gibbs samples per distinct multi-missing tuple")
		burnin    = flag.Int("burnin", 100, "Gibbs burn-in sweeps")
		seed      = flag.Int64("seed", 1, "sampler seed")
		workers   = flag.Int("workers", 8, "default Gibbs chain pool size per request (>1 selects per-block chains)")
		voters    = flag.Int("voteworkers", 0, "default voting pool size per request (0 = GOMAXPROCS)")
		maxAlts   = flag.Int("maxalts", 0, "cap block alternatives (0 keeps all)")
		cacheEnts = flag.Int("cache-entries", 1<<16, "bound each engine cache to this many entries, CLOCK-evicted (0 = unbounded vote/joint caches, default-capped CPD memo); eviction never changes results in chains mode")
		inflight  = flag.Int("max-inflight", 0, "maximum concurrent derivation/query requests; excess requests get 429 with Retry-After (0 = unlimited)")

		defTimeout = flag.Duration("default-timeout", 0, "default deadline budget per /derive and /query request; requests degrade to sound bounds instead of failing when it runs out (0 = none; timeout_ms= overrides per request)")
		readHdrTO  = flag.Duration("read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout: slow-loris guard")
		readTO     = flag.Duration("read-timeout", 0, "http.Server ReadTimeout (0 = none; watch streams need none)")
		writeTO    = flag.Duration("write-timeout", 0, "http.Server WriteTimeout (0 = none; streaming responses need none)")
		idleTO     = flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections")
		drainTO    = flag.Duration("drain-timeout", 10*time.Second, "on SIGTERM/SIGINT, wait this long for in-flight requests to drain before exiting")
		shedAfter  = flag.Int64("shed-after-misses", 0, "shed new inference requests with 503 after this many consecutive deadline misses (0 = never)")

		pprofAddr = flag.String("pprof", "", "mount net/http/pprof on this separate listener address (e.g. 127.0.0.1:6060; empty = off)")
		version   = flag.Bool("version", false, "print the build revision and exit")
	)
	flag.Parse()
	if *version {
		fmt.Printf("mrslserve %s %s\n", obs.BuildRevision(), obs.GoVersion())
		return
	}
	if *modelPath == "" {
		fmt.Fprintln(os.Stderr, "mrslserve: -model is required")
		flag.Usage()
		os.Exit(2)
	}
	mf, err := os.Open(*modelPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrslserve: %v\n", err)
		os.Exit(1)
	}
	model, err := repro.LoadModel(mf)
	mf.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrslserve: %v\n", err)
		os.Exit(1)
	}
	opt := repro.DeriveOptions{
		Method:          repro.BestAveraged(),
		MaxAlternatives: *maxAlts,
		Workers:         *workers,
		VoteWorkers:     *voters,
		CacheEntries:    *cacheEnts,
		Gibbs: repro.GibbsOptions{
			Samples: *samples, BurnIn: *burnin, Seed: *seed, Method: repro.BestAveraged(),
		},
	}
	srv, err := newServer(model, opt, *inflight)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrslserve: %v\n", err)
		os.Exit(1)
	}
	srv.defaultTimeout = *defTimeout
	srv.shedAfter = *shedAfter
	srv.log = slog.New(slog.NewTextHandler(os.Stderr, nil))
	srv.log.Info("mrslserve starting",
		"revision", obs.BuildRevision(), "go", obs.GoVersion(), "model", *modelPath)
	if *pprofAddr != "" {
		// pprof gets its own mux on its own listener so the profiling
		// surface never shares a port (or a route table) with serving.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", netpprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", netpprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", netpprof.Trace)
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrslserve: cannot bind pprof %s: %v\n", *pprofAddr, err)
			os.Exit(1)
		}
		srv.log.Info("pprof listening", "addr", pln.Addr().String())
		go http.Serve(pln, pm)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrslserve: cannot bind %s: %v\n", *addr, err)
		os.Exit(1)
	}
	httpSrv := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: *readHdrTO,
		ReadTimeout:       *readTO,
		WriteTimeout:      *writeTO,
		IdleTimeout:       *idleTO,
	}
	// Graceful drain: SIGTERM/SIGINT stops accepting, flips /healthz to
	// draining, lets watch subscribers receive their end record, and waits
	// up to -drain-timeout for in-flight requests before exiting.
	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	go func() {
		defer close(done)
		got := <-sig
		fmt.Printf("mrslserve: %s received, draining (up to %s)\n", got, *drainTO)
		srv.beginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "mrslserve: drain incomplete: %v\n", err)
		}
	}()
	fmt.Printf("mrslserve: listening on %s\n", ln.Addr())
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "mrslserve: %v\n", err)
		os.Exit(1)
	}
	<-done
	fmt.Println("mrslserve: drained, bye")
}

// server routes HTTP traffic onto one shared derivation engine.
type server struct {
	model *repro.Model
	eng   *repro.Engine
	mux   *http.ServeMux
	start time.Time

	// log emits one structured line per request (method, path, status,
	// duration, request id) plus lifecycle events. Defaults to discard so
	// embedded/test servers stay quiet; main wires it to stderr.
	log    *slog.Logger
	reqSeq atomic.Int64 // generated request-id sequence

	// Registry-backed serving gauges (exported on /metrics alongside the
	// stage histograms the engine packages register at init). The counter
	// gauges are refreshed from the atomics at scrape time.
	mInflight, mDraining                                    *obs.Gauge
	mRequests, mAccepted, mFailed, mRejected, mShed, mPanic *obs.Gauge

	// slots is the admission semaphore (nil = unlimited): a request must
	// take a slot before running inference and returns it when done.
	slots chan struct{}

	// defaultTimeout is the deadline budget applied to /derive and /query
	// when the request carries no timeout_ms= parameter (0 = none). A
	// request whose budget runs out degrades — sound bounds, truncated
	// streams — instead of failing.
	defaultTimeout time.Duration
	// shedAfter sheds new inference requests with 503 once this many
	// consecutive requests missed their deadline budget (0 = never):
	// sustained misses mean the engine cannot keep up, and shedding beats
	// serving every caller a degraded answer late. One probe request per
	// second is still admitted (half-open) so a recovered engine lifts the
	// shed by completing it cleanly.
	shedAfter  int64
	missStreak atomic.Int64 // consecutive deadline-missing inference requests
	lastProbe  atomic.Int64 // unix nanos of the last half-open probe admission

	// drain is closed by beginDrain (SIGTERM): watch streams end, new
	// inference requests shed with 503, /healthz reports draining.
	drain     chan struct{}
	drainOnce sync.Once
	draining  atomic.Bool

	requests atomic.Int64 // inference requests offered (= accepted + rejected + shed)
	accepted atomic.Int64 // requests admitted past the semaphore
	failed   atomic.Int64 // accepted requests that ended in an error
	rejected atomic.Int64 // requests turned away at admission (429, saturated)
	shed     atomic.Int64 // requests turned away with 503 (draining or sustained misses)
	panics   atomic.Int64 // handler panics converted to error responses
}

func newServer(model *repro.Model, opt repro.DeriveOptions, maxInflight int) (*server, error) {
	eng, err := repro.NewEngine(model, opt)
	if err != nil {
		return nil, err
	}
	s := &server{
		model: model, eng: eng, mux: http.NewServeMux(), start: time.Now(),
		drain: make(chan struct{}),
		log:   slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
	if maxInflight > 0 {
		s.slots = make(chan struct{}, maxInflight)
	}
	s.mInflight = obs.Default.Gauge("mrsl_http_inflight", "", "Inference requests currently in flight.")
	s.mDraining = obs.Default.Gauge("mrsl_server_draining", "", "1 while the server is draining after SIGTERM.")
	s.mRequests = obs.Default.Gauge("mrsl_server_requests", "", "Inference requests offered (accepted + rejected + shed).")
	s.mAccepted = obs.Default.Gauge("mrsl_server_accepted", "", "Inference requests admitted past the semaphore.")
	s.mFailed = obs.Default.Gauge("mrsl_server_failed", "", "Accepted requests that ended in an error.")
	s.mRejected = obs.Default.Gauge("mrsl_server_rejected", "", "Requests rejected 429 at admission (engine saturated).")
	s.mShed = obs.Default.Gauge("mrsl_server_shed", "", "Requests shed 503 (draining or sustained deadline misses).")
	s.mPanic = obs.Default.Gauge("mrsl_server_panics", "", "Handler panics converted to error responses.")
	s.route("POST", "/derive", s.admit(s.handleDerive))
	s.route("POST", "/query", s.admit(s.handleQuery))
	s.route("POST", "/datasets", s.handleRegisterDataset)
	s.route("DELETE", "/datasets/{id}", s.handleDropDataset)
	s.route("POST", "/observe", s.admit(s.handleObserve))
	s.route("GET", "/stats", s.handleStats)
	s.route("GET", "/healthz", s.handleHealthz)
	// /metrics bypasses admission control: scraping must work while the
	// engine is saturated or draining, and never counts as offered load.
	s.route("GET", "/metrics", s.handleMetrics)
	return s, nil
}

// route registers pattern on the mux wrapped with per-endpoint
// observability: a latency histogram labeled by path and one structured
// log line per request. The deferred record runs even when the handler
// panics (the panic still propagates to the ServeHTTP boundary).
func (s *server) route(method, path string, h http.HandlerFunc) {
	hist := obs.Default.Histogram("mrsl_http_request_seconds",
		`path="`+path+`"`, "HTTP request latency by endpoint.")
	s.mux.HandleFunc(method+" "+path, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		defer func() {
			d := time.Since(start)
			hist.Observe(d)
			status := http.StatusOK
			if tw, ok := w.(*trackWriter); ok && tw.status != 0 {
				status = tw.status
			}
			s.log.Info("request", "method", r.Method, "path", path, "status", status,
				"duration_ms", float64(d.Nanoseconds())/1e6,
				"request_id", obs.RequestIDFrom(r.Context()))
		}()
		h(w, r)
	})
}

// beginDrain flips the server into draining mode, once: /healthz turns
// 503, new inference requests shed, and watch streams emit their end
// record so http.Server.Shutdown can complete.
func (s *server) beginDrain() {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		s.mDraining.Set(1)
		close(s.drain)
	})
}

// ServeHTTP is the panic-isolation boundary for every handler: a
// panicking request is converted into a 500 (or, mid-stream, a terminal
// NDJSON error record) and counted, and the process — engine, caches,
// datasets — keeps serving. http.ErrAbortHandler passes through: it is
// the stdlib's own abort protocol, not a defect.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Request identity: honor an inbound X-Request-ID, generate one
	// otherwise; echo it on the response and carry it in the context so
	// log lines and error/summary records correlate with client traces.
	id := r.Header.Get("X-Request-ID")
	if id == "" {
		id = fmt.Sprintf("%x-%x", s.start.UnixNano(), s.reqSeq.Add(1))
	}
	w.Header().Set("X-Request-ID", id)
	r = r.WithContext(obs.WithRequestID(r.Context(), id))
	tw := &trackWriter{ResponseWriter: w}
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		if rec == http.ErrAbortHandler {
			panic(rec)
		}
		s.panics.Add(1)
		s.failed.Add(1)
		if !tw.wrote {
			http.Error(tw, fmt.Sprintf("internal error: recovered panic: %v", rec), http.StatusInternalServerError)
			return
		}
		// The response is already under way (possibly an NDJSON stream):
		// append a terminal error record instead of a status the client
		// can no longer see.
		json.NewEncoder(tw).Encode(map[string]string{
			"kind": "error", "error": fmt.Sprintf("recovered panic: %v", rec), "request_id": id,
		})
	}()
	s.mux.ServeHTTP(tw, r)
}

// trackWriter records whether the response has started (and with which
// status), so the panic boundary knows whether a status code can still
// be sent and the request log can report what was served. It forwards
// Flush so streaming handlers keep flushing line by line.
type trackWriter struct {
	http.ResponseWriter
	wrote  bool
	status int
}

func (t *trackWriter) WriteHeader(code int) {
	t.wrote = true
	if t.status == 0 {
		t.status = code
	}
	t.ResponseWriter.WriteHeader(code)
}

func (t *trackWriter) Write(p []byte) (int, error) {
	t.wrote = true
	if t.status == 0 {
		t.status = http.StatusOK
	}
	return t.ResponseWriter.Write(p)
}

func (t *trackWriter) Flush() {
	if f, ok := t.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// admit wraps an inference handler with admission control. When the
// server is draining, or consecutive deadline misses show the engine
// cannot keep up, the request is shed with 503; when the engine is
// saturated it is rejected with 429. Both carry Retry-After and neither
// queues without bound.
func (s *server) admit(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// Count the request when it is offered, before the admission
		// decision, so requests == accepted + rejected + shed always holds
		// — a turned-away request is still offered load.
		s.requests.Add(1)
		if reason := s.shedReason(); reason != "" {
			s.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			http.Error(w, reason, http.StatusServiceUnavailable)
			return
		}
		if s.slots != nil {
			select {
			case s.slots <- struct{}{}:
				defer func() { <-s.slots }()
			default:
				s.rejected.Add(1)
				w.Header().Set("Retry-After", "1")
				http.Error(w, "engine saturated: too many in-flight requests", http.StatusTooManyRequests)
				return
			}
		}
		s.accepted.Add(1)
		s.mInflight.Inc()
		defer s.mInflight.Dec()
		h(w, r)
	}
}

// handleMetrics serves GET /metrics in Prometheus text exposition
// format: the registry's stage histograms and serving gauges (counter
// gauges refreshed from the atomics at scrape time), every EngineStats
// counter as an mrsl_engine_* gauge, and the build-info gauge.
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mRequests.Set(s.requests.Load())
	s.mAccepted.Set(s.accepted.Load())
	s.mFailed.Set(s.failed.Load())
	s.mRejected.Set(s.rejected.Load())
	s.mShed.Set(s.shed.Load())
	s.mPanic.Set(s.panics.Load())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	repro.WriteMetrics(w)
	repro.WriteEngineStatsMetrics(w, "mrsl_engine_", s.eng.Stats())
	obs.WriteGauge(w, "mrsl_build_info",
		`goversion="`+obs.GoVersion()+`",revision="`+obs.BuildRevision()+`"`,
		"Build identity of the running binary (value is always 1).", 1)
}

// shedReason reports why a new inference request must be shed with 503,
// or "" to admit it.
func (s *server) shedReason() string {
	if s.draining.Load() {
		return "server draining: retry against another replica"
	}
	if s.shedAfter > 0 && s.missStreak.Load() >= s.shedAfter {
		// Half-open circuit breaker: admit one probe request per second so
		// the server can discover the engine caught up (a clean completion
		// resets the streak) instead of shedding forever.
		now := time.Now().UnixNano()
		last := s.lastProbe.Load()
		if now-last >= int64(time.Second) && s.lastProbe.CompareAndSwap(last, now) {
			return ""
		}
		return "engine overloaded: sustained deadline misses"
	}
	return ""
}

// noteBudget tracks the consecutive-deadline-miss streak behind
// shed-after-misses: degraded or truncated requests extend it, clean
// ones reset it.
func (s *server) noteBudget(missed bool) {
	if missed {
		s.missStreak.Add(1)
	} else {
		s.missStreak.Store(0)
	}
}

// budget reads the request's deadline budget: timeout_ms= overrides the
// server's -default-timeout, 0 disables. The budget bounds inference
// wall-clock — when it runs out, queries degrade to sound bounds and
// derive streams truncate with a terminal record instead of erroring.
func (s *server) budget(r *http.Request) (time.Duration, error) {
	d := s.defaultTimeout
	if v := r.URL.Query().Get("timeout_ms"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return 0, fmt.Errorf("query parameter timeout_ms must be a non-negative integer, got %q", v)
		}
		d = time.Duration(n) * time.Millisecond
	}
	return d, nil
}

// withBudget derives the evaluation context for one inference pass.
func withBudget(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}

// handleDerive parses the posted CSV against the model schema and streams
// the derived database back as NDJSON, one line per item as it is
// inferred. The stream runs under the request context, so a client
// disconnect cancels in-flight derivation work; a deadline budget that
// runs out ends the stream with a terminal "truncated" record — the
// lines already emitted are exact and usable.
func (s *server) handleDerive(w http.ResponseWriter, r *http.Request) {
	pools, err := poolsFromQuery(r)
	if err != nil {
		s.failed.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	d, err := s.budget(r)
	if err != nil {
		s.failed.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// trace=1: record engine stage spans and append a {"kind":"trace"}
	// record after the stream.
	if r.URL.Query().Get("trace") == "1" {
		r = r.WithContext(repro.WithTrace(r.Context(), repro.NewTrace()))
	}
	ctx, cancel := withBudget(r.Context(), d)
	defer cancel()
	// finishStream reports the stream's end: a spent budget becomes a
	// truncated record (a soft, bounded outcome — not a failure), anything
	// else an error record.
	finishStream := func(err error) {
		if err == nil {
			s.noteBudget(false)
			return
		}
		if d > 0 && errors.Is(err, context.DeadlineExceeded) {
			s.noteBudget(true)
			json.NewEncoder(w).Encode(map[string]any{
				"kind": "truncated", "reason": "deadline budget exhausted",
				"timeout_ms": d.Milliseconds(),
			})
			return
		}
		s.failed.Add(1)
		json.NewEncoder(w).Encode(errRecord(r, err))
	}
	if id := r.URL.Query().Get("dataset"); id != "" {
		// Registered dataset: derive the conditioned snapshot instead of a
		// posted relation. The body is ignored.
		ds, ok := s.eng.Dataset(id)
		if !ok {
			s.failed.Add(1)
			http.Error(w, "unknown dataset "+id, http.StatusNotFound)
			return
		}
		if ds.JoinInput() {
			s.failed.Add(1)
			http.Error(w, "dataset "+id+" is a join input (schema=own): bind it in an sql= query instead", http.StatusBadRequest)
			return
		}
		snap, err := ds.Snapshot(ctx)
		if err != nil {
			s.failed.Add(1)
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		sink := repro.NewJSONLSink(newFlushWriter(w), s.model.Schema)
		finishStream(s.eng.DeriveSnapshot(ctx, snap, pools, sink))
		s.writeTrace(w, r)
		return
	}
	rel, err := repro.ReadCSVInSchema(r.Body, s.model.Schema)
	if err != nil {
		s.failed.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	sink := repro.NewJSONLSink(newFlushWriter(w), s.model.Schema)
	if err := s.eng.DeriveToContext(ctx, rel, pools, sink); err != nil {
		var mismatch *repro.SchemaMismatchError
		if errors.As(err, &mismatch) {
			// ReadCSVInSchema makes this unreachable in practice, but the
			// engine's own validation still deserves a 4xx, not a 5xx.
			s.failed.Add(1)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// The NDJSON stream may already be under way; append a terminal
		// record instead of a status code the client can no longer see.
		finishStream(err)
		s.writeTrace(w, r)
		return
	}
	s.noteBudget(false)
	s.writeTrace(w, r)
}

// writeTrace appends the request's {"kind":"trace"} record when trace=1
// attached a span recorder (streams without a summary record, like
// /derive, end with it).
func (s *server) writeTrace(w io.Writer, r *http.Request) {
	tr := repro.TraceFrom(r.Context())
	if tr == nil {
		return
	}
	json.NewEncoder(w).Encode(map[string]any{
		"kind": "trace", "request_id": obs.RequestIDFrom(r.Context()), "spans": tr.Spans(),
	})
}

// handleQuery compiles the query expressed in the URL parameters,
// evaluates it over the posted CSV on the engine's caches, and streams
// the answer as NDJSON: a query record, one record per result, and a
// summary record with the chosen plan and the pruning counters.
// Evaluation runs under the request context.
//
// Count and exists fold scalars, so their evaluation completes before
// the first byte is written (and failures carry real status codes).
// TopK and groupby stream incrementally: as blocks resolve, the current
// rows (and the group buckets that changed) are flushed as records
// marked "partial":true, and the settled results follow with
// "final":true before the summary — so a client watching a long
// evaluation sees the answer take shape instead of waiting for the
// buffer.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	pools, err := poolsFromQuery(r)
	if err != nil {
		s.failed.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	d, err := s.budget(r)
	if err != nil {
		s.failed.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// trace=1 attaches a span recorder: engine and executor stages
	// observe into it, and the summary is followed by a {"kind":"trace"}
	// record. Tracing also enables per-tier timing, like explain=analyze.
	if r.URL.Query().Get("trace") == "1" {
		r = r.WithContext(repro.WithTrace(r.Context(), repro.NewTrace()))
	}
	// Intensional SQL statements (sql= URL parameter, or an sql field of
	// a multipart body) take a different front half — multi-relation
	// inputs, SPJ compilation, safety analysis — and share the back half.
	sqlText := r.URL.Query().Get("sql")
	if strings.HasPrefix(r.Header.Get("Content-Type"), "multipart/form-data") {
		if err := r.ParseMultipartForm(32 << 20); err != nil {
			s.failed.Add(1)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if v := r.PostFormValue("sql"); v != "" {
			sqlText = v
		}
		if sqlText == "" {
			s.failed.Add(1)
			http.Error(w, "multipart /query requires an sql statement (sql field or URL parameter)", http.StatusBadRequest)
			return
		}
	}
	if sqlText != "" {
		s.handleSQLQuery(w, r, sqlText, pools, d)
		return
	}
	q, err := queryFromRequest(s.model.Schema, r)
	if err != nil {
		s.failed.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// eval abstracts the evaluation source: a posted relation (batch) or
	// a registered dataset's conditioned snapshot. Both run the same
	// plan/executor pipeline and stream the same records.
	var eval func(progress repro.QueryProgressFunc) (*repro.QueryResult, error)
	if id := r.URL.Query().Get("dataset"); id != "" {
		ds, ok := s.eng.Dataset(id)
		if !ok {
			s.failed.Add(1)
			http.Error(w, "unknown dataset "+id, http.StatusNotFound)
			return
		}
		if ds.JoinInput() {
			s.failed.Add(1)
			http.Error(w, "dataset "+id+" is a join input (schema=own): bind it in an sql= query instead", http.StatusBadRequest)
			return
		}
		if r.URL.Query().Get("watch") == "1" {
			s.watchQuery(w, r, ds, q, pools, d)
			return
		}
		snap, err := ds.Snapshot(r.Context())
		if err != nil {
			s.failed.Add(1)
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		eval = func(progress repro.QueryProgressFunc) (*repro.QueryResult, error) {
			ctx, cancel := withBudget(r.Context(), d)
			defer cancel()
			return s.eng.QuerySnapshot(ctx, snap, q, pools, progress)
		}
	} else {
		if r.URL.Query().Get("watch") == "1" {
			s.failed.Add(1)
			http.Error(w, "watch=1 requires dataset=<id>: only registered datasets receive evidence", http.StatusBadRequest)
			return
		}
		rel, err := repro.ReadCSVInSchema(r.Body, s.model.Schema)
		if err != nil {
			s.failed.Add(1)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		eval = func(progress repro.QueryProgressFunc) (*repro.QueryResult, error) {
			ctx, cancel := withBudget(r.Context(), d)
			defer cancel()
			return s.eng.QueryStream(ctx, rel, q, pools, progress)
		}
	}
	head := map[string]any{"kind": "query", "op": q.Op().String(), "query": q.String()}
	if q.Op() == repro.QueryTopK || q.Op() == repro.QueryGroupBy {
		s.streamQuery(w, r, q, s.model.Schema, head, eval)
		return
	}
	res, err := eval(nil)
	if err != nil {
		s.failed.Add(1)
		// Unlike /derive, nothing has been streamed yet, so the failure
		// can carry a real status code.
		var mismatch *repro.SchemaMismatchError
		if errors.As(err, &mismatch) {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.noteBudget(res.Degraded)
	w.Header().Set("Content-Type", "application/x-ndjson")
	ew := &errWriter{w: newFlushWriter(w)}
	enc := json.NewEncoder(ew)
	enc.Encode(head)
	writeScalar(enc, q, res)
	s.writeSummary(enc, r, res)
	if ew.err != nil {
		// The client went away mid-stream: the response is truncated, so
		// the request did not succeed.
		s.failed.Add(1)
	}
}

// writeScalar emits the single result record of a count or exists
// evaluation. A dissociated exists answer (unsafe SPJ plan) carries the
// flag and the sound [lo, hi] interval around the intensional mass;
// extensional queries never set either. A degraded answer (deadline
// budget ran out) is flagged degraded:true with the sound [lo, hi]
// bracket around the exact value — the point answer is its lower side.
func writeScalar(enc *json.Encoder, q *repro.CompiledQuery, res *repro.QueryResult) {
	switch q.Op() {
	case repro.QueryCount:
		var rec map[string]any
		if q.MinProb() > 0 {
			rec = map[string]any{"kind": "count", "count": res.Count, "minprob": q.MinProb()}
		} else {
			rec = map[string]any{"kind": "count", "expected": res.Expected}
		}
		if res.Degraded {
			rec["degraded"] = true
			if res.Bounds != nil {
				rec["lo"], rec["hi"] = res.Bounds.Lo, res.Bounds.Hi
			}
		}
		enc.Encode(rec)
	case repro.QueryExists:
		rec := map[string]any{
			"kind": "exists", "exists": res.Exists, "p": res.Prob, "early_stop": res.EarlyStop,
		}
		if res.Dissociated {
			rec["dissociated"] = true
		}
		if res.Degraded {
			rec["degraded"] = true
		}
		if res.Bounds != nil {
			rec["lo"], rec["hi"] = res.Bounds.Lo, res.Bounds.Hi
		}
		enc.Encode(rec)
	}
}

// handleSQLQuery serves POST /query with an sql= statement — the
// intensional multi-relation path. Each relation the statement names
// resolves from a multipart file field with that name (a CSV under its
// own header), then from a <name>=<dataset id> parameter naming a
// registered dataset. The statement binds to the same operator
// parameters as extensional queries, compiles through CompileSPJ
// (join-chain fold with per-row lineage, safety analysis), and streams
// the same record kinds; the summary carries the join order and safety
// verdict, and unsafe exists answers are flagged dissociated with their
// sound interval.
func (s *server) handleSQLQuery(w http.ResponseWriter, r *http.Request, sqlText string, pools repro.Pools, d time.Duration) {
	if r.URL.Query().Get("watch") == "1" {
		s.failed.Add(1)
		http.Error(w, "watch=1 applies to single-relation dataset queries, not sql statements", http.StatusBadRequest)
		return
	}
	if r.URL.Query().Get("dataset") != "" {
		s.failed.Add(1)
		http.Error(w, "sql statements name their inputs (<relation>=<dataset id>); dataset= applies to single-relation queries", http.StatusBadRequest)
		return
	}
	stmt, err := repro.ParseSPJ(sqlText)
	if err != nil {
		s.failed.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	spec, err := specFromRequest(r)
	if err != nil {
		s.failed.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	inputs := make(map[string]*repro.Relation)
	for _, name := range stmt.Relations() {
		if _, ok := inputs[name]; ok {
			continue
		}
		rel, err := s.resolveSQLInput(r, name)
		if err != nil {
			s.failed.Add(1)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		inputs[name] = rel
	}
	spjSpec, err := stmt.Bind(inputs, spec, r.FormValue("keepkeys") == "1")
	if err != nil {
		s.failed.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	spj, err := repro.CompileSPJ(s.model.Schema, spjSpec)
	if err != nil {
		s.failed.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	q := spj.Query()
	// Projected queries answer in the projection's schema, not the
	// model's; rows must be labeled accordingly.
	schema := s.model.Schema
	if as := spj.AnswerSchema(); as != nil {
		schema = as
	}
	head := map[string]any{
		"kind": "query", "op": q.Op().String(), "query": q.String(),
		"sql": sqlText, "safe": spj.Safe(),
	}
	eval := func(progress repro.QueryProgressFunc) (*repro.QueryResult, error) {
		ctx, cancel := withBudget(r.Context(), d)
		defer cancel()
		return s.eng.QuerySPJStream(ctx, spj, pools, progress)
	}
	if q.Op() == repro.QueryTopK || q.Op() == repro.QueryGroupBy {
		s.streamQuery(w, r, q, schema, head, eval)
		return
	}
	res, err := eval(nil)
	if err != nil {
		s.failed.Add(1)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.noteBudget(res.Degraded)
	w.Header().Set("Content-Type", "application/x-ndjson")
	ew := &errWriter{w: newFlushWriter(w)}
	enc := json.NewEncoder(ew)
	enc.Encode(head)
	writeScalar(enc, q, res)
	s.writeSummary(enc, r, res)
	if ew.err != nil {
		s.failed.Add(1)
	}
}

// resolveSQLInput resolves one statement relation name against the
// request: a multipart file field with that name takes precedence, then
// a <name>=<id> parameter naming a registered dataset (join-input or
// model-schema), whose relation is used by reference.
func (s *server) resolveSQLInput(r *http.Request, name string) (*repro.Relation, error) {
	if r.MultipartForm != nil {
		if fhs := r.MultipartForm.File[name]; len(fhs) > 0 {
			f, err := fhs[0].Open()
			if err != nil {
				return nil, fmt.Errorf("relation %s: %w", name, err)
			}
			defer f.Close()
			rel, err := repro.ReadCSV(f)
			if err != nil {
				return nil, fmt.Errorf("relation %s: %w", name, err)
			}
			return rel, nil
		}
	}
	if id := r.FormValue(name); id != "" {
		ds, ok := s.eng.Dataset(id)
		if !ok {
			return nil, fmt.Errorf("relation %s: unknown dataset %s", name, id)
		}
		return ds.Relation(), nil
	}
	return nil, fmt.Errorf("relation %s has no input: attach a multipart CSV file field %q or name a registered dataset (%s=<id>)", name, name, name)
}

// streamQuery runs a topk or groupby evaluation with incremental NDJSON
// output: partial records as blocks resolve, final records once the
// evaluation settles, then the summary. The stream is already under way
// when inference runs, so evaluation errors append a terminal error
// record instead of a status code; a disconnected client aborts the
// evaluation through the progress callback.
func (s *server) streamQuery(w http.ResponseWriter, r *http.Request, q *repro.CompiledQuery,
	schema *repro.Schema, head map[string]any,
	eval func(repro.QueryProgressFunc) (*repro.QueryResult, error)) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	ew := &errWriter{w: newFlushWriter(w)}
	enc := json.NewEncoder(ew)
	enc.Encode(head)

	var (
		lastRows   []repro.QueryRow
		lastGroups []repro.QueryGroup
	)
	progress := func(res *repro.QueryResult) error {
		switch q.Op() {
		case repro.QueryTopK:
			if slicesEqualRows(res.Rows, lastRows) {
				break
			}
			lastRows = append(lastRows[:0], res.Rows...)
			for rank, row := range res.Rows {
				enc.Encode(map[string]any{
					"kind": "row", "partial": true, "rank": rank, "index": row.Index,
					"values": labelsIn(schema, row.Tuple), "p": row.Prob, "certain": row.Certain,
				})
			}
		case repro.QueryGroupBy:
			for i, g := range res.Groups {
				if i < len(lastGroups) && g == lastGroups[i] {
					continue
				}
				enc.Encode(map[string]any{
					"kind": "group", "partial": true, "value": g.Label,
					"expected": g.Expected, "variance": g.Variance,
				})
			}
			lastGroups = append(lastGroups[:0], res.Groups...)
		}
		return ew.err
	}
	res, err := eval(progress)
	if err != nil {
		s.failed.Add(1)
		enc.Encode(errRecord(r, err))
		return
	}
	s.noteBudget(res.Degraded)
	switch q.Op() {
	case repro.QueryTopK:
		for rank, row := range res.Rows {
			enc.Encode(map[string]any{
				"kind": "row", "final": true, "rank": rank, "index": row.Index,
				"values": labelsIn(schema, row.Tuple), "p": row.Prob, "certain": row.Certain,
			})
		}
	case repro.QueryGroupBy:
		for _, g := range res.Groups {
			rec := map[string]any{
				"kind": "group", "final": true, "value": g.Label,
				"expected": g.Expected, "variance": g.Variance,
			}
			if res.Degraded {
				// Degraded buckets bracket the exact expectation.
				rec["degraded"], rec["lo"], rec["hi"] = true, g.Lo, g.Hi
			}
			enc.Encode(rec)
		}
	}
	s.writeSummary(enc, r, res)
	if ew.err != nil {
		s.failed.Add(1)
	}
}

// errRecord is the terminal NDJSON error record, stamped with the
// request id so mid-stream failures correlate with the request log.
func errRecord(r *http.Request, err error) map[string]string {
	return map[string]string{
		"kind": "error", "error": err.Error(), "request_id": obs.RequestIDFrom(r.Context()),
	}
}

// slicesEqualRows reports whether two row snapshots are identical, so
// the streamer only re-emits partial rows that actually moved.
func slicesEqualRows(a, b []repro.QueryRow) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Prob != b[i].Prob || a[i].Index != b[i].Index || a[i].Certain != b[i].Certain ||
			!a[i].Tuple.Equal(b[i].Tuple) {
			return false
		}
	}
	return true
}

// handleRegisterDataset registers the posted CSV relation as a live
// dataset and returns its handle id. With schema=own the CSV keeps its
// own header and inferred domains and registers as a join-input dataset,
// usable only as a named input of sql= queries. Registration itself runs
// no inference, so it bypasses admission control.
func (s *server) handleRegisterDataset(w http.ResponseWriter, r *http.Request) {
	var (
		rel        *repro.Relation
		ds         *repro.Dataset
		err        error
		schemaMode = cmp.Or(r.URL.Query().Get("schema"), "model")
	)
	switch schemaMode {
	case "model":
		if rel, err = repro.ReadCSVInSchema(r.Body, s.model.Schema); err == nil {
			ds, err = s.eng.RegisterDataset(rel)
		}
	case "own":
		if rel, err = repro.ReadCSV(r.Body); err == nil {
			ds, err = s.eng.RegisterJoinInput(rel)
		}
	default:
		err = fmt.Errorf("query parameter schema must be model or own, got %q", schemaMode)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"kind": "dataset", "id": ds.ID(), "tuples": len(rel.Tuples), "schema": schemaMode,
	})
}

// handleDropDataset unregisters a dataset: its watch streams end with
// an "end" record and its conditioned cache entries are invalidated.
func (s *server) handleDropDataset(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.eng.DropDataset(id) {
		http.Error(w, "unknown dataset "+id, http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"kind": "dropped", "id": id})
}

// observeDelta is one wire observation resolved against the schema:
// tuple index, attribute index, domain code.
type observeDelta struct {
	Index, Attr, Val int
}

// parseObserveRequest decodes and resolves a POST /observe body against
// the schema: attributes by name, values by domain label. It validates
// shape and vocabulary only — tuple-index range and evidence
// consistency are the dataset's to judge.
func parseObserveRequest(schema *repro.Schema, body io.Reader) (string, []observeDelta, error) {
	var req struct {
		Dataset      string `json:"dataset"`
		Observations []struct {
			Index int    `json:"index"`
			Attr  string `json:"attr"`
			Value string `json:"value"`
		} `json:"observations"`
	}
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return "", nil, fmt.Errorf("observe: decoding body: %w", err)
	}
	if req.Dataset == "" {
		return "", nil, fmt.Errorf("observe: missing dataset id")
	}
	if len(req.Observations) == 0 {
		return "", nil, fmt.Errorf("observe: no observations")
	}
	deltas := make([]observeDelta, 0, len(req.Observations))
	for i, o := range req.Observations {
		attr := schema.AttrIndex(o.Attr)
		if attr < 0 {
			return "", nil, fmt.Errorf("observe: observation %d: unknown attribute %q", i, o.Attr)
		}
		val, err := schema.ValueCode(attr, o.Value)
		if err != nil {
			return "", nil, fmt.Errorf("observe: observation %d: %w", i, err)
		}
		if o.Index < 0 {
			return "", nil, fmt.Errorf("observe: observation %d: negative tuple index %d", i, o.Index)
		}
		deltas = append(deltas, observeDelta{Index: o.Index, Attr: attr, Val: val})
	}
	return req.Dataset, deltas, nil
}

// handleObserve applies a batch of evidence deltas to a registered
// dataset, in order. Each delta conditions the tuple's block exactly
// and invalidates exactly the superseded conditioned cache entry. A
// delta the evidence rules out (conflict or zero remaining mass) stops
// the batch with 409, reporting how many deltas applied before it —
// those stay applied; deltas are not a transaction.
func (s *server) handleObserve(w http.ResponseWriter, r *http.Request) {
	id, deltas, err := parseObserveRequest(s.model.Schema, r.Body)
	if err != nil {
		s.failed.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ds, ok := s.eng.Dataset(id)
	if !ok {
		s.failed.Add(1)
		http.Error(w, "unknown dataset "+id, http.StatusNotFound)
		return
	}
	n := len(ds.Relation().Tuples)
	results := make([]map[string]any, 0, len(deltas))
	var version uint64
	for applied, d := range deltas {
		if d.Index >= n {
			s.failed.Add(1)
			http.Error(w, fmt.Sprintf("observe: tuple index %d out of range [0, %d)", d.Index, n),
				http.StatusBadRequest)
			return
		}
		res, err := ds.Observe(r.Context(), d.Index, d.Attr, d.Val)
		if err != nil {
			// The evidence is inconsistent with the block's remaining mass
			// (or the dataset was dropped mid-batch): a conflict, not a bad
			// request shape.
			s.failed.Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusConflict)
			json.NewEncoder(w).Encode(map[string]any{
				"kind": "error", "error": err.Error(), "applied": applied,
			})
			return
		}
		version = res.Version
		results = append(results, map[string]any{
			"index": res.Index, "noop": res.Noop, "collapsed": res.Collapsed,
			"alternatives": res.Alternatives, "epoch": res.Epoch,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"kind": "observed", "dataset": id, "applied": len(results),
		"version": version, "results": results,
	})
}

// watchQuery serves /query?dataset=<id>&watch=1: a long-lived
// subscription that evaluates the query over the dataset's conditioned
// snapshot, emits the full result once, then re-evaluates after every
// observation and re-emits ONLY the records the delta actually changed,
// marked "partial":true and stamped with the dataset version. The
// stream ends when the client disconnects or the dataset is dropped
// (an "end" record). Observation signals are coalesced: a burst of
// deltas may surface as one re-evaluation of the latest snapshot.
func (s *server) watchQuery(w http.ResponseWriter, r *http.Request,
	ds *repro.Dataset, q *repro.CompiledQuery, pools repro.Pools, d time.Duration) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	ew := &errWriter{w: newFlushWriter(w)}
	enc := json.NewEncoder(ew)
	enc.Encode(map[string]any{
		"kind": "query", "op": q.Op().String(), "query": q.String(),
		"dataset": ds.ID(), "watch": true,
	})

	var st watchState
	// The deadline budget applies per re-evaluation, not to the stream:
	// a subscription lives until disconnect, drop, or drain, but each
	// answer it pushes is bounded.
	reval := func() error {
		ctx, cancel := withBudget(r.Context(), d)
		defer cancel()
		snap, err := ds.Snapshot(ctx)
		if err != nil {
			return err
		}
		res, err := s.eng.QuerySnapshot(ctx, snap, q, pools, nil)
		if err != nil {
			return err
		}
		s.noteBudget(res.Degraded)
		s.emitWatchDiff(enc, q, res, snap.Version, &st)
		return ew.err
	}
	if err := reval(); err != nil {
		s.failed.Add(1)
		enc.Encode(errRecord(r, err))
		return
	}
	ch, cancel := ds.Subscribe()
	defer cancel()
	// An observe between the first evaluation and the subscription would
	// be missed; re-check once now that the signal channel is live.
	if err := reval(); err != nil {
		s.failed.Add(1)
		enc.Encode(errRecord(r, err))
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return // client disconnected; nothing left to tell it
		case <-s.drain:
			// Server draining: end the subscription cleanly so Shutdown can
			// finish. The last emitted results stand.
			enc.Encode(map[string]any{"kind": "end", "reason": "server draining", "dataset": ds.ID()})
			return
		case <-ds.Done():
			enc.Encode(map[string]any{"kind": "end", "reason": "dataset dropped", "dataset": ds.ID()})
			return
		case <-ch:
			if err := reval(); err != nil {
				s.failed.Add(1)
				enc.Encode(errRecord(r, err))
				return
			}
		}
	}
}

// watchState is the last emitted result of a watch stream, diffed
// against each re-evaluation so unchanged records are never re-sent.
type watchState struct {
	init     bool
	count    float64 // Expected, or Count when thresholded
	exists   bool
	prob     float64
	earlyCut bool
	rows     []repro.QueryRow
	groups   []repro.QueryGroup
}

// emitWatchDiff emits the result records of res that differ from the
// previous evaluation in st, marked partial and stamped with the
// dataset version, then updates st. The first call emits everything.
func (s *server) emitWatchDiff(enc *json.Encoder, q *repro.CompiledQuery,
	res *repro.QueryResult, version uint64, st *watchState) {
	first := !st.init
	st.init = true
	switch q.Op() {
	case repro.QueryCount:
		val := res.Expected
		if q.MinProb() > 0 {
			val = float64(res.Count)
		}
		if first || val != st.count {
			st.count = val
			rec := map[string]any{"kind": "count", "partial": true, "version": version}
			if q.MinProb() > 0 {
				rec["count"] = res.Count
				rec["minprob"] = q.MinProb()
			} else {
				rec["expected"] = res.Expected
			}
			enc.Encode(rec)
		}
	case repro.QueryExists:
		if first || res.Exists != st.exists || res.Prob != st.prob || res.EarlyStop != st.earlyCut {
			st.exists, st.prob, st.earlyCut = res.Exists, res.Prob, res.EarlyStop
			enc.Encode(map[string]any{
				"kind": "exists", "partial": true, "version": version,
				"exists": res.Exists, "p": res.Prob, "early_stop": res.EarlyStop,
			})
		}
	case repro.QueryTopK:
		for rank, row := range res.Rows {
			if !first && rank < len(st.rows) {
				p := st.rows[rank]
				if p.Prob == row.Prob && p.Index == row.Index && p.Certain == row.Certain &&
					p.Tuple.Equal(row.Tuple) {
					continue
				}
			}
			enc.Encode(map[string]any{
				"kind": "row", "partial": true, "version": version, "rank": rank,
				"index": row.Index, "values": labelsIn(s.model.Schema, row.Tuple),
				"p": row.Prob, "certain": row.Certain,
			})
		}
		// Evidence can disqualify rows: retract ranks past the new end.
		for rank := len(res.Rows); rank < len(st.rows); rank++ {
			enc.Encode(map[string]any{
				"kind": "row", "partial": true, "version": version, "rank": rank, "removed": true,
			})
		}
		st.rows = append(st.rows[:0], res.Rows...)
	case repro.QueryGroupBy:
		// Groups cover the grouping attribute's domain in order, so the
		// diff is positional, like the batch streamer's.
		for i, g := range res.Groups {
			if !first && i < len(st.groups) && g == st.groups[i] {
				continue
			}
			enc.Encode(map[string]any{
				"kind": "group", "partial": true, "version": version,
				"value": g.Label, "expected": g.Expected, "variance": g.Variance,
			})
		}
		st.groups = append(st.groups[:0], res.Groups...)
	}
}

// writeSummary emits the terminal summary record: pruning counters,
// bound usage, and the chosen plan. SPJ evaluations add the join order,
// conditions, and safety verdict, plus the dissociation flag and bounds
// when the answer was computed over a dissociated lineage. With
// explain=analyze (or trace=1) the plan block carries the measured
// timing section, and a trace on the request context is flushed as a
// {"kind":"trace"} record after the summary.
func (s *server) writeSummary(enc *json.Encoder, r *http.Request, res *repro.QueryResult) {
	c := res.Counters
	summary := map[string]any{
		"kind": "summary", "scanned": c.Scanned, "pruned": c.Pruned,
		"bounded": c.Bounded, "derived": c.Derived,
		"bound_refuted": c.BoundRefutes, "bound_width": c.BoundWidth,
		"request_id": obs.RequestIDFrom(r.Context()),
	}
	if res.Dissociated {
		summary["dissociated"] = true
	}
	if res.Degraded {
		summary["degraded"] = true
		summary["degraded_tuples"] = res.DegradedTuples
	}
	if res.Bounds != nil {
		summary["bounds"] = map[string]float64{"lo": res.Bounds.Lo, "hi": res.Bounds.Hi}
	}
	if p := res.Plan; p != nil {
		plan := map[string]any{
			"pred_order":  p.PredOrder,
			"selectivity": p.Selectivity,
			"tiers": map[string]int{
				"refuted": p.Refuted, "certain": p.Certain, "single_missing": p.SingleMissing,
				"bounded": p.Bounded, "derive": p.Derive, "observed": p.Observed,
			},
			"bounds_used": p.BoundsUsed,
		}
		if a := p.Adaptive; a != nil {
			adaptive := map[string]any{
				"cost_model":        a.CostModel,
				"envelope_hits":     a.EnvelopeHits,
				"envelope_misses":   a.EnvelopeMisses,
				"envelopes_skipped": a.EnvelopesSkipped,
				"replans":           a.Replans,
			}
			if len(a.ReplanCut) > 0 {
				adaptive["replan_cut"] = a.ReplanCut
			}
			plan["adaptive"] = adaptive
		}
		if p.Timing != nil {
			// Explain-analyze: measured plan/wall durations and per-tier
			// resolution times (tuples + duration_ms each).
			plan["timing"] = p.Timing
		}
		if j := p.Join; j != nil {
			join := map[string]any{
				"relations": j.Relations, "conditions": j.Conditions,
				"safe": j.Safe, "shared_uncertain": j.SharedUncertain, "verdict": j.Verdict,
			}
			if len(j.Projection) > 0 {
				join["projection"] = j.Projection
			}
			plan["join"] = join
		}
		summary["plan"] = plan
	}
	enc.Encode(summary)
	if tr := repro.TraceFrom(r.Context()); tr != nil {
		enc.Encode(map[string]any{
			"kind": "trace", "request_id": obs.RequestIDFrom(r.Context()), "spans": tr.Spans(),
		})
	}
}

// errWriter records the first write error and drops everything after it,
// so a disconnected client stops the stream instead of being encoded to
// in vain.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, err
}

// labelsIn renders a complete tuple's value codes as domain labels of
// the given schema — the model's for extensional rows, the answer
// schema for projected SPJ rows.
func labelsIn(schema *repro.Schema, t repro.Tuple) []string {
	out := make([]string, len(t))
	for a, v := range t {
		out[a] = schema.Attrs[a].Domain[v]
	}
	return out
}

// specFromRequest reads the operator parameters shared by extensional
// and intensional queries — op, where, groupby, k, minprob — into an
// uncompiled spec.
func specFromRequest(r *http.Request) (repro.QuerySpec, error) {
	vals := r.URL.Query()
	op, err := repro.ParseQueryOp(cmp.Or(vals.Get("op"), "count"))
	if err != nil {
		return repro.QuerySpec{}, err
	}
	spec := repro.QuerySpec{
		Op:      op,
		Where:   vals.Get("where"),
		GroupBy: vals.Get("groupby"),
	}
	if v := vals.Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			// k >= 1 keeps served topk results (and server memory) bounded;
			// the unbounded k <= 0 form stays a library/CLI affordance.
			return spec, fmt.Errorf("query parameter k must be a positive integer, got %q", v)
		}
		spec.K = n
	} else if op == repro.QueryTopK {
		spec.K = 10
	}
	if v := vals.Get("minprob"); v != "" {
		p, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return spec, fmt.Errorf("query parameter minprob must be a number, got %q", v)
		}
		spec.MinProb = p
	}
	// explain=analyze turns on explain-analyze: the evaluation measures
	// its per-tier resolution durations and the summary's plan block
	// carries them. Observation only — answers never change.
	spec.Analyze = vals.Get("explain") == "analyze"
	return spec, nil
}

// queryFromRequest builds a compiled single-relation query from the
// request's URL parameters.
func queryFromRequest(schema *repro.Schema, r *http.Request) (*repro.CompiledQuery, error) {
	spec, err := specFromRequest(r)
	if err != nil {
		return nil, err
	}
	return repro.CompileQuery(schema, spec)
}

// statsResponse is the /stats payload: the engine's cache counters plus
// serving-level bookkeeping.
type statsResponse struct {
	Engine       repro.EngineStats `json:"engine"`
	VoteHitRate  float64           `json:"vote_hit_rate"`
	GibbsHitRate float64           `json:"gibbs_hit_rate"`
	CPDHitRate   float64           `json:"cpd_hit_rate"`
	BoundHitRate float64           `json:"bound_hit_rate"`
	// EnvelopeHitRate is the hit rate of the shared combined-envelope
	// interval cache adaptive planning probes; Replans counts executor
	// re-plan rounds that cut remaining candidates mid-query.
	EnvelopeHitRate float64 `json:"envelope_hit_rate"`
	Replans         int64   `json:"replans"`
	Evictions       int64   `json:"evictions"`
	BoundTightness  float64 `json:"query_bound_tightness"`
	BoundRefutes    int64   `json:"bound_refutes"`
	// QueriesDissociated counts completed queries answered over a
	// dissociated lineage (unsafe SPJ plans, exists or projection).
	QueriesDissociated int64 `json:"queries_dissociated"`
	// Live-evidence counters: observations applied across all datasets,
	// conditioned cache entries invalidated (eagerly or by epoch
	// mismatch), and the current watcher and dataset gauges.
	Observations       int64 `json:"observations"`
	InvalidatedEntries int64 `json:"invalidated_entries"`
	Watchers           int64 `json:"watchers"`
	Datasets           int64 `json:"datasets"`
	// Requests counts offered inference requests: accepted + rejected +
	// shed.
	Requests int64 `json:"requests"`
	Accepted int64 `json:"accepted"`
	Failed   int64 `json:"failed"`
	Rejected int64 `json:"rejected"`
	// Shed counts requests turned away with 503: server draining, or
	// sustained deadline misses past -shed-after-misses.
	Shed int64 `json:"shed"`
	// Draining reports that SIGTERM flipped the server into graceful
	// drain: no new inference requests, watch streams ended.
	Draining bool `json:"draining"`
	// ServerPanics counts handler panics converted into error responses
	// by the serving layer (the engine's own recoveries are
	// Engine.PanicsRecovered).
	ServerPanics  int64   `json:"server_panics"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Revision is the VCS revision baked into the binary ("unknown"
	// outside a VCS build); GoVersion the toolchain that built it.
	Revision  string `json:"revision"`
	GoVersion string `json:"go_version"`
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.eng.Stats()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(statsResponse{
		Engine:             st,
		VoteHitRate:        st.VoteHitRate(),
		GibbsHitRate:       st.GibbsHitRate(),
		CPDHitRate:         st.CPDHitRate(),
		BoundHitRate:       st.BoundHitRate(),
		EnvelopeHitRate:    st.EnvelopeHitRate(),
		Replans:            st.Replans,
		Evictions:          st.Evictions + st.CPDEvictions,
		BoundTightness:     st.QueryBoundTightness(),
		BoundRefutes:       st.BoundRefutes,
		QueriesDissociated: st.QueriesDissociated,
		Observations:       st.Observations,
		InvalidatedEntries: st.InvalidatedEntries,
		Watchers:           st.Watchers,
		Datasets:           st.Datasets,
		Requests:           s.requests.Load(),
		Accepted:           s.accepted.Load(),
		Failed:             s.failed.Load(),
		Rejected:           s.rejected.Load(),
		Shed:               s.shed.Load(),
		Draining:           s.draining.Load(),
		ServerPanics:       s.panics.Load(),
		UptimeSeconds:      time.Since(s.start).Seconds(),
		Revision:           obs.BuildRevision(),
		GoVersion:          obs.GoVersion(),
	})
}

// handleHealthz is the liveness/readiness probe: 200 while serving, 503
// once the server is draining so load balancers stop routing to it.
func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "{\"status\":\"draining\"}\n")
		return
	}
	io.WriteString(w, "{\"status\":\"ok\"}\n")
}

// poolsFromQuery reads optional per-request pool overrides; pool sizes
// affect scheduling only, never the derived stream.
func poolsFromQuery(r *http.Request) (repro.Pools, error) {
	var p repro.Pools
	q := r.URL.Query()
	for _, f := range []struct {
		name string
		dst  *int
	}{{"voteworkers", &p.VoteWorkers}, {"gibbsworkers", &p.GibbsWorkers}} {
		v := q.Get(f.name)
		if v == "" {
			continue
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return p, fmt.Errorf("query parameter %s must be a non-negative integer, got %q", f.name, v)
		}
		*f.dst = n
	}
	return p, nil
}

// flushWriter flushes the HTTP response after every write, so each NDJSON
// line reaches the client as soon as its block is inferred.
type flushWriter struct {
	w     io.Writer
	flush func()
}

func newFlushWriter(w http.ResponseWriter) *flushWriter {
	fw := &flushWriter{w: w, flush: func() {}}
	if f, ok := w.(http.Flusher); ok {
		fw.flush = f.Flush
	}
	return fw
}

func (f *flushWriter) Write(p []byte) (int, error) {
	n, err := f.w.Write(p)
	f.flush()
	return n, err
}
