// Command mrslserve serves streaming derivations over HTTP from one
// long-lived repro.Engine: the model is loaded once, and every request
// shares the engine's evidence-keyed caches, so repeated damage patterns
// across requests are inferred exactly once for the life of the process.
//
// Usage:
//
//	mrslserve -model model.json [-addr :8080] [-workers 8] [-samples 800]
//	          [-cache-entries 65536]
//
// The engine's memoization caches (vote blocks, multi-missing joints,
// local CPDs) are bounded to -cache-entries entries each with CLOCK
// eviction, so the server runs in fixed memory under unbounded damage
// pattern diversity; with -workers > 1 (chains mode) eviction never
// changes responses, it only costs recomputation.
//
// Endpoints:
//
//	POST /derive   body: CSV relation over the model's schema ("?" marks
//	               missing values). Streams the derived database back as
//	               NDJSON — a schema record, then one record per input
//	               tuple in input order (certain values, or a block of
//	               alternatives with probabilities) — flushing each line,
//	               so clients read blocks as they are inferred. Query
//	               parameters voteworkers and gibbsworkers override the
//	               request's pool sizes (never the result).
//	GET  /stats    engine cache counters, hit rates, uptime, requests.
//	GET  /healthz  liveness probe.
//
// With -addr host:0 the kernel picks a free port; the chosen address is
// printed as "mrslserve: listening on <addr>" so scripts can scrape it.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"repro"
)

func main() {
	var (
		modelPath = flag.String("model", "", "model JSON from mrsllearn (required)")
		addr      = flag.String("addr", ":8080", "listen address (host:0 picks a free port)")
		samples   = flag.Int("samples", 800, "Gibbs samples per distinct multi-missing tuple")
		burnin    = flag.Int("burnin", 100, "Gibbs burn-in sweeps")
		seed      = flag.Int64("seed", 1, "sampler seed")
		workers   = flag.Int("workers", 8, "default Gibbs chain pool size per request (>1 selects per-block chains)")
		voters    = flag.Int("voteworkers", 0, "default voting pool size per request (0 = GOMAXPROCS)")
		maxAlts   = flag.Int("maxalts", 0, "cap block alternatives (0 keeps all)")
		cacheEnts = flag.Int("cache-entries", 1<<16, "bound each engine cache to this many entries, CLOCK-evicted (0 = unbounded vote/joint caches, default-capped CPD memo); eviction never changes results in chains mode")
	)
	flag.Parse()
	if *modelPath == "" {
		fmt.Fprintln(os.Stderr, "mrslserve: -model is required")
		flag.Usage()
		os.Exit(2)
	}
	mf, err := os.Open(*modelPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrslserve: %v\n", err)
		os.Exit(1)
	}
	model, err := repro.LoadModel(mf)
	mf.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrslserve: %v\n", err)
		os.Exit(1)
	}
	opt := repro.DeriveOptions{
		Method:          repro.BestAveraged(),
		MaxAlternatives: *maxAlts,
		Workers:         *workers,
		VoteWorkers:     *voters,
		CacheEntries:    *cacheEnts,
		Gibbs: repro.GibbsOptions{
			Samples: *samples, BurnIn: *burnin, Seed: *seed, Method: repro.BestAveraged(),
		},
	}
	srv, err := newServer(model, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrslserve: %v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrslserve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("mrslserve: listening on %s\n", ln.Addr())
	if err := http.Serve(ln, srv); err != nil {
		fmt.Fprintf(os.Stderr, "mrslserve: %v\n", err)
		os.Exit(1)
	}
}

// server routes HTTP traffic onto one shared derivation engine.
type server struct {
	model *repro.Model
	eng   *repro.Engine
	mux   *http.ServeMux
	start time.Time

	requests atomic.Int64 // derivation requests accepted
	failed   atomic.Int64 // derivation requests that ended in an error
}

func newServer(model *repro.Model, opt repro.DeriveOptions) (*server, error) {
	eng, err := repro.NewEngine(model, opt)
	if err != nil {
		return nil, err
	}
	s := &server{model: model, eng: eng, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("POST /derive", s.handleDerive)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s, nil
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// handleDerive parses the posted CSV against the model schema and streams
// the derived database back as NDJSON, one line per item as it is
// inferred.
func (s *server) handleDerive(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	rel, err := repro.ReadCSVInSchema(r.Body, s.model.Schema)
	if err != nil {
		s.failed.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	pools, err := poolsFromQuery(r)
	if err != nil {
		s.failed.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	sink := repro.NewJSONLSink(newFlushWriter(w), s.model.Schema)
	if err := s.eng.DeriveToPools(rel, pools, sink); err != nil {
		s.failed.Add(1)
		var mismatch *repro.SchemaMismatchError
		if errors.As(err, &mismatch) {
			// ReadCSVInSchema makes this unreachable in practice, but the
			// engine's own validation still deserves a 4xx, not a 5xx.
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// The NDJSON stream may already be under way; append a terminal
		// error record instead of a status code the client can no longer
		// see.
		json.NewEncoder(w).Encode(map[string]string{"kind": "error", "error": err.Error()})
		return
	}
}

// statsResponse is the /stats payload: the engine's cache counters plus
// serving-level bookkeeping.
type statsResponse struct {
	Engine        repro.EngineStats `json:"engine"`
	VoteHitRate   float64           `json:"vote_hit_rate"`
	GibbsHitRate  float64           `json:"gibbs_hit_rate"`
	CPDHitRate    float64           `json:"cpd_hit_rate"`
	Evictions     int64             `json:"evictions"`
	Requests      int64             `json:"requests"`
	Failed        int64             `json:"failed"`
	UptimeSeconds float64           `json:"uptime_seconds"`
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.eng.Stats()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(statsResponse{
		Engine:        st,
		VoteHitRate:   st.VoteHitRate(),
		GibbsHitRate:  st.GibbsHitRate(),
		CPDHitRate:    st.CPDHitRate(),
		Evictions:     st.Evictions + st.CPDEvictions,
		Requests:      s.requests.Load(),
		Failed:        s.failed.Load(),
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	io.WriteString(w, "{\"status\":\"ok\"}\n")
}

// poolsFromQuery reads optional per-request pool overrides; pool sizes
// affect scheduling only, never the derived stream.
func poolsFromQuery(r *http.Request) (repro.Pools, error) {
	var p repro.Pools
	q := r.URL.Query()
	for _, f := range []struct {
		name string
		dst  *int
	}{{"voteworkers", &p.VoteWorkers}, {"gibbsworkers", &p.GibbsWorkers}} {
		v := q.Get(f.name)
		if v == "" {
			continue
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return p, fmt.Errorf("query parameter %s must be a non-negative integer, got %q", f.name, v)
		}
		*f.dst = n
	}
	return p, nil
}

// flushWriter flushes the HTTP response after every write, so each NDJSON
// line reaches the client as soon as its block is inferred.
type flushWriter struct {
	w     io.Writer
	flush func()
}

func newFlushWriter(w http.ResponseWriter) *flushWriter {
	fw := &flushWriter{w: w, flush: func() {}}
	if f, ok := w.(http.Flusher); ok {
		fw.flush = f.Flush
	}
	return fw
}

func (f *flushWriter) Write(p []byte) (int, error) {
	n, err := f.w.Write(p)
	f.flush()
	return n, err
}
