package main

// Fail-soft serving tests: deadline-budgeted degradation, truncated
// derive streams, panic isolation, graceful drain, shed-on-overload,
// and watch unsubscription on client disconnect. Several tests arm the
// process-global fault-injection switchboard or flip a server into
// drain, so none of them call t.Parallel.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/faultinject"
)

func getStats(t *testing.T, ts *httptest.Server) statsResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func postQueryRecords(t *testing.T, ts *httptest.Server, params string, csvBody []byte) (int, []map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/query?"+params, "text/csv", bytes.NewReader(csvBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, []map[string]any{{"error": string(out)}}
	}
	var recs []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		var r map[string]any
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		recs = append(recs, r)
	}
	return resp.StatusCode, recs
}

// TestServeDeadlineBudgetDegrades: a query whose timeout_ms budget is
// already spent still answers 200 — flagged degraded:true with a sound
// [lo, hi] bracket containing the exact answer — and the same query
// without a budget stays bit-identical to a local reference.
func TestServeDeadlineBudgetDegrades(t *testing.T) {
	model, rel, csvBody := matchmakingFixture(t)
	ts := startServer(t, model)

	where := "age=20"
	eng, err := repro.NewEngine(model, serveOptions())
	if err != nil {
		t.Fatal(err)
	}
	q, err := repro.CompileQuery(model.Schema, repro.QuerySpec{Op: repro.QueryCount, Where: where})
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.Query(context.Background(), rel, q)
	if err != nil {
		t.Fatal(err)
	}

	code, recs := postQueryRecords(t, ts, "op=count&where="+url.QueryEscape(where)+"&timeout_ms=1", csvBody)
	if code != http.StatusOK {
		t.Fatalf("degraded query: status %d: %v", code, recs)
	}
	count := recs[1]
	if count["kind"] != "count" || count["degraded"] != true {
		t.Fatalf("count record = %v, want degraded:true", count)
	}
	lo, okLo := count["lo"].(float64)
	hi, okHi := count["hi"].(float64)
	if !okLo || !okHi {
		t.Fatalf("degraded count record misses [lo, hi]: %v", count)
	}
	if lo > want.Expected || hi < want.Expected {
		t.Errorf("exact expected %v outside degraded bounds [%v, %v]", want.Expected, lo, hi)
	}
	if count["expected"].(float64) != lo {
		t.Errorf("degraded point answer %v is not the bracket's lower side %v", count["expected"], lo)
	}
	summary := recs[len(recs)-1]
	if summary["kind"] != "summary" || summary["degraded"] != true || summary["degraded_tuples"].(float64) <= 0 {
		t.Errorf("summary = %v, want degraded with degraded_tuples > 0", summary)
	}

	st := getStats(t, ts)
	if st.Engine.Degraded == 0 || st.Engine.DeadlineMisses == 0 {
		t.Errorf("stats: degraded=%d deadline_misses=%d, want both > 0",
			st.Engine.Degraded, st.Engine.DeadlineMisses)
	}

	// Without a budget the very same server answers exactly.
	code, recs = postQueryRecords(t, ts, "op=count&where="+url.QueryEscape(where), csvBody)
	if code != http.StatusOK {
		t.Fatalf("follow-up query: status %d: %v", code, recs)
	}
	count = recs[1]
	if count["degraded"] != nil {
		t.Errorf("unbudgeted query flagged degraded: %v", count)
	}
	if count["expected"].(float64) != want.Expected {
		t.Errorf("unbudgeted expected = %v, want bit-identical %v", count["expected"], want.Expected)
	}
}

// TestServeDeriveTruncates: a derive stream that outlives its budget
// ends with a terminal "truncated" record — a soft outcome, not a
// failure — and the lines before it are exact records.
func TestServeDeriveTruncates(t *testing.T) {
	model, _, csvBody := matchmakingFixture(t)
	ts := startServer(t, model)

	// Slow each chain so a 1ms budget demonstrably cannot cover the
	// stream (an unthrottled matchmaking derivation can beat 1ms).
	if err := faultinject.Configure("gibbs.sweep=sleep:20ms/1"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disable()

	out := postDerive(t, ts, csvBody, "?timeout_ms=1")
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	var last map[string]any
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last["kind"] != "truncated" || last["timeout_ms"].(float64) != 1 {
		t.Fatalf("terminal record = %v, want kind=truncated timeout_ms=1", last)
	}
	for _, line := range lines[:len(lines)-1] {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatal(err)
		}
		if k := rec["kind"]; k != "schema" && k != "certain" && k != "block" {
			t.Fatalf("record before truncation has kind %v", k)
		}
	}
	if st := getStats(t, ts); st.Failed != 0 {
		t.Errorf("truncated stream counted as failure: failed=%d", st.Failed)
	}
}

// TestServeEnginePanicMidStream: with every vote computation panicking,
// a derive stream emits its exact prefix then a terminal error record,
// the process survives, and once the fault is disarmed the same server
// serves the full stream bit-identical to a local fault-free reference.
func TestServeEnginePanicMidStream(t *testing.T) {
	model, rel, csvBody := matchmakingFixture(t)
	ts := startServer(t, model)

	// Local fault-free reference stream.
	var want bytes.Buffer
	sink := repro.NewJSONLSink(&want, model.Schema)
	if err := repro.DeriveStream(model, rel, serveOptions(), sink.Emit); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	wantLines := strings.Split(strings.TrimSpace(want.String()), "\n")

	if err := faultinject.Configure("derive.vote=panic/1"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disable()

	resp, err := http.Post(ts.URL+"/derive", "text/csv", bytes.NewReader(csvBody))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mid-stream panic flipped the status to %d: %s", resp.StatusCode, out)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	var last map[string]any
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last["kind"] != "error" || !strings.Contains(last["error"].(string), "panic") {
		t.Fatalf("terminal record = %v, want a recovered-panic error record", last)
	}
	// Everything before the error is the exact prefix of the reference.
	for i, line := range lines[:len(lines)-1] {
		if line != wantLines[i] {
			t.Fatalf("pre-panic line %d differs:\ngot:  %s\nwant: %s", i, line, wantLines[i])
		}
	}

	st := getStats(t, ts)
	if st.Engine.PanicsRecovered == 0 {
		t.Error("engine recovered no panics")
	}
	if st.Failed == 0 {
		t.Error("panicking request not counted as failed")
	}

	// Disarmed, the same engine — same caches that saw the panic storm —
	// serves the complete stream bit for bit.
	faultinject.Disable()
	got := postDerive(t, ts, csvBody, "")
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("post-recovery stream differs from reference:\ngot:\n%s\nwant:\n%s", got, want.Bytes())
	}
}

// TestServeHandlerPanicRecovered: the ServeHTTP boundary converts a
// handler panic into a 500 (or a terminal error record mid-stream),
// counts it, and the server keeps serving.
func TestServeHandlerPanicRecovered(t *testing.T) {
	model, _, csvBody := matchmakingFixture(t)
	ts, srv := startServerInflight(t, model, 0)
	srv.mux.HandleFunc("GET /panic-before-write", func(http.ResponseWriter, *http.Request) {
		panic("handler exploded")
	})
	srv.mux.HandleFunc("GET /panic-mid-stream", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "{\"kind\":\"partial\"}\n")
		panic("handler exploded mid-stream")
	})

	resp, err := http.Get(ts.URL + "/panic-before-write")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError || !strings.Contains(string(body), "recovered panic") {
		t.Errorf("pre-write panic: status %d body %q, want 500 with recovered panic", resp.StatusCode, body)
	}

	resp, err = http.Get(ts.URL + "/panic-mid-stream")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	var last map[string]any
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || last["kind"] != "error" {
		t.Errorf("mid-stream panic: status %d last record %v, want 200 + error record", resp.StatusCode, last)
	}

	st := getStats(t, ts)
	if st.ServerPanics != 2 {
		t.Errorf("server_panics = %d, want 2", st.ServerPanics)
	}
	// The process, engine, and routes are untouched: inference still works.
	if out := postDerive(t, ts, csvBody, ""); len(out) == 0 {
		t.Error("derive after handler panics returned nothing")
	}
}

// TestServeGracefulDrain: beginDrain (what SIGTERM triggers) ends watch
// subscriptions with their "end" record, flips /healthz to 503, sheds
// new inference requests with 503 + Retry-After, and reports itself in
// /stats — while observability endpoints keep answering.
func TestServeGracefulDrain(t *testing.T) {
	model, rel, csvBody := matchmakingFixture(t)
	ts, srv := startServerInflight(t, model, 0)
	id := registerDataset(t, ts.URL, csvBody)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	attr := model.Schema.Attrs[0].Name
	ch := watchLines(t, ctx, ts.URL, "op=count&where="+url.QueryEscape(attr+"="+model.Schema.Attrs[0].Domain[0])+
		"&dataset="+id+"&watch=1")
	if head := nextRecord(t, ch, "watch head"); head["kind"] != "query" {
		t.Fatalf("watch head = %v", head)
	}
	if first := nextRecord(t, ch, "first count"); first["kind"] != "count" {
		t.Fatalf("first watch record = %v", first)
	}
	_ = rel

	srv.beginDrain()

	// The subscriber is told the stream is over, then the stream closes.
	end := nextRecord(t, ch, "drain end record")
	if end["kind"] != "end" || end["reason"] != "server draining" {
		t.Fatalf("end record = %v, want server draining", end)
	}
	if _, ok := <-ch; ok {
		t.Error("watch stream still open after drain end record")
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hzBody, _ := io.ReadAll(hz.Body)
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(hzBody), "draining") {
		t.Errorf("healthz while draining: status %d body %q, want 503 draining", hz.StatusCode, hzBody)
	}

	resp, err := http.Post(ts.URL+"/derive", "text/csv", bytes.NewReader(csvBody))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("derive while draining: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response misses Retry-After")
	}

	st := getStats(t, ts)
	if !st.Draining || st.Shed == 0 {
		t.Errorf("stats: draining=%v shed=%d, want draining with shed > 0", st.Draining, st.Shed)
	}
}

// TestServeShedAfterMisses: once consecutive requests miss their
// deadline budget, new inference requests are shed with 503 — except a
// once-per-second half-open probe, which lets a clean completion lift
// the shed again.
func TestServeShedAfterMisses(t *testing.T) {
	model, _, csvBody := matchmakingFixture(t)
	ts, srv := startServerInflight(t, model, 0)
	srv.shedAfter = 1
	srv.lastProbe.Store(time.Now().UnixNano()) // close the probe window for determinism

	where := url.QueryEscape("age=20")
	code, recs := postQueryRecords(t, ts, "op=count&where="+where+"&timeout_ms=1", csvBody)
	if code != http.StatusOK || recs[1]["degraded"] != true {
		t.Fatalf("miss-provoking query: status %d records %v", code, recs)
	}

	// The streak is open and the probe window shut: shed.
	code, recs = postQueryRecords(t, ts, "op=count&where="+where, csvBody)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("query under sustained misses: status %d (%v), want 503", code, recs)
	}
	if st := getStats(t, ts); st.Shed == 0 {
		t.Errorf("stats: shed=%d, want > 0", st.Shed)
	}

	// After the probe window reopens, one clean request is admitted and
	// resets the streak; traffic flows again.
	time.Sleep(1100 * time.Millisecond)
	code, recs = postQueryRecords(t, ts, "op=count&where="+where, csvBody)
	if code != http.StatusOK {
		t.Fatalf("probe request: status %d (%v), want 200", code, recs)
	}
	code, _ = postQueryRecords(t, ts, "op=count&where="+where, csvBody)
	if code != http.StatusOK {
		t.Fatalf("request after clean probe: status %d, want 200 (shed lifted)", code)
	}
}

// TestServeWatchDisconnectUnsubscribes: a client that vanishes during an
// observe burst is unsubscribed cleanly — the engine's watcher gauge
// returns to zero.
func TestServeWatchDisconnectUnsubscribes(t *testing.T) {
	model, rel, csvBody := matchmakingFixture(t)
	ts, _ := startServerInflight(t, model, 0)
	id := registerDataset(t, ts.URL, csvBody)
	index, attr, value := firstObservation(t, model, rel)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	groupAttr := model.Schema.Attrs[0].Name
	ch := watchLines(t, ctx, ts.URL, "op=groupby&groupby="+url.QueryEscape(groupAttr)+"&dataset="+id+"&watch=1")
	nextRecord(t, ch, "watch head")

	waitGauge := func(want int64, what string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			if st := getStats(t, ts); st.Watchers == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("watchers gauge never reached %d (%s)", want, what)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	waitGauge(1, "after subscribe")

	// Disconnect in the middle of an observe burst.
	obs := `{"dataset":"` + id + `","observations":[{"index":` +
		strconv.Itoa(index) + `,"attr":"` + attr + `","value":"` + value + `"}]}`
	if code, body := postObserve(t, ts.URL, obs); code != http.StatusOK {
		t.Fatalf("observe: status %d: %s", code, body)
	}
	cancel()
	postObserve(t, ts.URL, obs) // noop delta, but the burst keeps arriving

	waitGauge(0, "after client disconnect")
}
