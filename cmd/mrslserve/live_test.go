package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro"
)

// Live-evidence endpoint tests: register → query → observe → re-query
// round trips, watch subscriptions that receive only the records a
// delta changed, and the observation parser's error paths.

// registerDataset registers csvBody on the server and returns the id.
func registerDataset(t *testing.T, ts string, csvBody []byte) string {
	t.Helper()
	resp, err := http.Post(ts+"/datasets", "text/csv", bytes.NewReader(csvBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /datasets: status %d: %s", resp.StatusCode, out)
	}
	var rec struct {
		Kind   string `json:"kind"`
		ID     string `json:"id"`
		Tuples int    `json:"tuples"`
	}
	if err := json.Unmarshal(out, &rec); err != nil {
		t.Fatalf("bad /datasets response %q: %v", out, err)
	}
	if rec.Kind != "dataset" || rec.ID == "" {
		t.Fatalf("POST /datasets returned %q", out)
	}
	return rec.ID
}

// postObserve applies deltas and returns the response status and body.
func postObserve(t *testing.T, ts, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts+"/observe", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, out
}

// firstObservation picks, via a fresh local engine with the server's
// options, an incomplete tuple and the most probable completion of a
// missing attribute whose block mass is genuinely split — evidence
// guaranteed consistent with the block the (bit-identical) server
// engine holds, and guaranteed to change the tuple's distribution.
func firstObservation(t *testing.T, model *repro.Model, rel *repro.Relation) (index int, attr string, value string) {
	t.Helper()
	eng, err := repro.NewEngine(model, serveOptions())
	if err != nil {
		t.Fatal(err)
	}
	db, err := eng.Derive(rel)
	if err != nil {
		t.Fatal(err)
	}
	for i, tu := range rel.Tuples {
		if tu.NumMissing() < 2 {
			// Multi-missing tuples keep a conditioned block after the first
			// delta, so a second delta exercises invalidation too.
			continue
		}
		for _, b := range db.Blocks {
			if !b.Base.Equal(tu) {
				continue
			}
			for _, a := range tu.MissingAttrs() {
				top := b.Alts[0].Tuple[a]
				for _, alt := range b.Alts[1:] {
					if alt.Tuple[a] != top {
						// The block splits on a: conditioning on top removes mass.
						return i, model.Schema.Attrs[a].Name, model.Schema.Attrs[a].Domain[top]
					}
				}
			}
		}
	}
	t.Fatal("no multi-missing tuple with a split attribute in fixture")
	return 0, "", ""
}

// TestServeLiveRoundTrip drives the full register → query → observe →
// re-query loop over HTTP and checks the post-observe answer is
// bit-identical to a fresh local engine evaluating the conditioned
// dataset — the serving path adds transport, not semantics — and that
// /stats surfaces the live-evidence counters.
func TestServeLiveRoundTrip(t *testing.T) {
	model, rel, csvBody := matchmakingFixture(t)
	ts := startServer(t, model)
	ctx := context.Background()

	id := registerDataset(t, ts.URL, csvBody)
	index, attrName, valLabel := firstObservation(t, model, rel)
	attr := model.Schema.AttrIndex(attrName)
	where := attrName + "=" + valLabel

	query := func() float64 {
		t.Helper()
		resp, err := http.Post(ts.URL+"/query?op=count&dataset="+id+"&where="+url.QueryEscape(where),
			"text/csv", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /query?dataset=%s: status %d: %s", id, resp.StatusCode, out)
		}
		for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
			var rec map[string]any
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				t.Fatalf("bad NDJSON line %q: %v", line, err)
			}
			if rec["kind"] == "count" {
				return rec["expected"].(float64)
			}
		}
		t.Fatalf("no count record in %s", out)
		return 0
	}

	before := query()

	// Local reference: a fresh engine conditions the same dataset the
	// same way. Delta 1 is the split attribute's most probable value;
	// delta 2 pins the next missing attribute of the CONDITIONED block —
	// a second observation on the same tuple, so the server must
	// invalidate the superseded conditioned cache entry.
	eng, err := repro.NewEngine(model, serveOptions())
	if err != nil {
		t.Fatal(err)
	}
	lds, err := eng.RegisterDataset(rel)
	if err != nil {
		t.Fatal(err)
	}
	val, err := model.Schema.ValueCode(attr, valLabel)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lds.Observe(ctx, index, attr, val); err != nil {
		t.Fatal(err)
	}
	snap, err := lds.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cond := snap.Overrides[index]
	if cond == nil || cond.Base.IsComplete() {
		t.Fatal("fixture pick is not multi-missing after one delta")
	}
	attr2 := cond.Base.MissingAttrs()[0]
	attr2Name := model.Schema.Attrs[attr2].Name
	val2Label := model.Schema.Attrs[attr2].Domain[cond.Alts[0].Tuple[attr2]]
	if _, err := lds.Observe(ctx, index, attr2, cond.Alts[0].Tuple[attr2]); err != nil {
		t.Fatal(err)
	}
	if snap, err = lds.Snapshot(ctx); err != nil {
		t.Fatal(err)
	}
	q, err := repro.CompileQuery(model.Schema, repro.QuerySpec{Op: repro.QueryCount, Where: where})
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.QuerySnapshot(ctx, snap, q, repro.Pools{}, nil)
	if err != nil {
		t.Fatal(err)
	}

	status, out := postObserve(t, ts.URL, fmt.Sprintf(
		`{"dataset":%q,"observations":[{"index":%d,"attr":%q,"value":%q},{"index":%d,"attr":%q,"value":%q}]}`,
		id, index, attrName, valLabel, index, attr2Name, val2Label))
	if status != http.StatusOK {
		t.Fatalf("POST /observe: status %d: %s", status, out)
	}
	var ores struct {
		Kind    string `json:"kind"`
		Applied int    `json:"applied"`
		Version uint64 `json:"version"`
	}
	if err := json.Unmarshal(out, &ores); err != nil || ores.Kind != "observed" || ores.Applied != 2 || ores.Version != 2 {
		t.Fatalf("observe response %s (err %v), want observed/applied=2/version=2", out, err)
	}

	after := query()
	if after != want.Expected {
		t.Errorf("post-observe count = %v, want bit-identical %v", after, want.Expected)
	}
	if after == before {
		t.Errorf("observation did not change the count (%v): evidence had no effect", after)
	}

	// /derive?dataset= emits the conditioned database; the observed tuple
	// must reflect the evidence (fewer alternatives, or certain).
	resp, err := http.Post(ts.URL+"/derive?dataset="+id, "text/csv", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dout, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /derive?dataset=%s: status %d: %s", id, resp.StatusCode, dout)
	}
	var lines []string
	for _, line := range strings.Split(strings.TrimSpace(string(dout)), "\n") {
		lines = append(lines, line)
	}
	// Line 0 is the schema record; tuple i is at line i+1.
	var drec struct {
		Kind string `json:"kind"`
		Alts []struct {
			Values []string `json:"values"`
			P      float64  `json:"p"`
		} `json:"alts"`
	}
	if err := json.Unmarshal([]byte(lines[index+1]), &drec); err != nil {
		t.Fatal(err)
	}
	switch drec.Kind {
	case "certain": // collapsed: fine
	case "block":
		for _, a := range drec.Alts {
			if a.Values[attr] != valLabel {
				t.Errorf("derived alternative %v contradicts observed %s=%s", a.Values, attrName, valLabel)
			}
		}
	default:
		t.Fatalf("observed tuple derived as %q record", drec.Kind)
	}

	// Stats surface the live-evidence counters.
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Observations != 2 || st.Datasets != 1 {
		t.Errorf("stats: observations=%d datasets=%d, want 2/1", st.Observations, st.Datasets)
	}
	// The second delta superseded the first delta's conditioned entry:
	// exactly that entry was invalidated, eagerly.
	if st.InvalidatedEntries == 0 {
		t.Error("stats: observe invalidated no conditioned entries")
	}

	// Drop: the id disappears, later observes 404, a second DELETE 404s.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/datasets/"+id, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE /datasets/%s: status %d", id, dresp.StatusCode)
	}
	if status, _ := postObserve(t, ts.URL, fmt.Sprintf(
		`{"dataset":%q,"observations":[{"index":0,"attr":%q,"value":%q}]}`, id, attrName, valLabel)); status != http.StatusNotFound {
		t.Errorf("observe after drop: status %d, want 404", status)
	}
	dresp2, err := http.DefaultClient.Do(req.Clone(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp2.Body)
	dresp2.Body.Close()
	if dresp2.StatusCode != http.StatusNotFound {
		t.Errorf("second DELETE: status %d, want 404", dresp2.StatusCode)
	}
}

// TestServeObserveErrors covers the /observe failure paths: malformed
// bodies (400), unknown datasets (404), out-of-range indices (400), and
// conflicting evidence (409 with the applied count).
func TestServeObserveErrors(t *testing.T) {
	model, rel, csvBody := matchmakingFixture(t)
	ts := startServer(t, model)
	id := registerDataset(t, ts.URL, csvBody)
	index, attrName, valLabel := firstObservation(t, model, rel)

	for _, tc := range []struct {
		name, body string
		status     int
	}{
		{"not json", "xyz", http.StatusBadRequest},
		{"missing dataset", `{"observations":[{"index":0,"attr":"a","value":"b"}]}`, http.StatusBadRequest},
		{"no observations", fmt.Sprintf(`{"dataset":%q}`, id), http.StatusBadRequest},
		{"unknown field", fmt.Sprintf(`{"dataset":%q,"obs":[]}`, id), http.StatusBadRequest},
		{"bad attr", fmt.Sprintf(`{"dataset":%q,"observations":[{"index":0,"attr":"nope","value":"x"}]}`, id), http.StatusBadRequest},
		{"bad value", fmt.Sprintf(`{"dataset":%q,"observations":[{"index":0,"attr":%q,"value":"nope"}]}`, id, attrName), http.StatusBadRequest},
		{"negative index", fmt.Sprintf(`{"dataset":%q,"observations":[{"index":-1,"attr":%q,"value":%q}]}`, id, attrName, valLabel), http.StatusBadRequest},
		{"index out of range", fmt.Sprintf(`{"dataset":%q,"observations":[{"index":99999,"attr":%q,"value":%q}]}`, id, attrName, valLabel), http.StatusBadRequest},
		{"unknown dataset", fmt.Sprintf(`{"dataset":"ds999","observations":[{"index":0,"attr":%q,"value":%q}]}`, attrName, valLabel), http.StatusNotFound},
	} {
		if status, out := postObserve(t, ts.URL, tc.body); status != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, status, tc.status, out)
		}
	}

	// Conflict: observe the value, then contradict it. The first delta of
	// the batch applies; the second stops it with 409 and applied=1.
	attr := model.Schema.AttrIndex(attrName)
	other := ""
	for _, label := range model.Schema.Attrs[attr].Domain {
		if label != valLabel {
			other = label
			break
		}
	}
	body := fmt.Sprintf(`{"dataset":%q,"observations":[{"index":%d,"attr":%q,"value":%q},{"index":%d,"attr":%q,"value":%q}]}`,
		id, index, attrName, valLabel, index, attrName, other)
	status, out := postObserve(t, ts.URL, body)
	if status != http.StatusConflict {
		t.Fatalf("conflicting delta: status %d (%s), want 409", status, out)
	}
	var cres struct {
		Kind    string `json:"kind"`
		Applied int    `json:"applied"`
	}
	if err := json.Unmarshal(out, &cres); err != nil || cres.Kind != "error" || cres.Applied != 1 {
		t.Errorf("conflict response %s (err %v), want kind=error applied=1", out, err)
	}
}

// watchLines starts a watch query and feeds its NDJSON records to a
// channel, closing it when the stream ends.
func watchLines(t *testing.T, ctx context.Context, ts, params string) <-chan map[string]any {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts+"/query?"+params, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("watch query: status %d: %s", resp.StatusCode, out)
	}
	ch := make(chan map[string]any, 64)
	go func() {
		defer close(ch)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var rec map[string]any
			if json.Unmarshal(sc.Bytes(), &rec) == nil {
				ch <- rec
			}
		}
	}()
	return ch
}

// nextRecord receives one record or fails after a deadline.
func nextRecord(t *testing.T, ch <-chan map[string]any, what string) map[string]any {
	t.Helper()
	select {
	case rec, ok := <-ch:
		if !ok {
			t.Fatalf("watch stream closed waiting for %s", what)
		}
		return rec
	case <-time.After(30 * time.Second):
		t.Fatalf("timed out waiting for %s", what)
	}
	return nil
}

// TestServeWatchQuery subscribes a groupby watch, applies a delta, and
// checks the stream re-emits exactly the buckets the delta changed —
// no more — stamped with the new version, and ends with an "end"
// record when the dataset is dropped.
func TestServeWatchQuery(t *testing.T) {
	model, rel, csvBody := matchmakingFixture(t)
	ts := startServer(t, model)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	id := registerDataset(t, ts.URL, csvBody)
	index, attrName, valLabel := firstObservation(t, model, rel)
	attr := model.Schema.AttrIndex(attrName)
	groupAttr := model.Schema.Attrs[0].Name
	card := model.Schema.Attrs[0].Card()

	ch := watchLines(t, ctx, ts.URL, "op=groupby&groupby="+url.QueryEscape(groupAttr)+"&dataset="+id+"&watch=1")

	header := nextRecord(t, ch, "watch header")
	if header["kind"] != "query" || header["watch"] != true || header["dataset"] != id {
		t.Fatalf("watch header = %v", header)
	}
	initial := map[string]float64{}
	for i := 0; i < card; i++ {
		rec := nextRecord(t, ch, "initial group record")
		if rec["kind"] != "group" || rec["partial"] != true || rec["version"].(float64) != 0 {
			t.Fatalf("initial record = %v, want partial group at version 0", rec)
		}
		initial[rec["value"].(string)] = rec["expected"].(float64)
	}
	if len(initial) != card {
		t.Fatalf("initial emission covered %d buckets, want %d", len(initial), card)
	}

	// Local reference: which buckets does this delta actually change?
	eng, err := repro.NewEngine(model, serveOptions())
	if err != nil {
		t.Fatal(err)
	}
	lds, err := eng.RegisterDataset(rel)
	if err != nil {
		t.Fatal(err)
	}
	q, err := repro.CompileQuery(model.Schema, repro.QuerySpec{Op: repro.QueryGroupBy, GroupBy: groupAttr})
	if err != nil {
		t.Fatal(err)
	}
	evalGroups := func() []repro.QueryGroup {
		t.Helper()
		snap, err := lds.Snapshot(ctx)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.QuerySnapshot(ctx, snap, q, repro.Pools{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.Groups
	}
	before := evalGroups()
	val, err := model.Schema.ValueCode(attr, valLabel)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lds.Observe(ctx, index, attr, val); err != nil {
		t.Fatal(err)
	}
	after := evalGroups()
	changed := map[string]float64{}
	for i := range after {
		if after[i] != before[i] {
			changed[after[i].Label] = after[i].Expected
		}
	}
	if len(changed) == 0 {
		t.Fatal("fixture delta changes no bucket; pick a different observation")
	}

	status, out := postObserve(t, ts.URL, fmt.Sprintf(
		`{"dataset":%q,"observations":[{"index":%d,"attr":%q,"value":%q}]}`,
		id, index, attrName, valLabel))
	if status != http.StatusOK {
		t.Fatalf("POST /observe: status %d: %s", status, out)
	}

	got := map[string]float64{}
	for range changed {
		rec := nextRecord(t, ch, "changed group record")
		if rec["kind"] != "group" || rec["partial"] != true {
			t.Fatalf("update record = %v, want partial group", rec)
		}
		if rec["version"].(float64) != 1 {
			t.Errorf("update record version = %v, want 1", rec["version"])
		}
		got[rec["value"].(string)] = rec["expected"].(float64)
	}
	for label, want := range changed {
		if gotv, ok := got[label]; !ok || gotv != want {
			t.Errorf("bucket %q = %v (present %v), want bit-identical %v", label, gotv, ok, want)
		}
	}

	// Dropping the dataset ends the stream with an "end" record — and
	// nothing else may arrive in between: unchanged buckets stay silent.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/datasets/"+id, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	rec := nextRecord(t, ch, "end record")
	if rec["kind"] != "end" {
		t.Fatalf("record after drop = %v, want end (unchanged buckets must not re-emit)", rec)
	}
	if _, ok := <-ch; ok {
		t.Error("watch stream kept emitting after end record")
	}
}

// TestServeWatchRequiresDataset: watch without a dataset is a 400 — a
// posted CSV body cannot receive evidence.
func TestServeWatchRequiresDataset(t *testing.T) {
	model, _, csvBody := matchmakingFixture(t)
	ts := startServer(t, model)
	resp, err := http.Post(ts.URL+"/query?op=count&where=x&watch=1", "text/csv", bytes.NewReader(csvBody))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("watch without dataset: status %d, want 400", resp.StatusCode)
	}
}

// TestParseObserveRequest pins the parser's resolution behavior: labels
// resolve to codes against the schema, and every malformed shape is an
// error rather than a best-effort guess.
func TestParseObserveRequest(t *testing.T) {
	model, _, _ := matchmakingFixture(t)
	attr := model.Schema.Attrs[1]

	id, deltas, err := parseObserveRequest(model.Schema, strings.NewReader(fmt.Sprintf(
		`{"dataset":"ds7","observations":[{"index":3,"attr":%q,"value":%q}]}`,
		attr.Name, attr.Domain[1])))
	if err != nil {
		t.Fatal(err)
	}
	if id != "ds7" || len(deltas) != 1 || deltas[0] != (observeDelta{Index: 3, Attr: 1, Val: 1}) {
		t.Errorf("parsed %q %+v", id, deltas)
	}

	for _, bad := range []string{
		``,
		`{}`,
		`[1,2]`,
		`{"dataset":"d"}`,
		`{"dataset":"d","observations":[]}`,
		`{"dataset":"d","observations":[{"index":0,"attr":"missing-attr","value":"x"}]}`,
		fmt.Sprintf(`{"dataset":"d","observations":[{"index":0,"attr":%q,"value":"not-a-label"}]}`, attr.Name),
		fmt.Sprintf(`{"dataset":"d","observations":[{"index":-4,"attr":%q,"value":%q}]}`, attr.Name, attr.Domain[0]),
		fmt.Sprintf(`{"dataset":"d","observations":[{"index":0,"attr":%q,"value":%q}],"extra":1}`, attr.Name, attr.Domain[0]),
	} {
		if _, _, err := parseObserveRequest(model.Schema, strings.NewReader(bad)); err == nil {
			t.Errorf("parseObserveRequest(%q) accepted malformed input", bad)
		}
	}
}

// FuzzParseObserve throws arbitrary bodies at the observation parser:
// it must never panic, and anything it accepts must be fully resolved —
// a non-empty dataset id and in-vocabulary attribute/value codes.
func FuzzParseObserve(f *testing.F) {
	model, _, _ := matchmakingFixture(f)
	attr := model.Schema.Attrs[0]
	f.Add(`{"dataset":"ds1","observations":[{"index":0,"attr":"` + attr.Name + `","value":"` + attr.Domain[0] + `"}]}`)
	f.Add(`{"dataset":"","observations":[]}`)
	f.Add(`{"observations":[{"index":-1}]}`)
	f.Add(`not json at all`)
	f.Add(`{"dataset":"d","observations":[{"index":1e99,"attr":"x","value":"y"}]}`)
	f.Fuzz(func(t *testing.T, body string) {
		id, deltas, err := parseObserveRequest(model.Schema, strings.NewReader(body))
		if err != nil {
			return
		}
		if id == "" || len(deltas) == 0 {
			t.Fatalf("accepted body %q with empty id or deltas", body)
		}
		for _, d := range deltas {
			if d.Index < 0 {
				t.Fatalf("accepted negative index %d from %q", d.Index, body)
			}
			if d.Attr < 0 || d.Attr >= model.Schema.NumAttrs() {
				t.Fatalf("accepted out-of-schema attribute %d from %q", d.Attr, body)
			}
			if d.Val < 0 || d.Val >= model.Schema.Attrs[d.Attr].Card() {
				t.Fatalf("accepted out-of-domain value %d from %q", d.Val, body)
			}
		}
	})
}
