package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"repro"
	"repro/internal/relation"
)

// serveOptions are the derivation options under test; Workers > 1 selects
// the per-block scheduled chain sampler, whose output is content-seeded
// and therefore identical between the server's long-lived engine and a
// fresh local one.
func serveOptions() repro.DeriveOptions {
	return repro.DeriveOptions{
		Method:      repro.BestAveraged(),
		Workers:     4,
		VoteWorkers: 4,
		Gibbs: repro.GibbsOptions{
			Samples: 300, BurnIn: 30, Seed: 11, Method: repro.BestAveraged(),
		},
	}
}

// matchmakingFixture renders the paper's matchmaking relation to CSV and
// learns a model from the CSV-read form, exactly as a real deployment
// (mrsllearn on a CSV file) would — so the model's schema is the inferred
// one the server validates requests against.
func matchmakingFixture(t testing.TB) (*repro.Model, *repro.Relation, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := repro.WriteCSV(&buf, relation.Matchmaking()); err != nil {
		t.Fatal(err)
	}
	csvBody := buf.Bytes()
	rel, err := repro.ReadCSV(bytes.NewReader(csvBody))
	if err != nil {
		t.Fatal(err)
	}
	model, err := repro.Learn(rel, repro.LearnOptions{SupportThreshold: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	return model, rel, csvBody
}

func startServer(t *testing.T, model *repro.Model) *httptest.Server {
	ts, _ := startServerInflight(t, model, 0)
	return ts
}

func startServerInflight(t *testing.T, model *repro.Model, maxInflight int) (*httptest.Server, *server) {
	t.Helper()
	srv, err := newServer(model, serveOptions(), maxInflight)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv) // random port
	t.Cleanup(ts.Close)
	return ts, srv
}

func postDerive(t *testing.T, ts *httptest.Server, body []byte, query string) []byte {
	t.Helper()
	resp, err := http.Post(ts.URL+"/derive"+query, "text/csv", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /derive: status %d: %s", resp.StatusCode, out)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	return out
}

// TestServeDeriveEndToEnd spins the HTTP server on a random port, POSTs
// the matchmaking relation, and asserts the streamed NDJSON is
// byte-identical to rendering repro.Derive's output through the same
// JSONL sink — the serving path adds transport, not semantics.
func TestServeDeriveEndToEnd(t *testing.T) {
	model, rel, csvBody := matchmakingFixture(t)
	ts := startServer(t, model)

	got := postDerive(t, ts, csvBody, "")

	// Reference 1: the same stream rendered locally, no HTTP involved.
	var want bytes.Buffer
	sink := repro.NewJSONLSink(&want, model.Schema)
	if err := repro.DeriveStream(model, rel, serveOptions(), sink.Emit); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("served NDJSON differs from local derivation:\ngot:\n%s\nwant:\n%s", got, want.Bytes())
	}

	// Reference 2: the materialized repro.Derive database; the NDJSON
	// block records must carry exactly its blocks, bit-identical
	// probabilities included.
	db, err := repro.Derive(model, rel, serveOptions())
	if err != nil {
		t.Fatal(err)
	}
	type rec struct {
		Kind string `json:"kind"`
		Alts []struct {
			Values []string `json:"values"`
			P      float64  `json:"p"`
		} `json:"alts"`
	}
	var certain, blocks int
	for _, line := range strings.Split(strings.TrimSpace(string(got)), "\n") {
		var r rec
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		switch r.Kind {
		case "schema":
		case "certain":
			certain++
		case "block":
			b := db.Blocks[blocks]
			if len(r.Alts) != len(b.Alts) {
				t.Fatalf("block %d has %d alternatives, want %d", blocks, len(r.Alts), len(b.Alts))
			}
			for k, a := range r.Alts {
				if a.P != b.Alts[k].Prob {
					t.Fatalf("block %d alt %d probability %v, want bit-identical %v",
						blocks, k, a.P, b.Alts[k].Prob)
				}
			}
			blocks++
		default:
			t.Fatalf("unexpected record kind %q", r.Kind)
		}
	}
	if certain != len(db.Certain) || blocks != len(db.Blocks) {
		t.Fatalf("streamed %d certain + %d blocks, want %d + %d",
			certain, blocks, len(db.Certain), len(db.Blocks))
	}
}

// TestServeRepeatedRequestsShareCaches posts the same relation twice and
// checks that the long-lived engine answers the second request from its
// caches with a byte-identical stream.
func TestServeRepeatedRequestsShareCaches(t *testing.T) {
	model, _, csvBody := matchmakingFixture(t)
	ts := startServer(t, model)

	first := postDerive(t, ts, csvBody, "")
	second := postDerive(t, ts, csvBody, "?voteworkers=1&gibbsworkers=2")
	if !bytes.Equal(first, second) {
		t.Fatal("second (cache-served, differently sharded) request is not byte-identical to the first")
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 2 || st.Failed != 0 {
		t.Errorf("stats: requests=%d failed=%d, want 2/0", st.Requests, st.Failed)
	}
	if st.Engine.Streams != 2 {
		t.Errorf("stats: engine streams=%d, want 2", st.Engine.Streams)
	}
	// Both requests served the same tuples, but distinct patterns were
	// inferred only once across the engine's lifetime.
	if st.Engine.SingleTuples != 2*st.Engine.VotesComputed || st.VoteHitRate != 0.5 {
		t.Errorf("vote cache did not dedup across requests: %+v", st.Engine)
	}
	if st.Engine.GibbsComputed == 0 || st.Engine.MultiTuples != 2*st.Engine.GibbsComputed {
		t.Errorf("gibbs cache did not dedup across requests: %+v", st.Engine)
	}
}

// TestServeQueryEndpoint posts a count and a topk query and checks the
// streamed NDJSON against evaluating the same query on a fresh local
// engine with the same options — the serving path adds transport, not
// semantics — and that the summary reports genuine pruning.
func TestServeQueryEndpoint(t *testing.T) {
	model, rel, csvBody := matchmakingFixture(t)
	ts := startServer(t, model)

	post := func(params string) []map[string]any {
		t.Helper()
		resp, err := http.Post(ts.URL+"/query?"+params, "text/csv", bytes.NewReader(csvBody))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /query: status %d: %s", resp.StatusCode, out)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
		}
		var recs []map[string]any
		for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
			var r map[string]any
			if err := json.Unmarshal([]byte(line), &r); err != nil {
				t.Fatalf("bad NDJSON line %q: %v", line, err)
			}
			recs = append(recs, r)
		}
		return recs
	}

	attr := model.Schema.Attrs[0]
	where := attr.Name + "=" + attr.Domain[0]

	// Local reference on a fresh engine with the same options.
	eng, err := repro.NewEngine(model, serveOptions())
	if err != nil {
		t.Fatal(err)
	}
	q, err := repro.CompileQuery(model.Schema, repro.QuerySpec{Op: repro.QueryCount, Where: where})
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.Query(context.Background(), rel, q)
	if err != nil {
		t.Fatal(err)
	}

	recs := post("op=count&where=" + url.QueryEscape(where))
	if recs[0]["kind"] != "query" || recs[0]["op"] != "count" {
		t.Fatalf("first record = %v, want query/count header", recs[0])
	}
	count := recs[1]
	if count["kind"] != "count" || count["expected"].(float64) != want.Expected {
		t.Errorf("count record = %v, want expected %v (bit-identical)", count, want.Expected)
	}
	summary := recs[len(recs)-1]
	if summary["kind"] != "summary" {
		t.Fatalf("last record = %v, want summary", summary)
	}
	if summary["pruned"].(float64) == 0 {
		t.Errorf("selective query pruned nothing: %v", summary)
	}

	recs = post("op=topk&k=3&where=" + url.QueryEscape(where))
	var rows int
	for _, r := range recs {
		if r["kind"] == "row" && r["final"] == true {
			rows++
			if len(r["values"].([]any)) != model.Schema.NumAttrs() {
				t.Errorf("row values %v do not cover the schema", r["values"])
			}
		}
	}
	if rows == 0 || rows > 3 {
		t.Errorf("topk streamed %d final rows, want 1..3", rows)
	}
	summary = recs[len(recs)-1]
	if summary["kind"] != "summary" || summary["plan"] == nil {
		t.Errorf("topk summary missing the plan: %v", summary)
	}

	// Bad queries are rejected up front with 400.
	for _, params := range []string{"op=explode", "op=count", "op=count&where=bogus%3D1", "op=topk&where=x&k=banana"} {
		resp, err := http.Post(ts.URL+"/query?"+params, "text/csv", bytes.NewReader(csvBody))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST /query?%s: status %d, want 400", params, resp.StatusCode)
		}
	}
}

// TestServeQueryStreamsIncrementally checks the incremental NDJSON
// contract of topk and groupby: partial records precede the final ones,
// the final records agree with a buffered evaluation on a fresh local
// engine, and the summary carries the plan and bound counters.
func TestServeQueryStreamsIncrementally(t *testing.T) {
	model, rel, csvBody := matchmakingFixture(t)
	ts := startServer(t, model)

	post := func(params string) []map[string]any {
		t.Helper()
		resp, err := http.Post(ts.URL+"/query?"+params, "text/csv", bytes.NewReader(csvBody))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /query: status %d: %s", resp.StatusCode, out)
		}
		var recs []map[string]any
		for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
			var r map[string]any
			if err := json.Unmarshal([]byte(line), &r); err != nil {
				t.Fatalf("bad NDJSON line %q: %v", line, err)
			}
			recs = append(recs, r)
		}
		return recs
	}

	// An unselective groupby forces block resolution, so partial group
	// records must appear before the final histogram.
	attr := model.Schema.Attrs[0].Name
	recs := post("op=groupby&groupby=" + url.QueryEscape(attr))
	var partials, finals int
	lastPartial, firstFinal := -1, -1
	finalGroups := map[string]float64{}
	for i, r := range recs {
		switch {
		case r["kind"] == "group" && r["partial"] == true:
			partials++
			lastPartial = i
		case r["kind"] == "group" && r["final"] == true:
			finals++
			if firstFinal < 0 {
				firstFinal = i
			}
			finalGroups[r["value"].(string)] = r["expected"].(float64)
		}
	}
	if partials == 0 {
		t.Fatalf("groupby streamed no partial records:\n%v", recs)
	}
	if finals != model.Schema.Attrs[0].Card() {
		t.Fatalf("groupby streamed %d final groups, want %d", finals, model.Schema.Attrs[0].Card())
	}
	if lastPartial > firstFinal {
		t.Fatalf("partial record at %d after final record at %d", lastPartial, firstFinal)
	}
	if recs[len(recs)-1]["kind"] != "summary" {
		t.Fatalf("last record is not the summary: %v", recs[len(recs)-1])
	}

	// The final histogram is bit-identical to a buffered evaluation on a
	// fresh engine with the same options.
	eng, err := repro.NewEngine(model, serveOptions())
	if err != nil {
		t.Fatal(err)
	}
	q, err := repro.CompileQuery(model.Schema, repro.QuerySpec{Op: repro.QueryGroupBy, GroupBy: attr})
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.Query(context.Background(), rel, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range want.Groups {
		if got, ok := finalGroups[g.Label]; !ok || got != g.Expected {
			t.Errorf("final group %q = %v, want bit-identical %v", g.Label, got, g.Expected)
		}
	}

	// TopK: partial row snapshots stream ahead of the finals.
	recs = post("op=topk&k=4&where=" + url.QueryEscape(attr+"!="+model.Schema.Attrs[0].Domain[0]))
	var rowPartials, rowFinals int
	for _, r := range recs {
		switch {
		case r["kind"] == "row" && r["partial"] == true:
			rowPartials++
		case r["kind"] == "row" && r["final"] == true:
			rowFinals++
		}
	}
	if rowFinals == 0 || rowFinals > 4 {
		t.Fatalf("topk streamed %d final rows, want 1..4", rowFinals)
	}
	if rowPartials == 0 {
		t.Fatalf("topk streamed no partial rows:\n%v", recs)
	}
	summary := recs[len(recs)-1]
	if summary["kind"] != "summary" {
		t.Fatalf("last record is not the summary: %v", summary)
	}
	if _, ok := summary["bound_refuted"]; !ok {
		t.Errorf("summary missing bound counters: %v", summary)
	}
	plan, ok := summary["plan"].(map[string]any)
	if !ok || plan["tiers"] == nil {
		t.Errorf("summary missing plan tiers: %v", summary)
	}
}

// TestServeAdmissionControl fills the admission semaphore and checks that
// the next request is rejected with 429 + Retry-After instead of queuing,
// and that /stats surfaces the accepted/rejected split.
func TestServeAdmissionControl(t *testing.T) {
	model, _, csvBody := matchmakingFixture(t)
	ts, srv := startServerInflight(t, model, 1)

	first := postDerive(t, ts, csvBody, "") // take the measure of a served request
	if len(first) == 0 {
		t.Fatal("admitted request returned nothing")
	}

	srv.slots <- struct{}{} // occupy the only slot
	for _, path := range []string{"/derive", "/query?op=count&where=x"} {
		resp, err := http.Post(ts.URL+path, "text/csv", bytes.NewReader(csvBody))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Errorf("POST %s while saturated: status %d, want 429", path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("POST %s while saturated: missing Retry-After", path)
		}
	}
	<-srv.slots

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	// Offered = accepted + rejected: the rejected requests still count as
	// offered load, so the split always adds up.
	if st.Requests != 3 || st.Accepted != 1 || st.Rejected != 2 {
		t.Errorf("stats: requests=%d accepted=%d rejected=%d, want 3 = 1 + 2",
			st.Requests, st.Accepted, st.Rejected)
	}

	// The slot is free again: the server admits new work.
	second := postDerive(t, ts, csvBody, "")
	if !bytes.Equal(first, second) {
		t.Error("request after saturation is not byte-identical to the first")
	}
}

// TestServeRejectsBadInput covers the 4xx paths: malformed CSV, labels
// outside the model's domains, bad pool parameters, wrong method.
func TestServeRejectsBadInput(t *testing.T) {
	model, _, csvBody := matchmakingFixture(t)
	ts := startServer(t, model)

	post := func(body, query string) int {
		resp, err := http.Post(ts.URL+"/derive"+query, "text/csv", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if code := post("age,edu\n20,HS\n", ""); code != http.StatusBadRequest {
		t.Errorf("truncated header: status %d, want 400", code)
	}
	if code := post("age,edu,inc,nw\n99,HS,50K,100K\n", ""); code != http.StatusBadRequest {
		t.Errorf("out-of-domain label: status %d, want 400", code)
	}
	if code := post(string(csvBody), "?gibbsworkers=banana"); code != http.StatusBadRequest {
		t.Errorf("bad pool parameter: status %d, want 400", code)
	}

	resp, err := http.Get(ts.URL + "/derive")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /derive: status %d, want 405", resp.StatusCode)
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hz.Body.Close()
	body, _ := io.ReadAll(hz.Body)
	if hz.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz: status %d body %q", hz.StatusCode, body)
	}
}

// SPJ join-input fixtures: the matchmaking schema (age, edu, inc, nw)
// split into two relations under their own headers, joined on a pid key
// the model does not know. p1 is shared by two people rows and its
// finance tuple is missing inc, so inc-dependent plans are unsafe; p9
// dangles and one people row has a missing foreign key.
const (
	servePeopleCSV = `age,edu,pid
20,HS,p1
20,BS,p1
30,?,p2
30,MS,p2
40,BS,p3
?,HS,p4
20,HS,?
40,?,p9
20,BS,p5
30,HS,p3
`
	serveFinanceCSV = `pid,inc,nw
p1,?,100K
p2,100K,?
p3,50K,500K
p4,?,?
p5,100K,500K
`
)

// spjReference evaluates the statement locally on a fresh engine with
// the server's options, from the same CSV inputs.
func spjReference(t *testing.T, model *repro.Model, stmt string, spec repro.QuerySpec) *repro.QueryResult {
	t.Helper()
	st, err := repro.ParseSPJ(stmt)
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[string]*repro.Relation{}
	for name, csv := range map[string]string{"people": servePeopleCSV, "finance": serveFinanceCSV} {
		rel, err := repro.ReadCSV(strings.NewReader(csv))
		if err != nil {
			t.Fatal(err)
		}
		inputs[name] = rel
	}
	spjSpec, err := st.Bind(inputs, spec, false)
	if err != nil {
		t.Fatal(err)
	}
	spj, err := repro.CompileSPJ(model.Schema, spjSpec)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := repro.NewEngine(model, serveOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.QuerySPJ(context.Background(), spj)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// postSQL posts a multipart /query with an sql field and the named CSV
// file fields (or plain form values mapping relations to dataset ids)
// and decodes the NDJSON records.
func postSQL(t *testing.T, ts *httptest.Server, params string, fields, files map[string]string) (int, []map[string]any) {
	t.Helper()
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	for name, val := range fields {
		if err := mw.WriteField(name, val); err != nil {
			t.Fatal(err)
		}
	}
	for name, csv := range files {
		fw, err := mw.CreateFormFile(name, name+".csv")
		if err != nil {
			t.Fatal(err)
		}
		io.WriteString(fw, csv)
	}
	mw.Close()
	resp, err := http.Post(ts.URL+"/query"+params, mw.FormDataContentType(), &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, []map[string]any{{"error": string(out)}}
	}
	var recs []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		var r map[string]any
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		recs = append(recs, r)
	}
	return resp.StatusCode, recs
}

// TestServeSQLQuery covers the intensional /query path end to end:
// multipart join inputs, bit-identity with a local SPJ evaluation,
// dissociated exists records with bounds, projected rows in the answer
// schema, and the join/safety block of the summary.
func TestServeSQLQuery(t *testing.T) {
	model, _, _ := matchmakingFixture(t)
	ts := startServer(t, model)
	files := map[string]string{"people": servePeopleCSV, "finance": serveFinanceCSV}

	// Expected count, bit-identical to the local reference.
	stmt := "from people join finance on pid=pid where age=20"
	code, recs := postSQL(t, ts, "?op=count", map[string]string{"sql": stmt}, files)
	if code != http.StatusOK {
		t.Fatalf("sql count: status %d: %v", code, recs)
	}
	head := recs[0]
	if head["kind"] != "query" || head["sql"] != stmt {
		t.Fatalf("head record = %v, want kind=query with the sql statement", head)
	}
	want := spjReference(t, model, stmt, repro.QuerySpec{Op: repro.QueryCount})
	if recs[1]["kind"] != "count" || recs[1]["expected"].(float64) != want.Expected {
		t.Errorf("count record = %v, want bit-identical expected %v", recs[1], want.Expected)
	}
	summary := recs[len(recs)-1]
	plan, _ := summary["plan"].(map[string]any)
	if plan == nil || plan["join"] == nil {
		t.Fatalf("summary misses the join plan: %v", summary)
	}

	// Unsafe exists: p1 is shared and missing inc, so the record is
	// flagged dissociated and carries the sound interval.
	stmt = "from people join finance on pid=pid where inc=100K"
	code, recs = postSQL(t, ts, "?op=exists", map[string]string{"sql": stmt}, files)
	if code != http.StatusOK {
		t.Fatalf("sql exists: status %d: %v", code, recs)
	}
	if safe, ok := recs[0]["safe"].(bool); !ok || safe {
		t.Errorf("head record = %v, want safe=false", recs[0])
	}
	want = spjReference(t, model, stmt, repro.QuerySpec{Op: repro.QueryExists})
	ex := recs[1]
	if ex["kind"] != "exists" || ex["dissociated"] != true {
		t.Fatalf("exists record = %v, want dissociated=true", ex)
	}
	if ex["p"].(float64) != want.Prob {
		t.Errorf("exists p = %v, want bit-identical %v", ex["p"], want.Prob)
	}
	lo, hasLo := ex["lo"].(float64)
	hi, hasHi := ex["hi"].(float64)
	if !hasLo || !hasHi || !(lo <= hi) {
		t.Errorf("exists record misses the [lo, hi] interval: %v", ex)
	}
	summary = recs[len(recs)-1]
	if summary["dissociated"] != true || summary["bounds"] == nil {
		t.Errorf("summary misses dissociation: %v", summary)
	}
	plan, _ = summary["plan"].(map[string]any)
	join, _ := plan["join"].(map[string]any)
	if join == nil || join["safe"] != false || join["verdict"] == nil {
		t.Errorf("summary join block = %v, want unsafe verdict", join)
	}

	// Projection answers in the answer schema: one value per row.
	stmt = "select edu from people join finance on pid=pid where inc=100K"
	code, recs = postSQL(t, ts, "?op=topk&k=3", map[string]string{"sql": stmt}, files)
	if code != http.StatusOK {
		t.Fatalf("sql projection: status %d: %v", code, recs)
	}
	want = spjReference(t, model, stmt, repro.QuerySpec{Op: repro.QueryTopK, K: 3})
	var finals []map[string]any
	for _, r := range recs {
		if r["kind"] == "row" && r["final"] == true {
			finals = append(finals, r)
		}
	}
	if len(finals) != len(want.Rows) {
		t.Fatalf("projection streamed %d final rows, want %d", len(finals), len(want.Rows))
	}
	for i, r := range finals {
		vals := r["values"].([]any)
		if len(vals) != 1 {
			t.Errorf("projected row %d has %d values, want 1 (edu)", i, len(vals))
		}
		if r["p"].(float64) != want.Rows[i].Prob {
			t.Errorf("projected row %d p = %v, want bit-identical %v", i, r["p"], want.Rows[i].Prob)
		}
	}

	// The engine counted the dissociated answers.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.QueriesDissociated == 0 {
		t.Errorf("stats: queries_dissociated = 0 after dissociated answers")
	}
}

// TestServeSQLDatasetInputs registers the join inputs as schema=own
// datasets and runs the same statement with <name>=<id> mappings — no
// multipart upload — plus the guardrails: join-input datasets reject
// /derive, single-relation /query, and /observe.
func TestServeSQLDatasetInputs(t *testing.T) {
	model, _, _ := matchmakingFixture(t)
	ts := startServer(t, model)

	register := func(csv string) string {
		t.Helper()
		resp, err := http.Post(ts.URL+"/datasets?schema=own", "text/csv", strings.NewReader(csv))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rec map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK || rec["schema"] != "own" {
			t.Fatalf("register schema=own: status %d record %v", resp.StatusCode, rec)
		}
		return rec["id"].(string)
	}
	peopleID := register(servePeopleCSV)
	financeID := register(serveFinanceCSV)

	stmt := "from people join finance on pid=pid where age=20"
	params := "?op=count&sql=" + url.QueryEscape(stmt) +
		"&people=" + peopleID + "&finance=" + financeID
	resp, err := http.Post(ts.URL+"/query"+params, "text/csv", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sql over datasets: status %d: %s", resp.StatusCode, out)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	var count map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &count); err != nil {
		t.Fatal(err)
	}
	want := spjReference(t, model, stmt, repro.QuerySpec{Op: repro.QueryCount})
	if count["expected"].(float64) != want.Expected {
		t.Errorf("dataset-input count = %v, want bit-identical %v", count["expected"], want.Expected)
	}

	// Join-input datasets serve sql= queries only.
	for _, req := range []struct{ path, want string }{
		{"/derive?dataset=" + peopleID, "400"},
		{"/query?op=count&where=age%3D20&dataset=" + peopleID, "400"},
	} {
		resp, err := http.Post(ts.URL+req.path, "text/csv", strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s: status %d, want 400", req.path, resp.StatusCode)
		}
	}
	obs := `{"dataset":"` + financeID + `","observations":[{"index":0,"attr":"inc","value":"100K"}]}`
	resp2, err := http.Post(ts.URL+"/observe", "application/json", strings.NewReader(obs))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Errorf("observe on join input: status %d, want 409", resp2.StatusCode)
	}
}

// TestServeSQLRejectsBadStatements covers the intensional 4xx paths.
func TestServeSQLRejectsBadStatements(t *testing.T) {
	model, _, _ := matchmakingFixture(t)
	ts := startServer(t, model)
	files := map[string]string{"people": servePeopleCSV, "finance": serveFinanceCSV}

	cases := []struct {
		name   string
		params string
		fields map[string]string
		files  map[string]string
	}{
		{"parse error", "?op=count", map[string]string{"sql": "join finance on a=b"}, files},
		{"missing input", "?op=count", map[string]string{"sql": "from people join towns on pid=pid where age=20"}, files},
		{"multipart without sql", "?op=count", map[string]string{}, files},
		{"sql with dataset", "?op=count&dataset=ds1", map[string]string{"sql": "from people where age=20"}, files},
		{"sql with watch", "?op=count&watch=1", map[string]string{"sql": "from people where age=20"}, files},
		{"double where", "?op=count&where=age%3D20", map[string]string{"sql": "from people join finance on pid=pid where age=20"}, files},
	}
	for _, tc := range cases {
		code, recs := postSQL(t, ts, tc.params, tc.fields, tc.files)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%v)", tc.name, code, recs)
		}
	}
}

// TestServeConcurrentQueriesShareEnvelopes pins the cross-query envelope
// sharing acceptance: after one bounded query warms the shared interval
// cache, two concurrent overlapping queries both serve their
// multi-missing envelopes from it — each summary reports >0 envelope
// hits and 0 misses — and /stats surfaces the aggregate hit rate.
func TestServeConcurrentQueriesShareEnvelopes(t *testing.T) {
	model, _, csvBody := matchmakingFixture(t)
	ts := startServer(t, model)

	adaptiveOf := func(out []byte) map[string]any {
		t.Helper()
		lines := strings.Split(strings.TrimSpace(string(out)), "\n")
		var summary map[string]any
		if err := json.Unmarshal([]byte(lines[len(lines)-1]), &summary); err != nil {
			t.Fatalf("bad summary line %q: %v", lines[len(lines)-1], err)
		}
		plan, _ := summary["plan"].(map[string]any)
		if plan == nil {
			t.Fatalf("summary has no plan: %v", summary)
		}
		adaptive, _ := plan["adaptive"].(map[string]any)
		if adaptive == nil {
			t.Fatalf("bounded plan has no adaptive block: %v", plan)
		}
		return adaptive
	}
	post := func(params string) []byte {
		resp, err := http.Post(ts.URL+"/query?"+params, "text/csv", bytes.NewReader(csvBody))
		if err != nil {
			t.Error(err)
			return nil
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Error(err)
			return nil
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("POST /query?%s: status %d: %s", params, resp.StatusCode, out)
			return nil
		}
		return out
	}

	// Warm: a bounded count whose predicate constrains an attribute the
	// multi-missing tuples are missing, so envelopes are computed (cold
	// misses) and stored in the shared cache.
	warm := adaptiveOf(post("op=count&minprob=0.5&where=" + url.QueryEscape("inc=50K")))
	if warm["envelope_misses"].(float64) == 0 {
		t.Fatalf("warm query paid no envelope misses: %v", warm)
	}

	// Two concurrent overlapping queries: same predicate footprint,
	// different operators. Both must be served from the shared cache.
	var wg sync.WaitGroup
	outs := make([][]byte, 2)
	for i, params := range []string{
		"op=count&minprob=0.5&where=" + url.QueryEscape("inc=50K"),
		"op=topk&k=3&where=" + url.QueryEscape("inc=50K"),
	} {
		wg.Add(1)
		go func(i int, params string) {
			defer wg.Done()
			outs[i] = post(params)
		}(i, params)
	}
	wg.Wait()
	for i, out := range outs {
		if out == nil {
			t.Fatal("concurrent query failed")
		}
		a := adaptiveOf(out)
		if a["envelope_hits"].(float64) == 0 || a["envelope_misses"].(float64) != 0 {
			t.Errorf("concurrent query %d not served from the shared envelope cache: %v", i, a)
		}
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.EnvelopeHitRate <= 0 || st.EnvelopeHitRate >= 1 {
		t.Errorf("/stats envelope_hit_rate = %v, want in (0, 1)", st.EnvelopeHitRate)
	}
	if st.Engine.EnvelopeHits == 0 || st.Engine.EnvelopeMisses == 0 {
		t.Errorf("/stats engine envelope counters not populated: %+v", st.Engine)
	}
}
