// Command mrslquery answers queries over an incomplete CSV relation using
// a learned MRSL model, with lazy query-targeted inference: probability
// values are derived only for the tuples a query leaves undecided
// (the paper's Section VIII future work).
//
// Usage:
//
//	mrslquery -model model.json -in data.csv -where age=30,inc=100K [-op count]
//	mrslquery -model model.json -in data.csv -groupby age
//	mrslquery -model model.json -in data.csv -where inc=100K -op topk -k 5
//
// Supported operations: count (expected count, default), topk (most
// probable matching completions), groupby (expected histogram; uses
// -groupby instead of -where).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"repro"
	"repro/internal/pdb"
)

func main() {
	var (
		modelPath = flag.String("model", "", "model JSON from mrsllearn (required)")
		in        = flag.String("in", "", "input CSV relation (required)")
		where     = flag.String("where", "", "conjunctive conditions attr=value,attr=value")
		groupBy   = flag.String("groupby", "", "attribute for a group-by expected histogram")
		op        = flag.String("op", "count", "operation: count, topk, groupby")
		k         = flag.Int("k", 10, "result size for -op topk")
		samples   = flag.Int("samples", 1000, "Gibbs samples per open tuple")
		burnin    = flag.Int("burnin", 100, "Gibbs burn-in sweeps")
		seed      = flag.Int64("seed", 1, "sampler seed")
	)
	flag.Parse()
	if *modelPath == "" || *in == "" {
		fmt.Fprintln(os.Stderr, "mrslquery: -model and -in are required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, *modelPath, *in, *where, *groupBy, *op, *k, *samples, *burnin, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "mrslquery: %v\n", err)
		os.Exit(1)
	}
}

func run(w *os.File, modelPath, in, where, groupBy, op string, k, samples, burnin int, seed int64) error {
	mf, err := os.Open(modelPath)
	if err != nil {
		return err
	}
	defer mf.Close()
	model, err := repro.LoadModel(mf)
	if err != nil {
		return err
	}
	df, err := os.Open(in)
	if err != nil {
		return err
	}
	defer df.Close()
	rel, err := repro.ReadCSV(df)
	if err != nil {
		return err
	}
	if rel.Schema.NumAttrs() != model.Schema.NumAttrs() {
		return fmt.Errorf("data has %d attributes, model has %d",
			rel.Schema.NumAttrs(), model.Schema.NumAttrs())
	}

	gibbs := repro.GibbsOptions{
		Samples: samples, BurnIn: burnin, Seed: seed, Method: repro.BestAveraged(),
	}

	switch op {
	case "count":
		q, err := parseWhere(model.Schema, where)
		if err != nil {
			return err
		}
		db, err := repro.NewLazyDB(model, rel, gibbs)
		if err != nil {
			return err
		}
		count, err := db.ExpectedCount(q)
		if err != nil {
			return err
		}
		st := db.Stats()
		fmt.Fprintf(w, "expected count: %.2f of %d tuples\n", count, rel.Len())
		fmt.Fprintf(w, "lazy stats: %d refuted, %d entailed, %d CPD lookups, %d Gibbs runs\n",
			st.Refuted, st.Entailed, st.SingleLookups, st.GibbsRuns)
		return nil
	case "topk":
		q, err := parseWhere(model.Schema, where)
		if err != nil {
			return err
		}
		db, err := repro.Derive(model, rel, repro.DeriveOptions{
			Gibbs: gibbs, Method: repro.BestAveraged(),
		})
		if err != nil {
			return err
		}
		rows := db.TopKRows(q.Predicate(), k)
		fmt.Fprintf(w, "top %d matching completions:\n", len(rows))
		for _, row := range rows {
			src := "certain"
			if row.Block >= 0 {
				src = fmt.Sprintf("block %d", row.Block)
			}
			fmt.Fprintf(w, "  %.4f  %s  (%s)\n", row.Prob, row.Tuple.Format(model.Schema), src)
		}
		return nil
	case "groupby":
		if groupBy == "" {
			return fmt.Errorf("-op groupby requires -groupby")
		}
		attr := model.Schema.AttrIndex(groupBy)
		if attr < 0 {
			return fmt.Errorf("unknown attribute %q", groupBy)
		}
		db, err := repro.Derive(model, rel, repro.DeriveOptions{
			Gibbs: gibbs, Method: repro.BestAveraged(),
		})
		if err != nil {
			return err
		}
		stats, err := db.GroupCount(attr)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "expected histogram of %s:\n", groupBy)
		for _, g := range stats {
			fmt.Fprintf(w, "  %-10s %.2f (±%.2f)\n",
				model.Schema.Attrs[attr].Domain[g.Value], g.Expected, math.Sqrt(g.Variance))
		}
		return nil
	default:
		return fmt.Errorf("unknown operation %q", op)
	}
}

// parseWhere converts "attr=value,attr=value" into a validated query.
func parseWhere(s *repro.Schema, where string) (pdb.ConjQuery, error) {
	if where == "" {
		return nil, fmt.Errorf("-where is required for this operation")
	}
	var q pdb.ConjQuery
	for _, part := range strings.Split(where, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad condition %q (want attr=value)", part)
		}
		attr := s.AttrIndex(kv[0])
		if attr < 0 {
			return nil, fmt.Errorf("unknown attribute %q", kv[0])
		}
		val, err := s.ValueCode(attr, kv[1])
		if err != nil {
			return nil, err
		}
		q = append(q, pdb.Cond{Attr: attr, Value: val})
	}
	if err := q.Validate(s); err != nil {
		return nil, err
	}
	return q, nil
}
