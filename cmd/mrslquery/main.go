// Command mrslquery answers probabilistic queries over an incomplete CSV
// relation using a learned MRSL model. It is a thin client of the
// engine-native query subsystem (repro.Engine.Query): tuples the query's
// evidence refutes (and complete tuples) cost nothing, single-missing tuples are
// decided from the engine's shared CPD cache without expanding a block,
// and only tuples whose bounds leave the answer open pay for full
// derivation — with early termination for exists and topk. With the
// default chain sampler (-workers > 1) answers are bit-identical to
// deriving the whole database and evaluating naively; -workers 1
// selects the paper's tuple-DAG sampler, whose multi-missing estimates
// are workload-dependent by construction.
//
// Usage:
//
//	mrslquery -model model.json -in data.csv -where age=30,inc>=100K [-op count]
//	mrslquery -model model.json -in data.csv -where inc=100K -op exists -minprob 0.9
//	mrslquery -model model.json -in data.csv -where inc=100K -op topk -k 5
//	mrslquery -model model.json -in data.csv -groupby age [-where inc=100K]
//	mrslquery -model model.json -in data.csv -where inc=100K -minprob 0.8 -explain
//
// -explain prints the chosen evaluation plan before the answer: the
// selectivity-ordered predicates, the per-tier tuple counts (refuted /
// certain / single-missing / bounded / derive), and whether dissociation
// bounds were in play. Multi-missing tuples whose sound [lo, hi] bound
// interval already decides the threshold (or cannot reach topk's rank
// k) are answered without any sampling; the trailing stats line reports
// how many tuples each tier resolved.
//
// Conditions support =, !=, <, <=, >, >= over domain labels; ordered
// comparisons compare domain positions (meaningful for discretized
// numeric buckets). Supported operations: count (expected count, or the
// number of tuples reaching -minprob), exists (probability that at least
// one tuple matches), topk (most probable matching completions, ties
// bit-stable in input order), groupby (expected histogram, optionally
// filtered by -where).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"repro"
)

func main() {
	var (
		modelPath = flag.String("model", "", "model JSON from mrsllearn (required)")
		in        = flag.String("in", "", "input CSV relation (required)")
		where     = flag.String("where", "", "conjunctive conditions attr=value,attr>=value,...")
		groupBy   = flag.String("groupby", "", "attribute for a group-by expected histogram")
		op        = flag.String("op", "count", "operation: count, exists, topk, groupby")
		k         = flag.Int("k", 10, "result size for -op topk (must be positive)")
		minProb   = flag.Float64("minprob", 0, "probability threshold in [0,1]: count tuples reaching it, decide exists against it, drop topk rows below it")
		explain   = flag.Bool("explain", false, "print the chosen evaluation plan (predicate order, resolution tiers, bound usage)")
		samples   = flag.Int("samples", 1000, "Gibbs samples per distinct multi-missing tuple")
		burnin    = flag.Int("burnin", 100, "Gibbs burn-in sweeps")
		seed      = flag.Int64("seed", 1, "sampler seed")
		workers   = flag.Int("workers", 4, "Gibbs chain pool size (> 1 selects content-seeded per-block chains)")
	)
	flag.Parse()
	if *modelPath == "" || *in == "" {
		fmt.Fprintln(os.Stderr, "mrslquery: -model and -in are required")
		flag.Usage()
		os.Exit(2)
	}
	opts := options{
		Where: *where, GroupBy: *groupBy, Op: *op, K: *k, MinProb: *minProb,
		Samples: *samples, BurnIn: *burnin, Seed: *seed, Workers: *workers,
		Explain: *explain,
	}
	if err := run(os.Stdout, *modelPath, *in, opts); err != nil {
		fmt.Fprintf(os.Stderr, "mrslquery: %v\n", err)
		os.Exit(1)
	}
}

// options carry the query flags into run.
type options struct {
	Where   string
	GroupBy string
	Op      string
	K       int
	MinProb float64
	Samples int
	BurnIn  int
	Seed    int64
	Workers int
	Explain bool
}

func run(w io.Writer, modelPath, in string, o options) error {
	// Validate the decision flags up front with actionable messages:
	// out-of-range thresholds and non-positive topk sizes would otherwise
	// surface as library errors (or, for -k, silently unbounded results).
	if !(o.MinProb >= 0 && o.MinProb <= 1) { // also rejects NaN
		return fmt.Errorf("-minprob must be a probability in [0,1], got %v", o.MinProb)
	}
	if o.Op == "topk" && o.K <= 0 {
		return fmt.Errorf("-k must be a positive result size for -op topk, got %d", o.K)
	}
	mf, err := os.Open(modelPath)
	if err != nil {
		return err
	}
	defer mf.Close()
	model, err := repro.LoadModel(mf)
	if err != nil {
		return err
	}
	df, err := os.Open(in)
	if err != nil {
		return err
	}
	defer df.Close()
	// Parse against the model's schema: query data rarely exercises
	// every domain value, and re-inferring domains would misalign value
	// codes with the model.
	rel, err := repro.ReadCSVInSchema(df, model.Schema)
	if err != nil {
		return err
	}

	opCode, err := repro.ParseQueryOp(o.Op)
	if err != nil {
		return err
	}
	spec := repro.QuerySpec{
		Op:      opCode,
		Where:   o.Where,
		GroupBy: o.GroupBy,
		MinProb: o.MinProb,
	}
	if opCode == repro.QueryTopK {
		spec.K = o.K
	}
	q, err := repro.CompileQuery(model.Schema, spec)
	if err != nil {
		return err
	}

	eng, err := repro.NewEngine(model, repro.DeriveOptions{
		Method:  repro.BestAveraged(),
		Workers: o.Workers,
		Gibbs: repro.GibbsOptions{
			Samples: o.Samples, BurnIn: o.BurnIn, Seed: o.Seed, Method: repro.BestAveraged(),
		},
	})
	if err != nil {
		return err
	}
	res, err := eng.Query(context.Background(), rel, q)
	if err != nil {
		return err
	}

	if o.Explain && res.Plan != nil {
		fmt.Fprint(w, res.Plan.String())
	}
	switch opCode {
	case repro.QueryCount:
		if o.MinProb > 0 {
			fmt.Fprintf(w, "tuples with P >= %g: %d of %d\n", o.MinProb, res.Count, rel.Len())
		} else {
			fmt.Fprintf(w, "expected count: %.2f of %d tuples\n", res.Expected, rel.Len())
		}
	case repro.QueryExists:
		answer := "no"
		if res.Exists {
			answer = "yes"
		}
		if res.EarlyStop && res.Exists {
			fmt.Fprintf(w, "exists: %s (P >= %.4f, decided early)\n", answer, res.Prob)
		} else {
			fmt.Fprintf(w, "exists: %s (P = %.4f)\n", answer, res.Prob)
		}
	case repro.QueryTopK:
		fmt.Fprintf(w, "top %d matching completions:\n", len(res.Rows))
		for _, row := range res.Rows {
			src := "certain"
			if !row.Certain {
				src = fmt.Sprintf("tuple %d", row.Index)
			}
			fmt.Fprintf(w, "  %.4f  %s  (%s)\n", row.Prob, row.Tuple.Format(model.Schema), src)
		}
	case repro.QueryGroupBy:
		fmt.Fprintf(w, "expected histogram of %s:\n", o.GroupBy)
		for _, g := range res.Groups {
			fmt.Fprintf(w, "  %-10s %.2f (±%.2f)\n", g.Label, g.Expected, math.Sqrt(g.Variance))
		}
	}
	c := res.Counters
	fmt.Fprintf(w, "query stats: %d scanned, %d pruned, %d bounded, %d derived, %d bound-refuted\n",
		c.Scanned, c.Pruned, c.Bounded, c.Derived, c.BoundRefutes)
	return nil
}
