// Command mrslquery answers probabilistic queries over an incomplete CSV
// relation using a learned MRSL model. It is a thin client of the
// engine-native query subsystem (repro.Engine.Query): tuples the query's
// evidence refutes (and complete tuples) cost nothing, single-missing tuples are
// decided from the engine's shared CPD cache without expanding a block,
// and only tuples whose bounds leave the answer open pay for full
// derivation — with early termination for exists and topk. With the
// default chain sampler (-workers > 1) answers are bit-identical to
// deriving the whole database and evaluating naively; -workers 1
// selects the paper's tuple-DAG sampler, whose multi-missing estimates
// are workload-dependent by construction.
//
// Usage:
//
//	mrslquery -model model.json -in data.csv -where age=30,inc>=100K [-op count]
//	mrslquery -model model.json -in data.csv -where inc=100K -op exists -minprob 0.9
//	mrslquery -model model.json -in data.csv -where inc=100K -op topk -k 5
//	mrslquery -model model.json -in data.csv -groupby age [-where inc=100K]
//	mrslquery -model model.json -in data.csv -where inc=100K -minprob 0.8 -explain
//
// Multi-relation (intensional SPJ) queries take an SQL-ish statement and
// named CSV inputs instead of -in:
//
//	mrslquery -model model.json -rels people=people.csv,finance=finance.csv \
//	    -sql "from people join finance on pid=pid where inc=100K" -op exists
//	mrslquery -model model.json -rels people=people.csv,finance=finance.csv \
//	    -sql "select edu from people join finance on pid=pid where inc=100K" -op topk -k 3
//
// The statement's PK-FK join chain is folded with per-row lineage and a
// safety analyzer classifies the plan: safe (hierarchical) plans answer
// exactly through the extensional pipeline, and unsafe plans stay exact
// for linear operators while exists reports the dissociated existence
// mass with a sound [lo, hi] interval (printed alongside the answer). A
// "select" list switches to distinct-answer mode (count/topk). -explain
// additionally prints the join order, conditions, and safety verdict.
//
// -explain prints the chosen evaluation plan before the answer: the
// selectivity-ordered predicates, the per-tier tuple counts (refuted /
// certain / single-missing / bounded / derive), and whether dissociation
// bounds were in play. Multi-missing tuples whose sound [lo, hi] bound
// interval already decides the threshold (or cannot reach topk's rank
// k) are answered without any sampling; the trailing stats line reports
// how many tuples each tier resolved. -explain-analyze extends the plan
// with measured timings from the actual evaluation: planning cost, wall
// time, and per-tier resolution durations (prefetch / vote / derive /
// observed). Timing only observes — the answer is bit-identical with or
// without it.
//
// Conditions support =, !=, <, <=, >, >= over domain labels; ordered
// comparisons compare domain positions (meaningful for discretized
// numeric buckets). Supported operations: count (expected count, or the
// number of tuples reaching -minprob), exists (probability that at least
// one tuple matches), topk (most probable matching completions, ties
// bit-stable in input order), groupby (expected histogram, optionally
// filtered by -where).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"repro"
)

func main() {
	var (
		modelPath = flag.String("model", "", "model JSON from mrsllearn (required)")
		in        = flag.String("in", "", "input CSV relation (single-relation mode)")
		sql       = flag.String("sql", "", "SQL-ish statement: [select cols|*] from R [join S on a=b]... [where conds]; relation names resolve via -rels")
		rels      = flag.String("rels", "", "comma-separated name=path CSV inputs for -sql, e.g. people=people.csv,finance=finance.csv")
		keepKeys  = flag.Bool("keepkeys", false, "keep join key columns in the joined relation (they must then exist in the model schema)")
		where     = flag.String("where", "", "conjunctive conditions attr=value,attr>=value,...")
		groupBy   = flag.String("groupby", "", "attribute for a group-by expected histogram")
		op        = flag.String("op", "count", "operation: count, exists, topk, groupby")
		k         = flag.Int("k", 10, "result size for -op topk (must be positive)")
		minProb   = flag.Float64("minprob", 0, "probability threshold in [0,1]: count tuples reaching it, decide exists against it, drop topk rows below it")
		explain   = flag.Bool("explain", false, "print the chosen evaluation plan (predicate order, resolution tiers, join safety, bound usage)")
		analyze   = flag.Bool("explain-analyze", false, "like -explain, plus measured per-tier timings from the actual evaluation (planning, prefetch, vote, derive, wall)")
		samples   = flag.Int("samples", 1000, "Gibbs samples per distinct multi-missing tuple")
		burnin    = flag.Int("burnin", 100, "Gibbs burn-in sweeps")
		seed      = flag.Int64("seed", 1, "sampler seed")
		workers   = flag.Int("workers", 4, "Gibbs chain pool size (> 1 selects content-seeded per-block chains)")
	)
	flag.Parse()
	if *modelPath == "" || (*in == "" && *sql == "") {
		fmt.Fprintln(os.Stderr, "mrslquery: -model and one of -in or -sql are required")
		flag.Usage()
		os.Exit(2)
	}
	opts := options{
		SQL: *sql, Rels: *rels, KeepKeys: *keepKeys,
		Where: *where, GroupBy: *groupBy, Op: *op, K: *k, MinProb: *minProb,
		Samples: *samples, BurnIn: *burnin, Seed: *seed, Workers: *workers,
		Explain: *explain, Analyze: *analyze,
	}
	if err := run(os.Stdout, *modelPath, *in, opts); err != nil {
		fmt.Fprintf(os.Stderr, "mrslquery: %v\n", err)
		os.Exit(1)
	}
}

// options carry the query flags into run.
type options struct {
	SQL      string
	Rels     string
	KeepKeys bool
	Where    string
	GroupBy  string
	Op       string
	K        int
	MinProb  float64
	Samples  int
	BurnIn   int
	Seed     int64
	Workers  int
	Explain  bool
	Analyze  bool
}

// parseRels reads the -rels name=path list into named relations, each
// parsed with inferred domains (CompileSPJ re-encodes them into model
// domains, so join inputs need not cover every model label).
func parseRels(spec string) (map[string]*repro.Relation, error) {
	inputs := make(map[string]*repro.Relation)
	if strings.TrimSpace(spec) == "" {
		return inputs, nil
	}
	for _, part := range strings.Split(spec, ",") {
		name, path, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" || path == "" {
			return nil, fmt.Errorf("-rels entry %q (want name=path)", part)
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		rel, err := repro.ReadCSV(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		inputs[name] = rel
	}
	return inputs, nil
}

func run(w io.Writer, modelPath, in string, o options) error {
	// Validate the decision flags up front with actionable messages:
	// out-of-range thresholds and non-positive topk sizes would otherwise
	// surface as library errors (or, for -k, silently unbounded results).
	if !(o.MinProb >= 0 && o.MinProb <= 1) { // also rejects NaN
		return fmt.Errorf("-minprob must be a probability in [0,1], got %v", o.MinProb)
	}
	if o.Op == "topk" && o.K <= 0 {
		return fmt.Errorf("-k must be a positive result size for -op topk, got %d", o.K)
	}
	if o.SQL != "" && in != "" {
		return fmt.Errorf("-sql and -in are mutually exclusive (the statement names its inputs via -rels)")
	}
	mf, err := os.Open(modelPath)
	if err != nil {
		return err
	}
	defer mf.Close()
	model, err := repro.LoadModel(mf)
	if err != nil {
		return err
	}

	opCode, err := repro.ParseQueryOp(o.Op)
	if err != nil {
		return err
	}
	spec := repro.QuerySpec{
		Op:      opCode,
		Where:   o.Where,
		GroupBy: o.GroupBy,
		MinProb: o.MinProb,
		Analyze: o.Analyze,
	}
	if opCode == repro.QueryTopK {
		spec.K = o.K
	}

	eng, err := repro.NewEngine(model, repro.DeriveOptions{
		Method:  repro.BestAveraged(),
		Workers: o.Workers,
		Gibbs: repro.GibbsOptions{
			Samples: o.Samples, BurnIn: o.BurnIn, Seed: o.Seed, Method: repro.BestAveraged(),
		},
	})
	if err != nil {
		return err
	}
	ctx := context.Background()

	// Multi-relation mode: parse the statement, bind its relation names to
	// the -rels inputs, and evaluate through the intensional SPJ pipeline.
	if o.SQL != "" {
		stmt, err := repro.ParseSPJ(o.SQL)
		if err != nil {
			return err
		}
		inputs, err := parseRels(o.Rels)
		if err != nil {
			return err
		}
		spjSpec, err := stmt.Bind(inputs, spec, o.KeepKeys)
		if err != nil {
			return err
		}
		spj, err := repro.CompileSPJ(model.Schema, spjSpec)
		if err != nil {
			return err
		}
		res, err := eng.QuerySPJ(ctx, spj)
		if err != nil {
			return err
		}
		schema := model.Schema
		if spj.AnswerSchema() != nil {
			schema = spj.AnswerSchema()
		}
		render(w, opCode, o, res, schema, spj.Rel().Len())
		return nil
	}

	df, err := os.Open(in)
	if err != nil {
		return err
	}
	defer df.Close()
	// Parse against the model's schema: query data rarely exercises
	// every domain value, and re-inferring domains would misalign value
	// codes with the model.
	rel, err := repro.ReadCSVInSchema(df, model.Schema)
	if err != nil {
		return err
	}
	q, err := repro.CompileQuery(model.Schema, spec)
	if err != nil {
		return err
	}
	res, err := eng.Query(ctx, rel, q)
	if err != nil {
		return err
	}
	render(w, opCode, o, res, model.Schema, rel.Len())
	return nil
}

// render prints the plan (under -explain), the operator's answer, and
// the pruning stats. schema formats topk rows — the answer schema for
// projected queries, the model schema otherwise.
func render(w io.Writer, opCode repro.QueryOp, o options, res *repro.QueryResult, schema *repro.Schema, nTuples int) {
	if (o.Explain || o.Analyze) && res.Plan != nil {
		fmt.Fprint(w, res.Plan.String())
	}
	switch opCode {
	case repro.QueryCount:
		if o.MinProb > 0 {
			fmt.Fprintf(w, "tuples with P >= %g: %d of %d\n", o.MinProb, res.Count, nTuples)
		} else {
			fmt.Fprintf(w, "expected count: %.2f of %d tuples\n", res.Expected, nTuples)
		}
	case repro.QueryExists:
		answer := "no"
		if res.Exists {
			answer = "yes"
		}
		if res.EarlyStop && res.Exists {
			fmt.Fprintf(w, "exists: %s (P >= %.4f, decided early)\n", answer, res.Prob)
		} else {
			fmt.Fprintf(w, "exists: %s (P = %.4f)\n", answer, res.Prob)
		}
		if res.Dissociated && res.Bounds != nil {
			fmt.Fprintf(w, "  dissociated lineage: intensional mass within [%.4f, %.4f]\n",
				res.Bounds.Lo, res.Bounds.Hi)
		}
	case repro.QueryTopK:
		what := "matching completions"
		if res.Dissociated {
			what = "matching completions (dissociated masses)"
		}
		fmt.Fprintf(w, "top %d %s:\n", len(res.Rows), what)
		for _, row := range res.Rows {
			src := "certain"
			if !row.Certain {
				src = fmt.Sprintf("tuple %d", row.Index)
			}
			fmt.Fprintf(w, "  %.4f  %s  (%s)\n", row.Prob, row.Tuple.Format(schema), src)
		}
	case repro.QueryGroupBy:
		fmt.Fprintf(w, "expected histogram of %s:\n", o.GroupBy)
		for _, g := range res.Groups {
			fmt.Fprintf(w, "  %-10s %.2f (±%.2f)\n", g.Label, g.Expected, math.Sqrt(g.Variance))
		}
	}
	c := res.Counters
	fmt.Fprintf(w, "query stats: %d scanned, %d pruned, %d bounded, %d derived, %d bound-refuted\n",
		c.Scanned, c.Pruned, c.Bounded, c.Derived, c.BoundRefutes)
}
