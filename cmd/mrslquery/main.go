// Command mrslquery answers queries over an incomplete CSV relation using
// a learned MRSL model, with lazy query-targeted inference: probability
// values are derived only for the tuples a query leaves undecided
// (the paper's Section VIII future work).
//
// Usage:
//
//	mrslquery -model model.json -in data.csv -where age=30,inc=100K [-op count]
//	mrslquery -model model.json -in data.csv -groupby age
//	mrslquery -model model.json -in data.csv -where inc=100K -op topk -k 5
//
// Supported operations: count (expected count, default), topk (most
// probable matching completions), groupby (expected histogram; uses
// -groupby instead of -where). topk and groupby evaluate against the
// derivation stream of a repro.Engine: blocks are aggregated as they are
// inferred and never materialized as a whole database, and repeated
// damage patterns are inferred once through the engine's caches.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"repro"
	"repro/internal/pdb"
)

func main() {
	var (
		modelPath = flag.String("model", "", "model JSON from mrsllearn (required)")
		in        = flag.String("in", "", "input CSV relation (required)")
		where     = flag.String("where", "", "conjunctive conditions attr=value,attr=value")
		groupBy   = flag.String("groupby", "", "attribute for a group-by expected histogram")
		op        = flag.String("op", "count", "operation: count, topk, groupby")
		k         = flag.Int("k", 10, "result size for -op topk")
		samples   = flag.Int("samples", 1000, "Gibbs samples per open tuple")
		burnin    = flag.Int("burnin", 100, "Gibbs burn-in sweeps")
		seed      = flag.Int64("seed", 1, "sampler seed")
	)
	flag.Parse()
	if *modelPath == "" || *in == "" {
		fmt.Fprintln(os.Stderr, "mrslquery: -model and -in are required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, *modelPath, *in, *where, *groupBy, *op, *k, *samples, *burnin, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "mrslquery: %v\n", err)
		os.Exit(1)
	}
}

func run(w *os.File, modelPath, in, where, groupBy, op string, k, samples, burnin int, seed int64) error {
	mf, err := os.Open(modelPath)
	if err != nil {
		return err
	}
	defer mf.Close()
	model, err := repro.LoadModel(mf)
	if err != nil {
		return err
	}
	df, err := os.Open(in)
	if err != nil {
		return err
	}
	defer df.Close()
	// Parse against the model's schema: query data rarely exercises
	// every domain value, and re-inferring domains would misalign value
	// codes with the model.
	rel, err := repro.ReadCSVInSchema(df, model.Schema)
	if err != nil {
		return err
	}

	gibbs := repro.GibbsOptions{
		Samples: samples, BurnIn: burnin, Seed: seed, Method: repro.BestAveraged(),
	}
	// One serving engine backs the streaming operations; its caches
	// dedupe repeated damage patterns across the whole run. (count runs
	// on the lazy query path instead.)
	newEngine := func() (*repro.Engine, error) { return repro.NewEngine(model, deriveOpts(gibbs)) }

	switch op {
	case "count":
		q, err := parseWhere(model.Schema, where)
		if err != nil {
			return err
		}
		db, err := repro.NewLazyDB(model, rel, gibbs)
		if err != nil {
			return err
		}
		count, err := db.ExpectedCount(q)
		if err != nil {
			return err
		}
		st := db.Stats()
		fmt.Fprintf(w, "expected count: %.2f of %d tuples\n", count, rel.Len())
		fmt.Fprintf(w, "lazy stats: %d refuted, %d entailed, %d CPD lookups, %d Gibbs runs\n",
			st.Refuted, st.Entailed, st.SingleLookups, st.GibbsRuns)
		return nil
	case "topk":
		q, err := parseWhere(model.Schema, where)
		if err != nil {
			return err
		}
		eng, err := newEngine()
		if err != nil {
			return err
		}
		rows, err := streamTopK(eng, rel, q.Predicate(), k)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "top %d matching completions:\n", len(rows))
		for _, row := range rows {
			src := "certain"
			if row.Block >= 0 {
				src = fmt.Sprintf("block %d", row.Block)
			}
			fmt.Fprintf(w, "  %.4f  %s  (%s)\n", row.Prob, row.Tuple.Format(model.Schema), src)
		}
		return nil
	case "groupby":
		if groupBy == "" {
			return fmt.Errorf("-op groupby requires -groupby")
		}
		attr := model.Schema.AttrIndex(groupBy)
		if attr < 0 {
			return fmt.Errorf("unknown attribute %q", groupBy)
		}
		eng, err := newEngine()
		if err != nil {
			return err
		}
		stats, err := streamGroupCount(eng, model, rel, attr)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "expected histogram of %s:\n", groupBy)
		for _, g := range stats {
			fmt.Fprintf(w, "  %-10s %.2f (±%.2f)\n",
				model.Schema.Attrs[attr].Domain[g.Value], g.Expected, math.Sqrt(g.Variance))
		}
		return nil
	default:
		return fmt.Errorf("unknown operation %q", op)
	}
}

// deriveOpts builds the streaming derivation options shared by topk and
// groupby; VoteWorkers 0 lets the engine saturate the machine.
func deriveOpts(gibbs repro.GibbsOptions) repro.DeriveOptions {
	return repro.DeriveOptions{Gibbs: gibbs, Method: repro.BestAveraged()}
}

// streamTopK folds the derivation stream into the k most probable
// matching rows, holding at most k rows at any time — never the database
// and never the full selection (certain rows carry probability 1; ties
// keep stream order for determinism). k <= 0 keeps every matching row.
func streamTopK(eng *repro.Engine, rel *repro.Relation, pred pdb.Predicate, k int) ([]pdb.ResultRow, error) {
	var rows []pdb.ResultRow // sorted by descending Prob, stream order on ties
	insert := func(row pdb.ResultRow) {
		if k > 0 && len(rows) == k && rows[k-1].Prob >= row.Prob {
			return
		}
		// First position with strictly smaller probability: equal-prob
		// rows keep their stream order, matching a stable sort.
		pos := sort.Search(len(rows), func(i int) bool { return rows[i].Prob < row.Prob })
		rows = append(rows, pdb.ResultRow{})
		copy(rows[pos+1:], rows[pos:])
		rows[pos] = row
		if k > 0 && len(rows) > k {
			rows = rows[:k]
		}
	}
	blocks := 0
	err := eng.DeriveStream(rel, func(it repro.DeriveItem) error {
		if it.Certain() {
			if pred(it.Tuple) {
				insert(pdb.ResultRow{Tuple: it.Tuple, Prob: 1, Block: -1})
			}
			return nil
		}
		for _, a := range it.Block.Alts {
			if pred(a.Tuple) {
				insert(pdb.ResultRow{Tuple: a.Tuple, Prob: a.Prob, Block: blocks})
			}
		}
		blocks++
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// streamGroupCount folds the derivation stream into an expected-count
// histogram of attr: certain tuples contribute 1 to their group, each
// block contributes its per-value probability mass (independent Bernoulli
// variance, as pdb.GroupCount computes on a materialized database).
func streamGroupCount(eng *repro.Engine, model *repro.Model, rel *repro.Relation, attr int) ([]pdb.GroupStat, error) {
	card := model.Schema.Attrs[attr].Card()
	stats := make([]pdb.GroupStat, card)
	for v := range stats {
		stats[v].Value = v
	}
	perValue := make([]float64, card)
	err := eng.DeriveStream(rel, func(it repro.DeriveItem) error {
		if it.Certain() {
			stats[it.Tuple[attr]].Expected++
			return nil
		}
		for v := range perValue {
			perValue[v] = 0
		}
		for _, a := range it.Block.Alts {
			perValue[a.Tuple[attr]] += a.Prob
		}
		for v, p := range perValue {
			stats[v].Expected += p
			stats[v].Variance += p * (1 - p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return stats, nil
}

// parseWhere converts "attr=value,attr=value" into a validated query.
func parseWhere(s *repro.Schema, where string) (pdb.ConjQuery, error) {
	if where == "" {
		return nil, fmt.Errorf("-where is required for this operation")
	}
	var q pdb.ConjQuery
	for _, part := range strings.Split(where, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad condition %q (want attr=value)", part)
		}
		attr := s.AttrIndex(kv[0])
		if attr < 0 {
			return nil, fmt.Errorf("unknown attribute %q", kv[0])
		}
		val, err := s.ValueCode(attr, kv[1])
		if err != nil {
			return nil, err
		}
		q = append(q, pdb.Cond{Attr: attr, Value: val})
	}
	if err := q.Validate(s); err != nil {
		return nil, err
	}
	return q, nil
}
