package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro"
	"repro/internal/relation"
)

const queryCSV = `age,inc
20,50K
20,50K
20,50K
30,100K
30,100K
30,100K
40,100K
40,100K
?,50K
30,?
?,?
`

func setup(t *testing.T) (modelPath, dataPath string) {
	t.Helper()
	dir := t.TempDir()
	dataPath = filepath.Join(dir, "data.csv")
	if err := os.WriteFile(dataPath, []byte(queryCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := repro.ReadCSV(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	m, err := repro.Learn(rel, repro.LearnOptions{SupportThreshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	modelPath = filepath.Join(dir, "model.json")
	mf, err := os.Create(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(mf); err != nil {
		t.Fatal(err)
	}
	mf.Close()
	return modelPath, dataPath
}

func TestParseWhere(t *testing.T) {
	s := relation.MustSchema([]relation.Attribute{
		{Name: "age", Domain: []string{"20", "30"}},
		{Name: "inc", Domain: []string{"50K", "100K"}},
	})
	q, err := parseWhere(s, "age=30,inc=100K")
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 2 || q[0].Attr != 0 || q[0].Value != 1 || q[1].Attr != 1 || q[1].Value != 1 {
		t.Errorf("parsed query = %+v", q)
	}
	bad := []string{"", "age", "bogus=1", "age=99", "age=30,age=20"}
	for _, s2 := range bad {
		if _, err := parseWhere(s, s2); err == nil {
			t.Errorf("where %q should fail", s2)
		}
	}
}

func TestRunCount(t *testing.T) {
	model, data := setup(t)
	if err := run(os.Stdout, model, data, "inc=100K", "", "count", 10, 200, 20, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunTopK(t *testing.T) {
	model, data := setup(t)
	if err := run(os.Stdout, model, data, "age=30", "", "topk", 3, 200, 20, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunGroupBy(t *testing.T) {
	model, data := setup(t)
	if err := run(os.Stdout, model, data, "", "age", "groupby", 10, 200, 20, 1); err != nil {
		t.Fatal(err)
	}
	if err := run(os.Stdout, model, data, "", "", "groupby", 10, 200, 20, 1); err == nil {
		t.Error("groupby without -groupby should fail")
	}
	if err := run(os.Stdout, model, data, "", "bogus", "groupby", 10, 200, 20, 1); err == nil {
		t.Error("unknown groupby attribute should fail")
	}
}

func TestRunErrors(t *testing.T) {
	model, data := setup(t)
	if err := run(os.Stdout, model, data, "inc=100K", "", "explode", 10, 200, 20, 1); err == nil {
		t.Error("unknown op should fail")
	}
	if err := run(os.Stdout, model, data, "", "", "count", 10, 200, 20, 1); err == nil {
		t.Error("count without -where should fail")
	}
	if err := run(os.Stdout, filepath.Join(t.TempDir(), "no.json"), data, "inc=100K", "", "count", 10, 200, 20, 1); err == nil {
		t.Error("missing model should fail")
	}
	if err := run(os.Stdout, model, filepath.Join(t.TempDir(), "no.csv"), "inc=100K", "", "count", 10, 200, 20, 1); err == nil {
		t.Error("missing data should fail")
	}
}
