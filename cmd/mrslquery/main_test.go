package main

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

const queryCSV = `age,inc
20,50K
20,50K
20,50K
30,100K
30,100K
30,100K
40,100K
40,100K
?,50K
30,?
?,?
`

func setup(t *testing.T) (modelPath, dataPath string) {
	t.Helper()
	dir := t.TempDir()
	dataPath = filepath.Join(dir, "data.csv")
	if err := os.WriteFile(dataPath, []byte(queryCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := repro.ReadCSV(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	m, err := repro.Learn(rel, repro.LearnOptions{SupportThreshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	modelPath = filepath.Join(dir, "model.json")
	mf, err := os.Create(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(mf); err != nil {
		t.Fatal(err)
	}
	mf.Close()
	return modelPath, dataPath
}

func opts(mut func(*options)) options {
	o := options{
		Op: "count", K: 10, Samples: 200, BurnIn: 20, Seed: 1, Workers: 4,
	}
	if mut != nil {
		mut(&o)
	}
	return o
}

func TestRunCount(t *testing.T) {
	model, data := setup(t)
	var out bytes.Buffer
	if err := run(&out, model, data, opts(func(o *options) { o.Where = "inc=100K" })); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "expected count:") ||
		!strings.Contains(out.String(), "query stats:") {
		t.Errorf("count output missing expected lines:\n%s", out.String())
	}
}

func TestRunCountThreshold(t *testing.T) {
	model, data := setup(t)
	var out bytes.Buffer
	if err := run(&out, model, data, opts(func(o *options) {
		o.Where, o.MinProb = "inc=100K", 0.5
	})); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "tuples with P >= 0.5:") {
		t.Errorf("thresholded count output:\n%s", out.String())
	}
}

func TestRunExists(t *testing.T) {
	model, data := setup(t)
	var out bytes.Buffer
	if err := run(&out, model, data, opts(func(o *options) {
		o.Op, o.Where = "exists", "age=30,inc=100K"
	})); err != nil {
		t.Fatal(err)
	}
	// The fixture holds certain witnesses, so the answer is an exact yes
	// decided with zero inference.
	if !strings.Contains(out.String(), "exists: yes") {
		t.Errorf("exists output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "0 derived") {
		t.Errorf("certain witness should prune all derivation:\n%s", out.String())
	}
}

func TestRunTopK(t *testing.T) {
	model, data := setup(t)
	var out bytes.Buffer
	if err := run(&out, model, data, opts(func(o *options) {
		o.Op, o.Where, o.K = "topk", "age=30", 3
	})); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "top 3 matching completions:") {
		t.Errorf("topk output:\n%s", out.String())
	}
}

// TestTopKTieBreakDeterministic pins topk tie-breaking: rows of equal
// probability keep input order, so the rendered output is byte-identical
// for every chain pool size (the three certain age=30 tuples all tie at
// probability 1 and must appear first, in input order). Workers must stay
// above 1 — 1 selects the tuple-DAG sampler, a different multi-missing
// estimator by design.
func TestTopKTieBreakDeterministic(t *testing.T) {
	model, data := setup(t)
	var ref bytes.Buffer
	if err := run(&ref, model, data, opts(func(o *options) {
		o.Op, o.Where, o.K, o.Workers = "topk", "age=30", 5, 2
	})); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(ref.String()), "\n")
	for i := 1; i <= 3; i++ {
		if !strings.HasPrefix(lines[i], "  1.0000") || !strings.Contains(lines[i], "certain") {
			t.Errorf("row %d is not a leading certain tie: %q", i, lines[i])
		}
	}
	for _, workers := range []int{4, 8} {
		var out bytes.Buffer
		if err := run(&out, model, data, opts(func(o *options) {
			o.Op, o.Where, o.K, o.Workers = "topk", "age=30", 5, workers
		})); err != nil {
			t.Fatal(err)
		}
		if out.String() != ref.String() {
			t.Errorf("topk output differs at %d workers:\n%s\nvs\n%s", workers, out.String(), ref.String())
		}
	}
}

func TestRunGroupBy(t *testing.T) {
	model, data := setup(t)
	var out bytes.Buffer
	if err := run(&out, model, data, opts(func(o *options) {
		o.Op, o.GroupBy = "groupby", "age"
	})); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "expected histogram of age:") {
		t.Errorf("groupby output:\n%s", out.String())
	}
	if err := run(&out, model, data, opts(func(o *options) { o.Op = "groupby" })); err == nil {
		t.Error("groupby without -groupby should fail")
	}
	if err := run(&out, model, data, opts(func(o *options) {
		o.Op, o.GroupBy = "groupby", "bogus"
	})); err == nil {
		t.Error("unknown groupby attribute should fail")
	}
}

// TestRunExplain: -explain prints the evaluation plan (predicate order,
// tiers, bound usage) ahead of the answer.
func TestRunExplain(t *testing.T) {
	model, data := setup(t)
	var out bytes.Buffer
	if err := run(&out, model, data, opts(func(o *options) {
		o.Where, o.MinProb, o.Explain = "inc=100K", 0.5, true
	})); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"plan:", "predicate order:", "tiers:", "dissociation bounds:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("explain output missing %q:\n%s", want, out.String())
		}
	}
	if !strings.Contains(out.String(), "tuples with P >= 0.5:") {
		t.Errorf("explain must not replace the answer:\n%s", out.String())
	}
}

// TestRunFlagValidation: decision flags are validated up front with
// actionable errors instead of silently producing empty or unbounded
// results.
func TestRunFlagValidation(t *testing.T) {
	model, data := setup(t)
	var out bytes.Buffer
	cases := []struct {
		name string
		mut  func(*options)
		want string
	}{
		{"minprob above 1", func(o *options) { o.Where, o.MinProb = "inc=100K", 1.5 }, "-minprob"},
		{"minprob below 0", func(o *options) { o.Where, o.MinProb = "inc=100K", -0.5 }, "-minprob"},
		{"minprob NaN", func(o *options) { o.Where, o.MinProb = "inc=100K", math.NaN() }, "-minprob"},
		{"topk k zero", func(o *options) { o.Op, o.Where, o.K = "topk", "inc=100K", 0 }, "-k"},
		{"topk k negative", func(o *options) { o.Op, o.Where, o.K = "topk", "inc=100K", -3 }, "-k"},
	}
	for _, c := range cases {
		err := run(&out, model, data, opts(c.mut))
		if err == nil {
			t.Errorf("%s: run should fail", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not name the flag %q", c.name, err, c.want)
		}
	}
	// A negative -k on non-topk ops stays ignored, as before.
	if err := run(&out, model, data, opts(func(o *options) { o.Where, o.K = "inc=100K", -1 })); err != nil {
		t.Errorf("count with unused -k: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	model, data := setup(t)
	var out bytes.Buffer
	if err := run(&out, model, data, opts(func(o *options) {
		o.Op, o.Where = "explode", "inc=100K"
	})); err == nil {
		t.Error("unknown op should fail")
	}
	if err := run(&out, model, data, opts(nil)); err == nil {
		t.Error("count without -where should fail")
	}
	if err := run(&out, model, data, opts(func(o *options) {
		o.Where = "inc@100K"
	})); err == nil {
		t.Error("malformed condition should fail")
	}
	if err := run(&out, model, data, opts(func(o *options) {
		o.Where, o.MinProb = "inc=100K", 1.5
	})); err == nil {
		t.Error("out-of-range minprob should fail")
	}
	if err := run(&out, filepath.Join(t.TempDir(), "no.json"), data, opts(func(o *options) {
		o.Where = "inc=100K"
	})); err == nil {
		t.Error("missing model should fail")
	}
	if err := run(&out, model, filepath.Join(t.TempDir(), "no.csv"), opts(func(o *options) {
		o.Where = "inc=100K"
	})); err == nil {
		t.Error("missing data should fail")
	}
}

const peopleCSV = `age,pid
20,p1
20,p1
30,p2
30,p2
40,p3
?,p1
30,?
20,p9
`

const financeCSV = `pid,inc
p1,?
p2,100K
p3,50K
`

// setupSPJ reuses the single-relation model (its schema is exactly the
// people ⋈ finance join) and writes the two base CSVs: p1 is shared by
// three rows and misses inc, p9 dangles, and one row misses its FK.
func setupSPJ(t *testing.T) (modelPath, relsSpec string) {
	t.Helper()
	modelPath, _ = setup(t)
	dir := t.TempDir()
	people := filepath.Join(dir, "people.csv")
	finance := filepath.Join(dir, "finance.csv")
	if err := os.WriteFile(people, []byte(peopleCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(finance, []byte(financeCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	return modelPath, "people=" + people + ",finance=" + finance
}

func TestRunSQLCount(t *testing.T) {
	model, rels := setupSPJ(t)
	var out bytes.Buffer
	if err := run(&out, model, "", opts(func(o *options) {
		o.SQL, o.Rels = "from people join finance on pid=pid where age=30", rels
	})); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "expected count:") ||
		!strings.Contains(out.String(), "query stats:") {
		t.Errorf("sql count output:\n%s", out.String())
	}
}

// TestRunSQLExistsDissociated: the shared uncertain finance tuple makes
// the plan unsafe, so exists reports the dissociated mass with its sound
// interval.
func TestRunSQLExistsDissociated(t *testing.T) {
	model, rels := setupSPJ(t)
	var out bytes.Buffer
	if err := run(&out, model, "", opts(func(o *options) {
		o.Op = "exists"
		o.SQL, o.Rels = "from people join finance on pid=pid where inc=100K", rels
	})); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "exists: yes") ||
		!strings.Contains(out.String(), "dissociated lineage") {
		t.Errorf("dissociated exists output:\n%s", out.String())
	}
}

// TestRunSQLProjection: a select list switches to distinct-answer mode;
// rows render in the projected answer schema.
func TestRunSQLProjection(t *testing.T) {
	model, rels := setupSPJ(t)
	var out bytes.Buffer
	if err := run(&out, model, "", opts(func(o *options) {
		o.Op, o.K = "topk", 2
		o.SQL, o.Rels = "select age from people join finance on pid=pid where inc=100K", rels
	})); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "top 2 matching completions") {
		t.Errorf("projected topk output:\n%s", s)
	}
	// Projected rows carry a single attribute — no comma-joined full
	// tuples in the rendered rows.
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "  0.") || strings.HasPrefix(line, "  1.") {
			if strings.Contains(line, ",") {
				t.Errorf("projected row renders a full tuple: %q", line)
			}
		}
	}
}

// TestRunSQLExplain: -explain over a statement includes the join order
// and the safety verdict.
func TestRunSQLExplain(t *testing.T) {
	model, rels := setupSPJ(t)
	var out bytes.Buffer
	if err := run(&out, model, "", opts(func(o *options) {
		o.Op, o.Explain = "exists", true
		o.SQL, o.Rels = "from people join finance on pid=pid where inc=100K", rels
	})); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"join order: people ⋈ finance", "safety: unsafe"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("sql explain missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunSQLValidation(t *testing.T) {
	model, rels := setupSPJ(t)
	_, data := setup(t)
	var out bytes.Buffer
	if err := run(&out, model, data, opts(func(o *options) {
		o.SQL, o.Rels = "from people join finance on pid=pid", rels
	})); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("-sql with -in: err = %v", err)
	}
	if err := run(&out, model, "", opts(func(o *options) {
		o.SQL, o.Rels = "from people join finance on pid=pid", "people=nope"
	})); err == nil {
		t.Error("bad -rels entry should fail")
	}
	if err := run(&out, model, "", opts(func(o *options) {
		o.SQL, o.Rels = "from people join towns on pid=pid", rels
	})); err == nil || !strings.Contains(err.Error(), "towns") {
		t.Errorf("unbound relation: err = %v", err)
	}
}
