// Command bngen samples synthetic datasets from the benchmark Bayesian
// network catalog (Table I of the paper) and writes them as CSV, optionally
// hiding attribute values to produce incomplete relations.
//
// Usage:
//
//	bngen -network BN8 -n 10000 [-missing 2] [-missing-frac 0.1]
//	      [-seed 1] [-out data.csv] [-list] [-render]
//
// With -missing k, a fraction (-missing-frac) of the sampled tuples have k
// uniformly random attribute values replaced by "?", mirroring the paper's
// test-set processing.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro"
	"repro/internal/bn"
	"repro/internal/relation"
)

func main() {
	var (
		network     = flag.String("network", "BN8", "catalog network id (BN1..BN20)")
		topology    = flag.String("topology", "", "custom topology description file (overrides -network)")
		n           = flag.Int("n", 1000, "number of tuples to sample")
		missing     = flag.Int("missing", 0, "missing values per affected tuple (0 = complete data)")
		missingFrac = flag.Float64("missing-frac", 0.1, "fraction of tuples that get missing values")
		seed        = flag.Int64("seed", 1, "random seed")
		out         = flag.String("out", "", "output CSV (default stdout)")
		list        = flag.Bool("list", false, "list the catalog (Table I) and exit")
		render      = flag.Bool("render", false, "render the network structure and exit")
	)
	flag.Parse()
	if err := run(*network, *topology, *n, *missing, *missingFrac, *seed, *out, *list, *render); err != nil {
		fmt.Fprintf(os.Stderr, "bngen: %v\n", err)
		os.Exit(1)
	}
}

func run(network, topology string, n, missing int, missingFrac float64, seed int64, out string, list, render bool) error {
	if list {
		for _, r := range bn.TableI() {
			fmt.Printf("%-5s attrs=%-3d avgCard=%-4.1f dom=%-7d depth=%d\n",
				r.Network, r.NumAttrs, r.AvgCard, r.DomSize, r.DepthLabel)
		}
		return nil
	}
	var (
		top *bn.Topology
		err error
	)
	if topology != "" {
		f, err := os.Open(topology)
		if err != nil {
			return err
		}
		top, err = bn.ParseTopology(f)
		f.Close()
		if err != nil {
			return err
		}
	} else if top, err = bn.ByID(network); err != nil {
		return err
	}
	if render {
		fmt.Print(top.Render())
		return nil
	}
	if n < 1 {
		return fmt.Errorf("-n must be positive")
	}
	if missing < 0 || missing >= top.NumAttrs() {
		if missing != 0 {
			return fmt.Errorf("-missing must be in [0, %d)", top.NumAttrs())
		}
	}
	rng := rand.New(rand.NewSource(seed))
	inst, err := bn.Instantiate(top, rng)
	if err != nil {
		return err
	}
	rel := inst.SampleRelation(rng, n)
	if missing > 0 {
		for i := range rel.Tuples {
			if rng.Float64() >= missingFrac {
				continue
			}
			for _, a := range rng.Perm(top.NumAttrs())[:missing] {
				rel.Tuples[i][a] = relation.Missing
			}
		}
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return repro.WriteCSV(w, rel)
}
