package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run("BN8", "", 10, 0, 0.1, 1, "", true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunRender(t *testing.T) {
	if err := run("BN8", "", 10, 0, 0.1, 1, "", false, true); err != nil {
		t.Fatal(err)
	}
	if err := run("BN99", "", 10, 0, 0.1, 1, "", false, true); err == nil {
		t.Error("unknown network should fail")
	}
}

func TestRunSampleToFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "data.csv")
	if err := run("BN8", "", 50, 2, 0.5, 1, out, false, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 51 {
		t.Fatalf("lines = %d, want 51", len(lines))
	}
	if !strings.Contains(string(data), "?") {
		t.Error("no missing values injected")
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("BN8", "", 0, 0, 0.1, 1, "", false, false); err == nil {
		t.Error("n=0 should fail")
	}
	if err := run("BN8", "", 10, 9, 0.1, 1, "", false, false); err == nil {
		t.Error("missing >= attrs should fail")
	}
	if err := run("BN99", "", 10, 0, 0.1, 1, "", false, false); err == nil {
		t.Error("unknown network should fail")
	}
}

func TestRunCustomTopology(t *testing.T) {
	topo := filepath.Join(t.TempDir(), "topo.txt")
	src := "network tiny depth 2\nnode a card 2\nnode b card 2 parents a\n"
	if err := os.WriteFile(topo, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "data.csv")
	if err := run("", topo, 20, 0, 0.1, 1, out, false, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "a,b\n") {
		t.Errorf("header = %q", strings.SplitN(string(data), "\n", 2)[0])
	}
	if err := run("", filepath.Join(t.TempDir(), "nope.txt"), 10, 0, 0.1, 1, "", false, false); err == nil {
		t.Error("missing topology file should fail")
	}
}
