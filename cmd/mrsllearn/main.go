// Command mrsllearn learns an MRSL model from the complete tuples of a CSV
// relation and writes it as JSON.
//
// Usage:
//
//	mrsllearn -in data.csv -out model.json [-support 0.01] [-max-itemsets 1000]
//
// The CSV's first row names the attributes; "?" cells mark missing values.
// Incomplete rows are ignored during learning (they are what the model is
// later used to complete).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/relation"
)

func main() {
	var (
		in          = flag.String("in", "", "input CSV relation (required)")
		out         = flag.String("out", "", "output model JSON (default stdout)")
		support     = flag.Float64("support", 0.01, "support threshold theta")
		maxItemsets = flag.Int("max-itemsets", 1000, "Apriori per-round itemset cutoff")
		maxBody     = flag.Int("max-body", 0, "max meta-rule body size (0 = unbounded)")
		stats       = flag.Bool("stats", false, "print a data profile and model summary to stderr")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "mrsllearn: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*in, *out, *support, *maxItemsets, *maxBody, *stats); err != nil {
		fmt.Fprintf(os.Stderr, "mrsllearn: %v\n", err)
		os.Exit(1)
	}
}

func run(in, out string, support float64, maxItemsets, maxBody int, stats bool) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	rel, err := repro.ReadCSV(f)
	if err != nil {
		return err
	}
	if stats {
		fmt.Fprint(os.Stderr, relation.ComputeProfile(rel).Render(rel.Schema))
	}
	model, err := repro.Learn(rel, repro.LearnOptions{
		SupportThreshold: support,
		MaxItemsets:      maxItemsets,
		MaxBodySize:      maxBody,
	})
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		w, err = os.Create(out)
		if err != nil {
			return err
		}
		defer w.Close()
	}
	if err := model.Save(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "learned %d meta-rules from %d complete tuples in %s\n",
		model.Size(), model.Stats.TrainingSize, model.Stats.BuildTime)
	if stats {
		fmt.Fprint(os.Stderr, model.Describe())
	}
	return nil
}
