package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

const learnCSV = `age,inc
20,50K
20,50K
30,100K
30,100K
40,100K
40,?
`

func TestRunLearn(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "data.csv")
	out := filepath.Join(dir, "model.json")
	if err := os.WriteFile(in, []byte(learnCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(in, out, 0.05, 1000, 0, true); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := repro.LoadModel(f)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() == 0 {
		t.Error("empty model")
	}
	// Only the 5 complete rows train the model.
	if m.Stats.TrainingSize != 5 {
		t.Errorf("training size = %d, want 5", m.Stats.TrainingSize)
	}
}

func TestRunLearnErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run(filepath.Join(dir, "missing.csv"), "", 0.05, 1000, 0, false); err == nil {
		t.Error("missing input should fail")
	}
	bad := filepath.Join(dir, "bad.csv")
	if err := os.WriteFile(bad, []byte("a,b\n1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bad, "", 0.05, 1000, 0, false); err == nil {
		t.Error("ragged CSV should fail")
	}
	ok := filepath.Join(dir, "ok.csv")
	if err := os.WriteFile(ok, []byte(learnCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(ok, "", 0, 1000, 0, false); err == nil {
		t.Error("support 0 should fail")
	}
}

func TestRunLearnMaxBody(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "data.csv")
	out := filepath.Join(dir, "model.json")
	if err := os.WriteFile(in, []byte(learnCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(in, out, 0.05, 1000, 1, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"max_body_size": 1`) {
		// Field name check keeps the persisted config stable.
		if !strings.Contains(string(data), "MaxBodySize") {
			t.Log("model json:", string(data)[:200])
		}
	}
}
