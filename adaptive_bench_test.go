package repro

// Adaptive-execution benchmarks and the deterministic re-planning win.
//
// The workloads come from internal/experiment's adversarial generator:
// skewed duplicate damage (shared-envelope traffic), correlated missing
// pairs (informative envelopes, so mid-query re-planning has candidates
// to cut), and over-budget blocks (cost-model skips). Benchmarks run
// adaptive and static execution over fresh engines and assert
// bit-identity before the timer; the difference is scheduling work —
// blocks never derived — not answer drift.

import (
	"context"
	"testing"

	"repro/internal/experiment"
	"repro/internal/relation"
)

// adversarialEnv builds an adversarial relation over the standard bench
// model, sourcing complete evidence from the bench relation.
func adversarialEnv(tb testing.TB, cfg experiment.AdversarialConfig) (*deriveBenchEnv, *Relation) {
	tb.Helper()
	env := deriveBenchSetup(tb)
	var src []relation.Tuple
	for _, t := range env.rel.Tuples {
		if t.IsComplete() {
			src = append(src, t)
		}
	}
	rel, err := experiment.BuildAdversarialRelation(env.model.Schema, src, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return env, rel
}

// adversarialTopK picks a TopK query whose predicate constrains the
// relation's most frequently missing attribute, so the multi-missing
// envelopes are informative and rank-k cuts can fire.
func adversarialTopK(env *deriveBenchEnv, rel *Relation, k int) QuerySpec {
	nAttrs := env.model.Schema.NumAttrs()
	missing := make([]int, nAttrs)
	count := make([]int, nAttrs)
	var w Tuple
	for _, t := range rel.Tuples {
		for a := 0; a < nAttrs; a++ {
			if t[a] == relation.Missing {
				missing[a]++
			}
		}
		if w == nil && t.IsComplete() {
			w = t
		}
	}
	attr := 0
	for a := 1; a < nAttrs; a++ {
		if missing[a] > missing[attr] {
			attr = a
		}
	}
	// The rarest complete value of that attribute: selective enough that
	// certain tuples do not fill rank k by themselves.
	for _, t := range rel.Tuples {
		if t[attr] != relation.Missing {
			count[t[attr]]++
		}
	}
	value := w[attr]
	for v := range count {
		if count[v] > 0 && count[v] < count[value] {
			value = v
		}
	}
	return QuerySpec{
		Op: QueryTopK, K: k,
		Preds: []QueryPred{{Attr: attr, Cmp: QueryEq, Value: value}},
	}
}

func requireSameRows(tb testing.TB, got, want []QueryRow) {
	tb.Helper()
	if len(got) != len(want) {
		tb.Fatalf("row count %d != %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Index != want[i].Index || got[i].Prob != want[i].Prob {
			tb.Fatalf("row %d: adaptive (%d, %v) != static (%d, %v)",
				i, got[i].Index, got[i].Prob, want[i].Index, want[i].Prob)
		}
	}
}

// TestAdaptiveTopKCutsDerivations is the adaptive layer's measurable
// win, pinned deterministically: on a correlated-damage workload whose
// cheap tiers cannot fill rank k, the static executor prefetches every
// surviving bound-tier candidate while the adaptive executor resolves in
// waves and cuts the tail once rank k is unbeatable — same rows, bit
// for bit, with at least 25% fewer blocks derived.
func TestAdaptiveTopKCutsDerivations(t *testing.T) {
	cfg := experiment.AdversarialConfig{
		Seed: 5, Size: 360, Patterns: 24, SkewExp: 1.1,
		CorrelatedPairs: 3, OverBudgetFrac: 0, CompleteFrac: 0.05,
	}
	env, rel := adversarialEnv(t, cfg)
	spec := adversarialTopK(env, rel, 4)
	q, err := CompileQuery(env.model.Schema, spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Static = true
	qs, err := CompileQuery(env.model.Schema, spec)
	if err != nil {
		t.Fatal(err)
	}
	opt := DeriveOptions{Method: BestAveraged(), Workers: 4, Gibbs: benchGibbs()}
	ctx := context.Background()

	run := func(q *CompiledQuery) (*QueryResult, EngineStats) {
		eng, err := NewEngine(env.model, opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Query(ctx, rel, q)
		if err != nil {
			t.Fatal(err)
		}
		return res, eng.Stats()
	}
	adaptive, aStats := run(q)
	static, sStats := run(qs)

	requireSameRows(t, adaptive.Rows, static.Rows)
	if adaptive.Plan.Adaptive == nil || adaptive.Plan.Adaptive.Replans == 0 {
		t.Fatalf("adaptive run recorded no re-plan rounds: %+v", adaptive.Plan.Adaptive)
	}
	if sStats.GibbsComputed == 0 {
		t.Fatal("static run derived nothing; workload is degenerate")
	}
	t.Logf("derived blocks: adaptive %d, static %d (%d re-plan rounds, cut %v)",
		aStats.GibbsComputed, sStats.GibbsComputed,
		adaptive.Plan.Adaptive.Replans, adaptive.Plan.Adaptive.ReplanCut)
	if 4*aStats.GibbsComputed > 3*sStats.GibbsComputed {
		t.Fatalf("adaptive derived %d blocks, static %d: less than 25%% saved",
			aStats.GibbsComputed, sStats.GibbsComputed)
	}
}

// BenchmarkQueryAdaptive measures adaptive vs static execution of the
// rank-k workload above on fresh engines: the adaptive savings are
// blocks never derived, so wall time follows the derivation drop.
func BenchmarkQueryAdaptive(b *testing.B) {
	cfg := experiment.AdversarialConfig{
		Seed: 5, Size: 360, Patterns: 24, SkewExp: 1.1,
		CorrelatedPairs: 3, OverBudgetFrac: 0, CompleteFrac: 0.05,
	}
	env, rel := adversarialEnv(b, cfg)
	spec := adversarialTopK(env, rel, 4)
	q, err := CompileQuery(env.model.Schema, spec)
	if err != nil {
		b.Fatal(err)
	}
	spec.Static = true
	qs, err := CompileQuery(env.model.Schema, spec)
	if err != nil {
		b.Fatal(err)
	}
	opt := DeriveOptions{Method: BestAveraged(), Workers: 4, Gibbs: benchGibbs()}
	ctx := context.Background()
	run := func(b *testing.B, q *CompiledQuery) *QueryResult {
		eng, err := NewEngine(env.model, opt)
		if err != nil {
			b.Fatal(err)
		}
		res, err := eng.Query(ctx, rel, q)
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	requireSameRows(b, run(b, q).Rows, run(b, qs).Rows) // sanity outside the timer

	b.Run("adaptive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, q)
		}
	})
	b.Run("static", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, qs)
		}
	})
}

// BenchmarkQueryAdversarial runs the full adversarial mix — skew,
// correlation, and over-budget blocks — through a thresholded count,
// adaptive vs static, on fresh engines per iteration.
func BenchmarkQueryAdversarial(b *testing.B) {
	env, rel := adversarialEnv(b, experiment.DefaultAdversarial(9, 360))
	spec := adversarialTopK(env, rel, 0)
	spec.Op, spec.K, spec.MinProb = QueryCount, 0, 0.5
	q, err := CompileQuery(env.model.Schema, spec)
	if err != nil {
		b.Fatal(err)
	}
	spec.Static = true
	qs, err := CompileQuery(env.model.Schema, spec)
	if err != nil {
		b.Fatal(err)
	}
	opt := DeriveOptions{Method: BestAveraged(), Workers: 4, Gibbs: benchGibbs()}
	ctx := context.Background()
	run := func(b *testing.B, q *CompiledQuery) *QueryResult {
		eng, err := NewEngine(env.model, opt)
		if err != nil {
			b.Fatal(err)
		}
		res, err := eng.Query(ctx, rel, q)
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	ra, rs := run(b, q), run(b, qs) // sanity outside the timer
	if ra.Expected != rs.Expected || ra.Count != rs.Count {
		b.Fatalf("adaptive count (%v, %d) != static (%v, %d)", ra.Expected, ra.Count, rs.Expected, rs.Count)
	}

	b.Run("adaptive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, q)
		}
	})
	b.Run("static", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, qs)
		}
	})
}
