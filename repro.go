package repro

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/derive"
	"repro/internal/dist"
	"repro/internal/gibbs"
	"repro/internal/pdb"
	"repro/internal/relation"
	"repro/internal/vote"
)

// Re-exported core types, so callers need only import the root package.
type (
	// Schema describes the attributes of a relation.
	Schema = relation.Schema
	// Attribute is one discrete column.
	Attribute = relation.Attribute
	// Tuple is a (possibly incomplete) row; Missing marks unknown values.
	Tuple = relation.Tuple
	// Relation is a set of tuples over a schema.
	Relation = relation.Relation
	// Model is a learned MRSL model.
	Model = core.Model
	// Dist is a single-attribute probability distribution.
	Dist = dist.Dist
	// Joint is a distribution over combinations of several attributes.
	Joint = dist.Joint
	// Database is a disjoint-independent probabilistic database.
	Database = pdb.Database
	// Block is the completion distribution of one incomplete tuple.
	Block = pdb.Block
	// Method is a voting method (voter choice x scheme).
	Method = vote.Method
)

// Missing is the value code of a missing ("?") attribute value.
const Missing = relation.Missing

// NewSchema builds a validated schema.
func NewSchema(attrs []Attribute) (*Schema, error) { return relation.NewSchema(attrs) }

// NewRelation returns an empty relation over the schema.
func NewRelation(s *Schema) *Relation { return relation.NewRelation(s) }

// ReadCSV parses a relation ("?" denotes missing values) and infers domains.
func ReadCSV(r io.Reader) (*Relation, error) { return relation.ReadCSV(r) }

// ReadCSVInSchema parses a relation against a fixed schema (normally a
// model's) instead of inferring domains: the header must name the
// schema's attributes in order and every non-"?" cell must be a domain
// label. Serving paths should prefer this over ReadCSV — inference-time
// data rarely exercises every domain value, and re-inferring domains
// would silently re-code values relative to the model.
func ReadCSVInSchema(r io.Reader, s *Schema) (*Relation, error) {
	return relation.ReadCSVInSchema(r, s)
}

// WriteCSV writes a relation with a header row.
func WriteCSV(w io.Writer, rel *Relation) error { return relation.WriteCSV(w, rel) }

// Voting method constructors, named after the paper's Table II columns.

// AllAveraged votes with every matching meta-rule, plainly averaged.
func AllAveraged() Method { return Method{Choice: core.AllVoters, Scheme: vote.Averaged} }

// AllWeighted votes with every matching meta-rule, support-weighted.
func AllWeighted() Method { return Method{Choice: core.AllVoters, Scheme: vote.Weighted} }

// BestAveraged votes with the most specific matches, plainly averaged —
// the paper's most accurate method at scale.
func BestAveraged() Method { return Method{Choice: core.BestVoters, Scheme: vote.Averaged} }

// BestWeighted votes with the most specific matches, support-weighted.
func BestWeighted() Method { return Method{Choice: core.BestVoters, Scheme: vote.Weighted} }

// LearnOptions configure Learn.
type LearnOptions struct {
	// SupportThreshold is the paper's theta (frequent itemset cutoff).
	SupportThreshold float64
	// MaxItemsets caps Apriori rounds; <= 0 uses the paper's 1000.
	MaxItemsets int
	// MaxBodySize bounds meta-rule bodies; <= 0 means unbounded.
	MaxBodySize int
	// UseIncomplete also mines the complete portions of incomplete tuples
	// (the paper's Section III variant) instead of learning from complete
	// tuples only.
	UseIncomplete bool
}

// Learn builds an MRSL model from the complete portion of rel
// (Algorithm 1). By default incomplete tuples are ignored during learning,
// exactly as in the paper's main algorithm; with opt.UseIncomplete their
// known values contribute to mining as well.
func Learn(rel *Relation, opt LearnOptions) (*Model, error) {
	rc, _ := rel.Split()
	if rc.Len() == 0 {
		return nil, fmt.Errorf("repro: relation has no complete tuples to learn from")
	}
	cfg := core.Config{
		SupportThreshold: opt.SupportThreshold,
		MaxItemsets:      opt.MaxItemsets,
		MaxBodySize:      opt.MaxBodySize,
		IncludePartial:   opt.UseIncomplete,
	}
	if opt.UseIncomplete {
		return core.Learn(rel, cfg)
	}
	return core.Learn(rc, cfg)
}

// LoadModel reads a model saved with Model.Save.
func LoadModel(r io.Reader) (*Model, error) { return core.Load(r) }

// InferSingle estimates the distribution of the single missing attribute
// attr of t by ensemble voting (Algorithm 2).
func InferSingle(m *Model, t Tuple, attr int, method Method) (Dist, error) {
	return vote.Infer(m, t, attr, method)
}

// GibbsOptions configure multi-attribute inference.
type GibbsOptions struct {
	// Samples is the number of recorded points per tuple (N); <= 0 uses
	// the paper's well-converged setting of 2000.
	Samples int
	// BurnIn is the number of discarded warm-up sweeps (B); <= 0 uses 100.
	BurnIn int
	// Method is the voting method for local CPDs. The zero value is
	// AllAveraged (all voters, plain averaging); pass BestAveraged() etc.
	// to select another method.
	Method Method
	// Seed makes sampling deterministic.
	Seed int64
}

func (o GibbsOptions) config() gibbs.Config {
	samples := o.Samples
	if samples <= 0 {
		samples = 2000
	}
	return gibbs.Config{Samples: samples, BurnIn: o.BurnIn, Method: o.Method, Seed: o.Seed}
}

// InferJoint estimates the joint distribution over all missing attributes
// of t by ordered Gibbs sampling over the model's MRSLs (Section V).
func InferJoint(m *Model, t Tuple, opt GibbsOptions) (*Joint, error) {
	s, err := gibbs.New(m, opt.config())
	if err != nil {
		return nil, err
	}
	return s.InferTuple(t)
}

// InferWorkload estimates distributions for a whole workload of incomplete
// tuples with the tuple-DAG optimization (Algorithm 3), sharing samples
// between tuples related by subsumption. Results align with the distinct
// incomplete tuples in first-appearance order.
func InferWorkload(m *Model, workload []Tuple, opt GibbsOptions) ([]Tuple, []*Joint, error) {
	s, err := gibbs.New(m, opt.config())
	if err != nil {
		return nil, nil, err
	}
	res, err := s.TupleDAGRun(workload)
	if err != nil {
		return nil, nil, err
	}
	return res.Tuples, res.Dists, nil
}

// DeriveOptions configure Derive and DeriveStream.
type DeriveOptions struct {
	// Gibbs configures multi-attribute inference for tuples with more than
	// one missing value.
	Gibbs GibbsOptions
	// Method is the voting method for single-missing tuples. The zero
	// value is AllAveraged; the paper's most accurate method at scale is
	// BestAveraged().
	Method Method
	// MaxAlternatives caps each block's alternatives (most probable kept,
	// renormalized); <= 0 keeps all combinations.
	MaxAlternatives int
	// Workers > 1 runs multi-missing inference with independent parallel
	// chains (one per distinct tuple, deterministic per-tuple seeding)
	// instead of the sequential tuple-DAG sampler. Parallelism trades the
	// DAG's sample sharing for wall-clock speedup on many-core machines.
	Workers int
	// VoteWorkers sizes the goroutine pool that shards single-missing
	// voting; <= 0 selects GOMAXPROCS. Distinct incomplete tuples are
	// voted once through a shared memoization cache, and the derived
	// database is bit-identical for every pool size.
	VoteWorkers int
	// CacheEntries bounds each engine cache (single-missing votes,
	// multi-missing joints, and the shared local-CPD memo) to that many
	// entries with CLOCK eviction, so long-lived engines serving unbounded
	// pattern diversity run in fixed memory. <= 0 leaves the vote and
	// joint caches unbounded and keeps the CPD memo at its large default
	// cap. With parallel chains (Workers > 1) eviction never changes the
	// derived stream — cached values are deterministic functions of the
	// model and their key — it only costs recomputation; with the DAG
	// sampler an evicted joint is re-estimated alongside a later workload,
	// which is a different (workload-dependent) estimate by construction.
	CacheEntries int
}

func (o DeriveOptions) config() derive.Config {
	gibbsWorkers := 0 // <= 1 keeps the sequential tuple-DAG sampler
	if o.Workers > 1 {
		gibbsWorkers = o.Workers
	}
	return derive.Config{
		Method:          o.Method,
		Gibbs:           o.Gibbs.config(),
		MaxAlternatives: o.MaxAlternatives,
		VoteWorkers:     o.VoteWorkers,
		GibbsWorkers:    gibbsWorkers,
		CacheEntries:    o.CacheEntries,
	}
}

// DeriveItem is one streamed element of a derived database: a certain
// tuple (Block == nil) or a block of completions, tagged with the source
// tuple's position in the input relation. Blocks are served from the
// engine's cache and shared between duplicate tuples and across
// requests; treat a received Block and its alternatives as immutable
// (copy before modifying).
type DeriveItem = derive.Item

// SchemaMismatchError is returned by Derive, DeriveStream, and the Engine
// methods when the relation's schema is not attribute-for-attribute
// identical to the model's (same names, same domains, same order — the
// condition under which value codes mean the same thing in both). It is
// detected up front, before any inference runs; match it with errors.As.
type SchemaMismatchError = derive.SchemaMismatchError

// PanicError is the typed error a request receives when a panic inside
// the engine's worker pools (voting, Gibbs chains, prefetch, sinks) was
// recovered at the goroutine boundary: the request fails, the engine and
// its shared caches stay serviceable, and EngineStats.PanicsRecovered
// counts the event. Match it with errors.As.
type PanicError = derive.PanicError

// Sink receives a derivation stream: Emit once per item in input order,
// then Close to flush. See NewCollector, NewCSVSink, NewJSONLSink, and
// NewTextSink.
type Sink = derive.Sink

// EngineStats instruments an Engine's shared caches: distinct patterns
// computed vs tuples served for both the single-missing vote cache and
// the multi-missing joint cache, Gibbs points drawn, and streams run. All
// counters are monotonically non-decreasing over the engine's lifetime.
type EngineStats = derive.Stats

// Pools sizes the worker pools of a single Engine request; zero fields
// inherit the engine's DeriveOptions. Pool sizes never change the emitted
// stream, so per-request sharding is always safe.
type Pools = derive.Pools

// NewCollector returns the in-memory Sink: it materializes the stream
// into a Database retrievable with its Database method.
func NewCollector(s *Schema) *derive.Collector { return derive.NewCollector(s) }

// NewCSVSink returns a Sink writing the stream to w as a complete CSV
// relation: certain tuples pass through, each block is materialized as
// its most probable completion (the most probable world — the paper's
// single-imputation repair). The output round-trips through ReadCSV.
func NewCSVSink(w io.Writer, s *Schema) *derive.CSVSink { return derive.NewCSVSink(w, s) }

// NewJSONLSink returns a Sink writing the stream to w as NDJSON: a schema
// record, then one record per item carrying either the certain tuple's
// values or every block alternative with its probability. Each item is
// written as one complete line immediately, which suits incremental
// serving over sockets and HTTP (cmd/mrslserve streams this format).
func NewJSONLSink(w io.Writer, s *Schema) *derive.JSONLSink { return derive.NewJSONLSink(w, s) }

// NewTextSink returns a Sink writing a human-readable line per item.
func NewTextSink(w io.Writer, s *Schema) *derive.TextSink { return derive.NewTextSink(w, s) }

// Engine is a long-lived derivation service over one model: construct it
// once with NewEngine and serve any number of DeriveStream/Derive calls,
// from any number of goroutines. Distinct evidence patterns are inferred
// once per engine lifetime — the single-missing vote cache and the
// multi-missing joint cache are shared across requests and persist
// between them — so overlapping and repeated workloads are served mostly
// from memory. With opt.Workers > 1 (independent content-seeded chains)
// every request's output is bit-identical no matter which requests ran
// before or alongside it. With opt.Workers <= 1 (the paper's tuple-DAG
// sampler) a multi-missing tuple's cached estimate depends on which
// request's workload sampled it first, because the DAG estimator is
// workload-dependent by construction — serving deployments that need
// request-order-independent answers should use chains. The package-level
// Derive/DeriveStream helpers construct a throwaway engine per call.
type Engine struct {
	eng *derive.Engine
}

// NewEngine returns a serving engine over the model. opt fixes the voting
// method, the Gibbs configuration, the estimator for multi-missing tuples
// (opt.Workers > 1 selects per-block scheduled independent chains;
// otherwise the workload-level tuple-DAG sampler), and the default pool
// sizes — which individual requests may override via Pools.
func NewEngine(m *Model, opt DeriveOptions) (*Engine, error) {
	e, err := derive.New(m, opt.config())
	if err != nil {
		return nil, err
	}
	return &Engine{eng: e}, nil
}

// DeriveStream derives rel and streams the result to emit in input order
// without materializing it, using the engine's shared caches.
func (e *Engine) DeriveStream(rel *Relation, emit func(DeriveItem) error) error {
	return e.eng.Stream(rel, derive.EmitFunc(emit))
}

// DeriveStreamPools is DeriveStream with per-request pool sizes.
func (e *Engine) DeriveStreamPools(rel *Relation, pools Pools, emit func(DeriveItem) error) error {
	return e.eng.StreamPools(rel, pools, derive.EmitFunc(emit))
}

// DeriveStreamContext is DeriveStream with a cancellation context and
// per-request pool sizes. Canceling ctx stops the stream: dispatchers
// stop scheduling, the emitter stops waiting, and the call returns
// ctx.Err() once in-flight workers have drained. Work already claimed
// when the cancel lands is completed and cached rather than abandoned,
// so cancellation never poisons the shared caches.
func (e *Engine) DeriveStreamContext(ctx context.Context, rel *Relation, pools Pools, emit func(DeriveItem) error) error {
	return e.eng.StreamContext(ctx, rel, pools, derive.EmitFunc(emit))
}

// DeriveTo derives rel and pushes the stream into sink, closing it on
// success.
func (e *Engine) DeriveTo(rel *Relation, sink Sink) error {
	return e.eng.StreamTo(rel, sink)
}

// DeriveToPools is DeriveTo with per-request pool sizes.
func (e *Engine) DeriveToPools(rel *Relation, pools Pools, sink Sink) error {
	return e.eng.StreamPoolsTo(rel, pools, sink)
}

// DeriveToContext is DeriveTo with a cancellation context and per-request
// pool sizes (see DeriveStreamContext). On cancellation the sink is not
// closed, so a partial output is never flushed as complete.
func (e *Engine) DeriveToContext(ctx context.Context, rel *Relation, pools Pools, sink Sink) error {
	return e.eng.StreamToContext(ctx, rel, pools, sink)
}

// Derive derives rel into a materialized database.
func (e *Engine) Derive(rel *Relation) (*Database, error) {
	return e.eng.Derive(rel)
}

// Stats returns a snapshot of the engine's cache instrumentation.
func (e *Engine) Stats() EngineStats { return e.eng.Stats() }

// DeriveStream runs the paper's end-to-end pipeline on rel and streams
// the derived database to emit in input order, without materializing it:
// every complete tuple is passed through as a certain item, every
// incomplete tuple arrives as a block of mutually exclusive completions
// distributed according to the inferred Delta_t. Single-missing tuples
// use ensemble voting sharded across opt.VoteWorkers goroutines with a
// shared memoization cache; multi-missing tuples use workload-driven
// Gibbs sampling (tuple-DAG, or per-block scheduled parallel chains when
// opt.Workers > 1). The emitted stream does not depend on pool sizes: it
// is bit-identical for every VoteWorkers value and for every Workers
// count above 1 (chains are seeded by tuple content). Only switching
// between the DAG sampler (Workers <= 1) and parallel chains changes
// multi-missing estimates — they are different estimators. The relation's
// schema must match the model's (else a SchemaMismatchError is returned
// up front). If emit returns an error the stream stops and DeriveStream
// returns that error. It runs on a throwaway engine; long-lived callers
// should construct one Engine and reuse its caches across calls.
func DeriveStream(m *Model, rel *Relation, opt DeriveOptions, emit func(DeriveItem) error) error {
	e, err := NewEngine(m, opt)
	if err != nil {
		return err
	}
	return e.DeriveStream(rel, emit)
}

// Derive runs the paper's end-to-end pipeline on rel and collects the
// stream into a materialized database: every complete tuple becomes a
// certain tuple of the output database; every incomplete tuple becomes a
// block of mutually exclusive completions, both in input order. It is a
// thin collector over DeriveStream; callers that can persist or serve
// blocks incrementally should use DeriveStream directly, and long-lived
// callers should construct an Engine and reuse its caches across calls.
func Derive(m *Model, rel *Relation, opt DeriveOptions) (*Database, error) {
	e, err := NewEngine(m, opt)
	if err != nil {
		return nil, err
	}
	return e.Derive(rel)
}
