package repro

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// chaosOptions puts the engine in chain mode (content-seeded, so every
// successful answer is reproducible bit for bit) with real pools.
func chaosOptions() DeriveOptions {
	return DeriveOptions{
		Method:      BestAveraged(),
		Workers:     4,
		VoteWorkers: 4,
		Gibbs:       GibbsOptions{Samples: 200, BurnIn: 20, Seed: 7, Method: BestAveraged()},
	}
}

// chaosStream renders eng's derivation of rel as JSONL bytes — the
// strongest equality check available (schema line, order, and every
// probability digit).
func chaosStream(t *testing.T, eng *Engine, rel *Relation) ([]byte, error) {
	t.Helper()
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf, rel.Schema)
	if err := eng.DeriveToContext(context.Background(), rel, Pools{}, sink); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// consistentObservation picks, from a fault-free derivation, a
// multi-missing tuple plus evidence its block already carries — an
// observation the dataset must accept.
func consistentObservation(t *testing.T, db *Database, rel *Relation) (index, attr, val int) {
	t.Helper()
	for i, tu := range rel.Tuples {
		if tu.NumMissing() < 2 {
			continue
		}
		for _, b := range db.Blocks {
			if !b.Base.Equal(tu) {
				continue
			}
			a := tu.MissingAttrs()[0]
			return i, a, int(b.Alts[0].Tuple[a])
		}
	}
	t.Fatal("no multi-missing block in fixture")
	return 0, 0, 0
}

// TestChaosSoak is the fault-injection harness behind `make chaos-smoke`
// (run under -race): concurrent derive, query, observe, and snapshot
// traffic on one engine while injected faults force panics in every
// worker pool, eviction storms, and scheduling delays. The contract it
// enforces:
//
//   - the process never crashes — every injected panic surfaces as a
//     typed *PanicError on exactly one request;
//   - every non-degraded success is bit-identical to a fault-free
//     oracle;
//   - every degraded answer's [lo, hi] interval contains the oracle
//     mass;
//   - once disarmed, the same engine reproduces the oracle exactly.
func TestChaosSoak(t *testing.T) {
	model, rel := matchmakingModel(t)

	// Fault-free oracle: the exact stream, the exact scalar answers, and a
	// consistent observation, all from a fresh engine.
	oracleEng, err := NewEngine(model, chaosOptions())
	if err != nil {
		t.Fatal(err)
	}
	oracleStream, err := chaosStream(t, oracleEng, rel)
	if err != nil {
		t.Fatal(err)
	}
	oracleDB, err := oracleEng.Derive(rel)
	if err != nil {
		t.Fatal(err)
	}
	countQ, err := CompileQuery(model.Schema, QuerySpec{Op: QueryCount, Where: "age=20"})
	if err != nil {
		t.Fatal(err)
	}
	groupQ, err := CompileQuery(model.Schema, QuerySpec{Op: QueryGroupBy, GroupBy: "edu", Where: "age!=30"})
	if err != nil {
		t.Fatal(err)
	}
	// A thresholded exists the collective refute answers without deriving:
	// this arms the query.replan fault point on the adaptive path.
	refuteQ, err := CompileQuery(model.Schema, QuerySpec{Op: QueryExists, Where: "edu=MS,inc=50K", MinProb: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	bg := context.Background()
	oracleCount, err := oracleEng.Query(bg, rel, countQ)
	if err != nil {
		t.Fatal(err)
	}
	oracleGroups, err := oracleEng.Query(bg, rel, groupQ)
	if err != nil {
		t.Fatal(err)
	}
	oracleRefute, err := oracleEng.Query(bg, rel, refuteQ)
	if err != nil {
		t.Fatal(err)
	}
	if oracleRefute.Plan.Adaptive == nil || oracleRefute.Plan.Adaptive.Replans == 0 {
		t.Fatalf("refute query did not re-plan: %+v", oracleRefute.Plan.Adaptive)
	}
	obsIndex, obsAttr, obsVal := consistentObservation(t, oracleDB, rel)

	// The engine under fire, with a registered dataset for the live path.
	eng, err := NewEngine(model, chaosOptions())
	if err != nil {
		t.Fatal(err)
	}
	ds, err := eng.RegisterDataset(rel)
	if err != nil {
		t.Fatal(err)
	}

	if err := faultinject.Configure(
		"derive.vote=panic/3,derive.chain=panic/5,derive.prefetch=panic/4," +
			"gibbs.chain=panic/9,gibbs.sweep=sleep:300us/7,sink.write=sleep:100us/5," +
			"cache.storm=fire/11,observe.replay=sleep:300us/2,query.replan=sleep:200us/3"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disable()

	var mu sync.Mutex
	var failures []string
	fail := func(format string, args ...any) {
		mu.Lock()
		failures = append(failures, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	// tolerate accepts an outcome of a request under fire: success, or a
	// recovered panic typed onto exactly that request.
	tolerate := func(what string, err error) bool {
		if err == nil {
			return true
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			fail("%s: non-panic error under chaos: %v", what, err)
		}
		return false
	}

	const iters = 10
	var wg sync.WaitGroup

	// Derivers: full streams; a success must be byte-identical.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				got, err := chaosStream(t, eng, rel)
				if !tolerate(fmt.Sprintf("deriver %d/%d", w, i), err) {
					continue
				}
				if !bytes.Equal(got, oracleStream) {
					fail("deriver %d/%d: successful stream differs from oracle", w, i)
				}
			}
		}(w)
	}

	// Queriers: exact answers without a deadline, sound bounds with one.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			res, err := eng.Query(bg, rel, countQ)
			if tolerate(fmt.Sprintf("querier count/%d", i), err) {
				if res.Degraded {
					fail("querier count/%d: degraded without a deadline", i)
				} else if res.Expected != oracleCount.Expected {
					fail("querier count/%d: %v, want bit-identical %v", i, res.Expected, oracleCount.Expected)
				}
			}
			res, err = eng.Query(bg, rel, groupQ)
			if tolerate(fmt.Sprintf("querier groupby/%d", i), err) && !res.Degraded {
				for g, og := range oracleGroups.Groups {
					if res.Groups[g].Expected != og.Expected {
						fail("querier groupby/%d: group %s = %v, want %v",
							i, og.Label, res.Groups[g].Expected, og.Expected)
					}
				}
			}
			res, err = eng.Query(bg, rel, refuteQ)
			if tolerate(fmt.Sprintf("querier refute/%d", i), err) && !res.Degraded {
				if res.Exists != oracleRefute.Exists {
					fail("querier refute/%d: exists %v, want %v", i, res.Exists, oracleRefute.Exists)
				}
			}
		}
	}()

	// Deadline querier: budgets already spent — the answer must still
	// come back, flagged degraded, with the oracle inside its bracket.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			ctx, cancel := context.WithDeadline(bg, time.Now().Add(-time.Millisecond))
			res, err := eng.Query(ctx, rel, countQ)
			cancel()
			if !tolerate(fmt.Sprintf("deadline querier/%d", i), err) {
				continue
			}
			if !res.Degraded || res.Bounds == nil {
				fail("deadline querier/%d: expired budget not degraded (%+v)", i, res)
				continue
			}
			if res.Bounds.Lo > oracleCount.Expected || res.Bounds.Hi < oracleCount.Expected {
				fail("deadline querier/%d: oracle %v outside degraded [%v, %v]",
					i, oracleCount.Expected, res.Bounds.Lo, res.Bounds.Hi)
			}
		}
	}()

	// Observer + snapshot reader: live-evidence traffic on the dataset.
	// The first accepted delta conditions the tuple permanently, so the
	// invariant here is serviceability, not equality with the plain
	// relation: observes are accepted (or panic-typed), snapshots resolve,
	// and snapshot queries answer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sig, unsub := ds.Subscribe()
		defer unsub()
		for i := 0; i < iters; i++ {
			if _, err := ds.Observe(bg, obsIndex, obsAttr, obsVal); err != nil {
				tolerate(fmt.Sprintf("observer/%d", i), err)
			}
			select {
			case <-sig:
			default:
			}
			snap, err := ds.Snapshot(bg)
			if !tolerate(fmt.Sprintf("snapshot/%d", i), err) {
				continue
			}
			if _, err := eng.QuerySnapshot(bg, snap, countQ, Pools{}, nil); err != nil {
				tolerate(fmt.Sprintf("snapshot query/%d", i), err)
			}
		}
	}()

	wg.Wait()
	faultinject.Disable()

	mu.Lock()
	defer mu.Unlock()
	for _, f := range failures {
		t.Error(f)
	}

	// The storm is over: the same engine, same caches, reproduces the
	// oracle bit for bit, and its books are intact.
	got, err := chaosStream(t, eng, rel)
	if err != nil {
		t.Fatalf("engine unserviceable after chaos: %v", err)
	}
	if !bytes.Equal(got, oracleStream) {
		t.Error("post-chaos stream differs from oracle")
	}
	res, err := eng.Query(bg, rel, countQ)
	if err != nil || res.Expected != oracleCount.Expected {
		t.Errorf("post-chaos count = %+v (%v), want %v", res, err, oracleCount.Expected)
	}
	st := eng.Stats()
	if st.PanicsRecovered == 0 {
		t.Error("chaos soak recovered no panics — injection points never fired")
	}
	if st.Watchers != 0 {
		t.Errorf("watchers gauge = %d after unsubscribe, want 0", st.Watchers)
	}
}
