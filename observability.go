package repro

import (
	"context"
	"io"

	"repro/internal/obs"
)

// This file exposes the observability layer (internal/obs) through the
// root package: the process-wide metric registry behind GET /metrics,
// per-request trace span recorders, and build identity. The instruments
// themselves live next to the code they measure — the derivation engine,
// the Gibbs samplers, and the query executor register their histograms
// on the default registry at init — so importing repro is enough for
// WriteMetrics to expose the whole stack.

// Trace records named spans for one request. A nil *Trace is a valid
// no-op recorder — code paths observe unconditionally and pay only a
// nil check when tracing is off — so tracing can be threaded through
// contexts without branching. Attaching a Trace to an evaluation
// context (WithTrace) also turns on the query executor's per-tier
// timing; it never changes answers.
type Trace = obs.Trace

// TraceSpan is one recorded span: a name and its duration, the
// {"kind":"trace"} wire schema served by mrslserve's trace=1.
type TraceSpan = obs.Span

// NewTrace returns an empty span recorder.
func NewTrace() *Trace { return obs.NewTrace() }

// WithTrace attaches a span recorder to ctx; engine and executor stages
// observe into it. A nil trace returns ctx unchanged.
func WithTrace(ctx context.Context, tr *Trace) context.Context { return obs.WithTrace(ctx, tr) }

// TraceFrom returns the context's span recorder, or nil (a valid no-op
// recorder) when none is attached.
func TraceFrom(ctx context.Context) *Trace { return obs.TraceFrom(ctx) }

// WriteMetrics writes every registered metric — engine stage histograms,
// Gibbs batch histograms, query plan/exec histograms, and whatever the
// caller registered — in Prometheus text exposition format.
func WriteMetrics(w io.Writer) { obs.Default.WritePrometheus(w) }

// WriteEngineStatsMetrics renders an EngineStats snapshot as Prometheus
// gauges, one per exported counter, named prefix + snake_case(field)
// (e.g. "mrsl_engine_" + CPDHits -> mrsl_engine_cpd_hits).
func WriteEngineStatsMetrics(w io.Writer, prefix string, st EngineStats) {
	obs.WriteStructGauges(w, prefix, st)
}

// EngineStatsMetricNames lists the metric names WriteEngineStatsMetrics
// would emit for the given prefix, in field order — the single source of
// truth scripts/metrics-lint.sh checks documentation against.
func EngineStatsMetricNames(prefix string) []string {
	return obs.StructMetricNames(prefix, EngineStats{})
}

// BuildRevision reports the VCS revision baked into the running binary
// ("unknown" outside a VCS build), as logged at mrslserve startup and
// exported in its build-info metric.
func BuildRevision() string { return obs.BuildRevision() }
