package repro

import (
	"context"

	"repro/internal/derive"
	"repro/internal/query"
)

// This file exposes live evidence through the root package: registered
// datasets that turn a batch Engine into a living probabilistic
// database. A relation is registered once, observations arrive as
// deltas ("tuple 7's income is 50K"), and every later derivation or
// query over the dataset sees Bayesian-conditioned posterior blocks
// instead of the priors. Coherence is exact: the engine's
// content-keyed caches are never stale by construction, and the one
// per-dataset artifact — the conditioned posterior of an observed
// tuple — is invalidated exactly (only the touched tuple's entry) and
// epoch-tagged, so a stale posterior is never served even under
// races or eviction. See EngineStats.Observations,
// EngineStats.InvalidatedEntries, and EngineStats.Watchers for the
// live-evidence counters.

// Live-evidence types re-exported from the derive package.
type (
	// Dataset is a registered relation with live evidence, created with
	// Engine.RegisterDataset. Safe for concurrent use: observes,
	// snapshots, and subscriptions may run from any goroutine.
	Dataset = derive.Dataset
	// DatasetSnapshot is a consistent, immutable view of a dataset for
	// evaluation: the effective relation plus the conditioned posterior
	// blocks of every observed tuple.
	DatasetSnapshot = derive.DatasetSnapshot
	// ObserveResult reports one applied observation delta.
	ObserveResult = derive.ObserveResult
	// Observation is one applied evidence delta: attribute Attr was seen
	// to be value Val (a domain code).
	Observation = derive.Obs
)

// RegisterDataset registers rel as a live dataset on this engine and
// returns its handle, whose ID addresses it in Engine.Dataset and over
// the mrslserve HTTP API. The relation must match the model's schema
// and is retained by reference; the caller must not mutate it
// afterwards. Datasets hold no inference state up front — observing,
// snapshotting, and evaluating lazily resolve blocks through the
// engine's shared caches.
func (e *Engine) RegisterDataset(rel *Relation) (*Dataset, error) {
	return e.eng.RegisterDataset(rel)
}

// RegisterJoinInput registers rel as a join-input dataset: the relation
// keeps its own schema (typically a fragment of the model's attributes
// plus join-key columns the model does not know), so it can be bound as
// a named input of an intensional SPJ query — over HTTP, a registered
// join input stands in for a multipart CSV upload. Join-input datasets
// accept no evidence and cannot be derived or queried on their own;
// Dataset.JoinInput reports the flavor.
func (e *Engine) RegisterJoinInput(rel *Relation) (*Dataset, error) {
	return e.eng.RegisterJoinInput(rel)
}

// Dataset returns the registered dataset with the given id.
func (e *Engine) Dataset(id string) (*Dataset, bool) { return e.eng.Dataset(id) }

// DropDataset unregisters a dataset: watchers wake and observe the
// closed Done channel, later observes fail, and the dataset's
// conditioned blocks are invalidated out of the engine cache. Reports
// whether the id was registered.
func (e *Engine) DropDataset(id string) bool { return e.eng.DropDataset(id) }

// DeriveSnapshot derives the probabilistic database of a dataset
// snapshot and streams it to the sink in input order: observed tuples
// emit their conditioned posterior blocks (or pass through as certain
// tuples after a collapse), and unobserved tuples resolve through the
// engine's shared caches bit-identically to a batch derivation of the
// same relation. Canceling ctx stops the stream.
func (e *Engine) DeriveSnapshot(ctx context.Context, snap *DatasetSnapshot, pools Pools, sink Sink) error {
	if err := e.eng.StreamSnapshot(ctx, snap, pools, derive.EmitFunc(sink.Emit)); err != nil {
		return err
	}
	return sink.Close()
}

// DeriveSnapshotStream is DeriveSnapshot with a raw emit callback
// instead of a Sink.
func (e *Engine) DeriveSnapshotStream(ctx context.Context, snap *DatasetSnapshot, pools Pools, emit func(DeriveItem) error) error {
	return e.eng.StreamSnapshot(ctx, snap, pools, derive.EmitFunc(emit))
}

// QuerySnapshot evaluates a compiled query over a dataset snapshot
// through the plan/executor pipeline, like Engine.QueryStream over a
// plain relation, except that observed tuples are decided from their
// conditioned posterior blocks — exactly and for free, never from the
// prior-evidence vote or bound estimators. Answers are bit-identical
// to deriving the conditioned database naively; the number of tuples
// the plan decided this way is QueryResult.Plan.Observed. progress may
// be nil.
func (e *Engine) QuerySnapshot(ctx context.Context, snap *DatasetSnapshot, q *CompiledQuery, pools Pools, progress QueryProgressFunc) (*QueryResult, error) {
	return query.EvalSnapshot(ctx, e.eng, snap, q, pools, progress)
}

// PlanSnapshot compiles the evaluation plan of q over a dataset
// snapshot without executing it, classifying conditioned tuples into
// the observed tier. The explain primitive for live datasets.
func (e *Engine) PlanSnapshot(ctx context.Context, snap *DatasetSnapshot, q *CompiledQuery) (*QueryPlanInfo, error) {
	return query.PlanSnapshot(ctx, e.eng, snap, q)
}
