package repro

// BenchmarkWatchFanout is the load generator for the subscription
// delivery histogram (mrsl_watch_notify_seconds): many watchers
// subscribed to one live dataset while observation deltas stream in.
// Each iteration applies one fresh, consistent evidence delta — the
// conditioning work plus the coalesced non-blocking fan-out to every
// subscriber — so the published numbers track how delivery latency
// scales with the watcher count. `make bench-watch` publishes the
// series to BENCH_watch.json alongside the other bench JSONs.

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// watchDelta is one pre-validated observation: evidence the tuple's own
// derived block already carries, so the dataset must accept it.
type watchDelta struct {
	index, attr, val int
}

// watchDeltas derives the fixture relation once through eng (warming its
// caches) and collects one consistent delta per incomplete tuple: the
// first missing attribute set to its top-alternative value.
func watchDeltas(b *testing.B, eng *Engine, rel *Relation) []watchDelta {
	b.Helper()
	var deltas []watchDelta
	err := eng.DeriveStream(rel, func(it DeriveItem) error {
		if it.Certain() {
			return nil
		}
		a := it.Tuple.MissingAttrs()[0]
		deltas = append(deltas, watchDelta{it.Index, a, int(it.Block.Alts[0].Tuple[a])})
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	if len(deltas) == 0 {
		b.Fatal("fixture has no incomplete tuples")
	}
	return deltas
}

func BenchmarkWatchFanout(b *testing.B) {
	e := deriveBenchSetup(b)
	ctx := context.Background()
	for _, subs := range []int{1, 16, 128} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			eng, err := NewEngine(e.model, DeriveOptions{
				Method:      BestAveraged(),
				Gibbs:       benchGibbs(),
				VoteWorkers: 4,
				Workers:     4,
			})
			if err != nil {
				b.Fatal(err)
			}
			deltas := watchDeltas(b, eng, e.rel)

			// Each delta applies once per dataset registration, so the
			// dataset (and its watchers) are recycled off the clock
			// whenever the pool runs dry.
			var (
				ds      *Dataset
				cancels []func()
				drain   sync.WaitGroup
			)
			register := func() {
				var err error
				ds, err = eng.RegisterDataset(e.rel)
				if err != nil {
					b.Fatal(err)
				}
				cancels = cancels[:0]
				for s := 0; s < subs; s++ {
					sig, cancel := ds.Subscribe()
					cancels = append(cancels, cancel)
					drain.Add(1)
					done := ds.Done()
					go func() {
						defer drain.Done()
						for {
							select {
							case <-sig:
							case <-done:
								return
							}
						}
					}()
				}
			}
			teardown := func() {
				for _, cancel := range cancels {
					cancel()
				}
				eng.DropDataset(ds.ID())
				drain.Wait()
			}

			register()
			next := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if next == len(deltas) {
					b.StopTimer()
					teardown()
					register()
					next = 0
					b.StartTimer()
				}
				d := deltas[next]
				next++
				if _, err := ds.Observe(ctx, d.index, d.attr, d.val); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			teardown()
			b.ReportMetric(float64(subs), "watchers")
		})
	}
}
