package repro

// SPJ benchmarks: the steady-state cost of serving one SQL statement —
// parse, bind, join-chain fold with lineage, safety analysis, and
// evaluation — on a warm engine, for a safe (hierarchical) plan and for
// an unsafe plan whose exists answer rides the dissociation-propagation
// path. Both join the bench relation's vertical split on a synthetic
// row key; only the key-sharing pattern differs.

import (
	"context"
	"strconv"
	"testing"

	"repro/internal/relation"
)

// spjBenchInputs splits complete bench tuples vertically into
// suitors(attrs[:h], key) and profiles(key, attrs[h:]), with the first
// right attribute missing on damaged profiles (the queried attribute,
// so the uncertainty is always relevant). With share=false every left
// row owns its profile (every plan is hierarchical); with share=true
// four left rows read each profile and every profile is damaged, so
// plans that depend on the right fragment dissociate.
func spjBenchInputs(b *testing.B, env *deriveBenchEnv, share bool) (map[string]*Relation, string) {
	b.Helper()
	s := env.model.Schema
	h := s.NumAttrs() / 2
	var src []Tuple
	for _, t := range env.rel.Tuples {
		if t.IsComplete() {
			src = append(src, t)
		}
	}
	const nLeft = 240
	nRight := nLeft
	if share {
		nRight = nLeft / 4
	}
	keyDom := make([]string, nLeft)
	for i := range keyDom {
		keyDom[i] = "r" + strconv.Itoa(i)
	}
	key := relation.Attribute{Name: "key", Domain: keyDom}
	ls, err := relation.NewSchema(append(append([]relation.Attribute{}, s.Attrs[:h]...), key))
	if err != nil {
		b.Fatal(err)
	}
	rs, err := relation.NewSchema(append([]relation.Attribute{key}, s.Attrs[h:]...))
	if err != nil {
		b.Fatal(err)
	}
	left, right := NewRelation(ls), NewRelation(rs)
	for i := 0; i < nRight; i++ {
		tu := src[i%len(src)]
		rt := make(Tuple, 1+s.NumAttrs()-h)
		rt[0] = i
		copy(rt[1:], tu[h:])
		if share || i%3 == 0 {
			rt[1] = relation.Missing
		}
		if err := right.Append(rt); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < nLeft; i++ {
		tu := src[i%len(src)]
		lt := make(Tuple, h+1)
		copy(lt, tu[:h])
		lt[h] = i % nRight
		if err := left.Append(lt); err != nil {
			b.Fatal(err)
		}
	}
	stmt := "from suitors join profiles on key=key where " +
		s.Attrs[h].Name + "=" + s.Attrs[h].Domain[0]
	return map[string]*Relation{"suitors": left, "profiles": right}, stmt
}

// spjBenchOnce serves one statement end to end on the given engine.
func spjBenchOnce(eng *Engine, schema *Schema, inputs map[string]*Relation,
	stmt string, spec QuerySpec) (*QueryResult, error) {
	st, err := ParseSPJ(stmt)
	if err != nil {
		return nil, err
	}
	spjSpec, err := st.Bind(inputs, spec, false)
	if err != nil {
		return nil, err
	}
	spj, err := CompileSPJ(schema, spjSpec)
	if err != nil {
		return nil, err
	}
	return eng.QuerySPJ(context.Background(), spj)
}

// BenchmarkQuerySafeJoin measures the hierarchical fast path: every
// joined row owns its lineage, so the count answers exactly through the
// extensional pipeline, with the damaged profiles' votes served from
// the warm CPD cache.
func BenchmarkQuerySafeJoin(b *testing.B) {
	env := deriveBenchSetup(b)
	inputs, stmt := spjBenchInputs(b, env, false)
	eng, err := NewEngine(env.model, boundedOpts())
	if err != nil {
		b.Fatal(err)
	}
	spec := QuerySpec{Op: QueryCount}
	res, err := spjBenchOnce(eng, env.model.Schema, inputs, stmt, spec) // warm + sanity
	if err != nil {
		b.Fatal(err)
	}
	if res.Plan == nil || res.Plan.Join == nil || !res.Plan.Join.Safe || res.Dissociated {
		b.Fatalf("fixture is not a safe plan: %+v", res.Plan)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spjBenchOnce(eng, env.model.Schema, inputs, stmt, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryDissociated measures the unsafe-exists path: shared
// damaged profiles break the hierarchy, so the answer is the
// dissociated existence mass with its sound interval, folded from
// cached per-row probabilities without any block expansion.
func BenchmarkQueryDissociated(b *testing.B) {
	env := deriveBenchSetup(b)
	inputs, stmt := spjBenchInputs(b, env, true)
	eng, err := NewEngine(env.model, boundedOpts())
	if err != nil {
		b.Fatal(err)
	}
	spec := QuerySpec{Op: QueryExists}
	res, err := spjBenchOnce(eng, env.model.Schema, inputs, stmt, spec) // warm + sanity
	if err != nil {
		b.Fatal(err)
	}
	if res.Plan == nil || res.Plan.Join == nil || res.Plan.Join.Safe || !res.Dissociated || res.Bounds == nil {
		b.Fatalf("fixture is not a dissociated exists plan: %+v", res.Plan)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spjBenchOnce(eng, env.model.Schema, inputs, stmt, spec); err != nil {
			b.Fatal(err)
		}
	}
}
