package repro

// End-to-end derivation benchmarks. The workload mirrors real dirty data:
// a mix of complete tuples, many duplicated single-missing tuples, and
// duplicated multi-missing tuples.
//
// BenchmarkDerive measures the sequential derivation exactly as the seed
// implemented it: one vote.Infer call per single-missing tuple (no
// memoization across duplicates) followed by workload-driven DAG sampling,
// materializing the whole database. BenchmarkDeriveParallel measures the
// streaming engine with its worker pools open: duplicates hit the shared
// vote cache, blocks stream without materialization, and on multi-core
// hardware the pools add wall-clock parallelism on top. The two produce
// the same blocks (modulo the DAG-vs-independent-chains estimator for
// multi-missing tuples).

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/bn"
	"repro/internal/dist"
	"repro/internal/pdb"
	"repro/internal/relation"
	"repro/internal/vote"
)

type deriveBenchEnv struct {
	model *Model
	rel   *Relation
}

var (
	deriveBenchOnce sync.Once
	deriveBenchCtx  *deriveBenchEnv
)

// deriveBenchSetup builds the shared fixture: a BN9 model and a 600-tuple
// relation with ~20% complete tuples, 32 distinct single-missing damage
// patterns and 8 distinct multi-missing ones, heavily duplicated.
func deriveBenchSetup(b testing.TB) *deriveBenchEnv {
	b.Helper()
	deriveBenchOnce.Do(func() {
		rng := rand.New(rand.NewSource(77))
		top, err := bn.ByID("BN9")
		if err != nil {
			b.Fatal(err)
		}
		inst, err := bn.Instantiate(top, rng)
		if err != nil {
			b.Fatal(err)
		}
		train := inst.SampleRelation(rng, 8000)
		m, err := Learn(train, LearnOptions{SupportThreshold: 0.002})
		if err != nil {
			b.Fatal(err)
		}
		nAttrs := top.NumAttrs()
		var patterns []Tuple
		for i := 0; i < 32; i++ { // single-missing patterns
			tu := inst.Sample(rng)
			tu[rng.Intn(nAttrs)] = relation.Missing
			patterns = append(patterns, tu)
		}
		for i := 0; i < 8; i++ { // multi-missing patterns
			tu := inst.Sample(rng)
			for _, a := range rng.Perm(nAttrs)[:2] {
				tu[a] = relation.Missing
			}
			patterns = append(patterns, tu)
		}
		rel := NewRelation(top.Schema())
		for i := 0; i < 600; i++ {
			var tu Tuple
			if rng.Float64() < 0.2 {
				tu = inst.Sample(rng)
			} else {
				tu = patterns[rng.Intn(len(patterns))].Clone()
			}
			if err := rel.Append(tu); err != nil {
				b.Fatal(err)
			}
		}
		deriveBenchCtx = &deriveBenchEnv{model: m, rel: rel}
	})
	return deriveBenchCtx
}

func benchGibbs() GibbsOptions {
	return GibbsOptions{Samples: 200, BurnIn: 30, Seed: 31, Method: BestAveraged()}
}

// legacyDerive is the seed's sequential Derive, kept verbatim as the
// benchmark baseline: single-missing tuples are voted one at a time with
// no cross-tuple memoization, multi-missing tuples go through the
// workload-driven DAG sampler, and the whole database is materialized.
func legacyDerive(m *Model, rel *Relation, opt DeriveOptions) (*Database, error) {
	db := pdb.NewDatabase(rel.Schema)
	var multi []Tuple
	for _, t := range rel.Tuples {
		if t.IsComplete() {
			if err := db.AddCertain(t); err != nil {
				return nil, err
			}
		} else if t.NumMissing() > 1 {
			multi = append(multi, t)
		}
	}
	for _, t := range rel.Tuples {
		if t.IsComplete() || t.NumMissing() != 1 {
			continue
		}
		attr := t.MissingAttrs()[0]
		d, err := vote.Infer(m, t, attr, opt.Method)
		if err != nil {
			return nil, err
		}
		j, err := dist.NewJoint([]int{attr}, []int{m.Schema.Attrs[attr].Card()})
		if err != nil {
			return nil, err
		}
		copy(j.P, d)
		b, err := pdb.NewBlock(t, j, opt.MaxAlternatives)
		if err != nil {
			return nil, err
		}
		if err := db.AddBlock(b); err != nil {
			return nil, err
		}
	}
	if len(multi) > 0 {
		tuples, joints, err := InferWorkload(m, multi, opt.Gibbs)
		if err != nil {
			return nil, err
		}
		byKey := make(map[string]*Joint, len(tuples))
		for i, t := range tuples {
			byKey[t.Key()] = joints[i]
		}
		for _, t := range multi {
			b, err := pdb.NewBlock(t, byKey[t.Key()], opt.MaxAlternatives)
			if err != nil {
				return nil, err
			}
			if err := db.AddBlock(b); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

// BenchmarkDerive is the sequential baseline (the seed's algorithm).
func BenchmarkDerive(b *testing.B) {
	e := deriveBenchSetup(b)
	opt := DeriveOptions{Method: BestAveraged(), Gibbs: benchGibbs()}
	b.ResetTimer()
	var blocks int
	for i := 0; i < b.N; i++ {
		db, err := legacyDerive(e.model, e.rel, opt)
		if err != nil {
			b.Fatal(err)
		}
		blocks = len(db.Blocks)
	}
	b.ReportMetric(float64(blocks), "blocks")
}

// BenchmarkEngineConcurrent measures serving throughput of one long-lived
// engine under 1, 4, and 16 concurrent DeriveStream requests over the
// shared fixture relation. The evidence-keyed caches are warmed by one
// full stream before the timer starts, so every measured iteration — b.N
// included — is the steady-state serving regime mrslserve runs in, where
// repeated damage patterns are answered from memory; the published
// numbers are therefore comparable run to run even at small -benchtime.
// The tuples/s metric counts input tuples served across all streams.
func BenchmarkEngineConcurrent(b *testing.B) {
	for _, streams := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("streams=%d", streams), func(b *testing.B) {
			e := deriveBenchSetup(b)
			eng, err := NewEngine(e.model, DeriveOptions{
				Method:      BestAveraged(),
				Gibbs:       benchGibbs(),
				VoteWorkers: 4,
				Workers:     4,
			})
			if err != nil {
				b.Fatal(err)
			}
			// Warm the engine caches so iteration 1 measures steady-state
			// serving, not first-contact inference.
			if err := eng.DeriveStream(e.rel, func(DeriveItem) error { return nil }); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				errs := make(chan error, streams)
				for s := 0; s < streams; s++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						errs <- eng.DeriveStream(e.rel, func(DeriveItem) error { return nil })
					}()
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
			served := float64(e.rel.Len()) * float64(streams) * float64(b.N)
			b.ReportMetric(served/b.Elapsed().Seconds(), "tuples/s")
		})
	}
}

// BenchmarkDeriveParallel streams the same derivation through the engine
// with 8 voting workers and 8 Gibbs chains.
func BenchmarkDeriveParallel(b *testing.B) {
	e := deriveBenchSetup(b)
	opt := DeriveOptions{
		Method:      BestAveraged(),
		Gibbs:       benchGibbs(),
		VoteWorkers: 8,
		Workers:     8,
	}
	b.ResetTimer()
	var blocks int
	for i := 0; i < b.N; i++ {
		blocks = 0
		err := DeriveStream(e.model, e.rel, opt, func(it DeriveItem) error {
			if !it.Certain() {
				blocks++
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(blocks), "blocks")
}
