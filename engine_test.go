package repro

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/bn"
	"repro/internal/relation"
)

// sameDatabase is requireSameDatabase as an error (safe to call from
// worker goroutines, which must not t.Fatal).
func sameDatabase(want, got *Database) error {
	if len(want.Certain) != len(got.Certain) || len(want.Blocks) != len(got.Blocks) {
		return fmt.Errorf("shape differs: %d/%d certain, %d/%d blocks",
			len(want.Certain), len(got.Certain), len(want.Blocks), len(got.Blocks))
	}
	for i := range want.Certain {
		if want.Certain[i].Key() != got.Certain[i].Key() {
			return fmt.Errorf("certain tuple %d differs", i)
		}
	}
	for i := range want.Blocks {
		wb, gb := want.Blocks[i], got.Blocks[i]
		if wb.Base.Key() != gb.Base.Key() || len(wb.Alts) != len(gb.Alts) {
			return fmt.Errorf("block %d shape differs", i)
		}
		for k := range wb.Alts {
			if wb.Alts[k].Prob != gb.Alts[k].Prob ||
				wb.Alts[k].Tuple.Key() != gb.Alts[k].Tuple.Key() {
				return fmt.Errorf("block %d alt %d differs: %v vs %v",
					i, k, wb.Alts[k], gb.Alts[k])
			}
		}
	}
	return nil
}

// soakOptions select the chain sampler (content-seeded, so outputs are
// independent of scheduling and of which request warmed the cache).
func soakOptions() DeriveOptions {
	return DeriveOptions{
		Method:      BestAveraged(),
		Workers:     2,
		VoteWorkers: 2,
		Gibbs:       GibbsOptions{Samples: 120, BurnIn: 15, Seed: 19, Method: BestAveraged()},
	}
}

// soakFixture builds one model and several distinct relations that share
// some damage patterns (so concurrent requests contend for the same cache
// entries) and keep some private ones.
func soakFixture(t *testing.T, relations int) (*Model, []*Relation) {
	t.Helper()
	rng := rand.New(rand.NewSource(71))
	top, err := bn.ByID("BN8")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := bn.Instantiate(top, rng)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Learn(inst.SampleRelation(rng, 2500), LearnOptions{SupportThreshold: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	nAttrs := top.NumAttrs()
	shared := make([]Tuple, 6)
	for i := range shared {
		tu := inst.Sample(rng)
		k := 1 + rng.Intn(2)
		for _, a := range rng.Perm(nAttrs)[:k] {
			tu[a] = relation.Missing
		}
		shared[i] = tu
	}
	rels := make([]*Relation, relations)
	for r := range rels {
		rel := NewRelation(top.Schema())
		private := inst.Sample(rng)
		private[r%nAttrs] = relation.Missing
		for i := 0; i < 40; i++ {
			var tu Tuple
			switch {
			case rng.Float64() < 0.3:
				tu = inst.Sample(rng)
			case rng.Float64() < 0.3:
				tu = private.Clone()
			default:
				tu = shared[rng.Intn(len(shared))].Clone()
			}
			if err := rel.Append(tu); err != nil {
				t.Fatal(err)
			}
		}
		rels[r] = rel
	}
	return m, rels
}

// TestEngineConcurrentSoak is the serving-engine soak (run it under
// -race): many goroutines issue overlapping DeriveStream calls over
// distinct relations sharing one engine. Every request's output must be
// bit-identical to a fresh single-request engine's, the shared caches
// must dedup across requests (each distinct pattern inferred once for the
// engine's lifetime), and the cache counters must be monotonic.
func TestEngineConcurrentSoak(t *testing.T) {
	const (
		numRelations = 5
		workersPer   = 3 // goroutines per relation
		iterations   = 2 // streams per goroutine
	)
	m, rels := soakFixture(t, numRelations)

	// Per-relation reference outputs from throwaway engines.
	expected := make([]*Database, numRelations)
	for r, rel := range rels {
		db, err := Derive(m, rel, soakOptions())
		if err != nil {
			t.Fatal(err)
		}
		expected[r] = db
	}

	eng, err := NewEngine(m, soakOptions())
	if err != nil {
		t.Fatal(err)
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		snaps []EngineStats
		fails = make(chan error, numRelations*workersPer*iterations)
	)
	for r := 0; r < numRelations; r++ {
		for w := 0; w < workersPer; w++ {
			wg.Add(1)
			go func(r, w int) {
				defer wg.Done()
				for it := 0; it < iterations; it++ {
					c := NewCollector(rels[r].Schema)
					// Vary the request sharding too; it must not matter.
					err := eng.DeriveToPools(rels[r], Pools{VoteWorkers: 1 + w, GibbsWorkers: 1 + it}, c)
					if err != nil {
						fails <- fmt.Errorf("relation %d worker %d: %v", r, w, err)
						return
					}
					if err := sameDatabase(expected[r], c.Database()); err != nil {
						fails <- fmt.Errorf("relation %d worker %d iteration %d: not deterministic: %v", r, w, it, err)
						return
					}
					mu.Lock()
					snaps = append(snaps, eng.Stats())
					mu.Unlock()
				}
			}(r, w)
		}
	}
	wg.Wait()
	close(fails)
	for err := range fails {
		t.Error(err)
	}

	// Counters are monotonic in snapshot order.
	for i := 1; i < len(snaps); i++ {
		a, b := snaps[i-1], snaps[i]
		if b.VotesComputed < a.VotesComputed || b.SingleTuples < a.SingleTuples ||
			b.GibbsComputed < a.GibbsComputed || b.MultiTuples < a.MultiTuples ||
			b.GibbsCacheHits < a.GibbsCacheHits || b.PointsSampled < a.PointsSampled ||
			b.Streams < a.Streams {
			t.Fatalf("cache counters are not monotonic: snapshot %d %+v -> %+v", i, a, b)
		}
	}

	// The shared caches deduped across every request: each distinct
	// pattern was inferred exactly once for the engine's lifetime, and
	// every tuple of every request was served.
	distinctSingle, distinctMulti := make(map[string]bool), make(map[string]bool)
	var singles, multis int64
	for _, rel := range rels {
		for _, tu := range rel.Tuples {
			switch {
			case tu.IsComplete():
			case tu.NumMissing() == 1:
				distinctSingle[tu.Key()] = true
				singles++
			default:
				distinctMulti[tu.Key()] = true
				multis++
			}
		}
	}
	runs := int64(workersPer * iterations)
	st := eng.Stats()
	if st.Streams != int64(numRelations)*runs {
		t.Errorf("streams = %d, want %d", st.Streams, int64(numRelations)*runs)
	}
	if st.VotesComputed != int64(len(distinctSingle)) {
		t.Errorf("votes computed = %d, want %d distinct patterns", st.VotesComputed, len(distinctSingle))
	}
	if st.SingleTuples != runs*singles {
		t.Errorf("single tuples served = %d, want %d", st.SingleTuples, runs*singles)
	}
	if st.GibbsComputed != int64(len(distinctMulti)) {
		t.Errorf("gibbs computed = %d, want %d distinct patterns", st.GibbsComputed, len(distinctMulti))
	}
	if st.MultiTuples != runs*multis {
		t.Errorf("multi tuples served = %d, want %d", st.MultiTuples, runs*multis)
	}
}

// TestEngineDAGConcurrentSingleFlight: in DAG mode (Workers <= 1),
// overlapping streams over the same workload must not re-sample it —
// DAG batches are serialized, so the second request is served from the
// joint cache.
func TestEngineDAGConcurrentSingleFlight(t *testing.T) {
	m, rels := soakFixture(t, 1)
	rel := rels[0]
	opt := soakOptions()
	opt.Workers = 0 // tuple-DAG sampler
	eng, err := NewEngine(m, opt)
	if err != nil {
		t.Fatal(err)
	}
	const concurrent = 4
	var wg sync.WaitGroup
	errs := make(chan error, concurrent)
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- eng.DeriveStream(rel, func(DeriveItem) error { return nil })
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	distinct := make(map[string]bool)
	for _, tu := range rel.Tuples {
		if !tu.IsComplete() && tu.NumMissing() > 1 {
			distinct[tu.Key()] = true
		}
	}
	st := eng.Stats()
	if st.GibbsComputed != int64(len(distinct)) {
		t.Errorf("concurrent DAG streams sampled %d joints, want %d (no re-sampling)",
			st.GibbsComputed, len(distinct))
	}
	if st.Streams != concurrent {
		t.Errorf("streams = %d, want %d", st.Streams, concurrent)
	}
}

// TestHitRatesNeverNegative: prefetch pools run ahead of emitters, so a
// snapshot can show more patterns computed than tuples served; the rates
// clamp instead of going negative.
func TestHitRatesNeverNegative(t *testing.T) {
	st := EngineStats{SingleTuples: 1, VotesComputed: 5, MultiTuples: 1, GibbsComputed: 4}
	if got := st.VoteHitRate(); got != 0 {
		t.Errorf("VoteHitRate = %v, want 0 (clamped)", got)
	}
	if got := st.GibbsHitRate(); got != 0 {
		t.Errorf("GibbsHitRate = %v, want 0 (clamped)", got)
	}
}

// TestDeriveStreamSchemaMismatch: a relation whose schema is not the
// model's fails up front with a typed error, before emit ever runs.
func TestDeriveStreamSchemaMismatch(t *testing.T) {
	m, rel := matchmakingModel(t)

	// Same labels, different domain order: value codes disagree, so this
	// must be rejected (it is exactly the silent-corruption case).
	attrs := make([]Attribute, len(rel.Schema.Attrs))
	copy(attrs, rel.Schema.Attrs)
	attrs[1] = Attribute{Name: attrs[1].Name, Domain: []string{"BS", "HS", "MS"}}
	reordered, err := NewSchema(attrs)
	if err != nil {
		t.Fatal(err)
	}
	bad := NewRelation(reordered)
	if err := bad.Append(Tuple{0, 0, Missing, 0}); err != nil {
		t.Fatal(err)
	}

	emitted := 0
	err = DeriveStream(m, bad, DeriveOptions{}, func(DeriveItem) error {
		emitted++
		return nil
	})
	var mismatch *SchemaMismatchError
	if !errors.As(err, &mismatch) {
		t.Fatalf("DeriveStream error = %v, want *SchemaMismatchError", err)
	}
	if mismatch.Diff == "" || mismatch.Model == nil || mismatch.Data == nil {
		t.Errorf("mismatch error is missing detail: %+v", mismatch)
	}
	if emitted != 0 {
		t.Errorf("emit ran %d times before the schema check", emitted)
	}

	// Derive and the Engine path return the same typed error.
	if _, err := Derive(m, bad, DeriveOptions{}); !errors.As(err, &mismatch) {
		t.Errorf("Derive error = %v, want *SchemaMismatchError", err)
	}
	eng, err := NewEngine(m, DeriveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.DeriveTo(bad, NewCollector(reordered)); !errors.As(err, &mismatch) {
		t.Errorf("Engine.DeriveTo error = %v, want *SchemaMismatchError", err)
	}

	// Wrong attribute count fails the same way.
	twoCol, err := NewSchema(attrs[:2])
	if err != nil {
		t.Fatal(err)
	}
	short := NewRelation(twoCol)
	if err := short.Append(Tuple{Missing, 0}); err != nil {
		t.Fatal(err)
	}
	if err := DeriveStream(m, short, DeriveOptions{}, func(DeriveItem) error { return nil }); !errors.As(err, &mismatch) {
		t.Errorf("short schema error = %v, want *SchemaMismatchError", err)
	}

	// The matching schema still streams fine (control).
	if _, err := Derive(m, rel, DeriveOptions{Gibbs: GibbsOptions{Samples: 50, BurnIn: 5, Seed: 1}}); err != nil {
		t.Errorf("matching schema failed: %v", err)
	}
}

// TestEngineStatsSnapshot: Stats is a consistent snapshot usable while
// streams run; pdb invariants of a cache-served second derivation hold.
func TestEngineStatsSnapshot(t *testing.T) {
	m, rel := matchmakingModel(t)
	eng, err := NewEngine(m, DeriveOptions{
		Workers: 2,
		Gibbs:   GibbsOptions{Samples: 80, BurnIn: 10, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	first, err := eng.Derive(rel)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Streams != 1 || st.VotesComputed == 0 || st.GibbsComputed == 0 {
		t.Errorf("unexpected stats after first stream: %+v", st)
	}
	second, err := eng.Derive(rel)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameDatabase(first, second); err != nil {
		t.Errorf("cache-served rerun differs: %v", err)
	}
	st2 := eng.Stats()
	if st2.VotesComputed != st.VotesComputed || st2.GibbsComputed != st.GibbsComputed {
		t.Errorf("rerun recomputed cached patterns: %+v -> %+v", st, st2)
	}
	if st2.GibbsCacheHits <= st.GibbsCacheHits {
		t.Errorf("rerun did not hit the joint cache: %d -> %d", st.GibbsCacheHits, st2.GibbsCacheHits)
	}
	for _, b := range second.Blocks {
		if b.ProbSum() < 0.999999 || b.ProbSum() > 1.000001 {
			t.Errorf("block mass %v", b.ProbSum())
		}
	}
}
