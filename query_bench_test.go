package repro

// BenchmarkQuerySelective measures the query subsystem's reason to
// exist: a selective count over the standard derivation workload,
// answered through Engine.Query's evidence- and bound-based pruning,
// against the same answer computed by deriving every block and filtering
// the stream. Every iteration runs on a fresh engine, so the gap is
// pruning — tuples never inferred — not cache warmth; the two paths are
// asserted bit-identical before the timer starts.

import (
	"context"
	"testing"
)

func BenchmarkQuerySelective(b *testing.B) {
	env := deriveBenchSetup(b)
	opt := DeriveOptions{Method: BestAveraged(), Workers: 4, Gibbs: benchGibbs()}

	// A selective conjunction: the first complete tuple's values on its
	// two most selective attributes (the ones whose value is rarest in
	// the workload), so most damage patterns are refuted by their
	// evidence alone.
	var w Tuple
	for _, t := range env.rel.Tuples {
		if t.IsComplete() {
			w = t
			break
		}
	}
	nAttrs := env.model.Schema.NumAttrs()
	freq := make([]int, nAttrs)
	for _, t := range env.rel.Tuples {
		for a := 0; a < nAttrs; a++ {
			if t[a] == w[a] {
				freq[a]++
			}
		}
	}
	a1, a2 := 0, 1
	for a := 0; a < nAttrs; a++ {
		switch {
		case freq[a] < freq[a1]:
			a1, a2 = a, a1
		case a != a1 && freq[a] < freq[a2]:
			a2 = a
		}
	}
	preds := []QueryPred{
		{Attr: a1, Cmp: QueryEq, Value: w[a1]},
		{Attr: a2, Cmp: QueryEq, Value: w[a2]},
	}
	q, err := CompileQuery(env.model.Schema, QuerySpec{Op: QueryCount, Preds: preds})
	if err != nil {
		b.Fatal(err)
	}
	matches := func(t Tuple) bool { return t[a1] == w[a1] && t[a2] == w[a2] }
	ctx := context.Background()

	queryOnce := func() (*QueryResult, error) {
		eng, err := NewEngine(env.model, opt)
		if err != nil {
			return nil, err
		}
		return eng.Query(ctx, env.rel, q)
	}
	filterOnce := func() (float64, error) {
		eng, err := NewEngine(env.model, opt)
		if err != nil {
			return 0, err
		}
		var expected float64
		err = eng.DeriveStream(env.rel, func(it DeriveItem) error {
			if it.Certain() {
				if matches(it.Tuple) {
					expected++
				}
				return nil
			}
			// Per-tuple satisfaction probability, then fold — the same
			// association the evaluator uses, so the comparison is
			// bit-exact.
			var p float64
			for _, a := range it.Block.Alts {
				if matches(a.Tuple) {
					p += a.Prob
				}
			}
			expected += p
			return nil
		})
		return expected, err
	}

	// Sanity outside the timer: identical answers, genuine pruning.
	res, err := queryOnce()
	if err != nil {
		b.Fatal(err)
	}
	full, err := filterOnce()
	if err != nil {
		b.Fatal(err)
	}
	if res.Expected != full {
		b.Fatalf("query answer %v differs from derive-then-filter %v", res.Expected, full)
	}
	if res.Counters.Pruned == 0 || res.Counters.Derived+res.Counters.Bounded >= res.Counters.Scanned {
		b.Fatalf("workload is not selective: %+v", res.Counters)
	}

	b.Run("engine-query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := queryOnce(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("derive-then-filter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := filterOnce(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
