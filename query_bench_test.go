package repro

// BenchmarkQuerySelective measures the query subsystem's reason to
// exist: a selective count over the standard derivation workload,
// answered through Engine.Query's evidence- and bound-based pruning,
// against the same answer computed by deriving every block and filtering
// the stream. Every iteration runs on a fresh engine, so the gap is
// pruning — tuples never inferred — not cache warmth; the two paths are
// asserted bit-identical before the timer starts.

import (
	"context"
	"testing"

	"repro/internal/relation"
)

func BenchmarkQuerySelective(b *testing.B) {
	env := deriveBenchSetup(b)
	opt := DeriveOptions{Method: BestAveraged(), Workers: 4, Gibbs: benchGibbs()}

	// A selective conjunction: the first complete tuple's values on its
	// two most selective attributes (the ones whose value is rarest in
	// the workload), so most damage patterns are refuted by their
	// evidence alone.
	var w Tuple
	for _, t := range env.rel.Tuples {
		if t.IsComplete() {
			w = t
			break
		}
	}
	nAttrs := env.model.Schema.NumAttrs()
	freq := make([]int, nAttrs)
	for _, t := range env.rel.Tuples {
		for a := 0; a < nAttrs; a++ {
			if t[a] == w[a] {
				freq[a]++
			}
		}
	}
	a1, a2 := 0, 1
	for a := 0; a < nAttrs; a++ {
		switch {
		case freq[a] < freq[a1]:
			a1, a2 = a, a1
		case a != a1 && freq[a] < freq[a2]:
			a2 = a
		}
	}
	preds := []QueryPred{
		{Attr: a1, Cmp: QueryEq, Value: w[a1]},
		{Attr: a2, Cmp: QueryEq, Value: w[a2]},
	}
	q, err := CompileQuery(env.model.Schema, QuerySpec{Op: QueryCount, Preds: preds})
	if err != nil {
		b.Fatal(err)
	}
	matches := func(t Tuple) bool { return t[a1] == w[a1] && t[a2] == w[a2] }
	ctx := context.Background()

	queryOnce := func() (*QueryResult, error) {
		eng, err := NewEngine(env.model, opt)
		if err != nil {
			return nil, err
		}
		return eng.Query(ctx, env.rel, q)
	}
	filterOnce := func() (float64, error) {
		eng, err := NewEngine(env.model, opt)
		if err != nil {
			return 0, err
		}
		var expected float64
		err = eng.DeriveStream(env.rel, func(it DeriveItem) error {
			if it.Certain() {
				if matches(it.Tuple) {
					expected++
				}
				return nil
			}
			// Per-tuple satisfaction probability, then fold — the same
			// association the evaluator uses, so the comparison is
			// bit-exact.
			var p float64
			for _, a := range it.Block.Alts {
				if matches(a.Tuple) {
					p += a.Prob
				}
			}
			expected += p
			return nil
		})
		return expected, err
	}

	// Sanity outside the timer: identical answers, genuine pruning.
	res, err := queryOnce()
	if err != nil {
		b.Fatal(err)
	}
	full, err := filterOnce()
	if err != nil {
		b.Fatal(err)
	}
	if res.Expected != full {
		b.Fatalf("query answer %v differs from derive-then-filter %v", res.Expected, full)
	}
	if res.Counters.Pruned == 0 || res.Counters.Derived+res.Counters.Bounded >= res.Counters.Scanned {
		b.Fatalf("workload is not selective: %+v", res.Counters)
	}

	b.Run("engine-query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := queryOnce(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("derive-then-filter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := filterOnce(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// boundedQueryFixture builds the multi-missing-heavy workload behind
// BenchmarkQueryPlanner and BenchmarkQueryBounded: the standard bench
// model, a relation where half the tuples miss both predicate
// attributes (drawn from a small pattern pool), and a selective
// thresholded count whose predicates carry the workload's two rarest
// attribute values.
func boundedQueryFixture(b *testing.B) (*deriveBenchEnv, *Relation, *CompiledQuery, []QueryPred) {
	env := deriveBenchSetup(b)
	s := env.model.Schema

	// The two attributes whose rarest values are the most selective
	// equality predicates the workload supports.
	nAttrs := s.NumAttrs()
	freq := make([][]int, nAttrs)
	for a := range freq {
		freq[a] = make([]int, s.Attrs[a].Card())
	}
	complete := 0
	for _, t := range env.rel.Tuples {
		if !t.IsComplete() {
			continue
		}
		complete++
		for a, v := range t {
			freq[a][v]++
		}
	}
	type rare struct{ attr, val, count int }
	best := rare{attr: -1}
	second := rare{attr: -1}
	for a := range freq {
		r := rare{attr: a, val: 0, count: complete + 1}
		for v, c := range freq[a] {
			if c > 0 && c < r.count {
				r.val, r.count = v, c
			}
		}
		switch {
		case best.attr < 0 || r.count < best.count:
			best, second = r, best
		case second.attr < 0 || r.count < second.count:
			second = r
		}
	}

	// Half the relation misses both predicate attributes: the tuples the
	// bound engine must decide without sampling.
	patterns := make([]Tuple, 12)
	pi := 0
	for _, t := range env.rel.Tuples {
		if !t.IsComplete() {
			continue
		}
		tu := t.Clone()
		tu[best.attr], tu[second.attr] = relation.Missing, relation.Missing
		patterns[pi%len(patterns)] = tu
		pi++
		if pi >= len(patterns) {
			break
		}
	}
	rel := NewRelation(s)
	i := 0
	for _, t := range env.rel.Tuples {
		if !t.IsComplete() {
			continue
		}
		var tu Tuple
		if i%2 == 0 {
			tu = t
		} else {
			tu = patterns[i%len(patterns)]
		}
		if err := rel.Append(tu); err != nil {
			b.Fatal(err)
		}
		i++
	}

	preds := []QueryPred{
		{Attr: best.attr, Cmp: QueryEq, Value: best.val},
		{Attr: second.attr, Cmp: QueryEq, Value: second.val},
	}
	q, err := CompileQuery(s, QuerySpec{Op: QueryCount, Preds: preds, MinProb: 0.6})
	if err != nil {
		b.Fatal(err)
	}
	return env, rel, q, preds
}

// boundedOpts is the engine configuration of the bounded-query
// benchmarks: chains mode with enough samples for tight dissociation
// intervals.
func boundedOpts() DeriveOptions {
	return DeriveOptions{
		Method:  BestAveraged(),
		Workers: 4,
		Gibbs:   GibbsOptions{Samples: 800, BurnIn: 50, Seed: 31, Method: BestAveraged()},
	}
}

// BenchmarkQueryPlanner measures plan compilation alone on a warm
// engine: tuple classification, selectivity ordering, and the
// dissociation intervals served from the memoized envelopes.
func BenchmarkQueryPlanner(b *testing.B) {
	env, rel, q, _ := boundedQueryFixture(b)
	ctx := context.Background()
	eng, err := NewEngine(env.model, boundedOpts())
	if err != nil {
		b.Fatal(err)
	}
	// Warm the envelope and CPD caches once; the steady-state planner is
	// what serving pays per query.
	if _, err := eng.PlanQuery(ctx, rel, q); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.PlanQuery(ctx, rel, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryBounded measures the bound engine's reason to exist: a
// selective thresholded count over a multi-missing-heavy workload,
// answered through dissociation intervals, against deriving every block
// and filtering. Every iteration runs on a fresh engine, so the gap is
// chains never run — not cache warmth; the two paths are asserted
// bit-identical (and the bounds genuinely decisive) before the timer
// starts.
func BenchmarkQueryBounded(b *testing.B) {
	env, rel, q, preds := boundedQueryFixture(b)
	ctx := context.Background()
	matches := func(t Tuple) bool {
		for _, p := range preds {
			if t[p.Attr] != p.Value { // the fixture's predicates are equalities
				return false
			}
		}
		return true
	}

	queryOnce := func() (*QueryResult, error) {
		eng, err := NewEngine(env.model, boundedOpts())
		if err != nil {
			return nil, err
		}
		return eng.Query(ctx, rel, q)
	}
	filterOnce := func() (int64, error) {
		eng, err := NewEngine(env.model, boundedOpts())
		if err != nil {
			return 0, err
		}
		var count int64
		err = eng.DeriveStream(rel, func(it DeriveItem) error {
			var p float64
			if it.Certain() {
				if matches(it.Tuple) {
					p = 1
				}
			} else {
				for _, a := range it.Block.Alts {
					if matches(a.Tuple) {
						p += a.Prob
					}
				}
			}
			if p >= q.MinProb() {
				count++
			}
			return nil
		})
		return count, err
	}

	// Sanity outside the timer: identical answers, and the bounds decide
	// at least half the multi-missing tuples without sampling.
	res, err := queryOnce()
	if err != nil {
		b.Fatal(err)
	}
	full, err := filterOnce()
	if err != nil {
		b.Fatal(err)
	}
	if res.Count != full {
		b.Fatalf("bounded count %d differs from derive-then-filter %d", res.Count, full)
	}
	var multi int64
	for _, t := range rel.Tuples {
		if t.NumMissing() > 1 {
			multi++
		}
	}
	if multi == 0 || res.Counters.Derived*2 > multi {
		b.Fatalf("bounds not decisive: derived %d of %d multi-missing tuples", res.Counters.Derived, multi)
	}

	b.Run("bounded-query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := queryOnce(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("derive-then-filter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := filterOnce(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
