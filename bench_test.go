package repro

// Benchmarks, one per table and figure of the paper's evaluation section
// (plus ablations for the design decisions called out in DESIGN.md).
// Each benchmark measures the operation that the corresponding figure
// times; cmd/mrslbench regenerates the figures' actual data series at
// quick or paper scale.
//
//	Table I  -> BenchmarkTable1Catalog
//	Fig 4(a) -> BenchmarkFig4aLearningByTrainSize
//	Fig 4(b) -> BenchmarkFig4bLearningBySupport
//	Fig 4(c) -> BenchmarkFig4cModelSize
//	Table II -> BenchmarkTable2Voting
//	Fig 5    -> BenchmarkFig5AccuracyByTrainSize
//	Fig 6    -> BenchmarkFig6AccuracyBySupport
//	Fig 7    -> BenchmarkFig7Render
//	Fig 8    -> BenchmarkFig8NetworkProperties
//	Fig 9    -> BenchmarkFig9SingleInference
//	Fig 10   -> BenchmarkFig10GibbsAccuracy
//	Fig 11   -> BenchmarkFig11TupleAtATime / BenchmarkFig11TupleDAG

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/baseline"
	"repro/internal/bn"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/gibbs"
	"repro/internal/itemset"
	"repro/internal/relation"
	"repro/internal/vote"
)

// benchEnv caches expensive fixtures (instances, datasets, models) across
// benchmark iterations and sub-benchmarks.
type benchEnv struct {
	inst  *bn.Instance
	train *relation.Relation
	model *core.Model
}

var (
	benchMu    sync.Mutex
	benchCache = map[string]*benchEnv{}
)

// getEnv returns a cached environment for (network, trainSize, support).
func getEnv(b *testing.B, network string, trainSize int, support float64) *benchEnv {
	b.Helper()
	key := fmt.Sprintf("%s/%d/%g", network, trainSize, support)
	benchMu.Lock()
	defer benchMu.Unlock()
	if e, ok := benchCache[key]; ok {
		return e
	}
	rng := rand.New(rand.NewSource(42))
	top, err := bn.ByID(network)
	if err != nil {
		b.Fatal(err)
	}
	inst, err := bn.Instantiate(top, rng)
	if err != nil {
		b.Fatal(err)
	}
	train := inst.SampleRelation(rng, trainSize)
	model, err := core.Learn(train, core.Config{SupportThreshold: support})
	if err != nil {
		b.Fatal(err)
	}
	e := &benchEnv{inst: inst, train: train, model: model}
	benchCache[key] = e
	return e
}

// benchWorkload builds incomplete tuples from fresh samples.
func benchWorkload(e *benchEnv, seed int64, n, missing int) []relation.Tuple {
	rng := rand.New(rand.NewSource(seed))
	nAttrs := e.inst.Top.NumAttrs()
	if missing >= nAttrs {
		missing = nAttrs - 1
	}
	out := make([]relation.Tuple, n)
	for i := range out {
		tu := e.inst.Sample(rng)
		k := missing
		if k <= 0 {
			k = 1 + rng.Intn(nAttrs-1)
		}
		for _, a := range rng.Perm(nAttrs)[:k] {
			tu[a] = relation.Missing
		}
		out[i] = tu
	}
	return out
}

// BenchmarkTable1Catalog measures catalog construction and validation
// (Table I).
func BenchmarkTable1Catalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, top := range bn.Catalog() {
			if err := top.Validate(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig4aLearningByTrainSize measures MRSL learning time as training
// size grows, at the paper's Fig 4(a) support of 0.02.
func BenchmarkFig4aLearningByTrainSize(b *testing.B) {
	for _, size := range []int{1000, 5000, 20000} {
		e := getEnv(b, "BN9", size, 0.02) // fixture reuse for the dataset
		b.Run(fmt.Sprintf("train=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Learn(e.train, core.Config{SupportThreshold: 0.02}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig4bLearningBySupport measures learning time across support
// thresholds (Fig 4(b)).
func BenchmarkFig4bLearningBySupport(b *testing.B) {
	e := getEnv(b, "BN10", 10000, 0.02)
	for _, sup := range []float64{0.001, 0.01, 0.1} {
		b.Run(fmt.Sprintf("support=%g", sup), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Learn(e.train, core.Config{SupportThreshold: sup}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig4cModelSize reports the resulting model size per support
// threshold as a benchmark metric (Fig 4(c)).
func BenchmarkFig4cModelSize(b *testing.B) {
	e := getEnv(b, "BN10", 10000, 0.02)
	for _, sup := range []float64{0.001, 0.01, 0.1} {
		b.Run(fmt.Sprintf("support=%g", sup), func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				m, err := core.Learn(e.train, core.Config{SupportThreshold: sup})
				if err != nil {
					b.Fatal(err)
				}
				size = m.Size()
			}
			b.ReportMetric(float64(size), "meta-rules")
		})
	}
}

// BenchmarkTable2Voting measures single-attribute inference per voting
// method (Table II's four columns).
func BenchmarkTable2Voting(b *testing.B) {
	e := getEnv(b, "BN9", 20000, 0.001)
	workload := benchWorkload(e, 7, 256, 1)
	for _, method := range vote.Methods() {
		b.Run(method.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tu := workload[i%len(workload)]
				attr := tu.MissingAttrs()[0]
				if _, err := vote.Infer(e.model, tu, attr, method); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig5AccuracyByTrainSize measures the accuracy-evaluation loop at
// two training sizes (Fig 5's x-axis).
func BenchmarkFig5AccuracyByTrainSize(b *testing.B) {
	for _, size := range []int{2000, 20000} {
		e := getEnv(b, "BN8", size, 0.001)
		workload := benchWorkload(e, 8, 64, 1)
		method := vote.Method{Choice: core.BestVoters, Scheme: vote.Averaged}
		b.Run(fmt.Sprintf("train=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tu := workload[i%len(workload)]
				attr := tu.MissingAttrs()[0]
				pred, err := vote.Infer(e.model, tu, attr, method)
				if err != nil {
					b.Fatal(err)
				}
				truth, err := e.inst.ConditionalSingle(tu, attr)
				if err != nil {
					b.Fatal(err)
				}
				_ = pred
				_ = truth
			}
		})
	}
}

// BenchmarkFig6AccuracyBySupport measures voted inference against models
// learned at different supports (Fig 6's x-axis).
func BenchmarkFig6AccuracyBySupport(b *testing.B) {
	for _, sup := range []float64{0.001, 0.05} {
		e := getEnv(b, "BN9", 20000, sup)
		workload := benchWorkload(e, 9, 64, 1)
		method := vote.Method{Choice: core.BestVoters, Scheme: vote.Averaged}
		b.Run(fmt.Sprintf("support=%g", sup), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tu := workload[i%len(workload)]
				attr := tu.MissingAttrs()[0]
				if _, err := vote.Infer(e.model, tu, attr, method); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7Render measures topology rendering (Fig 7).
func BenchmarkFig7Render(b *testing.B) {
	cat := bn.Catalog()
	for i := 0; i < b.N; i++ {
		for _, top := range cat {
			_ = top.Render()
		}
	}
}

// BenchmarkFig8NetworkProperties runs best-averaged inference on networks
// from each property family (Fig 8(a)-(c)).
func BenchmarkFig8NetworkProperties(b *testing.B) {
	method := vote.Method{Choice: core.BestVoters, Scheme: vote.Averaged}
	for _, network := range []string{"BN18", "BN9", "BN14"} { // depth/attrs/card families
		e := getEnv(b, network, 10000, 0.005)
		workload := benchWorkload(e, 10, 64, 1)
		b.Run(network, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tu := workload[i%len(workload)]
				attr := tu.MissingAttrs()[0]
				if _, err := vote.Infer(e.model, tu, attr, method); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9SingleInference measures per-tuple single-attribute
// inference latency against models of different sizes (Fig 9).
func BenchmarkFig9SingleInference(b *testing.B) {
	method := vote.Method{Choice: core.BestVoters, Scheme: vote.Averaged}
	for _, cfg := range []struct {
		network string
		support float64
	}{
		{"BN8", 0.01},   // small model
		{"BN10", 0.005}, // mid model
		{"BN12", 0.002}, // large model
	} {
		e := getEnv(b, cfg.network, 20000, cfg.support)
		workload := benchWorkload(e, 11, 128, 1)
		b.Run(fmt.Sprintf("%s/model=%d", cfg.network, e.model.Size()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tu := workload[i%len(workload)]
				attr := tu.MissingAttrs()[0]
				if _, err := vote.Infer(e.model, tu, attr, method); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig10GibbsAccuracy measures multi-attribute Gibbs inference for
// one tuple at the paper's sample budgets (Fig 10's x-axis), per missing
// count.
func BenchmarkFig10GibbsAccuracy(b *testing.B) {
	e := getEnv(b, "BN8", 10000, 0.005)
	method := vote.Method{Choice: core.BestVoters, Scheme: vote.Averaged}
	for _, missing := range []int{2, 3} {
		for _, samples := range []int{500, 2000} {
			workload := benchWorkload(e, int64(missing*100+samples), 32, missing)
			b.Run(fmt.Sprintf("missing=%d/N=%d", missing, samples), func(b *testing.B) {
				s, err := gibbs.New(e.model, gibbs.Config{
					Samples: samples, BurnIn: 100, Method: method, Seed: 17,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.InferTuple(workload[i%len(workload)]); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// Fig 11: workload sampling cost with and without the tuple-DAG
// optimization. Both benchmarks run the same 64-tuple workload at N=200.

func fig11Setup(b *testing.B) (*benchEnv, []relation.Tuple) {
	e := getEnv(b, "BN9", 10000, 0.005)
	return e, benchWorkload(e, 12, 64, 0)
}

func BenchmarkFig11TupleAtATime(b *testing.B) {
	e, workload := fig11Setup(b)
	method := vote.Method{Choice: core.BestVoters, Scheme: vote.Averaged}
	var points int
	for i := 0; i < b.N; i++ {
		s, err := gibbs.New(e.model, gibbs.Config{Samples: 200, BurnIn: 50, Method: method, Seed: 19})
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.TupleAtATime(workload)
		if err != nil {
			b.Fatal(err)
		}
		points = res.PointsSampled
	}
	b.ReportMetric(float64(points), "points/workload")
}

func BenchmarkFig11TupleDAG(b *testing.B) {
	e, workload := fig11Setup(b)
	method := vote.Method{Choice: core.BestVoters, Scheme: vote.Averaged}
	var points int
	for i := 0; i < b.N; i++ {
		s, err := gibbs.New(e.model, gibbs.Config{Samples: 200, BurnIn: 50, Method: method, Seed: 19})
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.TupleDAGRun(workload)
		if err != nil {
			b.Fatal(err)
		}
		points = res.PointsSampled
	}
	b.ReportMetric(float64(points), "points/workload")
}

// BenchmarkAblationMaxItemsets ablates the paper's maxItemsets=1000 cutoff
// (Section III): learning time with a tight cutoff vs effectively none.
func BenchmarkAblationMaxItemsets(b *testing.B) {
	e := getEnv(b, "BN12", 10000, 0.002) // high-cardinality net: many itemsets
	for _, cutoff := range []int{100, itemset.DefaultMaxItemsets, 1 << 20} {
		b.Run(fmt.Sprintf("maxItemsets=%d", cutoff), func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				m, err := core.Learn(e.train, core.Config{
					SupportThreshold: 0.002,
					MaxItemsets:      cutoff,
				})
				if err != nil {
					b.Fatal(err)
				}
				size = m.Size()
			}
			b.ReportMetric(float64(size), "meta-rules")
		})
	}
}

// BenchmarkAblationIndependentProduct compares the cost of joint Gibbs
// inference against the independence-assuming product estimator
// (Section V's motivating comparison).
func BenchmarkAblationIndependentProduct(b *testing.B) {
	e := getEnv(b, "BN13", 10000, 0.005)
	method := vote.Method{Choice: core.BestVoters, Scheme: vote.Averaged}
	workload := benchWorkload(e, 13, 32, 2)
	b.Run("product", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.IndependentProduct(e.model, workload[i%len(workload)], method); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gibbs", func(b *testing.B) {
		s, err := gibbs.New(e.model, gibbs.Config{Samples: 500, BurnIn: 50, Method: method, Seed: 23})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.InferTuple(workload[i%len(workload)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationParallelWorkers measures the parallel workload runner
// at several worker counts (identical results by construction; only time
// varies).
func BenchmarkAblationParallelWorkers(b *testing.B) {
	e := getEnv(b, "BN9", 10000, 0.005)
	method := vote.Method{Choice: core.BestVoters, Scheme: vote.Averaged}
	workload := benchWorkload(e, 14, 64, 0)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := gibbs.New(e.model, gibbs.Config{
					Samples: 150, BurnIn: 30, Method: method, Seed: 29,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.ParallelTupleAtATime(workload, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQuickExperimentRunners exercises the experiment package's
// runners end to end at tiny scale, so regressions in the harness itself
// surface in benchmarks.
func BenchmarkQuickExperimentRunners(b *testing.B) {
	opt := experiment.Quick()
	opt.TrainSize = 1000
	opt.TrainSizes = []int{500}
	opt.Supports = []float64{0.01}
	opt.TestCount = 30
	opt.GibbsSamples = 60
	opt.GibbsSampleCounts = []int{60}
	opt.WorkloadSizes = []int{20}
	nets := []string{"BN8"}
	b.Run("fig4a", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := experiment.RunFig4a(opt, nets); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("table2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := experiment.RunTable2(opt, nets); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fig11", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := experiment.RunFig11(opt, nets); err != nil {
				b.Fatal(err)
			}
		}
	})
}
