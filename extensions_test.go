package repro

import (
	"math"
	"testing"

	"repro/internal/relation"
)

func TestNewLazyDBFacade(t *testing.T) {
	m, rel := matchmakingModel(t)
	db, err := NewLazyDB(m, rel, GibbsOptions{Samples: 200, BurnIn: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	inc := rel.Schema.AttrIndex("inc")
	count, err := db.ExpectedCount(ConjQuery{{Attr: inc, Value: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if count <= 0 || count > float64(rel.Len()) {
		t.Errorf("expected count = %v out of range", count)
	}
	st := db.Stats()
	if st.Refuted+st.Entailed == 0 {
		t.Error("lazy evaluation decided nothing from known values")
	}
}

func TestDiagnoseFacade(t *testing.T) {
	m, _ := matchmakingModel(t)
	tu := Tuple{Missing, Missing, 0, 1}
	d, err := Diagnose(m, tu, GibbsOptions{Samples: 100, BurnIn: 20, Seed: 2}, 4, 200)
	if err != nil {
		t.Fatal(err)
	}
	if d.RHat <= 0 {
		t.Errorf("R-hat = %v", d.RHat)
	}
	if d.Chains != 4 || d.SamplesPerChain != 200 {
		t.Errorf("shape = %dx%d", d.Chains, d.SamplesPerChain)
	}
}

func TestAutoTuneGibbsFacade(t *testing.T) {
	m, _ := matchmakingModel(t)
	tu := Tuple{Missing, 0, Missing, 1}
	burnIn, samples, diag, err := AutoTuneGibbs(m, tu, GibbsOptions{Seed: 3}, 1.1, 16, 512)
	if err != nil {
		t.Fatal(err)
	}
	if burnIn <= 0 || samples < 16 || samples > 512 || diag == nil {
		t.Errorf("autotune = %d, %d, %v", burnIn, samples, diag)
	}
}

func TestJoinFacade(t *testing.T) {
	keys := []string{"k0", "k1"}
	left := NewRelation(relation.MustSchema([]Attribute{
		{Name: "v", Domain: []string{"a", "b"}},
		{Name: "fk", Domain: keys},
	}))
	right := NewRelation(relation.MustSchema([]Attribute{
		{Name: "pk", Domain: keys},
		{Name: "w", Domain: []string{"x", "y"}},
	}))
	if err := left.Append(Tuple{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := right.Append(Tuple{1, 0}); err != nil {
		t.Fatal(err)
	}
	out, err := Join(left, right, JoinSpec{LeftKey: 1, RightKey: 0})
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema.NumAttrs() != 2 || out.Len() != 1 {
		t.Errorf("joined = %v rows over %v", out.Len(), out.Schema.SortedAttrNames())
	}
}

func TestDiscretizeTableFacade(t *testing.T) {
	raw := RawTable{
		Names: []string{"temp"},
		Rows:  [][]string{{"1.5"}, {"2.5"}, {"8.0"}, {"9.5"}},
	}
	rel, err := DiscretizeTable(raw, 2, EqualWidth)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Schema.Attrs[0].Card() != 2 {
		t.Errorf("buckets = %d", rel.Schema.Attrs[0].Card())
	}
	if rel.Tuples[0][0] != 0 || rel.Tuples[3][0] != 1 {
		t.Errorf("codes = %v, %v", rel.Tuples[0][0], rel.Tuples[3][0])
	}
}

// TestLazyMatchesEagerOnMatchmaking: the lazy expected count agrees with
// eager Derive + ExpectedCount.
func TestLazyMatchesEagerOnMatchmaking(t *testing.T) {
	m, rel := matchmakingModel(t)
	inc := rel.Schema.AttrIndex("inc")
	q := ConjQuery{{Attr: inc, Value: 1}}

	lazyDB, err := NewLazyDB(m, rel, GibbsOptions{Samples: 2000, BurnIn: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	lazyCount, err := lazyDB.ExpectedCount(q)
	if err != nil {
		t.Fatal(err)
	}

	eager, err := Derive(m, rel, DeriveOptions{
		Gibbs: GibbsOptions{Samples: 2000, BurnIn: 100, Seed: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	eagerCount := eager.ExpectedCount(q.Predicate())
	if math.Abs(lazyCount-eagerCount) > 1.0 {
		t.Errorf("lazy %v vs eager %v", lazyCount, eagerCount)
	}
}
