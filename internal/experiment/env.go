package experiment

import (
	"fmt"
	"math/rand"

	"repro/internal/bn"
	"repro/internal/core"
	"repro/internal/relation"
)

// Env is one experimental unit: a parameterized network instance with a
// train/test split of its forward-sampled dataset.
type Env struct {
	Top   *bn.Topology
	Inst  *bn.Instance
	Train *relation.Relation
	Test  []relation.Tuple
}

// seedFor derives a deterministic sub-seed from the experiment seed, a
// label, and indices, so every runner is reproducible without sharing RNG
// state.
func seedFor(base int64, label string, parts ...int) int64 {
	h := uint64(base) * 0x9e3779b97f4a7c15
	for _, c := range []byte(label) {
		h = (h ^ uint64(c)) * 0x100000001b3
	}
	for _, p := range parts {
		h = (h ^ uint64(uint32(p))) * 0x100000001b3
	}
	return int64(h >> 1)
}

// MakeEnv instantiates the topology (instance-th random parameterization),
// samples a dataset sized so the training portion is trainSize after the
// paper's 90/10 split, and performs the split-th random split.
func MakeEnv(top *bn.Topology, opt Options, instance, split, trainSize int) (*Env, error) {
	instRng := rand.New(rand.NewSource(seedFor(opt.Seed, "inst:"+top.ID, instance)))
	inst, err := bn.Instantiate(top, instRng)
	if err != nil {
		return nil, err
	}
	total := trainSize*10/9 + 1 // 90% train, 10% test
	dataRng := rand.New(rand.NewSource(seedFor(opt.Seed, "data:"+top.ID, instance, trainSize)))
	data := inst.SampleRelation(dataRng, total)

	splitRng := rand.New(rand.NewSource(seedFor(opt.Seed, "split:"+top.ID, instance, split, trainSize)))
	perm := splitRng.Perm(total)
	env := &Env{Top: top, Inst: inst, Train: relation.NewRelation(data.Schema)}
	env.Train.Tuples = make([]relation.Tuple, 0, trainSize)
	for _, idx := range perm[:trainSize] {
		env.Train.Tuples = append(env.Train.Tuples, data.Tuples[idx])
	}
	for _, idx := range perm[trainSize:] {
		env.Test = append(env.Test, data.Tuples[idx])
	}
	if len(env.Test) == 0 {
		return nil, fmt.Errorf("experiment: empty test split for %s", top.ID)
	}
	return env, nil
}

// Learn trains an MRSL model on the env's training relation.
func (e *Env) Learn(support float64, maxItemsets int) (*core.Model, error) {
	return core.Learn(e.Train, core.Config{
		SupportThreshold: support,
		MaxItemsets:      maxItemsets,
	})
}

// TestWorkload returns up to count test tuples with numMissing attribute
// values hidden uniformly at random in each ("the test set is further
// processed and one or several attributes in each tuple are replaced with
// '?'"). The returned tuples are copies.
func (e *Env) TestWorkload(rng *rand.Rand, count, numMissing int) []relation.Tuple {
	nAttrs := e.Top.NumAttrs()
	if numMissing >= nAttrs {
		numMissing = nAttrs - 1
	}
	if numMissing < 1 {
		numMissing = 1
	}
	if count > len(e.Test) {
		count = len(e.Test)
	}
	out := make([]relation.Tuple, count)
	for i := 0; i < count; i++ {
		tu := e.Test[i].Clone()
		for _, a := range rng.Perm(nAttrs)[:numMissing] {
			tu[a] = relation.Missing
		}
		out[i] = tu
	}
	return out
}

// envsFor enumerates (instance, split) pairs for a topology at a given
// training size, invoking fn for each; results are averaged by callers.
func envsFor(top *bn.Topology, opt Options, trainSize int, fn func(*Env) error) error {
	for inst := 0; inst < opt.Instances; inst++ {
		for split := 0; split < opt.Splits; split++ {
			env, err := MakeEnv(top, opt, inst, split, trainSize)
			if err != nil {
				return err
			}
			if err := fn(env); err != nil {
				return err
			}
		}
	}
	return nil
}
