package experiment

import (
	"strings"

	"repro/internal/bn"
)

// RunTable1 renders the catalog as the paper's Table I.
func RunTable1() *Table {
	t := &Table{
		Title:  "Table I: characteristics of the 20 Bayesian networks",
		Header: []string{"network", "num. attrs", "avg card", "dom. size", "depth"},
	}
	for _, r := range bn.TableI() {
		t.AddRow(r.Network, r.NumAttrs, r.AvgCard, r.DomSize, r.DepthLabel)
	}
	return t
}

// RunFig7 renders the benchmark network shapes (the paper's Fig. 7) as
// ASCII adjacency listings.
func RunFig7(ids []string) (*Table, error) {
	if len(ids) == 0 {
		ids = []string{"BN8", "BN9", "BN13", "BN14", "BN15", "BN16", "BN17", "BN18", "BN19", "BN20"}
	}
	t := &Table{
		Title:  "Fig 7: benchmark network topologies",
		Header: []string{"network", "structure"},
	}
	for _, id := range ids {
		top, err := bn.ByID(id)
		if err != nil {
			return nil, err
		}
		t.AddRow(id, strings.ReplaceAll(strings.TrimSpace(top.Render()), "\n", " | "))
	}
	return t, nil
}

// Fig4Point is one observation of the learning experiments: averaged model
// build time and model size at a given training size and support.
type Fig4Point struct {
	TrainSize    int
	Support      float64
	AvgBuildSec  float64
	AvgModelSize float64
}

// RunFig4a measures model building time as a function of training set size
// with support fixed at 0.02, averaged over the learning networks
// (Fig. 4(a)).
func RunFig4a(opt Options, networks []string) ([]Fig4Point, *Table, error) {
	if err := opt.validate(); err != nil {
		return nil, nil, err
	}
	if len(networks) == 0 {
		networks = LearningNetworks
	}
	const support = 0.02
	var points []Fig4Point
	for _, size := range opt.TrainSizes {
		pt, err := learnAveraged(opt, networks, size, support)
		if err != nil {
			return nil, nil, err
		}
		opt.logf("fig4a: train=%d avg build %.3fs", size, pt.AvgBuildSec)
		points = append(points, pt)
	}
	t := &Table{
		Title:  "Fig 4(a): model building time vs training set size (support=0.02)",
		Header: []string{"training size", "build time (s)", "model size"},
	}
	for _, p := range points {
		t.AddRow(p.TrainSize, p.AvgBuildSec, p.AvgModelSize)
	}
	return points, t, nil
}

// RunFig4b measures model building time as a function of support with the
// training size fixed (Fig. 4(b): 10,000 tuples in the paper).
func RunFig4b(opt Options, networks []string) ([]Fig4Point, *Table, error) {
	if err := opt.validate(); err != nil {
		return nil, nil, err
	}
	if len(networks) == 0 {
		networks = LearningNetworks
	}
	var points []Fig4Point
	for _, sup := range opt.Supports {
		pt, err := learnAveraged(opt, networks, opt.TrainSize, sup)
		if err != nil {
			return nil, nil, err
		}
		opt.logf("fig4b: support=%v avg build %.3fs", sup, pt.AvgBuildSec)
		points = append(points, pt)
	}
	t := &Table{
		Title:  "Fig 4(b): model building time vs support",
		Header: []string{"support", "build time (s)", "model size"},
	}
	for _, p := range points {
		t.AddRow(p.Support, p.AvgBuildSec, p.AvgModelSize)
	}
	return points, t, nil
}

// RunFig4c reports model size as a function of support (Fig. 4(c)); it
// reuses RunFig4b's sweep and re-renders the size column.
func RunFig4c(opt Options, networks []string) ([]Fig4Point, *Table, error) {
	points, _, err := RunFig4b(opt, networks)
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		Title:  "Fig 4(c): model size vs support",
		Header: []string{"support", "model size"},
	}
	for _, p := range points {
		t.AddRow(p.Support, p.AvgModelSize)
	}
	return points, t, nil
}

// learnAveraged learns models for every network/instance/split at one
// (training size, support) setting and averages build time and model size.
func learnAveraged(opt Options, networks []string, trainSize int, support float64) (Fig4Point, error) {
	pt := Fig4Point{TrainSize: trainSize, Support: support}
	var runs int
	for _, id := range networks {
		top, err := bn.ByID(id)
		if err != nil {
			return pt, err
		}
		err = envsFor(top, opt, trainSize, func(env *Env) error {
			m, err := env.Learn(support, opt.MaxItemsets)
			if err != nil {
				return err
			}
			pt.AvgBuildSec += m.Stats.BuildTime.Seconds()
			pt.AvgModelSize += float64(m.Size())
			runs++
			return nil
		})
		if err != nil {
			return pt, err
		}
	}
	if runs > 0 {
		pt.AvgBuildSec /= float64(runs)
		pt.AvgModelSize /= float64(runs)
	}
	return pt, nil
}
