package experiment

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/baseline"
	"repro/internal/bn"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gibbs"
	"repro/internal/relation"
	"repro/internal/vote"
)

func defaultMethod() vote.Method {
	return vote.Method{Choice: core.BestVoters, Scheme: vote.Averaged}
}

// Fig10Point is one observation of multi-attribute accuracy: KL at a given
// sample budget and number of missing attributes for one network
// (Fig. 10).
type Fig10Point struct {
	Network        string
	NumMissing     int
	SamplesPerTupl int
	KL             float64
	Top1           float64
}

// RunFig10 reproduces Fig. 10: prediction accuracy of sampling-based
// multi-attribute inference as a function of samples per tuple, for 2..5
// missing attributes, per network. The paper plots BN8, BN17, and BN2.
func RunFig10(opt Options, networks []string, maxMissing int) ([]Fig10Point, *Table, error) {
	if err := opt.validate(); err != nil {
		return nil, nil, err
	}
	if len(networks) == 0 {
		networks = []string{"BN8", "BN17", "BN2"}
	}
	var points []Fig10Point
	for _, id := range networks {
		top, err := bn.ByID(id)
		if err != nil {
			return nil, nil, err
		}
		limit := maxMissing
		if limit <= 0 || limit >= top.NumAttrs() {
			limit = top.NumAttrs() - 1
		}
		if limit > 5 {
			limit = 5 // the paper plots at most 5 missing attributes
		}
		env, err := MakeEnv(top, opt, 0, 0, opt.TrainSize)
		if err != nil {
			return nil, nil, err
		}
		m, err := env.Learn(opt.Support, opt.MaxItemsets)
		if err != nil {
			return nil, nil, err
		}
		for missing := 2; missing <= limit; missing++ {
			rng := rand.New(rand.NewSource(seedFor(opt.Seed, "fig10:"+id, missing)))
			workload := env.TestWorkload(rng, min(opt.TestCount, 40), missing)
			for _, n := range opt.GibbsSampleCounts {
				cfg := gibbs.Config{
					Samples: n,
					BurnIn:  opt.GibbsBurnIn,
					Method:  defaultMethod(),
					Seed:    seedFor(opt.Seed, "fig10rng:"+id, missing, n),
				}
				acc, err := evalGibbsTuples(env, m, cfg, workload)
				if err != nil {
					return nil, nil, err
				}
				points = append(points, Fig10Point{
					Network:        id,
					NumMissing:     missing,
					SamplesPerTupl: n,
					KL:             acc.KL,
					Top1:           acc.Top1,
				})
				opt.logf("fig10: %s missing=%d N=%d KL=%.3f", id, missing, n, acc.KL)
			}
		}
	}
	t := &Table{
		Title:  "Fig 10: multi-attribute inference accuracy vs samples per tuple",
		Header: []string{"network", "missing", "samples/tuple", "KL", "top-1"},
	}
	for _, p := range points {
		t.AddRow(p.Network, p.NumMissing, p.SamplesPerTupl, p.KL, p.Top1)
	}
	return points, t, nil
}

// Fig11Point is one efficiency observation: total sampled points and wall
// time for a workload under one strategy (Fig. 11).
type Fig11Point struct {
	Network      string
	WorkloadSize int
	Strategy     string // "tuple-at-a-time" or "tuple-DAG"
	Points       int
	WallSec      float64
}

// RunFig11 reproduces Fig. 11: sampling cost (total sampled points and wall
// time) as a function of workload size, with and without the tuple-DAG
// optimization. Each workload tuple has 1..(attrs-1) missing values, as in
// the paper ("at most networkSize-1 attributes were missing").
func RunFig11(opt Options, networks []string) ([]Fig11Point, *Table, error) {
	if err := opt.validate(); err != nil {
		return nil, nil, err
	}
	if len(networks) == 0 {
		networks = MultiInferenceNetworks
	}
	// The paper samples 500 points per tuple in the plotted runs.
	samples := opt.GibbsSamples
	var points []Fig11Point
	for _, id := range networks {
		top, err := bn.ByID(id)
		if err != nil {
			return nil, nil, err
		}
		env, err := MakeEnv(top, opt, 0, 0, opt.TrainSize)
		if err != nil {
			return nil, nil, err
		}
		m, err := env.Learn(opt.Support, opt.MaxItemsets)
		if err != nil {
			return nil, nil, err
		}
		for _, wsize := range opt.WorkloadSizes {
			rng := rand.New(rand.NewSource(seedFor(opt.Seed, "fig11:"+id, wsize)))
			workload := buildMixedWorkload(env, rng, wsize)
			for _, strategy := range []string{"tuple-at-a-time", "tuple-DAG"} {
				s, err := gibbs.New(m, gibbs.Config{
					Samples: samples,
					BurnIn:  opt.GibbsBurnIn,
					Method:  defaultMethod(),
					Seed:    seedFor(opt.Seed, "fig11rng:"+id+strategy, wsize),
				})
				if err != nil {
					return nil, nil, err
				}
				start := time.Now()
				var res *gibbs.Result
				if strategy == "tuple-DAG" {
					res, err = s.TupleDAGRun(workload)
				} else {
					res, err = s.TupleAtATime(workload)
				}
				if err != nil {
					return nil, nil, err
				}
				points = append(points, Fig11Point{
					Network:      id,
					WorkloadSize: wsize,
					Strategy:     strategy,
					Points:       res.PointsSampled,
					WallSec:      time.Since(start).Seconds(),
				})
				opt.logf("fig11: %s wl=%d %s points=%d", id, wsize, strategy, res.PointsSampled)
			}
		}
	}
	t := &Table{
		Title:  fmt.Sprintf("Fig 11: sampling cost vs workload size (N=%d per tuple)", samples),
		Header: []string{"network", "workload", "strategy", "sampled points", "time (s)"},
	}
	for _, p := range points {
		t.AddRow(p.Network, p.WorkloadSize, p.Strategy, p.Points, p.WallSec)
	}
	return points, t, nil
}

// buildMixedWorkload hides a uniform 1..(attrs-1) attributes per tuple,
// recycling test tuples if the requested size exceeds the test set.
func buildMixedWorkload(env *Env, rng *rand.Rand, size int) []relation.Tuple {
	nAttrs := env.Top.NumAttrs()
	out := make([]relation.Tuple, size)
	for i := 0; i < size; i++ {
		tu := env.Test[i%len(env.Test)].Clone()
		k := 1 + rng.Intn(nAttrs-1)
		for _, a := range rng.Perm(nAttrs)[:k] {
			tu[a] = relation.Missing
		}
		out[i] = tu
	}
	return out
}

// AblationPoint compares joint Gibbs inference with the
// independence-assuming product baseline on the same workload.
type AblationPoint struct {
	Network string
	KLGibbs float64
	KLProd  float64
}

// RunAblationIndependent quantifies the motivating claim of Section V: how
// much accuracy the independence assumption costs relative to joint Gibbs
// inference, on tuples with two missing attributes.
func RunAblationIndependent(opt Options, networks []string) ([]AblationPoint, *Table, error) {
	if err := opt.validate(); err != nil {
		return nil, nil, err
	}
	if len(networks) == 0 {
		networks = []string{"BN8", "BN13", "BN17"}
	}
	var points []AblationPoint
	for _, id := range networks {
		top, err := bn.ByID(id)
		if err != nil {
			return nil, nil, err
		}
		env, err := MakeEnv(top, opt, 0, 0, opt.TrainSize)
		if err != nil {
			return nil, nil, err
		}
		m, err := env.Learn(opt.Support, opt.MaxItemsets)
		if err != nil {
			return nil, nil, err
		}
		rng := rand.New(rand.NewSource(seedFor(opt.Seed, "abl:"+id)))
		workload := env.TestWorkload(rng, min(opt.TestCount, 40), 2)
		cfg := gibbs.Config{
			Samples: opt.GibbsSamples,
			BurnIn:  opt.GibbsBurnIn,
			Method:  defaultMethod(),
			Seed:    seedFor(opt.Seed, "ablrng:"+id),
		}
		gibbsAcc, err := evalGibbsTuples(env, m, cfg, workload)
		if err != nil {
			return nil, nil, err
		}
		var prodAcc Accuracy
		for _, tu := range workload {
			j, err := baseline.IndependentProduct(m, tu, defaultMethod())
			if err != nil {
				return nil, nil, err
			}
			truth, err := env.Inst.Conditional(tu)
			if err != nil {
				return nil, nil, err
			}
			kl, err := dist.KLJoint(truth, j)
			if err != nil {
				return nil, nil, err
			}
			top1, err := dist.Top1Match(truth.P, j.P)
			if err != nil {
				return nil, nil, err
			}
			prodAcc.add(kl, top1)
		}
		prodAcc.finish()
		points = append(points, AblationPoint{Network: id, KLGibbs: gibbsAcc.KL, KLProd: prodAcc.KL})
		opt.logf("ablation-indep: %s gibbs=%.3f product=%.3f", id, gibbsAcc.KL, prodAcc.KL)
	}
	t := &Table{
		Title:  "Ablation: joint Gibbs vs independence-assuming product (2 missing attrs)",
		Header: []string{"network", "KL (Gibbs)", "KL (independent product)"},
	}
	for _, p := range points {
		t.AddRow(p.Network, p.KLGibbs, p.KLProd)
	}
	return points, t, nil
}
