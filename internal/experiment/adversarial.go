package experiment

// Adversarial query workloads: relations built to stress the adaptive
// query layer where benign dirty data does not. Three ingredients, each
// targeting one adaptive mechanism:
//
//   - Skewed damage frequencies (Zipf over a small pattern pool): a few
//     evidence patterns dominate the relation, so shared caches — and
//     the cross-query envelope-interval cache in particular — see the
//     duplicate mass real dirty data has, while the long tail keeps
//     cold misses in play.
//   - Correlated damage (attribute pairs always blanked together): the
//     multi-missing tuples concentrate on a few missing-attribute
//     combinations, which is exactly when dissociation envelopes are
//     informative and mid-query re-planning has candidates to cut.
//   - Over-budget blocks (tuples missing all but one attribute): their
//     envelope enumeration would exceed derive.MaxBoundStates, so a
//     planner that blindly enumerates pays guard-work for a vacuous
//     interval on every one of them — the case the cost model's
//     pre-judging skip exists for.

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/relation"
)

// AdversarialConfig shapes one adversarial workload. The zero value is
// invalid; DefaultAdversarial supplies sensible proportions.
type AdversarialConfig struct {
	// Seed drives all randomness; equal configs build identical relations.
	Seed int64
	// Size is the total tuple count.
	Size int
	// Patterns is the number of distinct damage patterns behind the
	// incomplete tuples; duplication follows a Zipf law over their rank.
	Patterns int
	// SkewExp is the Zipf exponent over pattern ranks (0 = uniform; 1 is
	// the classic heavy skew).
	SkewExp float64
	// CorrelatedPairs is how many attribute pairs are damaged together:
	// each pattern blanks one full pair (plus occasionally a third
	// attribute), never a lone attribute of a pair.
	CorrelatedPairs int
	// OverBudgetFrac is the fraction of tuples missing every attribute
	// but one, whose per-attribute envelopes overflow
	// derive.MaxBoundStates.
	OverBudgetFrac float64
	// CompleteFrac is the fraction of complete pass-through tuples.
	CompleteFrac float64
}

// DefaultAdversarial is the standard adversarial mix used by the
// adaptive benchmarks: heavily skewed, pair-correlated, with a 10%
// over-budget share.
func DefaultAdversarial(seed int64, size int) AdversarialConfig {
	return AdversarialConfig{
		Seed: seed, Size: size, Patterns: 24, SkewExp: 1.1,
		CorrelatedPairs: 3, OverBudgetFrac: 0.1, CompleteFrac: 0.2,
	}
}

// BuildAdversarialRelation assembles an adversarial relation over
// schema, drawing complete value combinations from src (typically a
// sample of the model's distribution, so the damage sits on realistic
// evidence). The construction is deterministic in cfg.
func BuildAdversarialRelation(schema *relation.Schema, src []relation.Tuple, cfg AdversarialConfig) (*relation.Relation, error) {
	if cfg.Size <= 0 || cfg.Patterns <= 0 {
		return nil, fmt.Errorf("experiment: adversarial config needs positive Size and Patterns")
	}
	if len(src) == 0 {
		return nil, fmt.Errorf("experiment: adversarial workload needs source tuples")
	}
	nAttrs := schema.NumAttrs()
	if nAttrs < 3 {
		return nil, fmt.Errorf("experiment: adversarial workload needs at least 3 attributes, got %d", nAttrs)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Correlated attribute pairs, damaged as units.
	pairs := make([][2]int, 0, cfg.CorrelatedPairs)
	for len(pairs) < cfg.CorrelatedPairs {
		p := rng.Perm(nAttrs)
		pairs = append(pairs, [2]int{p[0], p[1]})
	}

	// The damage-pattern pool. Each pattern is a concrete source tuple
	// with a correlated pair (or a random pair when none are configured)
	// blanked; every third pattern loses one extra attribute so the
	// missing-set diversity stays non-trivial.
	patterns := make([]relation.Tuple, cfg.Patterns)
	for i := range patterns {
		tu := src[rng.Intn(len(src))].Clone()
		var a, b int
		if len(pairs) > 0 {
			pr := pairs[i%len(pairs)]
			a, b = pr[0], pr[1]
		} else {
			p := rng.Perm(nAttrs)
			a, b = p[0], p[1]
		}
		tu[a], tu[b] = relation.Missing, relation.Missing
		if i%3 == 2 {
			for _, x := range rng.Perm(nAttrs) {
				if x != a && x != b {
					tu[x] = relation.Missing
					break
				}
			}
		}
		patterns[i] = tu
	}

	// Zipf cumulative weights over pattern rank.
	cum := make([]float64, len(patterns))
	total := 0.0
	for i := range cum {
		total += 1 / math.Pow(float64(i+1), cfg.SkewExp)
		cum[i] = total
	}
	pick := func() relation.Tuple {
		x := rng.Float64() * total
		for i, c := range cum {
			if x <= c {
				return patterns[i]
			}
		}
		return patterns[len(patterns)-1]
	}

	rel := relation.NewRelation(schema)
	for i := 0; i < cfg.Size; i++ {
		var tu relation.Tuple
		r := rng.Float64()
		switch {
		case r < cfg.CompleteFrac:
			tu = src[rng.Intn(len(src))].Clone()
		case r < cfg.CompleteFrac+cfg.OverBudgetFrac:
			// Over-budget block: every attribute missing but one.
			tu = src[rng.Intn(len(src))].Clone()
			keep := rng.Intn(nAttrs)
			for a := range tu {
				if a != keep {
					tu[a] = relation.Missing
				}
			}
		default:
			tu = pick().Clone()
		}
		if err := rel.Append(tu); err != nil {
			return nil, err
		}
	}
	return rel, nil
}
