package experiment

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bn"
)

// tinyOpt returns minimal options for fast unit tests.
func tinyOpt() Options {
	o := Quick()
	o.TrainSize = 1500
	o.TrainSizes = []int{400, 1200}
	o.Supports = []float64{0.01, 0.1}
	o.TestCount = 60
	o.GibbsSamples = 150
	o.GibbsSampleCounts = []int{50, 150}
	o.GibbsBurnIn = 30
	o.WorkloadSizes = []int{30, 60}
	return o
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{},
		{Instances: 1, Splits: 1, TrainSize: 5, Support: 0.1, TestCount: 10},
		{Instances: 1, Splits: 1, TrainSize: 100, Support: 0, TestCount: 10},
		{Instances: 1, Splits: 1, TrainSize: 100, Support: 0.1, TestCount: 0},
	}
	for i, o := range bad {
		if err := o.validate(); err == nil {
			t.Errorf("options %d should fail validation", i)
		}
	}
	if err := Quick().validate(); err != nil {
		t.Errorf("Quick() invalid: %v", err)
	}
	if err := Paper().validate(); err != nil {
		t.Errorf("Paper() invalid: %v", err)
	}
}

func TestSeedForDeterministicAndDistinct(t *testing.T) {
	a := seedFor(1, "x", 1, 2)
	b := seedFor(1, "x", 1, 2)
	c := seedFor(1, "x", 2, 1)
	d := seedFor(2, "x", 1, 2)
	e := seedFor(1, "y", 1, 2)
	if a != b {
		t.Error("seedFor not deterministic")
	}
	if a == c || a == d || a == e {
		t.Error("seedFor collides across labels/parts")
	}
}

func TestMakeEnvSplit(t *testing.T) {
	top, err := bn.ByID("BN8")
	if err != nil {
		t.Fatal(err)
	}
	opt := tinyOpt()
	env, err := MakeEnv(top, opt, 0, 0, 900)
	if err != nil {
		t.Fatal(err)
	}
	if env.Train.Len() != 900 {
		t.Errorf("train size = %d, want 900", env.Train.Len())
	}
	if len(env.Test) < 90 {
		t.Errorf("test size = %d, want ~100", len(env.Test))
	}
	// Different instances produce different CPTs.
	env2, err := MakeEnv(top, opt, 1, 0, 900)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range env.Inst.CPTs[0].Rows[0] {
		if env.Inst.CPTs[0].Rows[0][i] != env2.Inst.CPTs[0].Rows[0][i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different instance indices produced identical CPTs")
	}
	// Same arguments reproduce the same env.
	env3, err := MakeEnv(top, opt, 0, 0, 900)
	if err != nil {
		t.Fatal(err)
	}
	if !env.Train.Tuples[0].Equal(env3.Train.Tuples[0]) {
		t.Error("MakeEnv not deterministic")
	}
}

func TestTestWorkloadMissingCounts(t *testing.T) {
	top, _ := bn.ByID("BN9")
	opt := tinyOpt()
	env, err := MakeEnv(top, opt, 0, 0, 500)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for _, k := range []int{1, 3, 5} {
		wl := env.TestWorkload(rng, 20, k)
		for _, tu := range wl {
			if tu.NumMissing() != k {
				t.Errorf("k=%d: tuple has %d missing", k, tu.NumMissing())
			}
		}
	}
	// Requests beyond attrs-1 are clamped.
	wl := env.TestWorkload(rng, 5, 99)
	for _, tu := range wl {
		if tu.NumMissing() != top.NumAttrs()-1 {
			t.Errorf("clamping failed: %d missing", tu.NumMissing())
		}
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "bb"}}
	tab.AddRow(1, 2.5)
	tab.AddRow("xx", 0.123456)
	out := tab.Render()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "0.1235") {
		t.Errorf("render:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title, header, separator, 2 rows -> 5? title+header+sep+2 = 5
		if len(lines) != 5 {
			t.Errorf("unexpected line count %d:\n%s", len(lines), out)
		}
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		0.5:     "0.5",
		1:       "1",
		0.12345: "0.1235",
		0:       "0",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestRunTable1MatchesCatalog(t *testing.T) {
	tab := RunTable1()
	if len(tab.Rows) != 20 {
		t.Fatalf("rows = %d, want 20", len(tab.Rows))
	}
	if tab.Rows[0][0] != "BN1" || tab.Rows[19][0] != "BN20" {
		t.Errorf("unexpected row ids: %v, %v", tab.Rows[0][0], tab.Rows[19][0])
	}
}

func TestRunFig7(t *testing.T) {
	tab, err := RunFig7(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 {
		t.Errorf("rows = %d, want 10", len(tab.Rows))
	}
	if _, err := RunFig7([]string{"BN99"}); err == nil {
		t.Error("unknown network should fail")
	}
}

// TestFig4aBuildTimeGrowsWithTrainingSize: the paper observes linear
// growth; at minimum, more data must not be drastically cheaper.
func TestFig4aShape(t *testing.T) {
	opt := tinyOpt()
	nets := []string{"BN8", "BN13"}
	points, tab, err := RunFig4a(opt, nets)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(opt.TrainSizes) {
		t.Fatalf("points = %d, want %d", len(points), len(opt.TrainSizes))
	}
	if points[len(points)-1].AvgBuildSec < points[0].AvgBuildSec*0.5 {
		t.Errorf("build time shrank with more data: %v -> %v",
			points[0].AvgBuildSec, points[len(points)-1].AvgBuildSec)
	}
	if len(tab.Rows) != len(points) {
		t.Error("table rows mismatch")
	}
}

// TestFig4cModelSizeDropsWithSupport: the paper observes a sharp
// (super-linear) drop in model size as the support threshold rises.
func TestFig4cShape(t *testing.T) {
	opt := tinyOpt()
	nets := []string{"BN8", "BN13"}
	points, tab, err := RunFig4c(opt, nets)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(opt.Supports) {
		t.Fatalf("points = %d, want %d", len(points), len(opt.Supports))
	}
	first, last := points[0], points[len(points)-1]
	if first.Support >= last.Support {
		t.Fatal("supports not increasing")
	}
	if last.AvgModelSize >= first.AvgModelSize {
		t.Errorf("model size did not drop with support: %v -> %v",
			first.AvgModelSize, last.AvgModelSize)
	}
	if len(tab.Rows) != len(points) {
		t.Error("table rows mismatch")
	}
}

// TestTable2BestMethodsAccurate: the paper's headline — best-averaged and
// best-weighted reach high accuracy on the small crown networks.
func TestTable2BestMethodsAccurate(t *testing.T) {
	opt := tinyOpt()
	opt.TrainSize = 4000
	opt.Support = 0.005
	rows, tab, err := RunTable2(opt, []string{"BN8", "BN9"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		bestAvg := r.ByMethod[2]
		if bestAvg.KL > 0.1 {
			t.Errorf("%s best-averaged KL = %v, want <= 0.1", r.Network, bestAvg.KL)
		}
		if bestAvg.Top1 < 0.7 {
			t.Errorf("%s best-averaged top1 = %v, want >= 0.7", r.Network, bestAvg.Top1)
		}
	}
	if !strings.Contains(tab.Render(), "BN8") {
		t.Error("table missing BN8")
	}
}

// TestFig5AccuracyImprovesWithTrainingData.
func TestFig5Shape(t *testing.T) {
	opt := tinyOpt()
	opt.TrainSizes = []int{200, 3000}
	points, _, err := RunFig5(opt, []string{"BN8"})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	// Best-averaged KL should improve (or at worst stagnate) with 15x data.
	if points[1].ByMethod[2].KL > points[0].ByMethod[2].KL+0.02 {
		t.Errorf("KL rose with more data: %v -> %v",
			points[0].ByMethod[2].KL, points[1].ByMethod[2].KL)
	}
}

// TestFig6AccuracyImprovesWithLowerSupport.
func TestFig6Shape(t *testing.T) {
	opt := tinyOpt()
	opt.TrainSize = 3000
	opt.Supports = []float64{0.005, 0.2}
	points, _, err := RunFig6(opt, []string{"BN9"})
	if err != nil {
		t.Fatal(err)
	}
	lowSup, highSup := points[0], points[1]
	if lowSup.ByMethod[2].KL > highSup.ByMethod[2].KL+0.02 {
		t.Errorf("lower support should not be less accurate: %v vs %v",
			lowSup.ByMethod[2].KL, highSup.ByMethod[2].KL)
	}
}

func TestFig8PropertiesAndErrors(t *testing.T) {
	opt := tinyOpt()
	points, tab, err := RunFig8(opt, []string{"BN8", "BN9"}, "attrs")
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Property != 4 || points[1].Property != 6 {
		t.Errorf("attr properties = %v", points)
	}
	if len(tab.Rows) != 2 {
		t.Error("table rows mismatch")
	}
	if _, _, err := RunFig8(opt, []string{"BN8"}, "bogus"); err == nil {
		t.Error("unknown property should fail")
	}
	depthPts, _, err := RunFig8(opt, []string{"BN13"}, "depth")
	if err != nil {
		t.Fatal(err)
	}
	if depthPts[0].Property != 6 {
		t.Errorf("depth property = %d, want 6", depthPts[0].Property)
	}
	cardPts, _, err := RunFig8(opt, []string{"BN14"}, "card")
	if err != nil {
		t.Fatal(err)
	}
	if cardPts[0].Property != 4 {
		t.Errorf("card property = %d, want 4", cardPts[0].Property)
	}
}

// TestFig9InferenceTimeScalesWithBatch: more tuples take longer; per-tuple
// cost stays in the same ballpark.
func TestFig9Shape(t *testing.T) {
	opt := tinyOpt()
	points, tab, err := RunFig9(opt, []string{"BN8"}, []int{200, 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	if points[1].InferSec < points[0].InferSec {
		t.Errorf("larger batch faster: %v < %v", points[1].InferSec, points[0].InferSec)
	}
	if points[0].ModelSize <= 0 {
		t.Error("model size not recorded")
	}
	if len(tab.Rows) != 2 {
		t.Error("table rows mismatch")
	}
}

// TestFig10AccuracyImprovesWithSamples: on BN8 the paper sees KL fall as
// samples per tuple grow.
func TestFig10Shape(t *testing.T) {
	opt := tinyOpt()
	opt.TrainSize = 4000
	opt.Support = 0.005
	opt.GibbsSampleCounts = []int{30, 600}
	points, tab, err := RunFig10(opt, []string{"BN8"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Points: missing=2 x2 counts, missing=3 x2 counts.
	if len(points) != 4 {
		t.Fatalf("points = %d, want 4", len(points))
	}
	// For 2 missing attrs, 20x the samples should not be clearly worse.
	if points[1].KL > points[0].KL+0.05 {
		t.Errorf("KL rose with more samples: %v -> %v", points[0].KL, points[1].KL)
	}
	if len(tab.Rows) != len(points) {
		t.Error("table rows mismatch")
	}
}

// TestFig11DAGBeatsBaseline: the tuple-DAG draws fewer points than
// tuple-at-a-time at every workload size.
func TestFig11Shape(t *testing.T) {
	opt := tinyOpt()
	opt.GibbsSamples = 80
	points, tab, err := RunFig11(opt, []string{"BN8"})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2*len(opt.WorkloadSizes) {
		t.Fatalf("points = %d", len(points))
	}
	byWorkload := map[int]map[string]int{}
	for _, p := range points {
		if byWorkload[p.WorkloadSize] == nil {
			byWorkload[p.WorkloadSize] = map[string]int{}
		}
		byWorkload[p.WorkloadSize][p.Strategy] = p.Points
	}
	for w, m := range byWorkload {
		if m["tuple-DAG"] >= m["tuple-at-a-time"] {
			t.Errorf("workload %d: DAG %d >= baseline %d", w, m["tuple-DAG"], m["tuple-at-a-time"])
		}
	}
	if len(tab.Rows) != len(points) {
		t.Error("table rows mismatch")
	}
}

// TestAblationIndependent: both estimators produce finite KL; gibbs should
// not be drastically worse.
func TestAblationIndependent(t *testing.T) {
	opt := tinyOpt()
	opt.TrainSize = 3000
	opt.Support = 0.005
	points, tab, err := RunAblationIndependent(opt, []string{"BN13"})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("points = %d", len(points))
	}
	p := points[0]
	if p.KLGibbs > p.KLProd+0.1 {
		t.Errorf("gibbs (%v) much worse than product (%v)", p.KLGibbs, p.KLProd)
	}
	if len(tab.Rows) != 1 {
		t.Error("table rows mismatch")
	}
}
