// Package experiment implements the paper's experimental framework
// (Section VI-A) and one runner per published table and figure: Bayesian
// network instances are generated per topology, forward-sampled into
// datasets, split into training and test sets, MRSL models are learned from
// the training data, missing values are injected into test tuples, and the
// inferred distributions are scored against the generating network's exact
// conditionals with KL divergence and top-1 accuracy.
package experiment

import (
	"fmt"
	"io"
)

// Options set the scale knobs shared by all experiment runners.
type Options struct {
	// Instances is the number of random network instances per topology
	// (the paper uses 3).
	Instances int
	// Splits is the number of train/test splits per instance (paper: 3).
	Splits int
	// TrainSize is the default training set size.
	TrainSize int
	// TrainSizes is the sweep used by Fig. 4(a) and Fig. 5.
	TrainSizes []int
	// Support is the default support threshold theta.
	Support float64
	// Supports is the sweep used by Fig. 4(b), 4(c), and Fig. 6.
	Supports []float64
	// MaxItemsets is the Apriori round cutoff (paper: 1000).
	MaxItemsets int
	// TestCount caps the number of test tuples scored per run.
	TestCount int
	// GibbsBurnIn is the burn-in B per chain.
	GibbsBurnIn int
	// GibbsSamples is the default recorded sample count N per tuple.
	GibbsSamples int
	// GibbsSampleCounts is the N sweep of Fig. 10.
	GibbsSampleCounts []int
	// WorkloadSizes is the workload sweep of Fig. 11.
	WorkloadSizes []int
	// Seed anchors all randomness; every runner derives deterministic
	// sub-seeds from it.
	Seed int64
	// Progress, when non-nil, receives one line per major step.
	Progress io.Writer
}

// Quick returns reduced-scale options that keep every runner fast enough
// for tests and benchmarks while preserving the figures' qualitative
// shapes.
func Quick() Options {
	return Options{
		Instances:         1,
		Splits:            1,
		TrainSize:         3000,
		TrainSizes:        []int{500, 1000, 2000, 4000},
		Support:           0.01,
		Supports:          []float64{0.005, 0.01, 0.05, 0.1},
		MaxItemsets:       1000,
		TestCount:         150,
		GibbsBurnIn:       50,
		GibbsSamples:      300,
		GibbsSampleCounts: []int{100, 300, 600},
		WorkloadSizes:     []int{50, 100, 200},
		Seed:              1,
	}
}

// Paper returns the paper's published experiment parameters. Runs take
// minutes to hours depending on the experiment, as in the original.
func Paper() Options {
	return Options{
		Instances:         3,
		Splits:            3,
		TrainSize:         100000,
		TrainSizes:        []int{1000, 2000, 5000, 10000, 20000, 50000, 100000},
		Support:           0.001,
		Supports:          []float64{0.001, 0.01, 0.02, 0.05, 0.1},
		MaxItemsets:       1000,
		TestCount:         1000,
		GibbsBurnIn:       100,
		GibbsSamples:      2000,
		GibbsSampleCounts: []int{100, 500, 1000, 2000, 5000},
		WorkloadSizes:     []int{100, 500, 1000, 2000, 3000},
		Seed:              2011,
	}
}

// validate rejects obviously unusable option sets.
func (o Options) validate() error {
	if o.Instances < 1 || o.Splits < 1 {
		return fmt.Errorf("experiment: Instances and Splits must be >= 1")
	}
	if o.TrainSize < 10 {
		return fmt.Errorf("experiment: TrainSize %d too small", o.TrainSize)
	}
	if o.Support <= 0 || o.Support > 1 {
		return fmt.Errorf("experiment: Support %v out of (0, 1]", o.Support)
	}
	if o.TestCount < 1 {
		return fmt.Errorf("experiment: TestCount must be >= 1")
	}
	return nil
}

// logf writes a progress line if a Progress writer is configured.
func (o Options) logf(format string, args ...any) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format+"\n", args...)
	}
}

// Network sets used by the paper's experiment sections. The paper names
// counts and property ranges; these concrete lists satisfy them (see
// DESIGN.md).
var (
	// LearningNetworks: "10 networks... 4-6 attributes, attribute
	// cardinality 2-8, domain size 16 to 262,144" (Section VI-B).
	LearningNetworks = []string{
		"BN1", "BN3", "BN8", "BN9", "BN10", "BN11", "BN12", "BN13", "BN15", "BN16",
	}
	// SingleInferenceNetworks: the 14 networks of Table II.
	SingleInferenceNetworks = []string{
		"BN1", "BN2", "BN3", "BN4", "BN5", "BN6", "BN7", "BN8", "BN9", "BN10",
		"BN11", "BN12", "BN17", "BN18",
	}
	// MultiInferenceNetworks: "10 networks with 4 to 8 attributes,
	// cardinality between 2 and 5.2, domain size between 16 and 4096"
	// (Section VI-D).
	MultiInferenceNetworks = []string{
		"BN1", "BN2", "BN5", "BN8", "BN9", "BN10", "BN13", "BN14", "BN17", "BN18",
	}
)
