package experiment

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/bn"
	"repro/internal/derive"
	"repro/internal/gibbs"
	"repro/internal/relation"
)

// DerivePoint is one measurement of the streaming derivation engine at a
// worker count.
type DerivePoint struct {
	Network string
	Workers int
	// WallSec is the end-to-end wall-clock time of one streamed
	// derivation of the workload relation.
	WallSec float64
	// Speedup is relative to the first worker count measured.
	Speedup float64
	// VoteHitRate is the fraction of single-missing input tuples served
	// by the shared memo cache rather than voted afresh (duplicates in
	// the workload).
	VoteHitRate float64
	// Blocks is the number of blocks streamed (sanity: identical across
	// worker counts).
	Blocks int
}

// buildDirtyRelation assembles a derivation workload with the duplicate
// structure real dirty data has: complete tuples pass through, and the
// incomplete tuples repeat a limited set of damage patterns, so the
// engine's evidence-keyed caches have duplicates to absorb.
func buildDirtyRelation(env *Env, rng *rand.Rand, size, patterns int) (*relation.Relation, error) {
	nAttrs := env.Top.NumAttrs()
	rel := relation.NewRelation(env.Train.Schema)
	distinct := make([]relation.Tuple, 0, patterns)
	for i := 0; i < patterns; i++ {
		tu := env.Test[i%len(env.Test)].Clone()
		k := 1 + rng.Intn(2) // 1 or 2 missing values
		for _, a := range rng.Perm(nAttrs)[:k] {
			tu[a] = relation.Missing
		}
		distinct = append(distinct, tu)
	}
	for i := 0; i < size; i++ {
		var tu relation.Tuple
		switch {
		case rng.Float64() < 0.3: // complete pass-through tuple
			tu = env.Test[rng.Intn(len(env.Test))].Clone()
		default: // duplicate of one of the damage patterns
			tu = distinct[rng.Intn(len(distinct))].Clone()
		}
		if err := rel.Append(tu); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// RunAblationDerive measures the streaming derivation engine
// (derive.Engine) end to end on a duplicate-heavy dirty relation at
// several worker counts. Every row uses the independent-chains estimator
// (GibbsWorkers > 0), whose output is bit-identical for every positive
// worker count, so the speedup column isolates parallelism; only
// wall-clock time varies across rows.
func RunAblationDerive(opt Options, networks []string, workerCounts []int) ([]DerivePoint, *Table, error) {
	if err := opt.validate(); err != nil {
		return nil, nil, err
	}
	if len(networks) == 0 {
		networks = []string{"BN9"}
	}
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8}
	}
	var points []DerivePoint
	for _, id := range networks {
		top, err := bn.ByID(id)
		if err != nil {
			return nil, nil, err
		}
		env, err := MakeEnv(top, opt, 0, 0, opt.TrainSize)
		if err != nil {
			return nil, nil, err
		}
		m, err := env.Learn(opt.Support, opt.MaxItemsets)
		if err != nil {
			return nil, nil, err
		}
		rng := rand.New(rand.NewSource(seedFor(opt.Seed, "derive:"+id)))
		size := opt.WorkloadSizes[len(opt.WorkloadSizes)-1] * 8
		rel, err := buildDirtyRelation(env, rng, size, 12)
		if err != nil {
			return nil, nil, err
		}
		var base float64
		for _, workers := range workerCounts {
			eng, err := derive.New(m, derive.Config{
				Method: defaultMethod(),
				Gibbs: gibbs.Config{
					Samples: opt.GibbsSamples,
					BurnIn:  opt.GibbsBurnIn,
					Method:  defaultMethod(),
					Seed:    seedFor(opt.Seed, "deriverng:"+id),
				},
				VoteWorkers:  workers,
				GibbsWorkers: workers,
			})
			if err != nil {
				return nil, nil, err
			}
			blocks := 0
			start := time.Now()
			err = eng.Stream(rel, func(it derive.Item) error {
				if !it.Certain() {
					blocks++
				}
				return nil
			})
			if err != nil {
				return nil, nil, err
			}
			sec := time.Since(start).Seconds()
			if workers == workerCounts[0] {
				base = sec
			}
			speedup := 0.0
			if sec > 0 {
				speedup = base / sec
			}
			points = append(points, DerivePoint{
				Network: id, Workers: workers, WallSec: sec, Speedup: speedup,
				VoteHitRate: eng.Stats().VoteHitRate(), Blocks: blocks,
			})
			opt.logf("ablation-derive: %s workers=%d %.3fs (%d blocks)", id, workers, sec, blocks)
		}
	}
	t := &Table{
		Title:  "Ablation: streaming derivation engine (DeriveStream)",
		Header: []string{"network", "workers", "time (s)", "speedup", "vote hit rate", "blocks"},
	}
	for _, p := range points {
		t.AddRow(p.Network, p.Workers, p.WallSec, p.Speedup, fmt.Sprintf("%.2f", p.VoteHitRate), p.Blocks)
	}
	return points, t, nil
}
