package experiment

import (
	"fmt"
	"time"

	"repro/internal/bn"
	"repro/internal/core"
	"repro/internal/vote"
)

// Table2Row is one network's accuracy under the four voting methods
// (Table II of the paper).
type Table2Row struct {
	Network string
	// ByMethod is indexed like vote.Methods(): all-averaged, all-weighted,
	// best-averaged, best-weighted.
	ByMethod [4]Accuracy
}

// RunTable2 reproduces Table II: single-variable inference accuracy (top-1
// and KL) per network for every voting method, at the options' default
// support and training size.
func RunTable2(opt Options, networks []string) ([]Table2Row, *Table, error) {
	if err := opt.validate(); err != nil {
		return nil, nil, err
	}
	if len(networks) == 0 {
		networks = SingleInferenceNetworks
	}
	methods := vote.Methods()
	var rows []Table2Row
	for _, id := range networks {
		top, err := bn.ByID(id)
		if err != nil {
			return nil, nil, err
		}
		row := Table2Row{Network: id}
		err = envsFor(top, opt, opt.TrainSize, func(env *Env) error {
			m, err := env.Learn(opt.Support, opt.MaxItemsets)
			if err != nil {
				return err
			}
			workload := singleMissingWorkload(env, opt, "table2")
			for mi, method := range methods {
				acc, err := evalSingle(env, m, method, workload)
				if err != nil {
					return err
				}
				row.ByMethod[mi].merge(acc)
			}
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		opt.logf("table2: %s best-averaged KL=%.3f top1=%.2f",
			id, row.ByMethod[2].KL, row.ByMethod[2].Top1)
		rows = append(rows, row)
	}
	t := &Table{
		Title: fmt.Sprintf("Table II: single-variable inference accuracy (support=%v, train=%d)",
			opt.Support, opt.TrainSize),
		Header: []string{"network",
			"all-avg top1", "all-avg KL",
			"all-wtd top1", "all-wtd KL",
			"best-avg top1", "best-avg KL", "±",
			"best-wtd top1", "best-wtd KL"},
	}
	for _, r := range rows {
		t.AddRow(r.Network,
			r.ByMethod[0].Top1, r.ByMethod[0].KL,
			r.ByMethod[1].Top1, r.ByMethod[1].KL,
			r.ByMethod[2].Top1, r.ByMethod[2].KL, r.ByMethod[2].KLStdErr(),
			r.ByMethod[3].Top1, r.ByMethod[3].KL)
	}
	return rows, t, nil
}

// SweepPoint is one observation of an accuracy sweep (Fig. 5 or Fig. 6):
// accuracy per voting method at one x-axis setting.
type SweepPoint struct {
	X        float64 // training size or support
	ByMethod [4]Accuracy
}

// RunFig5 reproduces Fig. 5: KL divergence and top-1 accuracy as a function
// of training set size, for all four voting methods, at the options'
// default support.
func RunFig5(opt Options, networks []string) ([]SweepPoint, *Table, error) {
	if err := opt.validate(); err != nil {
		return nil, nil, err
	}
	if len(networks) == 0 {
		networks = SingleInferenceNetworks
	}
	var points []SweepPoint
	for _, size := range opt.TrainSizes {
		pt := SweepPoint{X: float64(size)}
		if err := sweepAccuracy(opt, networks, size, opt.Support, "fig5", &pt); err != nil {
			return nil, nil, err
		}
		opt.logf("fig5: train=%d best-avg KL=%.3f", size, pt.ByMethod[2].KL)
		points = append(points, pt)
	}
	t := sweepTable(fmt.Sprintf("Fig 5: accuracy vs training set size (support=%v)", opt.Support),
		"training size", points)
	return points, t, nil
}

// RunFig6 reproduces Fig. 6: accuracy as a function of support, with the
// training size fixed at the options' default.
func RunFig6(opt Options, networks []string) ([]SweepPoint, *Table, error) {
	if err := opt.validate(); err != nil {
		return nil, nil, err
	}
	if len(networks) == 0 {
		networks = SingleInferenceNetworks
	}
	var points []SweepPoint
	for _, sup := range opt.Supports {
		pt := SweepPoint{X: sup}
		if err := sweepAccuracy(opt, networks, opt.TrainSize, sup, "fig6", &pt); err != nil {
			return nil, nil, err
		}
		opt.logf("fig6: support=%v best-avg KL=%.3f", sup, pt.ByMethod[2].KL)
		points = append(points, pt)
	}
	t := sweepTable(fmt.Sprintf("Fig 6: accuracy vs support (train=%d)", opt.TrainSize),
		"support", points)
	return points, t, nil
}

func sweepAccuracy(opt Options, networks []string, trainSize int, support float64, label string, pt *SweepPoint) error {
	methods := vote.Methods()
	for _, id := range networks {
		top, err := bn.ByID(id)
		if err != nil {
			return err
		}
		err = envsFor(top, opt, trainSize, func(env *Env) error {
			m, err := env.Learn(support, opt.MaxItemsets)
			if err != nil {
				return err
			}
			workload := singleMissingWorkload(env, opt, label)
			for mi, method := range methods {
				acc, err := evalSingle(env, m, method, workload)
				if err != nil {
					return err
				}
				pt.ByMethod[mi].merge(acc)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func sweepTable(title, xName string, points []SweepPoint) *Table {
	t := &Table{
		Title: title,
		Header: []string{xName,
			"all-avg KL", "all-wtd KL", "best-avg KL", "best-wtd KL",
			"all-avg top1", "all-wtd top1", "best-avg top1", "best-wtd top1"},
	}
	for _, p := range points {
		t.AddRow(p.X,
			p.ByMethod[0].KL, p.ByMethod[1].KL, p.ByMethod[2].KL, p.ByMethod[3].KL,
			p.ByMethod[0].Top1, p.ByMethod[1].Top1, p.ByMethod[2].Top1, p.ByMethod[3].Top1)
	}
	return t
}

// Fig8Point relates a network property to single-attribute accuracy under
// best-averaged voting (Fig. 8(a)-(c)).
type Fig8Point struct {
	Network  string
	Property int // depth label, attribute count, or cardinality
	KL       float64
}

// RunFig8 scores the given networks with best-averaged voting and labels
// each with the requested property: "depth" (Fig. 8(a)), "attrs"
// (Fig. 8(b)), or "card" (Fig. 8(c)).
func RunFig8(opt Options, networks []string, property string) ([]Fig8Point, *Table, error) {
	if err := opt.validate(); err != nil {
		return nil, nil, err
	}
	method := vote.Method{Choice: core.BestVoters, Scheme: vote.Averaged}
	var points []Fig8Point
	for _, id := range networks {
		top, err := bn.ByID(id)
		if err != nil {
			return nil, nil, err
		}
		var prop int
		switch property {
		case "depth":
			prop = top.DepthLabel
		case "attrs":
			prop = top.NumAttrs()
		case "card":
			prop = int(top.AvgCard() + 0.5)
		default:
			return nil, nil, fmt.Errorf("experiment: unknown property %q", property)
		}
		var acc Accuracy
		err = envsFor(top, opt, opt.TrainSize, func(env *Env) error {
			m, err := env.Learn(opt.Support, opt.MaxItemsets)
			if err != nil {
				return err
			}
			workload := singleMissingWorkload(env, opt, "fig8"+property)
			a, err := evalSingle(env, m, method, workload)
			if err != nil {
				return err
			}
			acc.merge(a)
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		opt.logf("fig8-%s: %s %s=%d KL=%.3f", property, id, property, prop, acc.KL)
		points = append(points, Fig8Point{Network: id, Property: prop, KL: acc.KL})
	}
	t := &Table{
		Title:  fmt.Sprintf("Fig 8 (%s): KL vs network %s (best-averaged)", property, property),
		Header: []string{"network", property, "avg KL"},
	}
	for _, p := range points {
		t.AddRow(p.Network, p.Property, p.KL)
	}
	return points, t, nil
}

// Fig9Point is one inference-time observation: a batch of tuples scored
// against a model of a given size (Fig. 9).
type Fig9Point struct {
	Network    string
	ModelSize  int
	BatchSize  int
	InferSec   float64
	PerTupleMS float64
}

// RunFig9 measures single-attribute inference wall time as a function of
// model size for several batch sizes, at the options' default support.
func RunFig9(opt Options, networks []string, batches []int) ([]Fig9Point, *Table, error) {
	if err := opt.validate(); err != nil {
		return nil, nil, err
	}
	if len(networks) == 0 {
		networks = SingleInferenceNetworks
	}
	if len(batches) == 0 {
		batches = []int{1000, 5000, 10000}
	}
	method := vote.Method{Choice: core.BestVoters, Scheme: vote.Averaged}
	var points []Fig9Point
	for _, id := range networks {
		top, err := bn.ByID(id)
		if err != nil {
			return nil, nil, err
		}
		env, err := MakeEnv(top, opt, 0, 0, opt.TrainSize)
		if err != nil {
			return nil, nil, err
		}
		m, err := env.Learn(opt.Support, opt.MaxItemsets)
		if err != nil {
			return nil, nil, err
		}
		base := singleMissingWorkload(env, opt, "fig9")
		if len(base) == 0 {
			continue
		}
		for _, batch := range batches {
			// Repeat the workload cyclically to reach the batch size.
			start := time.Now()
			for i := 0; i < batch; i++ {
				tu := base[i%len(base)]
				attr := tu.MissingAttrs()[0]
				if _, err := vote.Infer(m, tu, attr, method); err != nil {
					return nil, nil, err
				}
			}
			sec := time.Since(start).Seconds()
			points = append(points, Fig9Point{
				Network:    id,
				ModelSize:  m.Size(),
				BatchSize:  batch,
				InferSec:   sec,
				PerTupleMS: sec / float64(batch) * 1000,
			})
		}
		opt.logf("fig9: %s model=%d done", id, m.Size())
	}
	t := &Table{
		Title:  "Fig 9: single-attribute inference time vs model size",
		Header: []string{"network", "model size", "batch", "time (s)", "ms/tuple"},
	}
	for _, p := range points {
		t.AddRow(p.Network, p.ModelSize, p.BatchSize, p.InferSec, p.PerTupleMS)
	}
	return points, t, nil
}
