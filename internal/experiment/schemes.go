package experiment

import (
	"repro/internal/bn"
	"repro/internal/core"
	"repro/internal/vote"
)

// SchemePoint is single-attribute accuracy under one voting configuration,
// for the extension-scheme ablation.
type SchemePoint struct {
	Network string
	Method  string
	Acc     Accuracy
}

// extendedMethods returns the paper's four voting methods plus the two
// extension schemes (median, log-opinion-pool) under both voter choices.
func extendedMethods() []vote.Method {
	out := vote.Methods()
	for _, choice := range []core.VoterChoice{core.AllVoters, core.BestVoters} {
		out = append(out,
			vote.Method{Choice: choice, Scheme: vote.Median},
			vote.Method{Choice: choice, Scheme: vote.LogPool},
		)
	}
	return out
}

// RunAblationSchemes scores every voting method — the paper's four plus
// the median and log-pool extensions — on single-attribute inference.
func RunAblationSchemes(opt Options, networks []string) ([]SchemePoint, *Table, error) {
	if err := opt.validate(); err != nil {
		return nil, nil, err
	}
	if len(networks) == 0 {
		networks = []string{"BN8", "BN9", "BN13"}
	}
	methods := extendedMethods()
	var points []SchemePoint
	for _, id := range networks {
		top, err := bn.ByID(id)
		if err != nil {
			return nil, nil, err
		}
		accs := make([]Accuracy, len(methods))
		err = envsFor(top, opt, opt.TrainSize, func(env *Env) error {
			m, err := env.Learn(opt.Support, opt.MaxItemsets)
			if err != nil {
				return err
			}
			workload := singleMissingWorkload(env, opt, "schemes")
			for mi, method := range methods {
				a, err := evalSingle(env, m, method, workload)
				if err != nil {
					return err
				}
				accs[mi].merge(a)
			}
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		for mi, method := range methods {
			points = append(points, SchemePoint{
				Network: id,
				Method:  method.String(),
				Acc:     accs[mi],
			})
		}
		opt.logf("ablation-schemes: %s done", id)
	}
	t := &Table{
		Title:  "Ablation: voting schemes incl. median and log-pool extensions",
		Header: []string{"network", "method", "KL", "top-1"},
	}
	for _, p := range points {
		t.AddRow(p.Network, p.Method, p.Acc.KL, p.Acc.Top1)
	}
	return points, t, nil
}
