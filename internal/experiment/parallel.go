package experiment

import (
	"math/rand"
	"time"

	"repro/internal/bn"
	"repro/internal/gibbs"
)

// ParallelPoint measures workload inference wall time at one worker count.
type ParallelPoint struct {
	Network string
	Workers int
	WallSec float64
	Speedup float64 // relative to workers=1
}

// RunAblationParallel measures the wall-clock speedup of the parallel
// tuple-at-a-time runner across worker counts — an implementation ablation
// of this reproduction (the paper's prototype was single-threaded).
// Per-tuple seeding keeps results bit-identical across worker counts, so
// only time changes.
func RunAblationParallel(opt Options, networks []string, workerCounts []int) ([]ParallelPoint, *Table, error) {
	if err := opt.validate(); err != nil {
		return nil, nil, err
	}
	if len(networks) == 0 {
		networks = []string{"BN9"}
	}
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8}
	}
	var points []ParallelPoint
	for _, id := range networks {
		top, err := bn.ByID(id)
		if err != nil {
			return nil, nil, err
		}
		env, err := MakeEnv(top, opt, 0, 0, opt.TrainSize)
		if err != nil {
			return nil, nil, err
		}
		m, err := env.Learn(opt.Support, opt.MaxItemsets)
		if err != nil {
			return nil, nil, err
		}
		rng := rand.New(rand.NewSource(seedFor(opt.Seed, "par:"+id)))
		workload := buildMixedWorkload(env, rng, opt.WorkloadSizes[len(opt.WorkloadSizes)-1])
		var base float64
		for _, workers := range workerCounts {
			s, err := gibbs.New(m, gibbs.Config{
				Samples: opt.GibbsSamples,
				BurnIn:  opt.GibbsBurnIn,
				Method:  defaultMethod(),
				Seed:    seedFor(opt.Seed, "parrng:"+id),
			})
			if err != nil {
				return nil, nil, err
			}
			start := time.Now()
			if _, err := s.ParallelTupleAtATime(workload, workers); err != nil {
				return nil, nil, err
			}
			sec := time.Since(start).Seconds()
			if workers == workerCounts[0] {
				base = sec
			}
			speedup := 0.0
			if sec > 0 {
				speedup = base / sec
			}
			points = append(points, ParallelPoint{
				Network: id, Workers: workers, WallSec: sec, Speedup: speedup,
			})
			opt.logf("ablation-parallel: %s workers=%d %.3fs", id, workers, sec)
		}
	}
	t := &Table{
		Title:  "Ablation: parallel workload inference (tuple-at-a-time)",
		Header: []string{"network", "workers", "time (s)", "speedup"},
	}
	for _, p := range points {
		t.AddRow(p.Network, p.Workers, p.WallSec, p.Speedup)
	}
	return points, t, nil
}
