package experiment

import (
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gibbs"
	"repro/internal/relation"
	"repro/internal/vote"
)

// Accuracy aggregates the paper's two accuracy metrics over a set of test
// tuples: mean KL divergence between the true conditional and the
// prediction, and the fraction of correct top-1 guesses. It also tracks
// the per-tuple KL dispersion (Welford), so results averaged over the
// paper's instances x splits protocol carry an uncertainty estimate.
type Accuracy struct {
	KL   float64
	Top1 float64
	N    int
	// klM2 is the running sum of squared KL deviations (Welford).
	klM2 float64

	finished bool
}

func (a *Accuracy) add(kl float64, top1 bool) {
	// KL holds the running sum until finish(); the Welford recurrence uses
	// the means implied by that sum.
	prevMean := 0.0
	if a.N > 0 {
		prevMean = a.KL / float64(a.N)
	}
	a.N++
	a.KL += kl
	newMean := a.KL / float64(a.N)
	a.klM2 += (kl - prevMean) * (kl - newMean)
	if top1 {
		a.Top1++
	}
}

func (a *Accuracy) finish() {
	if a.finished {
		return
	}
	if a.N > 0 {
		a.KL /= float64(a.N)
		a.Top1 /= float64(a.N)
	}
	a.finished = true
}

// KLStdDev returns the sample standard deviation of per-tuple KL values.
func (a *Accuracy) KLStdDev() float64 {
	if a.N < 2 {
		return 0
	}
	return sqrt(a.klM2 / float64(a.N-1))
}

// KLStdErr returns the standard error of the mean KL.
func (a *Accuracy) KLStdErr() float64 {
	if a.N < 1 {
		return 0
	}
	return a.KLStdDev() / sqrt(float64(a.N))
}

// merge averages another (finished) accuracy into this one, weighting by
// sample count and combining dispersion with the parallel-variance
// formula.
func (a *Accuracy) merge(b Accuracy) {
	total := a.N + b.N
	if total == 0 {
		return
	}
	na, nb := float64(a.N), float64(b.N)
	delta := b.KL - a.KL
	a.klM2 = a.klM2 + b.klM2 + delta*delta*na*nb/float64(total)
	a.KL = (a.KL*na + b.KL*nb) / float64(total)
	a.Top1 = (a.Top1*na + b.Top1*nb) / float64(total)
	a.N = total
	a.finished = true
}

func sqrt(v float64) float64 {
	return math.Sqrt(v)
}

// evalSingle scores single-attribute inference: each workload tuple has
// exactly one missing attribute; the voted estimate is compared with the
// network's exact conditional.
func evalSingle(env *Env, m *core.Model, method vote.Method, workload []relation.Tuple) (Accuracy, error) {
	var acc Accuracy
	for _, tu := range workload {
		attr := tu.MissingAttrs()[0]
		pred, err := vote.Infer(m, tu, attr, method)
		if err != nil {
			return acc, err
		}
		truth, err := env.Inst.ConditionalSingle(tu, attr)
		if err != nil {
			return acc, err
		}
		kl, err := dist.KL(truth, pred)
		if err != nil {
			return acc, err
		}
		top1, err := dist.Top1Match(truth, pred)
		if err != nil {
			return acc, err
		}
		acc.add(kl, top1)
	}
	acc.finish()
	return acc, nil
}

// evalJoint scores a set of inferred joint distributions against the exact
// conditionals.
func evalJoint(env *Env, tuples []relation.Tuple, dists []*dist.Joint) (Accuracy, error) {
	var acc Accuracy
	for i, tu := range tuples {
		truth, err := env.Inst.Conditional(tu)
		if err != nil {
			return acc, err
		}
		kl, err := dist.KLJoint(truth, dists[i])
		if err != nil {
			return acc, err
		}
		top1, err := dist.Top1Match(truth.P, dists[i].P)
		if err != nil {
			return acc, err
		}
		acc.add(kl, top1)
	}
	acc.finish()
	return acc, nil
}

// evalGibbsTuples runs tuple-at-a-time Gibbs over a workload and scores the
// estimates.
func evalGibbsTuples(env *Env, m *core.Model, cfg gibbs.Config, workload []relation.Tuple) (Accuracy, error) {
	s, err := gibbs.New(m, cfg)
	if err != nil {
		return Accuracy{}, err
	}
	res, err := s.TupleAtATime(workload)
	if err != nil {
		return Accuracy{}, err
	}
	return evalJoint(env, res.Tuples, res.Dists)
}

// singleMissingWorkload hides one uniformly random attribute per test
// tuple.
func singleMissingWorkload(env *Env, opt Options, label string) []relation.Tuple {
	rng := rand.New(rand.NewSource(seedFor(opt.Seed, "wl:"+label+env.Top.ID)))
	return env.TestWorkload(rng, opt.TestCount, 1)
}
