package experiment

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableWriteCSV(t *testing.T) {
	tab := &Table{Title: "ignored", Header: []string{"x", "y"}}
	tab.AddRow(1, 0.5)
	tab.AddRow("a,b", 2) // comma requires quoting
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), buf.String())
	}
	if lines[0] != "x,y" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[2] != `"a,b",2` {
		t.Errorf("quoted row = %q", lines[2])
	}
	if strings.Contains(buf.String(), "ignored") {
		t.Error("title leaked into CSV")
	}
}

func TestTableCSVRoundTripsNumbers(t *testing.T) {
	tab := &Table{Header: []string{"v"}}
	tab.AddRow(0.12345)
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0.1235") {
		t.Errorf("float formatting lost: %q", buf.String())
	}
}
