package experiment

import (
	"math"
	"math/rand"
	"testing"
)

// directStats computes mean and sample variance the straightforward way.
func directStats(vals []float64) (mean, variance float64) {
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	for _, v := range vals {
		d := v - mean
		variance += d * d
	}
	if len(vals) > 1 {
		variance /= float64(len(vals) - 1)
	}
	return mean, variance
}

// TestAccuracyWelfordMatchesDirect: add() accumulates the same mean and
// standard deviation as a direct two-pass computation.
func TestAccuracyWelfordMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	vals := make([]float64, 500)
	var acc Accuracy
	for i := range vals {
		vals[i] = rng.ExpFloat64() * 0.3
		acc.add(vals[i], i%3 == 0)
	}
	acc.finish()
	mean, variance := directStats(vals)
	if math.Abs(acc.KL-mean) > 1e-9 {
		t.Errorf("mean = %v, want %v", acc.KL, mean)
	}
	if math.Abs(acc.KLStdDev()-math.Sqrt(variance)) > 1e-9 {
		t.Errorf("stddev = %v, want %v", acc.KLStdDev(), math.Sqrt(variance))
	}
	if math.Abs(acc.Top1-167.0/500) > 1e-9 {
		t.Errorf("top1 = %v", acc.Top1)
	}
	wantSE := math.Sqrt(variance) / math.Sqrt(500)
	if math.Abs(acc.KLStdErr()-wantSE) > 1e-9 {
		t.Errorf("stderr = %v, want %v", acc.KLStdErr(), wantSE)
	}
}

// TestAccuracyMergeMatchesPooled: merging two finished accumulators equals
// computing statistics over the pooled samples.
func TestAccuracyMergeMatchesPooled(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := make([]float64, 120)
	b := make([]float64, 80)
	var accA, accB Accuracy
	for i := range a {
		a[i] = rng.Float64()
		accA.add(a[i], false)
	}
	for i := range b {
		b[i] = 0.5 + rng.Float64() // shifted: dispersion across groups
		accB.add(b[i], true)
	}
	accA.finish()
	accB.finish()
	accA.merge(accB)

	pooled := append(append([]float64(nil), a...), b...)
	mean, variance := directStats(pooled)
	if math.Abs(accA.KL-mean) > 1e-9 {
		t.Errorf("merged mean = %v, want %v", accA.KL, mean)
	}
	if math.Abs(accA.KLStdDev()-math.Sqrt(variance)) > 1e-9 {
		t.Errorf("merged stddev = %v, want %v", accA.KLStdDev(), math.Sqrt(variance))
	}
	if math.Abs(accA.Top1-80.0/200) > 1e-9 {
		t.Errorf("merged top1 = %v", accA.Top1)
	}
	if accA.N != 200 {
		t.Errorf("merged N = %d", accA.N)
	}
}

func TestAccuracyEdgeCases(t *testing.T) {
	var empty Accuracy
	empty.finish()
	if empty.KLStdDev() != 0 || empty.KLStdErr() != 0 {
		t.Error("empty accuracy should have zero dispersion")
	}
	var one Accuracy
	one.add(0.5, true)
	one.finish()
	if one.KLStdDev() != 0 {
		t.Error("single sample has no sample stddev")
	}
	// Merging into an empty accumulator adopts the other side.
	var a, b Accuracy
	b.add(0.3, false)
	b.add(0.5, true)
	b.finish()
	a.merge(b)
	if math.Abs(a.KL-0.4) > 1e-12 || a.N != 2 {
		t.Errorf("merge into empty: KL=%v N=%d", a.KL, a.N)
	}
	// finish() is idempotent.
	before := b.KL
	b.finish()
	if b.KL != before {
		t.Error("double finish changed the mean")
	}
}
