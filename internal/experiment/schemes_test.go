package experiment

import (
	"testing"
)

func TestExtendedMethodsShape(t *testing.T) {
	ms := extendedMethods()
	if len(ms) != 8 {
		t.Fatalf("methods = %d, want 8 (4 paper + 4 extensions)", len(ms))
	}
	seen := make(map[string]bool)
	for _, m := range ms {
		if seen[m.String()] {
			t.Errorf("duplicate method %q", m)
		}
		seen[m.String()] = true
	}
}

func TestRunAblationSchemes(t *testing.T) {
	opt := tinyOpt()
	opt.TrainSize = 2500
	opt.Support = 0.005
	points, tab, err := RunAblationSchemes(opt, []string{"BN8"})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 8 {
		t.Fatalf("points = %d, want 8", len(points))
	}
	for _, p := range points {
		if p.Acc.N == 0 {
			t.Errorf("%s/%s scored no tuples", p.Network, p.Method)
		}
		if p.Acc.KL < 0 {
			t.Errorf("%s/%s negative KL", p.Network, p.Method)
		}
		if p.Acc.Top1 < 0 || p.Acc.Top1 > 1 {
			t.Errorf("%s/%s top1 = %v", p.Network, p.Method, p.Acc.Top1)
		}
	}
	if len(tab.Rows) != len(points) {
		t.Error("table rows mismatch")
	}
	// All methods should be competitive on an easy network: none should
	// be catastrophically worse than the best.
	best := points[0].Acc.KL
	for _, p := range points {
		if p.Acc.KL < best {
			best = p.Acc.KL
		}
	}
	for _, p := range points {
		if p.Acc.KL > best+0.5 {
			t.Errorf("%s KL=%v vs best %v — implausible gap", p.Method, p.Acc.KL, best)
		}
	}
}

func TestRunAblationParallel(t *testing.T) {
	opt := tinyOpt()
	opt.GibbsSamples = 60
	points, tab, err := RunAblationParallel(opt, []string{"BN8"}, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	if points[0].Workers != 1 || points[1].Workers != 4 {
		t.Errorf("worker counts = %+v", points)
	}
	for _, p := range points {
		if p.WallSec < 0 {
			t.Errorf("negative wall time")
		}
	}
	if len(tab.Rows) != 2 {
		t.Error("table rows mismatch")
	}
}
