package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: a titled grid of cells, printed
// with aligned columns. Every runner produces one or more tables whose rows
// mirror the corresponding table or figure of the paper.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells, formatting each with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// trimFloat renders floats compactly (4 significant decimals, no trailing
// zeros).
func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// Render draws the table with padded columns.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) && len(c) < widths[i] {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// WriteCSV emits the table as CSV (header row first, title omitted), the
// plot-ready form of every experiment's data series.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return fmt.Errorf("experiment: writing csv header: %w", err)
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiment: writing csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
