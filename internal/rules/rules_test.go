package rules

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/itemset"
	"repro/internal/relation"
)

// paperExampleResult mines the complete part of the paper's Fig. 1 relation
// with a permissive threshold, so the worked examples of Section II can be
// checked directly.
func paperExampleResult(t *testing.T) (*itemset.Result, *relation.Relation) {
	t.Helper()
	rc, _ := relation.Matchmaking().Split()
	res, err := itemset.Mine(rc, itemset.Config{SupportThreshold: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	return res, rc
}

func TestBuildRulesEmptyResult(t *testing.T) {
	if _, err := BuildRules(nil, 0); err == nil {
		t.Error("nil result should fail")
	}
}

// TestPaperMetaRuleExample reproduces the worked example of Definition 2.6:
// meta-rule with head age and body {edu=HS} estimates
// P(age | edu = HS) from rule confidences.
//
// In the complete part of Fig. 1 (8 points: t2, t4, t6, t7, t9, t13, t15,
// t17), edu=HS holds for t4, t6, t7, t17 (4 points): ages 20, 20, 20, 40.
// So P(age|edu=HS) ≈ [3/4, 0, 1/4] before smoothing.
func TestPaperMetaRuleExample(t *testing.T) {
	res, rc := paperExampleResult(t)
	ageIdx := rc.Schema.AttrIndex("age")
	eduIdx := rc.Schema.AttrIndex("edu")
	rules, err := BuildRules(res, ageIdx)
	if err != nil {
		t.Fatal(err)
	}
	metas, err := BuildMetaRules(rules, rc.Schema.Attrs[ageIdx].Card())
	if err != nil {
		t.Fatal(err)
	}
	var m *MetaRule
	for _, cand := range metas {
		if cand.BodySize == 1 && cand.Body[eduIdx] == 0 { // edu=HS
			m = cand
			break
		}
	}
	if m == nil {
		t.Fatal("no meta-rule with body {edu=HS}")
	}
	if m.HeadAttr != ageIdx {
		t.Errorf("head attr = %d, want %d", m.HeadAttr, ageIdx)
	}
	if got, want := m.Weight, 0.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("weight = %v, want %v (supp of edu=HS)", got, want)
	}
	// CPD close to [0.75, ~0, 0.25] after smoothing.
	if math.Abs(m.CPD[0]-0.75) > 0.01 || math.Abs(m.CPD[2]-0.25) > 0.01 {
		t.Errorf("CPD = %v, want ≈[0.75 eps 0.25]", m.CPD)
	}
	if !m.CPD.IsPositive() || !m.CPD.IsNormalized(1e-9) {
		t.Errorf("CPD not a positive distribution: %v", m.CPD)
	}
	if m.NumRules != 2 { // age=20 and age=40 co-occur with edu=HS
		t.Errorf("NumRules = %d, want 2", m.NumRules)
	}
}

// TestTopLevelMetaRule: the empty body produces the marginal P(age), with
// weight 1.
func TestTopLevelMetaRule(t *testing.T) {
	res, rc := paperExampleResult(t)
	ageIdx := rc.Schema.AttrIndex("age")
	rules, err := BuildRules(res, ageIdx)
	if err != nil {
		t.Fatal(err)
	}
	metas, err := BuildMetaRules(rules, 3)
	if err != nil {
		t.Fatal(err)
	}
	var top *MetaRule
	for _, m := range metas {
		if m.BodySize == 0 {
			top = m
			break
		}
	}
	if top == nil {
		t.Fatal("no top-level meta-rule")
	}
	if math.Abs(top.Weight-1) > 1e-9 {
		t.Errorf("top-level weight = %v, want 1", top.Weight)
	}
	// Ages in Rc: 20 x3 (t2 t4 t6 t7 = 4 actually), let's count: t2,t4,t6,t7
	// are age 20 (4), t9 age 30 (1), t13, t15, t17 age 40 (3).
	want := dist.Dist{0.5, 0.125, 0.375}
	for i := range want {
		if math.Abs(top.CPD[i]-want[i]) > 0.01 {
			t.Errorf("P(age)[%d] = %v, want ≈%v", i, top.CPD[i], want[i])
		}
	}
}

func TestRuleConfidenceDefinition(t *testing.T) {
	res, rc := paperExampleResult(t)
	incIdx := rc.Schema.AttrIndex("inc")
	ageIdx := rc.Schema.AttrIndex("age")
	rules, err := BuildRules(res, incIdx)
	if err != nil {
		t.Fatal(err)
	}
	// Rule r: body {age=20}, head {inc=50K}. In Rc, age=20 holds for
	// t2, t4, t6, t7 (supp 0.5); age=20 & inc=50K holds for t2, t6, t7
	// (supp 3/8). conf = (3/8)/(1/2) = 3/4.
	found := false
	for _, r := range rules {
		if r.Body[ageIdx] == 0 && r.Body.NumKnown() == 1 && r.HeadValue == 0 {
			found = true
			if math.Abs(r.Confidence-0.75) > 1e-9 {
				t.Errorf("conf = %v, want 0.75", r.Confidence)
			}
			if math.Abs(r.BodySupport-0.5) > 1e-9 {
				t.Errorf("body support = %v, want 0.5", r.BodySupport)
			}
			if math.Abs(r.FullSupport-0.375) > 1e-9 {
				t.Errorf("full support = %v, want 0.375", r.FullSupport)
			}
		}
	}
	if !found {
		t.Fatal("rule ⟨{age=20,inc=50K}, {age=20}⟩ not found")
	}
}

// TestBodyExcludesHead: every rule and meta-rule body leaves the head
// attribute unassigned.
func TestBodyExcludesHead(t *testing.T) {
	res, rc := paperExampleResult(t)
	for a := 0; a < rc.Schema.NumAttrs(); a++ {
		rules, err := BuildRules(res, a)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rules {
			if r.Body[a] != relation.Missing {
				t.Fatalf("attr %d: rule body assigns head: %v", a, r.Body)
			}
		}
		metas, err := BuildMetaRules(rules, rc.Schema.Attrs[a].Card())
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range metas {
			if m.Body[a] != relation.Missing {
				t.Fatalf("attr %d: meta body assigns head: %v", a, m.Body)
			}
		}
	}
}

// TestAllCPDsPositiveNormalized: the paper's smoothing guarantees positive
// CPDs summing to 1 for every meta-rule.
func TestAllCPDsPositiveNormalized(t *testing.T) {
	res, rc := paperExampleResult(t)
	for a := 0; a < rc.Schema.NumAttrs(); a++ {
		rules, err := BuildRules(res, a)
		if err != nil {
			t.Fatal(err)
		}
		metas, err := BuildMetaRules(rules, rc.Schema.Attrs[a].Card())
		if err != nil {
			t.Fatal(err)
		}
		if len(metas) == 0 {
			t.Fatalf("attr %d: no meta-rules", a)
		}
		for _, m := range metas {
			if !m.CPD.IsPositive() {
				t.Errorf("attr %d body %v: CPD has zero entry %v", a, m.Body, m.CPD)
			}
			if !m.CPD.IsNormalized(1e-9) {
				t.Errorf("attr %d body %v: CPD sums to %v", a, m.Body, m.CPD.Sum())
			}
		}
	}
}

// TestSmoothRemainderSpreadsEqually: missing mass is distributed equally,
// not proportionally (paper, Section III).
func TestSmoothRemainderSpreadsEqually(t *testing.T) {
	cpd := dist.Dist{0.5, 0.1, 0, 0} // sums to 0.6, leftover 0.4
	smoothRemainder(cpd)
	// Equal spread adds 0.1 to each: [0.6 0.2 0.1 0.1].
	want := dist.Dist{0.6, 0.2, 0.1, 0.1}
	for i := range want {
		if math.Abs(cpd[i]-want[i]) > 1e-3 {
			t.Errorf("cpd[%d] = %v, want ≈%v", i, cpd[i], want[i])
		}
	}
	if !cpd.IsNormalized(1e-9) {
		t.Errorf("not normalized: %v", cpd.Sum())
	}
}

func TestSmoothRemainderOverflow(t *testing.T) {
	cpd := dist.Dist{0.7, 0.7} // float slop beyond 1
	smoothRemainder(cpd)
	if !cpd.IsNormalized(1e-9) || !cpd.IsPositive() {
		t.Errorf("overflowed CPD not fixed: %v", cpd)
	}
	if math.Abs(cpd[0]-cpd[1]) > 1e-9 {
		t.Errorf("symmetric inputs should stay symmetric: %v", cpd)
	}
}

func TestMetaRuleMatches(t *testing.T) {
	m := &MetaRule{
		HeadAttr: 0,
		Body:     relation.Tuple{relation.Missing, 1, relation.Missing},
	}
	if !m.Matches(relation.Tuple{relation.Missing, 1, 2}) {
		t.Error("matching tuple rejected")
	}
	if m.Matches(relation.Tuple{relation.Missing, 0, 2}) {
		t.Error("conflicting tuple accepted")
	}
	if m.Matches(relation.Tuple{relation.Missing, relation.Missing, 2}) {
		t.Error("tuple without evidence for body accepted")
	}
	// The empty body matches anything.
	top := &MetaRule{HeadAttr: 0, Body: relation.NewTuple(3)}
	if !top.Matches(relation.Tuple{relation.Missing, relation.Missing, relation.Missing}) {
		t.Error("top-level meta-rule should match everything")
	}
}

func TestMetaRuleSubsumes(t *testing.T) {
	m := relation.Missing
	general := &MetaRule{HeadAttr: 0, Body: relation.Tuple{m, 1, m}}
	specific := &MetaRule{HeadAttr: 0, Body: relation.Tuple{m, 1, 2}}
	otherHead := &MetaRule{HeadAttr: 1, Body: relation.Tuple{m, 1, 2}}
	if !general.Subsumes(specific) {
		t.Error("general should subsume specific")
	}
	if specific.Subsumes(general) {
		t.Error("specific should not subsume general")
	}
	if general.Subsumes(general) {
		t.Error("subsumption is strict")
	}
	if general.Subsumes(otherHead) {
		t.Error("different head attributes are incomparable")
	}
}

func TestBuildMetaRulesValidation(t *testing.T) {
	if _, err := BuildMetaRules(nil, 0); err == nil {
		t.Error("zero cardinality should fail")
	}
	bad := []Rule{{Body: relation.NewTuple(2), HeadAttr: 0, HeadValue: 5}}
	if _, err := BuildMetaRules(bad, 2); err == nil {
		t.Error("out-of-range head value should fail")
	}
	dup := []Rule{
		{Body: relation.NewTuple(2), HeadAttr: 0, HeadValue: 0, Confidence: 0.5},
		{Body: relation.NewTuple(2), HeadAttr: 0, HeadValue: 0, Confidence: 0.5},
	}
	if _, err := BuildMetaRules(dup, 2); err == nil {
		t.Error("duplicate head value for one body should fail")
	}
}
