// Package rules builds association rules and meta-rules from mined frequent
// itemsets (Definitions 2.5 and 2.6 of the paper). An association rule is a
// pair of frequent itemsets ⟨t1, t2⟩ with t1 ≺ t2 where t1 extends t2's
// assignment by a single head attribute value; a meta-rule groups the rules
// that share a body and head attribute into one estimated conditional
// probability distribution over the head attribute's full domain.
package rules

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/itemset"
	"repro/internal/relation"
)

// Rule is one association rule with a single attribute-value assignment in
// the head (Definition 2.5).
type Rule struct {
	// Body is the shared assignment (the complete portion of t2); the head
	// attribute is Missing in Body.
	Body relation.Tuple
	// HeadAttr is the attribute assigned by the head.
	HeadAttr int
	// HeadValue is the value the head assigns to HeadAttr.
	HeadValue int
	// Confidence is supp(body+head) / supp(body), an estimate of
	// P(head | body).
	Confidence float64
	// BodySupport and FullSupport are the supports of the body itemset and
	// of the extended (body plus head) itemset.
	BodySupport, FullSupport float64
}

// BuildRules extracts every association rule with head attribute headAttr
// from the mined itemsets: for each frequent itemset assigning headAttr,
// the rule's body is that itemset minus the head assignment, and the body
// itemset must itself be frequent (guaranteed by Apriori monotonicity, but
// verified defensively). The paper computes rules irrespective of their
// confidence — there is no confidence threshold.
func BuildRules(res *itemset.Result, headAttr int) ([]Rule, error) {
	if res == nil || len(res.Itemsets) == 0 {
		return nil, fmt.Errorf("rules: empty mining result")
	}
	var out []Rule
	for _, it := range res.All() {
		v := it.Tuple[headAttr]
		if v == relation.Missing {
			continue
		}
		body := it.Tuple.Clone()
		body[headAttr] = relation.Missing
		bodySet := res.Frequent(body)
		if bodySet == nil {
			return nil, fmt.Errorf("rules: body %v of frequent itemset %v is not frequent", body, it.Tuple)
		}
		out = append(out, Rule{
			Body:        body,
			HeadAttr:    headAttr,
			HeadValue:   v,
			Confidence:  it.Support / bodySet.Support,
			BodySupport: bodySet.Support,
			FullSupport: it.Support,
		})
	}
	return out, nil
}

// MetaRule groups association rules sharing a body and head attribute into
// one estimated CPD over the head attribute's domain (Definition 2.6).
type MetaRule struct {
	// HeadAttr is the attribute whose distribution the meta-rule estimates.
	HeadAttr int
	// Body is the evidence assignment; HeadAttr is Missing in Body.
	Body relation.Tuple
	// BodySize is the number of attributes assigned by Body (0 for the
	// top-level meta-rule P(a)).
	BodySize int
	// CPD is the smoothed, normalized estimate of P(HeadAttr | Body).
	CPD dist.Dist
	// Weight is the support of the body itemset; the paper annotates each
	// meta-rule with this weight and uses it for weighted voting.
	Weight float64
	// NumRules is the number of association rules combined (head values
	// whose extension itemset was frequent).
	NumRules int
}

// Matches reports whether the meta-rule applies to tuple t: every
// attribute-value assignment in the body is also made by t.
func (m *MetaRule) Matches(t relation.Tuple) bool {
	return m.Body.SubsumesOrEqual(t)
}

// Subsumes reports meta-rule subsumption (Definition 2.7): m subsumes o
// when both share a head attribute and body(o) ≺ body(m), i.e. m's body is
// strictly more general.
func (m *MetaRule) Subsumes(o *MetaRule) bool {
	return m.HeadAttr == o.HeadAttr && m.Body.Subsumes(o.Body)
}

// BuildMetaRules combines the rules for headAttr into meta-rules. card is
// the head attribute's domain cardinality. Each meta-rule's CPD lists the
// rules' confidences; values whose extension was not frequent get zero
// mass, after which the paper's smoothing applies: any probability mass not
// accounted for is spread equally over all values, and every value is
// raised to at least dist.SmoothFloor.
func BuildMetaRules(rules []Rule, card int) ([]*MetaRule, error) {
	if card < 1 {
		return nil, fmt.Errorf("rules: head cardinality %d", card)
	}
	byBody := make(map[string]*MetaRule)
	var order []string // first-appearance order for determinism
	for _, r := range rules {
		if r.HeadValue < 0 || r.HeadValue >= card {
			return nil, fmt.Errorf("rules: head value %d out of range %d", r.HeadValue, card)
		}
		k := r.Body.Key()
		m, ok := byBody[k]
		if !ok {
			m = &MetaRule{
				HeadAttr: r.HeadAttr,
				Body:     r.Body.Clone(),
				BodySize: r.Body.NumKnown(),
				CPD:      dist.Zeros(card),
				Weight:   r.BodySupport,
			}
			byBody[k] = m
			order = append(order, k)
		}
		if m.CPD[r.HeadValue] != 0 {
			return nil, fmt.Errorf("rules: duplicate rule for body %v value %d", r.Body, r.HeadValue)
		}
		m.CPD[r.HeadValue] = r.Confidence
		m.NumRules++
	}
	out := make([]*MetaRule, 0, len(byBody))
	for _, k := range order {
		m := byBody[k]
		smoothRemainder(m.CPD)
		out = append(out, m)
	}
	return out, nil
}

// MaskWords returns the number of 64-bit words a fixed-width attribute
// bitmask needs for a schema of numAttrs attributes.
func MaskWords(numAttrs int) int { return (numAttrs + 63) / 64 }

// AppendTupleMask appends the fixed-width attribute bitmask of t — bit a
// set iff t assigns attribute a — to dst and returns it. words fixes the
// mask width so masks built for the same schema are directly comparable.
func AppendTupleMask(dst []uint64, t relation.Tuple, words int) []uint64 {
	for w := 0; w < words; w++ {
		dst = append(dst, 0)
	}
	base := len(dst) - words
	for i, v := range t {
		if v != relation.Missing {
			dst[base+i>>6] |= 1 << (uint(i) & 63)
		}
	}
	return dst
}

// CompiledBody is a meta-rule body in match-ready form: the assigned
// attributes and values as parallel arrays plus a fixed-width attribute
// bitmask. Matching a tuple becomes a word-wise subset test and a short
// value comparison, instead of enumerating the tuple's sub-assignments.
type CompiledBody struct {
	// Attrs and Vals list the body's assignments in increasing attribute
	// order.
	Attrs []int32
	Vals  []int32
	// Mask has bit a set for every assigned attribute a, in words 64-bit
	// words (the lattice's fixed mask width).
	Mask []uint64
}

// Compile builds the match-ready form of body with masks of the given
// fixed width.
func Compile(body relation.Tuple, words int) CompiledBody {
	c := CompiledBody{Mask: AppendTupleMask(nil, body, words)}
	for a, v := range body {
		if v != relation.Missing {
			c.Attrs = append(c.Attrs, int32(a))
			c.Vals = append(c.Vals, int32(v))
		}
	}
	return c
}

// MatchedBy reports whether every assignment of the compiled body is also
// made by t. tMask must be t's attribute bitmask at the same fixed width
// (AppendTupleMask); the mask test rejects bodies mentioning attributes t
// leaves missing in a few word operations, and values are compared only
// when the attribute set is a subset.
func (c *CompiledBody) MatchedBy(t relation.Tuple, tMask []uint64) bool {
	for w, m := range c.Mask {
		if m&^tMask[w] != 0 {
			return false
		}
	}
	for i, a := range c.Attrs {
		if t[a] != int(c.Vals[i]) {
			return false
		}
	}
	return true
}

// smoothRemainder implements the paper's CPD smoothing: the confidences of
// the discovered rules sum to at most 1 (values pruned by the support
// threshold contribute nothing); the remaining mass is distributed equally
// among all values, and every value is raised to at least dist.SmoothFloor
// before a final renormalization.
func smoothRemainder(cpd dist.Dist) {
	sum := cpd.Sum()
	if sum > 1 {
		// Confidences can exceed 1 in aggregate only through floating-point
		// slop; normalize it away.
		cpd.Normalize()
		sum = 1
	}
	leftover := (1 - sum) / float64(len(cpd))
	for i := range cpd {
		cpd[i] += leftover
	}
	cpd.Smooth(dist.SmoothFloor)
}
