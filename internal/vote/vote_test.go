package vote

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bn"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/relation"
	"repro/internal/rules"
)

func paperModel(t *testing.T) (*core.Model, *relation.Relation) {
	t.Helper()
	rc, _ := relation.Matchmaking().Split()
	m, err := core.Learn(rc, core.Config{SupportThreshold: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	return m, rc
}

func TestSchemeParsing(t *testing.T) {
	if s, err := ParseScheme("averaged"); err != nil || s != Averaged {
		t.Errorf("parse averaged: %v, %v", s, err)
	}
	if s, err := ParseScheme("weighted"); err != nil || s != Weighted {
		t.Errorf("parse weighted: %v, %v", s, err)
	}
	if _, err := ParseScheme("x"); err == nil {
		t.Error("bogus scheme should fail")
	}
	if Averaged.String() != "averaged" || Weighted.String() != "weighted" {
		t.Error("String() mismatch")
	}
}

func TestMethodsOrder(t *testing.T) {
	ms := Methods()
	want := []string{"all averaged", "all weighted", "best averaged", "best weighted"}
	if len(ms) != 4 {
		t.Fatalf("Methods() returned %d", len(ms))
	}
	for i, m := range ms {
		if m.String() != want[i] {
			t.Errorf("method %d = %q, want %q", i, m.String(), want[i])
		}
	}
}

func TestInferValidation(t *testing.T) {
	m, _ := paperModel(t)
	missing := relation.Missing
	complete := relation.Tuple{0, 0, 0, 0}
	if _, err := Infer(m, complete, 0, Method{}); err == nil {
		t.Error("non-missing attribute should fail")
	}
	tu := relation.Tuple{missing, 0, 0, 0}
	if _, err := Infer(m, tu, -1, Method{}); err == nil {
		t.Error("bad attribute index should fail")
	}
	if _, err := Infer(m, tu, 9, Method{}); err == nil {
		t.Error("out-of-range attribute should fail")
	}
}

func TestInferReturnsValidDistributions(t *testing.T) {
	m, rc := paperModel(t)
	missing := relation.Missing
	tuples := []relation.Tuple{
		{missing, 0, 0, 1},
		{missing, 1, 1, 0},
		{0, missing, 0, 0},
		{2, 0, missing, 1},
		{1, 2, 0, missing},
	}
	for _, tu := range tuples {
		for _, method := range Methods() {
			attr := tu.MissingAttrs()[0]
			d, err := Infer(m, tu, attr, method)
			if err != nil {
				t.Fatalf("%v %v: %v", tu, method, err)
			}
			if len(d) != rc.Schema.Attrs[attr].Card() {
				t.Fatalf("%v: wrong arity %d", tu, len(d))
			}
			if !d.IsNormalized(1e-9) || !d.IsPositive() {
				t.Errorf("%v %v: invalid distribution %v", tu, method, d)
			}
		}
	}
}

// TestSingleVoterPassesThrough: with exactly one voter, both schemes return
// that voter's CPD.
func TestSingleVoterPassesThrough(t *testing.T) {
	voter := &rules.MetaRule{
		CPD:    dist.Dist{0.2, 0.3, 0.5},
		Weight: 0.4,
	}
	for _, scheme := range []Scheme{Averaged, Weighted} {
		got, err := Combine([]*rules.MetaRule{voter}, scheme, 3)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if math.Abs(got[i]-voter.CPD[i]) > 1e-12 {
				t.Errorf("%v: got %v, want %v", scheme, got, voter.CPD)
			}
		}
	}
}

// TestCombineHandComputed checks both schemes against hand-computed
// combinations.
func TestCombineHandComputed(t *testing.T) {
	voters := []*rules.MetaRule{
		{CPD: dist.Dist{0.8, 0.2}, Weight: 0.75},
		{CPD: dist.Dist{0.2, 0.8}, Weight: 0.25},
	}
	avg, err := Combine(voters, Averaged, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(avg[0]-0.5) > 1e-12 || math.Abs(avg[1]-0.5) > 1e-12 {
		t.Errorf("averaged = %v, want [0.5 0.5]", avg)
	}
	wtd, err := Combine(voters, Weighted, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 0.75*[0.8 0.2] + 0.25*[0.2 0.8] = [0.65 0.35]
	if math.Abs(wtd[0]-0.65) > 1e-12 || math.Abs(wtd[1]-0.35) > 1e-12 {
		t.Errorf("weighted = %v, want [0.65 0.35]", wtd)
	}
}

func TestCombineErrors(t *testing.T) {
	if _, err := Combine(nil, Averaged, 2); err == nil {
		t.Error("no voters should fail")
	}
	bad := []*rules.MetaRule{{CPD: dist.Dist{1}, Weight: 1}}
	if _, err := Combine(bad, Averaged, 2); err == nil {
		t.Error("arity mismatch should fail (averaged)")
	}
	if _, err := Combine(bad, Weighted, 2); err == nil {
		t.Error("arity mismatch should fail (weighted)")
	}
	neg := []*rules.MetaRule{{CPD: dist.Dist{0.5, 0.5}, Weight: -1}}
	if _, err := Combine(neg, Weighted, 2); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := Combine(neg, Scheme(42), 2); err == nil {
		t.Error("unknown scheme should fail")
	}
}

func TestCombineZeroWeightsFallsBackToAverage(t *testing.T) {
	voters := []*rules.MetaRule{
		{CPD: dist.Dist{0.8, 0.2}, Weight: 0},
		{CPD: dist.Dist{0.2, 0.8}, Weight: 0},
	}
	got, err := Combine(voters, Weighted, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-0.5) > 1e-12 {
		t.Errorf("zero-weight combine = %v, want [0.5 0.5]", got)
	}
}

// TestPaperVotingExample reproduces the Section I-B observation that
// different methods give different estimates for
// t1 = ⟨age=?, edu=HS, inc=50K, nw=500K⟩ — the paper reports
// all-averaged ≈ ⟨0.25, 0.51, 0.24⟩ vs best-weighted ≈ ⟨0.26, 0.48, 0.26⟩
// on its full dataset. With only the 8-point toy relation we verify the
// qualitative property: the methods produce valid, distinct distributions.
func TestPaperVotingExample(t *testing.T) {
	m, rc := paperModel(t)
	tu := relation.Tuple{relation.Missing, 0, 0, 1}
	age := rc.Schema.AttrIndex("age")
	results := make([]dist.Dist, 0, 4)
	for _, method := range Methods() {
		d, err := Infer(m, tu, age, method)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, d)
	}
	distinct := false
	for i := 1; i < len(results); i++ {
		l1, err := dist.L1(results[0], results[i])
		if err != nil {
			t.Fatal(err)
		}
		if l1 > 1e-9 {
			distinct = true
		}
	}
	if !distinct {
		t.Error("all four voting methods produced identical estimates; expected variation")
	}
}

// TestInferRecoversBNMarginals: learn from a large BN sample and verify
// single-attribute estimates approach the network's true conditionals.
func TestInferRecoversBNMarginals(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	top, err := bn.ByID("BN8")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := bn.Instantiate(top, rng)
	if err != nil {
		t.Fatal(err)
	}
	train := inst.SampleRelation(rng, 20000)
	m, err := core.Learn(train, core.Config{SupportThreshold: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	method := Method{core.BestVoters, Averaged}
	var totalKL float64
	const trials = 200
	for i := 0; i < trials; i++ {
		tu := inst.Sample(rng)
		attr := rng.Intn(top.NumAttrs())
		tu[attr] = relation.Missing
		pred, err := Infer(m, tu, attr, method)
		if err != nil {
			t.Fatal(err)
		}
		truth, err := inst.ConditionalSingle(tu, attr)
		if err != nil {
			t.Fatal(err)
		}
		kl, err := dist.KL(truth, pred)
		if err != nil {
			t.Fatal(err)
		}
		totalKL += kl
	}
	avgKL := totalKL / trials
	// The paper reports KL <= 0.03 for BN8 at 100k training points; at 20k
	// we allow a looser budget but still require high accuracy.
	if avgKL > 0.05 {
		t.Errorf("average KL = %v, want <= 0.05", avgKL)
	}
}

func TestInferAll(t *testing.T) {
	m, _ := paperModel(t)
	missing := relation.Missing
	tu := relation.Tuple{missing, 0, missing, 1}
	out, err := InferAll(m, tu, Method{core.BestVoters, Weighted})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("InferAll returned %d attrs, want 2", len(out))
	}
	for a, d := range out {
		if !d.IsNormalized(1e-9) || !d.IsPositive() {
			t.Errorf("attr %d: invalid distribution %v", a, d)
		}
	}
	complete := relation.Tuple{0, 0, 0, 0}
	if _, err := InferAll(m, complete, Method{}); err == nil {
		t.Error("complete tuple should fail")
	}
}
