// Package vote implements the single-attribute inference procedure of the
// paper (Algorithm 2, Section IV): the meta-rules of an MRSL that match an
// incomplete tuple act as an ensemble of voters, combined either by plain
// averaging or by support-weighted averaging.
package vote

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/relation"
	"repro/internal/rules"
)

// Scheme is the vote-combination method (the paper's vScheme). Averaged
// and Weighted are the two schemes the paper implements; Median and
// LogPool are the "other voting schemes [that] exist" it alludes to,
// provided as extensions and ablated in the benchmarks.
type Scheme int

const (
	// Averaged combines voter CPDs position by position with equal weight.
	Averaged Scheme = iota
	// Weighted combines voter CPDs weighted by each meta-rule's support.
	Weighted
	// Median takes the per-position median of the voter CPDs and
	// renormalizes; robust to a single wild voter.
	Median
	// LogPool combines voters by the geometric mean (logarithmic opinion
	// pool); sharper than averaging when voters agree.
	LogPool
)

// String returns the scheme's name.
func (s Scheme) String() string {
	switch s {
	case Averaged:
		return "averaged"
	case Weighted:
		return "weighted"
	case Median:
		return "median"
	case LogPool:
		return "logpool"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// ParseScheme converts a scheme name into a Scheme.
func ParseScheme(s string) (Scheme, error) {
	switch s {
	case "averaged":
		return Averaged, nil
	case "weighted":
		return Weighted, nil
	case "median":
		return Median, nil
	case "logpool":
		return LogPool, nil
	}
	return 0, fmt.Errorf("vote: unknown scheme %q", s)
}

// Method pairs a voter choice with a voting scheme; the paper evaluates all
// four combinations in Table II.
type Method struct {
	Choice core.VoterChoice
	Scheme Scheme
}

// Methods lists the four voting methods in Table II's column order:
// all-averaged, all-weighted, best-averaged, best-weighted.
func Methods() []Method {
	return []Method{
		{core.AllVoters, Averaged},
		{core.AllVoters, Weighted},
		{core.BestVoters, Averaged},
		{core.BestVoters, Weighted},
	}
}

// String renders e.g. "best weighted".
func (m Method) String() string { return m.Choice.String() + " " + m.Scheme.String() }

// Scratch holds the reusable buffers of the inference hot path: the
// lattice-traversal state, the matched-rule index and voter slices, and
// the Median column buffer. A zero value is ready to use; reusing one
// across calls makes InferScratch allocate only its result. Not safe for
// concurrent use.
type Scratch struct {
	ms     core.MatchScratch
	idxs   []int
	voters []*rules.MetaRule
	col    []float64
}

// scratchPool recycles Scratch values for the convenience entry points, so
// every caller of Infer/Combine gets the buffer-reusing path without
// threading a Scratch through.
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// Infer estimates the conditional probability distribution of attribute
// attr in tuple t, which must be missing in t, using the model's MRSL for
// attr (Algorithm 2). The result is a positive, normalized distribution
// over the attribute's domain.
func Infer(m *core.Model, t relation.Tuple, attr int, method Method) (dist.Dist, error) {
	s := scratchPool.Get().(*Scratch)
	d, err := InferScratch(m, t, attr, method, s)
	scratchPool.Put(s)
	return d, err
}

// InferScratch is Infer with a caller-owned scratch: in steady state it
// allocates only the returned distribution.
func InferScratch(m *core.Model, t relation.Tuple, attr int, method Method, s *Scratch) (dist.Dist, error) {
	if attr < 0 || attr >= m.Schema.NumAttrs() {
		return nil, fmt.Errorf("vote: attribute %d out of range", attr)
	}
	if t[attr] != relation.Missing {
		return nil, fmt.Errorf("vote: attribute %q is not missing in %v",
			m.Schema.Attrs[attr].Name, t)
	}
	l := m.Lattices[attr]
	s.idxs = l.AppendMatches(s.idxs[:0], t, method.Choice, &s.ms)
	s.voters = s.voters[:0]
	for _, i := range s.idxs {
		s.voters = append(s.voters, l.Rules[i])
	}
	if len(s.voters) == 0 {
		// Cannot happen with a well-formed lattice (the top-level rule
		// matches everything), but fail soft with the marginal-free uniform.
		return dist.New(l.Card), nil
	}
	out := dist.Zeros(l.Card)
	if err := combineInto(out, s.voters, method.Scheme, s); err != nil {
		return nil, err
	}
	return out, nil
}

// Combine merges the voters' CPDs under the given scheme into a single
// estimate over card values.
func Combine(voters []*rules.MetaRule, scheme Scheme, card int) (dist.Dist, error) {
	out := dist.Zeros(card)
	if err := CombineInto(out, voters, scheme); err != nil {
		return nil, err
	}
	return out, nil
}

// CombineInto merges the voters' CPDs under the given scheme into out,
// whose length fixes the domain cardinality. It overwrites out and, given
// voters with well-formed CPDs, performs no allocation beyond the Median
// scratch of the pooled buffers.
func CombineInto(out dist.Dist, voters []*rules.MetaRule, scheme Scheme) error {
	s := scratchPool.Get().(*Scratch)
	err := combineInto(out, voters, scheme, s)
	scratchPool.Put(s)
	return err
}

func combineInto(out dist.Dist, voters []*rules.MetaRule, scheme Scheme, s *Scratch) error {
	card := len(out)
	if len(voters) == 0 {
		return fmt.Errorf("vote: no voters")
	}
	// Validate every voter exactly once, up front, for every scheme —
	// rather than re-checking inside the per-position inner loops.
	for _, v := range voters {
		if len(v.CPD) != card {
			return fmt.Errorf("vote: voter CPD has %d values, want %d", len(v.CPD), card)
		}
	}
	for i := range out {
		out[i] = 0
	}
	switch scheme {
	case Averaged:
		for _, v := range voters {
			for i, p := range v.CPD {
				out[i] += p
			}
		}
	case Weighted:
		var totalW float64
		for _, v := range voters {
			w := v.Weight
			if w < 0 {
				return fmt.Errorf("vote: negative weight %v", w)
			}
			totalW += w
			for i, p := range v.CPD {
				out[i] += w * p
			}
		}
		if totalW == 0 {
			// All-zero weights degenerate to plain averaging.
			return combineInto(out, voters, Averaged, s)
		}
	case Median:
		if cap(s.col) < len(voters) {
			s.col = make([]float64, len(voters))
		}
		col := s.col[:len(voters)]
		for i := 0; i < card; i++ {
			for vi, v := range voters {
				col[vi] = v.CPD[i]
			}
			out[i] = median(col)
		}
	case LogPool:
		for i := range out {
			out[i] = 1
		}
		inv := 1.0 / float64(len(voters))
		for _, v := range voters {
			for i, p := range v.CPD {
				if p <= 0 {
					return fmt.Errorf("vote: logpool needs positive CPDs, got %v", p)
				}
				out[i] *= math.Pow(p, inv)
			}
		}
	default:
		return fmt.Errorf("vote: unknown scheme %v", scheme)
	}
	out.Normalize()
	// Voters' CPDs are positive, so the combination is too; Smooth guards
	// against degenerate hand-built voters.
	if !out.IsPositive() {
		out.Smooth(dist.SmoothFloor)
	}
	return nil
}

// median returns the median of vals; the input slice is reordered.
func median(vals []float64) float64 {
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return 0.5 * (vals[n/2-1] + vals[n/2])
}

// InferAll runs Infer for every missing attribute of t independently and
// returns the per-attribute estimates keyed by attribute index. This is the
// independence-assuming estimator the paper warns about in Section V; it is
// exact only when t has a single missing attribute.
func InferAll(m *core.Model, t relation.Tuple, method Method) (map[int]dist.Dist, error) {
	out := make(map[int]dist.Dist)
	for _, a := range t.MissingAttrs() {
		d, err := Infer(m, t, a, method)
		if err != nil {
			return nil, err
		}
		out[a] = d
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("vote: tuple %v has no missing attributes", t)
	}
	return out, nil
}
