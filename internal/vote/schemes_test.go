package vote

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/relation"
	"repro/internal/rules"
)

func TestExtensionSchemeParsing(t *testing.T) {
	if s, err := ParseScheme("median"); err != nil || s != Median {
		t.Errorf("parse median: %v, %v", s, err)
	}
	if s, err := ParseScheme("logpool"); err != nil || s != LogPool {
		t.Errorf("parse logpool: %v, %v", s, err)
	}
	if Median.String() != "median" || LogPool.String() != "logpool" {
		t.Error("String() mismatch")
	}
}

func TestMedianHelper(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("median odd = %v", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("median even = %v", got)
	}
	if got := median([]float64{7}); got != 7 {
		t.Errorf("median single = %v", got)
	}
}

func TestMedianSchemeRobustToOutlier(t *testing.T) {
	voters := []*rules.MetaRule{
		{CPD: dist.Dist{0.6, 0.4}},
		{CPD: dist.Dist{0.62, 0.38}},
		{CPD: dist.Dist{0.58, 0.42}},
		{CPD: dist.Dist{0.01, 0.99}}, // wild voter
	}
	med, err := Combine(voters, Median, 2)
	if err != nil {
		t.Fatal(err)
	}
	avg, err := Combine(voters, Averaged, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The median estimate stays near the consensus 0.6; averaging is
	// dragged toward the outlier.
	if med[0] < 0.55 {
		t.Errorf("median dragged by outlier: %v", med)
	}
	if avg[0] > med[0] {
		t.Errorf("averaging (%v) should sit below median (%v) here", avg[0], med[0])
	}
	if !med.IsNormalized(1e-9) {
		t.Errorf("median result not normalized: %v", med)
	}
}

func TestLogPoolSharpensConsensus(t *testing.T) {
	voters := []*rules.MetaRule{
		{CPD: dist.Dist{0.8, 0.2}},
		{CPD: dist.Dist{0.8, 0.2}},
	}
	lp, err := Combine(voters, LogPool, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Geometric mean of identical voters reproduces them.
	if math.Abs(lp[0]-0.8) > 1e-9 {
		t.Errorf("logpool identical voters = %v, want [0.8 0.2]", lp)
	}
	mixed := []*rules.MetaRule{
		{CPD: dist.Dist{0.9, 0.1}},
		{CPD: dist.Dist{0.6, 0.4}},
	}
	lp2, err := Combine(mixed, LogPool, 2)
	if err != nil {
		t.Fatal(err)
	}
	avg, err := Combine(mixed, Averaged, 2)
	if err != nil {
		t.Fatal(err)
	}
	if lp2[0] <= avg[0] {
		t.Errorf("logpool (%v) should sharpen beyond averaging (%v)", lp2[0], avg[0])
	}
	if !lp2.IsNormalized(1e-9) || !lp2.IsPositive() {
		t.Errorf("invalid logpool output: %v", lp2)
	}
}

func TestLogPoolRejectsZeroMass(t *testing.T) {
	voters := []*rules.MetaRule{{CPD: dist.Dist{1, 0}}}
	if _, err := Combine(voters, LogPool, 2); err == nil {
		t.Error("zero-probability voter should fail logpool")
	}
}

func TestExtensionSchemesArityChecks(t *testing.T) {
	bad := []*rules.MetaRule{{CPD: dist.Dist{1}}}
	if _, err := Combine(bad, Median, 2); err == nil {
		t.Error("median arity mismatch should fail")
	}
	if _, err := Combine(bad, LogPool, 2); err == nil {
		t.Error("logpool arity mismatch should fail")
	}
}

// TestExtensionSchemesThroughInfer: the extension schemes work end-to-end
// against a learned model.
func TestExtensionSchemesThroughInfer(t *testing.T) {
	m, rc := paperModel(t)
	tu := relation.Tuple{relation.Missing, 0, 0, 1}
	age := rc.Schema.AttrIndex("age")
	for _, scheme := range []Scheme{Median, LogPool} {
		d, err := Infer(m, tu, age, Method{Scheme: scheme})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if !d.IsNormalized(1e-9) || !d.IsPositive() {
			t.Errorf("%v: invalid distribution %v", scheme, d)
		}
	}
}

// TestQuickAllSchemesProduceDistributions: every scheme yields a positive,
// normalized distribution on random positive voters.
func TestQuickAllSchemesProduceDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 300; trial++ {
		nVoters := 1 + rng.Intn(5)
		card := 2 + rng.Intn(4)
		voters := make([]*rules.MetaRule, nVoters)
		for i := range voters {
			cpd := dist.Zeros(card)
			for j := range cpd {
				cpd[j] = rng.Float64() + 1e-6
			}
			cpd.Normalize()
			voters[i] = &rules.MetaRule{CPD: cpd, Weight: rng.Float64()}
		}
		for _, scheme := range []Scheme{Averaged, Weighted, Median, LogPool} {
			got, err := Combine(voters, scheme, card)
			if err != nil {
				t.Fatalf("%v: %v", scheme, err)
			}
			if !got.IsNormalized(1e-9) || !got.IsPositive() {
				t.Fatalf("%v: invalid output %v", scheme, got)
			}
		}
	}
}
