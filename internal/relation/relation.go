// Package relation implements the single-relation data model of the paper:
// discrete finite-valued attributes, complete tuples (points), incomplete
// tuples with missing values, the match/support/subsumption relations
// (Definitions 2.1-2.4), and CSV import/export.
//
// Values are stored as small integer codes indexing into each attribute's
// domain; Missing (-1) marks an unknown value (rendered "?").
package relation

import (
	"fmt"
	"strings"
)

// Missing is the value code of a missing ("?") attribute value.
const Missing = -1

// Attribute describes one discrete finite-valued column of a relation.
type Attribute struct {
	// Name is the column name, e.g. "age".
	Name string
	// Domain lists the value labels; a value code v names Domain[v].
	Domain []string
}

// Card returns the attribute's cardinality (number of domain values).
func (a Attribute) Card() int { return len(a.Domain) }

// Schema is the ordered list of attributes of a relation.
type Schema struct {
	Attrs []Attribute

	index map[string]int // attribute name -> position
}

// NewSchema builds a schema from attributes. Attribute names must be unique
// and non-empty, and every domain must have at least one value.
func NewSchema(attrs []Attribute) (*Schema, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("relation: schema must have at least one attribute")
	}
	s := &Schema{
		Attrs: append([]Attribute(nil), attrs...),
		index: make(map[string]int, len(attrs)),
	}
	for i, a := range s.Attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("relation: attribute %d has empty name", i)
		}
		if len(a.Domain) == 0 {
			return nil, fmt.Errorf("relation: attribute %q has empty domain", a.Name)
		}
		if _, dup := s.index[a.Name]; dup {
			return nil, fmt.Errorf("relation: duplicate attribute %q", a.Name)
		}
		seen := make(map[string]bool, len(a.Domain))
		for _, v := range a.Domain {
			if seen[v] {
				return nil, fmt.Errorf("relation: attribute %q has duplicate domain value %q", a.Name, v)
			}
			seen[v] = true
		}
		s.index[a.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for tests and literals.
func MustSchema(attrs []Attribute) *Schema {
	s, err := NewSchema(attrs)
	if err != nil {
		panic(err)
	}
	return s
}

// NumAttrs returns the number of attributes.
func (s *Schema) NumAttrs() int { return len(s.Attrs) }

// AttrIndex returns the position of the named attribute, or -1.
func (s *Schema) AttrIndex(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Cards returns the cardinality of every attribute, in schema order.
func (s *Schema) Cards() []int {
	cards := make([]int, len(s.Attrs))
	for i, a := range s.Attrs {
		cards[i] = a.Card()
	}
	return cards
}

// DomainSize returns the size of the Cartesian product of all domains
// (the "dom. size" column of Table I in the paper).
func (s *Schema) DomainSize() int {
	n := 1
	for _, a := range s.Attrs {
		n *= a.Card()
	}
	return n
}

// Diff compares s with another schema and returns "" when they are
// attribute-for-attribute identical (same names, same domains, in the same
// order — the condition under which value codes mean the same thing in
// both), or a one-line description of the first difference. Domains are
// positional because codes index them: two schemas listing the same labels
// in different orders are NOT interchangeable.
func (s *Schema) Diff(o *Schema) string {
	if o == nil {
		return "second schema is nil"
	}
	if len(s.Attrs) != len(o.Attrs) {
		return fmt.Sprintf("%d attributes vs %d", len(s.Attrs), len(o.Attrs))
	}
	for i, a := range s.Attrs {
		b := o.Attrs[i]
		if a.Name != b.Name {
			return fmt.Sprintf("attribute %d is %q vs %q", i, a.Name, b.Name)
		}
		if len(a.Domain) != len(b.Domain) {
			return fmt.Sprintf("attribute %q has %d domain values vs %d",
				a.Name, len(a.Domain), len(b.Domain))
		}
		for v := range a.Domain {
			if a.Domain[v] != b.Domain[v] {
				return fmt.Sprintf("attribute %q domain value %d is %q vs %q",
					a.Name, v, a.Domain[v], b.Domain[v])
			}
		}
	}
	return ""
}

// Equal reports whether s and o are interchangeable (Diff returns "").
func (s *Schema) Equal(o *Schema) bool { return s.Diff(o) == "" }

// ValueCode returns the code of label within attribute attr, or an error.
func (s *Schema) ValueCode(attr int, label string) (int, error) {
	if attr < 0 || attr >= len(s.Attrs) {
		return 0, fmt.Errorf("relation: attribute index %d out of range", attr)
	}
	for v, l := range s.Attrs[attr].Domain {
		if l == label {
			return v, nil
		}
	}
	return 0, fmt.Errorf("relation: %q is not in the domain of %q", label, s.Attrs[attr].Name)
}

// Tuple is an assignment of values to the attributes of a schema.
// t[i] is the value code of attribute i, or Missing. A tuple with no
// Missing entries is a complete tuple ("point", Definition 2.2); otherwise
// it is an incomplete tuple (Definition 2.1).
type Tuple []int

// NewTuple returns a fully missing tuple over n attributes.
func NewTuple(n int) Tuple {
	t := make(Tuple, n)
	for i := range t {
		t[i] = Missing
	}
	return t
}

// Clone returns an independent copy of t.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// IsComplete reports whether t assigns a value to every attribute.
func (t Tuple) IsComplete() bool {
	for _, v := range t {
		if v == Missing {
			return false
		}
	}
	return true
}

// CompleteAttrs returns the indices of attributes with known values
// (the "complete portion" of t), in increasing order.
func (t Tuple) CompleteAttrs() []int {
	var out []int
	for i, v := range t {
		if v != Missing {
			out = append(out, i)
		}
	}
	return out
}

// MissingAttrs returns the indices of attributes with missing values,
// in increasing order.
func (t Tuple) MissingAttrs() []int {
	var out []int
	for i, v := range t {
		if v == Missing {
			out = append(out, i)
		}
	}
	return out
}

// NumMissing returns the number of missing values in t.
func (t Tuple) NumMissing() int {
	n := 0
	for _, v := range t {
		if v == Missing {
			n++
		}
	}
	return n
}

// NumKnown returns the number of known values in t.
func (t Tuple) NumKnown() int { return len(t) - t.NumMissing() }

// Matches reports whether point p agrees with t on every attribute in t's
// complete portion (Definition 2.3: "p matches t"). p is typically complete
// but only the attributes known in t are compared.
func (t Tuple) Matches(p Tuple) bool {
	for i, v := range t {
		if v != Missing && p[i] != v {
			return false
		}
	}
	return true
}

// Subsumes reports whether t subsumes u (u ≺ t, Definition 2.4): the
// complete portion of t is a proper subset of the complete portion of u,
// and u assigns the same values as t on t's complete portion. A subsumer is
// strictly more general: it fixes fewer attributes.
func (t Tuple) Subsumes(u Tuple) bool {
	proper := false
	for i, v := range t {
		switch {
		case v != Missing && u[i] != v:
			return false // disagreement, or u missing where t is known
		case v == Missing && u[i] != Missing:
			proper = true
		}
	}
	return proper
}

// SubsumesOrEqual reports t.Subsumes(u) or t and u making identical
// assignments.
func (t Tuple) SubsumesOrEqual(u Tuple) bool {
	for i, v := range t {
		if v != Missing && u[i] != v {
			return false
		}
	}
	return true
}

// Equal reports whether t and u make exactly the same assignments.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Key returns a compact string key identifying t's assignments, usable as a
// map key. Attributes appear in increasing order; missing attributes are
// skipped, so the key identifies the partial assignment (itemset) itself.
func (t Tuple) Key() string {
	return string(t.AppendKey(nil))
}

// AppendKey appends t's key bytes to b and returns the extended slice.
// Hot loops can reuse a buffer and index maps with string(buf), which the
// compiler compiles without allocation.
func (t Tuple) AppendKey(b []byte) []byte {
	for i, v := range t {
		if v == Missing {
			continue
		}
		b = appendUvarint(b, uint64(i))
		b = appendUvarint(b, uint64(v))
	}
	return b
}

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// Format renders t using the schema's labels, e.g.
// "⟨age=20, edu=HS, inc=?, nw=?⟩".
func (t Tuple) Format(s *Schema) string {
	parts := make([]string, len(t))
	for i, v := range t {
		label := "?"
		if v != Missing {
			label = s.Attrs[i].Domain[v]
		}
		parts[i] = s.Attrs[i].Name + "=" + label
	}
	return "⟨" + strings.Join(parts, ", ") + "⟩"
}

// Relation is a collection of tuples over a schema. Tuples may be complete
// (points) or incomplete.
type Relation struct {
	Schema *Schema
	Tuples []Tuple
}

// NewRelation returns an empty relation over the schema.
func NewRelation(s *Schema) *Relation {
	return &Relation{Schema: s}
}

// Append adds a tuple after validating its values against the schema.
func (r *Relation) Append(t Tuple) error {
	if len(t) != r.Schema.NumAttrs() {
		return fmt.Errorf("relation: tuple has %d values, schema has %d attributes",
			len(t), r.Schema.NumAttrs())
	}
	for i, v := range t {
		if v != Missing && (v < 0 || v >= r.Schema.Attrs[i].Card()) {
			return fmt.Errorf("relation: value %d out of range for attribute %q",
				v, r.Schema.Attrs[i].Name)
		}
	}
	r.Tuples = append(r.Tuples, t)
	return nil
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Split partitions r into its complete part Rc (points) and incomplete part
// Ri, preserving tuple order within each part.
func (r *Relation) Split() (rc, ri *Relation) {
	rc = NewRelation(r.Schema)
	ri = NewRelation(r.Schema)
	for _, t := range r.Tuples {
		if t.IsComplete() {
			rc.Tuples = append(rc.Tuples, t)
		} else {
			ri.Tuples = append(ri.Tuples, t)
		}
	}
	return rc, ri
}

// Support returns the fraction of tuples in r that match t
// (Definition 2.3). r is normally the complete part Rc.
func (r *Relation) Support(t Tuple) float64 {
	if len(r.Tuples) == 0 {
		return 0
	}
	n := 0
	for _, p := range r.Tuples {
		if t.Matches(p) {
			n++
		}
	}
	return float64(n) / float64(len(r.Tuples))
}

// CountMatches returns the number of tuples in r matching t.
func (r *Relation) CountMatches(t Tuple) int {
	n := 0
	for _, p := range r.Tuples {
		if t.Matches(p) {
			n++
		}
	}
	return n
}

// DistinctIncomplete returns the distinct incomplete tuples of r (by
// assignment identity), in first-appearance order, along with the number of
// occurrences of each. Workload-driven sampling (Section V-B) operates on
// distinct incomplete tuples.
func (r *Relation) DistinctIncomplete() ([]Tuple, []int) {
	var (
		out    []Tuple
		counts []int
		seen   = make(map[string]int)
	)
	for _, t := range r.Tuples {
		if t.IsComplete() {
			continue
		}
		k := t.Key()
		if i, ok := seen[k]; ok {
			counts[i]++
			continue
		}
		seen[k] = len(out)
		out = append(out, t)
		counts = append(counts, 1)
	}
	return out, counts
}

// SortedAttrNames returns the attribute names in schema order (handy for
// stable output).
func (s *Schema) SortedAttrNames() []string {
	names := make([]string, len(s.Attrs))
	for i, a := range s.Attrs {
		names[i] = a.Name
	}
	return names
}

// String summarizes the schema.
func (s *Schema) String() string {
	parts := make([]string, len(s.Attrs))
	for i, a := range s.Attrs {
		parts[i] = fmt.Sprintf("%s(%d)", a.Name, a.Card())
	}
	return strings.Join(parts, ", ")
}
