package relation

import (
	"bytes"
	"math/rand"
	"testing"
)

func benchRelation(n int) *Relation {
	rng := rand.New(rand.NewSource(5))
	s := MustSchema([]Attribute{
		{Name: "a", Domain: []string{"0", "1", "2"}},
		{Name: "b", Domain: []string{"0", "1"}},
		{Name: "c", Domain: []string{"0", "1", "2", "3"}},
		{Name: "d", Domain: []string{"0", "1"}},
	})
	r := NewRelation(s)
	r.Tuples = make([]Tuple, n)
	for i := range r.Tuples {
		r.Tuples[i] = Tuple{rng.Intn(3), rng.Intn(2), rng.Intn(4), rng.Intn(2)}
	}
	return r
}

// BenchmarkSupport measures the linear-scan support computation.
func BenchmarkSupport(b *testing.B) {
	r := benchRelation(10000)
	probe := Tuple{1, Missing, 2, Missing}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Support(probe)
	}
}

// BenchmarkTupleKey measures assignment-key encoding (the map-key hot
// path of mining and matching).
func BenchmarkTupleKey(b *testing.B) {
	t := Tuple{1, Missing, 2, 0, Missing, 3, 1, 0}
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = t.AppendKey(buf[:0])
	}
	_ = buf
}

// BenchmarkCSVRoundTrip measures CSV write + parse of a 10k relation.
func BenchmarkCSVRoundTrip(b *testing.B) {
	r := benchRelation(10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteCSV(&buf, r); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadCSV(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubsumes measures the subsumption check used throughout DAG
// construction.
func BenchmarkSubsumes(b *testing.B) {
	x := Tuple{1, Missing, 2, Missing}
	y := Tuple{1, 0, 2, 1}
	for i := 0; i < b.N; i++ {
		_ = x.Subsumes(y)
	}
}
