package relation

import (
	"math"
	"strings"
	"testing"
)

func TestComputeProfileMatchmaking(t *testing.T) {
	r := Matchmaking()
	p := ComputeProfile(r)
	if p.Tuples != 17 || p.Complete != 8 || p.Incomplete != 9 {
		t.Fatalf("counts = %d/%d/%d", p.Tuples, p.Complete, p.Incomplete)
	}
	age := p.Attrs[0]
	if age.Name != "age" {
		t.Fatalf("attr order changed: %s", age.Name)
	}
	// age missing only in t8.
	if age.MissingCount != 1 || age.Known != 16 {
		t.Errorf("age known/missing = %d/%d", age.Known, age.MissingCount)
	}
	if got := age.MissingRate(); math.Abs(got-1.0/17) > 1e-12 {
		t.Errorf("age missing rate = %v", got)
	}
	// Known ages: 20 x7, 30 x4, 40 x5.
	if age.Counts[0] != 7 || age.Counts[1] != 4 || age.Counts[2] != 5 {
		t.Errorf("age counts = %v", age.Counts)
	}
	if age.Entropy <= 0 || age.Entropy > math.Log(3) {
		t.Errorf("age entropy = %v", age.Entropy)
	}
}

func TestProfileEntropyExtremes(t *testing.T) {
	s := MustSchema([]Attribute{
		{Name: "const", Domain: []string{"a", "b"}},
		{Name: "fair", Domain: []string{"x", "y"}},
	})
	r := NewRelation(s)
	for i := 0; i < 10; i++ {
		if err := r.Append(Tuple{0, i % 2}); err != nil {
			t.Fatal(err)
		}
	}
	p := ComputeProfile(r)
	if p.Attrs[0].Entropy != 0 {
		t.Errorf("constant column entropy = %v", p.Attrs[0].Entropy)
	}
	if math.Abs(p.Attrs[1].Entropy-math.Ln2) > 1e-12 {
		t.Errorf("fair column entropy = %v", p.Attrs[1].Entropy)
	}
}

func TestProfileAllMissingColumn(t *testing.T) {
	s := MustSchema([]Attribute{{Name: "x", Domain: []string{"a"}}})
	r := NewRelation(s)
	if err := r.Append(Tuple{Missing}); err != nil {
		t.Fatal(err)
	}
	p := ComputeProfile(r)
	if p.Attrs[0].MissingRate() != 1 || p.Attrs[0].Entropy != 0 {
		t.Errorf("profile = %+v", p.Attrs[0])
	}
	// Render must not panic with zero known values.
	_ = p.Render(s)
}

func TestProfileRender(t *testing.T) {
	r := Matchmaking()
	out := ComputeProfile(r).Render(r.Schema)
	for _, want := range []string{"17 tuples", "age", "edu", "inc", "nw", "mode"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
