package relation

import (
	"math/rand"
	"testing"
)

// joinFixture: a profiles relation with a city foreign key, and a cities
// relation keyed by city.
func joinFixture(t *testing.T) (*Relation, *Relation) {
	t.Helper()
	cities := []string{"chi", "nyc", "sfo"}
	left := NewRelation(MustSchema([]Attribute{
		{Name: "age", Domain: []string{"20", "30"}},
		{Name: "city", Domain: cities},
	}))
	right := NewRelation(MustSchema([]Attribute{
		{Name: "city", Domain: cities},
		{Name: "coast", Domain: []string{"east", "west", "none"}},
		{Name: "size", Domain: []string{"big", "small"}},
	}))
	mustAppend := func(r *Relation, tu Tuple) {
		t.Helper()
		if err := r.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	mustAppend(left, Tuple{0, 1})       // 20, nyc
	mustAppend(left, Tuple{1, 2})       // 30, sfo
	mustAppend(left, Tuple{0, Missing}) // 20, ?
	mustAppend(left, Tuple{1, 0})       // 30, chi
	mustAppend(right, Tuple{1, 0, 0})   // nyc east big
	mustAppend(right, Tuple{2, 1, 0})   // sfo west big
	// chi intentionally absent: dangling foreign key.
	return left, right
}

func TestJoinBasic(t *testing.T) {
	left, right := joinFixture(t)
	out, err := Join(left, right, JoinSpec{LeftKey: 1, RightKey: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Keys dropped: age + coast + size.
	if out.Schema.NumAttrs() != 3 {
		t.Fatalf("attrs = %v", out.Schema.SortedAttrNames())
	}
	if out.Len() != 4 {
		t.Fatalf("rows = %d", out.Len())
	}
	// Row 0: 20/nyc -> east, big.
	if !out.Tuples[0].Equal(Tuple{0, 0, 0}) {
		t.Errorf("row 0 = %v", out.Tuples[0])
	}
	// Row 1: 30/sfo -> west, big.
	if !out.Tuples[1].Equal(Tuple{1, 1, 0}) {
		t.Errorf("row 1 = %v", out.Tuples[1])
	}
	// Row 2: missing FK -> right side all missing.
	if !out.Tuples[2].Equal(Tuple{0, Missing, Missing}) {
		t.Errorf("row 2 = %v", out.Tuples[2])
	}
	// Row 3: dangling chi -> right side all missing.
	if !out.Tuples[3].Equal(Tuple{1, Missing, Missing}) {
		t.Errorf("row 3 = %v", out.Tuples[3])
	}
}

func TestJoinKeepKeys(t *testing.T) {
	left, right := joinFixture(t)
	out, err := Join(left, right, JoinSpec{LeftKey: 1, RightKey: 0, KeepKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	// age + city (FK) + city (PK, prefixed) + coast + size: KeepKeys keeps
	// BOTH key columns, so the right PK survives under a prefixed name.
	if out.Schema.NumAttrs() != 5 {
		t.Fatalf("attrs = %v", out.Schema.SortedAttrNames())
	}
	if out.Schema.AttrIndex("city") != 1 {
		t.Errorf("city position = %d", out.Schema.AttrIndex("city"))
	}
	pk := out.Schema.AttrIndex("right.city")
	if pk != 2 {
		t.Fatalf("right.city position = %d (attrs %v)", pk, out.Schema.SortedAttrNames())
	}
	// Matched row: PK equals FK.
	if !out.Tuples[0].Equal(Tuple{0, 1, 1, 0, 0}) {
		t.Errorf("row 0 = %v", out.Tuples[0])
	}
	// Missing FK: kept PK is missing like the rest of the right side.
	if !out.Tuples[2].Equal(Tuple{0, Missing, Missing, Missing, Missing}) {
		t.Errorf("row 2 = %v", out.Tuples[2])
	}
	// Dangling FK (chi): FK survives, right side incl. PK missing.
	if !out.Tuples[3].Equal(Tuple{1, 0, Missing, Missing, Missing}) {
		t.Errorf("row 3 = %v", out.Tuples[3])
	}
}

func TestJoinNameCollision(t *testing.T) {
	shared := []string{"k1", "k2"}
	left := NewRelation(MustSchema([]Attribute{
		{Name: "id", Domain: shared},
		{Name: "x", Domain: []string{"a", "b"}},
	}))
	right := NewRelation(MustSchema([]Attribute{
		{Name: "id", Domain: shared},
		{Name: "x", Domain: []string{"c", "d"}}, // collides with left's x
	}))
	if err := left.Append(Tuple{0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := right.Append(Tuple{0, 1}); err != nil {
		t.Fatal(err)
	}
	out, err := Join(left, right, JoinSpec{LeftKey: 0, RightKey: 0})
	if err != nil {
		t.Fatal(err)
	}
	names := out.Schema.SortedAttrNames()
	if names[0] != "x" || names[1] != "right.x" {
		t.Errorf("names = %v", names)
	}
}

// A relation may already contain a prefixed name like "right.x"; one round
// of prefixing then still collides, so addAttr must loop until unique.
func TestJoinNameCollisionAlreadyPrefixed(t *testing.T) {
	shared := []string{"k1", "k2"}
	left := NewRelation(MustSchema([]Attribute{
		{Name: "id", Domain: shared},
		{Name: "x", Domain: []string{"a", "b"}},
		{Name: "right.x", Domain: []string{"p", "q"}},
	}))
	right := NewRelation(MustSchema([]Attribute{
		{Name: "id", Domain: shared},
		{Name: "x", Domain: []string{"c", "d"}},
	}))
	if err := left.Append(Tuple{0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := right.Append(Tuple{0, 1}); err != nil {
		t.Fatal(err)
	}
	out, err := Join(left, right, JoinSpec{LeftKey: 0, RightKey: 0})
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema.NumAttrs() != 3 {
		t.Fatalf("attrs = %v", out.Schema.SortedAttrNames())
	}
	want := map[string]bool{"x": true, "right.x": true, "right.right.x": true}
	for _, a := range out.Schema.Attrs {
		if !want[a.Name] {
			t.Errorf("unexpected attr %q (attrs %v)", a.Name, out.Schema.SortedAttrNames())
		}
		delete(want, a.Name)
	}
	if len(want) != 0 {
		t.Errorf("missing attrs %v", want)
	}
}

// Custom prefixes let the SPJ layer surface collisions under relation
// names instead of the generic left/right.
func TestJoinCustomPrefixes(t *testing.T) {
	left, right := joinFixture(t)
	out, err := Join(left, right, JoinSpec{
		LeftKey: 1, RightKey: 0, KeepKeys: true,
		LeftPrefix: "people", RightPrefix: "cities",
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema.AttrIndex("cities.city") < 0 {
		t.Errorf("want cities.city in %v", out.Schema.SortedAttrNames())
	}
}

func TestJoinTraceProvenance(t *testing.T) {
	left, right := joinFixture(t)
	out, trace, err := JoinTrace(left, right, JoinSpec{LeftKey: 1, RightKey: 0})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != len(trace) {
		t.Fatalf("len mismatch: %d rows, %d trace entries", out.Len(), len(trace))
	}
	// nyc -> right row 0, sfo -> right row 1, missing FK -> -1, dangling chi -> -1.
	want := []int{0, 1, -1, -1}
	for i, w := range want {
		if trace[i] != w {
			t.Errorf("trace[%d] = %d, want %d", i, trace[i], w)
		}
	}
}

func TestJoinValidation(t *testing.T) {
	left, right := joinFixture(t)
	if _, err := Join(left, right, JoinSpec{LeftKey: 9, RightKey: 0}); err == nil {
		t.Error("bad left key should fail")
	}
	if _, err := Join(left, right, JoinSpec{LeftKey: 1, RightKey: 9}); err == nil {
		t.Error("bad right key should fail")
	}
	// Domain mismatch.
	other := NewRelation(MustSchema([]Attribute{
		{Name: "city", Domain: []string{"nyc", "sfo"}}, // different card
		{Name: "z", Domain: []string{"0"}},
	}))
	if _, err := Join(left, other, JoinSpec{LeftKey: 1, RightKey: 0}); err == nil {
		t.Error("key domain mismatch should fail")
	}
}

func TestJoinRejectsDuplicateOrMissingPK(t *testing.T) {
	left, right := joinFixture(t)
	if err := right.Append(Tuple{1, 2, 1}); err != nil { // second nyc
		t.Fatal(err)
	}
	if _, err := Join(left, right, JoinSpec{LeftKey: 1, RightKey: 0}); err == nil {
		t.Error("duplicate primary key should fail")
	}
	_, right2 := joinFixture(t)
	if err := right2.Append(Tuple{Missing, 2, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Join(left, right2, JoinSpec{LeftKey: 1, RightKey: 0}); err == nil {
		t.Error("missing primary key should fail")
	}
}

// TestJoinThenLearnEndToEnd: cross-relation correlations survive the join
// and are learnable — the use case the paper sketches.
func TestJoinThenLearnEndToEnd(t *testing.T) {
	cities := []string{"c0", "c1"}
	left := NewRelation(MustSchema([]Attribute{
		{Name: "inc", Domain: []string{"lo", "hi"}},
		{Name: "city", Domain: cities},
	}))
	right := NewRelation(MustSchema([]Attribute{
		{Name: "city", Domain: cities},
		{Name: "rent", Domain: []string{"cheap", "steep"}},
	}))
	// c0 is cheap, c1 is steep; income tracks city.
	if err := right.Append(Tuple{0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := right.Append(Tuple{1, 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := left.Append(Tuple{0, 0}); err != nil {
			t.Fatal(err)
		}
		if err := left.Append(Tuple{1, 1}); err != nil {
			t.Fatal(err)
		}
	}
	out, err := Join(left, right, JoinSpec{LeftKey: 1, RightKey: 0})
	if err != nil {
		t.Fatal(err)
	}
	// inc and rent are now perfectly correlated in the joined relation.
	incIdx, rentIdx := out.Schema.AttrIndex("inc"), out.Schema.AttrIndex("rent")
	if incIdx < 0 || rentIdx < 0 {
		t.Fatalf("joined schema = %v", out.Schema.SortedAttrNames())
	}
	probe := NewTuple(out.Schema.NumAttrs())
	probe[incIdx] = 1
	probe[rentIdx] = 1
	if got := out.Support(probe); got != 0.5 {
		t.Errorf("supp(inc=hi, rent=steep) = %v, want 0.5", got)
	}
	probe[rentIdx] = 0
	if got := out.Support(probe); got != 0 {
		t.Errorf("supp(inc=hi, rent=cheap) = %v, want 0", got)
	}
}

// TestQuickJoinPreservesRowCount: a PK-FK join emits exactly one output
// row per left row, whatever the key coverage.
func TestQuickJoinPreservesRowCount(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	keys := []string{"k0", "k1", "k2"}
	for trial := 0; trial < 100; trial++ {
		left := NewRelation(MustSchema([]Attribute{
			{Name: "v", Domain: []string{"a", "b"}},
			{Name: "fk", Domain: keys},
		}))
		n := 1 + rng.Intn(30)
		for i := 0; i < n; i++ {
			fk := rng.Intn(3)
			tu := Tuple{rng.Intn(2), fk}
			if rng.Float64() < 0.2 {
				tu[1] = Missing
			}
			if err := left.Append(tu); err != nil {
				t.Fatal(err)
			}
		}
		right := NewRelation(MustSchema([]Attribute{
			{Name: "pk", Domain: keys},
			{Name: "w", Domain: []string{"x", "y"}},
		}))
		// Cover a random subset of keys.
		for k := 0; k < 3; k++ {
			if rng.Float64() < 0.7 {
				if err := right.Append(Tuple{k, rng.Intn(2)}); err != nil {
					t.Fatal(err)
				}
			}
		}
		out, err := Join(left, right, JoinSpec{LeftKey: 1, RightKey: 0})
		if err != nil {
			t.Fatal(err)
		}
		if out.Len() != left.Len() {
			t.Fatalf("join emitted %d rows for %d left rows", out.Len(), left.Len())
		}
	}
}
