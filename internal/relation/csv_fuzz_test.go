package relation

import (
	"bytes"
	"testing"
)

// FuzzReadCSV guards the CSV parser — the pipeline's external data input —
// against panics, and checks that anything it accepts is a well-formed
// relation that survives a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	seeds := []string{
		"age,inc\n20,50K\n30,100K\n?,50K\n30,?\n?,?\n",
		"a\nx\n",
		"a,b\n?,?\n",                 // all-missing column: must be rejected
		"a,b\n1\n",                   // ragged row
		"",                           // empty input
		"a,a\n1,2\n",                 // duplicate attribute names
		"x,y\n\"q,uo\",2\n?,2\n",     // quoted field with comma
		"h1,h2\r\nv1,v2\r\nv1,?\r\n", // CRLF
		"a,b\n 1,2\n1 ,2\n",          // leading/trailing spaces
		"név,inc\nérték,50K\n",       // non-ASCII labels
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rel, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			return // rejecting malformed input is fine; panicking is not
		}
		// Accepted input must produce a consistent relation: every tuple
		// within schema bounds (Append re-validates) ...
		check := NewRelation(rel.Schema)
		for _, tu := range rel.Tuples {
			if err := check.Append(tu); err != nil {
				t.Fatalf("accepted relation has invalid tuple %v: %v", tu, err)
			}
		}
		// ... and it must survive a write/read round trip.
		var buf bytes.Buffer
		if err := WriteCSV(&buf, rel); err != nil {
			t.Fatalf("WriteCSV of accepted relation: %v", err)
		}
		back, err := ReadCSV(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip rejected: %v\ncsv:\n%s", err, buf.String())
		}
		if back.Len() != rel.Len() || back.Schema.NumAttrs() != rel.Schema.NumAttrs() {
			t.Fatalf("round trip changed shape: %dx%d -> %dx%d",
				rel.Len(), rel.Schema.NumAttrs(), back.Len(), back.Schema.NumAttrs())
		}
	})
}
