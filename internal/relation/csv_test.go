package relation

import (
	"bytes"
	"strings"
	"testing"
)

const sampleCSV = `age,edu,inc
20,HS,50K
30,BS,?
?,HS,100K
20,MS,50K
`

func TestReadCSV(t *testing.T) {
	r, err := ReadCSV(strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	if r.Schema.NumAttrs() != 3 {
		t.Fatalf("NumAttrs = %d, want 3", r.Schema.NumAttrs())
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	// Domains are sorted distinct labels.
	age := r.Schema.Attrs[0]
	if age.Name != "age" || age.Card() != 2 {
		t.Errorf("age attr = %+v", age)
	}
	if age.Domain[0] != "20" || age.Domain[1] != "30" {
		t.Errorf("age domain = %v", age.Domain)
	}
	// Missing cells become Missing codes.
	if r.Tuples[1][2] != Missing {
		t.Errorf("row 2 inc should be missing, got %d", r.Tuples[1][2])
	}
	if r.Tuples[2][0] != Missing {
		t.Errorf("row 3 age should be missing, got %d", r.Tuples[2][0])
	}
	rc, ri := r.Split()
	if rc.Len() != 2 || ri.Len() != 2 {
		t.Errorf("split = %d complete, %d incomplete; want 2, 2", rc.Len(), ri.Len())
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n?,x\n?,y\n")); err == nil {
		t.Error("all-missing column should fail")
	}
	// Ragged rows are rejected by encoding/csv itself.
	if _, err := ReadCSV(strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("ragged row should fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig, err := ReadCSV(strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() {
		t.Fatalf("roundtrip length %d != %d", back.Len(), orig.Len())
	}
	for i := range orig.Tuples {
		if !orig.Tuples[i].Equal(back.Tuples[i]) {
			t.Errorf("tuple %d: %v != %v", i, orig.Tuples[i], back.Tuples[i])
		}
	}
}

func TestWriteCSVMatchmaking(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, Matchmaking()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 18 { // header + 17 tuples
		t.Fatalf("lines = %d, want 18", len(lines))
	}
	if lines[0] != "age,edu,inc,nw" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "20,HS,?,?" {
		t.Errorf("t1 = %q, want 20,HS,?,?", lines[1])
	}
}
