package relation

import (
	"fmt"
	"math"
	"strings"
)

// AttrProfile summarizes one attribute of a relation: how often it is
// missing and how its known values distribute. Profiles guide the choice
// of support threshold (rare values need lower theta to surface rules) and
// flag attributes whose missing rate makes them inference targets.
type AttrProfile struct {
	// Name is the attribute name.
	Name string
	// Card is the domain cardinality.
	Card int
	// Known and MissingCount partition the column.
	Known, MissingCount int
	// Counts holds per-value occurrence counts over known cells.
	Counts []int
	// Entropy is the Shannon entropy (nats) of the known-value
	// distribution; near-zero entropy means the attribute is almost
	// constant and its rules carry little information.
	Entropy float64
}

// MissingRate returns the fraction of tuples with this attribute missing.
func (p *AttrProfile) MissingRate() float64 {
	total := p.Known + p.MissingCount
	if total == 0 {
		return 0
	}
	return float64(p.MissingCount) / float64(total)
}

// Profile summarizes a relation column by column.
type Profile struct {
	// Tuples, Complete, and Incomplete count rows.
	Tuples, Complete, Incomplete int
	// Attrs holds one profile per attribute, in schema order.
	Attrs []AttrProfile
}

// ComputeProfile scans the relation once and summarizes it.
func ComputeProfile(r *Relation) *Profile {
	p := &Profile{Tuples: r.Len()}
	p.Attrs = make([]AttrProfile, r.Schema.NumAttrs())
	for i, a := range r.Schema.Attrs {
		p.Attrs[i] = AttrProfile{
			Name:   a.Name,
			Card:   a.Card(),
			Counts: make([]int, a.Card()),
		}
	}
	for _, t := range r.Tuples {
		if t.IsComplete() {
			p.Complete++
		} else {
			p.Incomplete++
		}
		for i, v := range t {
			if v == Missing {
				p.Attrs[i].MissingCount++
				continue
			}
			p.Attrs[i].Known++
			p.Attrs[i].Counts[v]++
		}
	}
	for i := range p.Attrs {
		ap := &p.Attrs[i]
		if ap.Known == 0 {
			continue
		}
		for _, c := range ap.Counts {
			if c == 0 {
				continue
			}
			f := float64(c) / float64(ap.Known)
			ap.Entropy -= f * math.Log(f)
		}
	}
	return p
}

// Render draws the profile as an aligned text report.
func (p *Profile) Render(s *Schema) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d tuples: %d complete, %d incomplete (%.1f%%)\n",
		p.Tuples, p.Complete, p.Incomplete,
		100*float64(p.Incomplete)/math.Max(1, float64(p.Tuples)))
	for i, ap := range p.Attrs {
		fmt.Fprintf(&b, "  %-12s card %-3d missing %5.1f%%  entropy %.2f",
			ap.Name, ap.Card, 100*ap.MissingRate(), ap.Entropy)
		// Show the mode value for quick orientation.
		best, bestCount := 0, -1
		for v, c := range ap.Counts {
			if c > bestCount {
				best, bestCount = v, c
			}
		}
		if ap.Known > 0 {
			fmt.Fprintf(&b, "  mode %s (%.1f%%)",
				s.Attrs[i].Domain[best], 100*float64(bestCount)/float64(ap.Known))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
