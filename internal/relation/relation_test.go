package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	return MatchmakingSchema()
}

func TestNewSchemaValidation(t *testing.T) {
	cases := []struct {
		name  string
		attrs []Attribute
	}{
		{"empty name", []Attribute{{Name: "", Domain: []string{"a"}}}},
		{"empty domain", []Attribute{{Name: "x", Domain: nil}}},
		{"dup attr", []Attribute{
			{Name: "x", Domain: []string{"a"}},
			{Name: "x", Domain: []string{"b"}},
		}},
		{"dup value", []Attribute{{Name: "x", Domain: []string{"a", "a"}}}},
	}
	for _, c := range cases {
		if _, err := NewSchema(c.attrs); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestSchemaBasics(t *testing.T) {
	s := testSchema(t)
	if s.NumAttrs() != 4 {
		t.Fatalf("NumAttrs = %d, want 4", s.NumAttrs())
	}
	if got := s.AttrIndex("inc"); got != 2 {
		t.Errorf("AttrIndex(inc) = %d, want 2", got)
	}
	if got := s.AttrIndex("nope"); got != -1 {
		t.Errorf("AttrIndex(nope) = %d, want -1", got)
	}
	if got := s.DomainSize(); got != 3*3*2*2 {
		t.Errorf("DomainSize = %d, want 36", got)
	}
	cards := s.Cards()
	want := []int{3, 3, 2, 2}
	for i := range cards {
		if cards[i] != want[i] {
			t.Errorf("Cards[%d] = %d, want %d", i, cards[i], want[i])
		}
	}
	code, err := s.ValueCode(0, "30")
	if err != nil || code != 1 {
		t.Errorf("ValueCode(age, 30) = %d, %v", code, err)
	}
	if _, err := s.ValueCode(0, "99"); err == nil {
		t.Error("ValueCode with unknown label should fail")
	}
	if _, err := s.ValueCode(9, "x"); err == nil {
		t.Error("ValueCode with bad attr should fail")
	}
}

func TestTupleCompleteness(t *testing.T) {
	full := Tuple{0, 1, 0, 1}
	if !full.IsComplete() || full.NumMissing() != 0 || full.NumKnown() != 4 {
		t.Errorf("complete tuple misclassified")
	}
	part := Tuple{0, Missing, 1, Missing}
	if part.IsComplete() {
		t.Errorf("incomplete tuple misclassified")
	}
	if got := part.NumMissing(); got != 2 {
		t.Errorf("NumMissing = %d, want 2", got)
	}
	ca := part.CompleteAttrs()
	if len(ca) != 2 || ca[0] != 0 || ca[1] != 2 {
		t.Errorf("CompleteAttrs = %v", ca)
	}
	ma := part.MissingAttrs()
	if len(ma) != 2 || ma[0] != 1 || ma[1] != 3 {
		t.Errorf("MissingAttrs = %v", ma)
	}
}

// TestPaperSupportExample checks Definition 2.3's worked example: in Fig. 1,
// t1 = ⟨20, HS, ?, ?⟩ is matched by points t4, t6, t7, so supp(t1) = 3/8.
func TestPaperSupportExample(t *testing.T) {
	r := Matchmaking()
	rc, ri := r.Split()
	if rc.Len() != 8 {
		t.Fatalf("complete part has %d tuples, want 8", rc.Len())
	}
	if ri.Len() != 9 {
		t.Fatalf("incomplete part has %d tuples, want 9", ri.Len())
	}
	t1 := r.Tuples[0]
	if got, want := rc.Support(t1), 3.0/8.0; got != want {
		t.Errorf("supp(t1) = %v, want %v", got, want)
	}
	if got := rc.CountMatches(t1); got != 3 {
		t.Errorf("CountMatches(t1) = %d, want 3", got)
	}
}

// TestPaperMatchExample: point t4 matches t1 while point t2 does not.
func TestPaperMatchExample(t *testing.T) {
	r := Matchmaking()
	t1, t2, t4 := r.Tuples[0], r.Tuples[1], r.Tuples[3]
	if !t1.Matches(t4) {
		t.Errorf("t4 should match t1")
	}
	if t1.Matches(t2) {
		t.Errorf("t2 should not match t1")
	}
}

// TestPaperSubsumptionExample: t1 ≺ t5 and t3 ≺ t5; no subsumption between
// t1 and t3 (Definition 2.4's worked example).
func TestPaperSubsumptionExample(t *testing.T) {
	r := Matchmaking()
	t1, t3, t5 := r.Tuples[0], r.Tuples[2], r.Tuples[4]
	if !t5.Subsumes(t1) {
		t.Errorf("t5 should subsume t1 (t1 ≺ t5)")
	}
	if !t5.Subsumes(t3) {
		t.Errorf("t5 should subsume t3 (t3 ≺ t5)")
	}
	if t1.Subsumes(t3) || t3.Subsumes(t1) {
		t.Errorf("t1 and t3 should be incomparable")
	}
}

func TestSubsumesIsStrict(t *testing.T) {
	a := Tuple{0, Missing}
	if a.Subsumes(a) {
		t.Errorf("a tuple must not strictly subsume itself")
	}
	if !a.SubsumesOrEqual(a) {
		t.Errorf("SubsumesOrEqual must accept equality")
	}
}

func TestEqual(t *testing.T) {
	a := Tuple{0, 1, Missing}
	b := Tuple{0, 1, Missing}
	c := Tuple{0, 1, 2}
	if !a.Equal(b) || a.Equal(c) || a.Equal(Tuple{0, 1}) {
		t.Errorf("Equal misbehaves")
	}
}

func TestKeyIdentifiesAssignment(t *testing.T) {
	a := Tuple{0, Missing, 1}
	b := Tuple{0, Missing, 1}
	c := Tuple{0, 1, Missing}
	d := Tuple{Missing, 0, 1} // same values, different attrs
	if a.Key() != b.Key() {
		t.Errorf("equal tuples must share a key")
	}
	if a.Key() == c.Key() || a.Key() == d.Key() {
		t.Errorf("different assignments must have different keys")
	}
	empty := Tuple{Missing, Missing}
	if empty.Key() != "" {
		t.Errorf("fully missing tuple should have empty key")
	}
}

func TestKeyDisambiguatesLargeCodes(t *testing.T) {
	// Attribute/value codes above 127 exercise the uvarint encoding.
	a := NewTuple(200)
	a[128] = 130
	b := NewTuple(200)
	b[130] = 128
	if a.Key() == b.Key() {
		t.Errorf("keys collide for distinct large-coded assignments")
	}
}

func TestAppendValidation(t *testing.T) {
	r := NewRelation(testSchema(t))
	if err := r.Append(Tuple{0, 0, 0}); err == nil {
		t.Error("short tuple should fail")
	}
	if err := r.Append(Tuple{0, 0, 0, 5}); err == nil {
		t.Error("out-of-range value should fail")
	}
	if err := r.Append(Tuple{0, 0, 0, -2}); err == nil {
		t.Error("negative non-missing value should fail")
	}
	if err := r.Append(Tuple{Missing, 0, 0, 0}); err != nil {
		t.Errorf("missing value should be accepted: %v", err)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
}

func TestDistinctIncomplete(t *testing.T) {
	s := testSchema(t)
	r := NewRelation(s)
	mustAppend := func(tu Tuple) {
		if err := r.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	mustAppend(Tuple{0, 0, 0, 0})             // complete: skipped
	mustAppend(Tuple{0, Missing, 0, Missing}) // A
	mustAppend(Tuple{0, Missing, 0, Missing}) // A again
	mustAppend(Tuple{Missing, 0, 0, Missing}) // B
	tuples, counts := r.DistinctIncomplete()
	if len(tuples) != 2 {
		t.Fatalf("distinct = %d, want 2", len(tuples))
	}
	if counts[0] != 2 || counts[1] != 1 {
		t.Errorf("counts = %v, want [2 1]", counts)
	}
}

func TestFormat(t *testing.T) {
	s := testSchema(t)
	got := Tuple{0, 0, Missing, Missing}.Format(s)
	want := "⟨age=20, edu=HS, inc=?, nw=?⟩"
	if got != want {
		t.Errorf("Format = %q, want %q", got, want)
	}
}

// randTuple generates a random partial tuple over n attributes with small
// cardinalities, for property tests.
func randTuple(rng *rand.Rand, n int) Tuple {
	t := NewTuple(n)
	for i := range t {
		switch rng.Intn(3) {
		case 0: // missing
		default:
			t[i] = rng.Intn(3)
		}
	}
	return t
}

// TestQuickSubsumptionPartialOrder checks that strict subsumption is
// irreflexive, antisymmetric, and transitive on random tuples.
func TestQuickSubsumptionPartialOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 3000; i++ {
		a, b, c := randTuple(rng, 5), randTuple(rng, 5), randTuple(rng, 5)
		if a.Subsumes(a) {
			t.Fatalf("irreflexivity violated: %v", a)
		}
		if a.Subsumes(b) && b.Subsumes(a) {
			t.Fatalf("antisymmetry violated: %v, %v", a, b)
		}
		if a.Subsumes(b) && b.Subsumes(c) && !a.Subsumes(c) {
			t.Fatalf("transitivity violated: %v, %v, %v", a, b, c)
		}
	}
}

// TestQuickSubsumerHasFewerKnown: a strict subsumer fixes strictly fewer
// attributes than its subsumee.
func TestQuickSubsumerHasFewerKnown(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 3000; i++ {
		a, b := randTuple(rng, 5), randTuple(rng, 5)
		if a.Subsumes(b) && a.NumKnown() >= b.NumKnown() {
			t.Fatalf("subsumer %v has >= known attrs than subsumee %v", a, b)
		}
	}
}

// TestQuickMatchesMonotone: if a subsumes b then every point matching b also
// matches a (supp is monotone under subsumption).
func TestQuickMatchesMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for i := 0; i < 3000; i++ {
		a, b := randTuple(rng, 4), randTuple(rng, 4)
		if !a.Subsumes(b) {
			continue
		}
		p := NewTuple(4)
		for j := range p {
			p[j] = rng.Intn(3)
		}
		if b.Matches(p) && !a.Matches(p) {
			t.Fatalf("monotonicity violated: a=%v b=%v p=%v", a, b, p)
		}
	}
}

func TestQuickKeyRoundtripEquality(t *testing.T) {
	f := func(vals [6]int8) bool {
		a := NewTuple(6)
		b := NewTuple(6)
		for i, v := range vals {
			code := int(v)
			if code < 0 {
				code = Missing
			} else {
				code %= 4
			}
			a[i], b[i] = code, code
		}
		return a.Key() == b.Key() && a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSupportEmptyRelation(t *testing.T) {
	r := NewRelation(testSchema(t))
	if got := r.Support(Tuple{0, 0, 0, 0}); got != 0 {
		t.Errorf("Support over empty relation = %v, want 0", got)
	}
}

func TestFullyMissingTupleMatchesEverything(t *testing.T) {
	r := Matchmaking()
	rc, _ := r.Split()
	all := NewTuple(4)
	if got := rc.Support(all); got != 1 {
		t.Errorf("supp(t*) = %v, want 1", got)
	}
}
