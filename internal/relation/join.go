package relation

import (
	"fmt"
)

// The paper assumes a single relation but notes (Section I-B) that
// multi-relation databases can be handled by "computing a primary-foreign
// key join when appropriate" and learning over the joined relation. This
// file implements that preprocessing step.

// JoinSpec describes a primary-foreign key equi-join between two relations.
type JoinSpec struct {
	// LeftKey is the foreign-key attribute index in the left relation.
	LeftKey int
	// RightKey is the primary-key attribute index in the right relation;
	// its values must be unique among the right relation's tuples.
	RightKey int
	// KeepKeys retains the join attributes in the output; by default they
	// are dropped (keys are identifiers, not statistical evidence — mining
	// them would produce one spurious "rule" per entity).
	KeepKeys bool
}

// Join computes the PK-FK join of left and right. Key attributes must have
// identical domains (they refer to the same entities). Left tuples with a
// missing foreign key, or with a foreign key that has no right-side match,
// join to an all-missing right side — the derived columns become inference
// targets rather than being dropped, mirroring how incomplete data is
// handled everywhere else in the pipeline.
func Join(left, right *Relation, spec JoinSpec) (*Relation, error) {
	if spec.LeftKey < 0 || spec.LeftKey >= left.Schema.NumAttrs() {
		return nil, fmt.Errorf("relation: left key %d out of range", spec.LeftKey)
	}
	if spec.RightKey < 0 || spec.RightKey >= right.Schema.NumAttrs() {
		return nil, fmt.Errorf("relation: right key %d out of range", spec.RightKey)
	}
	lk, rk := left.Schema.Attrs[spec.LeftKey], right.Schema.Attrs[spec.RightKey]
	if lk.Card() != rk.Card() {
		return nil, fmt.Errorf("relation: key domains differ (%d vs %d values)", lk.Card(), rk.Card())
	}
	for i := range lk.Domain {
		if lk.Domain[i] != rk.Domain[i] {
			return nil, fmt.Errorf("relation: key domains differ at value %d (%q vs %q)",
				i, lk.Domain[i], rk.Domain[i])
		}
	}

	// Index the right relation by key; enforce primary-key uniqueness.
	index := make(map[int]Tuple, right.Len())
	for _, t := range right.Tuples {
		k := t[spec.RightKey]
		if k == Missing {
			return nil, fmt.Errorf("relation: right tuple %v has missing primary key", t)
		}
		if _, dup := index[k]; dup {
			return nil, fmt.Errorf("relation: duplicate primary key %q",
				rk.Domain[k])
		}
		index[k] = t
	}

	// Output schema: left attributes (optionally minus the FK), then right
	// attributes (optionally minus the PK). Names are prefixed on
	// collision.
	var attrs []Attribute
	var leftMap, rightMap []int // output position -> source attr, or -1
	names := make(map[string]bool)
	addAttr := func(a Attribute, prefix string) {
		name := a.Name
		if names[name] {
			name = prefix + "." + name
		}
		names[name] = true
		attrs = append(attrs, Attribute{Name: name, Domain: a.Domain})
	}
	for i, a := range left.Schema.Attrs {
		if i == spec.LeftKey && !spec.KeepKeys {
			continue
		}
		leftMap = append(leftMap, i)
		addAttr(a, "left")
	}
	for i, a := range right.Schema.Attrs {
		if i == spec.RightKey {
			continue // the PK duplicates the FK; at most the FK is kept
		}
		rightMap = append(rightMap, i)
		addAttr(a, "right")
	}
	schema, err := NewSchema(attrs)
	if err != nil {
		return nil, err
	}

	out := NewRelation(schema)
	for _, lt := range left.Tuples {
		tu := NewTuple(schema.NumAttrs())
		pos := 0
		for _, src := range leftMap {
			tu[pos] = lt[src]
			pos++
		}
		var rt Tuple
		if k := lt[spec.LeftKey]; k != Missing {
			rt = index[k] // nil when dangling: right side stays missing
		}
		for _, src := range rightMap {
			if rt != nil {
				tu[pos] = rt[src]
			}
			pos++
		}
		if err := out.Append(tu); err != nil {
			return nil, err
		}
	}
	return out, nil
}
