package relation

import (
	"fmt"
)

// The paper assumes a single relation but notes (Section I-B) that
// multi-relation databases can be handled by "computing a primary-foreign
// key join when appropriate" and learning over the joined relation. This
// file implements that preprocessing step; the intensional SPJ query
// layer (internal/query) reuses it at query time through JoinTrace, which
// additionally reports each output row's right-side provenance.

// JoinSpec describes a primary-foreign key equi-join between two relations.
type JoinSpec struct {
	// LeftKey is the foreign-key attribute index in the left relation.
	LeftKey int
	// RightKey is the primary-key attribute index in the right relation;
	// its values must be unique among the right relation's tuples.
	RightKey int
	// KeepKeys retains the join attributes in the output — both the left
	// foreign key and the right primary key columns; by default they are
	// dropped (keys are identifiers, not statistical evidence — mining
	// them would produce one spurious "rule" per entity). A kept right
	// primary key is Missing on rows whose foreign key is missing or
	// dangling, like every other right-side column.
	KeepKeys bool
	// LeftPrefix and RightPrefix replace the default "left"/"right"
	// prefixes used to disambiguate colliding attribute names; the SPJ
	// layer passes relation names here so a collision surfaces as e.g.
	// "cities.city" instead of "right.city".
	LeftPrefix, RightPrefix string
}

// JoinTrace is Join plus provenance: RightRow[i] is the right-relation
// tuple index that output row i joined with, or -1 when the row's foreign
// key was missing or dangling (the right side is then all-missing). The
// output has exactly one row per left row, in left order, so the left
// provenance of row i is i itself.
func JoinTrace(left, right *Relation, spec JoinSpec) (*Relation, []int, error) {
	if spec.LeftKey < 0 || spec.LeftKey >= left.Schema.NumAttrs() {
		return nil, nil, fmt.Errorf("relation: left key %d out of range", spec.LeftKey)
	}
	if spec.RightKey < 0 || spec.RightKey >= right.Schema.NumAttrs() {
		return nil, nil, fmt.Errorf("relation: right key %d out of range", spec.RightKey)
	}
	lk, rk := left.Schema.Attrs[spec.LeftKey], right.Schema.Attrs[spec.RightKey]
	if lk.Card() != rk.Card() {
		return nil, nil, fmt.Errorf("relation: key domains differ (%d vs %d values)", lk.Card(), rk.Card())
	}
	for i := range lk.Domain {
		if lk.Domain[i] != rk.Domain[i] {
			return nil, nil, fmt.Errorf("relation: key domains differ at value %d (%q vs %q)",
				i, lk.Domain[i], rk.Domain[i])
		}
	}

	// Index the right relation by key; enforce primary-key uniqueness.
	index := make(map[int]int, right.Len())
	for j, t := range right.Tuples {
		k := t[spec.RightKey]
		if k == Missing {
			return nil, nil, fmt.Errorf("relation: right tuple %v has missing primary key", t)
		}
		if _, dup := index[k]; dup {
			return nil, nil, fmt.Errorf("relation: duplicate primary key %q",
				rk.Domain[k])
		}
		index[k] = j
	}

	leftPrefix, rightPrefix := spec.LeftPrefix, spec.RightPrefix
	if leftPrefix == "" {
		leftPrefix = "left"
	}
	if rightPrefix == "" {
		rightPrefix = "right"
	}

	// Output schema: left attributes (optionally minus the FK), then right
	// attributes (optionally minus the PK). Names are prefixed on
	// collision, repeatedly until unique — a relation may itself contain a
	// prefixed name like "right.x", so one prefixing pass is not enough.
	var attrs []Attribute
	var leftMap, rightMap []int // output position -> source attr, or -1
	names := make(map[string]bool)
	addAttr := func(a Attribute, prefix string) {
		name := a.Name
		for names[name] {
			name = prefix + "." + name
		}
		names[name] = true
		attrs = append(attrs, Attribute{Name: name, Domain: a.Domain})
	}
	for i, a := range left.Schema.Attrs {
		if i == spec.LeftKey && !spec.KeepKeys {
			continue
		}
		leftMap = append(leftMap, i)
		addAttr(a, leftPrefix)
	}
	for i, a := range right.Schema.Attrs {
		if i == spec.RightKey && !spec.KeepKeys {
			continue // the PK duplicates the FK unless the caller keeps keys
		}
		rightMap = append(rightMap, i)
		addAttr(a, rightPrefix)
	}
	schema, err := NewSchema(attrs)
	if err != nil {
		return nil, nil, err
	}

	out := NewRelation(schema)
	trace := make([]int, 0, left.Len())
	for _, lt := range left.Tuples {
		tu := NewTuple(schema.NumAttrs())
		pos := 0
		for _, src := range leftMap {
			tu[pos] = lt[src]
			pos++
		}
		var rt Tuple
		rj := -1
		if k := lt[spec.LeftKey]; k != Missing {
			if j, ok := index[k]; ok {
				rt, rj = right.Tuples[j], j
			}
			// dangling: right side stays missing
		}
		for _, src := range rightMap {
			if rt != nil {
				tu[pos] = rt[src]
			}
			pos++
		}
		if err := out.Append(tu); err != nil {
			return nil, nil, err
		}
		trace = append(trace, rj)
	}
	return out, trace, nil
}

// Join computes the PK-FK join of left and right. Key attributes must have
// identical domains (they refer to the same entities). Left tuples with a
// missing foreign key, or with a foreign key that has no right-side match,
// join to an all-missing right side — the derived columns become inference
// targets rather than being dropped, mirroring how incomplete data is
// handled everywhere else in the pipeline.
func Join(left, right *Relation, spec JoinSpec) (*Relation, error) {
	out, _, err := JoinTrace(left, right, spec)
	return out, err
}
