package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
)

// MissingLabel is the textual rendering of a missing value in CSV files,
// matching the paper's "?" notation.
const MissingLabel = "?"

// ReadCSV parses a relation from CSV. The first record is the header naming
// the attributes. Domains are inferred from the data: each attribute's
// domain is the sorted set of distinct non-"?" labels seen in its column.
func ReadCSV(r io.Reader) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("relation: reading csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("relation: csv has no header")
	}
	header := records[0]
	rows := records[1:]

	// Infer per-column domains.
	domains := make([]map[string]bool, len(header))
	for i := range domains {
		domains[i] = make(map[string]bool)
	}
	for n, row := range rows {
		if len(row) != len(header) {
			return nil, fmt.Errorf("relation: row %d has %d fields, want %d", n+2, len(row), len(header))
		}
		for i, cell := range row {
			if cell == "" {
				// Empty labels cannot round-trip through CSV (a row of
				// empty fields reads back as a blank line); require the
				// explicit missing marker instead.
				return nil, fmt.Errorf("relation: row %d column %q is empty (use %q for missing)",
					n+2, header[i], MissingLabel)
			}
			if cell != MissingLabel {
				domains[i][cell] = true
			}
		}
	}
	attrs := make([]Attribute, len(header))
	for i, name := range header {
		var vals []string
		for v := range domains[i] {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		if len(vals) == 0 {
			return nil, fmt.Errorf("relation: column %q has no known values", name)
		}
		attrs[i] = Attribute{Name: name, Domain: vals}
	}
	schema, err := NewSchema(attrs)
	if err != nil {
		return nil, err
	}

	rel := NewRelation(schema)
	for n, row := range rows {
		t := NewTuple(len(header))
		for i, cell := range row {
			if cell == MissingLabel {
				continue
			}
			code, err := schema.ValueCode(i, cell)
			if err != nil {
				return nil, fmt.Errorf("relation: row %d: %w", n+2, err)
			}
			t[i] = code
		}
		if err := rel.Append(t); err != nil {
			return nil, fmt.Errorf("relation: row %d: %w", n+2, err)
		}
	}
	return rel, nil
}

// ReadCSVInSchema parses a relation from CSV against a fixed schema
// instead of inferring domains from the data. The header must name the
// schema's attributes in schema order, and every non-"?" cell must be a
// label from its attribute's domain. This is the serving-side reader:
// inference-time data rarely exercises every domain value, so re-inferring
// domains would silently re-code values; pinning the schema keeps value
// codes aligned with the model the relation will be derived under.
func ReadCSVInSchema(r io.Reader, s *Schema) (*Relation, error) {
	if s == nil {
		return nil, fmt.Errorf("relation: nil schema")
	}
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	cr.FieldsPerRecord = s.NumAttrs()
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading csv header: %w", err)
	}
	for i, name := range header {
		if name != s.Attrs[i].Name {
			return nil, fmt.Errorf("relation: header column %d is %q, schema expects %q",
				i+1, name, s.Attrs[i].Name)
		}
	}
	// Per-column label -> code maps make parsing O(1) per cell.
	codes := make([]map[string]int, s.NumAttrs())
	for i, a := range s.Attrs {
		codes[i] = make(map[string]int, len(a.Domain))
		for v, label := range a.Domain {
			codes[i][label] = v
		}
	}
	rel := NewRelation(s)
	for n := 2; ; n++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: reading csv row %d: %w", n, err)
		}
		t := NewTuple(s.NumAttrs())
		for i, cell := range row {
			if cell == MissingLabel {
				continue
			}
			code, ok := codes[i][cell]
			if !ok {
				return nil, fmt.Errorf("relation: row %d: %q is not in the domain of %q",
					n, cell, s.Attrs[i].Name)
			}
			t[i] = code
		}
		if err := rel.Append(t); err != nil {
			return nil, fmt.Errorf("relation: row %d: %w", n, err)
		}
	}
	return rel, nil
}

// WriteCSV writes the relation as CSV with a header row; missing values are
// written as "?".
func WriteCSV(w io.Writer, r *Relation) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Schema.SortedAttrNames()); err != nil {
		return fmt.Errorf("relation: writing csv header: %w", err)
	}
	row := make([]string, r.Schema.NumAttrs())
	for _, t := range r.Tuples {
		for i, v := range t {
			if v == Missing {
				row[i] = MissingLabel
			} else {
				row[i] = r.Schema.Attrs[i].Domain[v]
			}
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("relation: writing csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
