package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
)

// MissingLabel is the textual rendering of a missing value in CSV files,
// matching the paper's "?" notation.
const MissingLabel = "?"

// ReadCSV parses a relation from CSV. The first record is the header naming
// the attributes. Domains are inferred from the data: each attribute's
// domain is the sorted set of distinct non-"?" labels seen in its column.
func ReadCSV(r io.Reader) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("relation: reading csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("relation: csv has no header")
	}
	header := records[0]
	rows := records[1:]

	// Infer per-column domains.
	domains := make([]map[string]bool, len(header))
	for i := range domains {
		domains[i] = make(map[string]bool)
	}
	for n, row := range rows {
		if len(row) != len(header) {
			return nil, fmt.Errorf("relation: row %d has %d fields, want %d", n+2, len(row), len(header))
		}
		for i, cell := range row {
			if cell == "" {
				// Empty labels cannot round-trip through CSV (a row of
				// empty fields reads back as a blank line); require the
				// explicit missing marker instead.
				return nil, fmt.Errorf("relation: row %d column %q is empty (use %q for missing)",
					n+2, header[i], MissingLabel)
			}
			if cell != MissingLabel {
				domains[i][cell] = true
			}
		}
	}
	attrs := make([]Attribute, len(header))
	for i, name := range header {
		var vals []string
		for v := range domains[i] {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		if len(vals) == 0 {
			return nil, fmt.Errorf("relation: column %q has no known values", name)
		}
		attrs[i] = Attribute{Name: name, Domain: vals}
	}
	schema, err := NewSchema(attrs)
	if err != nil {
		return nil, err
	}

	rel := NewRelation(schema)
	for n, row := range rows {
		t := NewTuple(len(header))
		for i, cell := range row {
			if cell == MissingLabel {
				continue
			}
			code, err := schema.ValueCode(i, cell)
			if err != nil {
				return nil, fmt.Errorf("relation: row %d: %w", n+2, err)
			}
			t[i] = code
		}
		if err := rel.Append(t); err != nil {
			return nil, fmt.Errorf("relation: row %d: %w", n+2, err)
		}
	}
	return rel, nil
}

// WriteCSV writes the relation as CSV with a header row; missing values are
// written as "?".
func WriteCSV(w io.Writer, r *Relation) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Schema.SortedAttrNames()); err != nil {
		return fmt.Errorf("relation: writing csv header: %w", err)
	}
	row := make([]string, r.Schema.NumAttrs())
	for _, t := range r.Tuples {
		for i, v := range t {
			if v == Missing {
				row[i] = MissingLabel
			} else {
				row[i] = r.Schema.Attrs[i].Domain[v]
			}
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("relation: writing csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
