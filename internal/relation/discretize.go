package relation

import (
	"fmt"
	"math"
	"sort"
	"strconv"
)

// The paper limits its model to discrete finite-valued attributes and
// proposes "to break up the domains of continuous attributes into
// sub-ranges, treating each sub-range as a discrete value" (Section II).
// This file implements that preprocessing: equal-width and equal-frequency
// (quantile) bucketing of numeric columns, with human-readable range
// labels, plus a whole-table discretizer for mixed string/numeric CSV
// input.

// BucketStrategy selects how a continuous domain is split into sub-ranges.
type BucketStrategy int

const (
	// EqualWidth splits [min, max] into buckets of equal width.
	EqualWidth BucketStrategy = iota
	// EqualFrequency (quantile) buckets hold approximately equal numbers
	// of observed values.
	EqualFrequency
)

// String names the strategy.
func (s BucketStrategy) String() string {
	switch s {
	case EqualWidth:
		return "equal-width"
	case EqualFrequency:
		return "equal-frequency"
	default:
		return fmt.Sprintf("BucketStrategy(%d)", int(s))
	}
}

// Discretizer maps continuous values of one attribute into bucket codes.
type Discretizer struct {
	// Strategy is the bucketing rule used.
	Strategy BucketStrategy
	// Bounds are the interior cut points, ascending: value v falls in
	// bucket i where Bounds[i-1] <= v < Bounds[i] (bucket 0 has no lower
	// bound, the last bucket no upper bound).
	Bounds []float64
	// Labels are the rendered bucket names, e.g. "[20.0,35.5)".
	Labels []string
}

// NewDiscretizer fits a discretizer over observed values. Missing values
// are represented by NaN and ignored during fitting. buckets must be at
// least 2; fewer distinct values than buckets reduces the bucket count.
func NewDiscretizer(values []float64, buckets int, strategy BucketStrategy) (*Discretizer, error) {
	if buckets < 2 {
		return nil, fmt.Errorf("relation: need at least 2 buckets, got %d", buckets)
	}
	var obs []float64
	for _, v := range values {
		if !math.IsNaN(v) {
			obs = append(obs, v)
		}
	}
	if len(obs) == 0 {
		return nil, fmt.Errorf("relation: no observed values to discretize")
	}
	sort.Float64s(obs)
	lo, hi := obs[0], obs[len(obs)-1]
	if lo == hi {
		return nil, fmt.Errorf("relation: all observed values equal (%v); nothing to bucket", lo)
	}

	var bounds []float64
	switch strategy {
	case EqualWidth:
		width := (hi - lo) / float64(buckets)
		for i := 1; i < buckets; i++ {
			bounds = append(bounds, lo+width*float64(i))
		}
	case EqualFrequency:
		for i := 1; i < buckets; i++ {
			q := float64(i) / float64(buckets)
			idx := int(q * float64(len(obs)-1))
			b := obs[idx]
			// Skip duplicate cut points caused by repeated values.
			if len(bounds) == 0 || b > bounds[len(bounds)-1] {
				bounds = append(bounds, b)
			}
		}
	default:
		return nil, fmt.Errorf("relation: unknown bucket strategy %v", strategy)
	}
	if len(bounds) == 0 {
		return nil, fmt.Errorf("relation: could not derive any cut points")
	}
	d := &Discretizer{Strategy: strategy, Bounds: bounds}
	d.Labels = make([]string, len(bounds)+1)
	for i := range d.Labels {
		switch {
		case i == 0:
			d.Labels[i] = fmt.Sprintf("(-inf,%s)", trimNum(bounds[0]))
		case i == len(bounds):
			d.Labels[i] = fmt.Sprintf("[%s,+inf)", trimNum(bounds[i-1]))
		default:
			d.Labels[i] = fmt.Sprintf("[%s,%s)", trimNum(bounds[i-1]), trimNum(bounds[i]))
		}
	}
	return d, nil
}

func trimNum(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// NumBuckets returns the number of buckets.
func (d *Discretizer) NumBuckets() int { return len(d.Bounds) + 1 }

// Code maps a continuous value to its bucket code; NaN maps to Missing.
func (d *Discretizer) Code(v float64) int {
	if math.IsNaN(v) {
		return Missing
	}
	// Binary search for the first bound greater than v.
	i := sort.SearchFloat64s(d.Bounds, v)
	if i < len(d.Bounds) && d.Bounds[i] == v {
		i++ // half-open intervals: v equal to a bound joins the upper bucket
	}
	return i
}

// Attribute renders the discretizer as a relation attribute.
func (d *Discretizer) Attribute(name string) Attribute {
	return Attribute{Name: name, Domain: append([]string(nil), d.Labels...)}
}

// ColumnKind classifies a raw column for DiscretizeTable.
type ColumnKind int

const (
	// Categorical columns keep their string labels.
	Categorical ColumnKind = iota
	// Numeric columns are parsed as floats and bucketed.
	Numeric
)

// RawTable is string-typed tabular input with "?" for missing cells, prior
// to discretization.
type RawTable struct {
	Names []string
	Rows  [][]string
}

// DiscretizeTable converts a raw table into a relation: numeric columns
// (every non-missing cell parses as a float) are bucketed with the given
// strategy and bucket count; other columns become categorical attributes
// with sorted distinct domains.
func DiscretizeTable(raw RawTable, buckets int, strategy BucketStrategy) (*Relation, []ColumnKind, error) {
	nCols := len(raw.Names)
	if nCols == 0 {
		return nil, nil, fmt.Errorf("relation: raw table has no columns")
	}
	for r, row := range raw.Rows {
		if len(row) != nCols {
			return nil, nil, fmt.Errorf("relation: row %d has %d cells, want %d", r, len(row), nCols)
		}
	}

	kinds := make([]ColumnKind, nCols)
	numeric := make([][]float64, nCols)
	for c := 0; c < nCols; c++ {
		kinds[c] = Numeric
		vals := make([]float64, len(raw.Rows))
		seen := false
		for r, row := range raw.Rows {
			cell := row[c]
			if cell == MissingLabel {
				vals[r] = math.NaN()
				continue
			}
			f, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				kinds[c] = Categorical
				break
			}
			vals[r] = f
			seen = true
		}
		if kinds[c] == Numeric && !seen {
			kinds[c] = Categorical
		}
		if kinds[c] == Numeric {
			numeric[c] = vals
		}
	}

	attrs := make([]Attribute, nCols)
	discs := make([]*Discretizer, nCols)
	for c := 0; c < nCols; c++ {
		if kinds[c] == Numeric {
			d, err := NewDiscretizer(numeric[c], buckets, strategy)
			if err != nil {
				// Degenerate numeric column (e.g. constant): treat as
				// categorical instead of failing the whole table.
				kinds[c] = Categorical
				numeric[c] = nil
			} else {
				discs[c] = d
				attrs[c] = d.Attribute(raw.Names[c])
				continue
			}
		}
		dom := map[string]bool{}
		for _, row := range raw.Rows {
			if row[c] != MissingLabel {
				dom[row[c]] = true
			}
		}
		var labels []string
		for v := range dom {
			labels = append(labels, v)
		}
		sort.Strings(labels)
		if len(labels) == 0 {
			return nil, nil, fmt.Errorf("relation: column %q has no known values", raw.Names[c])
		}
		attrs[c] = Attribute{Name: raw.Names[c], Domain: labels}
	}

	schema, err := NewSchema(attrs)
	if err != nil {
		return nil, nil, err
	}
	rel := NewRelation(schema)
	for r, row := range raw.Rows {
		tu := NewTuple(nCols)
		for c, cell := range row {
			if cell == MissingLabel {
				continue
			}
			if discs[c] != nil {
				tu[c] = discs[c].Code(numeric[c][r])
				continue
			}
			code, err := schema.ValueCode(c, cell)
			if err != nil {
				return nil, nil, fmt.Errorf("relation: row %d: %w", r, err)
			}
			tu[c] = code
		}
		if err := rel.Append(tu); err != nil {
			return nil, nil, fmt.Errorf("relation: row %d: %w", r, err)
		}
	}
	return rel, kinds, nil
}
