package relation

import (
	"strings"
	"testing"
)

func TestSchemaDiff(t *testing.T) {
	base := MatchmakingSchema()
	if d := base.Diff(MatchmakingSchema()); d != "" {
		t.Errorf("identical schemas diff: %q", d)
	}
	if !base.Equal(MatchmakingSchema()) {
		t.Error("identical schemas are not Equal")
	}
	cases := []struct {
		name  string
		mutie func() *Schema
		want  string
	}{
		{"nil", func() *Schema { return nil }, "nil"},
		{"fewer attributes", func() *Schema {
			return MustSchema(base.Attrs[:2])
		}, "attributes"},
		{"renamed attribute", func() *Schema {
			attrs := append([]Attribute(nil), base.Attrs...)
			attrs[0] = Attribute{Name: "years", Domain: attrs[0].Domain}
			return MustSchema(attrs)
		}, `attribute 0`},
		{"reordered domain", func() *Schema {
			attrs := append([]Attribute(nil), base.Attrs...)
			attrs[1] = Attribute{Name: attrs[1].Name, Domain: []string{"BS", "HS", "MS"}}
			return MustSchema(attrs)
		}, `attribute "edu"`},
		{"extra domain value", func() *Schema {
			attrs := append([]Attribute(nil), base.Attrs...)
			attrs[2] = Attribute{Name: attrs[2].Name, Domain: append([]string{"25K"}, attrs[2].Domain...)}
			return MustSchema(attrs)
		}, `attribute "inc"`},
	}
	for _, tc := range cases {
		o := tc.mutie()
		d := base.Diff(o)
		if d == "" || !strings.Contains(d, tc.want) {
			t.Errorf("%s: diff = %q, want mention of %q", tc.name, d, tc.want)
		}
		if o != nil && o.Equal(base) {
			t.Errorf("%s: schemas should not be Equal", tc.name)
		}
	}
}

func TestReadCSVInSchema(t *testing.T) {
	s := MatchmakingSchema()
	rel, err := ReadCSVInSchema(strings.NewReader("age,edu,inc,nw\n20,HS,?,?\n40,MS,100K,500K\n"), s)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Schema != s {
		t.Error("relation does not carry the pinned schema")
	}
	if rel.Len() != 2 || rel.Tuples[0].NumMissing() != 2 || !rel.Tuples[1].IsComplete() {
		t.Errorf("parsed %v", rel.Tuples)
	}
	// Codes index the model domains, not re-inferred ones: HS is code 0 in
	// the hand-built schema even though sorting would put BS first.
	if rel.Tuples[0][1] != 0 {
		t.Errorf("edu=HS parsed to code %d, want 0 (pinned domain order)", rel.Tuples[0][1])
	}

	fail := func(name, body, want string) {
		t.Helper()
		if _, err := ReadCSVInSchema(strings.NewReader(body), s); err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("%s: err = %v, want mention of %q", name, err, want)
		}
	}
	fail("wrong header", "years,edu,inc,nw\n", "years")
	fail("unknown label", "age,edu,inc,nw\n25,HS,50K,100K\n", `"25"`)
	fail("short row", "age,edu,inc,nw\n20,HS\n", "row")
	if _, err := ReadCSVInSchema(strings.NewReader(""), s); err == nil {
		t.Error("empty input should fail (no header)")
	}
	if _, err := ReadCSVInSchema(strings.NewReader("age,edu,inc,nw\n"), nil); err == nil {
		t.Error("nil schema should fail")
	}

	// A subset of the domains still parses — the serving case ReadCSV
	// would get wrong by re-inferring smaller domains.
	sub, err := ReadCSVInSchema(strings.NewReader("age,edu,inc,nw\n20,BS,50K,100K\n"), s)
	if err != nil {
		t.Fatal(err)
	}
	if got := sub.Tuples[0][1]; got != 1 {
		t.Errorf("edu=BS parsed to code %d, want 1", got)
	}
}
