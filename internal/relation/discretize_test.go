package relation

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewDiscretizerValidation(t *testing.T) {
	if _, err := NewDiscretizer([]float64{1, 2}, 1, EqualWidth); err == nil {
		t.Error("1 bucket should fail")
	}
	if _, err := NewDiscretizer(nil, 2, EqualWidth); err == nil {
		t.Error("no values should fail")
	}
	if _, err := NewDiscretizer([]float64{math.NaN()}, 2, EqualWidth); err == nil {
		t.Error("all-missing should fail")
	}
	if _, err := NewDiscretizer([]float64{3, 3, 3}, 2, EqualWidth); err == nil {
		t.Error("constant column should fail")
	}
	if _, err := NewDiscretizer([]float64{1, 2}, 2, BucketStrategy(9)); err == nil {
		t.Error("unknown strategy should fail")
	}
}

func TestEqualWidthBounds(t *testing.T) {
	d, err := NewDiscretizer([]float64{0, 10}, 4, EqualWidth)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2.5, 5, 7.5}
	if len(d.Bounds) != 3 {
		t.Fatalf("bounds = %v", d.Bounds)
	}
	for i := range want {
		if math.Abs(d.Bounds[i]-want[i]) > 1e-12 {
			t.Errorf("bound %d = %v, want %v", i, d.Bounds[i], want[i])
		}
	}
	if d.NumBuckets() != 4 {
		t.Errorf("buckets = %d, want 4", d.NumBuckets())
	}
}

func TestCodeHalfOpenIntervals(t *testing.T) {
	d, err := NewDiscretizer([]float64{0, 10}, 2, EqualWidth) // bound at 5
	if err != nil {
		t.Fatal(err)
	}
	cases := map[float64]int{
		-100: 0, 0: 0, 4.999: 0,
		5: 1, 7: 1, 10: 1, 1e9: 1,
	}
	for v, want := range cases {
		if got := d.Code(v); got != want {
			t.Errorf("Code(%v) = %d, want %d", v, got, want)
		}
	}
	if got := d.Code(math.NaN()); got != Missing {
		t.Errorf("Code(NaN) = %d, want Missing", got)
	}
}

func TestEqualFrequencyBalances(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Skewed data: equal-width would crowd one bucket.
	vals := make([]float64, 1000)
	for i := range vals {
		v := rng.ExpFloat64()
		vals[i] = v
	}
	d, err := NewDiscretizer(vals, 4, EqualFrequency)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, d.NumBuckets())
	for _, v := range vals {
		counts[d.Code(v)]++
	}
	for b, c := range counts {
		if c < 150 || c > 350 {
			t.Errorf("bucket %d holds %d of 1000; want roughly balanced", b, c)
		}
	}
}

func TestEqualFrequencyDuplicateHeavy(t *testing.T) {
	// Half the mass is a single repeated value; duplicate cut points must
	// collapse rather than produce empty buckets.
	vals := []float64{1, 1, 1, 1, 1, 1, 2, 3, 4, 5}
	d, err := NewDiscretizer(vals, 5, EqualFrequency)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumBuckets() > 5 || d.NumBuckets() < 2 {
		t.Errorf("buckets = %d", d.NumBuckets())
	}
	for i := 1; i < len(d.Bounds); i++ {
		if d.Bounds[i] <= d.Bounds[i-1] {
			t.Errorf("bounds not strictly increasing: %v", d.Bounds)
		}
	}
}

func TestDiscretizerAttribute(t *testing.T) {
	d, err := NewDiscretizer([]float64{0, 10}, 2, EqualWidth)
	if err != nil {
		t.Fatal(err)
	}
	a := d.Attribute("temp")
	if a.Name != "temp" || a.Card() != 2 {
		t.Errorf("attribute = %+v", a)
	}
	if a.Domain[0] != "(-inf,5)" || a.Domain[1] != "[5,+inf)" {
		t.Errorf("labels = %v", a.Domain)
	}
}

func TestStrategyString(t *testing.T) {
	if EqualWidth.String() != "equal-width" || EqualFrequency.String() != "equal-frequency" {
		t.Error("strategy names wrong")
	}
	if BucketStrategy(7).String() == "" {
		t.Error("unknown strategy should still render")
	}
}

func TestDiscretizeTableMixed(t *testing.T) {
	raw := RawTable{
		Names: []string{"city", "age", "score"},
		Rows: [][]string{
			{"nyc", "23", "1.5"},
			{"sfo", "31", "2.5"},
			{"nyc", "47", "?"},
			{"?", "52", "9.0"},
			{"chi", "29", "4.0"},
			{"nyc", "35", "6.5"},
		},
	}
	rel, kinds, err := DiscretizeTable(raw, 2, EqualWidth)
	if err != nil {
		t.Fatal(err)
	}
	if kinds[0] != Categorical || kinds[1] != Numeric || kinds[2] != Numeric {
		t.Errorf("kinds = %v", kinds)
	}
	if rel.Len() != 6 {
		t.Fatalf("rows = %d", rel.Len())
	}
	// city domain: chi, nyc, sfo sorted.
	if rel.Schema.Attrs[0].Card() != 3 || rel.Schema.Attrs[0].Domain[0] != "chi" {
		t.Errorf("city attr = %+v", rel.Schema.Attrs[0])
	}
	// age range [23, 52], bound 37.5: 23->0, 47->1, 52->1.
	if rel.Tuples[0][1] != 0 || rel.Tuples[2][1] != 1 || rel.Tuples[3][1] != 1 {
		t.Errorf("age codes = %v %v %v", rel.Tuples[0][1], rel.Tuples[2][1], rel.Tuples[3][1])
	}
	// Missing cells survive.
	if rel.Tuples[2][2] != Missing || rel.Tuples[3][0] != Missing {
		t.Error("missing cells lost")
	}
}

func TestDiscretizeTableConstantNumericFallsBackToCategorical(t *testing.T) {
	raw := RawTable{
		Names: []string{"x", "const"},
		Rows: [][]string{
			{"a", "7"},
			{"b", "7"},
			{"a", "7"},
		},
	}
	rel, kinds, err := DiscretizeTable(raw, 2, EqualWidth)
	if err != nil {
		t.Fatal(err)
	}
	if kinds[1] != Categorical {
		t.Errorf("constant column kind = %v, want Categorical", kinds[1])
	}
	if rel.Schema.Attrs[1].Card() != 1 {
		t.Errorf("constant column card = %d", rel.Schema.Attrs[1].Card())
	}
}

func TestDiscretizeTableErrors(t *testing.T) {
	if _, _, err := DiscretizeTable(RawTable{}, 2, EqualWidth); err == nil {
		t.Error("no columns should fail")
	}
	ragged := RawTable{Names: []string{"a", "b"}, Rows: [][]string{{"1"}}}
	if _, _, err := DiscretizeTable(ragged, 2, EqualWidth); err == nil {
		t.Error("ragged rows should fail")
	}
	allMissing := RawTable{Names: []string{"a"}, Rows: [][]string{{"?"}, {"?"}}}
	if _, _, err := DiscretizeTable(allMissing, 2, EqualWidth); err == nil {
		t.Error("all-missing column should fail")
	}
}

// TestDiscretizeTableEndToEndLearnable: bucketed continuous data feeds the
// normal pipeline.
func TestDiscretizeTableEndToEndLearnable(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	raw := RawTable{Names: []string{"x", "y"}}
	for i := 0; i < 400; i++ {
		x := rng.NormFloat64()
		y := x + 0.3*rng.NormFloat64() // correlated
		raw.Rows = append(raw.Rows, []string{trimNum(x), trimNum(y)})
	}
	rel, _, err := DiscretizeTable(raw, 3, EqualFrequency)
	if err != nil {
		t.Fatal(err)
	}
	rc, _ := rel.Split()
	if rc.Len() != 400 {
		t.Fatalf("complete rows = %d", rc.Len())
	}
	// The correlation must survive bucketing: matching buckets co-occur
	// far above the 1/9 independence rate.
	same := 0
	for _, tu := range rc.Tuples {
		if tu[0] == tu[1] {
			same++
		}
	}
	if frac := float64(same) / 400; frac < 0.5 {
		t.Errorf("bucket agreement %.2f; correlation lost in discretization", frac)
	}
}

// TestQuickDiscretizerProperties: codes are always in range and monotone
// in the input value, for random data and both strategies.
func TestQuickDiscretizerProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for trial := 0; trial < 200; trial++ {
		n := 20 + rng.Intn(200)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 100
		}
		buckets := 2 + rng.Intn(6)
		strategy := EqualWidth
		if trial%2 == 1 {
			strategy = EqualFrequency
		}
		d, err := NewDiscretizer(vals, buckets, strategy)
		if err != nil {
			continue // degenerate sample (all equal): rejected by design
		}
		prevCode := -1
		for _, q := range []float64{-1e6, -50, 0, 50, 1e6} {
			c := d.Code(q)
			if c < 0 || c >= d.NumBuckets() {
				t.Fatalf("code %d out of range", c)
			}
			if c < prevCode {
				t.Fatalf("codes not monotone: %d after %d", c, prevCode)
			}
			prevCode = c
		}
	}
}
