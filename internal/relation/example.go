package relation

// MatchmakingSchema returns the schema of the paper's running example
// (Figure 1): a matchmaking site's profile relation with four non-key
// attributes over discrete domains.
func MatchmakingSchema() *Schema {
	return MustSchema([]Attribute{
		{Name: "age", Domain: []string{"20", "30", "40"}},
		{Name: "edu", Domain: []string{"HS", "BS", "MS"}},
		{Name: "inc", Domain: []string{"50K", "100K"}},
		{Name: "nw", Domain: []string{"100K", "500K"}},
	})
}

// Matchmaking returns the 17-tuple incomplete relation R of Figure 1 in the
// paper. Tuples t1..t17 appear in paper order; missing values are Missing.
func Matchmaking() *Relation {
	s := MatchmakingSchema()
	m := Missing
	rows := []Tuple{
		{0, 0, m, m}, // t1:  20 HS ?    ?
		{0, 1, 0, 0}, // t2:  20 BS 50K  100K
		{0, m, 0, m}, // t3:  20 ?  50K  ?
		{0, 0, 1, 1}, // t4:  20 HS 100K 500K
		{0, m, m, m}, // t5:  20 ?  ?    ?
		{0, 0, 0, 0}, // t6:  20 HS 50K  100K
		{0, 0, 0, 1}, // t7:  20 HS 50K  500K
		{m, 0, m, m}, // t8:  ?  HS ?    ?
		{1, 1, 1, 0}, // t9:  30 BS 100K 100K
		{1, m, 1, m}, // t10: 30 ?  100K ?
		{1, 0, m, m}, // t11: 30 HS ?    ?
		{1, 2, m, m}, // t12: 30 MS ?    ?
		{2, 1, 1, 0}, // t13: 40 BS 100K 100K
		{2, 0, m, m}, // t14: 40 HS ?    ?
		{2, 1, 0, 1}, // t15: 40 BS 50K  500K
		{2, 0, m, 1}, // t16: 40 HS ?    500K
		{2, 0, 1, 1}, // t17: 40 HS 100K 500K
	}
	r := NewRelation(s)
	for i, t := range rows {
		if err := r.Append(t); err != nil {
			panic("relation: bad matchmaking fixture row " + string(rune('0'+i)) + ": " + err.Error())
		}
	}
	return r
}
