package gibbs

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/relation"
)

// TestParallelDeterministicAcrossWorkerCounts: identical results for 1, 2
// and 8 workers, because every tuple's chain has its own derived seed.
func TestParallelDeterministicAcrossWorkerCounts(t *testing.T) {
	m, inst, rng := learnBN(t, "BN9", 3000, 71)
	workload := workloadFromInstance(inst, rng, 60, 3)
	run := func(workers int) *Result {
		s, err := New(m, Config{Samples: 120, BurnIn: 20, Method: bestAveraged(), Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.ParallelTupleAtATime(workload, workers)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(1)
	for _, workers := range []int{2, 8} {
		b := run(workers)
		if len(a.Tuples) != len(b.Tuples) {
			t.Fatalf("workers=%d: tuple counts differ: %d vs %d", workers, len(a.Tuples), len(b.Tuples))
		}
		for i := range a.Dists {
			for k := range a.Dists[i].P {
				if a.Dists[i].P[k] != b.Dists[i].P[k] {
					t.Fatalf("workers=%d: tuple %d outcome %d differs across worker counts", workers, i, k)
				}
			}
		}
		if a.PointsSampled != b.PointsSampled {
			t.Errorf("workers=%d: points differ: %d vs %d", workers, a.PointsSampled, b.PointsSampled)
		}
	}
}

// TestParallelMatchesSerialAccuracy: the parallel runner's estimates agree
// with serial tuple-at-a-time within sampling noise.
func TestParallelMatchesSerialAccuracy(t *testing.T) {
	m, inst, rng := learnBN(t, "BN8", 10000, 72)
	workload := workloadFromInstance(inst, rng, 20, 2)
	serial, err := New(m, Config{Samples: 2000, BurnIn: 100, Method: bestAveraged(), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sres, err := serial.TupleAtATime(workload)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := New(m, Config{Samples: 2000, BurnIn: 100, Method: bestAveraged(), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	pres, err := parallel.ParallelTupleAtATime(workload, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sres.Dists {
		l1, err := dist.L1(sres.Dists[i].P, pres.Dists[i].P)
		if err != nil {
			t.Fatal(err)
		}
		if l1 > 0.2 {
			t.Errorf("tuple %d: serial and parallel estimates differ by L1=%v", i, l1)
		}
	}
	if pres.PointsSampled != sres.PointsSampled {
		t.Errorf("points: parallel %d vs serial %d", pres.PointsSampled, sres.PointsSampled)
	}
}

// TestParallelSeedsByContent: a tuple's parallel-chain estimate does not
// depend on which other tuples share the workload (chains are seeded by
// tuple content, not workload position), so caches of past estimates
// remain valid as workloads grow.
func TestParallelSeedsByContent(t *testing.T) {
	m, inst, rng := learnBN(t, "BN8", 2000, 74)
	workload := workloadFromInstance(inst, rng, 8, 2)
	target := workload[len(workload)-1]
	run := func(wl []relation.Tuple) *dist.Joint {
		s, err := New(m, Config{Samples: 100, BurnIn: 10, Method: bestAveraged(), Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.ParallelTupleAtATime(wl, 2)
		if err != nil {
			t.Fatal(err)
		}
		for i, tu := range res.Tuples {
			if tu.Key() == target.Key() {
				return res.Dists[i]
			}
		}
		t.Fatalf("target tuple missing from result")
		return nil
	}
	alone := run([]relation.Tuple{target})
	together := run(workload)
	for k := range alone.P {
		if alone.P[k] != together.P[k] {
			t.Fatalf("outcome %d differs when the workload changes: %v vs %v",
				k, alone.P[k], together.P[k])
		}
	}
}

func TestParallelRejectsEmptyWorkload(t *testing.T) {
	m, _, _ := learnBN(t, "BN8", 500, 73)
	s, err := New(m, Config{Samples: 10, Method: bestAveraged()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ParallelTupleAtATime(nil, 4); err == nil {
		t.Error("empty workload should fail")
	}
}

func TestTupleSeedSpread(t *testing.T) {
	seen := make(map[int64]bool)
	tu := make(relation.Tuple, 3)
	for a := 0; a < 20; a++ {
		for b := 0; b < 25; b++ {
			for c := 0; c < 20; c++ {
				tu[0], tu[1], tu[2] = a, b, c
				s := tupleSeed(42, tu)
				if s < 0 {
					t.Fatalf("negative seed %d for %v", s, tu)
				}
				if seen[s] {
					t.Fatalf("seed collision at %v", tu)
				}
				seen[s] = true
			}
		}
	}
}
