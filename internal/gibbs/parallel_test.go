package gibbs

import (
	"testing"

	"repro/internal/dist"
)

// TestParallelDeterministicAcrossWorkerCounts: identical results for 1 and
// 8 workers, because every tuple's chain has its own derived seed.
func TestParallelDeterministicAcrossWorkerCounts(t *testing.T) {
	m, inst, rng := learnBN(t, "BN9", 3000, 71)
	workload := workloadFromInstance(inst, rng, 60, 3)
	run := func(workers int) *Result {
		s, err := New(m, Config{Samples: 120, BurnIn: 20, Method: bestAveraged(), Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.ParallelTupleAtATime(workload, workers)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	if len(a.Tuples) != len(b.Tuples) {
		t.Fatalf("tuple counts differ: %d vs %d", len(a.Tuples), len(b.Tuples))
	}
	for i := range a.Dists {
		for k := range a.Dists[i].P {
			if a.Dists[i].P[k] != b.Dists[i].P[k] {
				t.Fatalf("tuple %d outcome %d differs across worker counts", i, k)
			}
		}
	}
	if a.PointsSampled != b.PointsSampled {
		t.Errorf("points differ: %d vs %d", a.PointsSampled, b.PointsSampled)
	}
}

// TestParallelMatchesSerialAccuracy: the parallel runner's estimates agree
// with serial tuple-at-a-time within sampling noise.
func TestParallelMatchesSerialAccuracy(t *testing.T) {
	m, inst, rng := learnBN(t, "BN8", 10000, 72)
	workload := workloadFromInstance(inst, rng, 20, 2)
	serial, err := New(m, Config{Samples: 2000, BurnIn: 100, Method: bestAveraged(), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sres, err := serial.TupleAtATime(workload)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := New(m, Config{Samples: 2000, BurnIn: 100, Method: bestAveraged(), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	pres, err := parallel.ParallelTupleAtATime(workload, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sres.Dists {
		l1, err := dist.L1(sres.Dists[i].P, pres.Dists[i].P)
		if err != nil {
			t.Fatal(err)
		}
		if l1 > 0.2 {
			t.Errorf("tuple %d: serial and parallel estimates differ by L1=%v", i, l1)
		}
	}
	if pres.PointsSampled != sres.PointsSampled {
		t.Errorf("points: parallel %d vs serial %d", pres.PointsSampled, sres.PointsSampled)
	}
}

func TestParallelRejectsEmptyWorkload(t *testing.T) {
	m, _, _ := learnBN(t, "BN8", 500, 73)
	s, err := New(m, Config{Samples: 10, Method: bestAveraged()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ParallelTupleAtATime(nil, 4); err == nil {
		t.Error("empty workload should fail")
	}
}

func TestMixSeedSpread(t *testing.T) {
	seen := make(map[int64]bool)
	for i := 0; i < 10000; i++ {
		s := mixSeed(42, i)
		if s < 0 {
			t.Fatalf("negative seed %d", s)
		}
		if seen[s] {
			t.Fatalf("seed collision at %d", i)
		}
		seen[s] = true
	}
}
