package gibbs

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bn"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/relation"
	"repro/internal/vote"
)

func bestAveraged() vote.Method {
	return vote.Method{Choice: core.BestVoters, Scheme: vote.Averaged}
}

// learnBN trains an MRSL model on a forward-sampled dataset from the given
// catalog network.
func learnBN(t testing.TB, id string, trainSize int, seed int64) (*core.Model, *bn.Instance, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	top, err := bn.ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := bn.Instantiate(top, rng)
	if err != nil {
		t.Fatal(err)
	}
	train := inst.SampleRelation(rng, trainSize)
	m, err := core.Learn(train, core.Config{SupportThreshold: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	return m, inst, rng
}

func TestNewValidation(t *testing.T) {
	m, _, _ := learnBN(t, "BN8", 500, 1)
	if _, err := New(nil, Config{Samples: 10}); err == nil {
		t.Error("nil model should fail")
	}
	if _, err := New(m, Config{Samples: 0}); err == nil {
		t.Error("zero samples should fail")
	}
	s, err := New(m, Config{Samples: 10, Method: bestAveraged()})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.burnIn() != DefaultBurnIn {
		t.Errorf("default burn-in = %d, want %d", s.cfg.burnIn(), DefaultBurnIn)
	}
}

func TestInferTupleRejectsComplete(t *testing.T) {
	m, _, _ := learnBN(t, "BN8", 500, 2)
	s, err := New(m, Config{Samples: 10, Method: bestAveraged()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.InferTuple(relation.Tuple{0, 0, 0, 0}); err == nil {
		t.Error("complete tuple should fail")
	}
}

// TestSingleAttributeGibbsMatchesVoting: with one missing attribute the
// chain samples directly from the voted CPD, so the empirical distribution
// must converge to vote.Infer's estimate.
func TestSingleAttributeGibbsMatchesVoting(t *testing.T) {
	m, _, rng := learnBN(t, "BN8", 5000, 3)
	s, err := New(m, Config{Samples: 20000, BurnIn: 10, Method: bestAveraged(), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	tu := relation.Tuple{relation.Missing, 0, 1, 0}
	_ = rng
	j, err := s.InferTuple(tu)
	if err != nil {
		t.Fatal(err)
	}
	want, err := vote.Infer(m, tu, 0, bestAveraged())
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(j.P[i]-want[i]) > 0.02 {
			t.Errorf("P[%d] = %v, want %v +- 0.02", i, j.P[i], want[i])
		}
	}
}

// TestGibbsRecoversJointConditional: multi-attribute Gibbs estimates
// approach the generating network's exact conditional (the paper's central
// accuracy claim for Section V).
func TestGibbsRecoversJointConditional(t *testing.T) {
	m, inst, rng := learnBN(t, "BN8", 20000, 4)
	s, err := New(m, Config{Samples: 4000, BurnIn: 100, Method: bestAveraged(), Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	const trials = 20
	for i := 0; i < trials; i++ {
		tu := inst.Sample(rng)
		// Hide two attributes.
		perm := rng.Perm(4)
		tu[perm[0]] = relation.Missing
		tu[perm[1]] = relation.Missing
		got, err := s.InferTuple(tu)
		if err != nil {
			t.Fatal(err)
		}
		truth, err := inst.Conditional(tu)
		if err != nil {
			t.Fatal(err)
		}
		kl, err := dist.KLJoint(truth, got)
		if err != nil {
			t.Fatal(err)
		}
		total += kl
	}
	avg := total / trials
	// Paper (Fig. 10, BN8): KL well under 0.1 at 2000+ samples per tuple.
	if avg > 0.1 {
		t.Errorf("average joint KL = %v, want <= 0.1", avg)
	}
}

func TestSamplerDeterministicWithSeed(t *testing.T) {
	m, _, _ := learnBN(t, "BN8", 2000, 5)
	tu := relation.Tuple{relation.Missing, relation.Missing, 0, 1}
	run := func() *dist.Joint {
		s, err := New(m, Config{Samples: 500, BurnIn: 20, Method: bestAveraged(), Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		j, err := s.InferTuple(tu)
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	a, b := run(), run()
	for i := range a.P {
		if a.P[i] != b.P[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a.P[i], b.P[i])
		}
	}
}

func TestCPDCacheIsUsed(t *testing.T) {
	m, _, _ := learnBN(t, "BN8", 2000, 6)
	s, err := New(m, Config{Samples: 500, BurnIn: 20, Method: bestAveraged(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tu := relation.Tuple{relation.Missing, relation.Missing, 0, 1}
	if _, err := s.InferTuple(tu); err != nil {
		t.Fatal(err)
	}
	if s.CacheHits == 0 {
		t.Error("no cache hits on a finite state space")
	}
	// The reachable evidence-state count bounds cache misses: with 2
	// missing binary attributes, at most 2 states per attr resample.
	if s.CacheMisses > 8 {
		t.Errorf("cache misses = %d, want <= 8", s.CacheMisses)
	}
}

func TestPointsSampledAccounting(t *testing.T) {
	m, _, _ := learnBN(t, "BN8", 2000, 7)
	s, err := New(m, Config{Samples: 50, BurnIn: 10, Method: bestAveraged(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tu := relation.Tuple{relation.Missing, relation.Missing, 0, 1}
	if _, err := s.InferTuple(tu); err != nil {
		t.Fatal(err)
	}
	if s.PointsSampled != 60 {
		t.Errorf("PointsSampled = %d, want 60 (10 burn-in + 50 recorded)", s.PointsSampled)
	}
}

// TestBuildTupleDAGPaperExample reproduces Fig. 3: for the incomplete
// tuples {t1, t3, t5, t8, t11, t12} of Fig. 1, the roots are t5, t8, t12;
// t5 subsumes t1 and t3; t8 subsumes t1 and t11.
func TestBuildTupleDAGPaperExample(t *testing.T) {
	r := relation.Matchmaking()
	pick := func(i int) relation.Tuple { return r.Tuples[i-1] } // 1-based ids
	workload := []relation.Tuple{pick(1), pick(3), pick(5), pick(8), pick(11), pick(12)}
	dag, err := BuildTupleDAG(workload)
	if err != nil {
		t.Fatal(err)
	}
	// Order of distinct tuples follows the workload: t1 t3 t5 t8 t11 t12.
	idx := map[string]int{"t1": 0, "t3": 1, "t5": 2, "t8": 3, "t11": 4, "t12": 5}
	wantRoots := []int{idx["t5"], idx["t8"], idx["t12"]}
	if len(dag.Roots) != 3 {
		t.Fatalf("roots = %v, want %v", dag.Roots, wantRoots)
	}
	for i, w := range wantRoots {
		if dag.Roots[i] != w {
			t.Errorf("roots = %v, want %v", dag.Roots, wantRoots)
			break
		}
	}
	hasEdge := func(from, to int) bool {
		for _, s := range dag.Subsumees[from] {
			if s == to {
				return true
			}
		}
		return false
	}
	if !hasEdge(idx["t5"], idx["t1"]) || !hasEdge(idx["t5"], idx["t3"]) {
		t.Errorf("t5 should subsume t1 and t3: %v", dag.Subsumees[idx["t5"]])
	}
	if !hasEdge(idx["t8"], idx["t1"]) || !hasEdge(idx["t8"], idx["t11"]) {
		t.Errorf("t8 should subsume t1 and t11: %v", dag.Subsumees[idx["t8"]])
	}
	if len(dag.Subsumees[idx["t12"]]) != 0 {
		t.Errorf("t12 should subsume nothing: %v", dag.Subsumees[idx["t12"]])
	}
	if len(dag.Subsumers[idx["t1"]]) != 2 {
		t.Errorf("t1 should have two subsumers: %v", dag.Subsumers[idx["t1"]])
	}
}

func TestBuildTupleDAGRejectsBadWorkload(t *testing.T) {
	if _, err := BuildTupleDAG(nil); err == nil {
		t.Error("empty workload should fail")
	}
	if _, err := BuildTupleDAG([]relation.Tuple{{0, 0}}); err == nil {
		t.Error("complete tuple should fail")
	}
}

func TestBuildTupleDAGDeduplicates(t *testing.T) {
	m := relation.Missing
	a := relation.Tuple{0, m, 1}
	dag, err := BuildTupleDAG([]relation.Tuple{a, a.Clone(), a.Clone()})
	if err != nil {
		t.Fatal(err)
	}
	if len(dag.Tuples) != 1 {
		t.Errorf("distinct tuples = %d, want 1", len(dag.Tuples))
	}
}

// workloadFromInstance builds a workload of incomplete tuples by hiding
// 1..maxMissing random attributes in sampled points.
func workloadFromInstance(inst *bn.Instance, rng *rand.Rand, n, maxMissing int) []relation.Tuple {
	nAttrs := inst.Top.NumAttrs()
	out := make([]relation.Tuple, n)
	for i := range out {
		tu := inst.Sample(rng)
		k := 1 + rng.Intn(maxMissing)
		for _, a := range rng.Perm(nAttrs)[:k] {
			tu[a] = relation.Missing
		}
		out[i] = tu
	}
	return out
}

// TestTupleDAGFewerPointsThanTupleAtATime: the headline claim of Fig. 11 —
// the DAG optimization draws far fewer points on a workload with
// subsumption structure.
func TestTupleDAGFewerPointsThanTupleAtATime(t *testing.T) {
	m, inst, rng := learnBN(t, "BN8", 3000, 8)
	workload := workloadFromInstance(inst, rng, 150, 3)
	mk := func(seed int64) *Sampler {
		s, err := New(m, Config{Samples: 100, BurnIn: 20, Method: bestAveraged(), Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	sDag := mk(1)
	dagRes, err := sDag.TupleDAGRun(workload)
	if err != nil {
		t.Fatal(err)
	}
	sBase := mk(1)
	baseRes, err := sBase.TupleAtATime(workload)
	if err != nil {
		t.Fatal(err)
	}
	if len(dagRes.Tuples) != len(baseRes.Tuples) {
		t.Fatalf("result sizes differ: %d vs %d", len(dagRes.Tuples), len(baseRes.Tuples))
	}
	if dagRes.PointsSampled >= baseRes.PointsSampled {
		t.Errorf("tuple-DAG sampled %d points, baseline %d — no saving",
			dagRes.PointsSampled, baseRes.PointsSampled)
	}
}

// TestTupleDAGAccuracyMatchesBaseline: the paper found "no difference" in
// accuracy between tuple-DAG and tuple-at-a-time. We verify both strategies
// land close to the exact conditional on average.
func TestTupleDAGAccuracyMatchesBaseline(t *testing.T) {
	m, inst, rng := learnBN(t, "BN8", 20000, 9)
	workload := workloadFromInstance(inst, rng, 40, 2)
	avgKL := func(res *Result) float64 {
		var total float64
		for i, tu := range res.Tuples {
			truth, err := inst.Conditional(tu)
			if err != nil {
				t.Fatal(err)
			}
			kl, err := dist.KLJoint(truth, res.Dists[i])
			if err != nil {
				t.Fatal(err)
			}
			total += kl
		}
		return total / float64(len(res.Tuples))
	}
	sDag, err := New(m, Config{Samples: 2000, BurnIn: 100, Method: bestAveraged(), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	dagRes, err := sDag.TupleDAGRun(workload)
	if err != nil {
		t.Fatal(err)
	}
	sBase, err := New(m, Config{Samples: 2000, BurnIn: 100, Method: bestAveraged(), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := sBase.TupleAtATime(workload)
	if err != nil {
		t.Fatal(err)
	}
	klDag, klBase := avgKL(dagRes), avgKL(baseRes)
	if klDag > 0.15 || klBase > 0.15 {
		t.Errorf("KL too high: dag=%v base=%v", klDag, klBase)
	}
	if math.Abs(klDag-klBase) > 0.1 {
		t.Errorf("accuracy gap too large: dag=%v base=%v", klDag, klBase)
	}
}

// TestTupleDAGEveryTupleGetsEnoughSamples: each distinct tuple accumulates
// a valid, positive, normalized estimate.
func TestTupleDAGEveryTupleGetsValidEstimate(t *testing.T) {
	m, inst, rng := learnBN(t, "BN9", 3000, 10)
	workload := workloadFromInstance(inst, rng, 100, 4)
	s, err := New(m, Config{Samples: 100, BurnIn: 20, Method: bestAveraged(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.TupleDAGRun(workload)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range res.Dists {
		if j == nil {
			t.Fatalf("tuple %v got no estimate", res.Tuples[i])
		}
		if !j.P.IsNormalized(1e-9) || !j.P.IsPositive() {
			t.Errorf("tuple %v: invalid estimate", res.Tuples[i])
		}
		// Shape must match the tuple's missing attributes.
		missing := res.Tuples[i].MissingAttrs()
		if len(j.Attrs) != len(missing) {
			t.Errorf("tuple %v: estimate over %v", res.Tuples[i], j.Attrs)
		}
	}
}

// TestAllAtATimeMatchesTupleAtATime on a tiny workload with strong
// evidence overlap.
func TestAllAtATime(t *testing.T) {
	m, _, _ := learnBN(t, "BN8", 5000, 11)
	miss := relation.Missing
	workload := []relation.Tuple{
		{miss, miss, 0, 0},
		{miss, miss, miss, miss}, // t*: everything missing
	}
	s, err := New(m, Config{Samples: 400, BurnIn: 50, Method: bestAveraged(), Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.AllAtATime(workload, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 2 {
		t.Fatalf("results = %d, want 2", len(res.Tuples))
	}
	for i := range res.Dists {
		if !res.Dists[i].P.IsNormalized(1e-9) {
			t.Errorf("estimate %d not normalized", i)
		}
	}
	if res.PointsSampled <= 400 {
		t.Errorf("all-at-a-time should oversample: %d points", res.PointsSampled)
	}
}

func TestAllAtATimeCapReached(t *testing.T) {
	m, _, _ := learnBN(t, "BN8", 5000, 12)
	miss := relation.Missing
	// A single very specific tuple: most draws will not match.
	workload := []relation.Tuple{{miss, 0, 0, 0}}
	s, err := New(m, Config{Samples: 1000000, BurnIn: 10, Method: bestAveraged(), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.AllAtATime(workload, 200)
	if err != nil {
		// Acceptable: the cap may leave zero matching draws.
		return
	}
	if res.PointsSampled > 10+200 {
		t.Errorf("cap ignored: %d points", res.PointsSampled)
	}
}

func TestTupleAtATimeRejectsEmptyWorkload(t *testing.T) {
	m, _, _ := learnBN(t, "BN8", 500, 13)
	s, err := New(m, Config{Samples: 10, Method: bestAveraged()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.TupleAtATime(nil); err == nil {
		t.Error("empty workload should fail")
	}
	if _, err := s.TupleDAGRun(nil); err == nil {
		t.Error("empty workload should fail (DAG)")
	}
	if _, err := s.AllAtATime(nil, 0); err == nil {
		t.Error("empty workload should fail (all-at-a-time)")
	}
}

// TestDeepDAGChainPromotion exercises multi-level promotion: a chain of
// tuples t* ⊐ u ⊐ v must all complete.
func TestDeepDAGChainPromotion(t *testing.T) {
	m, _, _ := learnBN(t, "BN9", 2000, 14) // 6 attrs
	miss := relation.Missing
	workload := []relation.Tuple{
		{miss, miss, miss, miss, miss, miss}, // t*
		{0, miss, miss, miss, miss, miss},    // u ≺ t*
		{0, 0, miss, miss, miss, miss},       // v ≺ u ≺ t*
		{0, 0, 1, miss, miss, miss},          // w ≺ v
	}
	s, err := New(m, Config{Samples: 200, BurnIn: 20, Method: bestAveraged(), Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.TupleDAGRun(workload)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 4 {
		t.Fatalf("results = %d, want 4", len(res.Tuples))
	}
	for i, j := range res.Dists {
		if j == nil || !j.P.IsNormalized(1e-9) {
			t.Errorf("tuple %d lacks a valid estimate", i)
		}
	}
}
