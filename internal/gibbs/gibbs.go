// Package gibbs implements the paper's multi-attribute inference (Section
// V): ordered Gibbs sampling over the per-attribute MRSLs to estimate the
// joint distribution of several missing values, with three sampling
// strategies — tuple-at-a-time (one chain per incomplete tuple),
// all-at-a-time (one chain over the full space, rejection-filtered per
// tuple), and the workload-driven tuple-DAG optimization (Algorithm 3) that
// shares samples between tuples related by subsumption.
package gibbs

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/relation"
	"repro/internal/vote"
)

// DefaultBurnIn is the default number of discarded burn-in sweeps per
// chain. The paper estimates burn-in "using standard techniques"; its
// experiments sweep the recorded sample count while burn-in stays fixed.
const DefaultBurnIn = 100

// Config controls a sampling run.
type Config struct {
	// BurnIn is the number of initial sweeps discarded per chain (B in
	// Algorithm 3); <= 0 selects DefaultBurnIn.
	BurnIn int
	// Samples is the number of recorded points per tuple (N in
	// Algorithm 3). Must be positive.
	Samples int
	// Method is the voting method used to form each local CPD estimate.
	Method vote.Method
	// Seed seeds the sampler's deterministic RNG.
	Seed int64
	// Cache, when non-nil, is a shared memo of local CPD estimates used in
	// place of the sampler's private map, so concurrent chains (and the
	// single-missing vote path) reuse each other's work. Local CPDs are
	// value-deterministic, so sharing — and eviction from a bounded cache —
	// never changes sampler output.
	Cache *CPDCache
}

func (c Config) burnIn() int {
	if c.BurnIn <= 0 {
		return DefaultBurnIn
	}
	return c.BurnIn
}

func (c Config) validate() error {
	if c.Samples <= 0 {
		return fmt.Errorf("gibbs: Samples must be positive, got %d", c.Samples)
	}
	return nil
}

// Sampler runs ordered Gibbs chains over an MRSL model. It memoizes local
// CPD estimates across chains — the "caching of partial computations" the
// paper pairs with holistic workload inference — so repeated visits to the
// same evidence state cost one map probe. With Config.Cache set, the memo
// is the shared engine-level CPDCache instead of a sampler-private map;
// either way the cache-hit path performs no allocation (the key is built
// into a reused buffer and probed without a string copy).
type Sampler struct {
	model *core.Model
	cfg   Config
	rng   *rand.Rand

	// local is the sampler-private memo, keyed by AppendCPDKey bytes
	// (method + attribute + canonical evidence assignment). With a shared
	// cfg.Cache it acts as an unsynchronized first level in front of the
	// shared cache, so a chain's constant revisits to its own evidence
	// states never touch a lock.
	local map[string]dist.Dist
	// keyBuf is the reused CPD key scratch buffer.
	keyBuf []byte
	// scratch backs the allocation-lean voting path on cache misses.
	scratch *vote.Scratch

	// PointsSampled counts every Gibbs draw, including burn-in — the
	// "sample size" axis of Fig. 11.
	PointsSampled int
	// CacheHits and CacheMisses instrument this sampler's CPD memo probes
	// (against the shared cache when one is configured).
	CacheHits, CacheMisses int
}

// New returns a sampler over the model.
func New(model *core.Model, cfg Config) (*Sampler, error) {
	if model == nil {
		return nil, fmt.Errorf("gibbs: nil model")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Sampler{
		model:   model,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		local:   make(map[string]dist.Dist),
		scratch: new(vote.Scratch),
	}, nil
}

// localCPD estimates P(attr | state - attr) by voting over the MRSL for
// attr, with memoization keyed by the evidence assignment. The estimate is
// a pure function of the model and the evidence, so the memo — private or
// shared, bounded or not — never changes what a chain samples.
func (s *Sampler) localCPD(state relation.Tuple, attr int) (dist.Dist, error) {
	saved := state[attr]
	state[attr] = relation.Missing
	s.keyBuf = AppendCPDKey(s.keyBuf[:0], attr, s.cfg.Method, state)
	if d, ok := s.local[string(s.keyBuf)]; ok {
		state[attr] = saved
		s.CacheHits++
		return d, nil
	}
	if s.cfg.Cache != nil {
		if d, ok := s.cfg.Cache.Get(s.keyBuf); ok {
			state[attr] = saved
			s.local[string(s.keyBuf)] = d
			s.CacheHits++
			return d, nil
		}
	}
	s.CacheMisses++
	d, err := vote.InferScratch(s.model, state, attr, s.cfg.Method, s.scratch)
	state[attr] = saved
	if err != nil {
		return nil, err
	}
	s.local[string(s.keyBuf)] = d
	if s.cfg.Cache != nil {
		s.cfg.Cache.Put(s.keyBuf, d)
	}
	return d, nil
}

// chain is one ordered-Gibbs chain for an incomplete tuple.
type chain struct {
	tuple   relation.Tuple // the incomplete tuple (evidence fixed)
	missing []int          // attributes being resampled
	state   relation.Tuple // current full assignment
}

// newChain initializes a chain with a uniformly random assignment of the
// missing attributes ("start with a valid random assignment").
func (s *Sampler) newChain(t relation.Tuple) (*chain, error) {
	missing := t.MissingAttrs()
	if len(missing) == 0 {
		return nil, fmt.Errorf("gibbs: tuple %v has no missing attributes", t)
	}
	state := t.Clone()
	for _, a := range missing {
		state[a] = s.rng.Intn(s.model.Schema.Attrs[a].Card())
	}
	return &chain{tuple: t, missing: missing, state: state}, nil
}

// sweep resamples every missing attribute once in order, yielding the next
// point of the chain. It counts as one sampled point.
func (s *Sampler) sweep(c *chain) error {
	for _, a := range c.missing {
		cpd, err := s.localCPD(c.state, a)
		if err != nil {
			return err
		}
		c.state[a] = cpd.Sample(s.rng.Float64())
	}
	s.PointsSampled++
	return nil
}

// InferTuple estimates the joint distribution over the missing attributes
// of t with a dedicated chain: BurnIn discarded sweeps, then Samples
// recorded sweeps. The result is smoothed to a positive distribution.
func (s *Sampler) InferTuple(t relation.Tuple) (*dist.Joint, error) {
	acc, err := s.newAccumulator(t)
	if err != nil {
		return nil, err
	}
	c, err := s.newChain(t)
	if err != nil {
		return nil, err
	}
	for i := 0; i < s.cfg.burnIn(); i++ {
		if err := s.sweep(c); err != nil {
			return nil, err
		}
	}
	for i := 0; i < s.cfg.Samples; i++ {
		if err := s.sweep(c); err != nil {
			return nil, err
		}
		acc.record(c.state)
	}
	return acc.finish(), nil
}

// accumulator tallies sampled combinations of a tuple's missing attributes.
type accumulator struct {
	joint   *dist.Joint
	missing []int
	vals    []int
	n       int
}

func (s *Sampler) newAccumulator(t relation.Tuple) (*accumulator, error) {
	missing := t.MissingAttrs()
	if len(missing) == 0 {
		return nil, fmt.Errorf("gibbs: tuple %v has no missing attributes", t)
	}
	cards := make([]int, len(missing))
	for i, a := range missing {
		cards[i] = s.model.Schema.Attrs[a].Card()
	}
	j, err := dist.NewJoint(missing, cards)
	if err != nil {
		return nil, err
	}
	return &accumulator{joint: j, missing: missing, vals: make([]int, len(missing))}, nil
}

// record tallies the combination assigned to the missing attributes in a
// full state.
func (a *accumulator) record(state relation.Tuple) {
	for i, attr := range a.missing {
		a.vals[i] = state[attr]
	}
	a.joint.P[a.joint.Index(a.vals)]++
	a.n++
}

// finish normalizes and smooths the tally into the estimate Delta_t.
func (a *accumulator) finish() *dist.Joint {
	return a.joint.Normalize().Smooth(dist.SmoothFloor)
}

// Result is the outcome of workload inference: one estimated joint
// distribution per distinct incomplete tuple, aligned by index.
type Result struct {
	// Tuples are the distinct incomplete tuples, in first-appearance order.
	Tuples []relation.Tuple
	// Dists[i] is the estimate of Delta for Tuples[i].
	Dists []*dist.Joint
	// PointsSampled is the number of Gibbs draws (including burn-in) the
	// run consumed.
	PointsSampled int
}

// TupleAtATime runs an independent chain for every distinct tuple of the
// workload — the baseline of Fig. 11.
func (s *Sampler) TupleAtATime(workload []relation.Tuple) (*Result, error) {
	distinct, err := distinctIncomplete(workload)
	if err != nil {
		return nil, err
	}
	before := s.PointsSampled
	res := &Result{Tuples: distinct, Dists: make([]*dist.Joint, len(distinct))}
	for i, t := range distinct {
		j, err := s.InferTuple(t)
		if err != nil {
			return nil, err
		}
		res.Dists[i] = j
	}
	res.PointsSampled = s.PointsSampled - before
	return res, nil
}

// distinctIncomplete deduplicates a workload, preserving first-appearance
// order, and rejects complete tuples.
func distinctIncomplete(workload []relation.Tuple) ([]relation.Tuple, error) {
	if len(workload) == 0 {
		return nil, fmt.Errorf("gibbs: empty workload")
	}
	seen := make(map[string]bool, len(workload))
	var out []relation.Tuple
	for _, t := range workload {
		if t.IsComplete() {
			return nil, fmt.Errorf("gibbs: workload contains complete tuple %v", t)
		}
		k := t.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, t)
	}
	return out, nil
}
