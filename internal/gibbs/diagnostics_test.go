package gibbs

import (
	"math"
	"testing"

	"repro/internal/relation"
)

func TestDiagnoseValidation(t *testing.T) {
	m, _, _ := learnBN(t, "BN8", 1000, 61)
	s, err := New(m, Config{Samples: 100, BurnIn: 10, Method: bestAveraged(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tu := relation.Tuple{relation.Missing, 0, 0, 0}
	if _, err := s.Diagnose(tu, 1, 100); err == nil {
		t.Error("1 chain should fail")
	}
	if _, err := s.Diagnose(tu, 4, 2); err == nil {
		t.Error("too few samples should fail")
	}
	if _, err := s.Diagnose(relation.Tuple{0, 0, 0, 0}, 4, 100); err == nil {
		t.Error("complete tuple should fail")
	}
}

// TestDiagnoseWellMixedChain: a single missing attribute makes the chain an
// iid sampler, so R-hat must sit close to 1 and ESS near the total draw
// count.
func TestDiagnoseWellMixedChain(t *testing.T) {
	m, _, _ := learnBN(t, "BN8", 5000, 62)
	s, err := New(m, Config{Samples: 100, BurnIn: 20, Method: bestAveraged(), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tu := relation.Tuple{relation.Missing, 0, 1, 0}
	d, err := s.Diagnose(tu, 4, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Converged() {
		t.Errorf("iid chain did not converge: R-hat = %v", d.RHat)
	}
	if d.RHat > 1.05 {
		t.Errorf("R-hat = %v, want close to 1", d.RHat)
	}
	total := float64(4 * 500)
	if d.ESS < total/4 {
		t.Errorf("ESS = %v, want a sizable fraction of %v for iid draws", d.ESS, total)
	}
	if d.Chains != 4 || d.SamplesPerChain != 500 {
		t.Errorf("shape = %d x %d", d.Chains, d.SamplesPerChain)
	}
}

// TestDiagnoseMultiAttribute: two missing attributes still converge with a
// moderate budget on a small network.
func TestDiagnoseMultiAttribute(t *testing.T) {
	m, _, _ := learnBN(t, "BN8", 5000, 63)
	s, err := New(m, Config{Samples: 100, BurnIn: 50, Method: bestAveraged(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tu := relation.Tuple{relation.Missing, relation.Missing, 1, 0}
	d, err := s.Diagnose(tu, 4, 800)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Converged() {
		t.Errorf("R-hat = %v on a 2x2 state space", d.RHat)
	}
	if d.ESS < 50 {
		t.Errorf("ESS = %v, implausibly low", d.ESS)
	}
}

func TestSplitRHatHandComputed(t *testing.T) {
	// Identical chains: R-hat = 1.
	same := [][]float64{
		{0, 1, 0, 1, 0, 1, 0, 1},
		{1, 0, 1, 0, 1, 0, 1, 0},
	}
	if r := splitRHat(same); math.Abs(r-1) > 0.2 {
		t.Errorf("R-hat for well-mixed chains = %v, want ~1", r)
	}
	// Disjoint chains (one all zeros, one all ones with a flip to keep
	// within-variance nonzero): R-hat far above 1.
	stuck := [][]float64{
		{0, 0, 0, 0, 0, 0, 1, 0},
		{1, 1, 1, 1, 1, 1, 0, 1},
	}
	if r := splitRHat(stuck); r < 1.5 {
		t.Errorf("R-hat for stuck chains = %v, want >> 1", r)
	}
	// Zero within-variance and zero between: constant series -> 1.
	constant := [][]float64{{1, 1, 1, 1}, {1, 1, 1, 1}}
	if r := splitRHat(constant); r != 1 {
		t.Errorf("R-hat constant = %v, want 1", r)
	}
	// Zero within, nonzero between -> +Inf.
	split := [][]float64{{0, 0, 0, 0}, {1, 1, 1, 1}}
	if r := splitRHat(split); !math.IsInf(r, 1) {
		t.Errorf("R-hat for frozen disagreeing chains = %v, want +Inf", r)
	}
}

func TestEffectiveSampleSizeBounds(t *testing.T) {
	// Alternating iid-ish series: ESS near total.
	series := [][]float64{
		{0, 1, 0, 1, 1, 0, 1, 0, 0, 1, 1, 0},
		{1, 0, 1, 1, 0, 0, 1, 0, 1, 0, 0, 1},
	}
	total := 24.0
	ess := effectiveSampleSize(series)
	if ess <= 0 || ess > total {
		t.Errorf("ESS = %v outside (0, %v]", ess, total)
	}
	// Perfectly sticky series: ESS collapses.
	sticky := [][]float64{
		{0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1},
		{1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0},
	}
	if e := effectiveSampleSize(sticky); e > total/2 {
		t.Errorf("sticky ESS = %v, want heavily discounted", e)
	}
	// Constant series: defined as total.
	constant := [][]float64{{1, 1, 1, 1}, {1, 1, 1, 1}}
	if e := effectiveSampleSize(constant); e != 8 {
		t.Errorf("constant ESS = %v, want 8", e)
	}
}

func TestAutoTuneConverges(t *testing.T) {
	m, _, _ := learnBN(t, "BN8", 5000, 64)
	s, err := New(m, Config{Samples: 100, BurnIn: 20, Method: bestAveraged(), Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	tu := relation.Tuple{relation.Missing, relation.Missing, 0, 1}
	burnIn, samples, diag, err := s.AutoTune(tu, 1.05, 32, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if samples < 32 || samples > 4096 {
		t.Errorf("samples = %d out of range", samples)
	}
	if burnIn < 20 {
		t.Errorf("burn-in = %d below sampler default", burnIn)
	}
	if diag == nil || diag.RHat <= 0 {
		t.Error("diagnostics missing")
	}
	if diag.RHat >= 1.05 && samples < 4096 {
		t.Errorf("auto-tune stopped early: R-hat=%v at %d samples", diag.RHat, samples)
	}
}

func TestAutoTuneParameterClamps(t *testing.T) {
	m, _, _ := learnBN(t, "BN8", 1000, 65)
	s, err := New(m, Config{Samples: 100, BurnIn: 10, Method: bestAveraged(), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	tu := relation.Tuple{relation.Missing, 0, 0, 0}
	// Degenerate thresholds and budgets are clamped, not rejected.
	_, samples, _, err := s.AutoTune(tu, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if samples < 8 {
		t.Errorf("samples = %d, want >= clamped minimum", samples)
	}
}
