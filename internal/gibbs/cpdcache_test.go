package gibbs

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/dist"
	"repro/internal/relation"
	"repro/internal/vote"
)

// TestCPDCacheBounding fills a tiny cache far past its cap and checks the
// bound holds, evictions are counted, and survivors read back intact.
func TestCPDCacheBounding(t *testing.T) {
	const cap = 64
	c := NewCPDCache(cap)
	method := bestAveraged()
	n := 10 * cap
	var key []byte
	for i := 0; i < n; i++ {
		tu := relation.Tuple{i, i % 7, relation.Missing}
		key = AppendCPDKey(key[:0], 2, method, tu)
		c.Put(key, dist.Dist{float64(i), 1 - float64(i)})
	}
	st := c.Stats()
	// Capacity is split across shards, each rounded up, so allow the
	// per-shard rounding slack.
	maxEntries := int64(cap + cpdShards)
	if st.Entries > maxEntries {
		t.Fatalf("cache holds %d entries, cap %d (max %d with shard rounding)", st.Entries, cap, maxEntries)
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions recorded after inserting %d entries into a %d-entry cache", n, cap)
	}
	if st.Evictions+st.Entries != int64(n) {
		t.Fatalf("evictions (%d) + entries (%d) != inserts (%d)", st.Evictions, st.Entries, n)
	}
	// The most recent insert must still be resident and value-intact.
	tu := relation.Tuple{n - 1, (n - 1) % 7, relation.Missing}
	key = AppendCPDKey(key[:0], 2, method, tu)
	d, ok := c.Get(key)
	if !ok {
		t.Fatalf("most recent insert was evicted")
	}
	want := dist.Dist{float64(n - 1), 1 - float64(n-1)}
	if !reflect.DeepEqual(d, want) {
		t.Fatalf("got %v, want %v", d, want)
	}
}

// TestAppendCPDKeyUnique checks keys separate attributes, methods, and
// evidence assignments.
func TestAppendCPDKeyUnique(t *testing.T) {
	tuples := []relation.Tuple{
		{0, 1, relation.Missing},
		{1, 0, relation.Missing},
		{0, relation.Missing, 1},
		{relation.Missing, 0, 1},
		{relation.Missing, relation.Missing, relation.Missing},
	}
	seen := map[string]string{}
	for _, m := range vote.Methods() {
		for attr := 0; attr < 3; attr++ {
			for ti, tu := range tuples {
				id := fmt.Sprintf("m=%v attr=%d t=%d", m, attr, ti)
				k := string(AppendCPDKey(nil, attr, m, tu))
				if prev, dup := seen[k]; dup {
					t.Fatalf("key collision between %s and %s", prev, id)
				}
				seen[k] = id
			}
		}
	}
}

// TestSamplerSharedCacheDeterminism checks the central determinism claim:
// a sampler running against a shared cache — warm or cold, bounded so
// small it constantly evicts, or pre-populated by another sampler —
// produces bit-identical estimates to a private-memo sampler.
func TestSamplerSharedCacheDeterminism(t *testing.T) {
	m, inst, rng := learnBN(t, "BN6", 3000, 99)
	var tuples []relation.Tuple
	for i := 0; i < 4; i++ {
		tu := inst.Sample(rng)
		for _, a := range rng.Perm(len(tu))[:2] {
			tu[a] = relation.Missing
		}
		tuples = append(tuples, tu)
	}
	base := Config{Samples: 60, BurnIn: 10, Method: bestAveraged(), Seed: 5}

	run := func(cfg Config) []*dist.Joint {
		var out []*dist.Joint
		for _, tu := range tuples {
			s, err := New(m, cfg)
			if err != nil {
				t.Fatal(err)
			}
			j, err := s.InferTuple(tu)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, j)
		}
		return out
	}

	want := run(base) // private memo

	shared := base
	shared.Cache = NewCPDCache(0)
	if got := run(shared); !reflect.DeepEqual(got, want) {
		t.Fatalf("cold shared cache changed estimates")
	}
	// Re-run against the now-warm shared cache: everything served from it.
	if got := run(shared); !reflect.DeepEqual(got, want) {
		t.Fatalf("warm shared cache changed estimates")
	}
	tiny := base
	tiny.Cache = NewCPDCache(cpdShards) // one entry per shard: constant eviction
	if got := run(tiny); !reflect.DeepEqual(got, want) {
		t.Fatalf("tiny (always-evicting) shared cache changed estimates")
	}
	if st := tiny.Cache.Stats(); st.Evictions == 0 {
		t.Fatalf("tiny cache recorded no evictions; bound not exercised")
	}

	// InferIndependent (the engine's chain-mode unit) under a shared cache
	// must equal its private-memo result too.
	for _, tu := range tuples {
		jPriv, _, err := InferIndependent(m, base, tu)
		if err != nil {
			t.Fatal(err)
		}
		jShared, _, err := InferIndependent(m, shared, tu)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(jPriv, jShared) {
			t.Fatalf("InferIndependent differs under shared cache for %v", tu)
		}
	}
}

// TestLocalCPDHitZeroAlloc pins zero allocations on the memo-hit path,
// for both the private map and the shared cache.
func TestLocalCPDHitZeroAlloc(t *testing.T) {
	m, inst, rng := learnBN(t, "BN6", 2000, 41)
	state := inst.Sample(rng)

	private, err := New(m, Config{Samples: 10, BurnIn: 2, Method: bestAveraged(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := New(m, Config{Samples: 10, BurnIn: 2, Method: bestAveraged(), Seed: 1,
		Cache: NewCPDCache(0)})
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]*Sampler{"private": private, "shared": shared} {
		if _, err := s.localCPD(state, 0); err != nil { // warm the memo
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(200, func() {
			if _, err := s.localCPD(state, 0); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s cache-hit path allocates %.1f times per call, want 0", name, allocs)
		}
	}
}

// TestCPDCacheConcurrentSmoke hammers one cache from many goroutines
// under overlapping keys; correctness is checked by the race detector and
// the counters' consistency.
func TestCPDCacheConcurrentSmoke(t *testing.T) {
	c := NewCPDCache(128)
	method := bestAveraged()
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			var key []byte
			for i := 0; i < 2000; i++ {
				tu := relation.Tuple{(g + i) % 13, i % 5, relation.Missing}
				key = AppendCPDKey(key[:0], 2, method, tu)
				if d, ok := c.Get(key); ok {
					if len(d) != 2 {
						t.Errorf("corrupt entry: %v", d)
						return
					}
					continue
				}
				c.Put(key, dist.Dist{0.5, 0.5})
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	st := c.Stats()
	if st.Hits+st.Misses != 4*2000 {
		t.Fatalf("hits (%d) + misses (%d) != probes (%d)", st.Hits, st.Misses, 4*2000)
	}
}
