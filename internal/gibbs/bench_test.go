package gibbs

import (
	"fmt"
	"testing"

	"repro/internal/relation"
)

// BenchmarkInferTuple measures one full chain (burn-in + N sweeps) at
// several missing counts; the CPD cache makes later sweeps cheap.
func BenchmarkInferTuple(b *testing.B) {
	m, inst, rng := learnBN(b, "BN9", 10000, 201)
	for _, missing := range []int{1, 2, 4} {
		tu := inst.Sample(rng)
		for _, a := range rng.Perm(6)[:missing] {
			tu[a] = relation.Missing
		}
		b.Run(fmt.Sprintf("missing=%d", missing), func(b *testing.B) {
			s, err := New(m, Config{Samples: 200, BurnIn: 50, Method: bestAveraged(), Seed: 3})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.InferTuple(tu); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBuildTupleDAG measures DAG construction over a workload (the
// pairwise-subsumption cost of Algorithm 3's setup).
func BenchmarkBuildTupleDAG(b *testing.B) {
	_, inst, rng := learnBN(b, "BN9", 2000, 202)
	workload := workloadFromInstance(inst, rng, 500, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildTupleDAG(workload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCPDCacheHit isolates the memoized local-CPD path.
func BenchmarkCPDCacheHit(b *testing.B) {
	m, inst, rng := learnBN(b, "BN8", 5000, 203)
	s, err := New(m, Config{Samples: 10, BurnIn: 5, Method: bestAveraged(), Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	state := inst.Sample(rng)
	if _, err := s.localCPD(state, 0); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.localCPD(state, 0); err != nil {
			b.Fatal(err)
		}
	}
}
