package gibbs

import (
	"sync"

	"repro/internal/clockcache"
	"repro/internal/dist"
	"repro/internal/relation"
	"repro/internal/vote"
)

// DefaultCPDCacheEntries is the default entry cap of a CPDCache: local CPD
// estimates are one small slice each, so a quarter-million entries stay in
// the tens of megabytes while covering the evidence states of far larger
// workloads than the benchmarks'.
const DefaultCPDCacheEntries = 1 << 18

// cpdShards is the shard count; a power of two so the shard pick is a
// mask. 32 shards keep lock contention negligible for any realistic
// chain-pool size.
const cpdShards = 32

// CPDCache is a sharded, size-bounded, concurrency-safe memo of local CPD
// estimates keyed by (head attribute, evidence assignment) — the
// first-class form of the "caching of partial computations" the paper
// pairs with holistic workload inference. One cache is shared by all Gibbs
// chains of an engine, across parallel workers and overlapping streams,
// and by the single-missing vote path, so an evidence state visited by any
// of them is voted exactly once per cache residency.
//
// Sharing is sound because entries are value-deterministic: a local CPD is
// a pure function of the model and the evidence assignment, so every chain
// would compute bit-identical values — whichever chain wins the race to
// insert, readers observe the same distribution, and an eviction merely
// costs a deterministic recompute. Sampler output is therefore
// bit-identical for any worker count, cache bound, and request
// interleaving.
type CPDCache struct {
	shards [cpdShards]cpdShard
}

type cpdShard struct {
	mu     sync.Mutex
	m      *clockcache.Map[dist.Dist]
	hits   int64
	misses int64
}

// CPDCacheStats is a point-in-time snapshot of a CPDCache's counters.
type CPDCacheStats struct {
	// Hits and Misses count Get probes over the cache's lifetime.
	Hits, Misses int64
	// Evictions counts entries dropped by the CLOCK sweep.
	Evictions int64
	// Entries is the current number of cached CPDs.
	Entries int64
}

// NewCPDCache returns a cache bounded to the given total entry count,
// split evenly across shards; entries <= 0 selects
// DefaultCPDCacheEntries.
func NewCPDCache(entries int) *CPDCache {
	if entries <= 0 {
		entries = DefaultCPDCacheEntries
	}
	per := (entries + cpdShards - 1) / cpdShards
	if per < 1 {
		per = 1
	}
	c := &CPDCache{}
	for i := range c.shards {
		c.shards[i].m = clockcache.New[dist.Dist](per, nil)
	}
	return c
}

// AppendCPDKey appends the cache key of estimating attr under the given
// voting method given the evidence assignment of state (attr itself must
// be Missing in state) to dst and returns it. The key is the voting
// method, the attribute index, and the tuple's canonical evidence key —
// all self-delimiting varint sequences, so distinct (method, attr,
// evidence) triples never collide. Including the method lets one shared
// cache serve paths configured with different voting methods (e.g. an
// engine whose single-missing method differs from its Gibbs local-CPD
// method) without ever returning an estimate computed the other way.
func AppendCPDKey(dst []byte, attr int, method vote.Method, state relation.Tuple) []byte {
	dst = append(dst, byte(method.Choice), byte(method.Scheme))
	for v := uint64(attr); ; v >>= 7 {
		if v < 0x80 {
			dst = append(dst, byte(v))
			break
		}
		dst = append(dst, byte(v)|0x80)
	}
	return state.AppendKey(dst)
}

// shard picks the shard for a key (FNV-1a over the key bytes).
func (c *CPDCache) shard(key []byte) *cpdShard {
	return &c.shards[fnv64(key)&(cpdShards-1)]
}

// Get returns the cached CPD for key, if present. The key bytes are not
// retained and a hit does not allocate.
func (c *CPDCache) Get(key []byte) (dist.Dist, bool) {
	s := c.shard(key)
	s.mu.Lock()
	d, ok := s.m.Get(key)
	if ok {
		s.hits++
	} else {
		s.misses++
	}
	s.mu.Unlock()
	return d, ok
}

// Put stores the CPD for key, evicting an older entry when the shard is
// full. The distribution must not be mutated after insertion.
func (c *CPDCache) Put(key []byte, d dist.Dist) {
	s := c.shard(key)
	s.mu.Lock()
	s.m.Put(key, d)
	s.mu.Unlock()
}

// Stats sums the per-shard counters into a snapshot.
func (c *CPDCache) Stats() CPDCacheStats {
	var st CPDCacheStats
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Evictions += s.m.Evictions()
		st.Entries += int64(s.m.Len())
		s.mu.Unlock()
	}
	return st
}
