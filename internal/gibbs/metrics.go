package gibbs

import "repro/internal/obs"

// Batch-grained sampler histograms: one observation per scheduled batch
// (a parallel chain pool run or a holistic DAG batch), never per sweep —
// sweeps are the sampler's innermost loop.
var (
	batchSeconds = obs.Default.Histogram("mrsl_gibbs_batch_seconds", "",
		"One parallel chain-pool batch over a workload's distinct tuples.")
	dagBatchSeconds = obs.Default.Histogram("mrsl_gibbs_dag_batch_seconds", "",
		"One holistic tuple-DAG sampling batch (Algorithm 3).")
)
