package gibbs

import (
	"fmt"
	"time"

	"repro/internal/dist"
	"repro/internal/relation"
)

// TupleDAG is the subsumption DAG over a workload's distinct incomplete
// tuples (Section V-B, Fig. 3). Node i points at the tuples it subsumes —
// tuples with strictly more evidence that agree with it — so samples drawn
// for a node can be shared downward by rejection filtering.
type TupleDAG struct {
	// Tuples are the distinct incomplete tuples.
	Tuples []relation.Tuple
	// Subsumees[i] lists indices j with Tuples[j] ≺ Tuples[i] (transitive,
	// not just immediate children).
	Subsumees [][]int
	// Subsumers[i] lists indices j with Tuples[i] ≺ Tuples[j].
	Subsumers [][]int
	// Roots are indices of tuples not subsumed by any other tuple.
	Roots []int
}

// BuildTupleDAG constructs the subsumption DAG for a workload
// (Algorithm 3's ComputeTupleDAG).
func BuildTupleDAG(workload []relation.Tuple) (*TupleDAG, error) {
	distinct, err := distinctIncomplete(workload)
	if err != nil {
		return nil, err
	}
	n := len(distinct)
	d := &TupleDAG{
		Tuples:    distinct,
		Subsumees: make([][]int, n),
		Subsumers: make([][]int, n),
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && distinct[i].Subsumes(distinct[j]) {
				d.Subsumees[i] = append(d.Subsumees[i], j)
				d.Subsumers[j] = append(d.Subsumers[j], i)
			}
		}
	}
	for i := 0; i < n; i++ {
		if len(d.Subsumers[i]) == 0 {
			d.Roots = append(d.Roots, i)
		}
	}
	return d, nil
}

// dagNode is the sampling state of one tuple during Algorithm 3.
type dagNode struct {
	acc *accumulator
	// raw holds the node's own recorded draws (full states restricted to
	// its missing attributes' values are recoverable from the full state),
	// kept while active so they can be shared with subsumees on completion.
	raw []relation.Tuple
	// chain is non-nil once the node has started sampling (initialized =
	// burn-in done).
	chain     *chain
	samples   int // recorded samples accumulated (own + shared)
	completed bool
}

// TupleDAGRun executes Algorithm 3 (workload-driven sampling): roots are
// visited round-robin, one recorded sweep per visit after burn-in; when a
// root reaches N samples its draws are shared with every subsumee (only
// draws matching the subsumee's evidence count), and subsumees with no
// remaining active subsumer are promoted to roots to top up their sample
// count with their own chain.
func (s *Sampler) TupleDAGRun(workload []relation.Tuple) (*Result, error) {
	defer dagBatchSeconds.Since(time.Now())
	dag, err := BuildTupleDAG(workload)
	if err != nil {
		return nil, err
	}
	before := s.PointsSampled
	n := len(dag.Tuples)
	nodes := make([]*dagNode, n)
	for i, t := range dag.Tuples {
		acc, err := s.newAccumulator(t)
		if err != nil {
			return nil, err
		}
		nodes[i] = &dagNode{acc: acc}
	}

	active := append([]int(nil), dag.Roots...)
	inActive := make([]bool, n)
	for _, r := range active {
		inActive[r] = true
	}
	N := s.cfg.Samples

	completeNode := func(i int) { nodes[i].completed = true }

	// Round-robin cursor over active roots.
	cur := 0
	for len(active) > 0 {
		if cur >= len(active) {
			cur = 0
		}
		r := active[cur]
		node := nodes[r]
		if node.chain == nil {
			c, err := s.newChain(dag.Tuples[r])
			if err != nil {
				return nil, err
			}
			node.chain = c
			for b := 0; b < s.cfg.burnIn(); b++ { // run burn-in for r
				if err := s.sweep(c); err != nil {
					return nil, err
				}
			}
		}
		if err := s.sweep(node.chain); err != nil {
			return nil, err
		}
		node.acc.record(node.chain.state)
		node.raw = append(node.raw, node.chain.state.Clone())
		node.samples++
		if node.samples < N {
			cur++
			continue
		}

		// Finished sampling for r: retire it, share its draws, promote
		// subsumees that are now unblocked. Sharing and promotion are two
		// passes: completing one subsumee via sharing can unblock another
		// subsumee that the loop already visited.
		active = append(active[:cur], active[cur+1:]...)
		inActive[r] = false
		completeNode(r)
		for _, si := range dag.Subsumees[r] {
			sn := nodes[si]
			if sn.completed {
				continue
			}
			shareSamples(dag.Tuples[si], node.raw, sn)
			if sn.samples >= N {
				completeNode(si)
			}
		}
		for _, si := range dag.Subsumees[r] {
			sn := nodes[si]
			if sn.completed || inActive[si] {
				continue
			}
			if allSubsumersCompleted(dag, si, nodes) {
				active = append(active, si)
				inActive[si] = true
			}
		}
		node.raw = nil // free retained draws
	}

	res := &Result{
		Tuples:        dag.Tuples,
		Dists:         make([]*dist.Joint, n),
		PointsSampled: s.PointsSampled - before,
	}
	for i, node := range nodes {
		if !node.completed && node.samples == 0 {
			return nil, fmt.Errorf("gibbs: tuple %v received no samples", dag.Tuples[i])
		}
		res.Dists[i] = node.acc.finish()
	}
	return res, nil
}

// shareSamples records every draw of a subsumer that matches the subsumee's
// evidence into the subsumee's accumulator (Algorithm 3's ShareSamples:
// "only samples that match s are recorded").
func shareSamples(subsumee relation.Tuple, raw []relation.Tuple, node *dagNode) {
	for _, state := range raw {
		if subsumee.Matches(state) {
			node.acc.record(state)
			node.samples++
		}
	}
}

// allSubsumersCompleted implements Algorithm 3's IsRoot test: a tuple is
// promoted to root status once every tuple that subsumes it has finished,
// so no further shared samples can arrive for it.
func allSubsumersCompleted(dag *TupleDAG, i int, nodes []*dagNode) bool {
	for _, up := range dag.Subsumers[i] {
		if !nodes[up].completed {
			return false
		}
	}
	return true
}

// AllAtATime runs a single chain over the fully missing tuple t* and
// filters its draws per workload tuple (Section V-A). Because only a
// fraction of draws match any given tuple's evidence, the strategy wastes
// most samples; maxDraws caps the chain length (<= 0 means
// Samples * 1000). Tuples that did not accumulate Samples matching draws
// by the cap still get an estimate from whatever matched, or an error if
// nothing did.
func (s *Sampler) AllAtATime(workload []relation.Tuple, maxDraws int) (*Result, error) {
	distinct, err := distinctIncomplete(workload)
	if err != nil {
		return nil, err
	}
	if maxDraws <= 0 {
		maxDraws = s.cfg.Samples * 1000
	}
	before := s.PointsSampled
	star := relation.NewTuple(s.model.Schema.NumAttrs())
	c, err := s.newChain(star)
	if err != nil {
		return nil, err
	}
	for b := 0; b < s.cfg.burnIn(); b++ {
		if err := s.sweep(c); err != nil {
			return nil, err
		}
	}
	accs := make([]*accumulator, len(distinct))
	counts := make([]int, len(distinct))
	for i, t := range distinct {
		if accs[i], err = s.newAccumulator(t); err != nil {
			return nil, err
		}
	}
	N := s.cfg.Samples
	remaining := len(distinct)
	for draw := 0; draw < maxDraws && remaining > 0; draw++ {
		if err := s.sweep(c); err != nil {
			return nil, err
		}
		for i, t := range distinct {
			if counts[i] >= N || !t.Matches(c.state) {
				continue
			}
			accs[i].record(c.state)
			counts[i]++
			if counts[i] == N {
				remaining--
			}
		}
	}
	res := &Result{
		Tuples:        distinct,
		Dists:         make([]*dist.Joint, len(distinct)),
		PointsSampled: s.PointsSampled - before,
	}
	for i := range distinct {
		if counts[i] == 0 {
			return nil, fmt.Errorf("gibbs: all-at-a-time drew no samples matching %v within %d draws",
				distinct[i], maxDraws)
		}
		res.Dists[i] = accs[i].finish()
	}
	return res, nil
}
