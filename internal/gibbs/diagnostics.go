package gibbs

import (
	"fmt"
	"math"

	"repro/internal/relation"
)

// The paper notes that "the length of burn-in (B), and the subsequent
// number of iterations (N), may be estimated using standard techniques"
// (Section V-A). This file implements those standard techniques for the
// MRSL sampler: the Gelman-Rubin potential scale reduction factor
// (split-R-hat) computed over per-outcome indicator traces of multiple
// independent chains, effective sample size from the traces'
// autocorrelation, and an auto-tuner that doubles the sampling budget until
// the chains agree.

// Diagnostics summarizes convergence evidence from parallel chains.
type Diagnostics struct {
	// RHat is the worst (largest) split-R-hat across all monitored
	// indicator traces; values near 1 indicate the chains have mixed.
	RHat float64
	// ESS is the smallest effective sample size across indicator traces,
	// totalled over chains.
	ESS float64
	// Chains and SamplesPerChain record the run's shape.
	Chains          int
	SamplesPerChain int
}

// Converged applies the conventional acceptance threshold (R-hat below
// 1.1).
func (d *Diagnostics) Converged() bool { return d.RHat < 1.1 }

// Diagnose runs the given number of independent chains for t (each with
// the sampler's burn-in followed by samplesPerChain recorded sweeps) and
// evaluates convergence. Indicator traces are monitored per missing
// attribute and value: trace_{a,v}[i] = 1 if chain step i assigned value v
// to attribute a.
func (s *Sampler) Diagnose(t relation.Tuple, chains, samplesPerChain int) (*Diagnostics, error) {
	if chains < 2 {
		return nil, fmt.Errorf("gibbs: need at least 2 chains, got %d", chains)
	}
	if samplesPerChain < 4 {
		return nil, fmt.Errorf("gibbs: need at least 4 samples per chain, got %d", samplesPerChain)
	}
	missing := t.MissingAttrs()
	if len(missing) == 0 {
		return nil, fmt.Errorf("gibbs: tuple %v has no missing attributes", t)
	}

	// traces[c][k][i]: chain c, indicator k, step i.
	var indicators []struct{ attr, val int }
	for _, a := range missing {
		for v := 0; v < s.model.Schema.Attrs[a].Card(); v++ {
			indicators = append(indicators, struct{ attr, val int }{a, v})
		}
	}
	traces := make([][][]float64, chains)
	for c := 0; c < chains; c++ {
		ch, err := s.newChain(t)
		if err != nil {
			return nil, err
		}
		for b := 0; b < s.cfg.burnIn(); b++ {
			if err := s.sweep(ch); err != nil {
				return nil, err
			}
		}
		traces[c] = make([][]float64, len(indicators))
		for k := range indicators {
			traces[c][k] = make([]float64, samplesPerChain)
		}
		for i := 0; i < samplesPerChain; i++ {
			if err := s.sweep(ch); err != nil {
				return nil, err
			}
			for k, ind := range indicators {
				if ch.state[ind.attr] == ind.val {
					traces[c][k][i] = 1
				}
			}
		}
	}

	d := &Diagnostics{Chains: chains, SamplesPerChain: samplesPerChain, RHat: 1, ESS: math.Inf(1)}
	for k := range indicators {
		series := make([][]float64, chains)
		for c := range traces {
			series[c] = traces[c][k]
		}
		if constantSeries(series) {
			// An indicator every chain agrees on contributes no
			// convergence signal (e.g. probability ~0 outcomes).
			continue
		}
		r := splitRHat(series)
		if r > d.RHat {
			d.RHat = r
		}
		if e := effectiveSampleSize(series); e < d.ESS {
			d.ESS = e
		}
	}
	if math.IsInf(d.ESS, 1) {
		// All indicators constant: the conditional is deterministic given
		// the evidence; every sample is maximally informative.
		d.ESS = float64(chains * samplesPerChain)
	}
	return d, nil
}

func constantSeries(series [][]float64) bool {
	first := series[0][0]
	for _, s := range series {
		for _, v := range s {
			if v != first {
				return false
			}
		}
	}
	return true
}

// splitRHat computes the Gelman-Rubin statistic after splitting each chain
// in half (the split-R-hat of Gelman et al.), guarding against chains that
// are individually stuck.
func splitRHat(series [][]float64) float64 {
	var halves [][]float64
	for _, s := range series {
		h := len(s) / 2
		halves = append(halves, s[:h], s[h:h*2])
	}
	m := len(halves)
	n := len(halves[0])
	means := make([]float64, m)
	vars := make([]float64, m)
	var grand float64
	for i, h := range halves {
		for _, v := range h {
			means[i] += v
		}
		means[i] /= float64(n)
		grand += means[i]
	}
	grand /= float64(m)
	for i, h := range halves {
		for _, v := range h {
			d := v - means[i]
			vars[i] += d * d
		}
		vars[i] /= float64(n - 1)
	}
	var between, within float64
	for i := 0; i < m; i++ {
		d := means[i] - grand
		between += d * d
		within += vars[i]
	}
	between *= float64(n) / float64(m-1)
	within /= float64(m)
	if within == 0 {
		if between == 0 {
			return 1
		}
		return math.Inf(1)
	}
	varPlus := float64(n-1)/float64(n)*within + between/float64(n)
	return math.Sqrt(varPlus / within)
}

// effectiveSampleSize estimates ESS across chains using Geyer's initial
// positive sequence on the pooled autocorrelation.
func effectiveSampleSize(series [][]float64) float64 {
	m := len(series)
	n := len(series[0])
	total := float64(m * n)

	// Pooled mean and variance.
	var mean float64
	for _, s := range series {
		for _, v := range s {
			mean += v
		}
	}
	mean /= total
	var variance float64
	for _, s := range series {
		for _, v := range s {
			d := v - mean
			variance += d * d
		}
	}
	variance /= total
	if variance == 0 {
		return total
	}

	// Average autocorrelation at lag t across chains; accumulate while the
	// pairwise sums (Geyer) stay positive.
	var sum float64
	for lag := 1; lag < n-1; lag += 2 {
		rho1 := pooledAutocorr(series, mean, variance, lag)
		rho2 := pooledAutocorr(series, mean, variance, lag+1)
		if rho1+rho2 <= 0 {
			break
		}
		sum += rho1 + rho2
	}
	ess := total / (1 + 2*sum)
	if ess > total {
		ess = total
	}
	if ess < 1 {
		ess = 1
	}
	return ess
}

func pooledAutocorr(series [][]float64, mean, variance float64, lag int) float64 {
	var acc float64
	var count int
	for _, s := range series {
		for i := 0; i+lag < len(s); i++ {
			acc += (s[i] - mean) * (s[i+lag] - mean)
			count += 1
		}
	}
	if count == 0 || variance == 0 {
		return 0
	}
	return acc / (float64(count) * variance)
}

// AutoTune searches for a sampling budget under which the chains for t
// converge: starting from minSamples per chain, the budget doubles until
// split-R-hat falls below threshold or maxSamples is reached. It returns
// the recommended burn-in (a tenth of the chosen budget, at least the
// sampler default) and per-tuple sample count, plus the final diagnostics.
func (s *Sampler) AutoTune(t relation.Tuple, threshold float64, minSamples, maxSamples int) (burnIn, samples int, diag *Diagnostics, err error) {
	if threshold <= 1 {
		threshold = 1.05
	}
	if minSamples < 8 {
		minSamples = 8
	}
	if maxSamples < minSamples {
		maxSamples = minSamples
	}
	const chains = 4
	n := minSamples
	for {
		diag, err = s.Diagnose(t, chains, n)
		if err != nil {
			return 0, 0, nil, err
		}
		if diag.RHat < threshold || n >= maxSamples {
			break
		}
		n *= 2
		if n > maxSamples {
			n = maxSamples
		}
	}
	burnIn = n / 10
	if burnIn < s.cfg.burnIn() {
		burnIn = s.cfg.burnIn()
	}
	return burnIn, n, diag, nil
}
