package gibbs

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/faultinject"
	"repro/internal/relation"
	"repro/internal/vote"
)

// ParallelTupleAtATime runs an independent chain for every distinct tuple
// of the workload across a pool of goroutines. Each tuple's chain draws
// from its own RNG, deterministically derived from the sampler seed and
// the tuple's content (not its position), so the result is bit-identical
// for any worker count — and a tuple's estimate does not depend on which
// other tuples share the workload. workers <= 0 selects GOMAXPROCS.
//
// Without a shared Config.Cache, each chain memoizes its local CPDs in a
// private map; with one, all chains share the engine-level bounded cache,
// so overlapping evidence states are voted once across the whole pool.
// Either way the memo holds value-deterministic entries, so the estimates
// are identical.
func (s *Sampler) ParallelTupleAtATime(workload []relation.Tuple, workers int) (*Result, error) {
	defer batchSeconds.Since(time.Now())
	distinct, err := distinctIncomplete(workload)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(distinct) {
		workers = len(distinct)
	}

	res := &Result{Tuples: distinct, Dists: make([]*dist.Joint, len(distinct))}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		points   int
		next     = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				// Per-item panic boundary: a panicking chain fails the batch
				// with a typed error instead of crashing the process, and the
				// worker keeps draining so the dispatcher never deadlocks.
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if firstErr == nil {
								firstErr = fmt.Errorf("recovered panic in chain worker: %v", r)
							}
							mu.Unlock()
						}
					}()
					j, pts, err := InferIndependent(s.model, s.cfg, distinct[i])
					mu.Lock()
					if err != nil && firstErr == nil {
						firstErr = err
					}
					res.Dists[i] = j
					points += pts
					mu.Unlock()
				}()
			}
		}()
	}
	for i := range distinct {
		next <- i
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, fmt.Errorf("gibbs: parallel inference: %w", firstErr)
	}
	res.PointsSampled = points
	s.PointsSampled += points
	return res, nil
}

// InferIndependent runs the content-seeded independent chain for one
// incomplete tuple: exactly the estimator ParallelTupleAtATime applies to
// each distinct workload tuple, exposed as a single-tuple entry point so a
// serving engine can schedule chains block by block across a stream. The
// chain's RNG is derived from cfg.Seed and the tuple's canonical evidence
// key, so the returned joint is bit-identical to the batch path no matter
// when, where, or alongside which other tuples it is computed. It creates
// a private sub-sampler per call and shares no state, so it is safe to
// call from any number of goroutines. The int result is the number of
// points sampled, including burn-in.
func InferIndependent(m *core.Model, cfg Config, t relation.Tuple) (*dist.Joint, int, error) {
	faultinject.Fire("gibbs.chain") // forced panic: exercises chain-worker recovery
	faultinject.Fire("gibbs.sweep") // delayed sweep: stretches chain wall-clock
	if m == nil {
		return nil, 0, fmt.Errorf("gibbs: nil model")
	}
	if err := cfg.validate(); err != nil {
		return nil, 0, err
	}
	subCfg := cfg // keep the shared CPD cache, re-derive only the seed
	subCfg.Seed = tupleSeed(cfg.Seed, t)
	// The RNG and vote scratch are pooled: Seed deterministically resets
	// the full generator state, and the scratch carries no cross-call
	// meaning, so reuse changes nothing but the allocation count. The
	// private CPD memo is NOT pooled — its entries are model-specific.
	st := indepPool.Get().(*indepState)
	defer indepPool.Put(st)
	st.rng.Seed(subCfg.Seed)
	sub := &Sampler{
		model:   m,
		cfg:     subCfg,
		rng:     st.rng,
		local:   make(map[string]dist.Dist),
		scratch: st.scratch,
	}
	j, err := sub.InferTuple(t)
	return j, sub.PointsSampled, err
}

// indepState bundles the pooled per-call resources of InferIndependent.
type indepState struct {
	rng     *rand.Rand
	scratch *vote.Scratch
}

var indepPool = sync.Pool{New: func() any {
	return &indepState{rng: rand.New(rand.NewSource(0)), scratch: new(vote.Scratch)}
}}

// tupleSeed derives a well-separated per-tuple seed from the sampler seed
// and the tuple's canonical evidence key (FNV-1a over the key bytes, then
// the splitmix64 finalizer). Keying by content rather than workload
// position keeps a tuple's chain identical no matter which other tuples
// are inferred alongside it.
func tupleSeed(seed int64, t relation.Tuple) int64 {
	h := fnv64(t.AppendKey(nil))
	z := uint64(seed) + (h|1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64((z ^ (z >> 31)) >> 1)
}

// fnv64 is FNV-1a over b, shared by per-tuple seeding and CPD-cache
// sharding.
func fnv64(b []byte) uint64 {
	h := uint64(14695981039346656037) // FNV offset basis
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211 // FNV prime
	}
	return h
}
