package gibbs

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/dist"
	"repro/internal/relation"
)

// ParallelTupleAtATime runs an independent chain for every distinct tuple
// of the workload across a pool of goroutines. Each tuple's chain draws
// from its own RNG, deterministically derived from the sampler seed and
// the tuple's position, so the result is bit-identical for any worker
// count. workers <= 0 selects GOMAXPROCS.
//
// The per-tuple CPD caches are private to each chain; chains revisit their
// own finite evidence states constantly, so memoization stays effective
// without cross-goroutine synchronization.
func (s *Sampler) ParallelTupleAtATime(workload []relation.Tuple, workers int) (*Result, error) {
	distinct, err := distinctIncomplete(workload)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(distinct) {
		workers = len(distinct)
	}

	res := &Result{Tuples: distinct, Dists: make([]*dist.Joint, len(distinct))}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		points   int
		next     = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				sub, err := New(s.model, Config{
					BurnIn:  s.cfg.BurnIn,
					Samples: s.cfg.Samples,
					Method:  s.cfg.Method,
					Seed:    mixSeed(s.cfg.Seed, i),
				})
				if err == nil {
					res.Dists[i], err = sub.InferTuple(distinct[i])
				}
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				if sub != nil {
					points += sub.PointsSampled
				}
				mu.Unlock()
			}
		}()
	}
	for i := range distinct {
		next <- i
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, fmt.Errorf("gibbs: parallel inference: %w", firstErr)
	}
	res.PointsSampled = points
	s.PointsSampled += points
	return res, nil
}

// mixSeed derives a well-separated per-tuple seed (splitmix64 finalizer).
func mixSeed(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64((z ^ (z >> 31)) >> 1)
}
