package core

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/dist"
	"repro/internal/relation"
	"repro/internal/rules"
)

// The JSON model format stores the schema, learning configuration, and every
// meta-rule (body, CPD, weight) per attribute. Loading rebuilds the
// subsumption structure, so the on-disk format stays small and stable.

type jsonModel struct {
	Schema   []jsonAttr    `json:"schema"`
	Config   Config        `json:"config"`
	Stats    jsonStats     `json:"stats"`
	Lattices []jsonLattice `json:"lattices"`
}

type jsonAttr struct {
	Name   string   `json:"name"`
	Domain []string `json:"domain"`
}

type jsonStats struct {
	BuildTimeNS  int64 `json:"build_time_ns"`
	NumItemsets  int   `json:"num_itemsets"`
	Truncated    bool  `json:"truncated"`
	TrainingSize int   `json:"training_size"`
}

type jsonLattice struct {
	Attr  int        `json:"attr"`
	Rules []jsonRule `json:"rules"`
}

type jsonRule struct {
	// Body maps attribute index -> value code for the body assignments.
	Body   map[int]int `json:"body"`
	CPD    []float64   `json:"cpd"`
	Weight float64     `json:"weight"`
	// NumRules is the count of association rules behind the meta-rule.
	NumRules int `json:"num_rules"`
}

// Save writes the model as JSON.
func (m *Model) Save(w io.Writer) error {
	jm := jsonModel{
		Config: m.Config,
		Stats: jsonStats{
			BuildTimeNS:  m.Stats.BuildTime.Nanoseconds(),
			NumItemsets:  m.Stats.NumItemsets,
			Truncated:    m.Stats.Truncated,
			TrainingSize: m.Stats.TrainingSize,
		},
	}
	for _, a := range m.Schema.Attrs {
		jm.Schema = append(jm.Schema, jsonAttr{Name: a.Name, Domain: a.Domain})
	}
	for _, l := range m.Lattices {
		jl := jsonLattice{Attr: l.Attr}
		for _, r := range l.Rules {
			body := make(map[int]int)
			for a, v := range r.Body {
				if v != relation.Missing {
					body[a] = v
				}
			}
			jl.Rules = append(jl.Rules, jsonRule{
				Body:     body,
				CPD:      r.CPD,
				Weight:   r.Weight,
				NumRules: r.NumRules,
			})
		}
		jm.Lattices = append(jm.Lattices, jl)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(jm); err != nil {
		return fmt.Errorf("core: encoding model: %w", err)
	}
	return nil
}

// Load reads a model previously written by Save, rebuilding subsumption
// indexes.
func Load(r io.Reader) (*Model, error) {
	var jm jsonModel
	if err := json.NewDecoder(r).Decode(&jm); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	attrs := make([]relation.Attribute, len(jm.Schema))
	for i, a := range jm.Schema {
		attrs[i] = relation.Attribute{Name: a.Name, Domain: a.Domain}
	}
	schema, err := relation.NewSchema(attrs)
	if err != nil {
		return nil, fmt.Errorf("core: loading model schema: %w", err)
	}
	if len(jm.Lattices) != schema.NumAttrs() {
		return nil, fmt.Errorf("core: model has %d lattices for %d attributes",
			len(jm.Lattices), schema.NumAttrs())
	}
	m := &Model{
		Schema:   schema,
		Config:   jm.Config,
		Lattices: make([]*MRSL, schema.NumAttrs()),
		Stats: Stats{
			NumItemsets:  jm.Stats.NumItemsets,
			Truncated:    jm.Stats.Truncated,
			TrainingSize: jm.Stats.TrainingSize,
		},
	}
	m.Stats.BuildTime = time.Duration(jm.Stats.BuildTimeNS)
	for _, jl := range jm.Lattices {
		if jl.Attr < 0 || jl.Attr >= schema.NumAttrs() {
			return nil, fmt.Errorf("core: lattice attribute %d out of range", jl.Attr)
		}
		card := schema.Attrs[jl.Attr].Card()
		metas := make([]*rules.MetaRule, 0, len(jl.Rules))
		for _, jr := range jl.Rules {
			if len(jr.CPD) != card {
				return nil, fmt.Errorf("core: CPD length %d for attribute %d (card %d)",
					len(jr.CPD), jl.Attr, card)
			}
			var cpdSum float64
			for _, p := range jr.CPD {
				if p < 0 {
					return nil, fmt.Errorf("core: negative CPD entry %v for attribute %d", p, jl.Attr)
				}
				cpdSum += p
			}
			if cpdSum < 0.99 || cpdSum > 1.01 {
				return nil, fmt.Errorf("core: CPD for attribute %d sums to %v", jl.Attr, cpdSum)
			}
			if jr.Weight < 0 || jr.Weight > 1+1e-9 {
				return nil, fmt.Errorf("core: meta-rule weight %v out of [0, 1]", jr.Weight)
			}
			body := relation.NewTuple(schema.NumAttrs())
			for a, v := range jr.Body {
				if a < 0 || a >= schema.NumAttrs() || a == jl.Attr {
					return nil, fmt.Errorf("core: body attribute %d invalid for head %d", a, jl.Attr)
				}
				if v < 0 || v >= schema.Attrs[a].Card() {
					return nil, fmt.Errorf("core: body value %d out of range for attribute %d", v, a)
				}
				body[a] = v
			}
			metas = append(metas, &rules.MetaRule{
				HeadAttr: jl.Attr,
				Body:     body,
				BodySize: body.NumKnown(),
				CPD:      dist.Dist(jr.CPD),
				Weight:   jr.Weight,
				NumRules: jr.NumRules,
			})
		}
		l, err := newMRSL(jl.Attr, card, metas)
		if err != nil {
			return nil, err
		}
		m.Lattices[jl.Attr] = l
	}
	return m, nil
}
