package core

import (
	"strings"
	"testing"
)

func TestLatticeStats(t *testing.T) {
	m, rc := learnPaperExample(t)
	l := m.Lattices[rc.Schema.AttrIndex("age")]
	st := l.Stats()
	if st.Rules != l.Len() {
		t.Errorf("Rules = %d, want %d", st.Rules, l.Len())
	}
	total := 0
	for _, c := range st.RulesPerLevel {
		total += c
	}
	if total != st.Rules {
		t.Errorf("per-level sums to %d, want %d", total, st.Rules)
	}
	if st.RulesPerLevel[0] != 1 {
		t.Errorf("level 0 = %d, want 1 (the top rule)", st.RulesPerLevel[0])
	}
	if st.MaxBodySize < 1 || st.MaxBodySize >= rc.Schema.NumAttrs() {
		t.Errorf("MaxBodySize = %d", st.MaxBodySize)
	}
	if st.AvgWeight <= 0 || st.AvgWeight > 1 {
		t.Errorf("AvgWeight = %v", st.AvgWeight)
	}
	if st.LeafRules < 1 || st.LeafRules >= st.Rules {
		t.Errorf("LeafRules = %d of %d", st.LeafRules, st.Rules)
	}
}

func TestModelStatsAggregates(t *testing.T) {
	m, _ := learnPaperExample(t)
	stats := m.ComputeStats()
	if stats.TotalRules != m.Size() {
		t.Errorf("TotalRules = %d, want %d", stats.TotalRules, m.Size())
	}
	if len(stats.PerAttribute) != len(m.Lattices) {
		t.Errorf("PerAttribute = %d", len(stats.PerAttribute))
	}
	if stats.MaxBodySize < 1 {
		t.Errorf("MaxBodySize = %d", stats.MaxBodySize)
	}
}

func TestDescribeMentionsEveryAttribute(t *testing.T) {
	m, rc := learnPaperExample(t)
	out := m.Describe()
	for _, a := range rc.Schema.Attrs {
		if !strings.Contains(out, a.Name) {
			t.Errorf("Describe missing %q:\n%s", a.Name, out)
		}
	}
	if !strings.Contains(out, "meta-rules over 4 attributes") {
		t.Errorf("Describe header:\n%s", out)
	}
}
