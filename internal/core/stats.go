package core

import (
	"fmt"
	"strings"
)

// LatticeStats summarizes the shape of one attribute's semi-lattice.
type LatticeStats struct {
	// Attr is the head attribute index.
	Attr int
	// Rules is the number of meta-rules.
	Rules int
	// MaxBodySize is the largest body among the rules.
	MaxBodySize int
	// RulesPerLevel[k] counts rules with body size k.
	RulesPerLevel []int
	// AvgWeight is the mean meta-rule support.
	AvgWeight float64
	// LeafRules counts rules that subsume no other rule (the most specific
	// frontier).
	LeafRules int
}

// Stats computes the lattice's structural summary.
func (l *MRSL) Stats() LatticeStats {
	st := LatticeStats{Attr: l.Attr, Rules: l.Len()}
	covered := make([]bool, l.Len()) // rule appears as someone's cover
	var weightSum float64
	for i, m := range l.Rules {
		if m.BodySize > st.MaxBodySize {
			st.MaxBodySize = m.BodySize
		}
		for len(st.RulesPerLevel) <= m.BodySize {
			st.RulesPerLevel = append(st.RulesPerLevel, 0)
		}
		st.RulesPerLevel[m.BodySize]++
		weightSum += m.Weight
		for _, c := range l.Covers(i) {
			covered[c] = true
		}
	}
	if l.Len() > 0 {
		st.AvgWeight = weightSum / float64(l.Len())
	}
	for i := range l.Rules {
		if !covered[i] {
			st.LeafRules++
		}
	}
	return st
}

// ModelStats aggregates per-lattice summaries for a whole model.
type ModelStats struct {
	// TotalRules is the model size (sum over lattices).
	TotalRules int
	// PerAttribute holds one LatticeStats per schema attribute.
	PerAttribute []LatticeStats
	// MaxBodySize is the deepest body over all lattices.
	MaxBodySize int
}

// ComputeStats summarizes the model's structure.
func (m *Model) ComputeStats() ModelStats {
	var out ModelStats
	for _, l := range m.Lattices {
		st := l.Stats()
		out.PerAttribute = append(out.PerAttribute, st)
		out.TotalRules += st.Rules
		if st.MaxBodySize > out.MaxBodySize {
			out.MaxBodySize = st.MaxBodySize
		}
	}
	return out
}

// Describe renders the model summary as an aligned text table.
func (m *Model) Describe() string {
	stats := m.ComputeStats()
	var b strings.Builder
	fmt.Fprintf(&b, "MRSL model: %d meta-rules over %d attributes (trained on %d tuples in %s)\n",
		stats.TotalRules, len(m.Lattices), m.Stats.TrainingSize, m.Stats.BuildTime)
	for _, st := range stats.PerAttribute {
		name := m.Schema.Attrs[st.Attr].Name
		fmt.Fprintf(&b, "  %-12s %5d rules, depth %d, %4d most-specific, avg weight %.3f, per-level %v\n",
			name, st.Rules, st.MaxBodySize, st.LeafRules, st.AvgWeight, st.RulesPerLevel)
	}
	return b.String()
}
