package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relation"
	"repro/internal/rules"
)

// FormatMetaRule renders a meta-rule in the paper's notation, e.g.
// "P(age | edu=HS ∧ inc=50K) = [0.15 0.70 0.15] (W=0.41)".
func FormatMetaRule(s *relation.Schema, m *rules.MetaRule) string {
	head := s.Attrs[m.HeadAttr].Name
	var conds []string
	for a, v := range m.Body {
		if v == relation.Missing {
			continue
		}
		conds = append(conds, fmt.Sprintf("%s=%s", s.Attrs[a].Name, s.Attrs[a].Domain[v]))
	}
	lhs := "P(" + head
	if len(conds) > 0 {
		lhs += " | " + strings.Join(conds, " ∧ ")
	}
	lhs += ")"
	return fmt.Sprintf("%s = %s (W=%.2f)", lhs, m.CPD.String(), m.Weight)
}

// Render draws the semi-lattice level by level (body size 0 at the top,
// as in the paper's Fig. 2), marking each rule's immediate subsumers.
func (l *MRSL) Render(s *relation.Schema) string {
	var b strings.Builder
	fmt.Fprintf(&b, "MRSL for %s (%d meta-rules)\n", s.Attrs[l.Attr].Name, l.Len())
	byLevel := make(map[int][]int)
	var levels []int
	for i, m := range l.Rules {
		if len(byLevel[m.BodySize]) == 0 {
			levels = append(levels, m.BodySize)
		}
		byLevel[m.BodySize] = append(byLevel[m.BodySize], i)
	}
	sort.Ints(levels)
	for _, lvl := range levels {
		fmt.Fprintf(&b, " level %d:\n", lvl)
		for _, i := range byLevel[lvl] {
			fmt.Fprintf(&b, "  %s", FormatMetaRule(s, l.Rules[i]))
			if cov := l.Covers(i); len(cov) > 0 {
				var ups []string
				for _, c := range cov {
					ups = append(ups, bodyLabel(s, l.Rules[c]))
				}
				fmt.Fprintf(&b, "  ≺ {%s}", strings.Join(ups, "; "))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func bodyLabel(s *relation.Schema, m *rules.MetaRule) string {
	if m.BodySize == 0 {
		return "⊤"
	}
	var conds []string
	for a, v := range m.Body {
		if v == relation.Missing {
			continue
		}
		conds = append(conds, fmt.Sprintf("%s=%s", s.Attrs[a].Name, s.Attrs[a].Domain[v]))
	}
	return strings.Join(conds, "∧")
}
