package core

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/relation"
)

// learnPaperExample learns a permissive-threshold model from the complete
// part of the Fig. 1 relation.
func learnPaperExample(t *testing.T) (*Model, *relation.Relation) {
	t.Helper()
	rc, _ := relation.Matchmaking().Split()
	m, err := Learn(rc, Config{SupportThreshold: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	return m, rc
}

func TestLearnBuildsLatticePerAttribute(t *testing.T) {
	m, rc := learnPaperExample(t)
	if len(m.Lattices) != rc.Schema.NumAttrs() {
		t.Fatalf("%d lattices, want %d", len(m.Lattices), rc.Schema.NumAttrs())
	}
	for a, l := range m.Lattices {
		if l.Attr != a {
			t.Errorf("lattice %d has attr %d", a, l.Attr)
		}
		if l.Len() == 0 {
			t.Errorf("lattice %d is empty", a)
		}
		if l.Rules[0].BodySize != 0 {
			t.Errorf("lattice %d does not start with top-level rule", a)
		}
	}
	if m.Size() <= rc.Schema.NumAttrs() {
		t.Errorf("model size %d suspiciously small", m.Size())
	}
	if m.Stats.TrainingSize != 8 {
		t.Errorf("training size = %d, want 8", m.Stats.TrainingSize)
	}
	if m.Stats.BuildTime <= 0 {
		t.Error("build time not recorded")
	}
}

func TestLearnRejectsBadInput(t *testing.T) {
	rc, _ := relation.Matchmaking().Split()
	if _, err := Learn(rc, Config{SupportThreshold: 0}); err == nil {
		t.Error("theta=0 should fail")
	}
	empty := relation.NewRelation(rc.Schema)
	if _, err := Learn(empty, Config{SupportThreshold: 0.1}); err == nil {
		t.Error("empty relation should fail")
	}
}

// TestMatchPaperExample reproduces the Section I-B worked example: for
// t1 = ⟨age=?, edu=HS, inc=50K, nw=500K⟩ the MRSL for age matches five
// meta-rules: P(age), P(age|edu=HS), P(age|inc=50K), P(age|nw=500K), and
// P(age|edu=HS ∧ inc=50K) — provided all those bodies are frequent. With
// the 8-point toy relation and theta=0.01 more combinations are frequent;
// we check that exactly the sub-assignments of the evidence are matched.
func TestMatchPaperExample(t *testing.T) {
	m, rc := learnPaperExample(t)
	missing := relation.Missing
	// age=?, edu=HS, inc=50K, nw=500K
	t1 := relation.Tuple{missing, 0, 0, 1}
	ageIdx := rc.Schema.AttrIndex("age")
	l := m.Lattices[ageIdx]
	matches := l.Match(t1, AllVoters)
	if len(matches) == 0 {
		t.Fatal("no matches")
	}
	for _, mr := range matches {
		// Every matched body must be a sub-assignment of the evidence.
		if !mr.Matches(t1) {
			t.Errorf("matched rule body %v does not apply to %v", mr.Body, t1)
		}
		if mr.Body[ageIdx] != relation.Missing {
			t.Errorf("matched rule body assigns the head attribute: %v", mr.Body)
		}
	}
	// The top-level rule is always among the matches.
	foundTop := false
	for _, mr := range matches {
		if mr.BodySize == 0 {
			foundTop = true
		}
	}
	if !foundTop {
		t.Error("top-level meta-rule not matched")
	}
	// Best voters: most specific only, and none subsumes another.
	best := l.Match(t1, BestVoters)
	if len(best) == 0 || len(best) > len(matches) {
		t.Fatalf("best = %d matches, all = %d", len(best), len(matches))
	}
	for _, a := range best {
		for _, b := range best {
			if a != b && a.Subsumes(b) {
				t.Errorf("best voters contain comparable rules %v ≺ %v", b.Body, a.Body)
			}
		}
	}
}

// TestMatchConsistentWithLinearScan cross-checks the subset-enumeration
// matcher against a brute-force scan on a random model.
func TestMatchConsistentWithLinearScan(t *testing.T) {
	m, rc := learnPaperExample(t)
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		tu := relation.NewTuple(rc.Schema.NumAttrs())
		for i := range tu {
			if rng.Intn(2) == 0 {
				tu[i] = rng.Intn(rc.Schema.Attrs[i].Card())
			}
		}
		for a := 0; a < rc.Schema.NumAttrs(); a++ {
			l := m.Lattices[a]
			got := l.Match(tu, AllVoters)
			var want int
			for _, r := range l.Rules {
				if r.Matches(tu) {
					want++
				}
			}
			if len(got) != want {
				t.Fatalf("attr %d tuple %v: matcher found %d, scan %d", a, tu, len(got), want)
			}
		}
	}
}

// TestBestVotersAreMaximal: on random tuples, every "all" match is either a
// best voter or subsumes (is more general than) some best voter.
func TestBestVotersAreMaximal(t *testing.T) {
	m, rc := learnPaperExample(t)
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 100; trial++ {
		tu := relation.NewTuple(rc.Schema.NumAttrs())
		for i := range tu {
			if rng.Intn(3) > 0 {
				tu[i] = rng.Intn(rc.Schema.Attrs[i].Card())
			}
		}
		l := m.Lattices[0]
		all := l.Match(tu, AllVoters)
		best := l.Match(tu, BestVoters)
		bestSet := make(map[*MetaRulePtr]bool)
		_ = bestSet
		for _, a := range all {
			isBest := false
			for _, b := range best {
				if a == b {
					isBest = true
					break
				}
			}
			if isBest {
				continue
			}
			covered := false
			for _, b := range best {
				if a.Subsumes(b) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("match %v neither best nor more general than a best voter", a.Body)
			}
		}
	}
}

// MetaRulePtr is a local alias used only to keep the test compact.
type MetaRulePtr = struct{}

func TestLookupAndCovers(t *testing.T) {
	m, rc := learnPaperExample(t)
	ageIdx := rc.Schema.AttrIndex("age")
	l := m.Lattices[ageIdx]
	top := l.Lookup(relation.NewTuple(4))
	if top == nil || top.BodySize != 0 {
		t.Fatal("top-level rule not found by Lookup")
	}
	if l.Lookup(relation.Tuple{relation.Missing, 9, 9, 9}) != nil {
		t.Error("bogus body should not be found")
	}
	// Every non-top rule has at least one cover, and covers are strictly
	// more general.
	for i, r := range l.Rules {
		cov := l.Covers(i)
		if r.BodySize == 0 {
			if len(cov) != 0 {
				t.Errorf("top rule has covers %v", cov)
			}
			continue
		}
		if len(cov) == 0 {
			t.Errorf("rule %v has no covers", r.Body)
		}
		for _, c := range cov {
			if !l.Rules[c].Subsumes(r) {
				t.Errorf("cover %v does not subsume %v", l.Rules[c].Body, r.Body)
			}
		}
	}
}

func TestVoterChoiceParsing(t *testing.T) {
	if v, err := ParseVoterChoice("all"); err != nil || v != AllVoters {
		t.Errorf("parse all = %v, %v", v, err)
	}
	if v, err := ParseVoterChoice("best"); err != nil || v != BestVoters {
		t.Errorf("parse best = %v, %v", v, err)
	}
	if _, err := ParseVoterChoice("nope"); err == nil {
		t.Error("bogus choice should fail")
	}
	if AllVoters.String() != "all" || BestVoters.String() != "best" {
		t.Error("String() mismatch")
	}
	if VoterChoice(9).String() == "" {
		t.Error("unknown choice should still render")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m, rc := learnPaperExample(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != m.Size() {
		t.Fatalf("size %d != %d after roundtrip", back.Size(), m.Size())
	}
	if back.Schema.NumAttrs() != rc.Schema.NumAttrs() {
		t.Fatal("schema lost")
	}
	if back.Stats.TrainingSize != m.Stats.TrainingSize {
		t.Error("stats lost")
	}
	// Every original rule must exist with identical CPD and weight.
	for a, l := range m.Lattices {
		bl := back.Lattices[a]
		if bl.Len() != l.Len() {
			t.Fatalf("attr %d: %d rules != %d", a, bl.Len(), l.Len())
		}
		for _, r := range l.Rules {
			br := bl.Lookup(r.Body)
			if br == nil {
				t.Fatalf("attr %d: rule %v lost", a, r.Body)
			}
			if math.Abs(br.Weight-r.Weight) > 1e-12 {
				t.Errorf("attr %d rule %v: weight %v != %v", a, r.Body, br.Weight, r.Weight)
			}
			for i := range r.CPD {
				if math.Abs(br.CPD[i]-r.CPD[i]) > 1e-12 {
					t.Errorf("attr %d rule %v: CPD differs", a, r.Body)
					break
				}
			}
		}
	}
	// Matching behaves identically after reload.
	tu := relation.Tuple{relation.Missing, 0, 0, 1}
	if got, want := len(back.Lattices[0].Match(tu, AllVoters)), len(m.Lattices[0].Match(tu, AllVoters)); got != want {
		t.Errorf("reloaded match count %d != %d", got, want)
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	if _, err := Load(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON should fail")
	}
	if _, err := Load(strings.NewReader(`{"schema":[],"lattices":[]}`)); err == nil {
		t.Error("empty schema should fail")
	}
	if _, err := Load(strings.NewReader(
		`{"schema":[{"name":"a","domain":["x","y"]}],"lattices":[]}`)); err == nil {
		t.Error("missing lattices should fail")
	}
	// CPD length mismatch.
	bad := `{"schema":[{"name":"a","domain":["x","y"]}],
	 "lattices":[{"attr":0,"rules":[{"body":{},"cpd":[1.0],"weight":1}]}]}`
	if _, err := Load(strings.NewReader(bad)); err == nil {
		t.Error("bad CPD length should fail")
	}
	// Body assigning the head attribute.
	bad2 := `{"schema":[{"name":"a","domain":["x","y"]}],
	 "lattices":[{"attr":0,"rules":[{"body":{"0":1},"cpd":[0.5,0.5],"weight":1}]}]}`
	if _, err := Load(strings.NewReader(bad2)); err == nil {
		t.Error("body assigning head should fail")
	}
}

func TestMaxBodySizeLimitsLattice(t *testing.T) {
	rc, _ := relation.Matchmaking().Split()
	m, err := Learn(rc, Config{SupportThreshold: 0.01, MaxBodySize: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range m.Lattices {
		for _, r := range l.Rules {
			if r.BodySize > 1 {
				t.Errorf("rule %v exceeds MaxBodySize", r.Body)
			}
		}
	}
}

func TestRenderMentionsHead(t *testing.T) {
	m, rc := learnPaperExample(t)
	out := m.Lattices[rc.Schema.AttrIndex("age")].Render(rc.Schema)
	if !strings.Contains(out, "MRSL for age") {
		t.Errorf("render output:\n%s", out)
	}
	if !strings.Contains(out, "level 0") || !strings.Contains(out, "level 1") {
		t.Errorf("render lacks levels:\n%s", out)
	}
}

func TestFormatMetaRule(t *testing.T) {
	m, rc := learnPaperExample(t)
	ageIdx := rc.Schema.AttrIndex("age")
	top := m.Lattices[ageIdx].Lookup(relation.NewTuple(4))
	s := FormatMetaRule(rc.Schema, top)
	if !strings.HasPrefix(s, "P(age) = ") {
		t.Errorf("top rule format: %q", s)
	}
	body := relation.NewTuple(4)
	body[rc.Schema.AttrIndex("edu")] = 0
	cond := m.Lattices[ageIdx].Lookup(body)
	if cond == nil {
		t.Fatal("P(age|edu=HS) rule missing")
	}
	cs := FormatMetaRule(rc.Schema, cond)
	if !strings.Contains(cs, "P(age | edu=HS)") {
		t.Errorf("conditional rule format: %q", cs)
	}
}

func TestLatticeAccessor(t *testing.T) {
	m, _ := learnPaperExample(t)
	if _, err := m.Lattice(-1); err == nil {
		t.Error("negative attr should fail")
	}
	if _, err := m.Lattice(99); err == nil {
		t.Error("out-of-range attr should fail")
	}
	l, err := m.Lattice(0)
	if err != nil || l.Attr != 0 {
		t.Errorf("Lattice(0) = %v, %v", l, err)
	}
}

func TestLoadRejectsInvalidProbabilities(t *testing.T) {
	const template = `{"schema":[{"name":"a","domain":["x","y"]}],
	 "lattices":[{"attr":0,"rules":[{"body":{},"cpd":%s,"weight":%s}]}]}`
	cases := []struct {
		name, cpd, weight string
	}{
		{"negative entry", "[-0.5,1.5]", "1"},
		{"sum below 1", "[0.2,0.2]", "1"},
		{"sum above 1", "[0.9,0.9]", "1"},
		{"negative weight", "[0.5,0.5]", "-0.1"},
		{"weight above 1", "[0.5,0.5]", "2"},
	}
	for _, c := range cases {
		src := fmt.Sprintf(template, c.cpd, c.weight)
		if _, err := Load(strings.NewReader(src)); err == nil {
			t.Errorf("%s: Load accepted invalid model", c.name)
		}
	}
}
