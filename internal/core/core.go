// Package core implements the paper's primary contribution: the Meta-Rule
// Semi-Lattice (MRSL) inference ensemble. An MRSL organizes all meta-rules
// with a common head attribute into a partial order under meta-rule
// subsumption (Definitions 2.7-2.9); the MRSL model holds one semi-lattice
// per attribute and is learned from the complete portion of a relation with
// Algorithm 1 (mine frequent itemsets, derive association rules, group them
// into meta-rules, order by subsumption).
package core

import (
	"fmt"
	"slices"
	"sort"
	"time"

	"repro/internal/itemset"
	"repro/internal/relation"
	"repro/internal/rules"
)

// MRSL is the meta-rule semi-lattice of a single head attribute
// (Definition 2.8): all meta-rules predicting that attribute, ordered by
// subsumption. Rules[0] is always the top-level meta-rule with empty body
// (the marginal P(a)), which subsumes every other meta-rule.
type MRSL struct {
	// Attr is the head attribute index within the schema.
	Attr int
	// Card is the head attribute's cardinality.
	Card int
	// Rules holds the meta-rules sorted by (body size, body key).
	Rules []*rules.MetaRule

	// covers[i] lists indices of the immediate subsumers (Hasse-diagram
	// parents) of Rules[i]; computed by ComputeSubsumption.
	covers [][]int
	// children[i] lists the rules Rules[i] immediately covers — the
	// inverse of covers — the downward edges the lattice-native matcher
	// traverses.
	children [][]int32
	// compiled[i] is Rules[i].Body in match-ready form (attribute bitmask
	// plus value array), built once at newMRSL time.
	compiled []rules.CompiledBody
	// maskWords is the fixed attribute-bitmask width shared by all
	// compiled bodies of this lattice.
	maskWords int
	// byBody maps a body assignment key to the rule index.
	byBody map[string]int
}

// newMRSL indexes a sorted meta-rule list into a semi-lattice.
func newMRSL(attr, card int, metas []*rules.MetaRule) (*MRSL, error) {
	sort.Slice(metas, func(i, j int) bool {
		if metas[i].BodySize != metas[j].BodySize {
			return metas[i].BodySize < metas[j].BodySize
		}
		return metas[i].Body.Key() < metas[j].Body.Key()
	})
	l := &MRSL{
		Attr:   attr,
		Card:   card,
		Rules:  metas,
		byBody: make(map[string]int, len(metas)),
	}
	for i, m := range metas {
		k := m.Body.Key()
		if _, dup := l.byBody[k]; dup {
			return nil, fmt.Errorf("core: duplicate meta-rule body %v for attribute %d", m.Body, attr)
		}
		l.byBody[k] = i
	}
	if len(metas) == 0 || metas[0].BodySize != 0 {
		return nil, fmt.Errorf("core: attribute %d lattice lacks a top-level meta-rule", attr)
	}
	l.computeSubsumption()
	l.compile()
	return l, nil
}

// compile builds the lattice-native matching structures: each body in
// match-ready bitmask form, and the downward (child) edges of the Hasse
// diagram, which AppendMatches traverses top-down.
func (l *MRSL) compile() {
	numAttrs := len(l.Rules[0].Body)
	l.maskWords = rules.MaskWords(numAttrs)
	l.compiled = make([]rules.CompiledBody, len(l.Rules))
	l.children = make([][]int32, len(l.Rules))
	for i, m := range l.Rules {
		l.compiled[i] = rules.Compile(m.Body, l.maskWords)
		for _, p := range l.covers[i] {
			l.children[p] = append(l.children[p], int32(i))
		}
	}
}

// computeSubsumption builds the Hasse diagram of the subsumption order:
// covers[i] holds the most specific rules that strictly subsume Rules[i].
// It corresponds to Algorithm 1's ComputeSubsumption step.
func (l *MRSL) computeSubsumption() {
	l.covers = make([][]int, len(l.Rules))
	for i, m := range l.Rules {
		if m.BodySize == 0 {
			continue
		}
		subsumers := l.properSubsetRules(m.Body)
		// Keep the maximal subsumers: those whose body is not a proper
		// subset of another subsumer's body.
		for _, si := range subsumers {
			maximal := true
			for _, sj := range subsumers {
				if si != sj && l.Rules[si].Body.Subsumes(l.Rules[sj].Body) {
					maximal = false
					break
				}
			}
			if maximal {
				l.covers[i] = append(l.covers[i], si)
			}
		}
		sort.Ints(l.covers[i])
	}
}

// properSubsetRules returns indices of rules whose body is a proper subset
// of the given body, found by enumerating body's sub-assignments.
func (l *MRSL) properSubsetRules(body relation.Tuple) []int {
	attrs := body.CompleteAttrs()
	n := len(attrs)
	var out []int
	sub := relation.NewTuple(len(body))
	var buf []byte
	for mask := 0; mask < (1 << n); mask++ {
		if mask == (1<<n)-1 {
			continue // the full body itself
		}
		for i := range sub {
			sub[i] = relation.Missing
		}
		for b := 0; b < n; b++ {
			if mask&(1<<b) != 0 {
				sub[attrs[b]] = body[attrs[b]]
			}
		}
		buf = sub.AppendKey(buf[:0])
		if idx, ok := l.byBody[string(buf)]; ok {
			out = append(out, idx)
		}
	}
	return out
}

// Covers returns the indices of the immediate subsumers of rule i in the
// Hasse diagram (empty for the top-level rule).
func (l *MRSL) Covers(i int) []int { return l.covers[i] }

// Lookup returns the rule with exactly the given body, or nil.
func (l *MRSL) Lookup(body relation.Tuple) *rules.MetaRule {
	if i, ok := l.byBody[body.Key()]; ok {
		return l.Rules[i]
	}
	return nil
}

// VoterChoice selects which matching meta-rules vote during inference
// (Section IV).
type VoterChoice int

const (
	// AllVoters uses every matching meta-rule.
	AllVoters VoterChoice = iota
	// BestVoters uses only the most specific matching meta-rules: matches
	// that do not subsume any other match.
	BestVoters
)

// String returns the paper's name for the choice ("all" / "best").
func (v VoterChoice) String() string {
	switch v {
	case AllVoters:
		return "all"
	case BestVoters:
		return "best"
	default:
		return fmt.Sprintf("VoterChoice(%d)", int(v))
	}
}

// ParseVoterChoice converts "all"/"best" into a VoterChoice.
func ParseVoterChoice(s string) (VoterChoice, error) {
	switch s {
	case "all":
		return AllVoters, nil
	case "best":
		return BestVoters, nil
	}
	return 0, fmt.Errorf("core: unknown voter choice %q", s)
}

// MatchScratch holds the reusable traversal state of lattice-native
// matching. The zero value is ready to use; reusing one scratch across
// calls makes AppendMatches allocation-free in steady state. A scratch is
// not safe for concurrent use, but may be shared across lattices.
type MatchScratch struct {
	tmask   []uint64
	epoch   uint32
	visited []uint32 // visited[i] == epoch: rule i was tested this call
	matched []uint32 // matched[i] == epoch: rule i matched this call
	stack   []int32
}

// begin sizes the scratch for a lattice of n rules and starts a new epoch,
// invalidating all marks from earlier calls without clearing memory.
func (s *MatchScratch) begin(n int) {
	if len(s.visited) < n {
		s.visited = append(s.visited, make([]uint32, n-len(s.visited))...)
		s.matched = append(s.matched, make([]uint32, n-len(s.matched))...)
	}
	s.epoch++
	if s.epoch == 0 { // epoch wrapped: stale marks could alias, wipe them
		clear(s.visited)
		clear(s.matched)
		s.epoch = 1
	}
}

// Match returns the meta-rules applicable to tuple t under the given voter
// choice: rules whose body assignments are all made by t (Algorithm 2's
// GetMatchingMetaRules). The head attribute's own value in t is ignored.
// The top-level rule always matches, so the result is never empty.
//
// Match allocates its result and a fresh scratch; hot paths should use
// AppendMatches with a reused MatchScratch instead.
func (l *MRSL) Match(t relation.Tuple, choice VoterChoice) []*rules.MetaRule {
	var s MatchScratch
	idxs := l.AppendMatches(nil, t, choice, &s)
	out := make([]*rules.MetaRule, len(idxs))
	for i, idx := range idxs {
		out[i] = l.Rules[idx]
	}
	return out
}

// AppendMatches appends the indices (into Rules, ascending) of the
// meta-rules applicable to t to dst and returns the extended slice. It is
// the lattice-native form of Match: a top-down traversal of the Hasse
// diagram that starts at the top-level rule and descends only into
// children whose bodies match t. Matching rules form a downward-closed set
// from the top — a rule's body is a superset of each of its covers' bodies
// — so the traversal visits every match and prunes every non-matching
// branch; the cost is O(matches x cover fanout) body tests instead of the
// 2^k sub-assignment enumeration over t's k evidence attributes.
//
// For BestVoters the most specific matches are read off the cover edges —
// a match is kept iff none of its children matched — replacing the
// O(matches^2) pairwise subsumption scan.
//
// Given a warmed scratch and sufficient dst capacity, AppendMatches does
// not allocate.
func (l *MRSL) AppendMatches(dst []int, t relation.Tuple, choice VoterChoice, s *MatchScratch) []int {
	s.begin(len(l.Rules))
	words := l.maskWords
	if w := rules.MaskWords(len(t)); w > words {
		words = w
	}
	s.tmask = rules.AppendTupleMask(s.tmask[:0], t, words)

	// The top-level rule (index 0, empty body) always matches.
	start := len(dst)
	s.visited[0] = s.epoch
	s.matched[0] = s.epoch
	s.stack = append(s.stack[:0], 0)
	dst = append(dst, 0)
	for len(s.stack) > 0 {
		i := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		for _, c := range l.children[i] {
			if s.visited[c] == s.epoch {
				continue
			}
			s.visited[c] = s.epoch
			if l.compiled[c].MatchedBy(t, s.tmask) {
				s.matched[c] = s.epoch
				s.stack = append(s.stack, c)
				dst = append(dst, int(c))
			}
		}
	}
	slices.Sort(dst[start:])
	if choice != BestVoters {
		return dst
	}
	// Most specific matches: no matched child. Any match j strictly below a
	// match i reaches i through a cover chain of matches, so i has a matched
	// child iff some match is strictly more specific than i.
	out := dst[start:start]
	for _, i := range dst[start:] {
		best := true
		for _, c := range l.children[i] {
			if s.matched[c] == s.epoch {
				best = false
				break
			}
		}
		if best {
			out = append(out, i)
		}
	}
	return dst[:start+len(out)]
}

// Len returns the number of meta-rules in the lattice.
func (l *MRSL) Len() int { return len(l.Rules) }

// Config controls Algorithm 1.
type Config struct {
	// SupportThreshold is theta, the minimum support of a frequent itemset.
	SupportThreshold float64
	// MaxItemsets is the per-round Apriori cutoff; <= 0 selects the paper's
	// default of 1000.
	MaxItemsets int
	// MaxBodySize bounds meta-rule body size; <= 0 means unbounded.
	MaxBodySize int
	// IncludePartial also learns from the complete portions of incomplete
	// tuples (the paper's Section III variant). When set, Learn accepts
	// relations containing incomplete tuples.
	IncludePartial bool
}

// Stats records facts about a learning run.
type Stats struct {
	// BuildTime is the wall-clock duration of Learn.
	BuildTime time.Duration
	// NumItemsets is the number of frequent itemsets mined.
	NumItemsets int
	// Truncated reports whether Apriori stopped early at the MaxItemsets
	// cutoff.
	Truncated bool
	// TrainingSize is the number of complete tuples learned from.
	TrainingSize int
}

// Model is the MRSL model (Definition 2.9): one meta-rule semi-lattice per
// attribute of the schema, plus the configuration and statistics of the
// learning run that produced it.
type Model struct {
	Schema   *relation.Schema
	Lattices []*MRSL
	Config   Config
	Stats    Stats
}

// Learn implements Algorithm 1: mine frequent itemsets from the complete
// relation rc, derive association rules and meta-rules per attribute, and
// assemble one MRSL per attribute. rc must contain only complete tuples.
func Learn(rc *relation.Relation, cfg Config) (*Model, error) {
	start := time.Now()
	maxSize := 0
	if cfg.MaxBodySize > 0 {
		// A meta-rule with body size b needs itemsets of size b+1.
		maxSize = cfg.MaxBodySize + 1
	}
	mined, err := itemset.Mine(rc, itemset.Config{
		SupportThreshold: cfg.SupportThreshold,
		MaxItemsets:      cfg.MaxItemsets,
		MaxSize:          maxSize,
		IncludePartial:   cfg.IncludePartial,
	})
	if err != nil {
		return nil, fmt.Errorf("core: mining itemsets: %w", err)
	}
	m := &Model{
		Schema:   rc.Schema,
		Lattices: make([]*MRSL, rc.Schema.NumAttrs()),
		Config:   cfg,
	}
	for a := 0; a < rc.Schema.NumAttrs(); a++ {
		rs, err := rules.BuildRules(mined, a)
		if err != nil {
			return nil, fmt.Errorf("core: building rules for attribute %d: %w", a, err)
		}
		card := rc.Schema.Attrs[a].Card()
		metas, err := rules.BuildMetaRules(rs, card)
		if err != nil {
			return nil, fmt.Errorf("core: building meta-rules for attribute %d: %w", a, err)
		}
		l, err := newMRSL(a, card, metas)
		if err != nil {
			return nil, err
		}
		m.Lattices[a] = l
	}
	m.Stats = Stats{
		BuildTime:    time.Since(start),
		NumItemsets:  mined.Len(),
		Truncated:    mined.Truncated,
		TrainingSize: rc.Len(),
	}
	return m, nil
}

// Lattice returns the MRSL for the given attribute index.
func (m *Model) Lattice(attr int) (*MRSL, error) {
	if attr < 0 || attr >= len(m.Lattices) {
		return nil, fmt.Errorf("core: attribute %d out of range", attr)
	}
	return m.Lattices[attr], nil
}

// Size returns the total number of meta-rules across all lattices — the
// paper's "model size" metric (Fig. 4(c), Fig. 9).
func (m *Model) Size() int {
	n := 0
	for _, l := range m.Lattices {
		n += l.Len()
	}
	return n
}
