package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/bn"
	"repro/internal/relation"
)

func benchModel(b *testing.B, id string, trainSize int, support float64) (*Model, *bn.Instance, *rand.Rand) {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	top, err := bn.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	inst, err := bn.Instantiate(top, rng)
	if err != nil {
		b.Fatal(err)
	}
	train := inst.SampleRelation(rng, trainSize)
	m, err := Learn(train, Config{SupportThreshold: support})
	if err != nil {
		b.Fatal(err)
	}
	return m, inst, rng
}

// BenchmarkLearn measures Algorithm 1 end to end on a mid-size dataset.
func BenchmarkLearn(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	top, err := bn.ByID("BN9")
	if err != nil {
		b.Fatal(err)
	}
	inst, err := bn.Instantiate(top, rng)
	if err != nil {
		b.Fatal(err)
	}
	train := inst.SampleRelation(rng, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Learn(train, Config{SupportThreshold: 0.005}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatchAll measures the subset-enumeration matcher with all
// voters on full-evidence tuples (the Gibbs hot path before caching).
func BenchmarkMatchAll(b *testing.B) {
	m, inst, rng := benchModel(b, "BN9", 10000, 0.005)
	tuples := make([]relation.Tuple, 64)
	for i := range tuples {
		tu := inst.Sample(rng)
		tu[i%6] = relation.Missing
		tuples[i] = tu
	}
	l := m.Lattices[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = l.Match(tuples[i%len(tuples)], AllVoters)
	}
}

// BenchmarkMatchBest adds the most-specific filtering pass.
func BenchmarkMatchBest(b *testing.B) {
	m, inst, rng := benchModel(b, "BN9", 10000, 0.005)
	tuples := make([]relation.Tuple, 64)
	for i := range tuples {
		tu := inst.Sample(rng)
		tu[i%6] = relation.Missing
		tuples[i] = tu
	}
	l := m.Lattices[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = l.Match(tuples[i%len(tuples)], BestVoters)
	}
}

// BenchmarkSaveLoad measures model persistence round-trips.
func BenchmarkSaveLoad(b *testing.B) {
	m, _, _ := benchModel(b, "BN8", 5000, 0.01)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := Load(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
