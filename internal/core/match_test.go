package core

// Tests and benchmarks for the lattice-native matcher. The seed
// implementation — 2^k sub-assignment enumeration plus a pairwise
// most-specific scan — is kept here as the reference oracle: the property
// tests check the Hasse-diagram traversal agrees with it rule for rule on
// random lattices and tuples, and the benchmarks compare the two at
// several evidence widths.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dist"
	"repro/internal/relation"
	"repro/internal/rules"
)

// refMatchSubset is the seed's matchIndices: enumerate every
// sub-assignment of t's evidence (excluding the head attribute) and look
// each up as a rule body.
func refMatchSubset(l *MRSL, t relation.Tuple) []int {
	evidence := make([]int, 0, len(t))
	for a, v := range t {
		if a != l.Attr && v != relation.Missing {
			evidence = append(evidence, a)
		}
	}
	var out []int
	sub := relation.NewTuple(len(t))
	var buf []byte
	n := len(evidence)
	for mask := 0; mask < (1 << n); mask++ {
		for i := range sub {
			sub[i] = relation.Missing
		}
		for b := 0; b < n; b++ {
			if mask&(1<<b) != 0 {
				sub[evidence[b]] = t[evidence[b]]
			}
		}
		buf = sub.AppendKey(buf[:0])
		if idx, ok := l.byBody[string(buf)]; ok {
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	return out
}

// refMatchScan is the seed's wide-schema fallback: test every rule body
// directly.
func refMatchScan(l *MRSL, t relation.Tuple) []int {
	var out []int
	for i, m := range l.Rules {
		if m.Matches(t) {
			out = append(out, i)
		}
	}
	return out
}

// refMostSpecific is the seed's pairwise most-specific filter.
func refMostSpecific(l *MRSL, idxs []int) []int {
	var out []int
	for _, i := range idxs {
		keep := true
		for _, j := range idxs {
			if i != j && l.Rules[i].Subsumes(l.Rules[j]) {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, i)
		}
	}
	return out
}

// randomLattice builds an MRSL over numAttrs attributes with the given
// cards, from nBodies random bodies (plus the mandatory top-level rule).
func randomLattice(t testing.TB, rng *rand.Rand, attr, numAttrs, nBodies int, cards []int) *MRSL {
	seen := map[string]bool{}
	var metas []*rules.MetaRule
	add := func(body relation.Tuple) {
		k := body.Key()
		if seen[k] {
			return
		}
		seen[k] = true
		metas = append(metas, &rules.MetaRule{
			HeadAttr: attr,
			Body:     body,
			BodySize: body.NumKnown(),
			CPD:      dist.New(cards[attr]),
			Weight:   rng.Float64(),
			NumRules: 1,
		})
	}
	add(relation.NewTuple(numAttrs)) // top-level rule
	for b := 0; b < nBodies; b++ {
		body := relation.NewTuple(numAttrs)
		size := 1 + rng.Intn(numAttrs-1)
		for _, a := range rng.Perm(numAttrs)[:size] {
			if a == attr {
				continue
			}
			body[a] = rng.Intn(cards[a])
		}
		if body.NumKnown() == 0 {
			continue
		}
		add(body)
	}
	l, err := newMRSL(attr, cards[attr], metas)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// randomMatchTuple draws a tuple with a random mix of known and missing
// values (the head attribute may be either).
func randomMatchTuple(rng *rand.Rand, numAttrs int, cards []int) relation.Tuple {
	tu := relation.NewTuple(numAttrs)
	for a := 0; a < numAttrs; a++ {
		if rng.Float64() < 0.7 {
			tu[a] = rng.Intn(cards[a])
		}
	}
	return tu
}

// TestAppendMatchesAgreesWithSubsetEnumeration is the property test: on
// random lattices and tuples, the lattice traversal returns exactly the
// seed's subset-enumeration (and linear-scan) results, for both voter
// choices, in the same order.
func TestAppendMatchesAgreesWithSubsetEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var scratch MatchScratch // shared across lattices on purpose
	for trial := 0; trial < 150; trial++ {
		numAttrs := 3 + rng.Intn(8)
		cards := make([]int, numAttrs)
		for i := range cards {
			cards[i] = 2 + rng.Intn(3)
		}
		attr := rng.Intn(numAttrs)
		l := randomLattice(t, rng, attr, numAttrs, 1+rng.Intn(60), cards)
		for tr := 0; tr < 20; tr++ {
			tu := randomMatchTuple(rng, numAttrs, cards)
			wantAll := refMatchSubset(l, tu)
			if scan := refMatchScan(l, tu); !equalInts(wantAll, scan) {
				t.Fatalf("reference implementations disagree: %v vs %v", wantAll, scan)
			}
			gotAll := l.AppendMatches(nil, tu, AllVoters, &scratch)
			if !equalInts(gotAll, wantAll) {
				t.Fatalf("trial %d: AppendMatches(all) = %v, want %v\nlattice=%d rules, tuple=%v",
					trial, gotAll, wantAll, l.Len(), tu)
			}
			wantBest := refMostSpecific(l, wantAll)
			gotBest := l.AppendMatches(nil, tu, BestVoters, &scratch)
			if !equalInts(gotBest, wantBest) {
				t.Fatalf("trial %d: AppendMatches(best) = %v, want %v\nlattice=%d rules, tuple=%v",
					trial, gotBest, wantBest, l.Len(), tu)
			}
		}
	}
}

// TestMatchAgreesOnLearnedModel runs the same agreement check on a model
// learned from the paper's matchmaking example, rather than synthetic
// lattices.
func TestMatchAgreesOnLearnedModel(t *testing.T) {
	m, rc := learnPaperExample(t)
	rng := rand.New(rand.NewSource(7))
	var scratch MatchScratch
	for _, l := range m.Lattices {
		for trial := 0; trial < 50; trial++ {
			tu := rc.Tuples[rng.Intn(rc.Len())].Clone()
			for a := range tu {
				if rng.Float64() < 0.4 {
					tu[a] = relation.Missing
				}
			}
			wantAll := refMatchSubset(l, tu)
			if got := l.AppendMatches(nil, tu, AllVoters, &scratch); !equalInts(got, wantAll) {
				t.Fatalf("attr %d: all = %v, want %v (tuple %v)", l.Attr, got, wantAll, tu)
			}
			wantBest := refMostSpecific(l, wantAll)
			if got := l.AppendMatches(nil, tu, BestVoters, &scratch); !equalInts(got, wantBest) {
				t.Fatalf("attr %d: best = %v, want %v (tuple %v)", l.Attr, got, wantBest, tu)
			}
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAppendMatchesZeroAlloc pins the allocation-free guarantee of the
// match hot path: with a warmed scratch and adequate destination
// capacity, AppendMatches must not allocate for either voter choice.
func TestAppendMatchesZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	numAttrs := 9
	cards := make([]int, numAttrs)
	for i := range cards {
		cards[i] = 3
	}
	l := randomLattice(t, rng, 0, numAttrs, 80, cards)
	tu := randomMatchTuple(rng, numAttrs, cards)
	var scratch MatchScratch
	dst := l.AppendMatches(nil, tu, AllVoters, &scratch) // warm scratch and dst
	for _, choice := range []VoterChoice{AllVoters, BestVoters} {
		choice := choice
		allocs := testing.AllocsPerRun(200, func() {
			dst = l.AppendMatches(dst[:0], tu, choice, &scratch)
		})
		if allocs != 0 {
			t.Errorf("AppendMatches(%v) allocates %.1f times per call, want 0", choice, allocs)
		}
	}
}

// benchLattice builds a dense-but-realistic lattice over k evidence
// attributes (head attribute 0): every 1-attribute body, every
// 2-attribute body, and a sample of 3-attribute bodies.
func benchLattice(b *testing.B, k int) (*MRSL, relation.Tuple) {
	b.Helper()
	numAttrs := k + 1
	const card = 3
	cards := make([]int, numAttrs)
	for i := range cards {
		cards[i] = card
	}
	rng := rand.New(rand.NewSource(int64(k)))
	seen := map[string]bool{}
	var metas []*rules.MetaRule
	add := func(body relation.Tuple) {
		if k := body.Key(); !seen[k] {
			seen[k] = true
			metas = append(metas, &rules.MetaRule{
				HeadAttr: 0, Body: body, BodySize: body.NumKnown(),
				CPD: dist.New(card), Weight: 1, NumRules: 1,
			})
		}
	}
	add(relation.NewTuple(numAttrs))
	for a := 1; a <= k; a++ {
		for v := 0; v < card; v++ {
			body := relation.NewTuple(numAttrs)
			body[a] = v
			add(body)
		}
	}
	for a := 1; a <= k; a++ {
		for c := a + 1; c <= k; c++ {
			for va := 0; va < card; va++ {
				for vc := 0; vc < card; vc++ {
					body := relation.NewTuple(numAttrs)
					body[a], body[c] = va, vc
					add(body)
				}
			}
		}
	}
	for i := 0; i < 5*k; i++ {
		body := relation.NewTuple(numAttrs)
		for _, a := range rng.Perm(k)[:3] {
			body[a+1] = rng.Intn(card)
		}
		add(body)
	}
	l, err := newMRSL(0, card, metas)
	if err != nil {
		b.Fatal(err)
	}
	tu := relation.NewTuple(numAttrs)
	for a := 1; a <= k; a++ {
		tu[a] = rng.Intn(card)
	}
	return l, tu
}

// BenchmarkMatchLattice measures the Hasse-diagram traversal at several
// evidence widths; BenchmarkMatchSubset measures the seed's 2^k subset
// enumeration on the same lattices and tuples. The traversal's cost
// follows the number of matching rules; the enumeration's doubles with
// every added evidence attribute.
func BenchmarkMatchLattice(b *testing.B) {
	for _, k := range []int{4, 6, 9, 12} {
		l, tu := benchLattice(b, k)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var scratch MatchScratch
			dst := l.AppendMatches(nil, tu, BestVoters, &scratch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = l.AppendMatches(dst[:0], tu, BestVoters, &scratch)
			}
			b.ReportMetric(float64(len(dst)), "matches")
		})
	}
}

func BenchmarkMatchSubset(b *testing.B) {
	for _, k := range []int{4, 6, 9, 12} {
		l, tu := benchLattice(b, k)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var idxs []int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idxs = refMatchSubset(l, tu)
				idxs = refMostSpecific(l, idxs)
			}
			b.ReportMetric(float64(len(idxs)), "matches")
		})
	}
}
