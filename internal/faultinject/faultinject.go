// Package faultinject is the chaos-testing switchboard: named injection
// points compiled into the serving stack that stay completely inert — a
// single atomic load — until a fault spec arms them. The spec comes from
// the MRSL_FAULTS environment variable at process start or from
// Configure in tests, so production binaries carry the hooks at zero
// cost and the chaos harness (make chaos-smoke) can force panics, slow
// writes, cache-eviction storms, and scheduling delays deterministically.
//
// Spec syntax: comma-separated directives
//
//	point=kind[:duration]/every
//
// where point names an injection site (derive.vote, derive.chain,
// derive.prefetch, gibbs.chain, gibbs.sweep, sink.write, cache.storm,
// observe.replay, query.replan), kind is one of
//
//	panic  — panic with a faultinject.Panic value at the site
//	sleep  — block the site for duration (e.g. sleep:2ms)
//	fire   — report true to the site, which carries out its own fault
//	         (e.g. cache.storm invalidates every cache entry)
//
// and every fires the directive on each Nth arrival at the point
// (1 = every time). Example:
//
//	MRSL_FAULTS='derive.vote=panic/50,sink.write=sleep:2ms/10,cache.storm=fire/20'
//
// Arrival counting is per point and atomic, so a given traffic mix hits
// faults deterministically up to goroutine interleaving.
package faultinject

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Panic is the value thrown by panic-kind directives, so recovery sites
// and tests can tell an injected panic from a real one.
type Panic struct {
	// Point is the injection-site name that fired.
	Point string
}

func (p Panic) String() string { return "faultinject: forced panic at " + p.Point }

type directive struct {
	kind  string // "panic", "sleep", "fire"
	dur   time.Duration
	every uint64
	count atomic.Uint64
}

var (
	enabled atomic.Bool
	mu      sync.RWMutex
	points  map[string]*directive
)

func init() {
	if spec := os.Getenv("MRSL_FAULTS"); spec != "" {
		if err := Configure(spec); err != nil {
			fmt.Fprintf(os.Stderr, "faultinject: ignoring MRSL_FAULTS: %v\n", err)
		}
	}
}

// Configure arms the injection points named in spec, replacing any
// previous configuration. An empty spec is equivalent to Disable.
func Configure(spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		Disable()
		return nil
	}
	parsed := make(map[string]*directive)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return fmt.Errorf("faultinject: directive %q is not point=kind[:dur]/every", part)
		}
		action, everyStr, ok := strings.Cut(rest, "/")
		if !ok {
			return fmt.Errorf("faultinject: directive %q misses /every", part)
		}
		every, err := strconv.ParseUint(everyStr, 10, 64)
		if err != nil || every == 0 {
			return fmt.Errorf("faultinject: directive %q has bad period %q", part, everyStr)
		}
		kind, durStr, hasDur := strings.Cut(action, ":")
		d := &directive{kind: kind, every: every}
		switch kind {
		case "panic", "fire":
			if hasDur {
				return fmt.Errorf("faultinject: %s directives take no duration (%q)", kind, part)
			}
		case "sleep":
			if !hasDur {
				return fmt.Errorf("faultinject: sleep directive %q misses :duration", part)
			}
			dur, err := time.ParseDuration(durStr)
			if err != nil || dur <= 0 {
				return fmt.Errorf("faultinject: directive %q has bad duration %q", part, durStr)
			}
			d.dur = dur
		default:
			return fmt.Errorf("faultinject: directive %q has unknown kind %q", part, kind)
		}
		parsed[strings.TrimSpace(name)] = d
	}
	mu.Lock()
	points = parsed
	mu.Unlock()
	enabled.Store(len(parsed) > 0)
	return nil
}

// Disable disarms every injection point; Enabled returns false and every
// site is back to a single atomic load.
func Disable() {
	enabled.Store(false)
	mu.Lock()
	points = nil
	mu.Unlock()
}

// Enabled reports whether any injection point is armed. Sites guard on
// it so the disarmed hot path costs one atomic load.
func Enabled() bool { return enabled.Load() }

// Fire records one arrival at the named point and carries out its armed
// directive if this arrival is the Nth: panic directives panic with a
// Panic value, sleep directives block for their duration, fire
// directives return true so the site performs its own fault. Unarmed
// points and off-period arrivals return false.
func Fire(point string) bool {
	if !enabled.Load() {
		return false
	}
	mu.RLock()
	d := points[point]
	mu.RUnlock()
	if d == nil {
		return false
	}
	if d.count.Add(1)%d.every != 0 {
		return false
	}
	switch d.kind {
	case "panic":
		panic(Panic{Point: point})
	case "sleep":
		time.Sleep(d.dur)
		return true
	}
	return true
}
