package faultinject

import (
	"testing"
	"time"
)

func TestConfigureAndFire(t *testing.T) {
	defer Disable()
	if Enabled() {
		t.Fatal("enabled before Configure")
	}
	if Fire("derive.vote") {
		t.Fatal("disarmed point fired")
	}
	if err := Configure("derive.vote=panic/3, cache.storm=fire/2 ,sink.write=sleep:1ms/1"); err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Fatal("not enabled after Configure")
	}

	// Panic directives fire on every Nth arrival with a typed value.
	fired := 0
	for i := 1; i <= 6; i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					p, ok := r.(Panic)
					if !ok || p.Point != "derive.vote" {
						t.Fatalf("recovered %v, want Panic{derive.vote}", r)
					}
					fired++
				}
			}()
			Fire("derive.vote")
		}()
	}
	if fired != 2 {
		t.Fatalf("panic fired %d times over 6 arrivals at /3, want 2", fired)
	}

	// Fire directives report true on period.
	got := 0
	for i := 0; i < 10; i++ {
		if Fire("cache.storm") {
			got++
		}
	}
	if got != 5 {
		t.Fatalf("fire directive fired %d times over 10 arrivals at /2, want 5", got)
	}

	// Sleep directives block for the configured duration.
	start := time.Now()
	if !Fire("sink.write") {
		t.Fatal("sleep directive did not report firing")
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("sleep directive did not sleep")
	}

	// Unconfigured points stay silent even while armed.
	if Fire("gibbs.chain") {
		t.Fatal("unarmed point fired while others are armed")
	}

	Disable()
	if Enabled() || Fire("derive.vote") {
		t.Fatal("Disable did not disarm")
	}
}

func TestConfigureRejectsBadSpecs(t *testing.T) {
	defer Disable()
	for _, spec := range []string{
		"novalue",
		"p=panic",       // no period
		"p=panic/0",     // zero period
		"p=panic/x",     // bad period
		"p=explode/2",   // unknown kind
		"p=sleep/2",     // sleep without duration
		"p=sleep:zzz/2", // bad duration
		"p=panic:5ms/2", // panic with duration
		"=panic/2",      // empty point
	} {
		if err := Configure(spec); err == nil {
			t.Errorf("Configure(%q) accepted a bad spec", spec)
		}
	}
	// A rejected spec must not leave points half-armed.
	if err := Configure("ok=fire/1"); err != nil {
		t.Fatal(err)
	}
	if err := Configure("bad"); err == nil {
		t.Fatal("bad spec accepted")
	}
	if !Fire("ok") {
		t.Fatal("failed Configure clobbered the previous arming")
	}
	if err := Configure(""); err != nil {
		t.Fatal(err)
	}
	if Enabled() {
		t.Fatal("empty spec did not disable")
	}
}
