package bn

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/relation"
)

func benchInstance(b *testing.B, id string) (*Instance, *rand.Rand) {
	b.Helper()
	rng := rand.New(rand.NewSource(8))
	top, err := ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	inst, err := Instantiate(top, rng)
	if err != nil {
		b.Fatal(err)
	}
	return inst, rng
}

// BenchmarkForwardSample measures the dataset generator's per-tuple cost.
func BenchmarkForwardSample(b *testing.B) {
	for _, id := range []string{"BN8", "BN18", "BN7"} {
		inst, rng := benchInstance(b, id)
		tu := relation.NewTuple(inst.Top.NumAttrs())
		b.Run(id, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				inst.SampleInto(rng, tu)
			}
		})
	}
}

// BenchmarkExactConditional measures the ground-truth oracle per query,
// after the one-time joint-table build.
func BenchmarkExactConditional(b *testing.B) {
	for _, cfg := range []struct {
		id      string
		missing int
	}{
		{"BN8", 2},
		{"BN18", 3},
		{"BN7", 2}, // 518k-entry joint
	} {
		inst, rng := benchInstance(b, cfg.id)
		inst.Joint() // exclude the one-time table build from the loop
		tu := inst.Sample(rng)
		for _, a := range rng.Perm(inst.Top.NumAttrs())[:cfg.missing] {
			tu[a] = relation.Missing
		}
		b.Run(fmt.Sprintf("%s/missing=%d", cfg.id, cfg.missing), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := inst.Conditional(tu); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkJointBuild measures the one-time exact joint construction.
func BenchmarkJointBuild(b *testing.B) {
	for _, id := range []string{"BN8", "BN18", "BN12"} {
		b.Run(id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				inst, _ := benchInstance(b, id)
				_ = inst.Joint()
			}
		})
	}
}
