package bn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/relation"
)

func TestTopologyValidate(t *testing.T) {
	bad := []*Topology{
		{ID: "empty"},
		{ID: "card", Nodes: []Node{{Name: "a", Card: 1}}},
		{ID: "range", Nodes: []Node{{Name: "a", Card: 2, Parents: []int{5}}}},
		{ID: "self", Nodes: []Node{{Name: "a", Card: 2, Parents: []int{0}}}},
		{ID: "dup", Nodes: []Node{
			{Name: "a", Card: 2},
			{Name: "b", Card: 2, Parents: []int{0, 0}},
		}},
		{ID: "cycle", Nodes: []Node{
			{Name: "a", Card: 2, Parents: []int{1}},
			{Name: "b", Card: 2, Parents: []int{0}},
		}},
	}
	for _, top := range bad {
		if err := top.Validate(); err == nil {
			t.Errorf("topology %s should fail validation", top.ID)
		}
	}
	good := Line("ok", []int{2, 3})
	if err := good.Validate(); err != nil {
		t.Errorf("valid topology rejected: %v", err)
	}
}

func TestTopoOrderRespectsParents(t *testing.T) {
	top := Layered("t", []int{2, 2, 2, 2, 2, 2}, 3)
	order, err := top.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, len(order))
	for i, v := range order {
		pos[v] = i
	}
	for c, nd := range top.Nodes {
		for _, p := range nd.Parents {
			if pos[p] >= pos[c] {
				t.Errorf("parent %d ordered after child %d", p, c)
			}
		}
	}
}

// TestTableIMatchesPaper checks every row of the reconstructed catalog
// against the published Table I. AvgCard is allowed rounding slack for the
// two rows (BN2, BN7) where no exact integer cardinality vector exists.
func TestTableIMatchesPaper(t *testing.T) {
	want := []struct {
		id      string
		attrs   int
		avgCard float64
		dom     int
		depth   int
	}{
		{"BN1", 4, 4, 300, 2},
		{"BN2", 5, 4.4, 1400, 3},
		{"BN3", 5, 5.2, 2400, 3},
		{"BN4", 5, 5.2, 2400, 0},
		{"BN5", 5, 5.2, 2400, 2},
		{"BN6", 10, 2, 1024, 4},
		{"BN7", 10, 4, 518400, 4},
		{"BN8", 4, 2, 16, 2},
		{"BN9", 6, 2, 64, 2},
		{"BN10", 6, 4, 4096, 2},
		{"BN11", 6, 6, 46656, 2},
		{"BN12", 6, 8, 262144, 2},
		{"BN13", 6, 2, 64, 6},
		{"BN14", 6, 4, 4096, 6},
		{"BN15", 6, 6, 46656, 6},
		{"BN16", 6, 8, 262144, 6},
		{"BN17", 8, 2, 256, 2},
		{"BN18", 10, 2, 1024, 2},
		{"BN19", 10, 2, 1024, 3},
		{"BN20", 10, 2, 1024, 5},
	}
	rows := TableI()
	if len(rows) != len(want) {
		t.Fatalf("catalog has %d networks, want %d", len(rows), len(want))
	}
	for i, w := range want {
		r := rows[i]
		if r.Network != w.id {
			t.Errorf("row %d: id %s, want %s", i, r.Network, w.id)
		}
		if r.NumAttrs != w.attrs {
			t.Errorf("%s: attrs %d, want %d", w.id, r.NumAttrs, w.attrs)
		}
		if r.DomSize != w.dom {
			t.Errorf("%s: dom %d, want %d", w.id, r.DomSize, w.dom)
		}
		if r.DepthLabel != w.depth {
			t.Errorf("%s: depth %d, want %d", w.id, r.DepthLabel, w.depth)
		}
		if math.Abs(r.AvgCard-w.avgCard) > 0.25 {
			t.Errorf("%s: avg card %.2f, want %.2f +- 0.25", w.id, r.AvgCard, w.avgCard)
		}
	}
}

// TestCatalogDepthConvention: for every catalog network with edges, the
// stored depth label equals the number of nodes on its longest directed
// path; the independent network is labeled 0.
func TestCatalogDepthConvention(t *testing.T) {
	for _, top := range Catalog() {
		if err := top.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", top.ID, err)
		}
		if got := top.LongestPathNodes(); got != top.DepthLabel {
			t.Errorf("%s: longest path %d nodes, label %d", top.ID, got, top.DepthLabel)
		}
	}
}

func TestByID(t *testing.T) {
	top, err := ByID("BN8")
	if err != nil || top.ID != "BN8" {
		t.Errorf("ByID(BN8) = %v, %v", top, err)
	}
	if _, err := ByID("BN99"); err == nil {
		t.Error("ByID(BN99) should fail")
	}
}

func TestInstantiateProducesValidCPTs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, top := range Catalog()[:8] {
		inst, err := Instantiate(top, rng)
		if err != nil {
			t.Fatalf("%s: %v", top.ID, err)
		}
		for v, cpt := range inst.CPTs {
			wantRows := 1
			for _, pc := range cpt.ParentCards {
				wantRows *= pc
			}
			if len(cpt.Rows) != wantRows {
				t.Errorf("%s node %d: %d rows, want %d", top.ID, v, len(cpt.Rows), wantRows)
			}
			for r, row := range cpt.Rows {
				if len(row) != top.Nodes[v].Card {
					t.Errorf("%s node %d row %d: len %d", top.ID, v, r, len(row))
				}
				if !row.IsNormalized(1e-9) || !row.IsPositive() {
					t.Errorf("%s node %d row %d invalid: %v", top.ID, v, r, row)
				}
			}
		}
	}
}

func TestInstantiateRejectsBadAlpha(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := InstantiateAlpha(Line("x", []int{2, 2}), rng, 0); err == nil {
		t.Error("alpha=0 should fail")
	}
}

func TestJointSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, id := range []string{"BN1", "BN4", "BN8", "BN13"} {
		top, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := Instantiate(top, rng)
		if err != nil {
			t.Fatal(err)
		}
		joint := inst.Joint()
		var s float64
		for _, p := range joint {
			s += p
		}
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("%s: joint sums to %v", id, s)
		}
	}
}

// TestForwardSamplingMatchesJoint: empirical frequencies from forward
// sampling converge to the exact joint probabilities.
func TestForwardSamplingMatchesJoint(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	top, err := ByID("BN8") // 4 binary attrs, dom 16
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Instantiate(top, rng)
	if err != nil {
		t.Fatal(err)
	}
	joint := inst.Joint()
	const n = 400000
	counts := make([]float64, len(joint))
	tu := relation.NewTuple(top.NumAttrs())
	for i := 0; i < n; i++ {
		inst.SampleInto(rng, tu)
		idx := 0
		for _, v := range tu {
			idx = idx*2 + v
		}
		counts[idx]++
	}
	for i := range counts {
		got := counts[i] / n
		if math.Abs(got-joint[i]) > 0.01 {
			t.Errorf("outcome %d: empirical %v vs exact %v", i, got, joint[i])
		}
	}
}

// TestConditionalAgainstHandComputation verifies exact conditional inference
// on a two-node chain a -> b with hand-authored CPTs.
func TestConditionalAgainstHandComputation(t *testing.T) {
	top := Line("chain", []int{2, 2})
	inst := &Instance{Top: top, CPTs: make([]CPT, 2)}
	inst.CPTs[0] = CPT{Rows: []dist.Dist{{0.3, 0.7}}}
	inst.CPTs[1] = CPT{
		ParentCards: []int{2},
		Rows: []dist.Dist{
			{0.9, 0.1}, // b | a=0
			{0.2, 0.8}, // b | a=1
		},
	}
	var err error
	inst.order, err = top.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}

	// P(a | b=0) = [0.3*0.9, 0.7*0.2] / 0.41 = [27/41, 14/41]
	tu := relation.Tuple{relation.Missing, 0}
	cond, err := inst.Conditional(tu)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cond.P[0]-27.0/41.0) > 1e-9 || math.Abs(cond.P[1]-14.0/41.0) > 1e-9 {
		t.Errorf("P(a|b=0) = %v, want [27/41 14/41]", cond.P)
	}

	// P(b | a=1) = [0.2, 0.8] straight from the CPT.
	tu2 := relation.Tuple{1, relation.Missing}
	cond2, err := inst.Conditional(tu2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cond2.P[0]-0.2) > 1e-9 || math.Abs(cond2.P[1]-0.8) > 1e-9 {
		t.Errorf("P(b|a=1) = %v, want [0.2 0.8]", cond2.P)
	}

	// Joint conditional with no evidence = full joint.
	tu3 := relation.Tuple{relation.Missing, relation.Missing}
	cond3, err := inst.Conditional(tu3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.27, 0.03, 0.14, 0.56}
	for i := range want {
		if math.Abs(cond3.P[i]-want[i]) > 1e-9 {
			t.Errorf("joint[%d] = %v, want %v", i, cond3.P[i], want[i])
		}
	}
}

func TestConditionalErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	top, _ := ByID("BN8")
	inst, err := Instantiate(top, rng)
	if err != nil {
		t.Fatal(err)
	}
	complete := relation.Tuple{0, 0, 0, 0}
	if _, err := inst.Conditional(complete); err == nil {
		t.Error("conditional of complete tuple should fail")
	}
	if _, err := inst.ConditionalSingle(complete, 0); err == nil {
		t.Error("ConditionalSingle on non-missing attr should fail")
	}
}

// TestConditionalSingleMarginalizesOtherMissing: with two missing
// attributes, ConditionalSingle must return the marginal of the requested
// one under the joint conditional.
func TestConditionalSingleMarginalizesOtherMissing(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	top, _ := ByID("BN8")
	inst, err := Instantiate(top, rng)
	if err != nil {
		t.Fatal(err)
	}
	tu := relation.Tuple{relation.Missing, relation.Missing, 0, 1}
	joint, err := inst.Conditional(tu)
	if err != nil {
		t.Fatal(err)
	}
	wantMarg, err := joint.Marginal(0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := inst.ConditionalSingle(tu, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Abs(got[i]-wantMarg[i]) > 1e-9 {
			t.Errorf("marginal[%d] = %v, want %v", i, got[i], wantMarg[i])
		}
	}
}

// TestConditionalsumsToOne across random evidence patterns and networks.
func TestConditionalSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, id := range []string{"BN1", "BN8", "BN13", "BN19"} {
		top, _ := ByID(id)
		inst, err := Instantiate(top, rng)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			tu := inst.Sample(rng)
			// Hide 1..n-1 random attributes.
			k := 1 + rng.Intn(top.NumAttrs()-1)
			for _, a := range rng.Perm(top.NumAttrs())[:k] {
				tu[a] = relation.Missing
			}
			cond, err := inst.Conditional(tu)
			if err != nil {
				t.Fatal(err)
			}
			if !cond.P.IsNormalized(1e-9) {
				t.Errorf("%s: conditional not normalized (sum=%v)", id, cond.P.Sum())
			}
		}
	}
}

func TestSampleRelationShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	top, _ := ByID("BN9")
	inst, err := Instantiate(top, rng)
	if err != nil {
		t.Fatal(err)
	}
	r := inst.SampleRelation(rng, 50)
	if r.Len() != 50 {
		t.Fatalf("Len = %d, want 50", r.Len())
	}
	for _, tu := range r.Tuples {
		if !tu.IsComplete() {
			t.Fatal("sampled tuple incomplete")
		}
	}
	if r.Schema.NumAttrs() != 6 {
		t.Errorf("schema attrs = %d, want 6", r.Schema.NumAttrs())
	}
}

func TestSchemaLabels(t *testing.T) {
	top := Line("x", []int{2, 3})
	s := top.Schema()
	if s.Attrs[1].Card() != 3 {
		t.Errorf("card = %d, want 3", s.Attrs[1].Card())
	}
	if s.Attrs[1].Domain[2] != "v2" {
		t.Errorf("label = %q, want v2", s.Attrs[1].Domain[2])
	}
}

func TestEdges(t *testing.T) {
	top := Crown("c", uniformCards(4, 2))
	edges := top.Edges()
	want := [][2]int{{0, 2}, {1, 2}, {1, 3}}
	if len(edges) != len(want) {
		t.Fatalf("edges = %v, want %v", edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Errorf("edge %d = %v, want %v", i, edges[i], want[i])
		}
	}
}

func TestRenderMentionsEveryNode(t *testing.T) {
	top, _ := ByID("BN19")
	out := top.Render()
	for _, nd := range top.Nodes {
		if !containsStr(out, nd.Name) {
			t.Errorf("render missing node %s:\n%s", nd.Name, out)
		}
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		indexStr(s, sub) >= 0)
}

func indexStr(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestGammaMoments sanity-checks the Gamma sampler's mean for a few shapes.
func TestGammaMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, shape := range []float64{0.5, 1, 2.5} {
		var sum float64
		const n = 100000
		for i := 0; i < n; i++ {
			sum += gamma(rng, shape)
		}
		mean := sum / n
		if math.Abs(mean-shape) > 0.05*shape+0.02 {
			t.Errorf("gamma(%v) mean = %v, want ~%v", shape, mean, shape)
		}
	}
}

func TestDirichletIsDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		d := dirichlet(rng, 5, 0.5)
		if !d.IsNormalized(1e-9) || !d.IsPositive() {
			t.Fatalf("dirichlet sample invalid: %v", d)
		}
	}
}
