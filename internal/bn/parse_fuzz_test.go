package bn

import (
	"bytes"
	"testing"
)

// FuzzParse guards the topology DSL parser — the framework's external
// network input — against panics, and checks that anything it accepts
// validates and survives a write/parse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"network mynet depth 3\nnode a card 3\nnode b card 2 parents a\nnode c card 4 parents a b\n",
		"# comment\nnetwork n\nnode x card 2\n",
		"network n depth 0\nnode x card 2\nnode y card 2 parents x\n",
		"node x card 2\n",                           // missing network directive
		"network n\n",                               // no nodes
		"network n\nnode x card 1\n",                // cardinality too small
		"network n\nnode x card 2 parents y\n",      // undeclared parent
		"network n\nnode x card 2\nnode x card 2\n", // duplicate node
		"network n depth -1\nnode x card 2\n",       // bad depth
		"network n\nnode x card 2 parents\n",        // empty parents list
		"network a network b\nnode x card 2\n",      // dangling option
		"",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		top, err := ParseTopology(bytes.NewReader(data))
		if err != nil {
			return // rejecting malformed input is fine; panicking is not
		}
		if err := top.Validate(); err != nil {
			t.Fatalf("accepted topology fails validation: %v", err)
		}
		// Names are whitespace-split tokens, so every accepted topology
		// can round-trip through the writer.
		var buf bytes.Buffer
		if err := WriteTopology(&buf, top); err != nil {
			t.Fatalf("WriteTopology of accepted topology: %v", err)
		}
		back, err := ParseTopology(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip rejected: %v\ndsl:\n%s", err, buf.String())
		}
		if back.ID != top.ID || len(back.Nodes) != len(top.Nodes) {
			t.Fatalf("round trip changed topology: %s/%d -> %s/%d",
				top.ID, len(top.Nodes), back.ID, len(back.Nodes))
		}
		for i := range top.Nodes {
			if back.Nodes[i].Name != top.Nodes[i].Name ||
				back.Nodes[i].Card != top.Nodes[i].Card ||
				len(back.Nodes[i].Parents) != len(top.Nodes[i].Parents) {
				t.Fatalf("round trip changed node %d: %+v -> %+v",
					i, top.Nodes[i], back.Nodes[i])
			}
		}
	})
}
