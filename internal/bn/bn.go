// Package bn implements the Bayesian-network substrate of the paper's
// experimental framework (Section VI-A): network topologies over discrete
// variables, random instantiation of conditional probability tables,
// forward sampling to generate datasets, and exact joint/conditional
// inference used as the ground-truth oracle when measuring the accuracy of
// MRSL predictions.
package bn

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/dist"
	"repro/internal/relation"
)

// Node is one random variable of a network topology.
type Node struct {
	// Name is the variable name (also the attribute name in sampled data).
	Name string
	// Card is the number of values in the variable's discrete domain.
	Card int
	// Parents are indices of the node's parents within the topology.
	Parents []int
}

// Topology is the structure of a Bayesian network: a DAG of discrete
// variables. It carries no probabilities; see Instance.
type Topology struct {
	// ID is a short identifier such as "BN8".
	ID string
	// Nodes lists the variables. Parent indices refer into this slice.
	Nodes []Node
	// DepthLabel is the "depth" reported in the paper's Table I. The paper
	// counts the number of nodes on the longest directed path, except that a
	// network with no edges has depth 0.
	DepthLabel int
}

// Validate checks that the topology is a well-formed DAG with positive
// cardinalities and in-range, duplicate-free parent lists.
func (t *Topology) Validate() error {
	n := len(t.Nodes)
	if n == 0 {
		return fmt.Errorf("bn: topology %s has no nodes", t.ID)
	}
	for i, nd := range t.Nodes {
		if nd.Card < 2 {
			return fmt.Errorf("bn: node %s has cardinality %d (< 2)", nd.Name, nd.Card)
		}
		seen := make(map[int]bool)
		for _, p := range nd.Parents {
			if p < 0 || p >= n {
				return fmt.Errorf("bn: node %s has out-of-range parent %d", nd.Name, p)
			}
			if p == i {
				return fmt.Errorf("bn: node %s is its own parent", nd.Name)
			}
			if seen[p] {
				return fmt.Errorf("bn: node %s has duplicate parent %d", nd.Name, p)
			}
			seen[p] = true
		}
	}
	if _, err := t.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns a topological ordering of node indices (parents before
// children) or an error if the graph has a cycle.
func (t *Topology) TopoOrder() ([]int, error) {
	n := len(t.Nodes)
	indeg := make([]int, n)
	children := make([][]int, n)
	for i, nd := range t.Nodes {
		indeg[i] = len(nd.Parents)
		for _, p := range nd.Parents {
			children[p] = append(children[p], i)
		}
	}
	var queue []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	var order []int
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, c := range children[v] {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("bn: topology %s contains a cycle", t.ID)
	}
	return order, nil
}

// NumAttrs returns the number of variables.
func (t *Topology) NumAttrs() int { return len(t.Nodes) }

// AvgCard returns the mean cardinality (the "avg card" column of Table I).
func (t *Topology) AvgCard() float64 {
	s := 0
	for _, nd := range t.Nodes {
		s += nd.Card
	}
	return float64(s) / float64(len(t.Nodes))
}

// DomainSize returns the product of all cardinalities (Table I "dom. size").
func (t *Topology) DomainSize() int {
	p := 1
	for _, nd := range t.Nodes {
		p *= nd.Card
	}
	return p
}

// LongestPathNodes returns the number of nodes on the longest directed path,
// or 0 if the network has no edges (the paper's depth convention).
func (t *Topology) LongestPathNodes() int {
	order, err := t.TopoOrder()
	if err != nil {
		return 0
	}
	depth := make([]int, len(t.Nodes)) // nodes on longest path ending here
	hasEdge := false
	best := 0
	for _, v := range order {
		depth[v] = 1
		for _, p := range t.Nodes[v].Parents {
			hasEdge = true
			if depth[p]+1 > depth[v] {
				depth[v] = depth[p] + 1
			}
		}
		if depth[v] > best {
			best = depth[v]
		}
	}
	if !hasEdge {
		return 0
	}
	return best
}

// Schema converts the topology's variables into a relation schema whose
// domain labels are "v0", "v1", ....
func (t *Topology) Schema() *relation.Schema {
	attrs := make([]relation.Attribute, len(t.Nodes))
	for i, nd := range t.Nodes {
		dom := make([]string, nd.Card)
		for v := range dom {
			dom[v] = fmt.Sprintf("v%d", v)
		}
		attrs[i] = relation.Attribute{Name: nd.Name, Domain: dom}
	}
	return relation.MustSchema(attrs)
}

// CPT is the conditional probability table of one node: one categorical
// distribution per configuration of the node's parents. Parent
// configurations are indexed in mixed radix with the last parent varying
// fastest, matching dist.Joint.
type CPT struct {
	// ParentCards are the cardinalities of the node's parents, in parent
	// list order.
	ParentCards []int
	// Rows holds one distribution per parent configuration.
	Rows []dist.Dist
}

// RowIndex maps parent values (aligned with the node's parent list) to the
// CPT row index.
func (c *CPT) RowIndex(parentVals []int) int {
	idx := 0
	for i, v := range parentVals {
		idx = idx*c.ParentCards[i] + v
	}
	return idx
}

// Instance is a fully parameterized Bayesian network: a topology plus one
// CPT per node. Instances are produced by Instantiate and used both to
// sample datasets and to compute exact ground-truth conditionals.
type Instance struct {
	Top  *Topology
	CPTs []CPT

	order []int // topological order, cached

	jointOnce bool
	joint     []float64 // full joint table, built lazily by Joint()
	strides   []int     // mixed-radix strides for the joint table
}

// Instantiate draws random CPTs for every node of the topology, using rng.
// Each CPT row is sampled from a symmetric Dirichlet(alpha) distribution;
// alpha < 1 yields peaked (informative) rows, alpha = 1 is uniform over the
// simplex. The paper "randomly select[s] probability distributions for each
// random variable in accordance with the topology"; we use alpha = 0.5 by
// default (see InstantiateAlpha) so that sampled networks have learnable
// structure rather than near-uniform noise.
func Instantiate(t *Topology, rng *rand.Rand) (*Instance, error) {
	return InstantiateAlpha(t, rng, 0.5)
}

// InstantiateAlpha is Instantiate with an explicit Dirichlet concentration.
func InstantiateAlpha(t *Topology, rng *rand.Rand, alpha float64) (*Instance, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("bn: alpha must be positive, got %v", alpha)
	}
	order, err := t.TopoOrder()
	if err != nil {
		return nil, err
	}
	inst := &Instance{Top: t, CPTs: make([]CPT, len(t.Nodes)), order: order}
	for i, nd := range t.Nodes {
		pc := make([]int, len(nd.Parents))
		rows := 1
		for j, p := range nd.Parents {
			pc[j] = t.Nodes[p].Card
			rows *= pc[j]
		}
		c := CPT{ParentCards: pc, Rows: make([]dist.Dist, rows)}
		for r := range c.Rows {
			c.Rows[r] = dirichlet(rng, nd.Card, alpha)
		}
		inst.CPTs[i] = c
	}
	return inst, nil
}

// dirichlet draws a length-n sample from a symmetric Dirichlet(alpha) by
// normalizing Gamma(alpha, 1) variates.
func dirichlet(rng *rand.Rand, n int, alpha float64) dist.Dist {
	d := dist.Zeros(n)
	for i := range d {
		d[i] = gamma(rng, alpha)
	}
	return d.Normalize().Smooth(dist.SmoothFloor)
}

// gamma draws from Gamma(shape, 1) using the Marsaglia-Tsang method, with
// the standard boost for shape < 1.
func gamma(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^(1/a)
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gamma(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u == 0 {
			continue
		}
		if math.Log(u) < 0.5*x*x+d-d*v+d*math.Log(v) {
			return d * v
		}
	}
}

// Sample draws one complete tuple by forward sampling (ancestral order).
func (in *Instance) Sample(rng *rand.Rand) relation.Tuple {
	t := relation.NewTuple(len(in.Top.Nodes))
	in.SampleInto(rng, t)
	return t
}

// SampleInto forward-samples into an existing tuple, avoiding allocation.
func (in *Instance) SampleInto(rng *rand.Rand, t relation.Tuple) {
	for _, v := range in.order {
		nd := in.Top.Nodes[v]
		c := &in.CPTs[v]
		row := 0
		for j, p := range nd.Parents {
			row = row*c.ParentCards[j] + t[p]
		}
		t[v] = c.Rows[row].Sample(rng.Float64())
	}
}

// SampleRelation draws n complete tuples into a fresh relation over the
// topology's schema.
func (in *Instance) SampleRelation(rng *rand.Rand, n int) *relation.Relation {
	r := relation.NewRelation(in.Top.Schema())
	r.Tuples = make([]relation.Tuple, n)
	for i := 0; i < n; i++ {
		r.Tuples[i] = in.Sample(rng)
	}
	return r
}

// Joint returns the full joint probability table over all variables,
// computing and caching it on first use. Entry order follows mixed-radix
// indexing with the last variable varying fastest. Table sizes in the
// benchmark catalog stay at or below 518,400 entries (BN7), so exact
// enumeration is cheap enough to serve as the accuracy oracle.
func (in *Instance) Joint() []float64 {
	if in.jointOnce {
		return in.joint
	}
	n := len(in.Top.Nodes)
	in.strides = make([]int, n)
	size := 1
	for i := n - 1; i >= 0; i-- {
		in.strides[i] = size
		size *= in.Top.Nodes[i].Card
	}
	joint := make([]float64, size)
	vals := make([]int, n)
	for idx := 0; idx < size; idx++ {
		rem := idx
		for i := 0; i < n; i++ {
			vals[i] = rem / in.strides[i]
			rem %= in.strides[i]
		}
		p := 1.0
		for v := range in.Top.Nodes {
			nd := in.Top.Nodes[v]
			c := &in.CPTs[v]
			row := 0
			for j, par := range nd.Parents {
				row = row*c.ParentCards[j] + vals[par]
			}
			p *= c.Rows[row][vals[v]]
		}
		joint[idx] = p
	}
	in.joint = joint
	in.jointOnce = true
	return in.joint
}

// Conditional computes the exact conditional distribution over the missing
// attributes of t, given t's known values, by marginalizing the full joint.
// This is the ground truth against which MRSL predictions are scored.
func (in *Instance) Conditional(t relation.Tuple) (*dist.Joint, error) {
	missing := t.MissingAttrs()
	if len(missing) == 0 {
		return nil, fmt.Errorf("bn: tuple %v has no missing attributes", t)
	}
	cards := make([]int, len(missing))
	for i, a := range missing {
		cards[i] = in.Top.Nodes[a].Card
	}
	out, err := dist.NewJoint(missing, cards)
	if err != nil {
		return nil, err
	}
	joint := in.Joint()

	// Iterate only over assignments consistent with the evidence by
	// enumerating the missing attributes' combinations.
	base := 0
	for i, v := range t {
		if v != relation.Missing {
			base += v * in.strides[i]
		}
	}
	mvals := make([]int, len(missing))
	var total float64
	for mi := 0; mi < out.Size(); mi++ {
		out.ValuesInto(mi, mvals)
		idx := base
		for j, a := range missing {
			idx += mvals[j] * in.strides[a]
		}
		p := joint[idx]
		out.P[mi] = p
		total += p
	}
	if total <= 0 {
		// Evidence has zero probability under the network (can happen only
		// through smoothing edge cases); fall back to uniform.
		out.P.Normalize()
		return out, nil
	}
	for i := range out.P {
		out.P[i] /= total
	}
	return out, nil
}

// ConditionalSingle is Conditional specialized to exactly one missing
// attribute; it returns the marginal as a plain Dist.
func (in *Instance) ConditionalSingle(t relation.Tuple, attr int) (dist.Dist, error) {
	if t[attr] != relation.Missing {
		return nil, fmt.Errorf("bn: attribute %d is not missing in %v", attr, t)
	}
	// Hide any other missing attributes by marginalizing them too, then
	// extracting the marginal of attr.
	j, err := in.Conditional(t)
	if err != nil {
		return nil, err
	}
	return j.Marginal(attr)
}

// Edges returns the directed edge list (parent, child) in a stable order.
func (t *Topology) Edges() [][2]int {
	var edges [][2]int
	for c, nd := range t.Nodes {
		for _, p := range nd.Parents {
			edges = append(edges, [2]int{p, c})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	return edges
}
