package bn

import (
	"fmt"
	"strings"
)

// This file encodes the 20 benchmark networks of the paper's Table I.
// The paper publishes only summary statistics (number of attributes,
// average cardinality, domain size, depth) plus small drawings in Fig. 7
// (crown-shaped and line-shaped families). We reconstruct concrete
// topologies whose statistics match the published table:
//
//   - cardinality vectors are chosen so that their product equals the
//     published domain size and their mean is within rounding distance of
//     the published average (see DESIGN.md for the two rows, BN2 and BN7,
//     where no exact integer vector exists);
//   - "depth" is stored verbatim as DepthLabel; generator families follow
//     the convention depth = number of nodes on the longest directed path
//     (0 when the network has no edges).

// Independent returns a topology with n variables and no edges
// (DepthLabel 0, used for BN4).
func Independent(id string, cards []int) *Topology {
	t := &Topology{ID: id, DepthLabel: 0}
	for i, c := range cards {
		t.Nodes = append(t.Nodes, Node{Name: nodeName(i), Card: c})
	}
	return t
}

// Crown returns the crown-shaped (zigzag bipartite) topology of Fig. 7:
// ceil(n/2) top variables, floor(n/2) bottom variables, with bottom i
// having parents top i and top i+1 (when present). Longest directed path:
// two nodes, hence DepthLabel 2. Used for BN8-BN12, BN17, BN18.
func Crown(id string, cards []int) *Topology {
	n := len(cards)
	tops := (n + 1) / 2
	t := &Topology{ID: id, DepthLabel: 2}
	for i, c := range cards {
		t.Nodes = append(t.Nodes, Node{Name: nodeName(i), Card: c})
	}
	for b := 0; b < n-tops; b++ {
		child := tops + b
		t.Nodes[child].Parents = append(t.Nodes[child].Parents, b)
		if b+1 < tops {
			t.Nodes[child].Parents = append(t.Nodes[child].Parents, b+1)
		}
	}
	return t
}

// Line returns the chain topology a0 -> a1 -> ... -> a{n-1} of Fig. 7,
// with DepthLabel n (the paper labels a 6-node chain depth 6). Used for
// BN13-BN16.
func Line(id string, cards []int) *Topology {
	t := &Topology{ID: id, DepthLabel: len(cards)}
	for i, c := range cards {
		nd := Node{Name: nodeName(i), Card: c}
		if i > 0 {
			nd.Parents = []int{i - 1}
		}
		t.Nodes = append(t.Nodes, nd)
	}
	return t
}

// Layered returns a DAG whose n variables are distributed over layers as
// evenly as possible; each non-root variable has one or two parents in the
// previous layer, cycling through that layer so every parent is used.
// DepthLabel = layers. Used for BN19 (3 layers), BN20 (5 layers), and the
// mixed networks BN1-BN3, BN5-BN7.
func Layered(id string, cards []int, layers int) *Topology {
	n := len(cards)
	if layers < 1 {
		layers = 1
	}
	if layers > n {
		layers = n
	}
	t := &Topology{ID: id, DepthLabel: layers}
	for i, c := range cards {
		t.Nodes = append(t.Nodes, Node{Name: nodeName(i), Card: c})
	}
	// Partition node indices into layers, sizes as even as possible with
	// earlier layers taking the remainder.
	sizes := make([]int, layers)
	for i := range sizes {
		sizes[i] = n / layers
	}
	for i := 0; i < n%layers; i++ {
		sizes[i]++
	}
	start := 0
	var prev []int
	for _, sz := range sizes {
		cur := make([]int, sz)
		for i := range cur {
			cur[i] = start + i
		}
		for i, v := range cur {
			if len(prev) == 0 {
				continue
			}
			p1 := prev[i%len(prev)]
			t.Nodes[v].Parents = append(t.Nodes[v].Parents, p1)
			if len(prev) > 1 {
				p2 := prev[(i+1)%len(prev)]
				if p2 != p1 {
					t.Nodes[v].Parents = append(t.Nodes[v].Parents, p2)
				}
			}
		}
		prev = cur
		start += sz
	}
	return t
}

func nodeName(i int) string { return fmt.Sprintf("a%d", i) }

func uniformCards(n, card int) []int {
	cs := make([]int, n)
	for i := range cs {
		cs[i] = card
	}
	return cs
}

// Catalog returns the 20 benchmark topologies BN1..BN20 of Table I, keyed
// 1..20 in the returned slice (index 0 holds BN1).
func Catalog() []*Topology {
	return []*Topology{
		// BN1: 4 attrs, avg card ~4, dom 300 (3*4*5*5), depth 2.
		Layered("BN1", []int{3, 4, 5, 5}, 2),
		// BN2: 5 attrs, avg card ~4.4 (4.6 exact: 2*4*5*5*7=1400), depth 3.
		Layered("BN2", []int{2, 4, 5, 5, 7}, 3),
		// BN3: 5 attrs, avg card 5.2 (2*5*5*6*8=2400), depth 3.
		Layered("BN3", []int{2, 5, 5, 6, 8}, 3),
		// BN4: as BN3 but fully independent, depth 0.
		Independent("BN4", []int{2, 5, 5, 6, 8}),
		// BN5: as BN3 but two layers, depth 2.
		Layered("BN5", []int{2, 5, 5, 6, 8}, 2),
		// BN6: 10 binary attrs, dom 1024, depth 4.
		Layered("BN6", uniformCards(10, 2), 4),
		// BN7: 10 attrs, avg card ~4 (3.8 exact: 3^4 * 4^4 * 5^2 = 518400), depth 4.
		Layered("BN7", []int{3, 3, 3, 3, 4, 4, 4, 4, 5, 5}, 4),
		// BN8-BN12: crown-shaped.
		Crown("BN8", uniformCards(4, 2)),  // dom 16
		Crown("BN9", uniformCards(6, 2)),  // dom 64
		Crown("BN10", uniformCards(6, 4)), // dom 4096
		Crown("BN11", uniformCards(6, 6)), // dom 46656
		Crown("BN12", uniformCards(6, 8)), // dom 262144
		// BN13-BN16: line-shaped, 6 attrs, rising cardinality.
		Line("BN13", uniformCards(6, 2)),
		Line("BN14", uniformCards(6, 4)),
		Line("BN15", uniformCards(6, 6)),
		Line("BN16", uniformCards(6, 8)),
		// BN17, BN18: larger crowns.
		Crown("BN17", uniformCards(8, 2)),  // dom 256
		Crown("BN18", uniformCards(10, 2)), // dom 1024
		// BN19, BN20: 10 binary attrs at increasing depth.
		Layered("BN19", uniformCards(10, 2), 3),
		Layered("BN20", uniformCards(10, 2), 5),
	}
}

// ByID returns the catalog topology with the given ID (e.g. "BN8").
func ByID(id string) (*Topology, error) {
	for _, t := range Catalog() {
		if t.ID == id {
			return t, nil
		}
	}
	return nil, fmt.Errorf("bn: no catalog network %q", id)
}

// TableIRow summarizes a topology in the format of the paper's Table I.
type TableIRow struct {
	Network    string
	NumAttrs   int
	AvgCard    float64
	DomSize    int
	DepthLabel int
}

// TableI returns the catalog summarized as Table I rows.
func TableI() []TableIRow {
	cat := Catalog()
	rows := make([]TableIRow, len(cat))
	for i, t := range cat {
		rows[i] = TableIRow{
			Network:    t.ID,
			NumAttrs:   t.NumAttrs(),
			AvgCard:    t.AvgCard(),
			DomSize:    t.DomainSize(),
			DepthLabel: t.DepthLabel,
		}
	}
	return rows
}

// Render draws the topology as indented ASCII text, listing each node with
// its cardinality and parents. It is the reproduction's stand-in for the
// network drawings of Fig. 7.
func (t *Topology) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d attrs, avg card %.1f, dom %d, depth %d\n",
		t.ID, t.NumAttrs(), t.AvgCard(), t.DomainSize(), t.DepthLabel)
	for _, nd := range t.Nodes {
		if len(nd.Parents) == 0 {
			fmt.Fprintf(&b, "  %s(card=%d)\n", nd.Name, nd.Card)
			continue
		}
		names := make([]string, len(nd.Parents))
		for j, p := range nd.Parents {
			names[j] = t.Nodes[p].Name
		}
		fmt.Fprintf(&b, "  %s(card=%d) <- %s\n", nd.Name, nd.Card, strings.Join(names, ", "))
	}
	return b.String()
}
