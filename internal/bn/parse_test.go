package bn

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestParseTopologyBasic(t *testing.T) {
	src := `
# a three-node chain
network demo depth 3
node a card 3
node b card 2 parents a
node c card 4 parents a b
`
	top, err := ParseTopology(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if top.ID != "demo" || top.DepthLabel != 3 {
		t.Errorf("header = %s depth %d", top.ID, top.DepthLabel)
	}
	if len(top.Nodes) != 3 {
		t.Fatalf("nodes = %d", len(top.Nodes))
	}
	if top.Nodes[2].Card != 4 {
		t.Errorf("c card = %d", top.Nodes[2].Card)
	}
	if len(top.Nodes[2].Parents) != 2 || top.Nodes[2].Parents[0] != 0 || top.Nodes[2].Parents[1] != 1 {
		t.Errorf("c parents = %v", top.Nodes[2].Parents)
	}
}

func TestParseTopologyDefaultsDepth(t *testing.T) {
	src := "network d\nnode a card 2\nnode b card 2 parents a\n"
	top, err := ParseTopology(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if top.DepthLabel != 2 {
		t.Errorf("inferred depth = %d, want 2", top.DepthLabel)
	}
}

func TestParseTopologyErrors(t *testing.T) {
	cases := map[string]string{
		"missing network":  "node a card 2\n",
		"no nodes":         "network x\n",
		"dup network":      "network x\nnetwork y\nnode a card 2\n",
		"bad directive":    "network x\nfoo\n",
		"bad card":         "network x\nnode a card 1\n",
		"card not number":  "network x\nnode a card two\n",
		"dup node":         "network x\nnode a card 2\nnode a card 2\n",
		"forward parent":   "network x\nnode a card 2 parents b\nnode b card 2\n",
		"empty parents":    "network x\nnode a card 2\nnode b card 2 parents\n",
		"node syntax":      "network x\nnode a 2\n",
		"unexpected token": "network x\nnode a card 2 children b\n",
		"dangling option":  "network x depth\nnode a card 2\n",
		"bad option":       "network x speed 9\nnode a card 2\n",
		"bad depth":        "network x depth -1\nnode a card 2\n",
		"network unnamed":  "network\nnode a card 2\n",
	}
	for name, src := range cases {
		if _, err := ParseTopology(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestTopologyRoundTripCatalog: every catalog network survives
// write-then-parse with identical structure.
func TestTopologyRoundTripCatalog(t *testing.T) {
	for _, top := range Catalog() {
		var buf bytes.Buffer
		if err := WriteTopology(&buf, top); err != nil {
			t.Fatalf("%s: %v", top.ID, err)
		}
		back, err := ParseTopology(&buf)
		if err != nil {
			t.Fatalf("%s: %v", top.ID, err)
		}
		if back.ID != top.ID || back.DepthLabel != top.DepthLabel {
			t.Errorf("%s: header changed: %s depth %d", top.ID, back.ID, back.DepthLabel)
		}
		if len(back.Nodes) != len(top.Nodes) {
			t.Fatalf("%s: node count changed", top.ID)
		}
		for i := range top.Nodes {
			a, b := top.Nodes[i], back.Nodes[i]
			if a.Name != b.Name || a.Card != b.Card || len(a.Parents) != len(b.Parents) {
				t.Errorf("%s node %d differs: %+v vs %+v", top.ID, i, a, b)
				continue
			}
			for j := range a.Parents {
				if a.Parents[j] != b.Parents[j] {
					t.Errorf("%s node %d parents differ", top.ID, i)
				}
			}
		}
	}
}

// TestParsedTopologyIsUsable: a parsed custom topology instantiates and
// samples.
func TestParsedTopologyIsUsable(t *testing.T) {
	src := `network custom
node season card 4
node temp card 3 parents season
node sales card 2 parents season temp
`
	top, err := ParseTopology(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	inst, err := Instantiate(top, rng)
	if err != nil {
		t.Fatal(err)
	}
	rel := inst.SampleRelation(rng, 100)
	if rel.Len() != 100 {
		t.Errorf("sampled %d tuples", rel.Len())
	}
	if rel.Schema.AttrIndex("sales") != 2 {
		t.Errorf("schema lost node names: %v", rel.Schema.SortedAttrNames())
	}
}
