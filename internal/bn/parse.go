package bn

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The paper's experimental framework "takes as input a description of the
// topology of a Bayesian network, specifying the number and names of
// random variables, along with a domain of values, and with a set of
// parents" (Section VI-A). This file implements that input format as a
// small line-oriented DSL, so custom topologies can be fed to bngen and
// the experiment runners without recompiling:
//
//	# lines starting with '#' are comments
//	network mynet depth 3
//	node a card 3
//	node b card 2 parents a
//	node c card 4 parents a b
//
// Node order is declaration order; parents must be declared before their
// children (which also guarantees acyclicity).

// ParseTopology reads a topology description.
func ParseTopology(r io.Reader) (*Topology, error) {
	sc := bufio.NewScanner(r)
	top := &Topology{}
	index := make(map[string]int)
	lineNo := 0
	seenNetwork := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "network":
			if seenNetwork {
				return nil, fmt.Errorf("bn: line %d: duplicate network directive", lineNo)
			}
			if len(fields) < 2 {
				return nil, fmt.Errorf("bn: line %d: network needs a name", lineNo)
			}
			seenNetwork = true
			top.ID = fields[1]
			rest := fields[2:]
			for len(rest) > 0 {
				if len(rest) < 2 {
					return nil, fmt.Errorf("bn: line %d: dangling network option %q", lineNo, rest[0])
				}
				switch rest[0] {
				case "depth":
					d, err := strconv.Atoi(rest[1])
					if err != nil || d < 0 {
						return nil, fmt.Errorf("bn: line %d: bad depth %q", lineNo, rest[1])
					}
					top.DepthLabel = d
				default:
					return nil, fmt.Errorf("bn: line %d: unknown network option %q", lineNo, rest[0])
				}
				rest = rest[2:]
			}
		case "node":
			nd, err := parseNode(fields, index, lineNo)
			if err != nil {
				return nil, err
			}
			index[nd.Name] = len(top.Nodes)
			top.Nodes = append(top.Nodes, nd)
		default:
			return nil, fmt.Errorf("bn: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bn: reading topology: %w", err)
	}
	if !seenNetwork {
		return nil, fmt.Errorf("bn: missing network directive")
	}
	if len(top.Nodes) == 0 {
		return nil, fmt.Errorf("bn: network %s declares no nodes", top.ID)
	}
	if top.DepthLabel == 0 {
		top.DepthLabel = top.LongestPathNodes()
	}
	if err := top.Validate(); err != nil {
		return nil, err
	}
	return top, nil
}

func parseNode(fields []string, index map[string]int, lineNo int) (Node, error) {
	// node <name> card <k> [parents p1 p2 ...]
	if len(fields) < 4 || fields[2] != "card" {
		return Node{}, fmt.Errorf("bn: line %d: expected 'node <name> card <k> [parents ...]'", lineNo)
	}
	name := fields[1]
	if _, dup := index[name]; dup {
		return Node{}, fmt.Errorf("bn: line %d: duplicate node %q", lineNo, name)
	}
	card, err := strconv.Atoi(fields[3])
	if err != nil || card < 2 {
		return Node{}, fmt.Errorf("bn: line %d: bad cardinality %q", lineNo, fields[3])
	}
	nd := Node{Name: name, Card: card}
	rest := fields[4:]
	if len(rest) > 0 {
		if rest[0] != "parents" {
			return Node{}, fmt.Errorf("bn: line %d: unexpected token %q", lineNo, rest[0])
		}
		if len(rest) == 1 {
			return Node{}, fmt.Errorf("bn: line %d: parents list is empty", lineNo)
		}
		for _, p := range rest[1:] {
			pi, ok := index[p]
			if !ok {
				return Node{}, fmt.Errorf("bn: line %d: parent %q not declared before %q", lineNo, p, name)
			}
			nd.Parents = append(nd.Parents, pi)
		}
	}
	return nd, nil
}

// WriteTopology renders a topology in the DSL accepted by ParseTopology.
func WriteTopology(w io.Writer, t *Topology) error {
	if _, err := fmt.Fprintf(w, "network %s depth %d\n", t.ID, t.DepthLabel); err != nil {
		return err
	}
	for _, nd := range t.Nodes {
		line := fmt.Sprintf("node %s card %d", nd.Name, nd.Card)
		if len(nd.Parents) > 0 {
			names := make([]string, len(nd.Parents))
			for i, p := range nd.Parents {
				names[i] = t.Nodes[p].Name
			}
			line += " parents " + strings.Join(names, " ")
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
