package baseline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bn"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gibbs"
	"repro/internal/relation"
	"repro/internal/vote"
)

func bestAveraged() vote.Method {
	return vote.Method{Choice: core.BestVoters, Scheme: vote.Averaged}
}

func learned(t *testing.T, id string, n int, seed int64) (*core.Model, *bn.Instance, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	top, err := bn.ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := bn.Instantiate(top, rng)
	if err != nil {
		t.Fatal(err)
	}
	train := inst.SampleRelation(rng, n)
	m, err := core.Learn(train, core.Config{SupportThreshold: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	return m, inst, rng
}

func TestIndependentProductValidDistribution(t *testing.T) {
	m, inst, rng := learned(t, "BN8", 5000, 41)
	for trial := 0; trial < 20; trial++ {
		tu := inst.Sample(rng)
		tu[0] = relation.Missing
		tu[2] = relation.Missing
		j, err := IndependentProduct(m, tu, bestAveraged())
		if err != nil {
			t.Fatal(err)
		}
		if !j.P.IsNormalized(1e-9) || !j.P.IsPositive() {
			t.Errorf("invalid product estimate: %v", j.P)
		}
		if len(j.Attrs) != 2 {
			t.Errorf("estimate covers %v", j.Attrs)
		}
	}
	complete := relation.Tuple{0, 0, 0, 0}
	if _, err := IndependentProduct(m, complete, bestAveraged()); err == nil {
		t.Error("complete tuple should fail")
	}
}

// TestProductMarginalsMatchSingles: marginalizing the product estimate
// recovers the per-attribute voting estimates exactly.
func TestProductMarginalsMatchSingles(t *testing.T) {
	m, inst, rng := learned(t, "BN8", 5000, 42)
	tu := inst.Sample(rng)
	tu[1] = relation.Missing
	tu[3] = relation.Missing
	j, err := IndependentProduct(m, tu, bestAveraged())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []int{1, 3} {
		want, err := vote.Infer(m, tu, a, bestAveraged())
		if err != nil {
			t.Fatal(err)
		}
		got, err := j.Marginal(a)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Errorf("attr %d marginal[%d] = %v, want %v", a, i, got[i], want[i])
			}
		}
	}
}

// TestGibbsBeatsProductOnCorrelatedAttrs: on a chain network whose adjacent
// attributes are strongly dependent, joint Gibbs inference should be at
// least as accurate as the independence-assuming product (the motivating
// claim of Section V).
func TestGibbsBeatsProductOnCorrelatedAttrs(t *testing.T) {
	m, inst, rng := learned(t, "BN13", 20000, 43)
	sampler, err := gibbs.New(m, gibbs.Config{
		Samples: 3000, BurnIn: 100, Method: bestAveraged(), Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var klProd, klGibbs float64
	const trials = 15
	for i := 0; i < trials; i++ {
		tu := inst.Sample(rng)
		// Hide two adjacent attributes (strong chain correlation).
		a := rng.Intn(5)
		tu[a] = relation.Missing
		tu[a+1] = relation.Missing
		truth, err := inst.Conditional(tu)
		if err != nil {
			t.Fatal(err)
		}
		prod, err := IndependentProduct(m, tu, bestAveraged())
		if err != nil {
			t.Fatal(err)
		}
		gj, err := sampler.InferTuple(tu)
		if err != nil {
			t.Fatal(err)
		}
		kp, err := dist.KLJoint(truth, prod)
		if err != nil {
			t.Fatal(err)
		}
		kg, err := dist.KLJoint(truth, gj)
		if err != nil {
			t.Fatal(err)
		}
		klProd += kp
		klGibbs += kg
	}
	klProd /= trials
	klGibbs /= trials
	t.Logf("avg KL: product=%v gibbs=%v", klProd, klGibbs)
	if klGibbs > klProd+0.05 {
		t.Errorf("Gibbs (%v) clearly worse than independent product (%v)", klGibbs, klProd)
	}
}

func TestRandomGuessTop1(t *testing.T) {
	s := relation.MatchmakingSchema()
	m := relation.Missing
	tu := relation.Tuple{m, m, 0, 0} // age (3) x edu (3)
	p, err := RandomGuessTop1(s, tu)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-1.0/9) > 1e-12 {
		t.Errorf("random guess = %v, want 1/9", p)
	}
	if _, err := RandomGuessTop1(s, relation.Tuple{0, 0, 0, 0}); err == nil {
		t.Error("complete tuple should fail")
	}
}

func TestOracleMatchesInstance(t *testing.T) {
	_, inst, rng := learned(t, "BN8", 500, 44)
	o := &Oracle{Inst: inst}
	tu := inst.Sample(rng)
	tu[0] = relation.Missing
	single, err := o.InferSingle(tu, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := inst.ConditionalSingle(tu, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if single[i] != want[i] {
			t.Errorf("oracle differs from instance at %d", i)
		}
	}
	tu[1] = relation.Missing
	joint, err := o.InferJoint(tu)
	if err != nil {
		t.Fatal(err)
	}
	if len(joint.Attrs) != 2 {
		t.Errorf("oracle joint over %v", joint.Attrs)
	}
}
