package baseline

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/relation"
	"repro/internal/vote"
)

// IterativeImputer is a simplified ERACER-style comparator (Mayfield,
// Neville, Prabhakar; SIGMOD 2010 — the related work the paper plans to
// compare against): missing values are imputed by iterated conditional
// modes over the same local CPD estimates the MRSL provides. Each round
// re-infers every missing cell conditioned on the current imputations of
// the other cells and commits the most probable value; rounds repeat until
// a fixpoint or MaxRounds. Unlike Gibbs sampling it produces point
// estimates, not distributions — exactly the prediction-accuracy focus the
// paper attributes to ERACER.
type IterativeImputer struct {
	Model  *core.Model
	Method vote.Method
	// MaxRounds bounds the fixpoint iteration; <= 0 selects 10.
	MaxRounds int
}

// ImputeResult reports an imputation run.
type ImputeResult struct {
	// Tuples are the completed tuples, aligned with the input relation.
	Tuples []relation.Tuple
	// Rounds is the number of refinement rounds executed.
	Rounds int
	// Converged reports whether a fixpoint was reached before MaxRounds.
	Converged bool
	// FinalDists holds the last-round CPD for each imputed cell, keyed by
	// tuple index then attribute.
	FinalDists map[int]map[int]dist.Dist
}

// Impute completes every incomplete tuple of rel.
func (ii *IterativeImputer) Impute(rel *relation.Relation) (*ImputeResult, error) {
	if ii.Model == nil {
		return nil, fmt.Errorf("baseline: nil model")
	}
	maxRounds := ii.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 10
	}

	out := &ImputeResult{
		Tuples:     make([]relation.Tuple, rel.Len()),
		FinalDists: make(map[int]map[int]dist.Dist),
	}
	// Working states: incomplete tuples keep their missing markers in
	// `holes`; `state` carries current imputations.
	states := make([]relation.Tuple, rel.Len())
	holes := make([][]int, rel.Len())
	for i, t := range rel.Tuples {
		states[i] = t.Clone()
		holes[i] = t.MissingAttrs()
	}

	// Round 0: initialize each hole from the evidence of known values
	// only (other holes stay hidden).
	for i, t := range rel.Tuples {
		for _, a := range holes[i] {
			d, err := vote.Infer(ii.Model, t, a, ii.Method)
			if err != nil {
				return nil, err
			}
			states[i][a] = d.ArgMax()
		}
	}

	// Refinement rounds: re-infer each hole with all other cells (imputed
	// included) as evidence; commit the mode.
	scratch := make(relation.Tuple, rel.Schema.NumAttrs())
	for round := 1; round <= maxRounds; round++ {
		changed := false
		for i := range states {
			for _, a := range holes[i] {
				copy(scratch, states[i])
				scratch[a] = relation.Missing
				d, err := vote.Infer(ii.Model, scratch, a, ii.Method)
				if err != nil {
					return nil, err
				}
				if out.FinalDists[i] == nil {
					out.FinalDists[i] = make(map[int]dist.Dist)
				}
				out.FinalDists[i][a] = d
				if v := d.ArgMax(); v != states[i][a] {
					states[i][a] = v
					changed = true
				}
			}
		}
		out.Rounds = round
		if !changed {
			out.Converged = true
			break
		}
	}
	copy(out.Tuples, states)
	return out, nil
}
