// Package baseline implements the comparison points used in the paper's
// evaluation and discussion: the independence-assuming product estimator
// that Section V argues against, a random-guess floor for top-1 accuracy,
// and the exact-Bayesian-network oracle that upper-bounds achievable
// accuracy.
package baseline

import (
	"fmt"

	"repro/internal/bn"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/relation"
	"repro/internal/vote"
)

// IndependentProduct estimates the joint distribution over the missing
// attributes of t as the product of independently inferred per-attribute
// CPDs: P(a1, a2 | e) ≈ P(a1 | e) × P(a2 | e). The paper (Section V) warns
// this "would rely on independence assumptions that are not warranted";
// it is the baseline against which Gibbs-based joint inference is judged.
func IndependentProduct(m *core.Model, t relation.Tuple, method vote.Method) (*dist.Joint, error) {
	missing := t.MissingAttrs()
	if len(missing) == 0 {
		return nil, fmt.Errorf("baseline: tuple %v has no missing attributes", t)
	}
	marginals, err := vote.InferAll(m, t, method)
	if err != nil {
		return nil, err
	}
	cards := make([]int, len(missing))
	for i, a := range missing {
		cards[i] = m.Schema.Attrs[a].Card()
	}
	j, err := dist.NewJoint(missing, cards)
	if err != nil {
		return nil, err
	}
	vals := make([]int, len(missing))
	for idx := range j.P {
		j.ValuesInto(idx, vals)
		p := 1.0
		for k, a := range missing {
			p *= marginals[a][vals[k]]
		}
		j.P[idx] = p
	}
	j.Normalize()
	return j, nil
}

// RandomGuessTop1 returns the probability of guessing the most probable
// combination by chance: one over the size of the Cartesian product of the
// missing attributes' domains. The paper cites this floor when interpreting
// top-1 accuracy (e.g. "40% correct top-1 guesses, as compared to 3% for
// random guessing").
func RandomGuessTop1(s *relation.Schema, t relation.Tuple) (float64, error) {
	n := 1
	missing := t.MissingAttrs()
	if len(missing) == 0 {
		return 0, fmt.Errorf("baseline: tuple %v has no missing attributes", t)
	}
	for _, a := range missing {
		n *= s.Attrs[a].Card()
	}
	return 1 / float64(n), nil
}

// Oracle wraps the generating Bayesian network as an inference method: it
// answers with the exact conditional distribution. No learned model can
// beat it in expectation; experiments use it to normalize accuracy.
type Oracle struct {
	Inst *bn.Instance
}

// InferSingle returns the exact conditional distribution of attr given t's
// evidence (marginalizing any other missing attributes).
func (o *Oracle) InferSingle(t relation.Tuple, attr int) (dist.Dist, error) {
	return o.Inst.ConditionalSingle(t, attr)
}

// InferJoint returns the exact joint conditional over all of t's missing
// attributes.
func (o *Oracle) InferJoint(t relation.Tuple) (*dist.Joint, error) {
	return o.Inst.Conditional(t)
}
