package baseline

import (
	"testing"

	"repro/internal/relation"
)

func TestIterativeImputerValidation(t *testing.T) {
	ii := &IterativeImputer{}
	rel := relation.NewRelation(relation.MatchmakingSchema())
	if _, err := ii.Impute(rel); err == nil {
		t.Error("nil model should fail")
	}
}

func TestIterativeImputerCompletesEverything(t *testing.T) {
	m, inst, rng := learned(t, "BN9", 8000, 91)
	rel := relation.NewRelation(inst.Top.Schema())
	truth := make([]relation.Tuple, 0, 100)
	for i := 0; i < 100; i++ {
		tu := inst.Sample(rng)
		truth = append(truth, tu.Clone())
		k := rng.Intn(3) // 0..2 holes
		for _, a := range rng.Perm(6)[:k] {
			tu[a] = relation.Missing
		}
		if err := rel.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	ii := &IterativeImputer{Model: m, Method: bestAveraged()}
	res, err := ii.Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != rel.Len() {
		t.Fatalf("tuples = %d, want %d", len(res.Tuples), rel.Len())
	}
	var holes, correct int
	for i, tu := range res.Tuples {
		if !tu.IsComplete() {
			t.Fatalf("tuple %d still incomplete: %v", i, tu)
		}
		// Complete inputs are untouched.
		if rel.Tuples[i].IsComplete() && !tu.Equal(rel.Tuples[i]) {
			t.Fatalf("complete tuple %d was modified", i)
		}
		for a, v := range rel.Tuples[i] {
			if v != relation.Missing {
				continue
			}
			holes++
			if tu[a] == truth[i][a] {
				correct++
			}
		}
	}
	if holes == 0 {
		t.Fatal("fixture produced no holes")
	}
	// Binary attributes: random guessing gets ~50%; require clearly better.
	if acc := float64(correct) / float64(holes); acc < 0.6 {
		t.Errorf("imputation accuracy %.2f over %d holes; want > 0.6", acc, holes)
	}
	if res.Rounds < 1 {
		t.Errorf("rounds = %d", res.Rounds)
	}
}

func TestIterativeImputerConverges(t *testing.T) {
	m, inst, rng := learned(t, "BN8", 5000, 92)
	rel := relation.NewRelation(inst.Top.Schema())
	for i := 0; i < 30; i++ {
		tu := inst.Sample(rng)
		tu[rng.Intn(4)] = relation.Missing
		if err := rel.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	ii := &IterativeImputer{Model: m, Method: bestAveraged(), MaxRounds: 20}
	res, err := ii.Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("no fixpoint within %d rounds", res.Rounds)
	}
	// Final distributions exist for every hole.
	for i, tu := range rel.Tuples {
		for _, a := range tu.MissingAttrs() {
			d, ok := res.FinalDists[i][a]
			if !ok {
				t.Fatalf("no final CPD for tuple %d attr %d", i, a)
			}
			if !d.IsNormalized(1e-9) {
				t.Errorf("final CPD not normalized")
			}
		}
	}
}

// TestIterativeRefinementHelps: on a chain network where adjacent holes
// inform each other, refinement rounds must not hurt accuracy relative to
// the round-0 initialization.
func TestIterativeRefinementNotWorse(t *testing.T) {
	m, inst, rng := learned(t, "BN13", 10000, 93)
	rel := relation.NewRelation(inst.Top.Schema())
	truth := make([]relation.Tuple, 0, 200)
	for i := 0; i < 200; i++ {
		tu := inst.Sample(rng)
		truth = append(truth, tu.Clone())
		a := rng.Intn(5)
		tu[a] = relation.Missing
		tu[a+1] = relation.Missing
		if err := rel.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	score := func(rounds int) float64 {
		ii := &IterativeImputer{Model: m, Method: bestAveraged(), MaxRounds: rounds}
		res, err := ii.Impute(rel)
		if err != nil {
			t.Fatal(err)
		}
		var holes, correct int
		for i := range res.Tuples {
			for a, v := range rel.Tuples[i] {
				if v != relation.Missing {
					continue
				}
				holes++
				if res.Tuples[i][a] == truth[i][a] {
					correct++
				}
			}
		}
		return float64(correct) / float64(holes)
	}
	one := score(1)
	many := score(10)
	if many < one-0.05 {
		t.Errorf("refinement hurt accuracy: %v -> %v", one, many)
	}
}
