// Package clockcache provides a size-bounded, string-keyed map with CLOCK
// (second-chance) eviction — the bounding primitive behind the engine's
// memoization caches. Entries get a reference bit on every hit; when the
// map is full, a clock hand sweeps the slots, clearing reference bits and
// evicting the first unreferenced entry it finds. That approximates LRU at
// O(1) amortized cost with no per-access list maintenance, which keeps the
// hit path cheap enough for inference inner loops.
//
// A Map is NOT safe for concurrent use; callers provide locking (the
// derivation engine probes under its own mutex, the CPD cache shards and
// locks per shard). Get probes with a []byte key so hot paths can reuse a
// scratch buffer — the compiler elides the string conversion inside the
// map index expression, so a hit performs no allocation.
package clockcache

// Map is a bounded string-keyed map with CLOCK eviction. The zero Map is
// not usable; construct with New.
//
// Entries optionally carry a caller-chosen tag (an epoch, a version): a
// tagged lookup treats a tag mismatch as proof the entry is stale,
// removes it, and reports a miss. Together with Invalidate this gives
// callers exact invalidation — eager when the invalidating event names
// the key, lazy when only the reader knows the current epoch.
type Map[V any] struct {
	cap           int
	pos           map[string]int
	keys          []string
	vals          []V
	ref           []bool
	tags          []uint64
	hand          int
	evictions     int64
	invalidations int64
	// evictable, when non-nil, guards slots from eviction (e.g. in-flight
	// single-flight entries the computing goroutine will still write).
	evictable func(V) bool
}

// New returns a map evicting beyond capacity entries; capacity <= 0 means
// unbounded (a plain map with no eviction). evictable, when non-nil,
// marks which values may be dropped; if a full sweep finds no evictable
// slot the map grows past its capacity rather than stall.
func New[V any](capacity int, evictable func(V) bool) *Map[V] {
	// The map is deliberately not pre-sized to capacity: caches are often
	// constructed with large caps and filled far below them, and the map
	// grows on demand anyway.
	return &Map[V]{cap: capacity, pos: make(map[string]int), evictable: evictable}
}

// Get returns the value stored under key and marks it recently used. The
// []byte key is not retained; a hit does not allocate.
func (m *Map[V]) Get(key []byte) (V, bool) {
	i, ok := m.pos[string(key)]
	if !ok {
		var zero V
		return zero, false
	}
	m.ref[i] = true
	return m.vals[i], true
}

// GetString is Get with a string key.
func (m *Map[V]) GetString(key string) (V, bool) {
	i, ok := m.pos[key]
	if !ok {
		var zero V
		return zero, false
	}
	m.ref[i] = true
	return m.vals[i], true
}

// Put stores v under key (copying the byte key), evicting one entry via
// the clock sweep when the map is at capacity.
func (m *Map[V]) Put(key []byte, v V) { m.PutString(string(key), v) }

// PutString is Put with a string key.
func (m *Map[V]) PutString(key string, v V) { m.putString(key, v, 0) }

func (m *Map[V]) putString(key string, v V, tag uint64) {
	if i, ok := m.pos[key]; ok {
		m.vals[i] = v
		m.ref[i] = true
		m.tags[i] = tag
		return
	}
	if m.cap > 0 && len(m.keys) >= m.cap {
		n := len(m.keys)
		// Two sweeps suffice when every slot is evictable: the first pass
		// clears reference bits, the second finds a victim. Unevictable
		// slots can exhaust the sweep; grow past capacity rather than spin.
		for scanned := 0; scanned < 2*n; scanned++ {
			h := m.hand
			m.hand++
			if m.hand == n {
				m.hand = 0
			}
			if m.evictable != nil && !m.evictable(m.vals[h]) {
				continue
			}
			if m.ref[h] {
				m.ref[h] = false
				continue
			}
			delete(m.pos, m.keys[h])
			m.evictions++
			m.keys[h] = key
			m.vals[h] = v
			m.ref[h] = true
			m.tags[h] = tag
			m.pos[key] = h
			return
		}
	}
	m.pos[key] = len(m.keys)
	m.keys = append(m.keys, key)
	m.vals = append(m.vals, v)
	m.ref = append(m.ref, true)
	m.tags = append(m.tags, tag)
}

// PutTagged stores v under key with an epoch tag. A later GetTagged with
// a different tag treats the entry as invalidated. Untagged Put stores
// tag 0, so mixing tagged and untagged access on one key is equivalent to
// tagging with epoch 0.
func (m *Map[V]) PutTagged(key string, v V, tag uint64) { m.putString(key, v, tag) }

// GetTagged returns the value stored under key if its tag equals tag. A
// present entry with a different tag is stale by definition — it was
// written before the epoch advanced — so GetTagged removes it, counts an
// invalidation, and reports a miss. This is the lazy half of exact
// invalidation: even if the eager Invalidate call was skipped (or raced),
// a stale entry can never be served.
func (m *Map[V]) GetTagged(key string, tag uint64) (V, bool) {
	var zero V
	i, ok := m.pos[key]
	if !ok {
		return zero, false
	}
	if m.tags[i] != tag {
		m.remove(i)
		m.invalidations++
		return zero, false
	}
	m.ref[i] = true
	return m.vals[i], true
}

// Invalidate removes the entry stored under key, reporting whether one
// was present. Unlike eviction, invalidation is a correctness event — the
// entry's value no longer reflects the world — and is counted separately.
func (m *Map[V]) Invalidate(key string) bool {
	i, ok := m.pos[key]
	if !ok {
		return false
	}
	m.remove(i)
	m.invalidations++
	return true
}

// remove deletes slot i by moving the last slot into the hole. The hand
// is reset into range if it walked off the shrunk slot array; CLOCK is an
// approximation, so the small second-chance perturbation is harmless.
func (m *Map[V]) remove(i int) {
	delete(m.pos, m.keys[i])
	last := len(m.keys) - 1
	if i != last {
		m.keys[i] = m.keys[last]
		m.vals[i] = m.vals[last]
		m.ref[i] = m.ref[last]
		m.tags[i] = m.tags[last]
		m.pos[m.keys[i]] = i
	}
	var zero V
	m.keys[last] = ""
	m.vals[last] = zero
	m.ref[last] = false
	m.tags[last] = 0
	m.keys = m.keys[:last]
	m.vals = m.vals[:last]
	m.ref = m.ref[:last]
	m.tags = m.tags[:last]
	if m.hand >= last {
		m.hand = 0
	}
}

// Len returns the number of stored entries.
func (m *Map[V]) Len() int { return len(m.keys) }

// Cap returns the configured capacity (<= 0: unbounded).
func (m *Map[V]) Cap() int { return m.cap }

// Evictions returns the number of entries evicted over the map's lifetime.
func (m *Map[V]) Evictions() int64 { return m.evictions }

// Invalidations returns the number of entries removed for correctness
// (explicit Invalidate calls plus tag-mismatch removals in GetTagged)
// over the map's lifetime. Disjoint from Evictions, which counts
// capacity-pressure drops.
func (m *Map[V]) Invalidations() int64 { return m.invalidations }

// Range calls f for every entry until f returns false. Iteration order is
// slot order, not insertion order.
func (m *Map[V]) Range(f func(key string, v V) bool) {
	for i, k := range m.keys {
		if !f(k, m.vals[i]) {
			return
		}
	}
}
