// Package clockcache provides a size-bounded, string-keyed map with CLOCK
// (second-chance) eviction — the bounding primitive behind the engine's
// memoization caches. Entries get a reference bit on every hit; when the
// map is full, a clock hand sweeps the slots, clearing reference bits and
// evicting the first unreferenced entry it finds. That approximates LRU at
// O(1) amortized cost with no per-access list maintenance, which keeps the
// hit path cheap enough for inference inner loops.
//
// A Map is NOT safe for concurrent use; callers provide locking (the
// derivation engine probes under its own mutex, the CPD cache shards and
// locks per shard). Get probes with a []byte key so hot paths can reuse a
// scratch buffer — the compiler elides the string conversion inside the
// map index expression, so a hit performs no allocation.
package clockcache

// Map is a bounded string-keyed map with CLOCK eviction. The zero Map is
// not usable; construct with New.
type Map[V any] struct {
	cap       int
	pos       map[string]int
	keys      []string
	vals      []V
	ref       []bool
	hand      int
	evictions int64
	// evictable, when non-nil, guards slots from eviction (e.g. in-flight
	// single-flight entries the computing goroutine will still write).
	evictable func(V) bool
}

// New returns a map evicting beyond capacity entries; capacity <= 0 means
// unbounded (a plain map with no eviction). evictable, when non-nil,
// marks which values may be dropped; if a full sweep finds no evictable
// slot the map grows past its capacity rather than stall.
func New[V any](capacity int, evictable func(V) bool) *Map[V] {
	// The map is deliberately not pre-sized to capacity: caches are often
	// constructed with large caps and filled far below them, and the map
	// grows on demand anyway.
	return &Map[V]{cap: capacity, pos: make(map[string]int), evictable: evictable}
}

// Get returns the value stored under key and marks it recently used. The
// []byte key is not retained; a hit does not allocate.
func (m *Map[V]) Get(key []byte) (V, bool) {
	i, ok := m.pos[string(key)]
	if !ok {
		var zero V
		return zero, false
	}
	m.ref[i] = true
	return m.vals[i], true
}

// GetString is Get with a string key.
func (m *Map[V]) GetString(key string) (V, bool) {
	i, ok := m.pos[key]
	if !ok {
		var zero V
		return zero, false
	}
	m.ref[i] = true
	return m.vals[i], true
}

// Put stores v under key (copying the byte key), evicting one entry via
// the clock sweep when the map is at capacity.
func (m *Map[V]) Put(key []byte, v V) { m.PutString(string(key), v) }

// PutString is Put with a string key.
func (m *Map[V]) PutString(key string, v V) {
	if i, ok := m.pos[key]; ok {
		m.vals[i] = v
		m.ref[i] = true
		return
	}
	if m.cap > 0 && len(m.keys) >= m.cap {
		n := len(m.keys)
		// Two sweeps suffice when every slot is evictable: the first pass
		// clears reference bits, the second finds a victim. Unevictable
		// slots can exhaust the sweep; grow past capacity rather than spin.
		for scanned := 0; scanned < 2*n; scanned++ {
			h := m.hand
			m.hand++
			if m.hand == n {
				m.hand = 0
			}
			if m.evictable != nil && !m.evictable(m.vals[h]) {
				continue
			}
			if m.ref[h] {
				m.ref[h] = false
				continue
			}
			delete(m.pos, m.keys[h])
			m.evictions++
			m.keys[h] = key
			m.vals[h] = v
			m.ref[h] = true
			m.pos[key] = h
			return
		}
	}
	m.pos[key] = len(m.keys)
	m.keys = append(m.keys, key)
	m.vals = append(m.vals, v)
	m.ref = append(m.ref, true)
}

// Len returns the number of stored entries.
func (m *Map[V]) Len() int { return len(m.keys) }

// Cap returns the configured capacity (<= 0: unbounded).
func (m *Map[V]) Cap() int { return m.cap }

// Evictions returns the number of entries evicted over the map's lifetime.
func (m *Map[V]) Evictions() int64 { return m.evictions }

// Range calls f for every entry until f returns false. Iteration order is
// slot order, not insertion order.
func (m *Map[V]) Range(f func(key string, v V) bool) {
	for i, k := range m.keys {
		if !f(k, m.vals[i]) {
			return
		}
	}
}
