package clockcache

import "testing"

func TestUnboundedActsLikeMap(t *testing.T) {
	m := New[int](0, nil)
	for i := 0; i < 1000; i++ {
		m.Put([]byte{byte(i), byte(i >> 8)}, i)
	}
	if m.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", m.Len())
	}
	if m.Evictions() != 0 {
		t.Fatalf("unbounded map evicted %d entries", m.Evictions())
	}
	for i := 0; i < 1000; i++ {
		v, ok := m.Get([]byte{byte(i), byte(i >> 8)})
		if !ok || v != i {
			t.Fatalf("Get(%d) = %d, %v", i, v, ok)
		}
	}
}

func TestBoundedEvictsAtCap(t *testing.T) {
	m := New[int](4, nil)
	for i := 0; i < 100; i++ {
		m.PutString(string(rune('a'+i)), i)
	}
	if m.Len() != 4 {
		t.Fatalf("Len = %d, want 4", m.Len())
	}
	if m.Evictions() != 96 {
		t.Fatalf("Evictions = %d, want 96", m.Evictions())
	}
}

// TestClockPrefersUnreferenced checks the second-chance behavior with a
// deterministic trace: once the sweep has cleared reference bits, a
// still-referenced entry survives the next eviction while the
// unreferenced one is the victim.
func TestClockPrefersUnreferenced(t *testing.T) {
	m := New[int](2, nil)
	m.PutString("a", 1)
	m.PutString("b", 2)
	// Full map, both referenced: the sweep clears both bits and evicts the
	// slot the hand returns to first ("a").
	m.PutString("c", 3)
	if _, ok := m.GetString("a"); ok {
		t.Fatalf("expected 'a' to be the first victim")
	}
	// Now "c" carries a fresh reference bit and "b" does not: the next
	// insert must evict "b" and spare "c".
	m.PutString("d", 4)
	if _, ok := m.GetString("b"); ok {
		t.Fatalf("unreferenced 'b' survived the sweep")
	}
	if v, ok := m.GetString("c"); !ok || v != 3 {
		t.Fatalf("referenced 'c' was evicted (got %d, %v)", v, ok)
	}
}

func TestUpdateInPlace(t *testing.T) {
	m := New[int](2, nil)
	m.PutString("k", 1)
	m.PutString("k", 2)
	if v, _ := m.GetString("k"); v != 2 {
		t.Fatalf("update lost: got %d", v)
	}
	if m.Len() != 1 {
		t.Fatalf("duplicate key grew the map: Len = %d", m.Len())
	}
}

// TestUnevictableGuard checks guarded slots are skipped and the map grows
// past capacity rather than stalling when nothing is evictable.
func TestUnevictableGuard(t *testing.T) {
	evictable := func(v int) bool { return v >= 0 }
	m := New[int](2, evictable)
	m.PutString("pin1", -1)
	m.PutString("pin2", -2)
	m.PutString("x", 1) // nothing evictable: must grow
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (grow past cap)", m.Len())
	}
	if m.Evictions() != 0 {
		t.Fatalf("evicted a guarded slot")
	}
	m.PutString("y", 2) // "x" (evictable) can now be displaced eventually
	if _, ok := m.GetString("pin1"); !ok {
		t.Fatalf("guarded entry lost")
	}
	if _, ok := m.GetString("pin2"); !ok {
		t.Fatalf("guarded entry lost")
	}
}

func TestRange(t *testing.T) {
	m := New[int](0, nil)
	m.PutString("a", 1)
	m.PutString("b", 2)
	sum := 0
	m.Range(func(_ string, v int) bool { sum += v; return true })
	if sum != 3 {
		t.Fatalf("Range sum = %d, want 3", sum)
	}
}

func TestTaggedHitAndStale(t *testing.T) {
	m := New[int](4, nil)
	m.PutTagged("k", 1, 3)
	if v, ok := m.GetTagged("k", 3); !ok || v != 1 {
		t.Fatalf("GetTagged same epoch = %d, %v", v, ok)
	}
	// Epoch advanced: the entry is stale, must be removed and counted.
	if _, ok := m.GetTagged("k", 4); ok {
		t.Fatal("stale entry served across epochs")
	}
	if m.Len() != 0 {
		t.Fatalf("stale entry retained: Len = %d", m.Len())
	}
	if m.Invalidations() != 1 {
		t.Fatalf("Invalidations = %d, want 1", m.Invalidations())
	}
	if m.Evictions() != 0 {
		t.Fatalf("tag mismatch counted as eviction")
	}
	// A fresh put at the new epoch works.
	m.PutTagged("k", 2, 4)
	if v, ok := m.GetTagged("k", 4); !ok || v != 2 {
		t.Fatalf("re-put after invalidation = %d, %v", v, ok)
	}
}

func TestInvalidateRemovesExactly(t *testing.T) {
	m := New[int](0, nil)
	for i := 0; i < 8; i++ {
		m.PutTagged(string(rune('a'+i)), i, uint64(i))
	}
	if !m.Invalidate("c") {
		t.Fatal("Invalidate missed a present key")
	}
	if m.Invalidate("c") {
		t.Fatal("Invalidate found an absent key")
	}
	if m.Len() != 7 {
		t.Fatalf("Len = %d, want 7", m.Len())
	}
	// Every other entry survives under its own tag.
	for i := 0; i < 8; i++ {
		k := string(rune('a' + i))
		v, ok := m.GetTagged(k, uint64(i))
		if k == "c" {
			if ok {
				t.Fatal("invalidated entry still present")
			}
			continue
		}
		if !ok || v != i {
			t.Fatalf("entry %q lost by unrelated invalidation: %d, %v", k, v, ok)
		}
	}
	if m.Invalidations() != 1 {
		t.Fatalf("Invalidations = %d, want 1", m.Invalidations())
	}
}

// TestRemoveKeepsClockConsistent exercises the move-last-into-hole delete
// against subsequent eviction sweeps: positions stay correct and the map
// keeps honoring its capacity.
func TestRemoveKeepsClockConsistent(t *testing.T) {
	m := New[int](4, nil)
	for i := 0; i < 4; i++ {
		m.PutTagged(string(rune('a'+i)), i, 1)
	}
	m.Invalidate("a") // moves "d" into slot 0
	if v, ok := m.GetTagged("d", 1); !ok || v != 3 {
		t.Fatalf("moved entry lost: %d, %v", v, ok)
	}
	// Fill back to capacity and beyond: sweeps must still terminate and
	// keep Len at cap.
	for i := 0; i < 20; i++ {
		m.PutTagged(string(rune('A'+i)), 100+i, 2)
	}
	if m.Len() != 4 {
		t.Fatalf("Len = %d, want 4", m.Len())
	}
	for i := 0; i < 4; i++ {
		m.Invalidate(string(rune('a' + i))) // mostly absent; must not corrupt
	}
	m.PutTagged("z", 999, 9)
	if v, ok := m.GetTagged("z", 9); !ok || v != 999 {
		t.Fatalf("post-churn put lost: %d, %v", v, ok)
	}
}

// TestUntaggedPutResetsTag: overwriting a tagged entry through the
// untagged API drops it to epoch 0, so a tagged reader at a later epoch
// treats it as stale rather than current.
func TestUntaggedPutResetsTag(t *testing.T) {
	m := New[int](0, nil)
	m.PutTagged("k", 1, 5)
	m.PutString("k", 2)
	if _, ok := m.GetTagged("k", 5); ok {
		t.Fatal("untagged overwrite kept the old epoch")
	}
	if v, ok := m.GetString("k"); ok {
		t.Fatalf("tag-mismatch removal should have dropped the entry, got %d", v)
	}
}
