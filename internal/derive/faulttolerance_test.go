package derive

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/pdb"
	"repro/internal/relation"
)

// These tests arm the global fault-injection switchboard, so none of
// them may run in parallel with anything else in the package (no test
// here calls t.Parallel, which keeps them serialized).

// faultFixture builds a workload guaranteed to exercise both resolution
// paths: the dirty mix plus one forced single-missing and one forced
// double-missing tuple.
func faultFixture(t *testing.T, seed int64) (*core.Model, *relation.Relation) {
	t.Helper()
	m, inst, rng := learnBN(t, "BN8", 2000, seed)
	rel := dirtyRelation(t, inst, rng, 60)
	single := inst.Sample(rng)
	single[0] = relation.Missing
	double := inst.Sample(rng)
	double[0], double[1] = relation.Missing, relation.Missing
	for _, tu := range []relation.Tuple{single, double} {
		if err := rel.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	return m, rel
}

// TestPanicBecomesTypedError: a panic inside a single-flight inference
// computation surfaces as a *PanicError on that request, is counted, and
// leaves the engine fully serviceable — the very same engine then
// reproduces the fault-free oracle bit for bit.
func TestPanicBecomesTypedError(t *testing.T) {
	m, rel := faultFixture(t, 71)
	oracle := deriveWith(t, m, rel, 4, 4)

	for _, tc := range []struct{ point, op string }{
		{"derive.vote", "vote"},
		{"derive.chain", "chain"},
	} {
		t.Run(tc.point, func(t *testing.T) {
			e, err := New(m, engineConfig(4, 4))
			if err != nil {
				t.Fatal(err)
			}
			if err := faultinject.Configure(tc.point + "=panic/1"); err != nil {
				t.Fatal(err)
			}
			defer faultinject.Disable()

			_, err = e.Derive(rel)
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("Derive under %s panic returned %v, want *PanicError", tc.point, err)
			}
			if pe.Op != tc.op {
				t.Errorf("PanicError.Op = %q, want %q", pe.Op, tc.op)
			}
			if _, ok := pe.Value.(faultinject.Panic); !ok {
				t.Errorf("PanicError.Value = %#v, want the injected faultinject.Panic", pe.Value)
			}
			if len(pe.Stack) == 0 {
				t.Error("PanicError carries no stack")
			}
			if e.Stats().PanicsRecovered == 0 {
				t.Error("no panics counted as recovered")
			}

			// The poisoned slots were invalidated, never memoized: with the
			// fault disarmed the same engine answers exactly.
			faultinject.Disable()
			got, err := e.Derive(rel)
			if err != nil {
				t.Fatalf("engine unserviceable after recovered panics: %v", err)
			}
			requireIdentical(t, oracle, got, tc.point+" after recovery")
		})
	}
}

// TestPrefetchPanicKeepsStreamExact: a panic in the prefetch pool (before
// the worker claims a cache slot) costs only the warm-up — the emitter
// computes the tuple inline and the stream stays bit-identical to the
// fault-free run, with the panics recovered and counted.
func TestPrefetchPanicKeepsStreamExact(t *testing.T) {
	m, rel := faultFixture(t, 73)
	oracle := deriveWith(t, m, rel, 4, 4)

	e, err := New(m, engineConfig(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Configure("derive.prefetch=panic/1"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disable()

	// Slow the emitter slightly so the prefetch pool demonstrably gets to
	// run (on a fast machine an unthrottled stream can finish before the
	// pool's dispatcher is even scheduled).
	got := pdb.NewDatabase(rel.Schema)
	err = e.Stream(rel, func(it Item) error {
		time.Sleep(200 * time.Microsecond)
		if it.Certain() {
			return got.AddCertain(it.Tuple)
		}
		return got.AddBlock(it.Block)
	})
	if err != nil {
		t.Fatalf("prefetch panics must not fail the stream: %v", err)
	}
	requireIdentical(t, oracle, got, "every prefetch panicking")
	if e.Stats().PanicsRecovered == 0 {
		t.Error("prefetch panics were not counted")
	}
}

// TestSinkPanicBecomesEmitError: a panic in the caller's emit path (a
// broken sink) is this request's *PanicError with Op "emit"; the engine
// survives and re-streams exactly.
func TestSinkPanicBecomesEmitError(t *testing.T) {
	m, rel := faultFixture(t, 79)
	oracle := deriveWith(t, m, rel, 4, 4)

	e, err := New(m, engineConfig(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	emitted := 0
	err = e.Stream(rel, func(Item) error {
		emitted++
		if emitted == 3 {
			panic("sink exploded")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Op != "emit" {
		t.Fatalf("Stream with panicking sink returned %v, want *PanicError{Op: emit}", err)
	}
	streamed := pdb.NewDatabase(rel.Schema)
	err = e.Stream(rel, func(it Item) error {
		if it.Certain() {
			return streamed.AddCertain(it.Tuple)
		}
		return streamed.AddBlock(it.Block)
	})
	if err != nil {
		t.Fatalf("engine unserviceable after emit panic: %v", err)
	}
	requireIdentical(t, oracle, streamed, "re-stream after emit panic")
}
