package derive

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gibbs"
	"repro/internal/relation"
)

var updateGoldens = flag.Bool("update", false, "rewrite the sink golden files")

// matchmakingEngine learns from the paper's matchmaking relation and
// returns a chain-mode engine — every stage is deterministic across
// processes, which is what makes byte-stable goldens possible.
func matchmakingEngine(t *testing.T) (*Engine, *relation.Relation) {
	t.Helper()
	rel := relation.Matchmaking()
	rc, _ := rel.Split()
	m, err := core.Learn(rc, core.Config{SupportThreshold: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(m, Config{
		Method:       bestAveraged(),
		Gibbs:        gibbs.Config{Samples: 200, BurnIn: 20, Method: bestAveraged(), Seed: 5},
		GibbsWorkers: 2,
		VoteWorkers:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, rel
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGoldens {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run go test ./internal/derive -update to create goldens)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: output is not byte-identical to the golden file\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

// TestCSVSinkGolden streams the matchmaking derivation through the CSV
// sink, pins the bytes against a golden file, and round-trips the output
// through ReadCSV: the sink writes the most probable world, so the result
// must parse as a relation of complete tuples, one per input tuple.
func TestCSVSinkGolden(t *testing.T) {
	e, rel := matchmakingEngine(t)
	var buf bytes.Buffer
	if err := e.StreamTo(rel, NewCSVSink(&buf, rel.Schema)); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "matchmaking_derived.csv.golden", buf.Bytes())

	back, err := relation.ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("CSV sink output does not round-trip through ReadCSV: %v", err)
	}
	if back.Len() != rel.Len() {
		t.Errorf("round-trip has %d tuples, want %d", back.Len(), rel.Len())
	}
	for i, tu := range back.Tuples {
		if !tu.IsComplete() {
			t.Errorf("round-trip tuple %d is incomplete: %v", i, tu)
		}
	}
	// Round-tripping the sink output writes back byte-identically.
	var again bytes.Buffer
	if err := relation.WriteCSV(&again, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("ReadCSV/WriteCSV round trip of the sink output is not byte-stable")
	}
}

// TestJSONLSinkGolden pins the NDJSON rendering — the serving wire format
// of cmd/mrslserve — byte for byte.
func TestJSONLSinkGolden(t *testing.T) {
	e, rel := matchmakingEngine(t)
	var buf bytes.Buffer
	if err := e.StreamTo(rel, NewJSONLSink(&buf, rel.Schema)); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "matchmaking_derived.jsonl.golden", buf.Bytes())

	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != rel.Len()+1 {
		t.Errorf("NDJSON has %d lines, want %d (schema + one per tuple)", len(lines), rel.Len()+1)
	}
	if !strings.Contains(lines[0], `"kind":"schema"`) {
		t.Errorf("first line is not the schema record: %s", lines[0])
	}
}

// TestTextSinkStreams smoke-tests the human-readable sink: one line per
// item, blocks listing their alternatives.
func TestTextSinkStreams(t *testing.T) {
	e, rel := matchmakingEngine(t)
	var buf bytes.Buffer
	if err := e.StreamTo(rel, NewTextSink(&buf, rel.Schema)); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != rel.Len() {
		t.Errorf("text sink wrote %d lines, want %d", len(lines), rel.Len())
	}
	if !strings.Contains(buf.String(), "block") || !strings.Contains(buf.String(), "certain") {
		t.Error("text sink output misses certain/block markers")
	}
}

// TestCollectorMatchesStream: the Collector sink materializes exactly what
// Engine.Derive returns.
func TestCollectorMatchesStream(t *testing.T) {
	e, rel := matchmakingEngine(t)
	c := NewCollector(rel.Schema)
	if err := e.StreamTo(rel, c); err != nil {
		t.Fatal(err)
	}
	db, err := e.Derive(rel)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, c.Database(), db, "collector vs derive")
}

// TestEmptyStreamSinks: sinks emit valid headers even for empty streams.
func TestEmptyStreamSinks(t *testing.T) {
	e, rel := matchmakingEngine(t)
	empty := relation.NewRelation(rel.Schema)
	var csvb, jsonb bytes.Buffer
	if err := e.StreamTo(empty, NewCSVSink(&csvb, rel.Schema)); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(csvb.String()); got != strings.Join(rel.Schema.SortedAttrNames(), ",") {
		t.Errorf("empty CSV stream wrote %q, want header only", got)
	}
	if err := e.StreamTo(empty, NewJSONLSink(&jsonb, rel.Schema)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonb.String(), `"kind":"schema"`) {
		t.Errorf("empty JSONL stream wrote %q, want schema record", jsonb.String())
	}
}
