package derive

// Property tests for the dissociation bound engine: for random models,
// evidence patterns, and satisfying sets, the probability the
// derive-everything path assigns to "every missing attribute completes
// into its satisfying set" must lie within BoundCPD's [lo, hi] — across
// worker counts and cache bounds, including an always-evicting cache.

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gibbs"
	"repro/internal/pdb"
	"repro/internal/relation"
	"repro/internal/vote"
)

// randomSat draws satisfying sets over the missing attributes of t:
// each missing attribute is constrained with probability 1/2, and each
// of a constrained attribute's values satisfies with probability 1/2
// (empty and full sets included — both must stay sound).
func randomSat(rng *rand.Rand, t relation.Tuple, cards []int) [][]bool {
	sat := make([][]bool, len(t))
	for _, a := range t.MissingAttrs() {
		if rng.Intn(2) == 0 {
			continue
		}
		set := make([]bool, cards[a])
		for v := range set {
			set[v] = rng.Intn(2) == 0
		}
		sat[a] = set
	}
	return sat
}

// oracleMass is the derive-everything reference: the mass of the block's
// alternatives whose values fall inside every constrained satisfying
// set, summed in block order exactly as the query executor folds it.
func oracleMass(b *pdb.Block, sat [][]bool) float64 {
	var s float64
	for _, alt := range b.Alts {
		ok := true
		for a, set := range sat {
			if set != nil && !set[alt.Tuple[a]] {
				ok = false
				break
			}
		}
		if ok {
			s += alt.Prob
		}
	}
	return s
}

// TestBoundCPDSoundness: the core property of the bound engine. Random
// multi-missing tuples and random satisfying sets, checked on engines
// with worker counts {1, 2, 8} and cache bounds {unbounded,
// always-evicting}: the derived block's satisfying mass is always inside
// the interval, and the interval is a sane sub-range of [0, 1].
func TestBoundCPDSoundness(t *testing.T) {
	for _, seed := range []int64{5, 6} {
		m, inst, rng := learnBN(t, "BN8", 4000, seed)
		cards := m.Schema.Cards()
		nAttrs := m.Schema.NumAttrs()

		var tuples []relation.Tuple
		for i := 0; i < 24; i++ {
			tu := inst.Sample(rng)
			k := 2 + rng.Intn(2)
			for _, a := range rng.Perm(nAttrs)[:k] {
				tu[a] = relation.Missing
			}
			tuples = append(tuples, tu)
		}

		type combo struct {
			workers, cacheEntries int
			mixed                 bool // single-missing vote method != Gibbs local-CPD method
		}
		combos := []combo{{1, 0, false}, {2, 0, false}, {8, 0, false}, {2, 1, false}, {2, 0, true}}
		for _, cb := range combos {
			voteMethod := bestAveraged()
			if cb.mixed {
				// The envelope must bracket the chains' CPD family even
				// when the engine votes single-missing tuples differently.
				voteMethod = vote.Method{Choice: core.AllVoters, Scheme: vote.Weighted}
			}
			eng, err := New(m, Config{
				Method:       voteMethod,
				Gibbs:        gibbs.Config{Samples: 200, BurnIn: 20, Method: bestAveraged(), Seed: seed},
				GibbsWorkers: cb.workers,
				CacheEntries: cb.cacheEntries,
			})
			if err != nil {
				t.Fatal(err)
			}
			satRng := rand.New(rand.NewSource(seed * 31))
			for _, tu := range tuples {
				for trial := 0; trial < 3; trial++ {
					sat := randomSat(satRng, tu, cards)
					iv, err := eng.BoundCPD(tu, sat)
					if err != nil {
						t.Fatal(err)
					}
					if !(iv.Lo >= 0 && iv.Lo <= iv.Hi && iv.Hi <= probCeiling) {
						t.Fatalf("workers=%d cache=%d: malformed interval %+v for %v",
							cb.workers, cb.cacheEntries, iv, tu)
					}
					b, _, err := eng.ResolveBlock(context.Background(), tu)
					if err != nil {
						t.Fatal(err)
					}
					p := oracleMass(b, sat)
					if p < iv.Lo || p > iv.Hi {
						t.Fatalf("workers=%d cache=%d: oracle mass %v escapes bound [%v, %v] for %v sat %v",
							cb.workers, cb.cacheEntries, p, iv.Lo, iv.Hi, tu, sat)
					}
				}
			}
			if st := eng.Stats(); st.BoundsComputed == 0 {
				t.Fatalf("workers=%d cache=%d: no envelopes computed: %+v", cb.workers, cb.cacheEntries, st)
			}
		}
	}
}

// TestBoundCPDInformative: on a chains engine with a healthy sample
// count, selective satisfying sets must yield genuinely non-vacuous
// intervals — otherwise the bound engine prunes nothing and the planner
// degenerates to derive-everything.
func TestBoundCPDInformative(t *testing.T) {
	m, inst, rng := learnBN(t, "BN8", 4000, 9)
	cards := m.Schema.Cards()
	eng, err := New(m, Config{
		Method:       bestAveraged(),
		Gibbs:        gibbs.Config{Samples: 800, BurnIn: 50, Method: bestAveraged(), Seed: 9},
		GibbsWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	nAttrs := m.Schema.NumAttrs()
	informative := 0
	for i := 0; i < 16; i++ {
		tu := inst.Sample(rng)
		a1, a2 := rng.Perm(nAttrs)[0], 0
		for _, a := range rng.Perm(nAttrs) {
			if a != a1 {
				a2 = a
				break
			}
		}
		tu[a1], tu[a2] = relation.Missing, relation.Missing
		// A single-value equality predicate on one open attribute.
		sat := make([][]bool, nAttrs)
		sat[a1] = make([]bool, cards[a1])
		sat[a1][rng.Intn(cards[a1])] = true
		iv, err := eng.BoundCPD(tu, sat)
		if err != nil {
			t.Fatal(err)
		}
		if !iv.Vacuous() {
			informative++
		}
	}
	if informative == 0 {
		t.Fatal("no equality predicate produced a non-vacuous interval at 800 samples")
	}
}

// TestBoundCPDGates: the bound engine degrades to the vacuous interval —
// never an error — on engines whose estimates it cannot soundly bracket,
// and rejects tuples it is not meant for.
func TestBoundCPDGates(t *testing.T) {
	m, inst, rng := learnBN(t, "BN8", 2000, 21)
	tu := inst.Sample(rng)
	tu[0], tu[1] = relation.Missing, relation.Missing
	sat := make([][]bool, m.Schema.NumAttrs())
	sat[0] = make([]bool, m.Schema.Attrs[0].Card())
	sat[0][0] = true

	gibbsCfg := gibbs.Config{Samples: 50, BurnIn: 5, Method: bestAveraged(), Seed: 1}
	dag, err := New(m, Config{Method: bestAveraged(), Gibbs: gibbsCfg}) // GibbsWorkers 0: DAG mode
	if err != nil {
		t.Fatal(err)
	}
	if iv, err := dag.BoundCPD(tu, sat); err != nil || !iv.Vacuous() {
		t.Fatalf("DAG engine: interval %+v err %v, want vacuous and nil", iv, err)
	}

	capped, err := New(m, Config{Method: bestAveraged(), Gibbs: gibbsCfg, GibbsWorkers: 2, MaxAlternatives: 2})
	if err != nil {
		t.Fatal(err)
	}
	if iv, err := capped.BoundCPD(tu, sat); err != nil || !iv.Vacuous() {
		t.Fatalf("capped engine: interval %+v err %v, want vacuous and nil", iv, err)
	}

	chains, err := New(m, Config{Method: bestAveraged(), Gibbs: gibbsCfg, GibbsWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	single := inst.Sample(rng)
	single[0] = relation.Missing
	if _, err := chains.BoundCPD(single, sat); err == nil {
		t.Fatal("single-missing tuple should be rejected")
	}

	// Envelope memoization: a second identical call must be served from
	// the shared CPD cache.
	if _, err := chains.BoundCPD(tu, sat); err != nil {
		t.Fatal(err)
	}
	before := chains.Stats()
	if _, err := chains.BoundCPD(tu, sat); err != nil {
		t.Fatal(err)
	}
	after := chains.Stats()
	if after.BoundHits <= before.BoundHits {
		t.Fatalf("second BoundCPD did not hit the envelope memo: %+v -> %+v", before, after)
	}
	if after.BoundsComputed != before.BoundsComputed {
		t.Fatalf("second BoundCPD recomputed envelopes: %+v -> %+v", before, after)
	}
}
