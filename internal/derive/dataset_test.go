package derive

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/pdb"
	"repro/internal/relation"
)

// observeScript builds a deterministic observation sequence over rel: for
// every k-th incomplete tuple, pin its first missing attribute to the most
// probable completion of its current conditioned block. Applying the same
// script to a live dataset and to a cold conditioned database must agree.
type scriptedObs struct {
	index, attr, val int
}

func scriptObservations(t *testing.T, e *Engine, rel *relation.Relation, every int) []scriptedObs {
	t.Helper()
	ctx := context.Background()
	var script []scriptedObs
	cur := make(map[int]*pdb.Block)
	n := 0
	for i, tu := range rel.Tuples {
		if tu.IsComplete() {
			continue
		}
		n++
		if n%every != 0 {
			continue
		}
		b, _, err := e.ResolveBlock(ctx, tu)
		if err != nil {
			t.Fatal(err)
		}
		// Two observations on multi-missing tuples, one otherwise:
		// exercises incremental conditioning and collapse alike.
		for steps := 0; steps < 2 && !b.Base.IsComplete(); steps++ {
			attr := b.Base.MissingAttrs()[0]
			val := b.Alts[0].Tuple[attr] // most probable completion
			script = append(script, scriptedObs{index: i, attr: attr, val: val})
			nb, err := b.Observe(attr, val)
			if err != nil {
				t.Fatal(err)
			}
			b = nb
		}
		cur[i] = b
	}
	if len(script) == 0 {
		t.Fatal("script is empty; fixture has no incomplete tuples")
	}
	return script
}

// conditionedOracle derives the conditioned database the hard way: a cold
// engine resolves every block, then the script is replayed through
// pdb.Block.Observe. This is the ground truth the live path must match
// bit-for-bit.
func conditionedOracle(t *testing.T, m *core.Model, cfg Config, rel *relation.Relation, script []scriptedObs) []Item {
	t.Helper()
	cold, err := New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	blocks := make(map[int]*pdb.Block)
	for _, o := range script {
		b, ok := blocks[o.index]
		if !ok {
			if b, _, err = cold.ResolveBlock(ctx, rel.Tuples[o.index]); err != nil {
				t.Fatal(err)
			}
		}
		if b, err = b.Observe(o.attr, o.val); err != nil {
			t.Fatal(err)
		}
		blocks[o.index] = b
	}
	var items []Item
	for i, tu := range rel.Tuples {
		if b, ok := blocks[i]; ok {
			if b.Base.IsComplete() {
				items = append(items, Item{Index: i, Tuple: b.Base})
			} else {
				items = append(items, Item{Index: i, Tuple: b.Base, Block: b})
			}
			continue
		}
		if tu.IsComplete() {
			items = append(items, Item{Index: i, Tuple: tu})
			continue
		}
		b, _, err := cold.ResolveBlock(ctx, tu)
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, Item{Index: i, Tuple: tu, Block: b})
	}
	return items
}

func requireItemsIdentical(t *testing.T, got, want []Item, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d items, want %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Index != w.Index || g.Tuple.Key() != w.Tuple.Key() {
			t.Fatalf("%s: item %d is (%d, %v), want (%d, %v)", label, i, g.Index, g.Tuple, w.Index, w.Tuple)
		}
		if (g.Block == nil) != (w.Block == nil) {
			t.Fatalf("%s: item %d certainty differs", label, i)
		}
		if g.Block == nil {
			continue
		}
		if len(g.Block.Alts) != len(w.Block.Alts) {
			t.Fatalf("%s: item %d has %d alts, want %d", label, i, len(g.Block.Alts), len(w.Block.Alts))
		}
		for k := range w.Block.Alts {
			if g.Block.Alts[k].Prob != w.Block.Alts[k].Prob ||
				g.Block.Alts[k].Tuple.Key() != w.Block.Alts[k].Tuple.Key() {
				t.Fatalf("%s: item %d alt %d = %v, want %v (not bit-identical)",
					label, i, k, g.Block.Alts[k], w.Block.Alts[k])
			}
		}
	}
}

func collectSnapshot(t *testing.T, e *Engine, ds *Dataset) []Item {
	t.Helper()
	snap, err := ds.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var items []Item
	if err := e.StreamSnapshot(context.Background(), snap, Pools{}, func(it Item) error {
		items = append(items, it)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return items
}

// TestDatasetObserveBitIdenticalToColdEngine is the PR's central property:
// after any sequence of observation deltas, the live dataset's derived
// database is bit-identical to a fresh engine deriving the base relation
// and conditioning it directly — across engine modes (chains and DAG) and
// under an always-evicting conditioned-block cache, so no stale or
// evicted cache state can ever influence an answer.
func TestDatasetObserveBitIdenticalToColdEngine(t *testing.T) {
	m, inst, rng := learnBN(t, "BN8", 2500, 53)
	rel := dirtyRelation(t, inst, rng, 80)
	modes := []struct {
		name string
		cfg  Config
	}{
		{"chains", engineConfig(2, 3)},
		{"dag", engineConfig(2, 0)},
		{"chains-evicting", func() Config {
			c := engineConfig(2, 3)
			c.CacheEntries = 1 // every cache, including conditioned blocks, thrashes
			return c
		}()},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			live, err := New(m, mode.cfg)
			if err != nil {
				t.Fatal(err)
			}
			ds, err := live.RegisterDataset(rel)
			if err != nil {
				t.Fatal(err)
			}
			script := scriptObservations(t, live, rel, 3)
			for _, o := range script {
				if _, err := ds.Observe(context.Background(), o.index, o.attr, o.val); err != nil {
					t.Fatalf("observe %+v: %v", o, err)
				}
			}
			got := collectSnapshot(t, live, ds)
			want := conditionedOracle(t, m, mode.cfg, rel, script)
			requireItemsIdentical(t, got, want, mode.name)

			// A second snapshot — now served via the conditioned-block
			// cache or recomputed after eviction — is identical again.
			requireItemsIdentical(t, collectSnapshot(t, live, ds), want, mode.name+"/resnap")
		})
	}
}

// TestDatasetObserveSemantics pins the delta-level contract: collapse on
// the last missing value, zero-mass rejection, conflict rejection,
// no-op detection, and out-of-range validation.
func TestDatasetObserveSemantics(t *testing.T) {
	m, inst, rng := learnBN(t, "BN8", 2000, 59)
	rel := dirtyRelation(t, inst, rng, 40)
	e, err := New(m, engineConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := e.RegisterDataset(rel)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	single, multi, complete := -1, -1, -1
	for i, tu := range rel.Tuples {
		switch {
		case tu.IsComplete():
			complete = i
		case tu.NumMissing() == 1:
			single = i
		default:
			multi = i
		}
	}
	if single < 0 || multi < 0 || complete < 0 {
		t.Fatal("fixture lacks a tuple class")
	}

	// Observing a single-missing tuple's most probable completion
	// collapses it.
	b, _, err := e.ResolveBlock(ctx, rel.Tuples[single])
	if err != nil {
		t.Fatal(err)
	}
	attr := rel.Tuples[single].MissingAttrs()[0]
	res, err := ds.Observe(ctx, single, attr, b.Alts[0].Tuple[attr])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Collapsed || res.Alternatives != 1 || res.Epoch != 1 {
		t.Fatalf("collapse result = %+v", res)
	}
	// Re-observing the same value is a no-op at the same version.
	v := res.Version
	if res, err = ds.Observe(ctx, single, attr, b.Alts[0].Tuple[attr]); err != nil {
		t.Fatal(err)
	}
	if !res.Noop || res.Version != v {
		t.Fatalf("no-op result = %+v (version was %d)", res, v)
	}
	// A conflicting observation on the collapsed tuple fails.
	other := (b.Alts[0].Tuple[attr] + 1) % rel.Schema.Attrs[attr].Card()
	if _, err := ds.Observe(ctx, single, attr, other); err == nil {
		t.Fatal("conflicting observation on collapsed tuple succeeded")
	}

	// Zero-remaining-mass: find a value no alternative of the multi
	// block carries, if the domain admits one.
	mb, _, err := e.ResolveBlock(ctx, rel.Tuples[multi])
	if err != nil {
		t.Fatal(err)
	}
	mattr := rel.Tuples[multi].MissingAttrs()[0]
	seen := make(map[int]bool)
	for _, a := range mb.Alts {
		seen[a.Tuple[mattr]] = true
	}
	for val := 0; val < rel.Schema.Attrs[mattr].Card(); val++ {
		if !seen[val] {
			if _, err := ds.Observe(ctx, multi, mattr, val); err == nil {
				t.Fatal("zero-mass observation succeeded")
			}
			break
		}
	}

	// A complete tuple accepts only confirming evidence.
	if res, err = ds.Observe(ctx, complete, 0, rel.Tuples[complete][0]); err != nil || !res.Noop {
		t.Fatalf("confirming observation on certain tuple: %+v, %v", res, err)
	}
	wrong := (rel.Tuples[complete][0] + 1) % rel.Schema.Attrs[0].Card()
	if _, err := ds.Observe(ctx, complete, 0, wrong); err == nil {
		t.Fatal("conflicting observation on certain tuple succeeded")
	}

	// Range validation.
	if _, err := ds.Observe(ctx, -1, 0, 0); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := ds.Observe(ctx, 0, 99, 0); err == nil {
		t.Fatal("bad attribute accepted")
	}
	if _, err := ds.Observe(ctx, multi, mattr, 99); err == nil {
		t.Fatal("out-of-domain value accepted")
	}
}

// TestDatasetIsolation: two datasets over the same relation share every
// content-keyed cache but never each other's evidence.
func TestDatasetIsolation(t *testing.T) {
	m, inst, rng := learnBN(t, "BN8", 2000, 61)
	rel := dirtyRelation(t, inst, rng, 40)
	e, err := New(m, engineConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	a, err := e.RegisterDataset(rel)
	if err != nil {
		t.Fatal(err)
	}
	bds, err := e.RegisterDataset(rel)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() == bds.ID() {
		t.Fatalf("datasets share id %q", a.ID())
	}
	before := collectSnapshot(t, e, bds)
	script := scriptObservations(t, e, rel, 2)
	for _, o := range script {
		if _, err := a.Observe(context.Background(), o.index, o.attr, o.val); err != nil {
			t.Fatal(err)
		}
	}
	requireItemsIdentical(t, collectSnapshot(t, e, bds), before, "unobserved dataset")
	if bds.Version() != 0 {
		t.Fatalf("unobserved dataset advanced to version %d", bds.Version())
	}
}

// TestDatasetStatsAndWatchers: the observation counters and live gauges
// the server reports.
func TestDatasetStatsAndWatchers(t *testing.T) {
	m, inst, rng := learnBN(t, "BN8", 2000, 67)
	rel := dirtyRelation(t, inst, rng, 40)
	e, err := New(m, engineConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := e.RegisterDataset(rel)
	if err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Datasets != 1 || st.Watchers != 0 {
		t.Fatalf("gauges = %d datasets, %d watchers", st.Datasets, st.Watchers)
	}
	ch, cancel := ds.Subscribe()
	if st := e.Stats(); st.Watchers != 1 {
		t.Fatalf("watchers = %d after subscribe", st.Watchers)
	}

	script := scriptObservations(t, e, rel, 2)
	for _, o := range script {
		if _, err := ds.Observe(context.Background(), o.index, o.attr, o.val); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-ch:
	default:
		t.Fatal("watcher received no signal")
	}
	st := e.Stats()
	if st.Observations != int64(len(script)) {
		t.Fatalf("Observations = %d, want %d", st.Observations, len(script))
	}
	// Every second observation of a two-step script supersedes a cached
	// posterior: the eager invalidation must have fired at least once.
	if st.InvalidatedEntries == 0 {
		t.Fatal("no conditioned-block entry was invalidated")
	}
	if ds.Version() != uint64(len(script)) {
		t.Fatalf("Version = %d, want %d", ds.Version(), len(script))
	}

	cancel()
	cancel() // idempotent
	if st := e.Stats(); st.Watchers != 0 {
		t.Fatalf("watchers = %d after cancel", st.Watchers)
	}

	if !e.DropDataset(ds.ID()) {
		t.Fatal("DropDataset missed a registered dataset")
	}
	if e.DropDataset(ds.ID()) {
		t.Fatal("DropDataset found a dropped dataset")
	}
	select {
	case <-ds.Done():
	default:
		t.Fatal("Done not closed on drop")
	}
	if _, err := ds.Observe(context.Background(), script[0].index, script[0].attr, script[0].val); err == nil {
		t.Fatal("observe on dropped dataset succeeded")
	}
	if st := e.Stats(); st.Datasets != 0 {
		t.Fatalf("datasets gauge = %d after drop", st.Datasets)
	}
}
