package derive

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bn"
	"repro/internal/core"
	"repro/internal/gibbs"
	"repro/internal/pdb"
	"repro/internal/relation"
	"repro/internal/vote"
)

func bestAveraged() vote.Method {
	return vote.Method{Choice: core.BestVoters, Scheme: vote.Averaged}
}

// learnBN builds a model over a catalog network for engine tests.
func learnBN(t testing.TB, id string, trainSize int, seed int64) (*core.Model, *bn.Instance, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	top, err := bn.ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := bn.Instantiate(top, rng)
	if err != nil {
		t.Fatal(err)
	}
	train := inst.SampleRelation(rng, trainSize)
	m, err := core.Learn(train, core.Config{SupportThreshold: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	return m, inst, rng
}

// dirtyRelation builds a mixed workload: complete tuples, duplicated
// single-missing tuples, and duplicated multi-missing tuples.
func dirtyRelation(t testing.TB, inst *bn.Instance, rng *rand.Rand, n int) *relation.Relation {
	t.Helper()
	nAttrs := inst.Top.NumAttrs()
	rel := relation.NewRelation(inst.Top.Schema())
	// A limited set of damage patterns, so duplicates exercise the caches.
	patterns := make([]relation.Tuple, 8)
	for i := range patterns {
		tu := inst.Sample(rng)
		k := 1 + rng.Intn(2)
		for _, a := range rng.Perm(nAttrs)[:k] {
			tu[a] = relation.Missing
		}
		patterns[i] = tu
	}
	for i := 0; i < n; i++ {
		var tu relation.Tuple
		if rng.Float64() < 0.3 {
			tu = inst.Sample(rng)
		} else {
			tu = patterns[rng.Intn(len(patterns))].Clone()
		}
		if err := rel.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	return rel
}

func engineConfig(voteWorkers, gibbsWorkers int) Config {
	return Config{
		Method:       bestAveraged(),
		Gibbs:        gibbs.Config{Samples: 150, BurnIn: 20, Method: bestAveraged(), Seed: 7},
		VoteWorkers:  voteWorkers,
		GibbsWorkers: gibbsWorkers,
	}
}

func deriveWith(t *testing.T, m *core.Model, rel *relation.Relation, voteWorkers, gibbsWorkers int) *pdb.Database {
	t.Helper()
	e, err := New(m, engineConfig(voteWorkers, gibbsWorkers))
	if err != nil {
		t.Fatal(err)
	}
	db, err := e.Derive(rel)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func requireIdentical(t *testing.T, a, b *pdb.Database, label string) {
	t.Helper()
	if len(a.Certain) != len(b.Certain) || len(a.Blocks) != len(b.Blocks) {
		t.Fatalf("%s: shape differs: %d/%d certain, %d/%d blocks",
			label, len(a.Certain), len(b.Certain), len(a.Blocks), len(b.Blocks))
	}
	for i := range a.Certain {
		if a.Certain[i].Key() != b.Certain[i].Key() {
			t.Fatalf("%s: certain tuple %d differs", label, i)
		}
	}
	for i := range a.Blocks {
		ba, bb := a.Blocks[i], b.Blocks[i]
		if ba.Base.Key() != bb.Base.Key() || len(ba.Alts) != len(bb.Alts) {
			t.Fatalf("%s: block %d shape differs", label, i)
		}
		for k := range ba.Alts {
			if ba.Alts[k].Prob != bb.Alts[k].Prob || ba.Alts[k].Tuple.Key() != bb.Alts[k].Tuple.Key() {
				t.Fatalf("%s: block %d alternative %d differs (%v vs %v)",
					label, i, k, ba.Alts[k], bb.Alts[k])
			}
		}
	}
}

// TestDeriveDeterministicAcrossWorkerCounts is the engine's core contract:
// the derived database is bit-identical for every combination of voting
// pool size and gibbs worker count (the parallel chains are seeded per
// tuple, voting is deterministic, and emission is input-ordered). Run it
// under -race to also exercise the cache synchronization.
func TestDeriveDeterministicAcrossWorkerCounts(t *testing.T) {
	m, inst, rng := learnBN(t, "BN9", 3000, 41)
	rel := dirtyRelation(t, inst, rng, 120)

	base := deriveWith(t, m, rel, 1, 2)
	for _, workers := range []int{2, 8} {
		got := deriveWith(t, m, rel, workers, 2)
		requireIdentical(t, base, got, fmt.Sprintf("voteWorkers=%d", workers))
	}
	// Positive gibbs worker counts are all interchangeable: chains are
	// seeded by tuple content, not by position or pool size.
	for _, workers := range []int{1, 4, 8} {
		got := deriveWith(t, m, rel, 4, workers)
		requireIdentical(t, base, got, fmt.Sprintf("gibbsWorkers=%d", workers))
	}
}

// TestStreamMatchesCollected: the streamed items, collected by hand in
// callback order, reproduce Engine.Derive exactly — certain tuples and
// blocks in input order.
func TestStreamMatchesCollected(t *testing.T) {
	m, inst, rng := learnBN(t, "BN8", 2000, 43)
	rel := dirtyRelation(t, inst, rng, 80)

	e, err := New(m, engineConfig(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	streamed := pdb.NewDatabase(rel.Schema)
	lastIndex := -1
	err = e.Stream(rel, func(it Item) error {
		if it.Index <= lastIndex {
			t.Fatalf("item %d emitted after %d: stream is not input-ordered", it.Index, lastIndex)
		}
		lastIndex = it.Index
		if it.Certain() {
			return streamed.AddCertain(it.Tuple)
		}
		if it.Tuple.Key() != it.Block.Base.Key() {
			t.Fatalf("item %d: block base %v does not match tuple %v", it.Index, it.Block.Base, it.Tuple)
		}
		return streamed.AddBlock(it.Block)
	})
	if err != nil {
		t.Fatal(err)
	}
	if lastIndex != rel.Len()-1 {
		t.Fatalf("last emitted index = %d, want %d", lastIndex, rel.Len()-1)
	}

	collected := deriveWith(t, m, rel, 4, 2)
	requireIdentical(t, streamed, collected, "stream vs collect")
}

// TestVoteCacheDedup: distinct single-missing evidence patterns are voted
// exactly once; duplicates hit the shared cache.
func TestVoteCacheDedup(t *testing.T) {
	m, inst, rng := learnBN(t, "BN8", 2000, 47)
	rel := relation.NewRelation(inst.Top.Schema())
	distinctKeys := make(map[string]bool)
	singles := 0
	for i := 0; i < 60; i++ {
		tu := inst.Sample(rng)
		tu[rng.Intn(3)] = relation.Missing // few patterns, many duplicates
		distinctKeys[tu.Key()] = true
		singles++
		if err := rel.Append(tu); err != nil {
			t.Fatal(err)
		}
	}

	e, err := New(m, engineConfig(8, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Derive(rel); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.VotesComputed != int64(len(distinctKeys)) {
		t.Errorf("votes computed = %d, want %d distinct patterns", st.VotesComputed, len(distinctKeys))
	}
	if st.SingleTuples != int64(singles) {
		t.Errorf("single tuples served = %d, want %d", st.SingleTuples, singles)
	}
	wantRate := float64(singles-len(distinctKeys)) / float64(singles)
	if got := st.VoteHitRate(); got != wantRate {
		t.Errorf("vote hit rate = %v, want %v", got, wantRate)
	}

	// A second run over the same relation is fully cache-served.
	if _, err := e.Derive(rel); err != nil {
		t.Fatal(err)
	}
	if st2 := e.Stats(); st2.VotesComputed != st.VotesComputed {
		t.Errorf("engine reuse recomputed votes: %d -> %d", st.VotesComputed, st2.VotesComputed)
	}
}

// TestGibbsCacheAcrossStreams: multi-missing joints persist in the engine
// across Stream calls.
func TestGibbsCacheAcrossStreams(t *testing.T) {
	m, inst, rng := learnBN(t, "BN8", 1500, 53)
	rel := relation.NewRelation(inst.Top.Schema())
	tu := inst.Sample(rng)
	tu[0], tu[1] = relation.Missing, relation.Missing
	for i := 0; i < 3; i++ {
		if err := rel.Append(tu.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	e, err := New(m, engineConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Derive(rel); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.GibbsComputed != 1 {
		t.Fatalf("gibbs computed = %d, want 1 (duplicates deduped)", st.GibbsComputed)
	}
	if _, err := e.Derive(rel); err != nil {
		t.Fatal(err)
	}
	st2 := e.Stats()
	if st2.GibbsComputed != 1 {
		t.Errorf("engine reuse re-sampled: computed = %d", st2.GibbsComputed)
	}
	if st2.GibbsCacheHits <= st.GibbsCacheHits {
		t.Errorf("second run should hit the joint cache (hits %d -> %d)",
			st.GibbsCacheHits, st2.GibbsCacheHits)
	}
}

// TestEmitErrorStopsStream: a failing callback aborts the stream with its
// error and the engine shuts its workers down cleanly.
func TestEmitErrorStopsStream(t *testing.T) {
	m, inst, rng := learnBN(t, "BN8", 1500, 59)
	rel := dirtyRelation(t, inst, rng, 50)
	e, err := New(m, engineConfig(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	sentinel := fmt.Errorf("stop here")
	emitted := 0
	err = e.Stream(rel, func(Item) error {
		emitted++
		if emitted == 5 {
			return sentinel
		}
		return nil
	})
	if err != sentinel {
		t.Fatalf("Stream error = %v, want sentinel", err)
	}
	if emitted != 5 {
		t.Errorf("emitted %d items after error, want 5", emitted)
	}
}

// TestEmptyAndCompleteRelations: degenerate inputs stream cleanly.
func TestEmptyAndCompleteRelations(t *testing.T) {
	m, inst, rng := learnBN(t, "BN8", 1000, 61)
	e, err := New(m, engineConfig(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	empty := relation.NewRelation(inst.Top.Schema())
	db, err := e.Derive(empty)
	if err != nil || len(db.Certain) != 0 || len(db.Blocks) != 0 {
		t.Errorf("empty relation: %v, %v", db, err)
	}
	complete := relation.NewRelation(inst.Top.Schema())
	for i := 0; i < 5; i++ {
		if err := complete.Append(inst.Sample(rng)); err != nil {
			t.Fatal(err)
		}
	}
	db, err = e.Derive(complete)
	if err != nil || len(db.Certain) != 5 || len(db.Blocks) != 0 {
		t.Errorf("complete relation: %d certain %d blocks, %v",
			len(db.Certain), len(db.Blocks), err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil model should fail")
	}
	m, _, _ := learnBN(t, "BN8", 500, 67)
	e, err := New(m, engineConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Stream(nil, func(Item) error { return nil }); err == nil {
		t.Error("nil relation should fail")
	}
}
