package derive

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/dist"
	"repro/internal/gibbs"
	"repro/internal/relation"
	"repro/internal/vote"
)

// This file implements the engine's dissociation-style bound engine for
// multi-missing tuples: sound [lo, hi] probability intervals computed
// from per-attribute conditional-CPD envelopes, without running a Gibbs
// chain. The query planner (internal/query) uses the intervals to decide
// tuples — counted in or out of a thresholded count, folded into an
// exists lower bound, excluded from topk — so selective queries skip
// full derivation for most multi-missing tuples.
//
// Soundness argument. In chains mode every recorded Gibbs sweep
// resamples each missing attribute a from a local CPD conditioned on
// some assignment of the other missing attributes — always one of the
// finitely many CPDs the envelope enumerates, whatever state the chain
// happens to be in (burn-in, mixing, or converged; the argument needs no
// stationarity). The satisfying mass of every such CPD lies within the
// envelope's [lo, hi], so the conditional probability that a recorded
// sweep satisfies attribute a is within it too, and the per-attribute
// empirical frequencies concentrate around means inside the envelope
// (Azuma-Hoeffding over the chain's conditional draws). The interval
// combines the per-attribute envelopes with Frechet bounds — which hold
// for any dependence structure — and widens them by a concentration
// margin of boundSlackFactor standard-deviation-equivalents plus the
// exact worst-case shift of the final smoothing step, so the realized
// block mass escapes the interval only with negligible probability
// (< 1e-9 per tuple at the default sample counts). The query layer's
// property tests assert containment against the derive-everything
// oracle across worker counts and cache bounds.

// Interval is a closed probability interval [Lo, Hi].
type Interval struct {
	Lo, Hi float64
}

// VacuousInterval is the no-information bound.
var VacuousInterval = Interval{Lo: 0, Hi: 1}

// Width returns Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Vacuous reports whether the interval carries no information.
func (iv Interval) Vacuous() bool { return iv.Lo <= 0 && iv.Hi >= 1 }

// maxBoundStates caps the number of other-attribute assignments a single
// envelope enumerates. Beyond it BoundCPD degrades to the vacuous
// interval instead of paying an exponential enumeration: each assignment
// costs one CPD-cache probe (and a vote on a cold miss), so the cap also
// bounds the planner's worst-case planning cost per tuple.
const maxBoundStates = 4096

// MaxBoundStates is maxBoundStates, exported so the query planner's
// cost model can mirror the enumeration guard and predict an envelope's
// probe count without running it.
const MaxBoundStates = maxBoundStates

// boundSlack is the concentration margin added to each side of a bound
// interval: sqrt(12.5/n) for n recorded sweeps, which sits beyond five
// standard deviations of a Bernoulli frequency over n draws for every
// success probability, so a realized chain estimate escapes the widened
// interval only with negligible probability. Fewer samples mean looser
// (but still sound) bounds; n <= 0 disables bounding entirely.
func boundSlack(samples int) float64 {
	if samples <= 0 {
		return 1
	}
	return math.Sqrt(12.5 / float64(samples))
}

// appendBoundKey builds the CPD-cache key of one memoized envelope. The
// 0xFF marker keeps envelope entries disjoint from ordinary CPD entries,
// whose first byte is a (small) voting-method choice. Envelopes bracket
// the chains' draws, so they are keyed (and voted) with the Gibbs
// local-CPD method — which may differ from the engine's single-missing
// vote method on a mixed-method engine.
func appendBoundKey(dst []byte, attr int, t relation.Tuple, cfg Config) []byte {
	dst = append(dst, 0xFF)
	return gibbs.AppendCPDKey(dst, attr, cfg.Gibbs.Method, t)
}

// boundEnvelope returns, for missing attribute attr of multi-missing
// tuple t, per-value envelopes lo[v] <= P(attr = v | assignment) <=
// hi[v] over every assignment of t's other missing attributes — exactly
// the family of local CPDs a Gibbs chain for t can ever draw attr from.
// The CPDs themselves are served through the engine's shared CPD cache
// (the same slots the chains fill), and the finished envelope is
// memoized there too, under the same CLOCK bound. A nil result (with nil
// error) means the enumeration would exceed maxBoundStates.
func (e *Engine) boundEnvelope(t relation.Tuple, attr int) (lo, hi dist.Dist, err error) {
	card := e.model.Schema.Attrs[attr].Card()
	envKey := appendBoundKey(nil, attr, t, e.cfg)
	if v, ok := e.cpd.Get(envKey); ok && len(v) == 2*card {
		e.mu.Lock()
		e.stats.BoundHits++
		e.mu.Unlock()
		return v[:card:card], v[card:], nil
	}

	var others []int
	states := 1
	for _, a := range t.MissingAttrs() {
		if a == attr {
			continue
		}
		c := e.model.Schema.Attrs[a].Card()
		if states > maxBoundStates/c {
			return nil, nil, nil
		}
		states *= c
		others = append(others, a)
	}
	// Only the enumeration below is timed: the cache-hit path above is a
	// single probe on the planner's per-tuple path.
	defer boundSeconds.Since(time.Now())

	env := make(dist.Dist, 2*card)
	lo, hi = env[:card:card], env[card:]
	for v := range lo {
		lo[v] = 1
	}
	state := t.Clone()
	var keyBuf []byte
	for s := 0; s < states; s++ {
		rem := s
		for i := len(others) - 1; i >= 0; i-- {
			c := e.model.Schema.Attrs[others[i]].Card()
			state[others[i]] = rem % c
			rem /= c
		}
		d, err := e.stateCPD(state, attr, &keyBuf)
		if err != nil {
			return nil, nil, err
		}
		for v, p := range d {
			lo[v] = math.Min(lo[v], p)
			hi[v] = math.Max(hi[v], p)
		}
	}
	e.cpd.Put(envKey, env)
	e.mu.Lock()
	e.stats.BoundsComputed++
	e.mu.Unlock()
	return lo, hi, nil
}

// stateCPD serves the voted CPD of attr (missing in state) given state's
// known values through the engine's shared CPD cache — the identical
// lookup, under the identical Gibbs local-CPD method, a chain performs
// at each sweep, so envelope enumeration and chain sampling warm each
// other's entries and the envelope brackets exactly the family the
// chain draws from.
func (e *Engine) stateCPD(state relation.Tuple, attr int, keyBuf *[]byte) (dist.Dist, error) {
	*keyBuf = gibbs.AppendCPDKey((*keyBuf)[:0], attr, e.cfg.Gibbs.Method, state)
	if d, ok := e.cpd.Get(*keyBuf); ok {
		return d, nil
	}
	d, err := vote.Infer(e.model, state, attr, e.cfg.Gibbs.Method)
	if err != nil {
		return nil, err
	}
	e.cpd.Put(*keyBuf, d)
	return d, nil
}

// BoundCPD computes a sound dissociation-style probability interval for
// the event that every missing attribute of multi-missing tuple t
// completes into its satisfying set: sat[a], when non-nil, lists per
// value code of attribute a whether it satisfies the query's predicates
// on a (nil means the attribute is unconstrained). The interval contains
// the satisfying mass of the block full derivation would produce for t,
// so a caller may decide t against a probability threshold — counting it
// in when Lo reaches the threshold, out when Hi stays below — without
// ever scheduling a chain; see the soundness argument at the top of this
// file.
//
// The interval is built from per-attribute conditional-CPD envelopes
// (memoized in the engine's sharded CPD cache, evicted under the same
// CLOCK bound as the chains' entries) combined with Frechet bounds and
// widened by the concentration and smoothing margins. It degrades to the
// vacuous [0, 1] — never an error — whenever bounding is not sound or
// not affordable: on a DAG-mode engine (its estimator is
// workload-dependent), on an engine capping block alternatives (the cap
// renormalizes the block), or when an envelope would enumerate more than
// maxBoundStates assignments.
func (e *Engine) BoundCPD(t relation.Tuple, sat [][]bool) (Interval, error) {
	if t.NumMissing() < 2 {
		return VacuousInterval, fmt.Errorf("derive: BoundCPD needs a multi-missing tuple, got %v", t)
	}
	if !e.cfg.chains() || e.cfg.MaxAlternatives > 0 {
		return VacuousInterval, nil
	}
	eps := boundSlack(e.cfg.Gibbs.Samples)
	if eps >= 1 {
		return VacuousInterval, nil
	}

	// The final estimate is Normalize().Smooth(SmoothFloor): smoothing
	// shifts any outcome set's mass by at most jointSize*SmoothFloor
	// (raised floors in the numerator, a denominator within
	// [1, 1+jointSize*SmoothFloor]); the extra 1e-9 absorbs the float
	// summation-order slop of the block fold.
	jointSize := 1.0
	for _, a := range t.MissingAttrs() {
		jointSize *= float64(e.model.Schema.Attrs[a].Card())
	}
	smooth := jointSize*dist.SmoothFloor + 1e-9

	lo, hi := 1.0, 1.0
	constrained := 0
	for _, a := range t.MissingAttrs() {
		set := sat[a]
		if set == nil {
			continue
		}
		if len(set) != e.model.Schema.Attrs[a].Card() {
			return VacuousInterval, fmt.Errorf("derive: BoundCPD satisfying set for attribute %d has %d values, want %d",
				a, len(set), e.model.Schema.Attrs[a].Card())
		}
		full := true
		for _, ok := range set {
			full = full && ok
		}
		if full {
			continue // satisfied by the whole domain: mass exactly 1
		}
		envLo, envHi, err := e.boundEnvelope(t, a)
		if err != nil {
			return VacuousInterval, err
		}
		if envLo == nil {
			return VacuousInterval, nil // enumeration too large
		}
		var inLo, inHi, outLo, outHi float64
		for v, ok := range set {
			if ok {
				inLo += envLo[v]
				inHi += envHi[v]
			} else {
				outLo += envLo[v]
				outHi += envHi[v]
			}
		}
		// Each conditional CPD is normalized, so the set mass is bounded
		// both directly and through its complement; take the tighter side.
		sLo := clamp01(math.Max(inLo, 1-outHi))
		sHi := clamp01(math.Min(inHi, 1-outLo))
		// Frechet: the conjunction loses at most each attribute's miss
		// mass (lower), and cannot beat its weakest attribute (upper).
		lo -= 1 - (sLo - eps)
		hi = math.Min(hi, sHi+eps)
		constrained++
	}
	if constrained == 0 {
		// No constrained missing attribute: the block's whole mass
		// satisfies, which is 1 up to smoothing and float slop.
		return Interval{Lo: clamp01(1 - smooth), Hi: probCeiling}, nil
	}
	return Interval{Lo: clamp01(lo - smooth), Hi: math.Min(hi+smooth, probCeiling)}, nil
}

// probCeiling saturates upper bounds just above 1: a block's
// float-summed satisfying mass can exceed 1 by accumulation slop, so an
// upper bound clamped to exactly 1 would not contain it.
const probCeiling = 1 + 1e-9

func clamp01(x float64) float64 { return math.Min(1, math.Max(0, x)) }

// appendIntervalKey builds the CPD-cache key of one memoized combined
// interval: the 0xFE marker (disjoint from both ordinary CPD entries
// and 0xFF per-attribute envelopes), the tuple's canonical evidence
// key, then — for each constrained missing attribute, in attribute
// order — the attribute index and its satisfying set packed as a
// bitmask. Attributes whose set is nil or covers the whole domain are
// omitted, exactly mirroring which attributes BoundCPD folds, so
// queries that constrain the same attributes the same way share one
// entry even when their untouched predicates differ. The encoding is
// unambiguous: the evidence key is self-delimiting, mask lengths are
// fixed by each attribute's cardinality, and attribute indices are
// single varints between masks.
func appendIntervalKey(dst []byte, t relation.Tuple, sat [][]bool) []byte {
	dst = append(dst, 0xFE)
	dst = t.AppendKey(dst)
	for a, v := range t {
		if v != relation.Missing {
			continue
		}
		set := sat[a]
		if set == nil {
			continue
		}
		full := true
		for _, ok := range set {
			full = full && ok
		}
		if full {
			continue
		}
		dst = binary.AppendUvarint(dst, uint64(a))
		var b byte
		for v, ok := range set {
			if ok {
				b |= 1 << (uint(v) % 8)
			}
			if uint(v)%8 == 7 {
				dst = append(dst, b)
				b = 0
			}
		}
		if len(set)%8 != 0 {
			dst = append(dst, b)
		}
	}
	return dst
}

// intervalKeyPool recycles interval-cache key buffers across
// BoundCPDShared calls, so the steady-state plan path probes the shared
// cache without allocating.
var intervalKeyPool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

// BoundCPDShared serves BoundCPD through a content-keyed shared
// interval cache: the finished per-tuple [lo, hi] is memoized in the
// engine's sharded CLOCK CPD cache (under a 0xFE-marked key), so
// concurrent queries whose predicates induce the same satisfying sets
// on the same evidence pattern reuse one combination instead of
// re-enumerating — the cross-query analog of the per-attribute envelope
// memo. hit reports a cache hit. compute=false turns a miss into a
// declined probe: the caller (the query cost model) judged enumeration
// not worth its price for this tuple, so the vacuous interval comes
// back and nothing is computed or stored. Cached intervals are pure
// functions of (model, config, tuple, satisfying sets), so a hit is
// bit-identical to recomputation; eviction only costs re-enumeration.
// Stats.EnvelopeHits / Stats.EnvelopeMisses count the probes.
func (e *Engine) BoundCPDShared(t relation.Tuple, sat [][]bool, compute bool) (iv Interval, hit bool, err error) {
	if t.NumMissing() < 2 {
		return VacuousInterval, false, fmt.Errorf("derive: BoundCPD needs a multi-missing tuple, got %v", t)
	}
	if !e.cfg.chains() || e.cfg.MaxAlternatives > 0 || boundSlack(e.cfg.Gibbs.Samples) >= 1 {
		// Bounding is structurally disabled: every interval is vacuous, so
		// there is nothing worth caching or counting.
		return VacuousInterval, false, nil
	}
	buf := intervalKeyPool.Get().(*[]byte)
	key := appendIntervalKey((*buf)[:0], t, sat)
	*buf = key
	defer intervalKeyPool.Put(buf)
	if v, ok := e.cpd.Get(key); ok && len(v) == 2 {
		e.mu.Lock()
		e.stats.EnvelopeHits++
		e.mu.Unlock()
		return Interval{Lo: v[0], Hi: v[1]}, true, nil
	}
	e.mu.Lock()
	e.stats.EnvelopeMisses++
	e.mu.Unlock()
	if !compute {
		return VacuousInterval, false, nil
	}
	iv, err = e.BoundCPD(t, sat)
	if err != nil {
		return iv, false, err
	}
	e.cpd.Put(key, dist.Dist{iv.Lo, iv.Hi})
	return iv, false, nil
}
