package derive

// Tests for the bounded engine caches: CacheEntries caps the vote, joint,
// and CPD caches; eviction is counted in Stats and — in chains mode —
// never changes the emitted stream, because every cached value is a
// deterministic function of the model and its key.

import (
	"reflect"
	"testing"

	"repro/internal/gibbs"
	"repro/internal/relation"
)

// collect streams rel through e and returns the emitted items.
func collect(t *testing.T, e *Engine, rel *relation.Relation) []Item {
	t.Helper()
	var items []Item
	if err := e.Stream(rel, func(it Item) error {
		items = append(items, it)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return items
}

// TestBoundedCachesDeterministic streams the same workload through an
// unbounded engine and through one whose caches hold almost nothing, in
// chains mode, and requires bit-identical output plus recorded evictions.
func TestBoundedCachesDeterministic(t *testing.T) {
	m, inst, rng := learnBN(t, "BN8", 3000, 11)
	rel := dirtyRelation(t, inst, rng, 120)
	cfg := Config{
		Method:       bestAveraged(),
		Gibbs:        gibbs.Config{Samples: 40, BurnIn: 10, Method: bestAveraged(), Seed: 3},
		VoteWorkers:  2,
		GibbsWorkers: 2,
	}
	unbounded, err := New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tinyCfg := cfg
	tinyCfg.CacheEntries = 2
	tiny, err := New(m, tinyCfg)
	if err != nil {
		t.Fatal(err)
	}

	want := collect(t, unbounded, rel)
	got := collect(t, tiny, rel)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("bounded engine emitted a different stream")
	}
	// Stream again: the tiny caches cannot hold the workload, so the
	// second pass re-derives and evicts more; output must still match.
	got2 := collect(t, tiny, rel)
	if !reflect.DeepEqual(got2, want) {
		t.Fatalf("bounded engine emitted a different stream on second pass")
	}

	st := tiny.Stats()
	if st.Evictions == 0 {
		t.Fatalf("tiny engine recorded no vote/joint evictions; Stats=%+v", st)
	}
	if ust := unbounded.Stats(); ust.Evictions != 0 {
		t.Fatalf("unbounded engine recorded %d evictions, want 0", ust.Evictions)
	}
}

// TestCPDStatsExposed checks the engine surfaces the shared CPD cache's
// counters and that the single-missing vote path populates it.
func TestCPDStatsExposed(t *testing.T) {
	m, inst, rng := learnBN(t, "BN8", 2000, 13)
	rel := dirtyRelation(t, inst, rng, 60)
	e, err := New(m, Config{
		Method:       bestAveraged(),
		Gibbs:        gibbs.Config{Samples: 30, BurnIn: 5, Method: bestAveraged(), Seed: 9},
		GibbsWorkers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	collect(t, e, rel)
	st := e.Stats()
	if st.CPDMisses == 0 {
		t.Fatalf("no CPD misses recorded; the shared cache is not wired in (Stats=%+v)", st)
	}
	if st.CPDHits == 0 {
		t.Fatalf("no CPD hits recorded across chain sweeps (Stats=%+v)", st)
	}
	if rate := st.CPDHitRate(); rate <= 0 || rate >= 1 {
		t.Fatalf("CPDHitRate = %v, want in (0,1)", rate)
	}
}

// TestSingleMissingSharesCPDCache checks the cross-path sharing claim: a
// vote served for a single-missing tuple seeds the CPD cache entry that a
// later identical probe hits.
func TestSingleMissingSharesCPDCache(t *testing.T) {
	m, inst, rng := learnBN(t, "BN8", 2000, 17)
	tu := inst.Sample(rng)
	tu[0] = relation.Missing
	rel := relation.NewRelation(inst.Top.Schema())
	if err := rel.Append(tu); err != nil {
		t.Fatal(err)
	}
	e, err := New(m, Config{Method: bestAveraged(),
		Gibbs: gibbs.Config{Samples: 10, Method: bestAveraged(), Seed: 1}, GibbsWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	collect(t, e, rel)
	before := e.Stats()
	if before.CPDMisses == 0 {
		t.Fatalf("vote path did not populate the CPD cache")
	}
	// A chain over the same tuple probes the same (method, attr, evidence)
	// key on its first sweep: it must hit the vote-seeded entry instead of
	// re-voting.
	cfg := gibbs.Config{Samples: 5, BurnIn: 1, Method: bestAveraged(), Seed: 1, Cache: e.cpd}
	if _, _, err := gibbs.InferIndependent(m, cfg, tu); err != nil {
		t.Fatal(err)
	}
	after := e.Stats()
	if after.CPDHits != before.CPDHits+1 {
		t.Fatalf("chain probe did not hit the vote-seeded entry: hits %d -> %d",
			before.CPDHits, after.CPDHits)
	}
	if after.CPDMisses != before.CPDMisses {
		t.Fatalf("chain re-voted a cached evidence state: misses %d -> %d",
			before.CPDMisses, after.CPDMisses)
	}
}
