// Package derive implements the concurrent, cache-backed derivation
// engine behind the paper's end-to-end pipeline (Section VI): every
// complete tuple of an incomplete relation becomes a certain tuple of the
// output database, every incomplete tuple becomes a block of mutually
// exclusive completions distributed according to the inferred Delta_t.
//
// The engine improves on a naive sequential derivation in three ways:
//
//   - Single-missing voting is sharded across a pool of goroutines that
//     share a synchronized, single-flight memoization cache keyed by the
//     tuple's canonical evidence (relation.Tuple.Key). Distinct incomplete
//     tuples are voted exactly once; duplicates hit the cache — the same
//     treatment gibbs.ParallelTupleAtATime gives multi-missing tuples.
//   - Completed pdb.Blocks are streamed to the caller in input order
//     through a callback, so callers can persist or serve blocks without
//     ever holding the whole database in memory. Only the per-distinct
//     joint cache is retained.
//   - Results do not depend on pool sizes: voting is deterministic for
//     every VoteWorkers value, multi-missing chains are seeded by tuple
//     content so every positive GibbsWorkers count is bit-identical, and
//     emission order is the input order regardless of which goroutine
//     finished first. (GibbsWorkers <= 0 selects the tuple-DAG sampler —
//     a different, workload-dependent estimator; toggling between DAG
//     and chains changes multi-missing estimates.)
//
// An Engine may be reused across relations; its caches persist, so a
// serving deployment pays for each distinct evidence pattern once. With
// the chain sampler (GibbsWorkers > 0) a tuple's estimate is the same
// whether it was inferred on the first call or any later one; with the
// DAG sampler, estimates depend on which tuples were inferred together.
package derive

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gibbs"
	"repro/internal/pdb"
	"repro/internal/relation"
	"repro/internal/vote"
)

// Config controls an Engine.
type Config struct {
	// Method is the voting method for single-missing tuples. The zero
	// value is all-voters/averaged.
	Method vote.Method
	// Gibbs configures multi-missing inference.
	Gibbs gibbs.Config
	// MaxAlternatives caps each emitted block's alternatives (most
	// probable kept, renormalized); <= 0 keeps all combinations.
	MaxAlternatives int
	// VoteWorkers is the size of the single-missing voting pool; <= 0
	// selects GOMAXPROCS. The result does not depend on the pool size.
	VoteWorkers int
	// GibbsWorkers > 0 runs multi-missing inference with independent
	// per-tuple chains across that many goroutines; the estimates are
	// bit-identical for every positive worker count (chains are seeded by
	// tuple content). <= 0 uses the sequential tuple-DAG sampler
	// (Algorithm 3), which shares samples between subsumption-related
	// tuples — a different (workload-dependent) estimator.
	GibbsWorkers int
}

// Item is one streamed element of the derived database. Items arrive in
// input order: Index is the tuple's position in the source relation.
// Exactly one of the two interpretations applies: a complete input tuple
// is passed through as a certain tuple (Block == nil), an incomplete one
// arrives with its completion Block.
type Item struct {
	// Index is the position of the source tuple in the input relation.
	Index int
	// Tuple is the source tuple (complete for certain items, incomplete
	// for blocks).
	Tuple relation.Tuple
	// Block is the inferred completion distribution, nil for certain
	// tuples.
	Block *pdb.Block
}

// Certain reports whether the item is a pass-through complete tuple.
func (it Item) Certain() bool { return it.Block == nil }

// EmitFunc receives streamed items. Returning an error stops the stream;
// Stream returns that error.
type EmitFunc func(Item) error

// Stats instruments the engine's caches.
type Stats struct {
	// VotesComputed counts distinct single-missing evidence patterns that
	// were actually voted (cache misses).
	VotesComputed int64
	// SingleTuples counts single-missing input tuples served. The
	// difference SingleTuples - VotesComputed is the number of tuples
	// answered purely from the memo cache (duplicates).
	SingleTuples int64
	// GibbsComputed counts distinct multi-missing tuples inferred by
	// sampling; GibbsCacheHits counts multi-missing joints served from the
	// engine's cross-call cache.
	GibbsComputed  int64
	GibbsCacheHits int64
	// PointsSampled counts Gibbs draws, including burn-in.
	PointsSampled int64
}

// VoteHitRate returns the fraction of single-missing input tuples served
// from the shared memo cache rather than voted afresh.
func (s Stats) VoteHitRate() float64 {
	if s.SingleTuples == 0 {
		return 0
	}
	return float64(s.SingleTuples-s.VotesComputed) / float64(s.SingleTuples)
}

// Engine is a reusable derivation engine. It is safe for sequential reuse
// across relations; the memoization caches persist between Stream calls.
type Engine struct {
	model *core.Model
	cfg   Config

	mu     sync.Mutex
	votes  map[string]*voteEntry
	joints map[string]*dist.Joint // multi-missing joints by tuple key
	stats  Stats
}

// voteEntry is a single-flight cache slot for one distinct single-missing
// evidence pattern. The claimer computes joint/err and closes ready;
// everyone else waits on ready.
type voteEntry struct {
	ready chan struct{}
	joint *dist.Joint
	err   error
}

// New returns an engine over the model.
func New(model *core.Model, cfg Config) (*Engine, error) {
	if model == nil {
		return nil, fmt.Errorf("derive: nil model")
	}
	return &Engine{
		model:  model,
		cfg:    cfg,
		votes:  make(map[string]*voteEntry),
		joints: make(map[string]*dist.Joint),
	}, nil
}

// Stats returns a snapshot of the engine's cache instrumentation.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// lookupVote returns the cache entry for key, creating and claiming it if
// absent. claimed is true when the caller must compute the entry and close
// ready.
func (e *Engine) lookupVote(key string) (entry *voteEntry, claimed bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if en, ok := e.votes[key]; ok {
		return en, false
	}
	en := &voteEntry{ready: make(chan struct{})}
	e.votes[key] = en
	e.stats.VotesComputed++
	return en, true
}

// voteJoint runs single-attribute ensemble voting (Algorithm 2) for the
// one missing attribute of t and lifts the estimate into a 1-attribute
// joint.
func (e *Engine) voteJoint(t relation.Tuple) (*dist.Joint, error) {
	attr := t.MissingAttrs()[0]
	d, err := vote.Infer(e.model, t, attr, e.cfg.Method)
	if err != nil {
		return nil, err
	}
	j, err := dist.NewJoint([]int{attr}, []int{e.model.Schema.Attrs[attr].Card()})
	if err != nil {
		return nil, err
	}
	copy(j.P, d)
	return j, nil
}

// resolveVote returns the memoized vote joint for t, computing it if this
// caller claims the cache slot and waiting for the in-flight computation
// otherwise. It is the emitter's fetch path, so it counts served tuples.
func (e *Engine) resolveVote(t relation.Tuple, key string) (*dist.Joint, error) {
	e.mu.Lock()
	e.stats.SingleTuples++
	e.mu.Unlock()
	en, claimed := e.lookupVote(key)
	if claimed {
		en.joint, en.err = e.voteJoint(t)
		close(en.ready)
	} else {
		<-en.ready
	}
	return en.joint, en.err
}

// prefetchVote warms the cache slot for t without blocking on entries
// another goroutine already claimed.
func (e *Engine) prefetchVote(t relation.Tuple, key string) {
	en, claimed := e.lookupVote(key)
	if claimed {
		en.joint, en.err = e.voteJoint(t)
		close(en.ready)
	}
}

// inferMulti estimates joints for every distinct multi-missing tuple of
// workload that is not already cached, and returns the per-key map
// covering the whole workload.
func (e *Engine) inferMulti(workload []relation.Tuple) (map[string]*dist.Joint, error) {
	byKey := make(map[string]*dist.Joint)
	var todo []relation.Tuple
	e.mu.Lock()
	for _, t := range workload {
		k := t.Key()
		if _, dup := byKey[k]; dup {
			continue
		}
		if j, ok := e.joints[k]; ok {
			byKey[k] = j
			e.stats.GibbsCacheHits++
			continue
		}
		byKey[k] = nil // placeholder: marks the key as scheduled
		todo = append(todo, t)
	}
	e.mu.Unlock()
	if len(todo) == 0 {
		return byKey, nil
	}
	s, err := gibbs.New(e.model, e.cfg.Gibbs)
	if err != nil {
		return nil, err
	}
	var res *gibbs.Result
	if e.cfg.GibbsWorkers > 0 {
		res, err = s.ParallelTupleAtATime(todo, e.cfg.GibbsWorkers)
	} else {
		res, err = s.TupleDAGRun(todo)
	}
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	for i, t := range res.Tuples {
		k := t.Key()
		byKey[k] = res.Dists[i]
		e.joints[k] = res.Dists[i]
	}
	e.stats.GibbsComputed += int64(len(res.Tuples))
	e.stats.PointsSampled += int64(res.PointsSampled)
	e.mu.Unlock()
	return byKey, nil
}

// block expands a memoized joint into the completion block of t.
func (e *Engine) block(t relation.Tuple, j *dist.Joint) (*pdb.Block, error) {
	if j == nil {
		return nil, fmt.Errorf("derive: no inferred joint for tuple %v", t)
	}
	return pdb.NewBlock(t, j, e.cfg.MaxAlternatives)
}

// Stream derives the probabilistic database of rel and emits it item by
// item, in input order: complete tuples pass through as certain items,
// incomplete tuples arrive as blocks. Single-missing voting runs on the
// engine's worker pool concurrently with emission; multi-missing sampling
// runs in the background and the emitter blocks on it only when it
// reaches the first multi-missing tuple. If emit returns an error the
// stream stops and Stream returns that error after draining its workers.
func (e *Engine) Stream(rel *relation.Relation, emit EmitFunc) error {
	if rel == nil {
		return fmt.Errorf("derive: nil relation")
	}

	// Classify the workload.
	var multi []relation.Tuple
	numSingles := 0
	for _, t := range rel.Tuples {
		switch {
		case t.IsComplete():
		case t.NumMissing() == 1:
			numSingles++
		default:
			multi = append(multi, t)
		}
	}

	// Multi-missing inference runs holistically in the background; the
	// emitter waits for it only when it reaches a multi-missing tuple.
	var (
		multiDone   chan struct{}
		multiJoints map[string]*dist.Joint
		multiErr    error
	)
	if len(multi) > 0 {
		multiDone = make(chan struct{})
		go func() {
			defer close(multiDone)
			multiJoints, multiErr = e.inferMulti(multi)
		}()
	}

	// The voting pool prefetches single-missing estimates ahead of the
	// emitter. quit stops the dispatcher early when emission fails.
	quit := make(chan struct{})
	var wg sync.WaitGroup
	if numSingles > 0 {
		workers := e.cfg.VoteWorkers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > numSingles {
			workers = numSingles
		}
		work := make(chan relation.Tuple)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for t := range work {
					e.prefetchVote(t, t.Key())
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(work)
			for _, t := range rel.Tuples {
				if t.IsComplete() || t.NumMissing() != 1 {
					continue
				}
				select {
				case work <- t:
				case <-quit:
					return
				}
			}
		}()
	}

	// Emit in input order. The emitter steals unclaimed vote work
	// (resolveVote computes inline when the pool has not reached the
	// entry yet), so it never idles behind the pool.
	var err error
	for i, t := range rel.Tuples {
		switch {
		case t.IsComplete():
			err = emit(Item{Index: i, Tuple: t})
		case t.NumMissing() == 1:
			var j *dist.Joint
			j, err = e.resolveVote(t, t.Key())
			if err == nil {
				var b *pdb.Block
				if b, err = e.block(t, j); err == nil {
					err = emit(Item{Index: i, Tuple: t, Block: b})
				}
			}
		default:
			<-multiDone
			err = multiErr
			if err == nil {
				var b *pdb.Block
				if b, err = e.block(t, multiJoints[t.Key()]); err == nil {
					err = emit(Item{Index: i, Tuple: t, Block: b})
				}
			}
		}
		if err != nil {
			break
		}
	}
	close(quit)
	wg.Wait()
	if multiDone != nil {
		<-multiDone
	}
	return err
}

// Derive collects the stream into a materialized pdb.Database: certain
// tuples in input order, blocks in input order.
func (e *Engine) Derive(rel *relation.Relation) (*pdb.Database, error) {
	db := pdb.NewDatabase(rel.Schema)
	err := e.Stream(rel, func(it Item) error {
		if it.Certain() {
			return db.AddCertain(it.Tuple)
		}
		return db.AddBlock(it.Block)
	})
	if err != nil {
		return nil, err
	}
	return db, nil
}
