// Package derive implements the long-lived, concurrency-safe derivation
// engine behind the paper's end-to-end pipeline (Section VI): every
// complete tuple of an incomplete relation becomes a certain tuple of the
// output database, every incomplete tuple becomes a block of mutually
// exclusive completions distributed according to the inferred Delta_t.
//
// The engine improves on a naive sequential derivation in four ways:
//
//   - Single-missing voting is sharded across a pool of goroutines that
//     share a synchronized, single-flight memoization cache keyed by the
//     tuple's canonical evidence (relation.Tuple.Key). Distinct incomplete
//     tuples are voted exactly once; duplicates hit the cache.
//   - Multi-missing Gibbs sampling is scheduled per block (GibbsWorkers >
//     0): each distinct multi-missing tuple is an independent work item,
//     prefetched ahead of the emitter through its own single-flight cache,
//     so the first multi-missing block is ready as soon as its own chain
//     has run — not when the whole workload batch has. (GibbsWorkers <= 0
//     selects the sequential tuple-DAG sampler instead, which shares
//     samples across the workload and therefore runs as one holistic
//     background batch.)
//   - Completed pdb.Blocks are streamed to the caller in input order
//     through a callback or a pluggable Sink, so callers can persist or
//     serve blocks without ever holding the whole database in memory.
//   - Results do not depend on pool sizes: voting is deterministic for
//     every VoteWorkers value, multi-missing chains are seeded by tuple
//     content so every positive GibbsWorkers count is bit-identical, and
//     emission order is the input order regardless of which goroutine
//     finished first. Only toggling between the DAG sampler and chains
//     changes multi-missing estimates — they are different estimators.
//
// An Engine is safe for concurrent use: any number of goroutines may run
// overlapping Stream calls against one engine. The memoization caches are
// shared and persist across calls, so a serving deployment pays for each
// distinct evidence pattern once, no matter which request saw it first.
// With the chain sampler (GibbsWorkers > 0) a tuple's estimate is the same
// whether it was inferred by this request, an earlier one, or a concurrent
// one; with the DAG sampler, estimates depend on which tuples were
// inferred together, so concurrent serving deployments should prefer
// chains.
package derive

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"time"

	"repro/internal/clockcache"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/faultinject"
	"repro/internal/gibbs"
	"repro/internal/obs"
	"repro/internal/pdb"
	"repro/internal/relation"
	"repro/internal/vote"
)

// Config controls an Engine.
type Config struct {
	// Method is the voting method for single-missing tuples. The zero
	// value is all-voters/averaged.
	Method vote.Method
	// Gibbs configures multi-missing inference.
	Gibbs gibbs.Config
	// MaxAlternatives caps each emitted block's alternatives (most
	// probable kept, renormalized); <= 0 keeps all combinations.
	MaxAlternatives int
	// VoteWorkers is the default size of the per-request single-missing
	// voting pool; <= 0 selects GOMAXPROCS. The result does not depend on
	// the pool size.
	VoteWorkers int
	// GibbsWorkers > 0 runs multi-missing inference with independent
	// per-tuple chains scheduled block by block across that many
	// goroutines per request; the estimates are bit-identical for every
	// positive worker count (chains are seeded by tuple content). <= 0
	// uses the sequential tuple-DAG sampler (Algorithm 3), which shares
	// samples between subsumption-related tuples — a different
	// (workload-dependent) estimator that runs as one background batch.
	// The choice of estimator is engine-level and fixed at construction,
	// so the engine's cross-request joint cache stays coherent.
	GibbsWorkers int
	// CacheEntries bounds each of the engine's memoization caches (the
	// single-missing vote cache, the multi-missing joint cache, and the
	// shared local-CPD cache) to that many entries, evicted CLOCK-wise.
	// <= 0 leaves the vote and joint caches unbounded (they hold one entry
	// per distinct damage pattern) and caps the CPD cache at its default
	// (gibbs.DefaultCPDCacheEntries; CPD entries grow with the sampled
	// state space, not the workload, so they are always bounded).
	// Evictions never change emitted streams in chains mode — every cached
	// value is a deterministic function of the model and its key — they
	// only cost recomputation.
	CacheEntries int
}

// chains reports whether the engine uses per-tuple independent chains
// (shardable) rather than the holistic tuple-DAG batch.
func (c Config) chains() bool { return c.GibbsWorkers > 0 }

// Pools sizes the worker pools of one Stream request. The zero value
// inherits the engine Config's VoteWorkers/GibbsWorkers; positive fields
// override them for this request only. Pool sizes never change the
// emitted stream — only how many goroutines compute it — so per-request
// sharding is always safe. (In DAG mode GibbsWorkers has no pool to size;
// the estimator choice itself is fixed at engine construction.)
type Pools struct {
	VoteWorkers  int
	GibbsWorkers int
}

// PanicError is the typed per-request error a recovered panic becomes:
// inference panics (a poisoned model, an injected fault) are confined to
// the requests that hit them instead of crashing the process, and the
// engine's shared caches stay serviceable — the panicking computation's
// cache slot is invalidated, so a later identical request recomputes it
// from scratch. Match with errors.As; Stats.PanicsRecovered counts them.
type PanicError struct {
	// Op names the goroutine boundary that recovered ("vote", "chain",
	// "emit", "prefetch", "dag", "watch").
	Op string
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("derive: recovered panic in %s: %v", e.Op, e.Value)
}

// SchemaMismatchError reports a relation whose schema is not
// attribute-for-attribute identical to the model's. It is returned up
// front, before any inference runs.
type SchemaMismatchError struct {
	// Model and Data are the two schemas that failed to match.
	Model, Data *relation.Schema
	// Diff is a one-line description of the first difference.
	Diff string
}

func (e *SchemaMismatchError) Error() string {
	return fmt.Sprintf("derive: relation schema does not match model schema: %s", e.Diff)
}

// Item is one streamed element of the derived database. Items arrive in
// input order: Index is the tuple's position in the source relation.
// Exactly one of the two interpretations applies: a complete input tuple
// is passed through as a certain tuple (Block == nil), an incomplete one
// arrives with its completion Block.
//
// Blocks are shared, not copied: every duplicate of a damage pattern —
// within a stream, across overlapping streams, and across requests for
// the engine's lifetime — receives the same *pdb.Block, served from the
// engine cache. Consumers must treat a received Block (including its
// alternatives and their tuples) as immutable; callers that need to
// modify one must copy it first.
type Item struct {
	// Index is the position of the source tuple in the input relation.
	Index int
	// Tuple is the source tuple (complete for certain items, incomplete
	// for blocks).
	Tuple relation.Tuple
	// Block is the inferred completion distribution, nil for certain
	// tuples.
	Block *pdb.Block
}

// Certain reports whether the item is a pass-through complete tuple.
func (it Item) Certain() bool { return it.Block == nil }

// EmitFunc receives streamed items. Returning an error stops the stream;
// Stream returns that error.
type EmitFunc func(Item) error

// Stats instruments the engine's caches. With the exception of the live
// gauges (Watchers, Datasets), all counters are monotonically
// non-decreasing over the engine's lifetime; concurrent requests update
// them atomically under the engine lock.
type Stats struct {
	// VotesComputed counts distinct single-missing evidence patterns that
	// were actually voted (cache misses).
	VotesComputed int64
	// SingleTuples counts single-missing input tuples served. The
	// difference SingleTuples - VotesComputed is the number of tuples
	// answered purely from the memo cache (duplicates).
	SingleTuples int64
	// GibbsComputed counts distinct multi-missing tuples actually
	// inferred by sampling (cache misses).
	GibbsComputed int64
	// MultiTuples counts multi-missing input tuples served.
	MultiTuples int64
	// GibbsCacheHits counts multi-missing resolutions served from the
	// engine's cache (in-flight or completed) rather than sampled by the
	// requester itself.
	GibbsCacheHits int64
	// PointsSampled counts Gibbs draws, including burn-in.
	PointsSampled int64
	// Streams counts completed Stream calls (successful or not).
	Streams int64
	// Evictions counts entries dropped from the engine's bounded vote and
	// joint caches (always 0 when Config.CacheEntries <= 0).
	Evictions int64
	// CPDHits, CPDMisses, and CPDEvictions instrument the shared local-CPD
	// cache: probes served, probes missed, and entries dropped by its
	// CLOCK sweep.
	CPDHits, CPDMisses, CPDEvictions int64

	// BoundsComputed counts dissociation-bound envelopes (BoundCPD)
	// actually enumerated; BoundHits counts envelope probes served from
	// the shared CPD cache instead.
	BoundsComputed, BoundHits int64

	// EnvelopeHits and EnvelopeMisses instrument the shared combined-
	// envelope interval cache (BoundCPDShared): probes of a finished
	// per-tuple [lo, hi] interval served from the sharded CLOCK cache,
	// and probes that missed — whether the miss was then enumerated or
	// declined by the query cost model. Overlapping concurrent queries
	// show up here as the second query's hits.
	EnvelopeHits, EnvelopeMisses int64

	// Replans counts executor re-plan rounds — points where a query
	// evaluation re-weighed its remaining candidates against the
	// now-tighter aggregate interval and decided at least one of them
	// without inference (a topk wave cut, an exists collective refute).
	Replans int64

	// Fail-soft counters.

	// PanicsRecovered counts panics caught at goroutine boundaries (vote
	// and Gibbs pools, prefetchers, sinks, watch fan-out) and converted
	// into per-request errors instead of crashing the process.
	PanicsRecovered int64
	// DeadlineMisses counts requests whose deadline expired before exact
	// evaluation finished — streams cut short and queries that had to
	// degrade (every Degraded evaluation is also a deadline miss).
	DeadlineMisses int64
	// Degraded counts query evaluations that answered remaining tuples
	// from their sound bound intervals instead of exact inference because
	// the request's deadline budget ran out.
	Degraded int64

	// Live-evidence counters (see dataset.go).

	// Observations counts evidence deltas applied to live datasets
	// (no-ops and rejected observations excluded).
	Observations int64
	// InvalidatedEntries counts conditioned-block cache entries removed
	// for correctness: superseded by a newer observation epoch (eagerly on
	// observe, lazily on a tag-mismatch read) or dropped with their
	// dataset. Disjoint from Evictions.
	InvalidatedEntries int64
	// Watchers is the number of live watch subscriptions (a gauge).
	Watchers int64
	// Datasets is the number of registered live datasets (a gauge).
	Datasets int64

	// Query counters, reported by the extensional query evaluator
	// (internal/query) through RecordQuery. They partition the tuples a
	// query scanned by how much inference each one cost.

	// Queries counts completed query evaluations against the engine.
	Queries int64
	// QueryTuples counts input tuples scanned by queries.
	QueryTuples int64
	// QueryPruned counts tuples decided with no inference at all:
	// complete tuples, tuples whose known values (or a structurally
	// empty satisfying set) refuted the predicates outright, and tuples
	// early termination made irrelevant.
	QueryPruned int64
	// QueryBounded counts tuples decided without a block expansion or a
	// Gibbs chain: single-missing tuples answered from the shared CPD
	// cache, and multi-missing tuples decided by a dissociation bound
	// interval.
	QueryBounded int64
	// QueryDerived counts tuples queries sent to full block derivation.
	QueryDerived int64
	// BoundRefutes counts query tuples excluded by a bound interval's
	// upper side (Hi below the decision threshold) — selectivity the
	// bound engine delivered without sampling.
	BoundRefutes int64
	// QueryBoundWidth accumulates the width of the final probability
	// bound interval of each scanned tuple: 0 for evidence- or
	// CPD-decided tuples, the real dissociation-interval width for
	// multi-missing tuples that received one (decided or not), and 1 only
	// for tuples whose bounds stayed vacuous and had to be derived.
	QueryBoundWidth float64
	// QueriesDissociated counts the completed queries whose answer was
	// computed over a dissociated lineage: an unsafe SPJ plan evaluated
	// extensionally, reporting a sound upper bound instead of the exact
	// intensional mass.
	QueriesDissociated int64
}

// QueryBoundTightness returns 1 minus the average bound-interval width
// over all query-scanned tuples that were classified (pruned, bounded, or
// derived) — 1 when bounds alone decided every tuple, 0 when every tuple
// needed full derivation.
func (s Stats) QueryBoundTightness() float64 {
	classified := s.QueryPruned + s.QueryBounded + s.QueryDerived
	if classified == 0 {
		return 0
	}
	return 1 - s.QueryBoundWidth/float64(classified)
}

// BoundHitRate returns the fraction of dissociation-envelope probes
// served from the shared CPD cache rather than enumerated afresh.
func (s Stats) BoundHitRate() float64 {
	total := s.BoundHits + s.BoundsComputed
	if total == 0 {
		return 0
	}
	return float64(s.BoundHits) / float64(total)
}

// EnvelopeHitRate returns the fraction of shared interval-cache probes
// (BoundCPDShared) served from the cache rather than missed.
func (s Stats) EnvelopeHitRate() float64 {
	total := s.EnvelopeHits + s.EnvelopeMisses
	if total == 0 {
		return 0
	}
	return float64(s.EnvelopeHits) / float64(total)
}

// CPDHitRate returns the fraction of local-CPD probes served from the
// shared cache.
func (s Stats) CPDHitRate() float64 {
	total := s.CPDHits + s.CPDMisses
	if total == 0 {
		return 0
	}
	return float64(s.CPDHits) / float64(total)
}

// VoteHitRate returns the fraction of single-missing input tuples served
// from the shared memo cache rather than voted afresh. Clamped at 0: the
// prefetch pools run ahead of the emitters, so a snapshot taken
// mid-stream (or after an aborted stream) can have computed more
// patterns than it has served tuples.
func (s Stats) VoteHitRate() float64 {
	return hitRate(s.SingleTuples, s.VotesComputed)
}

// GibbsHitRate returns the fraction of multi-missing input tuples served
// from the shared joint cache rather than sampled afresh, clamped at 0
// like VoteHitRate.
func (s Stats) GibbsHitRate() float64 {
	return hitRate(s.MultiTuples, s.GibbsComputed)
}

func hitRate(served, computed int64) float64 {
	if served == 0 || computed > served {
		return 0
	}
	return float64(served-computed) / float64(served)
}

// Engine is a long-lived, reusable derivation engine. It is safe for
// concurrent use by multiple goroutines; the memoization caches are
// shared across overlapping Stream calls and persist between them.
type Engine struct {
	model *core.Model
	cfg   Config

	// cpd is the shared, sharded, bounded local-CPD cache: one per engine,
	// used by every Gibbs chain (parallel or DAG) and consulted by the
	// single-missing vote path. It has its own internal locking.
	cpd *gibbs.CPDCache

	mu     sync.Mutex
	votes  *clockcache.Map[*entry]      // single-missing joints by evidence key
	gibbs  *clockcache.Map[*entry]      // multi-missing joints by evidence key (chain mode)
	joints *clockcache.Map[*dist.Joint] // multi-missing joints by evidence key (DAG mode)
	// observed caches conditioned posterior blocks of live datasets, keyed
	// "dataset\x00index" and tagged with the block's observation epoch;
	// see dataset.go for the coherence story.
	observed *clockcache.Map[*pdb.Block]
	stats    Stats

	// dsMu guards the live-dataset registry. Never held together with mu.
	dsMu     sync.Mutex
	datasets map[string]*Dataset
	dsSeq    int

	// dagMu serializes DAG-mode batches so overlapping streams never
	// re-sample or overwrite each other's cached joints. Never acquired
	// while holding mu.
	dagMu sync.Mutex
}

// entry is a single-flight cache slot for one distinct evidence pattern.
// The claimer computes joint/block/err and closes ready; everyone else
// waits on ready. The expanded completion block is memoized alongside the
// joint — blocks are immutable once built, so every duplicate of a damage
// pattern shares one block instead of re-expanding the joint per emission.
type entry struct {
	ready chan struct{}
	joint *dist.Joint
	block *pdb.Block
	err   error
}

// entryDone reports whether an entry's computation has finished — only
// finished entries may be evicted, so a claimer's pending write is never
// orphaned into an unreachable slot while waiters still expect the memo.
func entryDone(en *entry) bool {
	select {
	case <-en.ready:
		return true
	default:
		return false
	}
}

// New returns an engine over the model.
func New(model *core.Model, cfg Config) (*Engine, error) {
	if model == nil {
		return nil, fmt.Errorf("derive: nil model")
	}
	e := &Engine{
		model:    model,
		cfg:      cfg,
		cpd:      gibbs.NewCPDCache(cfg.CacheEntries),
		votes:    clockcache.New[*entry](cfg.CacheEntries, entryDone),
		gibbs:    clockcache.New[*entry](cfg.CacheEntries, entryDone),
		joints:   clockcache.New[*dist.Joint](cfg.CacheEntries, nil),
		observed: clockcache.New[*pdb.Block](cfg.CacheEntries, nil),
		datasets: make(map[string]*Dataset),
	}
	// Every sampler the engine spawns — parallel chains and DAG batches
	// alike — shares the engine-level CPD memo.
	e.cfg.Gibbs.Cache = e.cpd
	return e, nil
}

// Model returns the model the engine serves.
func (e *Engine) Model() *core.Model { return e.model }

// MaxAlternatives returns the engine's block-alternative cap (<= 0 keeps
// every completion). The query evaluator consults it: only uncapped
// blocks equal the marginal CPD, so bound-based pruning is sound only
// when it is <= 0.
func (e *Engine) MaxAlternatives() int { return e.cfg.MaxAlternatives }

// Stats returns a snapshot of the engine's cache instrumentation.
func (e *Engine) Stats() Stats {
	cpd := e.cpd.Stats()
	e.mu.Lock()
	st := e.stats
	st.Evictions = e.votes.Evictions() + e.gibbs.Evictions() + e.joints.Evictions() + e.observed.Evictions()
	st.InvalidatedEntries = e.observed.Invalidations()
	st.CPDHits = cpd.Hits
	st.CPDMisses = cpd.Misses
	st.CPDEvictions = cpd.Evictions
	e.mu.Unlock()
	e.dsMu.Lock()
	st.Datasets = int64(len(e.datasets))
	e.dsMu.Unlock()
	return st
}

// lookup returns the cache entry for key in m, creating and claiming it if
// absent. claimed is true when the caller must compute the entry and close
// ready. The nilable counters are bumped under the same lock — computed
// on a claim, served once per call, hits once per found entry — so
// resolve paths pay a single lock acquisition. The byte key is copied
// only when a new entry is claimed; the hit path does not allocate.
func (e *Engine) lookup(m *clockcache.Map[*entry], key []byte, computed, served, hits *int64) (en *entry, claimed bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if faultinject.Enabled() && faultinject.Fire("cache.storm") {
		// Chaos harness: an eviction storm drops every completed entry of
		// the probed cache. In-flight single-flight slots are spared so a
		// claimer's pending write is never orphaned mid-computation; in
		// chains mode the storm costs recomputation, never changes answers.
		var doomed []string
		m.Range(func(k string, v *entry) bool {
			if entryDone(v) {
				doomed = append(doomed, k)
			}
			return true
		})
		for _, k := range doomed {
			m.Invalidate(k)
		}
	}
	if served != nil {
		*served++
	}
	if en, ok := m.Get(key); ok {
		if hits != nil {
			*hits++
		}
		return en, false
	}
	en = &entry{ready: make(chan struct{})}
	m.Put(key, en)
	if computed != nil {
		*computed++
	}
	return en, true
}

// QueryRecord carries one query evaluation's pruning counters into
// RecordQuery. Tuples = Pruned + Bounded + Derived.
type QueryRecord struct {
	Tuples, Pruned, Bounded, Derived int64
	// BoundRefutes counts tuples excluded by a bound interval's upper
	// side (a subset of Bounded).
	BoundRefutes int64
	// BoundWidth accumulates the final bound-interval width per scanned
	// tuple (see Stats.QueryBoundWidth).
	BoundWidth float64
	// Dissociated marks an evaluation whose answer dissociated an unsafe
	// SPJ lineage (see Stats.QueriesDissociated).
	Dissociated bool
	// Degraded marks an evaluation that ran out of deadline budget and
	// answered remaining tuples from sound bound intervals (see
	// Stats.Degraded; it also counts as a deadline miss).
	Degraded bool
	// Replans counts the evaluation's re-plan rounds (see Stats.Replans).
	Replans int64
}

// RecordQuery folds one query evaluation's pruning counters into the
// engine stats. internal/query calls it once per completed evaluation.
// QueryDecideCounts returns the engine's lifetime QueryBounded /
// QueryDerived counters — the query cost model's observed-selectivity
// input — without paying for a full Stats snapshot (one lock, two
// loads, no cache-shard sweeps).
func (e *Engine) QueryDecideCounts() (bounded, derived int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats.QueryBounded, e.stats.QueryDerived
}

func (e *Engine) RecordQuery(r QueryRecord) {
	e.mu.Lock()
	e.stats.Queries++
	e.stats.QueryTuples += r.Tuples
	e.stats.QueryPruned += r.Pruned
	e.stats.QueryBounded += r.Bounded
	e.stats.QueryDerived += r.Derived
	e.stats.BoundRefutes += r.BoundRefutes
	e.stats.QueryBoundWidth += r.BoundWidth
	e.stats.Replans += r.Replans
	if r.Dissociated {
		e.stats.QueriesDissociated++
	}
	if r.Degraded {
		e.stats.Degraded++
		e.stats.DeadlineMisses++
	}
	e.mu.Unlock()
}

// MarginalCPD returns the voted distribution of attribute attr — which
// must be missing in t — given t's known values, through the engine's
// shared local-CPD cache: the same estimate, from the same cache slot, the
// single-missing derivation path uses. hit reports whether it was served
// from cache. The returned distribution is shared and must not be mutated.
//
// For a single-missing tuple this marginal is exactly the derived block's
// distribution, so query evaluation can decide such tuples without ever
// expanding a block. For multi-missing tuples the voted marginal is a
// different estimator than the Gibbs joint's marginal — an approximation,
// not a bound — so exact evaluation must not prune on it.
func (e *Engine) MarginalCPD(t relation.Tuple, attr int) (d dist.Dist, hit bool, err error) {
	if attr < 0 || attr >= len(t) || t[attr] != relation.Missing {
		return nil, false, fmt.Errorf("derive: attribute %d is not missing in %v", attr, t)
	}
	key := gibbs.AppendCPDKey(nil, attr, e.cfg.Method, t)
	if d, ok := e.cpd.Get(key); ok {
		return d, true, nil
	}
	d, err = vote.Infer(e.model, t, attr, e.cfg.Method)
	if err != nil {
		return nil, false, err
	}
	e.cpd.Put(key, d)
	return d, false, nil
}

// voteJoint runs single-attribute ensemble voting (Algorithm 2) for the
// one missing attribute of t and lifts the estimate into a 1-attribute
// joint. It shares the engine's CPD cache with the Gibbs chains: a
// single-missing tuple's evidence state is exactly a chain state with one
// attribute under resampling, so whichever path sees the pattern first
// spares the other the vote.
func (e *Engine) voteJoint(t relation.Tuple) (*dist.Joint, error) {
	faultinject.Fire("derive.vote")
	attr := t.MissingAttrs()[0]
	d, _, err := e.MarginalCPD(t, attr)
	if err != nil {
		return nil, err
	}
	j, err := dist.NewJoint([]int{attr}, []int{e.model.Schema.Attrs[attr].Card()})
	if err != nil {
		return nil, err
	}
	copy(j.P, d)
	return j, nil
}

// chainJoint runs the content-seeded independent chain for one distinct
// multi-missing tuple — the per-block unit of work in chain mode.
func (e *Engine) chainJoint(t relation.Tuple) (*dist.Joint, error) {
	faultinject.Fire("derive.chain")
	j, points, err := gibbs.InferIndependent(e.model, e.cfg.Gibbs, t)
	e.mu.Lock()
	e.stats.PointsSampled += int64(points)
	if err == nil {
		e.stats.GibbsComputed++
	}
	e.mu.Unlock()
	return j, err
}

// resolveVote returns the memoized vote joint for t, computing it if this
// caller claims the cache slot and waiting for the in-flight computation
// otherwise (or until ctx is canceled). It is the emitter's fetch path, so
// it counts served tuples. hit reports whether the entry already existed.
func (e *Engine) resolveVote(ctx context.Context, t relation.Tuple, key []byte) (b *pdb.Block, hit bool, err error) {
	en, claimed := e.lookup(e.votes, key, &e.stats.VotesComputed, &e.stats.SingleTuples, nil)
	if claimed {
		e.fillVote(en, t, key)
	} else if err := waitReady(ctx, en.ready); err != nil {
		return nil, true, err
	}
	return en.block, !claimed, en.err
}

// waitReady blocks until ready closes or ctx is canceled. A canceled wait
// never abandons a claimed computation — the claimer always finishes and
// closes the entry, so the cache is never poisoned by cancellation.
// The fast path (entry already computed — the steady-state cache-hit
// serving path) is a single non-blocking probe; only genuine waits on
// another goroutine's in-flight computation read the clock.
func waitReady(ctx context.Context, ready <-chan struct{}) error {
	select {
	case <-ready:
		return nil
	default:
	}
	start := time.Now()
	defer prefetchWaitSeconds.Since(start)
	select {
	case <-ready:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// prefetchVote warms the vote cache slot for t without blocking on entries
// another goroutine already claimed.
func (e *Engine) prefetchVote(t relation.Tuple, key []byte) {
	en, claimed := e.lookup(e.votes, key, &e.stats.VotesComputed, nil, nil)
	if claimed {
		e.fillVote(en, t, key)
	}
}

// fillVote computes a claimed vote entry: the 1-attribute joint and its
// expanded block. A panic during the computation is recovered into
// en.err and the slot is invalidated; the deferred close always runs
// (after the recovery, so waiters never observe a half-written entry).
func (e *Engine) fillVote(en *entry, t relation.Tuple, key []byte) {
	defer close(en.ready)
	defer e.recoverEntry(en, e.votes, key, "vote")
	defer voteSeconds.Since(time.Now())
	en.joint, en.err = e.voteJoint(t)
	if en.err == nil {
		en.block, en.err = e.block(t, en.joint)
	}
}

// recoverEntry is the deferred panic boundary of a single-flight
// computation: it turns a panic into a typed PanicError on the entry
// (visible to every waiter) and invalidates the cache slot so the
// poisoned result is never memoized — the next identical request claims
// a fresh slot and recomputes. Registered after the close defer, so it
// runs first and the entry is complete when ready closes.
func (e *Engine) recoverEntry(en *entry, m *clockcache.Map[*entry], key []byte, op string) {
	r := recover()
	if r == nil {
		return
	}
	en.joint, en.block = nil, nil
	en.err = &PanicError{Op: op, Value: r, Stack: debug.Stack()}
	e.mu.Lock()
	e.stats.PanicsRecovered++
	m.Invalidate(string(key))
	e.mu.Unlock()
}

// resolveGibbs returns the memoized multi-missing joint for t in chain
// mode, sampling inline if this caller claims the slot (the emitter steals
// work the prefetch pool has not reached) and waiting otherwise (or until
// ctx is canceled). It is the emitter's fetch path, so it counts served
// tuples and cache hits.
func (e *Engine) resolveGibbs(ctx context.Context, t relation.Tuple, key []byte) (b *pdb.Block, hit bool, err error) {
	en, claimed := e.lookup(e.gibbs, key, nil, &e.stats.MultiTuples, &e.stats.GibbsCacheHits)
	if claimed {
		e.fillGibbs(en, t, key)
	} else if err := waitReady(ctx, en.ready); err != nil {
		return nil, true, err
	}
	return en.block, !claimed, en.err
}

// resolveDAG serves a multi-missing tuple on a DAG-mode engine: from the
// cross-request joint cache when its estimate is already there, otherwise
// by running a single-tuple DAG batch (deterministic per tuple — a
// one-tuple workload has no subsumption partners to share samples with).
// Which workload a shared tuple was first sampled alongside still decides
// its cached estimate; that DAG-mode caveat is unchanged. Cancellation is
// batch-grained: ctx is honored before a batch starts (including after
// the wait on the engine's DAG serialization), but a batch already
// sampling runs to completion, exactly like StreamContext's background
// DAG batch.
func (e *Engine) resolveDAG(ctx context.Context, t relation.Tuple) (*pdb.Block, bool, error) {
	k := t.Key()
	e.mu.Lock()
	e.stats.MultiTuples++
	j, hit := e.joints.GetString(k)
	if hit {
		e.stats.GibbsCacheHits++
	}
	e.mu.Unlock()
	if !hit {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		byKey, err := e.inferMulti(ctx, []relation.Tuple{t})
		if err != nil {
			return nil, false, err
		}
		j = byKey[k]
	}
	b, err := e.block(t, j)
	return b, hit, err
}

// resolveTier names the engine path that resolves one incomplete tuple.
// The same classification schedules prefetch pools and serves
// ResolveBlock, so the query executor's tier ordering and the streaming
// path always agree on where a tuple's work happens.
type resolveTier uint8

const (
	// tierComplete: nothing to resolve.
	tierComplete resolveTier = iota
	// tierVote: single-missing, decided by the shared vote path.
	tierVote
	// tierChain: multi-missing on a chains-mode engine — one
	// content-seeded chain per distinct tuple, shardable across pools.
	tierChain
	// tierDAG: multi-missing on a DAG-mode engine — holistic batches,
	// serialized on the engine, nothing to shard.
	tierDAG
)

// tier classifies t onto its resolution path.
func (e *Engine) tier(t relation.Tuple) resolveTier {
	switch {
	case t.IsComplete():
		return tierComplete
	case t.NumMissing() == 1:
		return tierVote
	case e.cfg.chains():
		return tierChain
	default:
		return tierDAG
	}
}

// ResolveBlock returns the completion block of one incomplete tuple
// through the engine's caches, exactly as a Stream over a relation
// containing t would emit it: single-missing tuples via the shared vote
// path, multi-missing tuples via the engine's estimator (content-seeded
// chains, or a single-tuple DAG batch on a DAG-mode engine). hit reports
// whether the answer was served from a cache rather than inferred by this
// call. It is the per-tuple entry point of the query evaluator and the
// lazy database; the returned block is shared and must be treated as
// immutable.
func (e *Engine) ResolveBlock(ctx context.Context, t relation.Tuple) (b *pdb.Block, hit bool, err error) {
	switch e.tier(t) {
	case tierComplete:
		return nil, false, fmt.Errorf("derive: tuple %v is complete", t)
	case tierVote:
		return e.resolveVote(ctx, t, t.AppendKey(nil))
	case tierChain:
		return e.resolveGibbs(ctx, t, t.AppendKey(nil))
	default:
		return e.resolveDAG(ctx, t)
	}
}

// PrefetchBlocks warms the engine's caches for the given incomplete
// tuples across the request's worker pools, in order, until every tuple is
// claimed or ctx is canceled. Pool sizes affect scheduling only — a
// subsequent ResolveBlock serves bit-identical results whether or not the
// prefetch ran. Complete tuples are skipped; on a DAG-mode engine
// multi-missing tuples are skipped too (DAG batches are serialized on the
// engine, so there is nothing to shard). It blocks until its workers have
// drained.
func (e *Engine) PrefetchBlocks(ctx context.Context, tuples []relation.Tuple, pools Pools) {
	var singles, multis []relation.Tuple
	for _, t := range tuples {
		switch e.tier(t) {
		case tierVote:
			singles = append(singles, t)
		case tierChain:
			multis = append(multis, t)
		}
	}
	// quit is never closed here: the dispatchers run to the end of their
	// tuple lists unless ctx cancels them.
	quit := make(chan struct{})
	var wg sync.WaitGroup
	if len(singles) > 0 {
		singles = distinctTuples(singles)
		e.spawnPool(ctx, &wg, quit, poolSize(pools.VoteWorkers, e.cfg.VoteWorkers, len(singles)),
			singles, e.prefetchVote)
	}
	if len(multis) > 0 {
		multis = distinctTuples(multis)
		e.spawnPool(ctx, &wg, quit, poolSize(pools.GibbsWorkers, e.cfg.GibbsWorkers, len(multis)),
			multis, e.prefetchGibbs)
	}
	wg.Wait()
}

// prefetchGibbs warms the joint cache slot for t without blocking on
// entries another goroutine already claimed.
func (e *Engine) prefetchGibbs(t relation.Tuple, key []byte) {
	en, claimed := e.lookup(e.gibbs, key, nil, nil, nil)
	if claimed {
		e.fillGibbs(en, t, key)
	}
}

// fillGibbs computes a claimed chain-mode entry: the sampled joint and its
// expanded block. GibbsComputed is counted by chainJoint on success
// instead of at claim time, so a tuple whose chain failed is not reported
// as computed. Panics recover into en.err like fillVote's.
func (e *Engine) fillGibbs(en *entry, t relation.Tuple, key []byte) {
	defer close(en.ready)
	defer e.recoverEntry(en, e.gibbs, key, "chain")
	defer chainSeconds.Since(time.Now())
	en.joint, en.err = e.chainJoint(t)
	if en.err == nil {
		en.block, en.err = e.block(t, en.joint)
	}
}

// inferMulti estimates joints for every distinct multi-missing tuple of
// workload that is not already cached, with the holistic tuple-DAG
// sampler, and returns the per-key map covering the whole workload. It is
// the DAG-mode path; chain mode schedules per block instead. dagMu
// serializes overlapping DAG batches: without it, two concurrent streams
// sharing tuples would each sample the full workload and racily
// overwrite each other's cached joints. (Which workload a shared tuple
// is sampled alongside still depends on arrival order — the DAG
// estimator is workload-dependent by construction, which is why serving
// deployments should prefer chains.) ctx is consulted once more after
// the dagMu wait, so a request canceled while queued behind another
// batch never starts sampling; a started batch runs to completion.
func (e *Engine) inferMulti(ctx context.Context, workload []relation.Tuple) (map[string]*dist.Joint, error) {
	e.dagMu.Lock()
	defer e.dagMu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	byKey := make(map[string]*dist.Joint)
	var todo []relation.Tuple
	e.mu.Lock()
	for _, t := range workload {
		k := t.Key()
		if _, dup := byKey[k]; dup {
			continue
		}
		if j, ok := e.joints.GetString(k); ok {
			byKey[k] = j
			e.stats.GibbsCacheHits++
			continue
		}
		byKey[k] = nil // placeholder: marks the key as scheduled
		todo = append(todo, t)
	}
	e.mu.Unlock()
	if len(todo) == 0 {
		return byKey, nil
	}
	s, err := gibbs.New(e.model, e.cfg.Gibbs)
	if err != nil {
		return nil, err
	}
	res, err := s.TupleDAGRun(todo)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	for i, t := range res.Tuples {
		k := t.Key()
		byKey[k] = res.Dists[i]
		e.joints.PutString(k, res.Dists[i])
	}
	e.stats.GibbsComputed += int64(len(res.Tuples))
	e.stats.PointsSampled += int64(res.PointsSampled)
	e.mu.Unlock()
	return byKey, nil
}

// block expands a memoized joint into the completion block of t.
func (e *Engine) block(t relation.Tuple, j *dist.Joint) (*pdb.Block, error) {
	if j == nil {
		return nil, fmt.Errorf("derive: no inferred joint for tuple %v", t)
	}
	return pdb.NewBlock(t, j, e.cfg.MaxAlternatives)
}

// Stream derives the probabilistic database of rel and emits it item by
// item, in input order, with the engine's default pool sizes. See
// StreamContext.
func (e *Engine) Stream(rel *relation.Relation, emit EmitFunc) error {
	return e.StreamContext(context.Background(), rel, Pools{}, emit)
}

// StreamPools is Stream with per-request pool sizes.
func (e *Engine) StreamPools(rel *relation.Relation, pools Pools, emit EmitFunc) error {
	return e.StreamContext(context.Background(), rel, pools, emit)
}

// StreamContext derives the probabilistic database of rel and emits it
// item by item, in input order: complete tuples pass through as certain
// items, incomplete tuples arrive as blocks. Single-missing voting runs on
// a per-request worker pool concurrently with emission. Multi-missing
// sampling is scheduled per block on its own per-request pool in chain
// mode, so each block becomes available as soon as its own chain has run;
// in DAG mode it runs as one background batch and the emitter blocks on
// it only when it reaches the first multi-missing tuple. If emit returns
// an error the stream stops and StreamContext returns that error after
// draining its workers.
//
// Canceling ctx stops the stream: the dispatchers stop scheduling new
// work, the emitter stops waiting for in-flight entries, and
// StreamContext returns ctx.Err() once the pool workers have drained
// their current items. Work already claimed when the cancel lands is
// always completed (and cached) rather than abandoned, so cancellation
// never poisons the shared caches; a DAG-mode background batch, which has
// no per-tuple grain, finishes in the background after StreamContext
// returns. Overlapping calls from multiple goroutines are safe and share
// the engine's caches.
func (e *Engine) StreamContext(ctx context.Context, rel *relation.Relation, pools Pools, emit EmitFunc) error {
	start := time.Now()
	err := e.stream(ctx, rel, pools, emit)
	streamSeconds.Since(start)
	obs.TraceFrom(ctx).Since("derive.stream", start)
	e.mu.Lock()
	e.stats.Streams++
	if errors.Is(err, context.DeadlineExceeded) {
		e.stats.DeadlineMisses++
	}
	e.mu.Unlock()
	return err
}

func (e *Engine) stream(ctx context.Context, rel *relation.Relation, pools Pools, emit EmitFunc) error {
	if rel == nil {
		return fmt.Errorf("derive: nil relation")
	}
	if d := e.model.Schema.Diff(rel.Schema); d != "" {
		return &SchemaMismatchError{Model: e.model.Schema, Data: rel.Schema, Diff: d}
	}

	// A panic inside the caller's emit/sink (a broken Sink implementation,
	// an injected fault) becomes this request's error instead of crashing
	// the process; the engine and its caches are unaffected.
	rawEmit := emit
	emit = func(it Item) (err error) {
		defer func() {
			if r := recover(); r != nil {
				e.mu.Lock()
				e.stats.PanicsRecovered++
				e.mu.Unlock()
				err = &PanicError{Op: "emit", Value: r, Stack: debug.Stack()}
			}
		}()
		return rawEmit(it)
	}

	// Classify the workload.
	var multi []relation.Tuple
	numSingles := 0
	for _, t := range rel.Tuples {
		switch {
		case t.IsComplete():
		case t.NumMissing() == 1:
			numSingles++
		default:
			multi = append(multi, t)
		}
	}

	// quit stops the dispatchers early when emission fails.
	quit := make(chan struct{})
	var wg sync.WaitGroup

	// Multi-missing inference. Chain mode shards it per block: a pool of
	// gibbs workers prefetches distinct multi-missing tuples in input
	// order, through the same single-flight cache the emitter resolves
	// from. DAG mode runs the whole workload holistically in the
	// background; the emitter waits for it at its first multi-missing
	// tuple.
	var (
		multiDone   chan struct{}
		multiJoints map[string]*dist.Joint
		multiErr    error
	)
	if len(multi) > 0 {
		if e.cfg.chains() {
			distinct := distinctTuples(multi)
			e.spawnPool(ctx, &wg, quit, poolSize(pools.GibbsWorkers, e.cfg.GibbsWorkers, len(distinct)),
				distinct, e.prefetchGibbs)
		} else {
			multiDone = make(chan struct{})
			go func() {
				defer close(multiDone)
				defer func() {
					if r := recover(); r != nil {
						multiErr = &PanicError{Op: "dag", Value: r, Stack: debug.Stack()}
						e.mu.Lock()
						e.stats.PanicsRecovered++
						e.mu.Unlock()
					}
				}()
				// The holistic batch deliberately outlives a canceled
				// stream (see StreamContext), so it does not take ctx.
				multiJoints, multiErr = e.inferMulti(context.Background(), multi)
			}()
		}
	}

	// The voting pool prefetches single-missing estimates ahead of the
	// emitter. Only distinct damage patterns are dispatched — duplicates
	// would be single-probe no-ops, but even those probes cost a channel
	// handoff and an engine-lock acquisition each.
	if numSingles > 0 {
		var singles []relation.Tuple
		for _, t := range rel.Tuples {
			if !t.IsComplete() && t.NumMissing() == 1 {
				singles = append(singles, t)
			}
		}
		singles = distinctTuples(singles)
		e.spawnPool(ctx, &wg, quit, poolSize(pools.VoteWorkers, e.cfg.VoteWorkers, len(singles)),
			singles, e.prefetchVote)
	}

	// Emit in input order. The emitter steals unclaimed work (resolveVote
	// and resolveGibbs compute inline when a pool has not reached the
	// entry yet), so it never idles behind the pools. Evidence keys are
	// built into one reused buffer; cache hits never copy them.
	var err error
	var keyBuf []byte
	for i, t := range rel.Tuples {
		if err = ctx.Err(); err != nil {
			break
		}
		switch {
		case t.IsComplete():
			err = emit(Item{Index: i, Tuple: t})
		case t.NumMissing() == 1:
			keyBuf = t.AppendKey(keyBuf[:0])
			var b *pdb.Block
			b, _, err = e.resolveVote(ctx, t, keyBuf)
			if err == nil {
				err = emit(Item{Index: i, Tuple: t, Block: b})
			}
		case e.cfg.chains():
			keyBuf = t.AppendKey(keyBuf[:0])
			var b *pdb.Block
			b, _, err = e.resolveGibbs(ctx, t, keyBuf)
			if err == nil {
				err = emit(Item{Index: i, Tuple: t, Block: b})
			}
		default:
			select {
			case <-multiDone:
				err = multiErr
			case <-ctx.Done():
				err = ctx.Err()
			}
			if err == nil {
				e.mu.Lock()
				e.stats.MultiTuples++
				e.mu.Unlock()
				var b *pdb.Block
				if b, err = e.block(t, multiJoints[t.Key()]); err == nil {
					err = emit(Item{Index: i, Tuple: t, Block: b})
				}
			}
		}
		if err != nil {
			break
		}
	}
	close(quit)
	wg.Wait()
	if multiDone != nil && ctx.Err() == nil {
		// A canceled stream does not wait for the holistic DAG batch; it
		// completes in the background and lands in the joint cache.
		<-multiDone
	}
	return err
}

// spawnPool starts a dispatcher plus workers goroutines that prefetch the
// given tuples (in order) through warm, until done, quit closes, or ctx is
// canceled. Each worker reuses one key buffer across its tuples.
func (e *Engine) spawnPool(ctx context.Context, wg *sync.WaitGroup, quit chan struct{}, workers int,
	tuples []relation.Tuple, warm func(relation.Tuple, []byte)) {
	work := make(chan relation.Tuple)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var keyBuf []byte
			for t := range work {
				keyBuf = t.AppendKey(keyBuf[:0])
				e.safeWarm(t, keyBuf, warm)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(work)
		for _, t := range tuples {
			select {
			case work <- t:
			case <-quit:
				return
			case <-ctx.Done():
				return
			}
		}
	}()
}

// safeWarm runs one prefetch item behind a panic boundary, so a worker
// survives a panicking item and moves on to the next. Panics inside the
// single-flight computation itself are already recovered into the claimed
// entry by fillVote/fillGibbs; this boundary catches everything outside
// it — including the derive.prefetch injection point, which fires before
// the slot is claimed, leaving the tuple for the emitter to compute
// inline (the stream stays bit-identical, the pool merely lost a warm-up).
func (e *Engine) safeWarm(t relation.Tuple, key []byte, warm func(relation.Tuple, []byte)) {
	defer func() {
		if r := recover(); r != nil {
			e.mu.Lock()
			e.stats.PanicsRecovered++
			e.mu.Unlock()
		}
	}()
	faultinject.Fire("derive.prefetch")
	warm(t, key)
}

// poolSize resolves a per-request pool size: a positive request override
// wins, then the engine default, then GOMAXPROCS. The pool never exceeds
// the number of work items, nor GOMAXPROCS — the workers are pure CPU
// (inference never blocks), so goroutines beyond the processor count only
// add scheduler churn. Pool sizes affect scheduling only, never results,
// so the cap is always safe.
func poolSize(request, engine, items int) int {
	n := engine
	if request > 0 {
		n = request
	}
	p := runtime.GOMAXPROCS(0)
	if n <= 0 || n > p {
		n = p
	}
	if n > items {
		n = items
	}
	return n
}

// distinctTuples returns the distinct tuples of ts by evidence key, in
// first-appearance order.
func distinctTuples(ts []relation.Tuple) []relation.Tuple {
	seen := make(map[string]bool, len(ts))
	var out []relation.Tuple
	var keyBuf []byte
	for _, t := range ts {
		keyBuf = t.AppendKey(keyBuf[:0])
		if !seen[string(keyBuf)] {
			seen[string(keyBuf)] = true
			out = append(out, t)
		}
	}
	return out
}

// Derive collects the stream into a materialized pdb.Database: certain
// tuples in input order, blocks in input order.
func (e *Engine) Derive(rel *relation.Relation) (*pdb.Database, error) {
	c := NewCollector(rel.Schema)
	if err := e.StreamTo(rel, c); err != nil {
		return nil, err
	}
	return c.Database(), nil
}
