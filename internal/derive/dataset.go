package derive

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/pdb"
	"repro/internal/relation"
)

// Live evidence. A registered Dataset turns the engine from a batch
// deriver into a living probabilistic database: the source relation is
// registered once, observations ("tuple 7's income is 50K") arrive as
// deltas, and every later derivation or query over the dataset sees the
// Bayesian-conditioned posterior blocks instead of the priors.
//
// Coherence is the hard part, and the design keeps it exact by keying
// carefully:
//
//   - The engine's vote/joint/CPD/bound caches are keyed by tuple
//     CONTENT (the canonical evidence key), so their entries are pure
//     functions of the model — an observation never makes them stale.
//     Conditioning changes which key a tuple resolves under, not what
//     any key means, so those caches need no invalidation at all; the
//     planner's BoundCPD intervals likewise can never be reused stale,
//     because an observed tuple either routes through its conditioned
//     block (no bound computed) or presents post-observation evidence
//     (a different key).
//   - The one derived artifact that IS per-dataset state — the
//     conditioned posterior of block i after its observation log — lives
//     in a bounded engine cache keyed "dataset\x00index" and tagged with
//     the block's observation epoch (the length of its log). Observe
//     eagerly invalidates the superseded entry (exact: only the touched
//     block's key) and installs the new posterior at the next epoch; the
//     epoch tag is the lazy backstop — a reader that races an observe
//     treats the mismatched entry as invalid and recomputes, so a stale
//     posterior is never served. Both paths are counted in
//     Stats.InvalidatedEntries.
//
// A cache miss recomputes the posterior by resolving the base block
// through the engine and replaying the observation log in order. Both
// steps are deterministic (chains are content-seeded; conditioning is
// arithmetic), so eviction never changes answers — only their cost.

// Obs is one applied observation: attribute Attr was seen to be value
// Val (a domain code).
type Obs struct {
	Attr, Val int
}

// Dataset is a registered relation with live evidence. Create with
// Engine.RegisterDataset; safe for concurrent use.
type Dataset struct {
	id        string
	eng       *Engine
	rel       *relation.Relation
	joinInput bool // registered under its own schema; SPJ input only

	mu      sync.Mutex
	obs     map[int][]Obs // observation log per source tuple index
	version uint64        // total observations applied
	subs    map[int]chan struct{}
	subSeq  int
	closed  bool
	done    chan struct{}
}

// ObserveResult reports one applied observation.
type ObserveResult struct {
	// Index, Attr, Val echo the observation.
	Index, Attr, Val int
	// Noop is true when the value was already known (from the source
	// tuple or an earlier observation) and nothing changed.
	Noop bool
	// Collapsed is true when the observation determined the tuple's last
	// missing value: the block is now a certain tuple.
	Collapsed bool
	// Alternatives is the number of completions remaining in the
	// conditioned block (1 when Collapsed).
	Alternatives int
	// Epoch is the tuple's observation count after this delta; Version is
	// the dataset's.
	Epoch, Version uint64
}

// DatasetSnapshot is a consistent view of a dataset for evaluation: the
// effective relation (observed values folded into the tuples) plus the
// conditioned completion blocks of every tuple that has received
// observations. Snapshots are immutable; concurrent observes produce
// later versions, never mutate an issued snapshot.
type DatasetSnapshot struct {
	// Rel holds the effective tuples: an observed tuple's entry is its
	// conditioned block's base (observed values known, the rest still
	// missing, possibly complete after a collapse).
	Rel *relation.Relation
	// Overrides maps source tuple index -> conditioned block for every
	// tuple with at least one observation. Evaluators must use the
	// override (a Bayesian posterior) rather than re-inferring the
	// effective tuple, which would be a different estimator.
	Overrides map[int]*pdb.Block
	// Version is the dataset version the snapshot reflects.
	Version uint64
}

// RegisterDataset registers rel as a live dataset and returns its
// handle. The relation must match the model's schema and is retained by
// reference; the caller must not mutate it afterwards.
func (e *Engine) RegisterDataset(rel *relation.Relation) (*Dataset, error) {
	if rel == nil {
		return nil, fmt.Errorf("derive: nil relation")
	}
	if d := e.model.Schema.Diff(rel.Schema); d != "" {
		return nil, &SchemaMismatchError{Model: e.model.Schema, Data: rel.Schema, Diff: d}
	}
	return e.register(rel, false), nil
}

// RegisterJoinInput registers rel as a join-input dataset: its schema is
// kept as-is instead of being validated against the model, so it may
// carry key columns the model does not know. Join-input datasets exist
// to be bound as input relations of intensional SPJ queries; they accept
// no evidence (conditioning is defined over the model's schema) and
// cannot be derived or queried on their own.
func (e *Engine) RegisterJoinInput(rel *relation.Relation) (*Dataset, error) {
	if rel == nil {
		return nil, fmt.Errorf("derive: nil relation")
	}
	return e.register(rel, true), nil
}

func (e *Engine) register(rel *relation.Relation, joinInput bool) *Dataset {
	e.dsMu.Lock()
	defer e.dsMu.Unlock()
	e.dsSeq++
	ds := &Dataset{
		id:        "ds" + strconv.Itoa(e.dsSeq),
		eng:       e,
		rel:       rel,
		joinInput: joinInput,
		obs:       make(map[int][]Obs),
		subs:      make(map[int]chan struct{}),
		done:      make(chan struct{}),
	}
	e.datasets[ds.id] = ds
	return ds
}

// Dataset returns the registered dataset with the given id.
func (e *Engine) Dataset(id string) (*Dataset, bool) {
	e.dsMu.Lock()
	defer e.dsMu.Unlock()
	ds, ok := e.datasets[id]
	return ds, ok
}

// DropDataset unregisters a dataset, wakes its watchers (whose
// subscriptions report closure), and drops its conditioned blocks from
// the engine cache. Reports whether the id was registered.
func (e *Engine) DropDataset(id string) bool {
	e.dsMu.Lock()
	ds, ok := e.datasets[id]
	delete(e.datasets, id)
	e.dsMu.Unlock()
	if !ok {
		return false
	}
	ds.mu.Lock()
	ds.closed = true
	close(ds.done)
	ds.mu.Unlock()
	e.observedDropPrefix(id + "\x00")
	return true
}

// ID returns the dataset's registry handle.
func (d *Dataset) ID() string { return d.id }

// Relation returns the source relation (the priors, without evidence).
// Shared; callers must not mutate it.
func (d *Dataset) Relation() *relation.Relation { return d.rel }

// JoinInput reports whether the dataset was registered under its own
// schema (Engine.RegisterJoinInput) and so serves only as an SPJ query
// input.
func (d *Dataset) JoinInput() bool { return d.joinInput }

// Version returns the number of observations applied so far.
func (d *Dataset) Version() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.version
}

// Done returns a channel closed when the dataset is dropped.
func (d *Dataset) Done() <-chan struct{} { return d.done }

// Subscribe registers a watcher: the returned channel receives a
// (coalesced) signal after every applied observation. The caller must
// invoke cancel when done; the engine's Watchers gauge tracks active
// subscriptions. A dropped dataset closes Done instead of signaling.
func (d *Dataset) Subscribe() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	d.mu.Lock()
	d.subSeq++
	id := d.subSeq
	d.subs[id] = ch
	d.mu.Unlock()
	d.eng.addWatchers(1)
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			d.mu.Lock()
			delete(d.subs, id)
			d.mu.Unlock()
			d.eng.addWatchers(-1)
		})
	}
	return ch, cancel
}

// key returns the engine-cache key of the dataset's conditioned block
// for the source tuple at index.
func (d *Dataset) key(index int) string {
	return d.id + "\x00" + strconv.Itoa(index)
}

// Observe applies one evidence delta: the tuple at source index has
// attribute attr equal to val. The conditioned posterior replaces the
// prior for every later snapshot; watchers are signaled. Observing an
// already-known value is a no-op; a conflicting or zero-remaining-mass
// observation is an error and changes nothing.
func (d *Dataset) Observe(ctx context.Context, index, attr, val int) (ObserveResult, error) {
	var res ObserveResult
	if d.joinInput {
		return res, fmt.Errorf("derive: dataset %s is a join input (own schema) and accepts no evidence", d.id)
	}
	if index < 0 || index >= len(d.rel.Tuples) {
		return res, fmt.Errorf("derive: tuple index %d out of range [0, %d)", index, len(d.rel.Tuples))
	}
	t := d.rel.Tuples[index]
	if attr < 0 || attr >= len(t) {
		return res, fmt.Errorf("derive: attribute %d out of range", attr)
	}
	if card := d.rel.Schema.Attrs[attr].Card(); val < 0 || val >= card {
		return res, fmt.Errorf("derive: value %d out of range for attribute %s (card %d)",
			val, d.rel.Schema.Attrs[attr].Name, card)
	}
	res = ObserveResult{Index: index, Attr: attr, Val: val}

	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return res, fmt.Errorf("derive: dataset %s is dropped", d.id)
	}
	log := d.obs[index]
	if t.IsComplete() {
		// A certain tuple accepts only confirming evidence.
		if t[attr] == val {
			res.Noop, res.Alternatives, res.Collapsed = true, 1, true
			res.Version = d.version
			return res, nil
		}
		return res, fmt.Errorf("derive: observation %d conflicts with certain value %d of tuple %d",
			val, t[attr], index)
	}
	cur, err := d.conditionedLocked(ctx, index, log)
	if err != nil {
		return res, err
	}
	if cur.Base[attr] == val {
		res.Noop = true
		res.Alternatives = len(cur.Alts)
		res.Collapsed = cur.Base.IsComplete()
		res.Epoch = uint64(len(log))
		res.Version = d.version
		return res, nil
	}
	nb, err := cur.Observe(attr, val)
	if err != nil {
		return res, err
	}
	d.obs[index] = append(log, Obs{Attr: attr, Val: val})
	epoch := uint64(len(d.obs[index]))
	key := d.key(index)
	// Exact invalidation: the one cache entry superseded by this delta is
	// dropped eagerly, and the new posterior installed under the new
	// epoch tag. Readers racing this update hit the tag mismatch and
	// recompute; nothing else in the engine is touched.
	d.eng.observedReplace(key, nb, epoch)
	d.version++
	d.eng.countObservation()
	res.Collapsed = nb.Base.IsComplete()
	res.Alternatives = len(nb.Alts)
	res.Epoch = epoch
	res.Version = d.version
	// Subscription delivery is observed once per applied delta (the whole
	// fan-out, not per subscriber): the sends are non-blocking, so the
	// histogram tracks signal latency under many watchers.
	notifyStart := time.Now()
	for _, ch := range d.subs {
		select {
		case ch <- struct{}{}:
		default: // watcher already has a pending signal
		}
	}
	watchNotifySeconds.Since(notifyStart)
	return res, nil
}

// conditionedLocked returns the conditioned block of the tuple at index
// under the given observation log, from the engine's tagged cache or by
// deterministic recomputation (resolve the base block, replay the log).
// Called with d.mu held or with a log slice captured under it.
func (d *Dataset) conditionedLocked(ctx context.Context, index int, log []Obs) (*pdb.Block, error) {
	t := d.rel.Tuples[index]
	epoch := uint64(len(log))
	if epoch == 0 {
		b, _, err := d.eng.ResolveBlock(ctx, t)
		return b, err
	}
	key := d.key(index)
	if b, ok := d.eng.observedGet(key, epoch); ok {
		return b, nil
	}
	// Chaos harness: widen the window between the tagged-cache miss and
	// the recomputed posterior's install, so the soak exercises readers
	// racing concurrent observes (the epoch tag is the correctness
	// backstop either way).
	faultinject.Fire("observe.replay")
	b, _, err := d.eng.ResolveBlock(ctx, t)
	if err != nil {
		return nil, err
	}
	for _, o := range log {
		if b, err = b.Observe(o.Attr, o.Val); err != nil {
			// Unreachable for logs this dataset applied: the base block is
			// bit-identical on re-derivation and each delta was accepted
			// once already.
			return nil, fmt.Errorf("derive: replaying observation log of tuple %d: %w", index, err)
		}
	}
	d.eng.observedPut(key, b, epoch)
	return b, nil
}

// Snapshot materializes a consistent view of the dataset: effective
// tuples plus conditioned blocks for every observed tuple. Conditioned
// blocks come from the tagged cache when fresh, otherwise by replay;
// the snapshot never blocks observes for the duration of inference on
// unobserved tuples (those resolve lazily at evaluation time).
func (d *Dataset) Snapshot(ctx context.Context) (*DatasetSnapshot, error) {
	d.mu.Lock()
	version := d.version
	logs := make(map[int][]Obs, len(d.obs))
	for i, log := range d.obs {
		logs[i] = log // per-index logs are append-only; the header is a stable view
	}
	d.mu.Unlock()

	overrides := make(map[int]*pdb.Block, len(logs))
	// Deterministic resolution order keeps replay costs predictable.
	idxs := make([]int, 0, len(logs))
	for i := range logs {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		b, err := d.conditionedLocked(ctx, i, logs[i])
		if err != nil {
			return nil, err
		}
		overrides[i] = b
	}
	rel := d.rel
	if len(overrides) > 0 {
		tuples := make([]relation.Tuple, len(d.rel.Tuples))
		copy(tuples, d.rel.Tuples)
		for i, b := range overrides {
			tuples[i] = b.Base
		}
		rel = &relation.Relation{Schema: d.rel.Schema, Tuples: tuples}
	}
	return &DatasetSnapshot{Rel: rel, Overrides: overrides, Version: version}, nil
}

// StreamSnapshot derives the probabilistic database of a dataset
// snapshot and emits it in input order, like StreamContext, except that
// observed tuples emit their conditioned posterior blocks (or pass
// through as certain tuples after a collapse) instead of being
// re-inferred. Unobserved tuples resolve through the engine's caches
// exactly as a batch stream would, so the two paths agree bit-for-bit
// on them.
func (e *Engine) StreamSnapshot(ctx context.Context, snap *DatasetSnapshot, pools Pools, emit EmitFunc) error {
	if snap == nil {
		return fmt.Errorf("derive: nil snapshot")
	}
	var prefetch []relation.Tuple
	for i, t := range snap.Rel.Tuples {
		if _, ok := snap.Overrides[i]; !ok && !t.IsComplete() {
			prefetch = append(prefetch, t)
		}
	}
	done := make(chan struct{})
	defer close(done)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				// Prefetch is an optimization: a panicking warm-up never
				// fails the snapshot stream, the emitter resolves inline.
				e.mu.Lock()
				e.stats.PanicsRecovered++
				e.mu.Unlock()
			}
			<-done // hold the goroutine's reference until the emitter finishes
		}()
		e.PrefetchBlocks(ctx, prefetch, pools)
	}()
	var err error
	for i, t := range snap.Rel.Tuples {
		if err = ctx.Err(); err != nil {
			return err
		}
		if b, ok := snap.Overrides[i]; ok {
			if b.Base.IsComplete() {
				err = emit(Item{Index: i, Tuple: b.Base})
			} else {
				err = emit(Item{Index: i, Tuple: b.Base, Block: b})
			}
		} else if t.IsComplete() {
			err = emit(Item{Index: i, Tuple: t})
		} else {
			var b *pdb.Block
			if b, _, err = e.ResolveBlock(ctx, t); err == nil {
				err = emit(Item{Index: i, Tuple: t, Block: b})
			}
		}
		if err != nil {
			return err
		}
	}
	e.mu.Lock()
	e.stats.Streams++
	e.mu.Unlock()
	return nil
}

// Engine-side accessors for the conditioned-block cache and the live
// gauges. All take e.mu; none are called with it held.

func (e *Engine) observedGet(key string, epoch uint64) (*pdb.Block, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.observed.GetTagged(key, epoch)
}

func (e *Engine) observedPut(key string, b *pdb.Block, epoch uint64) {
	e.mu.Lock()
	e.observed.PutTagged(key, b, epoch)
	e.mu.Unlock()
}

// observedReplace invalidates the superseded entry under key (if
// present) and installs the new posterior at the next epoch, atomically
// under the engine lock.
func (e *Engine) observedReplace(key string, b *pdb.Block, epoch uint64) {
	e.mu.Lock()
	e.observed.Invalidate(key)
	e.observed.PutTagged(key, b, epoch)
	e.mu.Unlock()
}

// observedDropPrefix invalidates every conditioned-block entry of a
// dropped dataset.
func (e *Engine) observedDropPrefix(prefix string) {
	e.mu.Lock()
	var keys []string
	e.observed.Range(func(k string, _ *pdb.Block) bool {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			keys = append(keys, k)
		}
		return true
	})
	for _, k := range keys {
		e.observed.Invalidate(k)
	}
	e.mu.Unlock()
}

func (e *Engine) countObservation() {
	e.mu.Lock()
	e.stats.Observations++
	e.mu.Unlock()
}

func (e *Engine) addWatchers(delta int64) {
	e.mu.Lock()
	e.stats.Watchers += delta
	e.mu.Unlock()
}
