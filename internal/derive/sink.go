package derive

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/faultinject"
	"repro/internal/pdb"
	"repro/internal/relation"
)

// Sink receives a derivation stream. Emit is called once per item, in
// input order; Close is called once after the last item and must flush
// whatever the sink buffers. Sinks are used by one stream at a time; wrap
// a sink in your own locking to share it.
type Sink interface {
	Emit(Item) error
	Close() error
}

// StreamTo derives rel and pushes the stream into sink, closing it on
// success. If the stream or the sink fails, StreamTo returns that error
// without calling Close, so a partial output is never flushed as if it
// were complete.
func (e *Engine) StreamTo(rel *relation.Relation, sink Sink) error {
	return e.StreamToContext(context.Background(), rel, Pools{}, sink)
}

// StreamPoolsTo is StreamTo with per-request pool sizes.
func (e *Engine) StreamPoolsTo(rel *relation.Relation, pools Pools, sink Sink) error {
	return e.StreamToContext(context.Background(), rel, pools, sink)
}

// StreamToContext is StreamTo with a cancellation context and per-request
// pool sizes: canceling ctx stops the stream (see StreamContext) and the
// sink is not closed, so a partial output is never flushed as complete.
// The sink-bound stream is observed as one stage (emission included) —
// per-item timing would put a clock read on the per-tuple hot path.
func (e *Engine) StreamToContext(ctx context.Context, rel *relation.Relation, pools Pools, sink Sink) error {
	defer sinkStreamSeconds.Since(time.Now())
	if err := e.StreamContext(ctx, rel, pools, sink.Emit); err != nil {
		return err
	}
	return sink.Close()
}

// Collector is the in-memory Sink: it materializes the stream into a
// pdb.Database (certain tuples and blocks, each in input order).
type Collector struct {
	db *pdb.Database
}

// NewCollector returns a collector over the schema.
func NewCollector(s *relation.Schema) *Collector {
	return &Collector{db: pdb.NewDatabase(s)}
}

// Emit adds the item to the database.
func (c *Collector) Emit(it Item) error {
	if it.Certain() {
		return c.db.AddCertain(it.Tuple)
	}
	return c.db.AddBlock(it.Block)
}

// Close is a no-op; the collector holds everything in memory.
func (c *Collector) Close() error { return nil }

// Database returns the materialized database.
func (c *Collector) Database() *pdb.Database { return c.db }

// CSVSink writes the stream as a complete CSV relation: certain tuples
// pass through, each block is materialized as its most probable
// completion. The output is the most probable world of the derived
// database — the paper's single-imputation repair — and round-trips
// through relation.ReadCSV.
type CSVSink struct {
	w      *csv.Writer
	schema *relation.Schema
	row    []string
	opened bool
}

// NewCSVSink returns a CSV sink over w.
func NewCSVSink(w io.Writer, s *relation.Schema) *CSVSink {
	return &CSVSink{w: csv.NewWriter(w), schema: s, row: make([]string, s.NumAttrs())}
}

// Emit writes the item's most probable completion as one CSV row.
func (c *CSVSink) Emit(it Item) error {
	if !c.opened {
		c.opened = true
		if err := c.w.Write(c.schema.SortedAttrNames()); err != nil {
			return fmt.Errorf("derive: csv sink header: %w", err)
		}
	}
	t := it.Tuple
	if !it.Certain() {
		t = it.Block.MostProbable().Tuple
	}
	for i, v := range t {
		if v == relation.Missing {
			c.row[i] = relation.MissingLabel
		} else {
			c.row[i] = c.schema.Attrs[i].Domain[v]
		}
	}
	if err := c.w.Write(c.row); err != nil {
		return fmt.Errorf("derive: csv sink row %d: %w", it.Index, err)
	}
	return nil
}

// Close flushes the writer (writing the header even for an empty stream).
func (c *CSVSink) Close() error {
	if !c.opened {
		c.opened = true
		if err := c.w.Write(c.schema.SortedAttrNames()); err != nil {
			return fmt.Errorf("derive: csv sink header: %w", err)
		}
	}
	c.w.Flush()
	return c.w.Error()
}

// JSONL record shapes. Field order is fixed by the struct definitions and
// attribute values are positional (schema order), so the rendering of a
// given stream is byte-stable.

// jsonlSchema is the first line of a JSONL stream, describing the schema
// the positional value arrays index into.
type jsonlSchema struct {
	Kind  string      `json:"kind"` // "schema"
	Attrs []jsonlAttr `json:"attrs"`
}

type jsonlAttr struct {
	Name   string   `json:"name"`
	Domain []string `json:"domain"`
}

// jsonlItem is one streamed item: kind "certain" carries Values, kind
// "block" carries Base (with "?" for missing) and Alts.
type jsonlItem struct {
	Kind   string     `json:"kind"` // "certain" or "block"
	Index  int        `json:"index"`
	Values []string   `json:"values,omitempty"`
	Base   []string   `json:"base,omitempty"`
	Alts   []jsonlAlt `json:"alts,omitempty"`
}

type jsonlAlt struct {
	Values []string `json:"values"`
	P      float64  `json:"p"`
}

// JSONLSink writes the stream as NDJSON: one schema record, then one
// record per item in input order. Certain tuples keep their values, blocks
// carry every alternative with its probability, so the full derived
// database — not just a repair — crosses the wire. Each Emit writes one
// complete line directly to w, which makes the sink suitable for
// incremental serving over sockets and HTTP responses.
type JSONLSink struct {
	w      io.Writer
	enc    *json.Encoder
	schema *relation.Schema
	opened bool
}

// NewJSONLSink returns a JSONL sink over w.
func NewJSONLSink(w io.Writer, s *relation.Schema) *JSONLSink {
	return &JSONLSink{w: w, enc: json.NewEncoder(w), schema: s}
}

func (j *JSONLSink) open() error {
	if j.opened {
		return nil
	}
	j.opened = true
	rec := jsonlSchema{Kind: "schema", Attrs: make([]jsonlAttr, j.schema.NumAttrs())}
	for i, a := range j.schema.Attrs {
		rec.Attrs[i] = jsonlAttr{Name: a.Name, Domain: a.Domain}
	}
	return j.enc.Encode(rec)
}

func (j *JSONLSink) labels(t relation.Tuple) []string {
	out := make([]string, len(t))
	for i, v := range t {
		if v == relation.Missing {
			out[i] = relation.MissingLabel
		} else {
			out[i] = j.schema.Attrs[i].Domain[v]
		}
	}
	return out
}

// Emit writes the item as one NDJSON line.
func (j *JSONLSink) Emit(it Item) error {
	faultinject.Fire("sink.write")
	if err := j.open(); err != nil {
		return err
	}
	rec := jsonlItem{Index: it.Index}
	if it.Certain() {
		rec.Kind = "certain"
		rec.Values = j.labels(it.Tuple)
	} else {
		rec.Kind = "block"
		rec.Base = j.labels(it.Block.Base)
		rec.Alts = make([]jsonlAlt, len(it.Block.Alts))
		for k, a := range it.Block.Alts {
			rec.Alts[k] = jsonlAlt{Values: j.labels(a.Tuple), P: a.Prob}
		}
	}
	return j.enc.Encode(rec)
}

// Close writes the schema record if nothing was emitted yet; every line is
// already flushed to w as it is encoded.
func (j *JSONLSink) Close() error { return j.open() }

// TextSink writes the stream as a human-readable text rendering, one
// item per line (blocks list their alternatives inline). It is the
// io.Writer streaming sink for logs and terminals.
type TextSink struct {
	w      io.Writer
	schema *relation.Schema
}

// NewTextSink returns a text sink over w.
func NewTextSink(w io.Writer, s *relation.Schema) *TextSink {
	return &TextSink{w: w, schema: s}
}

// Emit writes the item as one text line.
func (t *TextSink) Emit(it Item) error {
	if it.Certain() {
		_, err := fmt.Fprintf(t.w, "%d certain %s\n", it.Index, it.Tuple.Format(t.schema))
		return err
	}
	if _, err := fmt.Fprintf(t.w, "%d block %s:", it.Index, it.Block.Base.Format(t.schema)); err != nil {
		return err
	}
	for _, a := range it.Block.Alts {
		if _, err := fmt.Fprintf(t.w, " %.4f %s", a.Prob, a.Tuple.Format(t.schema)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(t.w)
	return err
}

// Close is a no-op; every line is written as it is emitted.
func (t *TextSink) Close() error { return nil }
