package derive

import (
	"context"
	"errors"
	"testing"
)

// TestStreamContextCancelBeforeStart: an already-canceled context stops
// the stream before anything is emitted.
func TestStreamContextCancelBeforeStart(t *testing.T) {
	m, inst, rng := learnBN(t, "BN8", 4000, 61)
	rel := dirtyRelation(t, inst, rng, 60)
	e, err := New(m, engineConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	emitted := 0
	err = e.StreamContext(ctx, rel, Pools{}, func(Item) error {
		emitted++
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if emitted != 0 {
		t.Errorf("canceled stream emitted %d items", emitted)
	}
}

// TestStreamContextCancelMidStream: canceling while the stream is being
// consumed stops emission early with ctx.Err(), and the engine survives
// to serve the full stream afterwards — cancellation never poisons the
// shared caches.
func TestStreamContextCancelMidStream(t *testing.T) {
	m, inst, rng := learnBN(t, "BN8", 4000, 62)
	rel := dirtyRelation(t, inst, rng, 60)
	e, err := New(m, engineConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	emitted := 0
	err = e.StreamContext(ctx, rel, Pools{}, func(Item) error {
		emitted++
		if emitted == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if emitted >= rel.Len() {
		t.Errorf("canceled stream emitted all %d items", emitted)
	}

	// The same engine still serves a complete, coherent stream.
	count := 0
	if err := e.Stream(rel, func(Item) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != rel.Len() {
		t.Errorf("post-cancel stream emitted %d of %d items", count, rel.Len())
	}
}

// TestResolveBlockMatchesStream: the query evaluator's per-tuple entry
// point serves exactly the block a Stream over the same relation emits,
// from the same cache slots.
func TestResolveBlockMatchesStream(t *testing.T) {
	m, inst, rng := learnBN(t, "BN8", 4000, 63)
	rel := dirtyRelation(t, inst, rng, 40)
	streamed, err := New(m, engineConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	resolved, err := New(m, engineConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := streamed.Stream(rel, func(it Item) error {
		if it.Certain() {
			return nil
		}
		b, _, err := resolved.ResolveBlock(ctx, it.Tuple)
		if err != nil {
			return err
		}
		if len(b.Alts) != len(it.Block.Alts) {
			t.Fatalf("ResolveBlock(%v): %d alternatives, want %d",
				it.Tuple, len(b.Alts), len(it.Block.Alts))
		}
		for k := range b.Alts {
			if b.Alts[k].Prob != it.Block.Alts[k].Prob ||
				!b.Alts[k].Tuple.Equal(it.Block.Alts[k].Tuple) {
				t.Fatalf("ResolveBlock(%v) alt %d differs from streamed block", it.Tuple, k)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Complete tuples are rejected.
	if _, _, err := resolved.ResolveBlock(ctx, inst.Sample(rng)); err == nil {
		t.Error("ResolveBlock on a complete tuple should fail")
	}
}
