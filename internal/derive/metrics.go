package derive

import "repro/internal/obs"

// Latency histograms for the engine's compute stages, registered on the
// process-wide obs registry (exported by cmd/mrslserve's GET /metrics).
// Instrumentation is block/stage-grained, never per-tuple: each Observe
// wraps one distinct compute unit (a vote fill, a Gibbs chain, a bound
// enumeration, a whole stream), so the steady-state cache-hit serving
// path pays nothing beyond a non-blocking channel probe.
var (
	voteSeconds = obs.Default.Histogram("mrsl_derive_vote_seconds", "",
		"Single-missing vote resolution per distinct evidence pattern (cache misses only).")
	chainSeconds = obs.Default.Histogram("mrsl_derive_chain_seconds", "",
		"One multi-missing Gibbs chain per distinct tuple (cache misses only).")
	boundSeconds = obs.Default.Histogram("mrsl_derive_bound_seconds", "",
		"One BoundCPD envelope enumeration (cache misses only).")
	prefetchWaitSeconds = obs.Default.Histogram("mrsl_derive_prefetch_wait_seconds", "",
		"Time resolvers spent blocked on another goroutine's in-flight cache entry.")
	streamSeconds = obs.Default.Histogram("mrsl_derive_stream_seconds", "",
		"End-to-end duration of one derivation stream.")
	sinkStreamSeconds = obs.Default.Histogram("mrsl_derive_sink_seconds", "",
		"End-to-end duration of one sink-bound stream (StreamTo and friends).")
	watchNotifySeconds = obs.Default.Histogram("mrsl_watch_notify_seconds", "",
		"One observation's watch-subscription fan-out (per observe, all subscribers).")
)
