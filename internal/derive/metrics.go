package derive

import "repro/internal/obs"

// Latency histograms for the engine's compute stages, registered on the
// process-wide obs registry (exported by cmd/mrslserve's GET /metrics).
// Instrumentation is block/stage-grained, never per-tuple: each Observe
// wraps one distinct compute unit (a vote fill, a Gibbs chain, a bound
// enumeration, a whole stream), so the steady-state cache-hit serving
// path pays nothing beyond a non-blocking channel probe.
var (
	voteSeconds = obs.Default.Histogram("mrsl_derive_vote_seconds", "",
		"Single-missing vote resolution per distinct evidence pattern (cache misses only).")
	chainSeconds = obs.Default.Histogram("mrsl_derive_chain_seconds", "",
		"One multi-missing Gibbs chain per distinct tuple (cache misses only).")
	boundSeconds = obs.Default.Histogram("mrsl_derive_bound_seconds", "",
		"One BoundCPD envelope enumeration (cache misses only).")
	prefetchWaitSeconds = obs.Default.Histogram("mrsl_derive_prefetch_wait_seconds", "",
		"Time resolvers spent blocked on another goroutine's in-flight cache entry.")
	streamSeconds = obs.Default.Histogram("mrsl_derive_stream_seconds", "",
		"End-to-end duration of one derivation stream.")
	sinkStreamSeconds = obs.Default.Histogram("mrsl_derive_sink_seconds", "",
		"End-to-end duration of one sink-bound stream (StreamTo and friends).")
	watchNotifySeconds = obs.Default.Histogram("mrsl_watch_notify_seconds", "",
		"One observation's watch-subscription fan-out (per observe, all subscribers).")
)

// Calibration thresholds for TierLatencies: means over fewer
// observations than this are too noisy to steer planning, so the query
// cost model stays on the static tier order until the process has done
// enough real inference work.
const (
	calibrationMinVotes  = 32
	calibrationMinChains = 8
)

// TierLatencies reports the process-lifetime mean latencies, in
// nanoseconds, of the two inference stages the query cost model weighs:
// one single-missing vote (the unit cost of each CPD probe an envelope
// enumeration performs) and one multi-missing Gibbs chain (the cost an
// envelope-decided tuple avoids). calibrated is false until both stages
// have enough observations to trust the means. The figures are read
// from the same mrsl_derive_vote_seconds / mrsl_derive_chain_seconds
// histograms GET /metrics exposes, so the chooser's inputs are always
// externally observable; like those histograms they are process-wide,
// not per-engine.
func TierLatencies() (voteNS, chainNS float64, calibrated bool) {
	vc, vm := voteSeconds.Mean()
	cc, cm := chainSeconds.Mean()
	return vm, cm, vc >= calibrationMinVotes && cc >= calibrationMinChains
}
