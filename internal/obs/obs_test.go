package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestObserveZeroAlloc pins the hot-path contract: one Observe is
// alloc-free. The engine calls it on block/stage boundaries inside the
// serving hot path, so any allocation here would show up as per-block
// GC pressure.
func TestObserveZeroAlloc(t *testing.T) {
	h := NewRegistry().Histogram("x_seconds", "", "test")
	if n := testing.AllocsPerRun(1000, func() {
		h.Observe(1234 * time.Nanosecond)
	}); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v times per call, want 0", n)
	}
	g := NewRegistry().Gauge("x_gauge", "", "test")
	if n := testing.AllocsPerRun(1000, func() {
		g.Add(1)
	}); n != 0 {
		t.Fatalf("Gauge.Add allocates %v times per call, want 0", n)
	}
	tr := (*Trace)(nil)
	if n := testing.AllocsPerRun(1000, func() {
		tr.Observe("noop", time.Microsecond)
	}); n != 0 {
		t.Fatalf("nil Trace.Observe allocates %v times per call, want 0", n)
	}
}

// TestHistogramRacingWriters is the concurrent-correctness property
// test: under racing writers the bucket sum equals the number of
// observations, and the sum of durations matches exactly (both are
// settled totals once writers join).
func TestHistogramRacingWriters(t *testing.T) {
	h := NewRegistry().Histogram("race_seconds", "", "test")
	const writers, perWriter = 8, 5000
	var wg sync.WaitGroup
	var wantSum int64
	var mu sync.Mutex
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var local int64
			for i := 0; i < perWriter; i++ {
				d := time.Duration(rng.Int63n(int64(time.Second)))
				local += d.Nanoseconds()
				h.Observe(d)
			}
			mu.Lock()
			wantSum += local
			mu.Unlock()
		}(int64(w + 1))
	}
	wg.Wait()
	buckets, count, sumNS := h.Snapshot()
	if count != writers*perWriter {
		t.Fatalf("count = %d, want %d", count, writers*perWriter)
	}
	var bucketSum int64
	for _, c := range buckets {
		if c < 0 {
			t.Fatalf("negative bucket count %d", c)
		}
		bucketSum += c
	}
	if bucketSum != count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, count)
	}
	if sumNS != wantSum {
		t.Fatalf("sum = %dns, want %dns", sumNS, wantSum)
	}
}

// TestPrometheusOutputUnderRacingWriters scrapes the registry while
// writers are mid-flight and asserts the exposition parses: cumulative
// buckets are monotone, every le value increases, the +Inf bucket
// equals _count, and _sum is a finite non-negative number.
func TestPrometheusOutputUnderRacingWriters(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mid_seconds", `path="/x"`, "test histogram")
	r.Gauge("mid_gauge", "", "test gauge").Set(7)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(time.Duration(rng.Int63n(int64(10 * time.Millisecond))))
				}
			}
		}(int64(w + 1))
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		r.WritePrometheus(&buf)
		checkExposition(t, buf.String())
	}
	close(stop)
	wg.Wait()
}

// checkExposition validates Prometheus text output: per-series bucket
// monotonicity, increasing le values, +Inf == _count, parseable sample
// lines.
func checkExposition(t *testing.T, text string) {
	t.Helper()
	type state struct {
		lastCum int64
		lastLE  float64
		infSeen bool
		inf     int64
	}
	states := make(map[string]*state)
	counts := make(map[string]int64)
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable line %q", line)
		}
		name, value := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			t.Fatalf("line %q: bad value: %v", line, err)
		}
		switch {
		case strings.Contains(name, "_bucket{"):
			base := name[:strings.Index(name, "_bucket{")]
			labels := name[strings.Index(name, "{")+1 : len(name)-1]
			le := ""
			rest := []string{}
			for _, pair := range strings.Split(labels, ",") {
				if strings.HasPrefix(pair, `le="`) {
					le = strings.TrimSuffix(strings.TrimPrefix(pair, `le="`), `"`)
				} else {
					rest = append(rest, pair)
				}
			}
			key := base + "{" + strings.Join(rest, ",") + "}"
			st := states[key]
			if st == nil {
				st = &state{lastLE: -1}
				states[key] = st
			}
			cum, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				t.Fatalf("bucket line %q: %v", line, err)
			}
			if cum < st.lastCum {
				t.Fatalf("series %s: cumulative bucket decreased %d -> %d", key, st.lastCum, cum)
			}
			st.lastCum = cum
			if le == "+Inf" {
				st.infSeen = true
				st.inf = cum
			} else {
				f, err := strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("bucket line %q: bad le: %v", line, err)
				}
				if st.infSeen {
					t.Fatalf("series %s: finite le after +Inf", key)
				}
				if f <= st.lastLE {
					t.Fatalf("series %s: le not increasing (%g after %g)", key, f, st.lastLE)
				}
				st.lastLE = f
			}
		case strings.Contains(name, "_count"):
			c, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				t.Fatalf("count line %q: %v", line, err)
			}
			counts[strings.Replace(name, "_count", "", 1)] = c
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for key, st := range states {
		if !st.infSeen {
			t.Fatalf("series %s: no +Inf bucket", key)
		}
		base := key[:strings.Index(key, "{")]
		labels := strings.Trim(key[strings.Index(key, "{"):], "{}")
		countKey := base + "{" + labels + "}"
		if labels == "" {
			countKey = base
		}
		if c, ok := counts[countKey]; ok && c != st.inf {
			t.Fatalf("series %s: +Inf bucket %d != _count %d", key, st.inf, c)
		}
	}
}

func TestBucketBoundsCoverDurations(t *testing.T) {
	h := new(Histogram)
	for _, d := range []time.Duration{0, 1, 999, time.Microsecond, time.Millisecond, time.Second, time.Hour, 1<<62 - 1} {
		h.Observe(d)
	}
	h.Observe(-time.Second) // clamps to zero, must not panic
	if got := h.Count(); got != 9 {
		t.Fatalf("count = %d, want 9", got)
	}
}

func TestRegistryIdempotentAndStable(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("h", `path="/a"`, "help")
	b := r.Histogram("h", `path="/a"`, "help")
	if a != b {
		t.Fatal("same name+labels returned distinct histograms")
	}
	if c := r.Histogram("h", `path="/b"`, "help"); c == a {
		t.Fatal("distinct labels shared an instrument")
	}
	g := r.Gauge("g", "", "help")
	g.Inc()
	g.Add(4)
	g.Dec()
	if got := r.Gauge("g", "", "help").Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	if !strings.Contains(out, "# TYPE h histogram") || !strings.Contains(out, "# TYPE g gauge") {
		t.Fatalf("missing TYPE lines in:\n%s", out)
	}
	if strings.Count(out, "# TYPE h histogram") != 1 {
		t.Fatalf("TYPE line repeated per label set:\n%s", out)
	}
	if !strings.Contains(out, `h_bucket{path="/a",le="+Inf"}`) {
		t.Fatalf("missing labeled +Inf bucket in:\n%s", out)
	}
}

func TestSnakeCase(t *testing.T) {
	cases := map[string]string{
		"VotesComputed":      "votes_computed",
		"CPDHits":            "cpd_hits",
		"CPDEvictions":       "cpd_evictions",
		"GibbsCacheHits":     "gibbs_cache_hits",
		"QueryBoundWidth":    "query_bound_width",
		"QueriesDissociated": "queries_dissociated",
		"Streams":            "streams",
	}
	for in, want := range cases {
		if got := snakeCase(in); got != want {
			t.Errorf("snakeCase(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStructMetricNames(t *testing.T) {
	type stats struct {
		VotesComputed int64
		CPDHits       int64
		BoundWidth    float64
		hidden        int64
		Name          string
	}
	_ = stats{hidden: 0}
	got := StructMetricNames("mrsl_engine_", stats{})
	want := []string{"mrsl_engine_votes_computed", "mrsl_engine_cpd_hits", "mrsl_engine_bound_width"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
	var buf bytes.Buffer
	WriteStructGauges(&buf, "mrsl_engine_", stats{VotesComputed: 3, BoundWidth: 0.5})
	out := buf.String()
	if !strings.Contains(out, "mrsl_engine_votes_computed 3\n") || !strings.Contains(out, "mrsl_engine_bound_width 0.5\n") {
		t.Fatalf("bad struct gauge output:\n%s", out)
	}
	if strings.Contains(out, "hidden") || strings.Contains(out, "name") {
		t.Fatalf("non-metric fields leaked:\n%s", out)
	}
}

func TestSortedLabelPairs(t *testing.T) {
	got := SortedLabelPairs(map[string]string{"b": "2", "a": "1"})
	if got != `a="1",b="2"` {
		t.Fatalf("got %q", got)
	}
}
