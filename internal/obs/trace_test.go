package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsNoop(t *testing.T) {
	var tr *Trace
	tr.Observe("a", time.Second) // must not panic
	tr.Since("b", time.Now())
	if tr.Spans() != nil {
		t.Fatal("nil trace returned spans")
	}
}

func TestTraceRecordsSpans(t *testing.T) {
	tr := NewTrace()
	tr.Observe("plan", 1500*time.Microsecond)
	tr.Observe("derive", 2*time.Millisecond)
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "plan" || spans[0].DurationMS != 1.5 {
		t.Fatalf("span 0 = %+v", spans[0])
	}
	if spans[1].Name != "derive" || spans[1].DurationMS != 2 {
		t.Fatalf("span 1 = %+v", spans[1])
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Observe("s", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 800 {
		t.Fatalf("got %d spans, want 800", got)
	}
}

func TestTraceContext(t *testing.T) {
	ctx := context.Background()
	if TraceFrom(ctx) != nil {
		t.Fatal("empty context carried a trace")
	}
	if WithTrace(ctx, nil) != ctx {
		t.Fatal("attaching nil trace should be identity")
	}
	tr := NewTrace()
	ctx = WithTrace(ctx, tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("trace did not round-trip")
	}
}

func TestRequestIDContext(t *testing.T) {
	ctx := context.Background()
	if RequestIDFrom(ctx) != "" {
		t.Fatal("empty context carried a request ID")
	}
	if WithRequestID(ctx, "") != ctx {
		t.Fatal("attaching empty ID should be identity")
	}
	ctx = WithRequestID(ctx, "req-1")
	if RequestIDFrom(ctx) != "req-1" {
		t.Fatal("request ID did not round-trip")
	}
}

func TestBuildRevisionNeverEmpty(t *testing.T) {
	if BuildRevision() == "" {
		t.Fatal("BuildRevision returned empty string")
	}
	if GoVersion() == "" {
		t.Fatal("GoVersion returned empty string")
	}
}
