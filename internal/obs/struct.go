package obs

import (
	"fmt"
	"io"
	"reflect"
)

// StructMetricNames returns the metric name each exported numeric field
// of v (a struct or pointer to struct) maps to: prefix + snake-cased
// field name. This is the single source of truth for stats-struct
// exposition — WriteStructGauges uses the same mapping, and
// scripts/metrics-lint.sh replays it to detect README drift.
func StructMetricNames(prefix string, v any) []string {
	rv := reflect.Indirect(reflect.ValueOf(v))
	if rv.Kind() != reflect.Struct {
		return nil
	}
	var names []string
	rt := rv.Type()
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		if !f.IsExported() || !numericKind(f.Type.Kind()) {
			continue
		}
		names = append(names, prefix+snakeCase(f.Name))
	}
	return names
}

// WriteStructGauges writes one gauge per exported numeric field of v in
// Prometheus text format, named prefix + snake-cased field name. Every
// counter the struct gains in the future is exported automatically.
func WriteStructGauges(w io.Writer, prefix string, v any) {
	rv := reflect.Indirect(reflect.ValueOf(v))
	if rv.Kind() != reflect.Struct {
		return
	}
	rt := rv.Type()
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		if !f.IsExported() || !numericKind(f.Type.Kind()) {
			continue
		}
		var val float64
		switch f.Type.Kind() {
		case reflect.Float32, reflect.Float64:
			val = rv.Field(i).Float()
		default:
			val = float64(rv.Field(i).Int())
		}
		name := prefix + snakeCase(f.Name)
		fmt.Fprintf(w, "# TYPE %s gauge\n", name)
		fmt.Fprintf(w, "%s %s\n", name, formatFloat(val))
	}
}

func numericKind(k reflect.Kind) bool {
	switch k {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Float32, reflect.Float64:
		return true
	}
	return false
}

// snakeCase converts a Go field name to snake case, keeping acronym
// runs together: VotesComputed -> votes_computed, CPDHits -> cpd_hits.
func snakeCase(s string) string {
	out := make([]byte, 0, len(s)+4)
	rs := []rune(s)
	for i, r := range rs {
		if r >= 'A' && r <= 'Z' {
			prevUpper := i > 0 && rs[i-1] >= 'A' && rs[i-1] <= 'Z'
			nextLower := i+1 < len(rs) && rs[i+1] >= 'a' && rs[i+1] <= 'z'
			if i > 0 && (!prevUpper || nextLower) {
				out = append(out, '_')
			}
			r += 'a' - 'A'
		}
		out = append(out, byte(r))
	}
	return string(out)
}
