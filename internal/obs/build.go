package obs

import (
	"runtime"
	"runtime/debug"
)

// BuildRevision returns the VCS revision this binary was built from
// (shortened, with a -dirty suffix for modified trees), or "unknown"
// when the build carries no VCS stamp (e.g. test binaries).
func BuildRevision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "", false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "unknown"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "-dirty"
	}
	return rev
}

// GoVersion returns the runtime's Go version, for the build-info gauge
// labels.
func GoVersion() string { return runtime.Version() }
