package obs

import (
	"context"
	"sync"
	"time"
)

// Span is one recorded stage of a traced request: a name and how long
// the stage took. The JSON field names are the wire schema of the
// {"kind":"trace"} NDJSON record.
type Span struct {
	Name       string  `json:"name"`
	DurationMS float64 `json:"duration_ms"`
}

// Trace records named spans for one request. A nil *Trace is a valid
// no-op recorder: every method nil-checks first, so instrumented code
// calls TraceFrom(ctx).Observe(...) unconditionally and pays only a
// nil test when tracing is disabled. Tracing never changes answers —
// it only appends to this side recorder.
type Trace struct {
	mu    sync.Mutex
	spans []Span
}

// NewTrace returns an enabled span recorder.
func NewTrace() *Trace { return &Trace{} }

// Observe appends one span. No-op on a nil receiver.
func (t *Trace) Observe(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, DurationMS: float64(d.Nanoseconds()) / 1e6})
	t.mu.Unlock()
}

// Since is shorthand for Observe(name, time.Since(start)). No-op on a
// nil receiver.
func (t *Trace) Since(name string, start time.Time) {
	if t == nil {
		return
	}
	t.Observe(name, time.Since(start))
}

// Spans returns a copy of the recorded spans in record order. Nil on a
// nil receiver.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

type traceKey struct{}

// WithTrace attaches a span recorder to the context. Attaching nil is
// allowed and keeps tracing disabled.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the context's span recorder, or nil (the no-op
// recorder) when the request is not traced.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

type requestIDKey struct{}

// WithRequestID attaches a request ID to the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom returns the context's request ID, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
