// Package obs is the serving stack's observability layer: lock-free
// log-scale latency histograms and gauges on atomics, a named-metric
// registry with a Prometheus text-exposition writer, and a per-request
// Trace span recorder that is a nil-check no-op when disabled.
//
// Histogram.Observe is the hot-path primitive: a single atomic add into
// a fixed power-of-two bucket (plus one atomic add into the running
// sum), with zero allocations — instrumentation stays at block/stage
// granularity, never per-tuple, so the cost is amortized over whole
// compute units. The package-level Default registry is what the engine,
// query executor, and servers register into; cmd/mrslserve exposes it
// on GET /metrics.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// numBuckets covers every non-negative int64 nanosecond duration:
// bucket i holds observations v with bits.Len64(v) == i, i.e.
// 2^(i-1) <= v < 2^i (and v == 0 in bucket 0).
const numBuckets = 64

// Histogram is a fixed-bucket log2-scale latency histogram. All methods
// are safe for concurrent use; Observe performs two atomic adds and no
// allocations. The zero value is NOT usable on its own — obtain
// histograms from a Registry so they are exported.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	sumNS   atomic.Int64
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	n := d.Nanoseconds()
	if n < 0 {
		n = 0
	}
	h.buckets[bits.Len64(uint64(n))].Add(1)
	h.sumNS.Add(n)
}

// Since is shorthand for Observe(time.Since(start)).
func (h *Histogram) Since(start time.Time) { h.Observe(time.Since(start)) }

// Snapshot returns the per-bucket counts, total observation count, and
// sum of observed durations in nanoseconds. Count is derived as the sum
// of the bucket snapshot, so Count always equals the +Inf cumulative
// bucket even while writers race.
func (h *Histogram) Snapshot() (buckets [numBuckets]int64, count, sumNS int64) {
	for i := range h.buckets {
		buckets[i] = h.buckets[i].Load()
		count += buckets[i]
	}
	return buckets, count, h.sumNS.Load()
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	_, c, _ := h.Snapshot()
	return c
}

// Mean returns the observation count and the mean observed duration in
// nanoseconds (0 when the histogram is empty). It is the calibration
// read-out consumers like the query cost model use: a process-lifetime
// average over whole compute units, cheap enough to take per decision.
func (h *Histogram) Mean() (count int64, meanNS float64) {
	_, c, sum := h.Snapshot()
	if c == 0 {
		return 0, 0
	}
	return c, float64(sum) / float64(c)
}

// Gauge is an int64 gauge/counter on a single atomic.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// series is one labeled time series under a metric name.
type series struct {
	labels string // rendered label pairs, e.g. `path="/query"`, or ""
	h      *Histogram
	g      *Gauge
}

// group is every series registered under one metric name.
type group struct {
	help    string
	kind    string // "histogram" or "gauge"
	series  []*series
	byLabel map[string]*series
}

// Registry maps metric names (with optional label sets) to their
// instruments and renders them in Prometheus text exposition format.
// Registration is idempotent: asking for an existing name+labels pair
// returns the already-registered instrument.
type Registry struct {
	mu     sync.Mutex
	names  []string // first-registration order, for stable output
	groups map[string]*group
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{groups: make(map[string]*group)}
}

// Default is the process-wide registry the engine and servers use.
var Default = NewRegistry()

func (r *Registry) lookup(name, labels, help, kind string) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	grp, ok := r.groups[name]
	if !ok {
		grp = &group{help: help, kind: kind, byLabel: make(map[string]*series)}
		r.groups[name] = grp
		r.names = append(r.names, name)
	}
	if grp.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, grp.kind, kind))
	}
	s, ok := grp.byLabel[labels]
	if !ok {
		s = &series{labels: labels}
		grp.byLabel[labels] = s
		grp.series = append(grp.series, s)
	}
	return s
}

// Histogram returns the histogram registered under name with the given
// rendered label pairs (e.g. `path="/query"`; "" for none), creating it
// on first use.
func (r *Registry) Histogram(name, labels, help string) *Histogram {
	s := r.lookup(name, labels, help, "histogram")
	if s.h == nil {
		s.h = new(Histogram)
	}
	return s.h
}

// Gauge returns the gauge registered under name with the given rendered
// label pairs, creating it on first use.
func (r *Registry) Gauge(name, labels, help string) *Gauge {
	s := r.lookup(name, labels, help, "gauge")
	if s.g == nil {
		s.g = new(Gauge)
	}
	return s.g
}

// Names returns the registered metric names in registration order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.names...)
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format. Histogram buckets are cumulative and monotone by
// construction (a single pass accumulates a point-in-time snapshot),
// and _count equals the +Inf bucket even while writers race.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	groups := make(map[string]*group, len(names))
	for _, n := range names {
		g := r.groups[n]
		cp := &group{help: g.help, kind: g.kind, series: append([]*series(nil), g.series...)}
		groups[n] = cp
	}
	r.mu.Unlock()

	for _, name := range names {
		grp := groups[name]
		if grp.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", name, grp.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", name, grp.kind)
		for _, s := range grp.series {
			switch grp.kind {
			case "histogram":
				writeHistogram(w, name, s.labels, s.h)
			case "gauge":
				fmt.Fprintf(w, "%s %s\n", seriesName(name, s.labels), formatFloat(float64(s.g.Value())))
			}
		}
	}
}

// bucketLE returns the inclusive upper bound, in seconds, of bucket i:
// every observation in buckets 0..i is < 2^i ns, hence <= 2^i ns.
func bucketLE(i int) float64 {
	return float64(uint64(1)<<uint(i)) / 1e9
}

// writeHistogram renders one histogram series: cumulative _bucket lines
// from the first to the last non-empty bucket, then +Inf, _sum, _count.
func writeHistogram(w io.Writer, name, labels string, h *Histogram) {
	buckets, count, sumNS := h.Snapshot()
	lo, hi := -1, -1
	for i, c := range buckets {
		if c != 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
		}
	}
	cum := int64(0)
	if lo >= 0 {
		for i := lo; i <= hi; i++ {
			cum += buckets[i]
			fmt.Fprintf(w, "%s %d\n", seriesName(name+"_bucket", joinLabels(labels, `le="`+formatFloat(bucketLE(i))+`"`)), cum)
		}
	}
	fmt.Fprintf(w, "%s %d\n", seriesName(name+"_bucket", joinLabels(labels, `le="+Inf"`)), count)
	fmt.Fprintf(w, "%s %s\n", seriesName(name+"_sum", labels), formatFloat(float64(sumNS)/1e9))
	fmt.Fprintf(w, "%s %d\n", seriesName(name+"_count", labels), count)
}

// seriesName renders name{labels} (or bare name when labels is empty).
func seriesName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// joinLabels concatenates rendered label pair lists.
func joinLabels(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	default:
		return a + "," + b
	}
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trip representation.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteGauge writes one ad-hoc gauge line (with HELP/TYPE) for values
// tracked outside the registry, e.g. counters reflected off a stats
// struct.
func WriteGauge(w io.Writer, name, labels, help string, v float64) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(w, "# TYPE %s gauge\n", name)
	fmt.Fprintf(w, "%s %s\n", seriesName(name, labels), formatFloat(v))
}

// SortedLabelPairs renders a label map as sorted k="v" pairs, for
// stable series identity.
func SortedLabelPairs(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out = joinLabels(out, k+`="`+labels[k]+`"`)
	}
	return out
}
