// Package itemset implements frequent-itemset mining over attribute-value
// pairs, the first stage of the MRSL learning algorithm (Section III of the
// paper). Itemsets are partial assignments of values to attributes — the
// same representation as an incomplete tuple's complete portion — and are
// mined with the level-wise Apriori algorithm of Agrawal & Srikant, with the
// paper's extra termination condition: stop after any round that yields
// more than maxItemsets frequent itemsets.
package itemset

import (
	"fmt"
	"sort"

	"repro/internal/relation"
)

// DefaultMaxItemsets is the paper's setting of the round-size cutoff
// ("we set maxItemsets = 1000 in our implementation").
const DefaultMaxItemsets = 1000

// Itemset is one frequent itemset: a partial assignment over the schema's
// attributes together with its support in the mined relation.
type Itemset struct {
	// Tuple holds the assignment; attributes not in the itemset are Missing.
	Tuple relation.Tuple
	// Count is the number of matching points in the mined relation.
	Count int
	// Support is Count divided by the relation size.
	Support float64
	// Size is the number of attributes assigned by the itemset.
	Size int
}

// Result is the outcome of mining: all frequent itemsets, indexed by
// assignment key, plus bookkeeping about the run.
type Result struct {
	// Itemsets maps relation.Tuple.Key() to the frequent itemset.
	Itemsets map[string]*Itemset
	// PerLevel[k] is the number of frequent itemsets of size k
	// (PerLevel[0] == 1 for the empty itemset).
	PerLevel []int
	// Truncated reports whether mining stopped early because a round
	// produced more than maxItemsets itemsets.
	Truncated bool
	// Rows is the number of points mined.
	Rows int
}

// Config controls a mining run.
type Config struct {
	// SupportThreshold is the paper's theta: an itemset is frequent if its
	// support is at least this fraction. Must be in (0, 1].
	SupportThreshold float64
	// MaxItemsets is the per-round cutoff; <= 0 selects
	// DefaultMaxItemsets.
	MaxItemsets int
	// MaxSize bounds itemset size; <= 0 means no bound (up to the number
	// of attributes).
	MaxSize int
	// IncludePartial also mines the complete portions of incomplete
	// tuples, as the paper suggests in Section III ("the complete portion
	// of incomplete tuples in Ri may also be used to discover association
	// rules"). A tuple then supports an itemset when all of the itemset's
	// attributes are known in the tuple and agree; the support denominator
	// remains the total tuple count, so estimates are conservative for
	// itemsets over frequently missing attributes.
	IncludePartial bool
}

// Mine runs Apriori over the relation rc. Without Config.IncludePartial
// every tuple must be complete (a point); with it, incomplete tuples
// contribute their known portions.
func Mine(rc *relation.Relation, cfg Config) (*Result, error) {
	if cfg.SupportThreshold <= 0 || cfg.SupportThreshold > 1 {
		return nil, fmt.Errorf("itemset: support threshold %v out of (0, 1]", cfg.SupportThreshold)
	}
	maxItemsets := cfg.MaxItemsets
	if maxItemsets <= 0 {
		maxItemsets = DefaultMaxItemsets
	}
	n := rc.Len()
	if n == 0 {
		return nil, fmt.Errorf("itemset: relation has no complete tuples to mine")
	}
	if !cfg.IncludePartial {
		for i, t := range rc.Tuples {
			if !t.IsComplete() {
				return nil, fmt.Errorf("itemset: tuple %d is incomplete", i)
			}
		}
	}
	nAttrs := rc.Schema.NumAttrs()
	maxSize := cfg.MaxSize
	if maxSize <= 0 || maxSize > nAttrs {
		maxSize = nAttrs
	}
	minCount := int(cfg.SupportThreshold * float64(n))
	if float64(minCount) < cfg.SupportThreshold*float64(n) {
		minCount++
	}
	if minCount < 1 {
		minCount = 1
	}

	res := &Result{
		Itemsets: make(map[string]*Itemset),
		PerLevel: []int{1},
		Rows:     n,
	}
	// The empty itemset matches everything; it anchors the top meta-rules
	// P(a) of every MRSL.
	empty := relation.NewTuple(nAttrs)
	res.Itemsets[empty.Key()] = &Itemset{Tuple: empty, Count: n, Support: 1, Size: 0}

	// Level 1: count every attribute-value pair. Missing values contribute
	// nothing (relevant only with IncludePartial).
	counts := make(map[string]*Itemset)
	for _, p := range rc.Tuples {
		for a, v := range p {
			if v == relation.Missing {
				continue
			}
			it := relation.NewTuple(nAttrs)
			it[a] = v
			k := it.Key()
			if e, ok := counts[k]; ok {
				e.Count++
			} else {
				counts[k] = &Itemset{Tuple: it, Count: 1, Size: 1}
			}
		}
	}
	frontier := keepFrequent(counts, minCount, n, res)

	// Levels 2..maxSize.
	for k := 2; k <= maxSize && len(frontier) > 0; k++ {
		if len(frontier) > maxItemsets {
			res.Truncated = true
			break
		}
		candidates := generateCandidates(frontier, res.Itemsets, nAttrs)
		if len(candidates) == 0 {
			break
		}
		countCandidates(rc, candidates, k)
		frontier = keepFrequent(candidates, minCount, n, res)
	}
	return res, nil
}

// keepFrequent moves itemsets meeting minCount into the result and returns
// them as the next frontier.
func keepFrequent(cands map[string]*Itemset, minCount, rows int, res *Result) []*Itemset {
	var out []*Itemset
	for k, it := range cands {
		if it.Count < minCount {
			continue
		}
		it.Support = float64(it.Count) / float64(rows)
		res.Itemsets[k] = it
		out = append(out, it)
	}
	// Stable order keeps candidate generation deterministic.
	sort.Slice(out, func(i, j int) bool {
		return out[i].Tuple.Key() < out[j].Tuple.Key()
	})
	if len(out) > 0 {
		for len(res.PerLevel) <= out[0].Size {
			res.PerLevel = append(res.PerLevel, 0)
		}
		res.PerLevel[out[0].Size] = len(out)
	}
	return out
}

// generateCandidates joins frequent (k-1)-itemsets that share all but their
// last assigned attribute (classic Apriori join) and prunes candidates with
// an infrequent (k-1)-subset.
func generateCandidates(frontier []*Itemset, frequent map[string]*Itemset, nAttrs int) map[string]*Itemset {
	out := make(map[string]*Itemset)
	for i := 0; i < len(frontier); i++ {
		for j := i + 1; j < len(frontier); j++ {
			cand, ok := join(frontier[i].Tuple, frontier[j].Tuple, nAttrs)
			if !ok {
				continue
			}
			k := cand.Key()
			if _, dup := out[k]; dup {
				continue
			}
			if !allSubsetsFrequent(cand, frequent) {
				continue
			}
			out[k] = &Itemset{Tuple: cand, Size: frontier[i].Size + 1}
		}
	}
	return out
}

// join merges two k-1 itemsets differing in exactly one assigned attribute
// into a k-itemset, or reports failure.
func join(a, b relation.Tuple, nAttrs int) (relation.Tuple, bool) {
	diff := 0
	out := make(relation.Tuple, nAttrs)
	for i := 0; i < nAttrs; i++ {
		av, bv := a[i], b[i]
		switch {
		case av == bv:
			out[i] = av
		case av == relation.Missing:
			out[i] = bv
			diff++
		case bv == relation.Missing:
			out[i] = av
			diff++
		default:
			return nil, false // same attribute, different values
		}
		if diff > 2 {
			return nil, false
		}
	}
	// Joining two distinct (k-1)-itemsets into a k-itemset requires exactly
	// one attribute unique to each side.
	if diff != 2 {
		return nil, false
	}
	return out, true
}

// allSubsetsFrequent checks the Apriori pruning condition: every (k-1)
// subset of cand must already be frequent.
func allSubsetsFrequent(cand relation.Tuple, frequent map[string]*Itemset) bool {
	for i, v := range cand {
		if v == relation.Missing {
			continue
		}
		cand[i] = relation.Missing
		_, ok := frequent[cand.Key()]
		cand[i] = v
		if !ok {
			return false
		}
	}
	return true
}

// countCandidates scans the relation once, incrementing each candidate a
// point matches. For every point we enumerate its size-k sub-assignments
// restricted to attributes that appear in some candidate, and look them up.
func countCandidates(rc *relation.Relation, cands map[string]*Itemset, k int) {
	nAttrs := rc.Schema.NumAttrs()
	sub := relation.NewTuple(nAttrs)
	idx := make([]int, k)
	var buf []byte
	for _, p := range rc.Tuples {
		// Enumerate all k-subsets of the attribute indices.
		for i := range idx {
			idx[i] = i
		}
		for {
			for i := range sub {
				sub[i] = relation.Missing
			}
			for _, a := range idx {
				sub[a] = p[a]
			}
			buf = sub.AppendKey(buf[:0])
			if it, ok := cands[string(buf)]; ok {
				it.Count++
			}
			// Next k-combination of {0..nAttrs-1}.
			i := k - 1
			for i >= 0 && idx[i] == nAttrs-k+i {
				i--
			}
			if i < 0 {
				break
			}
			idx[i]++
			for j := i + 1; j < k; j++ {
				idx[j] = idx[j-1] + 1
			}
		}
	}
}

// Frequent returns the mined itemset for the given partial assignment, or
// nil if it is not frequent.
func (r *Result) Frequent(t relation.Tuple) *Itemset {
	return r.Itemsets[t.Key()]
}

// Len returns the number of frequent itemsets, including the empty itemset.
func (r *Result) Len() int { return len(r.Itemsets) }

// All returns the frequent itemsets sorted by (size, key) for deterministic
// iteration.
func (r *Result) All() []*Itemset {
	out := make([]*Itemset, 0, len(r.Itemsets))
	for _, it := range r.Itemsets {
		out = append(out, it)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Size != out[j].Size {
			return out[i].Size < out[j].Size
		}
		return out[i].Tuple.Key() < out[j].Tuple.Key()
	})
	return out
}
