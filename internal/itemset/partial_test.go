package itemset

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
)

// partialRelation builds a mixed relation: 6 complete points plus
// incomplete tuples whose known portions carry extra evidence.
func partialRelation(t *testing.T) *relation.Relation {
	t.Helper()
	s := relation.MustSchema([]relation.Attribute{
		{Name: "a", Domain: []string{"a0", "a1"}},
		{Name: "b", Domain: []string{"b0", "b1"}},
	})
	r := relation.NewRelation(s)
	m := relation.Missing
	rows := []relation.Tuple{
		{0, 0}, {0, 0}, {0, 1}, {1, 1}, {1, 1}, {1, 0},
		{0, m}, {0, m}, {m, 1}, {m, m},
	}
	for _, row := range rows {
		if err := r.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestMineRejectsPartialByDefault(t *testing.T) {
	r := partialRelation(t)
	if _, err := Mine(r, Config{SupportThreshold: 0.05}); err == nil {
		t.Error("incomplete tuples should be rejected without IncludePartial")
	}
}

func TestMinePartialCounts(t *testing.T) {
	r := partialRelation(t)
	res, err := Mine(r, Config{SupportThreshold: 0.05, IncludePartial: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 10 {
		t.Fatalf("rows = %d, want 10", res.Rows)
	}
	m := relation.Missing
	// a=a0: rows 1,2,3 complete + two partials = 5.
	if it := res.Frequent(relation.Tuple{0, m}); it == nil || it.Count != 5 {
		t.Errorf("a=a0 count = %+v, want 5", it)
	}
	// b=b1: rows 3,4,5 + one partial = 4.
	if it := res.Frequent(relation.Tuple{m, 1}); it == nil || it.Count != 4 {
		t.Errorf("b=b1 count = %+v, want 4", it)
	}
	// Pair (a0, b0): only complete rows 1,2 count — partial tuples cannot
	// support a pair touching a missing attribute.
	if it := res.Frequent(relation.Tuple{0, 0}); it == nil || it.Count != 2 {
		t.Errorf("(a0,b0) count = %+v, want 2", it)
	}
	// The empty itemset still counts every tuple.
	if it := res.Frequent(relation.NewTuple(2)); it == nil || it.Count != 10 {
		t.Errorf("empty itemset count = %+v, want 10", it)
	}
}

// TestPartialMonotonicityHolds: subset counts still dominate superset
// counts when partial tuples participate.
func TestPartialMonotonicityHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := relation.MustSchema([]relation.Attribute{
		{Name: "x", Domain: []string{"0", "1", "2"}},
		{Name: "y", Domain: []string{"0", "1"}},
		{Name: "z", Domain: []string{"0", "1", "2"}},
	})
	r := relation.NewRelation(s)
	for i := 0; i < 300; i++ {
		tu := relation.Tuple{rng.Intn(3), rng.Intn(2), rng.Intn(3)}
		for j := range tu {
			if rng.Float64() < 0.2 {
				tu[j] = relation.Missing
			}
		}
		if err := r.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Mine(r, Config{SupportThreshold: 0.01, IncludePartial: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range res.All() {
		if it.Size == 0 {
			continue
		}
		for a, v := range it.Tuple {
			if v == relation.Missing {
				continue
			}
			sub := it.Tuple.Clone()
			sub[a] = relation.Missing
			parent := res.Frequent(sub)
			if parent == nil || parent.Count < it.Count {
				t.Fatalf("monotonicity violated at %v -> %v", it.Tuple, sub)
			}
		}
	}
}

// TestPartialMiningImprovesCoverage: with heavy missingness, partial mining
// sees strictly more evidence for single attributes than complete-only
// mining.
func TestPartialMiningImprovesCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	s := relation.MustSchema([]relation.Attribute{
		{Name: "x", Domain: []string{"0", "1"}},
		{Name: "y", Domain: []string{"0", "1"}},
		{Name: "z", Domain: []string{"0", "1"}},
	})
	full := relation.NewRelation(s)
	for i := 0; i < 500; i++ {
		tu := relation.Tuple{rng.Intn(2), rng.Intn(2), rng.Intn(2)}
		if i%2 == 0 { // half the tuples lose one value
			tu[rng.Intn(3)] = relation.Missing
		}
		if err := full.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	rc, _ := full.Split()
	completeOnly, err := Mine(rc, Config{SupportThreshold: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	partial, err := Mine(full, Config{SupportThreshold: 0.01, IncludePartial: true})
	if err != nil {
		t.Fatal(err)
	}
	m := relation.Missing
	probe := relation.Tuple{0, m, m}
	co := completeOnly.Frequent(probe)
	pa := partial.Frequent(probe)
	if co == nil || pa == nil {
		t.Fatal("x=0 should be frequent in both runs")
	}
	if pa.Count <= co.Count {
		t.Errorf("partial count %d should exceed complete-only %d", pa.Count, co.Count)
	}
}
