package itemset

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
)

// tinyRelation builds a 8-point relation over two binary and one ternary
// attribute with known co-occurrence counts.
func tinyRelation(t *testing.T) *relation.Relation {
	t.Helper()
	s := relation.MustSchema([]relation.Attribute{
		{Name: "a", Domain: []string{"a0", "a1"}},
		{Name: "b", Domain: []string{"b0", "b1"}},
		{Name: "c", Domain: []string{"c0", "c1", "c2"}},
	})
	r := relation.NewRelation(s)
	rows := []relation.Tuple{
		{0, 0, 0},
		{0, 0, 0},
		{0, 0, 1},
		{0, 1, 1},
		{1, 0, 2},
		{1, 1, 2},
		{1, 1, 0},
		{1, 1, 0},
	}
	for _, row := range rows {
		if err := r.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestMineValidation(t *testing.T) {
	r := tinyRelation(t)
	if _, err := Mine(r, Config{SupportThreshold: 0}); err == nil {
		t.Error("theta=0 should fail")
	}
	if _, err := Mine(r, Config{SupportThreshold: 1.5}); err == nil {
		t.Error("theta>1 should fail")
	}
	empty := relation.NewRelation(r.Schema)
	if _, err := Mine(empty, Config{SupportThreshold: 0.1}); err == nil {
		t.Error("empty relation should fail")
	}
	incomplete := relation.NewRelation(r.Schema)
	if err := incomplete.Append(relation.Tuple{0, relation.Missing, 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := Mine(incomplete, Config{SupportThreshold: 0.1}); err == nil {
		t.Error("incomplete tuples should fail")
	}
}

func TestMineCountsExactly(t *testing.T) {
	r := tinyRelation(t)
	res, err := Mine(r, Config{SupportThreshold: 0.124}) // count >= 1 needs supp >= 1/8
	if err != nil {
		t.Fatal(err)
	}
	m := relation.Missing
	check := func(tu relation.Tuple, wantCount int) {
		t.Helper()
		it := res.Frequent(tu)
		if wantCount == 0 {
			if it != nil {
				t.Errorf("%v should not be frequent, got count %d", tu, it.Count)
			}
			return
		}
		if it == nil {
			t.Errorf("%v should be frequent with count %d", tu, wantCount)
			return
		}
		if it.Count != wantCount {
			t.Errorf("%v count = %d, want %d", tu, it.Count, wantCount)
		}
		if got, want := it.Support, float64(wantCount)/8; got != want {
			t.Errorf("%v support = %v, want %v", tu, got, want)
		}
	}
	// Singletons.
	check(relation.Tuple{0, m, m}, 4)
	check(relation.Tuple{1, m, m}, 4)
	check(relation.Tuple{m, 0, m}, 4)
	check(relation.Tuple{m, 1, m}, 4)
	check(relation.Tuple{m, m, 0}, 4)
	check(relation.Tuple{m, m, 1}, 2)
	check(relation.Tuple{m, m, 2}, 2)
	// Pairs.
	check(relation.Tuple{0, 0, m}, 3)
	check(relation.Tuple{0, 1, m}, 1)
	check(relation.Tuple{1, 1, m}, 3)
	check(relation.Tuple{m, 1, 0}, 2)
	// Triples.
	check(relation.Tuple{0, 0, 0}, 2)
	check(relation.Tuple{1, 1, 0}, 2)
	check(relation.Tuple{1, 0, 0}, 0) // never occurs
	// Empty itemset present with support 1.
	check(relation.NewTuple(3), 8)
}

func TestMineRespectsThreshold(t *testing.T) {
	r := tinyRelation(t)
	res, err := Mine(r, Config{SupportThreshold: 0.5}) // count >= 4
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range res.All() {
		if it.Size == 0 {
			continue
		}
		if it.Count < 4 {
			t.Errorf("itemset %v has count %d < 4", it.Tuple, it.Count)
		}
	}
	m := relation.Missing
	if res.Frequent(relation.Tuple{m, m, 1}) != nil {
		t.Error("c=c1 (count 2) should not pass theta=0.5")
	}
	if res.Frequent(relation.Tuple{0, m, m}) == nil {
		t.Error("a=a0 (count 4) should pass theta=0.5")
	}
}

// TestAprioriMonotonicity: the support of an itemset never exceeds the
// support of any of its subsets.
func TestAprioriMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := relation.MustSchema([]relation.Attribute{
		{Name: "w", Domain: []string{"0", "1", "2"}},
		{Name: "x", Domain: []string{"0", "1"}},
		{Name: "y", Domain: []string{"0", "1", "2"}},
		{Name: "z", Domain: []string{"0", "1"}},
	})
	r := relation.NewRelation(s)
	for i := 0; i < 400; i++ {
		tu := relation.Tuple{rng.Intn(3), rng.Intn(2), rng.Intn(3), rng.Intn(2)}
		if err := r.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Mine(r, Config{SupportThreshold: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range res.All() {
		if it.Size == 0 {
			continue
		}
		// Drop each assigned attribute; the subset must be frequent with
		// at least this count.
		for a, v := range it.Tuple {
			if v == relation.Missing {
				continue
			}
			sub := it.Tuple.Clone()
			sub[a] = relation.Missing
			parent := res.Frequent(sub)
			if parent == nil {
				t.Fatalf("subset %v of frequent %v is missing", sub, it.Tuple)
			}
			if parent.Count < it.Count {
				t.Fatalf("subset %v count %d < superset %v count %d",
					sub, parent.Count, it.Tuple, it.Count)
			}
		}
	}
}

// TestMineAgainstBruteForce compares Apriori counts against brute-force
// enumeration on a small random relation.
func TestMineAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	s := relation.MustSchema([]relation.Attribute{
		{Name: "x", Domain: []string{"0", "1"}},
		{Name: "y", Domain: []string{"0", "1", "2"}},
		{Name: "z", Domain: []string{"0", "1"}},
	})
	r := relation.NewRelation(s)
	for i := 0; i < 60; i++ {
		tu := relation.Tuple{rng.Intn(2), rng.Intn(3), rng.Intn(2)}
		if err := r.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	const theta = 0.1
	res, err := Mine(r, Config{SupportThreshold: theta})
	if err != nil {
		t.Fatal(err)
	}
	// Brute force: enumerate every partial assignment, count matches.
	minCount := 6 // ceil(0.1*60)
	var walk func(tu relation.Tuple, attr int)
	walk = func(tu relation.Tuple, attr int) {
		if attr == 3 {
			count := r.CountMatches(tu)
			it := res.Frequent(tu)
			if count >= minCount {
				if it == nil {
					t.Fatalf("missing frequent itemset %v (count %d)", tu, count)
				}
				if it.Count != count {
					t.Fatalf("itemset %v count %d, want %d", tu, it.Count, count)
				}
			} else if it != nil && it.Size > 0 {
				t.Fatalf("infrequent itemset %v (count %d) reported frequent", tu, count)
			}
			return
		}
		tu[attr] = relation.Missing
		walk(tu, attr+1)
		for v := 0; v < r.Schema.Attrs[attr].Card(); v++ {
			tu[attr] = v
			walk(tu, attr+1)
		}
		tu[attr] = relation.Missing
	}
	walk(relation.NewTuple(3), 0)
}

func TestMaxItemsetsTruncates(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	attrs := make([]relation.Attribute, 6)
	for i := range attrs {
		attrs[i] = relation.Attribute{
			Name:   string(rune('a' + i)),
			Domain: []string{"0", "1", "2", "3"},
		}
	}
	s := relation.MustSchema(attrs)
	r := relation.NewRelation(s)
	for i := 0; i < 500; i++ {
		tu := make(relation.Tuple, 6)
		for j := range tu {
			tu[j] = rng.Intn(4)
		}
		if err := r.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	full, err := Mine(r, Config{SupportThreshold: 0.001, MaxItemsets: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := Mine(r, Config{SupportThreshold: 0.001, MaxItemsets: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !capped.Truncated {
		t.Error("capped run should be truncated")
	}
	if capped.Len() >= full.Len() {
		t.Errorf("capped %d itemsets, full %d — cap had no effect", capped.Len(), full.Len())
	}
}

func TestMaxSizeBounds(t *testing.T) {
	r := tinyRelation(t)
	res, err := Mine(r, Config{SupportThreshold: 0.124, MaxSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range res.All() {
		if it.Size > 1 {
			t.Errorf("itemset %v exceeds MaxSize=1", it.Tuple)
		}
	}
}

func TestPerLevelAccounting(t *testing.T) {
	r := tinyRelation(t)
	res, err := Mine(r, Config{SupportThreshold: 0.124})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerLevel[0] != 1 {
		t.Errorf("PerLevel[0] = %d, want 1", res.PerLevel[0])
	}
	// 2+2+3 singleton values exist.
	if res.PerLevel[1] != 7 {
		t.Errorf("PerLevel[1] = %d, want 7", res.PerLevel[1])
	}
	total := 0
	for _, c := range res.PerLevel {
		total += c
	}
	if total != res.Len() {
		t.Errorf("PerLevel sums to %d, Len is %d", total, res.Len())
	}
	if res.Rows != 8 {
		t.Errorf("Rows = %d, want 8", res.Rows)
	}
}

func TestAllSortedDeterministic(t *testing.T) {
	r := tinyRelation(t)
	res, err := Mine(r, Config{SupportThreshold: 0.124})
	if err != nil {
		t.Fatal(err)
	}
	a := res.All()
	b := res.All()
	for i := range a {
		if !a[i].Tuple.Equal(b[i].Tuple) {
			t.Fatal("All() is not deterministic")
		}
		if i > 0 && a[i].Size < a[i-1].Size {
			t.Fatal("All() not sorted by size")
		}
	}
}
