package itemset

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/relation"
)

func benchRelation(b *testing.B, n int) *relation.Relation {
	b.Helper()
	rng := rand.New(rand.NewSource(6))
	attrs := make([]relation.Attribute, 6)
	for i := range attrs {
		attrs[i] = relation.Attribute{
			Name:   fmt.Sprintf("a%d", i),
			Domain: []string{"0", "1", "2", "3"},
		}
	}
	r := relation.NewRelation(relation.MustSchema(attrs))
	r.Tuples = make([]relation.Tuple, n)
	for i := range r.Tuples {
		tu := make(relation.Tuple, 6)
		// Correlated columns: later attrs echo earlier ones with noise, so
		// the miner finds real structure rather than uniform junk.
		tu[0] = rng.Intn(4)
		for j := 1; j < 6; j++ {
			if rng.Float64() < 0.6 {
				tu[j] = tu[j-1]
			} else {
				tu[j] = rng.Intn(4)
			}
		}
		r.Tuples[i] = tu
	}
	return r
}

// BenchmarkMine measures Apriori across support thresholds.
func BenchmarkMine(b *testing.B) {
	r := benchRelation(b, 10000)
	for _, sup := range []float64{0.05, 0.01, 0.002} {
		b.Run(fmt.Sprintf("support=%g", sup), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Mine(r, Config{SupportThreshold: sup}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMinePartial measures the partial-tuple variant's overhead.
func BenchmarkMinePartial(b *testing.B) {
	r := benchRelation(b, 10000)
	rng := rand.New(rand.NewSource(7))
	for i := range r.Tuples {
		if i%3 == 0 {
			r.Tuples[i][rng.Intn(6)] = relation.Missing
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Mine(r, Config{SupportThreshold: 0.01, IncludePartial: true}); err != nil {
			b.Fatal(err)
		}
	}
}
