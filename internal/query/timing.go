// Explain-analyze timing: the executor accumulates per-tier resolution
// durations and counts while it evaluates, and finish() attaches them to
// PlanInfo.Timing — actual timings next to the planner's predicted tier
// counts. Accumulation is opt-in (Spec.Analyze, or a Trace on the
// context): the clock reads wrap whole resolution units, and when
// disabled every probe is a single bool test, so the always-on cost is
// two clock reads per evaluation (the wall/plan stage histograms).
// Timing never changes answers — it only observes.
package query

import (
	"time"

	"repro/internal/obs"
)

// Stage-level evaluation histograms, always on (two clock reads per
// evaluation, never per tuple).
var (
	planSeconds = obs.Default.Histogram("mrsl_query_plan_seconds", "",
		"Query planning (tier classification + bound envelopes) per evaluation.")
	execSeconds = obs.Default.Histogram("mrsl_query_exec_seconds", "",
		"End-to-end query evaluation wall time, planning included.")
)

// TierTiming is one resolution tier's measured share of an evaluation:
// how many tuples the executor resolved through it and how long those
// resolutions took in total. The prefetch entry counts tuples handed to
// the warm-up pools and the wall time spent waiting for them.
type TierTiming struct {
	Tier       string  `json:"tier"`
	Tuples     int64   `json:"tuples"`
	DurationMS float64 `json:"duration_ms"`
}

// PlanTiming is the explain-analyze block attached to PlanInfo.Timing:
// actual measured durations for one evaluation. PlanMS covers
// validation, tier classification, and bound-envelope enumeration;
// WallMS is the whole evaluation including planning; Tiers holds the
// per-tier resolution times. PlanMS plus the tier durations account for
// the evaluation's inference work — on inference-heavy workloads they
// sum to approximately WallMS, and the remainder is scan/fold overhead.
type PlanTiming struct {
	PlanMS float64      `json:"plan_ms"`
	WallMS float64      `json:"wall_ms"`
	Tiers  []TierTiming `json:"tiers"`
}

// execTiming is the executor's timing accumulator. The executor is
// single-goroutine (pools are timed from the outside, as the prefetch
// stage), so plain int64 fields suffice.
type execTiming struct {
	enabled bool
	start   time.Time // evaluation wall start (set even when disabled)
	planNS  int64

	prefetchNS, prefetchN int64
	voteNS, voteN         int64
	deriveNS, deriveN     int64
	observedNS, observedN int64
}

// tick reads the clock when timing is enabled; the zero time otherwise.
func (tm *execTiming) tick() time.Time {
	if !tm.enabled {
		return time.Time{}
	}
	return time.Now()
}

// tock accumulates one timed resolution.
func (tm *execTiming) tock(start time.Time, ns, n *int64) {
	if !tm.enabled {
		return
	}
	*ns += time.Since(start).Nanoseconds()
	*n++
}

func nsToMS(ns int64) float64 { return float64(ns) / 1e6 }

// build renders the accumulated stages, or nil when timing was off.
func (tm *execTiming) build(wall time.Duration) *PlanTiming {
	if !tm.enabled {
		return nil
	}
	pt := &PlanTiming{PlanMS: nsToMS(tm.planNS), WallMS: float64(wall.Nanoseconds()) / 1e6}
	add := func(tier string, n, ns int64) {
		if n > 0 {
			pt.Tiers = append(pt.Tiers, TierTiming{Tier: tier, Tuples: n, DurationMS: nsToMS(ns)})
		}
	}
	add("prefetch", tm.prefetchN, tm.prefetchNS)
	add("vote", tm.voteN, tm.voteNS)
	add("derive", tm.deriveN, tm.deriveNS)
	add("observed", tm.observedN, tm.observedNS)
	return pt
}

// trace mirrors the timing block into the request's span recorder (a
// no-op on a nil trace).
func (pt *PlanTiming) trace(tr *obs.Trace) {
	if pt == nil || tr == nil {
		return
	}
	tr.Observe("query.plan", time.Duration(pt.PlanMS*1e6))
	for _, t := range pt.Tiers {
		tr.Observe("query."+t.Tier, time.Duration(t.DurationMS*1e6))
	}
	tr.Observe("query.wall", time.Duration(pt.WallMS*1e6))
}
