package query

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/derive"
	"repro/internal/gibbs"
	"repro/internal/relation"
	"repro/internal/vote"
)

var updateGoldens = flag.Bool("update", false, "rewrite the spj golden file")

// formatTuple renders a tuple as comma-joined labels ("?" for missing).
func formatTuple(s *relation.Schema, tu relation.Tuple) string {
	var b bytes.Buffer
	for i, v := range tu {
		if i > 0 {
			b.WriteByte(',')
		}
		if v == relation.Missing {
			b.WriteByte('?')
		} else {
			b.WriteString(s.Attrs[i].Domain[v])
		}
	}
	return b.String()
}

// TestSPJGolden pins the whole SQL-statement path — CSV join inputs,
// ParseSPJ, Bind, CompileSPJ, PlanSPJ, EvalSPJ — byte-for-byte against a
// golden transcript. The model is the paper's matchmaking example split
// into people(age, edu, pid) and finance(pid, inc, nw) CSVs under
// testdata; every stage is deterministic (content-seeded chains), so the
// rendered plans, verdicts, and probabilities are byte-stable across
// processes and worker counts.
func TestSPJGolden(t *testing.T) {
	rc, _ := relation.Matchmaking().Split()
	m, err := core.Learn(rc, core.Config{SupportThreshold: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	method := vote.Method{Choice: core.BestVoters, Scheme: vote.Averaged}
	eng, err := derive.New(m, derive.Config{
		Method:       method,
		Gibbs:        gibbs.Config{Samples: 200, BurnIn: 20, Method: method, Seed: 5},
		VoteWorkers:  4,
		GibbsWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	inputs := make(map[string]*relation.Relation)
	for _, name := range []string{"people", "finance"} {
		f, err := os.Open(filepath.Join("testdata", name+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		rel, err := relation.ReadCSV(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		inputs[name] = rel
	}

	queries := []struct {
		stmt string
		spec Spec
	}{
		{"from people join finance on pid=pid where age=20", Spec{Op: Count}},
		{"from people join finance on pid=pid where inc=100K", Spec{Op: Exists}},
		{"from people join finance on pid=pid where inc=100K", Spec{Op: Exists, MinProb: 0.99}},
		{"from people join finance on pid=pid where nw=500K", Spec{Op: TopK, K: 3}},
		{"from people join finance on pid=pid where age>=30", Spec{Op: GroupBy, GroupBy: "edu"}},
		{"select edu from people join finance on pid=pid where inc=100K", Spec{Op: TopK, K: 3}},
	}

	var buf bytes.Buffer
	ctx := t.Context()
	for _, qc := range queries {
		fmt.Fprintf(&buf, "== %v %s\n", qc.spec.Op, qc.stmt)
		st, err := ParseSPJ(qc.stmt)
		if err != nil {
			t.Fatalf("%s: %v", qc.stmt, err)
		}
		spec, err := st.Bind(inputs, qc.spec, false)
		if err != nil {
			t.Fatalf("%s: %v", qc.stmt, err)
		}
		spj, err := CompileSPJ(m.Schema, spec)
		if err != nil {
			t.Fatalf("%s: %v", qc.stmt, err)
		}
		info, err := PlanSPJ(ctx, eng, spj)
		if err != nil {
			t.Fatal(err)
		}
		buf.WriteString(info.String())
		res, err := EvalSPJ(ctx, eng, spj, derive.Pools{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		switch qc.spec.Op {
		case Count:
			fmt.Fprintf(&buf, "expected count: %.6g\n", res.Expected)
		case Exists:
			fmt.Fprintf(&buf, "exists: %v P=%.6g earlystop=%v dissociated=%v", res.Exists, res.Prob, res.EarlyStop, res.Dissociated)
			if res.Bounds != nil {
				fmt.Fprintf(&buf, " bounds=[%.6g, %.6g]", res.Bounds.Lo, res.Bounds.Hi)
			}
			buf.WriteString("\n")
		case TopK:
			schema := m.Schema
			if spj.AnswerSchema() != nil {
				schema = spj.AnswerSchema()
			}
			for _, r := range res.Rows {
				fmt.Fprintf(&buf, "row %d: %s P=%.6g\n", r.Index, formatTuple(schema, r.Tuple), r.Prob)
			}
		case GroupBy:
			for _, g := range res.Groups {
				if g.Expected == 0 {
					continue
				}
				fmt.Fprintf(&buf, "%s: E=%.6g Var=%.6g\n", g.Label, g.Expected, g.Variance)
			}
		}
		buf.WriteString("\n")
	}

	path := filepath.Join("testdata", "spj_queries.golden")
	if *updateGoldens {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run go test ./internal/query -update to create the golden)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("transcript is not byte-identical to the golden file\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}
