// Package query implements the engine-native probabilistic query
// subsystem: a compiled representation of conjunctive predicates
// (equality and domain-order comparisons) under the operators count,
// exists, topk, and groupby — each with an optional probability
// threshold — evaluated through a plan/executor pipeline on top of
// derive.Engine.
//
// Evaluation is two-staged. The planner (planner.go) compiles one
// evaluation's Plan against a concrete engine and relation: it orders
// predicate evaluation by estimated selectivity (satisfying-set
// cardinality refined by marginal mass from the engine's shared CPD
// cache) and classifies every tuple into a resolution tier — refuted,
// certain, single-missing, bounded, or derive — attaching a sound
// dissociation-style [lo, hi] probability interval (derive.Engine's
// BoundCPD) to each multi-missing tuple. The executor (executor.go)
// consumes the tiers in increasing cost order, deciding as much as the
// bounds allow and deriving only the remainder.
//
// The pipeline's contract is exactness with pruning: every answer is
// bit-identical to deriving the full probabilistic database and
// evaluating naively, yet selective queries derive only a fraction of
// the tuples. Pruning comes from four sound sources, in increasing
// cost:
//
//   - Evidence: a tuple whose known values refute the predicates has
//     satisfaction probability exactly 0 — no inference at all.
//     Structural analysis extends this to open attributes whose compiled
//     satisfying set is empty. Complete tuples are likewise decided for
//     free in either direction. (An *incomplete* entailed tuple is not
//     pruned to 1: its block's probability mass need not sum to exactly
//     1.0 in floats, so pinning it would break bit-identity — it is
//     resolved like any open tuple instead.)
//   - Point bounds: a single-missing tuple's completion distribution is
//     the voted CPD itself, served from the engine's shared local-CPD
//     cache — the same estimate, from the same cache slot, full
//     derivation would use — so its satisfaction probability is an exact
//     point bound and the tuple never needs a block expansion.
//   - Dissociation intervals: a multi-missing tuple's satisfying mass is
//     bracketed by combining per-attribute conditional-CPD envelopes
//     with Frechet bounds (derive.Engine.BoundCPD) — sound for the very
//     chain estimate derivation would produce. A thresholded count
//     counts the tuple in when Lo clears the threshold and out when Hi
//     stays below; exists folds the Lo sides into a derivation-free
//     lower bound that can cross its threshold without any sampling;
//     topk skips every candidate whose Hi cannot reach the held rank-k
//     probability. One-sided decisions imply the oracle's comparison, so
//     bit-identity survives.
//   - Early termination: exists stops at the first sure witness (or once
//     the accumulated probability crosses the threshold, which it can
//     never fall back below), and topk stops once the best remaining
//     upper bound cannot displace rank k.
//
// Expected counts, unthresholded exists, and groupby need every open
// tuple's exact mass, so they scan fully — the deliberate limit of
// interval pruning. (Intensional, lineage-based evaluation for
// joins/projections and cross-block correlations remain ROADMAP
// follow-ups.)
package query

import (
	"fmt"
	"strings"

	"repro/internal/relation"
)

// Op is a query operator.
type Op int

const (
	// Count evaluates the expected number of satisfying tuples — or,
	// with a probability threshold, the number of tuples whose
	// satisfaction probability reaches it.
	Count Op = iota
	// Exists evaluates the probability that at least one tuple
	// satisfies the predicates (blocks are independent), with early
	// termination once the answer cannot change.
	Exists
	// TopK returns the k most probable satisfying completions.
	TopK
	// GroupBy returns the expected histogram of one attribute over the
	// satisfying tuples.
	GroupBy
)

// String returns the operator's wire name.
func (o Op) String() string {
	switch o {
	case Count:
		return "count"
	case Exists:
		return "exists"
	case TopK:
		return "topk"
	case GroupBy:
		return "groupby"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// ParseOp converts a wire name into an Op.
func ParseOp(s string) (Op, error) {
	switch s {
	case "count":
		return Count, nil
	case "exists":
		return Exists, nil
	case "topk":
		return TopK, nil
	case "groupby":
		return GroupBy, nil
	}
	return 0, fmt.Errorf("query: unknown operation %q", s)
}

// Cmp is a predicate comparison. Ordered comparisons compare value codes,
// i.e. domain positions: they are meaningful for attributes whose domain
// lists values in a semantic order (discretized numeric buckets do).
type Cmp int

const (
	Eq Cmp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

// String returns the comparison's surface syntax.
func (c Cmp) String() string {
	switch c {
	case Eq:
		return "="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	default:
		return fmt.Sprintf("Cmp(%d)", int(c))
	}
}

// holds reports whether value code v satisfies the comparison against
// the predicate code w.
func (c Cmp) holds(v, w int) bool {
	switch c {
	case Eq:
		return v == w
	case Ne:
		return v != w
	case Lt:
		return v < w
	case Le:
		return v <= w
	case Gt:
		return v > w
	case Ge:
		return v >= w
	default:
		return false
	}
}

// Pred is one predicate: Attr Cmp Value, with Value a domain code of
// Attr. Several predicates may constrain the same attribute (a range);
// a tuple satisfies the query when every predicate holds.
type Pred struct {
	Attr  int
	Cmp   Cmp
	Value int
}

// Spec is the uncompiled form of a query, as CLI flags and HTTP query
// parameters express it.
type Spec struct {
	// Op is the operator.
	Op Op
	// Preds are programmatic predicates; predicates parsed from Where
	// are appended to them.
	Preds []Pred
	// Where is the textual conjunction, e.g. "age=30,inc>=50K" (see
	// ParseWhere). Empty means Preds alone.
	Where string
	// GroupBy names the histogram attribute (GroupBy op only).
	GroupBy string
	// K caps TopK results; <= 0 keeps every satisfying row.
	K int
	// MinProb is the optional probability threshold in [0, 1]: Count
	// counts tuples reaching it, Exists answers whether the existence
	// probability reaches it, TopK drops rows below it. 0 disables it.
	MinProb float64
	// Analyze enables explain-analyze timing: the executor measures
	// per-tier resolution durations and attaches them to
	// Result.Plan.Timing. Timing never changes answers; it only adds
	// clock reads around resolution units.
	Analyze bool
	// Static disables the adaptive execution layer for this evaluation:
	// the planner enumerates dissociation envelopes in the fixed tier
	// order (no cost model, no shared interval cache) and the executor
	// takes no re-plan shortcuts (blanket prefetch instead of waves, no
	// collective-refute round). Answers are bit-identical either way —
	// the adaptive property suite pins that — so Static exists as the
	// experiment control and for debugging plan differences.
	Static bool
}

// valueSet is the compiled satisfying set of one constrained attribute:
// the intersection of every predicate on it.
type valueSet struct {
	ok []bool // ok[v]: value code v satisfies all predicates on the attribute
	n  int    // number of satisfying values
}

func (s *valueSet) empty() bool { return s.n == 0 }
func (s *valueSet) full() bool  { return s.n == len(s.ok) }

// contains reports whether value code v satisfies the set.
func (s *valueSet) contains(v int) bool { return s.ok[v] }

// Query is a compiled query over one schema: per-attribute satisfying
// sets plus the operator and its parameters. Compile validates
// everything up front, so evaluation never fails on query shape.
type Query struct {
	op     Op
	schema *relation.Schema
	// sat[a] is the satisfying set of attribute a, nil when a is
	// unconstrained.
	sat []*valueSet
	// constrained lists the constrained attributes in increasing order.
	constrained []int
	groupAttr   int // -1 unless op == GroupBy
	k           int
	minProb     float64
	preds       []Pred // the original predicates, for String
	// boundsOff disables dissociation-interval planning regardless of the
	// operator. The projected (distinct-answer) SPJ mode sets it: every
	// non-refuted row needs its exact per-completion masses, so intervals
	// would be computed and then ignored.
	boundsOff bool
	// analyze requests explain-analyze timing (Spec.Analyze).
	analyze bool
	// static disables adaptive execution (Spec.Static).
	static bool
}

// Compile validates spec against the schema and compiles it. Count,
// Exists, and TopK require at least one predicate; GroupBy requires a
// group attribute and accepts zero predicates (the unfiltered
// histogram).
func Compile(s *relation.Schema, spec Spec) (*Query, error) {
	if s == nil {
		return nil, fmt.Errorf("query: nil schema")
	}
	q := &Query{
		op:        spec.Op,
		schema:    s,
		sat:       make([]*valueSet, s.NumAttrs()),
		groupAttr: -1,
		k:         spec.K,
		minProb:   spec.MinProb,
		analyze:   spec.Analyze,
		static:    spec.Static,
	}
	switch spec.Op {
	case Count, Exists, TopK:
	case GroupBy:
		if spec.GroupBy == "" {
			return nil, fmt.Errorf("query: groupby requires a group attribute")
		}
	default:
		return nil, fmt.Errorf("query: unknown operation %v", spec.Op)
	}
	if spec.GroupBy != "" {
		if spec.Op != GroupBy {
			return nil, fmt.Errorf("query: group attribute is only valid for groupby")
		}
		a := s.AttrIndex(spec.GroupBy)
		if a < 0 {
			return nil, fmt.Errorf("query: unknown attribute %q", spec.GroupBy)
		}
		q.groupAttr = a
	}
	if !(spec.MinProb >= 0 && spec.MinProb <= 1) { // also rejects NaN
		return nil, fmt.Errorf("query: probability threshold %v outside [0, 1]", spec.MinProb)
	}
	if spec.Op == GroupBy && (spec.K != 0 || spec.MinProb != 0) {
		return nil, fmt.Errorf("query: k and minprob are not valid for groupby")
	}
	if spec.Op != TopK && spec.K != 0 {
		return nil, fmt.Errorf("query: k is only valid for topk")
	}
	preds := append([]Pred(nil), spec.Preds...)
	if spec.Where != "" {
		parsed, err := ParseWhere(s, spec.Where)
		if err != nil {
			return nil, err
		}
		preds = append(preds, parsed...)
	}
	if len(preds) == 0 && spec.Op != GroupBy {
		return nil, fmt.Errorf("query: %v requires at least one predicate", spec.Op)
	}
	for _, p := range preds {
		if p.Attr < 0 || p.Attr >= s.NumAttrs() {
			return nil, fmt.Errorf("query: predicate attribute %d out of range", p.Attr)
		}
		card := s.Attrs[p.Attr].Card()
		if p.Value < 0 || p.Value >= card {
			return nil, fmt.Errorf("query: predicate value %d out of range for %q",
				p.Value, s.Attrs[p.Attr].Name)
		}
		switch p.Cmp {
		case Eq, Ne, Lt, Le, Gt, Ge:
		default:
			return nil, fmt.Errorf("query: unknown comparison %v", p.Cmp)
		}
		set := q.sat[p.Attr]
		if set == nil {
			set = &valueSet{ok: make([]bool, card), n: card}
			for v := range set.ok {
				set.ok[v] = true
			}
			q.sat[p.Attr] = set
			q.constrained = append(q.constrained, p.Attr)
		}
		for v := range set.ok {
			if set.ok[v] && !p.Cmp.holds(v, p.Value) {
				set.ok[v] = false
				set.n--
			}
		}
	}
	// constrained was appended in predicate order; restore increasing
	// attribute order for deterministic classification.
	for i := 1; i < len(q.constrained); i++ {
		for j := i; j > 0 && q.constrained[j] < q.constrained[j-1]; j-- {
			q.constrained[j], q.constrained[j-1] = q.constrained[j-1], q.constrained[j]
		}
	}
	q.preds = preds
	return q, nil
}

// Op returns the compiled operator.
func (q *Query) Op() Op { return q.op }

// Schema returns the schema the query was compiled against.
func (q *Query) Schema() *relation.Schema { return q.schema }

// K returns the TopK result cap (<= 0 means unbounded).
func (q *Query) K() int { return q.k }

// MinProb returns the probability threshold (0 when unset).
func (q *Query) MinProb() float64 { return q.minProb }

// GroupAttr returns the histogram attribute, or -1 for non-GroupBy
// queries.
func (q *Query) GroupAttr() int { return q.groupAttr }

// String renders the query in its surface syntax.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString(q.op.String())
	if len(q.preds) > 0 {
		b.WriteString(" where ")
		for i, p := range q.preds {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s%s%s", q.schema.Attrs[p.Attr].Name, p.Cmp,
				q.schema.Attrs[p.Attr].Domain[p.Value])
		}
	}
	if q.groupAttr >= 0 {
		fmt.Fprintf(&b, " by %s", q.schema.Attrs[q.groupAttr].Name)
	}
	if q.op == TopK && q.k > 0 {
		fmt.Fprintf(&b, " k=%d", q.k)
	}
	if q.minProb > 0 {
		fmt.Fprintf(&b, " minprob=%g", q.minProb)
	}
	return b.String()
}

// class is the evidence/structure classification of one tuple against
// the query predicates.
type class int

const (
	// refuted: satisfaction probability is exactly 0 — a known value
	// fails a predicate, or an open attribute has an empty satisfying
	// set.
	refuted class = iota
	// entailed: satisfaction probability is exactly 1 — every predicate
	// is satisfied by known values or by the attribute's full domain.
	entailed
	// openSingle: the tuple has exactly one missing attribute and the
	// predicates genuinely depend on it; the voted CPD decides it
	// exactly.
	openSingle
	// openMulti: satisfaction depends on several missing values (or on
	// one of several); only the joint distribution decides it.
	openMulti
)

// classify decides t against the query predicates from evidence and
// structure alone. open receives the effective open attributes —
// constrained, missing in t, and not satisfied by their full domain —
// appended to buf (reuse a buffer across calls to avoid allocation).
func (q *Query) classify(t relation.Tuple, buf []int) (c class, open []int) {
	open = buf[:0]
	for _, a := range q.constrained {
		set := q.sat[a]
		if t[a] != relation.Missing {
			if !set.contains(t[a]) {
				return refuted, nil
			}
			continue
		}
		if set.empty() {
			return refuted, nil
		}
		if set.full() {
			continue
		}
		open = append(open, a)
	}
	if len(open) == 0 {
		return entailed, nil
	}
	if t.NumMissing() == 1 {
		return openSingle, open
	}
	return openMulti, open
}
