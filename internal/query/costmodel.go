// Cost model: the calibrated chooser that replaces the planner's fixed
// "always enumerate envelopes" rule for multi-missing tuples. The
// static planner pays the dissociation-envelope enumeration for every
// multi-missing tuple a thresholded operator scans, betting that the
// interval will decide the tuple and spare a Gibbs chain. That bet has
// a measurable price (one CPD probe — a vote, on a cold cache — per
// assignment of the tuple's other missing attributes) and a measurable
// payoff (the chain latency, discounted by how often intervals actually
// decide), and both sides are already instrumented: the
// mrsl_derive_vote_seconds / mrsl_derive_chain_seconds histograms give
// live per-tier latencies, and the engine's QueryBounded/QueryDerived
// counters give the observed decide rate. The chooser declines the
// enumeration when its expected cost clearly exceeds the expected
// saving, routing the tuple straight to the derive tier — a scheduling
// decision only, never a value change, so every answer stays
// bit-identical to the static plan and the derive-everything oracle.
// While either histogram is cold the chooser is inactive and the
// planner keeps the static order.
package query

import (
	"repro/internal/derive"
	"repro/internal/relation"
)

// costModelSlack biases the chooser toward enumerating: envelopes are
// memoized in the shared caches and amortize across overlapping and
// future queries, while a skipped enumeration's saving is once-off — so
// enumeration must look this many times more expensive than the
// expected chain saving before the planner declines it.
const costModelSlack = 4.0

// costModelMinDecisions is the minimum recorded bound-vs-derive history
// before the engine's observed decide rate replaces the neutral prior.
const costModelMinDecisions = 32

// costModel is one plan's snapshot of the chooser's inputs. The zero
// value is the inactive (cold or static) model, which approves every
// enumeration — the static tier order.
type costModel struct {
	active          bool
	voteNS, chainNS float64
	decideRate      float64
}

// newCostModel captures the live calibration inputs: the per-tier mean
// latencies (derive.TierLatencies, cold-gated) and the engine's
// lifetime interval-decide rate, floored at 5% so a bad streak cannot
// talk the planner out of bounding entirely.
func newCostModel(eng *derive.Engine) costModel {
	voteNS, chainNS, calibrated := derive.TierLatencies()
	if !calibrated || voteNS <= 0 || chainNS <= 0 {
		return costModel{}
	}
	rate := 0.5
	bounded, derived := eng.QueryDecideCounts()
	if n := bounded + derived; n >= costModelMinDecisions {
		rate = float64(bounded) / float64(n)
		if rate < 0.05 {
			rate = 0.05
		}
	}
	return costModel{active: true, voteNS: voteNS, chainNS: chainNS, decideRate: rate}
}

// envelopeWorthIt weighs one tuple's envelope enumeration (probes CPD
// lookups, each a vote when cold) against the chain it might spare
// (chain latency times the observed decide rate, scaled by the sharing
// slack). Inactive models approve everything.
func (cm costModel) envelopeWorthIt(probes int) bool {
	if !cm.active {
		return true
	}
	return float64(probes)*cm.voteNS <= costModelSlack*cm.chainNS*cm.decideRate
}

// envelopeProbes mirrors boundEnvelope's enumeration guard to predict,
// without running it, how many CPD probes the dissociation envelopes of
// t would cost: for each constrained, non-full missing attribute, one
// probe per assignment of the tuple's other missing attributes.
// vacuous reports that some constrained attribute would overflow
// derive.MaxBoundStates — BoundCPD would enumerate part of the work and
// still return the vacuous interval, so skipping such a tuple outright
// is pure profit regardless of calibration.
func envelopeProbes(schema *relation.Schema, t relation.Tuple, sat [][]bool) (probes int, vacuous bool) {
	for attr, v := range t {
		if v != relation.Missing {
			continue
		}
		set := sat[attr]
		if set == nil {
			continue
		}
		full := true
		for _, ok := range set {
			full = full && ok
		}
		if full {
			continue
		}
		states := 1
		for a, w := range t {
			if a == attr || w != relation.Missing {
				continue
			}
			c := schema.Attrs[a].Card()
			if states > derive.MaxBoundStates/c {
				return 0, true
			}
			states *= c
		}
		probes += states
	}
	return probes, false
}
