package query

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/derive"
	"repro/internal/pdb"
	"repro/internal/relation"
)

// Live-evidence evaluation tests: after any sequence of observation
// deltas on a registered dataset, every operator's answer over the
// snapshot must be bit-identical to a fresh engine evaluating the
// conditioned database naively — the PR's central acceptance property.

type obsDelta struct {
	index, attr, val int
}

// buildScript pins, for every `every`-th incomplete tuple, its first
// missing attribute(s) to the most probable completion of its current
// conditioned block — up to two steps, so multi-missing tuples exercise
// incremental conditioning and single-missing ones collapse.
func buildScript(t *testing.T, eng *derive.Engine, rel *relation.Relation, every int) []obsDelta {
	t.Helper()
	ctx := context.Background()
	var script []obsDelta
	n, multiPicks := 0, 0
	for i, tu := range rel.Tuples {
		if tu.IsComplete() {
			continue
		}
		n++
		if n%every != 0 {
			continue
		}
		b, _, err := eng.ResolveBlock(ctx, tu)
		if err != nil {
			t.Fatal(err)
		}
		// Alternate depth across the multi-missing picks: half observe
		// once (the tuple stays a conditioned BLOCK — the observed tier),
		// half observe to completion (exercising collapse and epochs > 1).
		// Single-missing picks always collapse.
		maxSteps := len(tu)
		if tu.NumMissing() > 1 {
			multiPicks++
			if multiPicks%2 == 1 {
				maxSteps = 1
			}
		}
		for steps := 0; steps < maxSteps && !b.Base.IsComplete(); steps++ {
			attr := b.Base.MissingAttrs()[0]
			val := b.Alts[0].Tuple[attr]
			script = append(script, obsDelta{index: i, attr: attr, val: val})
			if b, err = b.Observe(attr, val); err != nil {
				t.Fatal(err)
			}
		}
	}
	if len(script) == 0 {
		t.Fatal("empty observation script")
	}
	return script
}

// conditionedItems is the oracle input: a separate engine (never the one
// under test) resolves every incomplete tuple per tuple and the script
// prefix is replayed through pdb.Block.Observe — a fresh evaluation of
// the conditioned database, sharing no dataset state with the live path.
func conditionedItems(t *testing.T, oracle *derive.Engine, rel *relation.Relation, script []obsDelta) []derive.Item {
	t.Helper()
	ctx := context.Background()
	blocks := make(map[int]*pdb.Block)
	for _, o := range script {
		b, ok := blocks[o.index]
		var err error
		if !ok {
			if b, _, err = oracle.ResolveBlock(ctx, rel.Tuples[o.index]); err != nil {
				t.Fatal(err)
			}
		}
		if b, err = b.Observe(o.attr, o.val); err != nil {
			t.Fatal(err)
		}
		blocks[o.index] = b
	}
	var items []derive.Item
	for i, tu := range rel.Tuples {
		if b, ok := blocks[i]; ok {
			if b.Base.IsComplete() {
				items = append(items, derive.Item{Index: i, Tuple: b.Base})
			} else {
				items = append(items, derive.Item{Index: i, Tuple: b.Base, Block: b})
			}
			continue
		}
		if tu.IsComplete() {
			items = append(items, derive.Item{Index: i, Tuple: tu})
			continue
		}
		b, _, err := oracle.ResolveBlock(ctx, tu)
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, derive.Item{Index: i, Tuple: tu, Block: b})
	}
	return items
}

func newEngine(t *testing.T, m *core.Model, cfg derive.Config) *derive.Engine {
	t.Helper()
	eng, err := derive.New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestEvalSnapshotMatchesConditionedOracle: randomized queries across
// every operator over a fully observed dataset, on chains, DAG, and
// always-evicting engines, are bit-identical to the fresh-engine oracle
// over the conditioned database.
func TestEvalSnapshotMatchesConditionedOracle(t *testing.T) {
	ctx := context.Background()
	model, rel := fixture(t, 31)
	modes := []struct {
		name string
		cfg  derive.Config
	}{
		{"chains", engineConfig(2, 4)},
		{"dag", engineConfig(2, 0)},
		{"chains-evicting", func() derive.Config {
			c := engineConfig(2, 4)
			c.CacheEntries = 1
			return c
		}()},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			live := newEngine(t, model, mode.cfg)
			ds, err := live.RegisterDataset(rel)
			if err != nil {
				t.Fatal(err)
			}
			script := buildScript(t, live, rel, 3)
			for _, o := range script {
				if _, err := ds.Observe(ctx, o.index, o.attr, o.val); err != nil {
					t.Fatalf("observe %+v: %v", o, err)
				}
			}
			items := conditionedItems(t, newEngine(t, model, mode.cfg), rel, script)
			snap, err := ds.Snapshot(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if snap.Version != uint64(len(script)) {
				t.Fatalf("snapshot version = %d, want %d", snap.Version, len(script))
			}

			rng := rand.New(rand.NewSource(4242))
			sawObserved := false
			for _, op := range []Op{Count, Exists, TopK, GroupBy} {
				for round := 0; round < 3; round++ {
					spec := randomSpec(rng, model.Schema, op)
					q, err := Compile(model.Schema, spec)
					if err != nil {
						t.Fatal(err)
					}
					res, err := EvalSnapshot(ctx, live, snap, q, derive.Pools{}, nil)
					if err != nil {
						t.Fatalf("%v round %d: %v", op, round, err)
					}
					checkOracle(t, q.String(), q, res, items, model.Schema)
					if res.Plan.Observed > 0 {
						sawObserved = true
					}
				}
			}
			if !sawObserved {
				t.Error("no evaluation planned an observed tuple")
			}
		})
	}
}

// TestEvalSnapshotAfterEveryDelta is the staleness killer: a single
// long-lived engine takes deltas one at a time, and after EVERY delta a
// fresh snapshot's answers are bit-identical to the fresh-engine oracle
// of the conditioned database at that prefix. A stale conditioned-block,
// vote, joint, or CPD entry surviving any delta would surface here.
func TestEvalSnapshotAfterEveryDelta(t *testing.T) {
	ctx := context.Background()
	model, rel := fixture(t, 37)
	cfg := engineConfig(2, 4)
	live := newEngine(t, model, cfg)
	oracle := newEngine(t, model, cfg) // content-keyed caches: equivalent to per-prefix fresh engines
	ds, err := live.RegisterDataset(rel)
	if err != nil {
		t.Fatal(err)
	}
	script := buildScript(t, live, rel, 5)

	specs := []Spec{
		{Op: Count, Preds: []Pred{{Attr: 0, Cmp: Le, Value: 1}}},
		{Op: Count, Preds: []Pred{{Attr: 1, Cmp: Eq, Value: 0}}, MinProb: 0.4},
		{Op: Exists, Preds: []Pred{{Attr: 2, Cmp: Gt, Value: 0}, {Attr: 0, Cmp: Ne, Value: 1}}, MinProb: 0.9},
		{Op: TopK, Preds: []Pred{{Attr: 1, Cmp: Ge, Value: 1}}, K: 5},
		{Op: GroupBy, GroupBy: model.Schema.Attrs[0].Name},
	}
	var queries []*Query
	for _, spec := range specs {
		q, err := Compile(model.Schema, spec)
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, q)
	}

	for step := range script {
		o := script[step]
		if _, err := ds.Observe(ctx, o.index, o.attr, o.val); err != nil {
			t.Fatalf("step %d observe %+v: %v", step, o, err)
		}
		snap, err := ds.Snapshot(ctx)
		if err != nil {
			t.Fatal(err)
		}
		items := conditionedItems(t, oracle, rel, script[:step+1])
		for qi, q := range queries {
			res, err := EvalSnapshot(ctx, live, snap, q, derive.Pools{}, nil)
			if err != nil {
				t.Fatalf("step %d query %d: %v", step, qi, err)
			}
			checkOracle(t, q.String(), q, res, items, model.Schema)
		}
	}
}
