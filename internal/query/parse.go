package query

import (
	"fmt"
	"strings"

	"repro/internal/relation"
)

// ParseWhere parses the textual conjunction syntax shared by the
// mrslquery CLI and the mrslserve /query endpoint: comma-separated
// conditions of the form
//
//	attr=value  attr!=value  attr<value  attr<=value  attr>value  attr>=value
//
// where attr is an attribute name of the schema and value one of its
// domain labels. Ordered comparisons compare domain positions, which is
// meaningful for domains listed in semantic order (discretized numeric
// buckets are). Whitespace around conditions is ignored; attribute
// names and labels are matched exactly. Several conditions may
// constrain the same attribute (a range); a contradictory conjunction
// such as "age=30,age=20" is valid — as in SQL, it simply selects
// nothing.
func ParseWhere(s *relation.Schema, where string) ([]Pred, error) {
	if s == nil {
		return nil, fmt.Errorf("query: nil schema")
	}
	if strings.TrimSpace(where) == "" {
		return nil, fmt.Errorf("query: empty where clause")
	}
	var preds []Pred
	parts := strings.Split(where, ",")
	for i, part := range parts {
		part = strings.TrimSpace(part)
		// Name the offending clause by position: a trailing comma in
		// "age=30," would otherwise fail with an unanchored complaint
		// about an empty condition.
		clause := func(err error) error {
			return fmt.Errorf("query: clause %d of %d (%q): %w", i+1, len(parts), part, err)
		}
		name, cmp, label, err := splitCond(part)
		if err != nil {
			return nil, clause(err)
		}
		attr := s.AttrIndex(name)
		if attr < 0 {
			return nil, clause(fmt.Errorf("unknown attribute %q", name))
		}
		val, err := s.ValueCode(attr, label)
		if err != nil {
			return nil, clause(err)
		}
		preds = append(preds, Pred{Attr: attr, Cmp: cmp, Value: val})
	}
	return preds, nil
}

// condOps lists the comparison tokens, longest first so that "<=" is
// never lexed as "<" followed by "=value".
var condOps = []struct {
	token string
	cmp   Cmp
}{
	{"!=", Ne}, {"<=", Le}, {">=", Ge}, {"=", Eq}, {"<", Lt}, {">", Gt},
}

// splitCond lexes one condition into name, comparison, and value label.
// The operator is the first comparison token appearing in the string, so
// labels may themselves contain comparison characters (e.g. ">=100K" as
// a bucket label) as long as the attribute name does not.
func splitCond(cond string) (name string, cmp Cmp, label string, err error) {
	at := -1
	var atOp int
	for i, op := range condOps {
		j := strings.Index(cond, op.token)
		if j < 0 {
			continue
		}
		// Prefer the earliest operator; on a tie the longer token wins
		// (condOps order breaks the tie: "!=", "<=", ">=" come first).
		if at < 0 || j < at {
			at, atOp = j, i
		}
	}
	if at < 0 {
		return "", 0, "", fmt.Errorf("bad condition (want attr<op>value)")
	}
	op := condOps[atOp]
	name = strings.TrimSpace(cond[:at])
	label = strings.TrimSpace(cond[at+len(op.token):])
	if name == "" || label == "" {
		return "", 0, "", fmt.Errorf("bad condition (want attr<op>value)")
	}
	return name, op.cmp, label, nil
}
