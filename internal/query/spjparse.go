package query

import (
	"fmt"
	"strings"

	"repro/internal/relation"
)

// ParseSPJ parses the SQL-ish statement surface of intensional queries,
// shared by the mrslquery -sql flag and the mrslserve /query sql
// parameter:
//
//	[select <cols>|*] from <rel> [join <rel> on <left>=<right>]... [where <conds>]
//
// Keywords are case-insensitive; relation and attribute names are
// matched verbatim. The projection list is comma-separated ("select
// city, coast"); "select *" (or omitting select) selects whole tuples.
// The where tail uses the same conjunction syntax as ParseWhere —
// "age=30, inc>=100K" — and is kept raw here, to be compiled against the
// model schema by CompileSPJ. The operator (count/exists/topk/groupby)
// and its parameters stay outside the statement, as before.
func ParseSPJ(s string) (*SPJText, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return nil, fmt.Errorf("query: empty statement")
	}
	t := &SPJText{}
	i := 0
	kw := func(word string) bool {
		return i < len(fields) && strings.EqualFold(fields[i], word)
	}
	anyKw := func() bool {
		for _, w := range []string{"select", "from", "join", "on", "where"} {
			if kw(w) {
				return true
			}
		}
		return false
	}
	// collect joins tokens from i until the next keyword.
	collect := func() string {
		var parts []string
		for i < len(fields) && !anyKw() {
			parts = append(parts, fields[i])
			i++
		}
		return strings.Join(parts, " ")
	}

	if kw("select") {
		i++
		cols := collect()
		if cols == "" {
			return nil, fmt.Errorf("query: select without columns")
		}
		if cols != "*" {
			for ci, c := range strings.Split(cols, ",") {
				c = strings.TrimSpace(c)
				if c == "" {
					return nil, fmt.Errorf("query: empty projection column %d in %q", ci+1, cols)
				}
				t.Project = append(t.Project, c)
			}
		}
	}
	if !kw("from") {
		return nil, fmt.Errorf("query: expected 'from', got %q", strings.Join(fields[i:], " "))
	}
	i++
	t.Base = collect()
	if t.Base == "" || strings.ContainsAny(t.Base, " ") {
		return nil, fmt.Errorf("query: 'from' needs exactly one relation name, got %q", t.Base)
	}
	for kw("join") {
		i++
		rel := collect()
		if rel == "" || strings.ContainsAny(rel, " ") {
			return nil, fmt.Errorf("query: 'join' needs exactly one relation name, got %q", rel)
		}
		if !kw("on") {
			return nil, fmt.Errorf("query: join %q without 'on' condition", rel)
		}
		i++
		cond := strings.ReplaceAll(collect(), " ", "")
		lhs, rhs, ok := strings.Cut(cond, "=")
		if !ok || lhs == "" || rhs == "" {
			return nil, fmt.Errorf("query: join condition %q (want left=right)", cond)
		}
		t.Joins = append(t.Joins, SPJTextJoin{Rel: rel, LeftAttr: lhs, RightAttr: rhs})
	}
	if kw("where") {
		i++
		t.Where = strings.Join(fields[i:], " ")
		if strings.TrimSpace(t.Where) == "" {
			return nil, fmt.Errorf("query: 'where' without conditions")
		}
		i = len(fields)
	}
	if i != len(fields) {
		return nil, fmt.Errorf("query: unexpected %q after %q", strings.Join(fields[i:], " "), t.Base)
	}
	return t, nil
}

// SPJText is the parsed form of an SQL-ish statement: relation and
// attribute references by name, the where tail still raw.
type SPJText struct {
	// Project lists the projected column names; nil for "*" / no select.
	Project []string
	// Base names the first (left-most) relation.
	Base string
	// Joins chain further relations onto the base, in statement order.
	Joins []SPJTextJoin
	// Where is the raw conjunction tail ("" when absent).
	Where string
}

// SPJTextJoin is one "join <rel> on <left>=<right>" clause.
type SPJTextJoin struct {
	Rel       string
	LeftAttr  string
	RightAttr string
}

// Relations returns every relation name the statement references, base
// first, in statement order (duplicates preserved for self-joins).
func (t *SPJText) Relations() []string {
	names := []string{t.Base}
	for _, j := range t.Joins {
		names = append(names, j.Rel)
	}
	return names
}

// Bind resolves the statement's relation names against concrete
// relations and assembles the SPJSpec: spec supplies the operator and
// its parameters, the statement supplies projection, join chain, and —
// unless spec already carries one — the where conjunction.
func (t *SPJText) Bind(inputs map[string]*relation.Relation, spec Spec, keepKeys bool) (SPJSpec, error) {
	out := SPJSpec{Spec: spec, Project: t.Project, KeepKeys: keepKeys}
	if t.Where != "" {
		if spec.Where != "" {
			return out, fmt.Errorf("query: where given both in the statement and separately")
		}
		out.Spec.Where = t.Where
	}
	for _, name := range t.Relations() {
		rel, ok := inputs[name]
		if !ok || rel == nil {
			return out, fmt.Errorf("query: statement references relation %q, but no input with that name was provided", name)
		}
		out.Inputs = append(out.Inputs, SPJInput{Name: name, Rel: rel})
	}
	for _, j := range t.Joins {
		out.Joins = append(out.Joins, SPJJoin{LeftAttr: j.LeftAttr, RightAttr: j.RightAttr})
	}
	return out, nil
}
